// Quickstart: simulate the paper's 64-core mesh running Blackscholes, first
// healthy, then with a TASP trojan and the proposed threat detector + L-Ob
// mitigation, and compare the outcomes.
package main

import (
	"fmt"
	"log"
	"sort"

	"tasp"
)

func main() {
	log.SetFlags(0)

	// A clean run: no trojan.
	clean := tasp.DefaultConfig()
	clean.Attack.Enabled = false
	base, err := tasp.Run(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy:   %.3f packets/cycle, avg latency %.1f cycles\n",
		base.Throughput, base.AvgLatency)

	// The attack with no mitigation: the chip deadlocks.
	attacked := tasp.DefaultConfig()
	res, err := tasp.Run(attacked)
	if err != nil {
		log.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	fmt.Printf("attacked:  %.3f packets/cycle, %d/16 routers blocked, %d/16 injection regions full\n",
		res.Throughput, last.BlockedRouters, last.HalfCoresFull)

	// The attack with the paper's mitigation: graceful degradation.
	secured := tasp.DefaultConfig()
	secured.Mitigation = tasp.S2SLOb
	sec, err := tasp.Run(secured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mitigated: %.3f packets/cycle (%.0f%% of healthy), detections: %d links\n",
		sec.Throughput, 100*sec.Throughput/base.Throughput, len(sec.Detections))
	// Print detections in link-id order: map iteration order would make
	// the example's output differ run to run.
	ids := make([]int, 0, len(sec.Detections))
	for id := range sec.Detections { //nocvet:orderfree ids are sorted before use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  link %d classified %q, trigger localised to the %s\n",
			id, sec.Detections[id], sec.TriggerScopes[id])
	}
}
