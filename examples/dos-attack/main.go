// dos-attack walks through the paper's Figure 11 scenario from the
// attacker's point of view: pick a victim application (Blackscholes,
// concentrated around router 0), place TASP trojans on the hottest links
// its traffic crosses, wait out the 1500-cycle warm-up, flip the kill
// switch, and watch back-pressure deadlock the chip.
package main

import (
	"fmt"
	"log"

	"tasp"
)

func main() {
	log.SetFlags(0)

	cfg := tasp.DefaultConfig()
	cfg.Benchmark = "blackscholes"
	cfg.Attack.Target = tasp.ForDest(0) // the application's primary router
	cfg.Attack.NumLinks = 2             // its ingress links, auto-selected by load
	cfg.SampleEvery = 100

	res, err := tasp.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trojans implanted on links %v targeting dest router 0\n", res.InfectedLinks)
	fmt.Printf("kill switch at cycle %d; %d target sightings, %d two-bit strikes\n\n",
		cfg.Warmup, res.HTMatches, res.HTInjections)

	fmt.Printf("%-8s %-20s %-18s %-18s\n", "cycle", "buffered flits", "blocked routers", "stuck inj regions")
	for _, s := range res.Samples {
		mark := ""
		if s.Cycle == uint64(cfg.Warmup) {
			mark = "   <- kill switch"
		}
		fmt.Printf("%-8d %-20d %-18d %-18d%s\n",
			s.Cycle, s.InputFlits+s.OutputFlits+s.InjectionFlit,
			s.BlockedRouters, s.HalfCoresFull, mark)
	}

	last := res.Samples[len(res.Samples)-1]
	fmt.Printf("\nresult: %d/16 routers with a completely stalled port, %d/16 injection regions deadlocked\n",
		last.BlockedRouters, last.HalfCoresFull)
	fmt.Printf("throughput during the attack: %.3f packets/cycle\n", res.Throughput)
	fmt.Printf("every strike is a 2-bit flip: SECDED detects it, cannot correct it, and retransmits forever\n")
	fmt.Printf("total NACKed traversals: %d\n", res.Final.Retransmissions)
}
