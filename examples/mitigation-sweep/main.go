// mitigation-sweep runs the same TASP attack against every defence the
// paper evaluates — nothing, FortNoCs-style e2e obfuscation, SurfNoC-style
// TDM QoS, Ariadne-style rerouting, and the proposed threat detector + s2s
// L-Ob — and compares throughput, back-pressure and detection outcomes.
package main

import (
	"fmt"
	"log"

	"tasp"
)

func main() {
	log.SetFlags(0)

	mitigations := []tasp.Mitigation{
		tasp.NoMitigation, tasp.E2EObfuscation, tasp.TDMQoS, tasp.Rerouting, tasp.S2SLOb,
	}

	clean := tasp.DefaultConfig()
	clean.Attack.Enabled = false
	base, err := tasp.Run(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean baseline: %.3f packets/cycle\n\n", base.Throughput)

	fmt.Printf("%-16s %-12s %-10s %-16s %-12s %-10s\n",
		"mitigation", "throughput", "vs clean", "blocked routers", "detections", "rerouted")
	for _, m := range mitigations {
		cfg := tasp.DefaultConfig()
		cfg.Mitigation = m
		res, err := tasp.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		last := res.Samples[len(res.Samples)-1]
		rerouted := "-"
		if res.ReroutedAt > 0 {
			rerouted = fmt.Sprintf("cycle %d", res.ReroutedAt)
		}
		fmt.Printf("%-16s %-12.3f %-10s %-16d %-12d %-10s\n",
			m, res.Throughput,
			fmt.Sprintf("%.0f%%", 100*res.Throughput/base.Throughput),
			last.BlockedRouters, len(res.Detections), rerouted)
	}

	fmt.Println("\nthe proposed s2s L-Ob keeps the infected links in service at a 1-3 cycle")
	fmt.Println("obfuscation penalty instead of deadlocking (none/e2e), halving bandwidth (tdm)")
	fmt.Println("or paying detours (reroute) — the paper's Figure 10/12 story")
}
