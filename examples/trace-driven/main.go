// trace-driven shows the simulator's two advanced workload modes: recording
// a benchmark into a reusable binary trace and replaying it bit-identically,
// and closed-loop (request-reply) traffic with finite per-core request
// windows — then measures the same TASP attack under both.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tasp/internal/core"
	"tasp/internal/flit"
	"tasp/internal/noc"
	taspht "tasp/internal/tasp"
	"tasp/internal/trace"
	"tasp/internal/traffic"
)

func main() {
	log.SetFlags(0)
	cfg := noc.DefaultConfig()
	model, err := traffic.Benchmark("blackscholes", cfg)
	if err != nil {
		log.Fatal(err)
	}

	// ---- record once, replay twice, prove determinism ----
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Record(w, model.Generator(1), 2000); err != nil {
		log.Fatal(err)
	}
	w.Close()
	fmt.Printf("recorded %d packets of blackscholes into a %d-byte trace\n", w.Count(), buf.Len())

	replay := func(attack bool) noc.Counters {
		r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		evs, err := r.ReadAll()
		if err != nil {
			log.Fatal(err)
		}
		pl := trace.NewPlayer(evs)
		n, err := noc.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var ht *tspHT
		if attack {
			ht = arm(n, model)
		}
		for c := 0; c < 4000; c++ {
			if attack && c == 1000 {
				ht.on()
			}
			pl.Tick(n.Cycle(), func(core int, pk *flit.Packet) bool { return n.Inject(core, pk) })
			n.Step()
		}
		return n.Counters
	}
	a, b := replay(false), replay(false)
	fmt.Printf("replay determinism: run1 delivered %d, run2 delivered %d (identical: %v)\n",
		a.DeliveredPackets, b.DeliveredPackets, a == b)
	atk := replay(true)
	fmt.Printf("same trace under attack: delivered %d (%.0f%% of clean), %d retransmissions\n\n",
		atk.DeliveredPackets, 100*float64(atk.DeliveredPackets)/float64(a.DeliveredPackets),
		atk.Retransmissions)

	// ---- closed loop: the reverberation effect ----
	fmt.Println("closed-loop (request-reply, 4 MSHRs/core):")
	for _, withAttack := range []bool{false, true} {
		n, _ := noc.New(cfg)
		var ht *tspHT
		if withAttack {
			ht = arm(n, model)
			ht.on()
		}
		cl := traffic.NewClosedLoop(model, 1, 4)
		n.SetDelivered(cl.OnDeliver)
		for c := 0; c < 3000; c++ {
			cl.Tick(func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
			n.Step()
		}
		fmt.Printf("  attack=%-5v transactions/cycle=%.3f outstanding=%d\n",
			withAttack, float64(cl.Completed)/3000, cl.Pending())
	}
}

// tspHT wraps the trojans armed on the victim's ingress links.
type tspHT struct{ hts []*taspht.HT }

func (h *tspHT) on() {
	for _, t := range h.hts {
		t.SetKillSwitch(true)
	}
}

// arm plants dest-0 trojans on the two hottest target-flow links.
func arm(n *noc.Network, model *traffic.Model) *tspHT {
	target := taspht.ForDest(0)
	out := &tspHT{}
	for _, id := range core.ChooseInfectedLinks(model, n.Config(), n.Links(), 2, target) {
		ht := taspht.New(target, taspht.DefaultPayloadBits, n.Layout())
		out.hts = append(out.hts, ht)
		n.SetWire(id, core.NewSecureWire(ht, 7, n.Layout()).WithMitigation(false))
	}
	return out
}
