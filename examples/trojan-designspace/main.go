// trojan-designspace explores the attacker's trade-offs from Section III:
// which target variant to program (Table I's area/power cost vs attack
// selectivity) and how wide to make the Y-bit payload counter (more fault
// locations to disguise strikes as transients vs more flip-flops for
// side-channel analysis to find).
package main

import (
	"fmt"
	"log"

	"tasp"
	"tasp/internal/power"
)

func main() {
	log.SetFlags(0)

	// Hardware cost per target variant (Table I / Figure 9).
	fmt.Printf("%-10s %-8s %-12s %-10s\n", "variant", "width", "area um^2", "dyn uW")
	for _, v := range power.TASPVariants {
		b := power.BuildTASP(v)
		fmt.Printf("%-10s %-8d %-12.2f %-10.2f\n",
			v, v.Width(), b.Area(), b.Dynamic(power.DefaultFreqGHz))
	}

	// Attack selectivity: how many flits does each variant strike, and how
	// much of the chip does it take down?
	fmt.Printf("\n%-10s %-10s %-14s %-14s\n", "variant", "strikes", "blocked rtrs", "tput pkt/cyc")
	targets := map[string]tasp.Target{
		"Dest":     tasp.ForDest(0),
		"Src":      tasp.ForSrc(0),
		"Dest_Src": tasp.ForDestSrc(1, 0),
		"VC":       tasp.ForVC(1),
		"Mem":      tasp.ForMem(0, 0xff000000),
		"Full":     tasp.ForFull(1, 0, 1, 0, 0xff000000),
	}
	for _, name := range []string{"Dest", "Src", "Dest_Src", "VC", "Mem", "Full"} {
		cfg := tasp.DefaultConfig()
		cfg.Attack.Target = targets[name]
		res, err := tasp.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		last := res.Samples[len(res.Samples)-1]
		fmt.Printf("%-10s %-10d %-14d %-14.3f\n",
			name, res.HTInjections, last.BlockedRouters, res.Throughput)
	}

	// Payload-counter width ablation: a small Y reuses fault locations
	// quickly (easy for the threat detector's history to spot); a large Y
	// needs more flip-flops.
	fmt.Printf("\n%-8s %-16s %-16s\n", "Y bits", "payload states", "ff cost (area um^2)")
	for _, y := range []int{2, 4, 8, 12, 16} {
		states := y * (y - 1) / 2
		// Counter area scales with Y in the hardware model.
		area := power.Counter("payload", y, 0.1).Area()
		fmt.Printf("%-8d %-16d %-16.2f\n", y, states, area)
	}
}
