// Scale-8x8: the paper's attack/defence protocol on an 8x8 mesh with 256
// cores — four times the paper's evaluation platform. The flit-header
// layout is derived from the configuration (6-bit router ids instead of 4),
// and the trojan comparator, L-Ob windows and detector are all built
// against that scaled layout. The single point of attack wedges almost the
// entire 64-router substrate; the S2S threat detector + L-Ob recovers it.
package main

import (
	"fmt"
	"log"
	"sort"

	"tasp"
)

func main() {
	log.SetFlags(0)

	scale := func(cfg tasp.Config) tasp.Config {
		cfg.Noc.Width, cfg.Noc.Height = 8, 8
		return cfg
	}
	layout := scale(tasp.DefaultConfig()).Noc.Layout()
	fmt.Printf("platform:  8x8 mesh, 256 cores, header layout %v\n", layout)

	// A clean run: no trojan.
	clean := scale(tasp.DefaultConfig())
	clean.Attack.Enabled = false
	base, err := tasp.Run(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy:   %.3f packets/cycle, avg latency %.1f cycles\n",
		base.Throughput, base.AvgLatency)

	// The attack with no mitigation: back-pressure wedges the substrate.
	res, err := tasp.Run(scale(tasp.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	fmt.Printf("attacked:  %.3f packets/cycle, %d/64 routers blocked (trojans on links %v)\n",
		res.Throughput, last.BlockedRouters, res.InfectedLinks)

	// The attack with the paper's mitigation: graceful degradation.
	secured := scale(tasp.DefaultConfig())
	secured.Mitigation = tasp.S2SLOb
	sec, err := tasp.Run(secured)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mitigated: %.3f packets/cycle (%.0f%% of healthy), detections: %d links\n",
		sec.Throughput, 100*sec.Throughput/base.Throughput, len(sec.Detections))
	// Print detections in link-id order: map iteration order would make
	// the example's output differ run to run.
	ids := make([]int, 0, len(sec.Detections))
	for id := range sec.Detections { //nocvet:orderfree ids are sorted before use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  link %d classified %q, trigger localised to the %s\n",
			id, sec.Detections[id], sec.TriggerScopes[id])
	}
}
