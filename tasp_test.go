package tasp_test

import (
	"testing"

	"tasp"
)

// TestPublicAPIRoundTrip exercises the facade end to end the way the
// quickstart example does: healthy, attacked, mitigated.
func TestPublicAPIRoundTrip(t *testing.T) {
	clean := tasp.DefaultConfig()
	clean.Warmup, clean.Measure = 600, 600
	clean.Attack.Enabled = false
	base, err := tasp.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if base.Throughput <= 0 || base.Final.DeliveredPackets == 0 {
		t.Fatal("clean run produced nothing")
	}

	sec := tasp.DefaultConfig()
	sec.Warmup, sec.Measure = 600, 900
	sec.Mitigation = tasp.S2SLOb
	res, err := tasp.Run(sec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InfectedLinks) == 0 || res.HTInjections == 0 {
		t.Fatal("attack not deployed")
	}
	if len(res.Detections) == 0 {
		t.Fatal("trojans not detected through the public API")
	}
}

func TestPublicAPITargets(t *testing.T) {
	for name, target := range map[string]tasp.Target{
		"dest":    tasp.ForDest(3),
		"src":     tasp.ForSrc(1),
		"destsrc": tasp.ForDestSrc(1, 3),
		"vc":      tasp.ForVC(2),
		"vcrange": tasp.ForVCRange(2, 0b10),
		"mem":     tasp.ForMem(0x03000000, 0xff000000),
		"full":    tasp.ForFull(1, 3, 2, 0x03000000, 0xff000000),
	} {
		if target.Kind.Width() <= 0 {
			t.Errorf("%s: zero comparator width", name)
		}
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	bs := tasp.Benchmarks()
	if len(bs) < 10 {
		t.Fatalf("only %d benchmarks exposed", len(bs))
	}
}

func TestDefaultNoCConfigMatchesPaper(t *testing.T) {
	c := tasp.DefaultNoCConfig()
	if c.Routers() != 16 || c.Cores() != 64 || c.VCs != 4 || c.BufDepth != 4 {
		t.Fatalf("platform drifted from the paper: %+v", c)
	}
}
