module tasp

go 1.22
