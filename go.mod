module tasp

go 1.22

// Zero third-party dependencies, on purpose — including golang.org/x/tools:
// the nocvet analyzer suite (internal/analysis, DESIGN.md §10) mirrors the
// x/tools go/analysis API shape on the standard library's go/parser +
// go/types, resolving imports from `go list -export` compiler export data,
// so the module builds and lints offline with nothing but the Go toolchain.
