package tasp_test

import (
	"testing"

	"tasp"
	"tasp/internal/core"
	"tasp/internal/flit"
	"tasp/internal/noc"
	taspht "tasp/internal/tasp"
	"tasp/internal/xrand"
)

// BenchmarkNetworkStepAttack measures the simulator hot path while a TASP
// trojan is active: every link into the victim router carries a SecureWire
// whose trojan injects uncorrectable double faults into matching packets, so
// the NACK/retransmission machinery — idle in the clean Step benchmarks —
// runs continuously, along with the sleep/wake edges of the event-driven
// core as penalty waits empty and refill the active sets.
func BenchmarkNetworkStepAttack(b *testing.B) {
	cfg := noc.DefaultConfig()
	net, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	layout := net.Layout()
	const victim = 5 // an interior router: 4 infected inbound links
	for _, l := range net.Links() {
		if l.To != victim {
			continue
		}
		ht := taspht.New(tasp.ForDest(victim), taspht.DefaultPayloadBits, layout)
		ht.SetKillSwitch(true) // arm: Idle trojans never strike
		w := core.NewSecureWire(ht, 0x10b^uint64(l.ID), layout).WithMitigation(false)
		net.SetWire(l.ID, w) // unmitigated: the DoS runs unchecked (Figure 11)
	}

	rng := xrand.New(1)
	pkt := flit.Packet{Body: make([]uint64, 4)} // reused; enqueue copies
	cores := cfg.Cores()
	inject := func() {
		for c := 0; c < cores; c++ {
			if !rng.Bool(0.02) {
				continue
			}
			dst := rng.Intn(cores)
			if dst == c {
				continue
			}
			pkt.Hdr = flit.Header{
				VC:   uint8(rng.Intn(cfg.VCs)),
				DstR: uint8(cfg.CoreRouter(dst)),
				DstC: uint8(dst % cfg.Concentration),
				Mem:  uint32(rng.Uint64()),
			}
			net.Inject(c, &pkt)
		}
	}
	for i := 0; i < 500; i++ { // warm up into the congested steady state
		inject()
		net.Step()
	}
	if net.Counters.Retransmissions == 0 {
		b.Fatal("trojan inactive: no retransmissions during warm-up")
	}
	start := net.Counters.Retransmissions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
		net.Step()
	}
	b.ReportMetric(float64(net.Counters.Retransmissions-start)/float64(b.N), "retrans/cycle")
}
