// Package tasp is a from-scratch reproduction of "Mitigation of Denial of
// Service Attack with Hardware Trojans in NoC Architectures" (Boraten and
// Kodi, IPDPS 2016): a cycle-accurate 64-core mesh NoC, the TASP
// target-activated sequential-payload hardware trojan, the heuristic threat
// detector, the L-Ob switch-to-switch obfuscation block, the paper's three
// baselines (e2e obfuscation, TDM QoS, rerouting) and a gate-level
// area/power/timing model standing in for the Synopsys/TSMC 40 nm flow.
//
// This root package is the stable public API: configure a simulation with
// Config, an attack with AttackConfig, pick a Mitigation, and Run. The
// per-figure experiment harnesses live in internal/exp and are exposed
// through the cmd tools and the root benchmark suite.
//
//	cfg := tasp.DefaultConfig()
//	cfg.Mitigation = tasp.S2SLOb
//	res, err := tasp.Run(cfg)
package tasp

import (
	"tasp/internal/core"
	"tasp/internal/noc"
	taspht "tasp/internal/tasp"
	"tasp/internal/traffic"
)

// Config describes one full simulation run: the mesh, the workload, the
// attack and the mitigation. See core.ExperimentConfig for field docs.
type Config = core.ExperimentConfig

// AttackConfig describes the TASP deployment of a run.
type AttackConfig = core.AttackConfig

// Results aggregates a run's counters, time series and telemetry.
type Results = core.Results

// Sample is one occupancy time-series point.
type Sample = core.Sample

// Mitigation selects the installed defence.
type Mitigation = core.Mitigation

// The available mitigations.
const (
	NoMitigation   = core.NoMitigation
	S2SLOb         = core.S2SLOb
	E2EObfuscation = core.E2EObfuscation
	TDMQoS         = core.TDMQoS
	Rerouting      = core.Rerouting
)

// Target programs the trojan's comparator.
type Target = taspht.Target

// TargetKind selects which header fields the comparator taps.
type TargetKind = taspht.TargetKind

// Target constructors (Table I's variants).
var (
	ForDest    = taspht.ForDest
	ForSrc     = taspht.ForSrc
	ForDestSrc = taspht.ForDestSrc
	ForVC      = taspht.ForVC
	ForVCRange = taspht.ForVCRange
	ForMem     = taspht.ForMem
	ForFull    = taspht.ForFull
)

// TrojanKind selects the trojan family deployed on the infected links:
// payload-flipping TASP, the ACK-forging dropper, the header-rewriting
// misrouter, or the adaptive duty-cycled/colluding droppers.
type TrojanKind = taspht.Kind

// The available trojan families.
const (
	KindFlip     = taspht.KindFlip
	KindDrop     = taspht.KindDrop
	KindMisroute = taspht.KindMisroute
	KindThrottle = taspht.KindThrottle
	KindCollude  = taspht.KindCollude
)

// ParseTrojanKind resolves a trojan family name ("flip", "drop",
// "misroute", "throttle", "collude"; "" means flip).
var ParseTrojanKind = taspht.ParseKind

// NoCConfig describes the simulated mesh micro-architecture.
type NoCConfig = noc.Config

// DefaultNoCConfig returns the paper's platform: a 4x4 mesh with 4 cores
// per router, 4 VCs, 4x64-bit buffers and post-crossbar retransmission
// buffers.
func DefaultNoCConfig() NoCConfig { return noc.DefaultConfig() }

// DefaultConfig returns the paper's standard experiment protocol
// (Blackscholes traces, 1500-cycle warm-up, a TASP attack point around the
// primary router, no mitigation).
func DefaultConfig() Config { return core.DefaultExperiment() }

// Run executes one experiment.
func Run(cfg Config) (*Results, error) { return core.Run(cfg) }

// Benchmarks lists the available PARSEC/SPLASH-2 workload models.
func Benchmarks() []string { return traffic.Benchmarks() }
