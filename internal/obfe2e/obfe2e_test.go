package obfe2e

import (
	"testing"
	"testing/quick"

	"tasp/internal/flit"
)

func TestApplyRemoveRoundTrip(t *testing.T) {
	s := New(42)
	p := &flit.Packet{
		Hdr:  flit.Header{SrcR: 3, DstR: 11, Seq: 7, Mem: 0xdeadbeef},
		Body: []uint64{1, 2, 3, 4},
	}
	orig := *p
	origBody := append([]uint64(nil), p.Body...)
	s.Apply(p)
	if p.Hdr.Mem == orig.Hdr.Mem {
		t.Fatal("memory address not scrambled")
	}
	s.Remove(p)
	if p.Hdr.Mem != orig.Hdr.Mem {
		t.Fatalf("mem not restored: %x != %x", p.Hdr.Mem, orig.Hdr.Mem)
	}
	for i := range p.Body {
		if p.Body[i] != origBody[i] {
			t.Fatalf("body word %d not restored", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := New(7)
	f := func(src, dst, seq uint8, mem uint32, body uint64) bool {
		p := &flit.Packet{Hdr: flit.Header{SrcR: src & 15, DstR: dst & 15, Seq: seq, Mem: mem}, Body: []uint64{body}}
		want := *p
		wantBody := p.Body[0]
		s.Apply(p)
		s.Remove(p)
		return p.Hdr.Mem == want.Hdr.Mem && p.Body[0] == wantBody
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingFieldsStayPlaintext(t *testing.T) {
	s := New(1)
	p := &flit.Packet{Hdr: flit.Header{VC: 2, SrcR: 5, DstR: 9, Seq: 3, Mem: 0x100}}
	s.Apply(p)
	if p.Hdr.SrcR != 5 || p.Hdr.DstR != 9 || p.Hdr.VC != 2 {
		t.Fatal("routing fields were scrambled — the packet would be unroutable")
	}
}

func TestDifferentPairsDifferentKeystreams(t *testing.T) {
	s := New(9)
	a := &flit.Packet{Hdr: flit.Header{SrcR: 1, DstR: 2, Mem: 0}}
	b := &flit.Packet{Hdr: flit.Header{SrcR: 1, DstR: 3, Mem: 0}}
	s.Apply(a)
	s.Apply(b)
	if a.Hdr.Mem == b.Hdr.Mem {
		t.Fatal("different pairs share a keystream")
	}
}

func TestDifferentSeedsDifferentKeys(t *testing.T) {
	p1 := &flit.Packet{Hdr: flit.Header{SrcR: 1, DstR: 2, Mem: 0}}
	p2 := &flit.Packet{Hdr: flit.Header{SrcR: 1, DstR: 2, Mem: 0}}
	New(1).Apply(p1)
	New(2).Apply(p2)
	if p1.Hdr.Mem == p2.Hdr.Mem {
		t.Fatal("chip secrets do not differentiate keystreams")
	}
}

func TestCoverageFlags(t *testing.T) {
	if !HidesMemTargets() {
		t.Fatal("e2e must hide memory-address triggers")
	}
	if HidesRoutingTargets() {
		t.Fatal("e2e cannot hide routing-field triggers — that is Figure 11(a)'s point")
	}
}
