// Package obfe2e is the end-to-end obfuscation baseline (FortNoCs [19])
// used in Figure 11(a): the source network interface scrambles a packet's
// data — the memory address and the payload body — with a key shared with
// the destination, and the destination unscrambles on ejection.
//
// Its structural weakness, which the paper exploits, is that the routing
// fields (source, destination, VC) must stay in plaintext for the packet to
// be routable at all. A TASP trojan triggering on those fields therefore
// sails straight through e2e obfuscation, and "when e2e obfuscation fails,
// it is too late": back-pressure builds exactly as with no protection. Only
// memory-address-triggered trojans are (probabilistically) defeated.
package obfe2e

import (
	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// Scrambler provides per source/destination pair keystreams.
type Scrambler struct {
	seed uint64
}

// New returns a scrambler domain keyed by a chip-wide secret seed.
func New(seed uint64) *Scrambler { return &Scrambler{seed: seed} }

// Reseed rekeys the scrambler domain in place (arena reuse across runs).
func (s *Scrambler) Reseed(seed uint64) { s.seed = seed }

// key derives the pair key for (src, dst). Both endpoints can compute it;
// a link trojan cannot (the seed never crosses a link).
func (s *Scrambler) key(src, dst uint8) uint64 {
	x := s.seed ^ uint64(src)<<32 ^ uint64(dst)<<40
	// splitmix64 finaliser.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Apply scrambles a packet in place at the source NI: the memory address
// and every body word are XORed with the pair keystream. Routing fields
// stay in plaintext — they must, for the NoC to deliver the packet.
func (s *Scrambler) Apply(p *flit.Packet) {
	ks := xrand.New(s.key(p.Hdr.SrcR, p.Hdr.DstR) ^ uint64(p.Hdr.Seq))
	p.Hdr.Mem ^= uint32(ks.Uint64())
	for i := range p.Body {
		p.Body[i] ^= ks.Uint64()
	}
}

// Remove unscrambles at the destination NI; Apply and Remove are inverse
// because the keystream is regenerated from the same pair key and sequence
// number.
func (s *Scrambler) Remove(p *flit.Packet) {
	s.Apply(p)
}

// HidesMemTargets reports the scheme's coverage: memory-address triggers
// are hidden, routing-field triggers are not. Exposed for experiment
// reporting.
func HidesMemTargets() bool { return true }

// HidesRoutingTargets reports that src/dst/vc triggers remain visible —
// the failure mode Figure 11(a) demonstrates.
func HidesRoutingTargets() bool { return false }
