package qos

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func TestDomainAssignments(t *testing.T) {
	tdm := NewTDM(noc.DefaultConfig())
	if tdm.DomainOfCore(0) != 0 || tdm.DomainOfCore(1) != 1 || tdm.DomainOfCore(62) != 0 {
		t.Fatal("core domain interleave broken")
	}
	if tdm.DomainOfVC(0) != 0 || tdm.DomainOfVC(1) != 0 || tdm.DomainOfVC(2) != 1 || tdm.DomainOfVC(3) != 1 {
		t.Fatal("vc domain split broken")
	}
}

func TestVCsOfPartition(t *testing.T) {
	tdm := NewTDM(noc.DefaultConfig())
	d0, d1 := tdm.VCsOf(0), tdm.VCsOf(1)
	if len(d0) != 2 || len(d1) != 2 {
		t.Fatalf("vc partition sizes: %d, %d", len(d0), len(d1))
	}
	seen := map[uint8]bool{}
	for _, v := range append(d0, d1...) {
		if seen[v] {
			t.Fatalf("vc %d in both domains", v)
		}
		seen[v] = true
	}
}

func TestAssignVCStaysInDomain(t *testing.T) {
	tdm := NewTDM(noc.DefaultConfig())
	for core := 0; core < 8; core++ {
		want := tdm.DomainOfCore(core)
		for seq := uint8(0); seq < 10; seq++ {
			vc := tdm.AssignVC(core, seq)
			if tdm.DomainOfVC(int(vc)) != want {
				t.Fatalf("core %d seq %d assigned vc %d outside domain %d", core, seq, vc, want)
			}
		}
	}
}

func TestScheduleParity(t *testing.T) {
	tdm := NewTDM(noc.DefaultConfig())
	for cyc := uint64(0); cyc < 10; cyc++ {
		for vc := uint8(0); vc < 4; vc++ {
			want := int(cyc)%2 == tdm.DomainOfVC(int(vc))
			if got := tdm.Schedule(cyc, vc); got != want {
				t.Fatalf("schedule(%d, vc%d) = %v", cyc, vc, got)
			}
		}
	}
	// Exactly one domain owns any given cycle.
	for cyc := uint64(0); cyc < 4; cyc++ {
		if tdm.Schedule(cyc, 0) == tdm.Schedule(cyc, 2) {
			t.Fatalf("cycle %d admits both domains", cyc)
		}
	}
}

// TestTDMNonInterference runs two domains on a real network and checks the
// link schedule slows but never starves either domain.
func TestTDMNonInterference(t *testing.T) {
	cfg := noc.DefaultConfig()
	cfg.PartitionRetrans = true
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tdm := NewTDM(cfg)
	tdm.Install(n)

	delivered := map[int]int{}
	n.SetDelivered(func(d noc.Delivery) {
		delivered[tdm.DomainOfVC(int(d.Hdr.VC))]++
	})
	for core := 0; core < cfg.Cores(); core += 2 {
		for i := 0; i < 2; i++ {
			p := &flit.Packet{Hdr: flit.Header{
				VC:   tdm.AssignVC(core, uint8(i)),
				DstR: uint8((core + 7 + i) % 16),
			}}
			n.Inject(core, p)
			p2 := &flit.Packet{Hdr: flit.Header{
				VC:   tdm.AssignVC(core+1, uint8(i)),
				DstR: uint8((core + 11 + i) % 16),
			}}
			n.Inject(core+1, p2)
		}
	}
	n.Run(2000)
	if delivered[0] == 0 || delivered[1] == 0 {
		t.Fatalf("a domain starved: %v", delivered)
	}
}

func TestOccupancyOfSplitsDomains(t *testing.T) {
	cfg := noc.DefaultConfig()
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tdm := NewTDM(cfg)
	// Queue a domain-0 packet only; its flits must appear in D0's snapshot.
	p := &flit.Packet{Hdr: flit.Header{VC: 0, DstR: 9}, Body: []uint64{1, 2, 3, 4}}
	n.Inject(0, p) // core 0 is domain 0
	n.Run(3)
	d0 := tdm.OccupancyOf(n, 0)
	d1 := tdm.OccupancyOf(n, 1)
	if d0.InjectionFlit+d0.InputFlits+d0.OutputFlits == 0 {
		t.Fatal("domain 0 snapshot empty despite traffic")
	}
	if d1.InjectionFlit+d1.InputFlits+d1.OutputFlits != 0 {
		t.Fatalf("domain 1 snapshot leaked domain 0 traffic: %+v", d1)
	}
}
