// Package qos implements the TDM-based non-interference baseline the paper
// evaluates in Figure 12(a), in the spirit of SurfNoC [14]: the NoC is
// partitioned into two domains that share the physical links by strict time
// division. Domain 1 owns even cycles, domain 2 odd cycles; each domain also
// owns half the virtual channels, so buffer resources never mix. A DoS
// attack mounted inside one domain is therefore contained — its
// back-pressure cannot spill into the other domain's cycles or buffers —
// but, as the paper observes, the attacked domain itself still deadlocks.
package qos

import "tasp/internal/noc"

// NumDomains is fixed at two, matching the paper's D1/D2 evaluation.
const NumDomains = 2

// TDM is a two-domain time-division multiplexing policy over a mesh.
type TDM struct {
	cfg noc.Config
}

// NewTDM builds the policy for a network configuration. The configuration
// must have an even number of VCs so they split cleanly across domains.
func NewTDM(cfg noc.Config) *TDM {
	return &TDM{cfg: cfg}
}

// DomainOfCore statically assigns cores to domains: even-indexed cores run
// domain-1 workloads, odd-indexed cores domain-2 (interleaving keeps both
// domains present at every router, the hardest containment case).
func (t *TDM) DomainOfCore(core int) int { return core % NumDomains }

// DomainOfVC maps a virtual channel to its owning domain: the lower half of
// the VCs belongs to domain 0.
func (t *TDM) DomainOfVC(vc int) int {
	if vc < t.cfg.VCs/2 {
		return 0
	}
	return 1
}

// VCsOf returns the virtual channels a domain may use.
func (t *TDM) VCsOf(domain int) []uint8 {
	var out []uint8
	for v := 0; v < t.cfg.VCs; v++ {
		if t.DomainOfVC(v) == domain {
			out = append(out, uint8(v))
		}
	}
	return out
}

// AssignVC rewrites a packet's VC into its source core's domain partition,
// deterministically spreading packets across the domain's VCs by sequence
// number.
func (t *TDM) AssignVC(core int, seq uint8) uint8 {
	vcs := t.VCsOf(t.DomainOfCore(core))
	return vcs[int(seq)%len(vcs)]
}

// Schedule is the link-admission gate to install with
// noc.Network.SetLinkSchedule: domain d may traverse links only on cycles
// with parity d.
func (t *TDM) Schedule(cycle uint64, vc uint8) bool {
	return int(cycle)%NumDomains == t.DomainOfVC(int(vc))
}

// Install wires the policy into a network.
func (t *TDM) Install(n *noc.Network) {
	n.SetLinkSchedule(t.Schedule)
}

// OccupancyOf returns the utilisation snapshot restricted to one domain
// (Figure 12(a)'s per-domain series).
func (t *TDM) OccupancyOf(n *noc.Network, domain int) noc.Occupancy {
	return n.OccupancyWhere(
		func(vc int) bool { return t.DomainOfVC(vc) == domain },
		func(core int) bool { return t.DomainOfCore(core) == domain },
	)
}
