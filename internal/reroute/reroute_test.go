package reroute

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func net(t *testing.T) *noc.Network {
	t.Helper()
	n, err := noc.New(noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func linkID(n *noc.Network, from, to int) int {
	for _, l := range n.Links() {
		if l.From == from && l.To == to {
			return l.ID
		}
	}
	return -1
}

func TestHealthyTableEqualsXY(t *testing.T) {
	n := net(t)
	tbl, err := Build(n.Config(), n.Links(), nil)
	if err != nil {
		t.Fatal(err)
	}
	xy := noc.XYRoute(n.Config())
	for r := 0; r < 16; r++ {
		for d := 0; d < 16; d++ {
			if got, want := tbl.Port[r][d], xy(r, d); got != want {
				t.Fatalf("route %d->%d: table %s, xy %s", r, d, noc.PortName(got), noc.PortName(want))
			}
		}
	}
	if tbl.ExtraHops() != 0 {
		t.Fatalf("healthy table pays %d extra hops", tbl.ExtraHops())
	}
}

func TestDetourAroundOneLink(t *testing.T) {
	n := net(t)
	disabled := map[int]bool{linkID(n, 0, 1): true}
	tbl, err := Build(n.Config(), n.Links(), disabled)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 1 must avoid the dead link and pay exactly 2 extra hops.
	if tbl.Port[0][1] == noc.PortEast {
		t.Fatal("route still uses the disabled link")
	}
	if tbl.Hops[0][1] != 3 {
		t.Fatalf("0->1 detour length %d, want 3", tbl.Hops[0][1])
	}
	if tbl.ExtraHops() == 0 {
		t.Fatal("no extra hops recorded for the detour")
	}
	// Reverse direction is untouched.
	if tbl.Hops[1][0] != 1 {
		t.Fatalf("1->0 should be direct, got %d hops", tbl.Hops[1][0])
	}
}

func TestHopsMatchShortestPaths(t *testing.T) {
	n := net(t)
	disabled := map[int]bool{
		linkID(n, 0, 1): true,
		linkID(n, 5, 6): true,
		linkID(n, 9, 8): true,
	}
	tbl, err := Build(n.Config(), n.Links(), disabled)
	if err != nil {
		t.Fatal(err)
	}
	// Every routed next hop must strictly decrease the distance.
	cfg := n.Config()
	adj := map[[2]int]int{} // (router, port) -> neighbor
	for _, l := range n.Links() {
		if !disabled[l.ID] {
			adj[[2]int{l.From, l.FromPort}] = l.To
		}
	}
	for r := 0; r < cfg.Routers(); r++ {
		for d := 0; d < cfg.Routers(); d++ {
			if r == d {
				continue
			}
			nb, ok := adj[[2]int{r, tbl.Port[r][d]}]
			if !ok {
				t.Fatalf("%d->%d routes into missing/disabled port", r, d)
			}
			if tbl.Hops[nb][d] != tbl.Hops[r][d]-1 {
				t.Fatalf("%d->%d via %d does not shorten: %d -> %d",
					r, d, nb, tbl.Hops[r][d], tbl.Hops[nb][d])
			}
		}
	}
}

func TestDisconnectionRejected(t *testing.T) {
	n := net(t)
	// Cut both links into router 0 and both out: 0 is unreachable.
	disabled := map[int]bool{
		linkID(n, 1, 0): true,
		linkID(n, 4, 0): true,
	}
	if _, err := Build(n.Config(), n.Links(), disabled); err == nil {
		t.Fatal("disconnected destination accepted")
	}
}

func TestApplyDeliversAroundFault(t *testing.T) {
	n := net(t)
	id := linkID(n, 0, 1)
	if _, err := Apply(n, map[int]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDisabled(id) {
		t.Fatal("Apply did not disable the link")
	}
	p := &flit.Packet{Hdr: flit.Header{DstR: 1}}
	if !n.Inject(0, p) {
		t.Fatal("inject failed")
	}
	n.Run(300)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatal("packet not delivered around the disabled link")
	}
}

// TestRoutedTrafficAvoidsAllDisabled floods a rerouted network and checks
// nothing is ever sent on the dead links.
func TestRoutedTrafficAvoidsAllDisabled(t *testing.T) {
	n := net(t)
	dead := map[int]bool{
		linkID(n, 0, 1):  true,
		linkID(n, 6, 10): true,
	}
	if _, err := Apply(n, dead); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 64; core += 3 {
		p := &flit.Packet{Hdr: flit.Header{VC: uint8(core % 4), DstR: uint8((core + 9) % 16)}}
		n.Inject(core, p)
	}
	n.Run(2000)
	for id := range dead {
		if got := n.LinkOutput(id).FlitsSent; got != 0 {
			t.Fatalf("disabled link %d carried %d flits", id, got)
		}
	}
	if n.Counters.DeliveredPackets == 0 {
		t.Fatal("nothing delivered on the rerouted network")
	}
}

// ringNet builds a 16-router ring network for the BuildSafe/ApplySafe
// tests: the substrate whose fallback reconfiguration exercises both the
// disconnected-undirected-graph path and the dateline reclassification.
func ringNet(t *testing.T) *noc.Network {
	t.Helper()
	cfg := noc.DefaultConfig()
	cfg.Topo = "ring"
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBuildSafeRoutesOnSpanningTree checks the deadlock-freedom structure
// of the safe table: with links disabled, every pair still routes, and the
// set of undirected edges the whole table uses forms a tree (at most R-1
// distinct edges, the up*/down* acyclicity argument's precondition).
func TestBuildSafeRoutesOnSpanningTree(t *testing.T) {
	n := net(t)
	dead := map[int]bool{
		linkID(n, 0, 1):  true,
		linkID(n, 6, 10): true,
	}
	tbl, err := BuildSafe(n.Config(), n.Links(), dead)
	if err != nil {
		t.Fatal(err)
	}
	edges := map[[2]int]bool{}
	for r := 0; r < 16; r++ {
		for d := 0; d < 16; d++ {
			if r == d {
				continue
			}
			if tbl.Hops[r][d] < 0 {
				t.Fatalf("%d->%d unreachable", r, d)
			}
			// Walk the path, collecting undirected edges.
			cur := r
			for steps := 0; cur != d; steps++ {
				if steps > 64 {
					t.Fatalf("%d->%d: path does not terminate", r, d)
				}
				next := -1
				for _, l := range n.Links() {
					if l.From == cur && l.FromPort == tbl.Port[cur][d] {
						next = l.To
						break
					}
				}
				if next < 0 {
					t.Fatalf("%d->%d: no link behind port %d at %d", r, d, tbl.Port[cur][d], cur)
				}
				a, b := cur, next
				if a > b {
					a, b = b, a
				}
				edges[[2]int{a, b}] = true
				cur = next
			}
		}
	}
	if len(edges) > 15 {
		t.Fatalf("safe table uses %d undirected edges, a spanning tree of 16 routers has 15", len(edges))
	}
}

// TestBuildSafeDeterministic pins the safe table bit-for-bit across
// rebuilds: root election, tree growth and per-destination BFS must not
// depend on map order.
func TestBuildSafeDeterministic(t *testing.T) {
	n := net(t)
	dead := map[int]bool{linkID(n, 5, 6): true, linkID(n, 9, 8): true}
	a, err := BuildSafe(n.Config(), n.Links(), dead)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b, err := BuildSafe(n.Config(), n.Links(), dead)
		if err != nil {
			t.Fatal(err)
		}
		for r := range a.Port {
			for d := range a.Port[r] {
				if a.Port[r][d] != b.Port[r][d] {
					t.Fatalf("rebuild %d: Port[%d][%d] differs (%d vs %d)", i, r, d, a.Port[r][d], b.Port[r][d])
				}
			}
		}
	}
}

// TestBuildSafeFallsBackWhenTreeImpossible: three adjacent dead clockwise
// ring edges disconnect the *bidirectional* surviving graph (routers 14 and
// 15 keep only one-way attachments), so no spanning tree exists — BuildSafe
// must fall back to the shortest-path table rather than strand routers the
// directed graph still reaches.
func TestBuildSafeFallsBackWhenTreeImpossible(t *testing.T) {
	n := ringNet(t)
	dead := map[int]bool{
		linkID(n, 13, 14): true,
		linkID(n, 14, 15): true,
		linkID(n, 15, 0):  true,
	}
	safe, err := BuildSafe(n.Config(), n.Links(), dead)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(n.Config(), n.Links(), dead)
	if err != nil {
		t.Fatal(err)
	}
	for r := range safe.Port {
		for d := range safe.Port[r] {
			if safe.Port[r][d] != plain.Port[r][d] {
				t.Fatalf("fallback Port[%d][%d] = %d, want Build's %d", r, d, safe.Port[r][d], plain.Port[r][d])
			}
		}
	}
}

// TestApplySafeRingFallbackDoesNotDeadlock is the dateline regression test:
// the fallback table routes the cut-off arc the long way around the ring,
// crossing the dateline where minimal routes never would. With the
// constructor's minimal-route VC classes this wedged the whole network
// within ~1k cycles of uniform traffic; ApplySafe reclassifies the dateline
// tables from the installed routes, so delivery must keep making progress
// and the audited invariants must hold throughout.
func TestApplySafeRingFallbackDoesNotDeadlock(t *testing.T) {
	n := ringNet(t)
	dead := map[int]bool{
		linkID(n, 13, 14): true,
		linkID(n, 14, 15): true,
		linkID(n, 15, 0):  true,
	}
	if _, err := ApplySafe(n, dead); err != nil {
		t.Fatal(err)
	}
	cores := n.Config().Cores()
	var last uint64
	for phase := 0; phase < 6; phase++ {
		for c := 0; c < cores; c++ {
			p := &flit.Packet{Hdr: flit.Header{VC: uint8(c % 2), DstR: uint8((c*7 + phase) % 16)}}
			n.Inject(c, p)
		}
		n.Run(500)
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
		got := n.Counters.DeliveredPackets
		if got == last {
			t.Fatalf("phase %d: no deliveries between cycles %d and %d (deadlock)", phase, (phase)*500, (phase+1)*500)
		}
		last = got
	}
}

// TestApplySafeMidRunReclaims cuts a link while wormholes are strung across
// it: the reclaiming disable must purge the truncated packets (booked as
// reconfig drops), keep every audited invariant, and leave the network
// draining to an empty steady state instead of wedging VCs forever.
func TestApplySafeMidRunReclaims(t *testing.T) {
	n := net(t)
	// Saturate so wormholes are in flight across the whole fabric.
	for round := 0; round < 3; round++ {
		for c := 0; c < 64; c++ {
			p := &flit.Packet{Hdr: flit.Header{VC: uint8(c % 2), DstR: uint8((c + 5) % 16), Mem: 1}}
			n.Inject(c, p)
		}
		n.Step()
	}
	n.Run(20) // mid-flight: buffers hold partial wormholes everywhere
	dead := map[int]bool{linkID(n, 5, 6): true, linkID(n, 10, 9): true}
	if _, err := ApplySafe(n, dead); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after reclaim: %v", err)
	}
	if n.Counters.DroppedReconfig == 0 {
		t.Fatal("no truncated wormholes reclaimed: the cut was not exercised")
	}
	n.Run(5000)
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	occ := n.Occupancy()
	if occ.InputFlits != 0 {
		t.Fatalf("%d flits still buffered after drain: truncated wormholes wedged", occ.InputFlits)
	}
}
