package reroute

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func net(t *testing.T) *noc.Network {
	t.Helper()
	n, err := noc.New(noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func linkID(n *noc.Network, from, to int) int {
	for _, l := range n.Links() {
		if l.From == from && l.To == to {
			return l.ID
		}
	}
	return -1
}

func TestHealthyTableEqualsXY(t *testing.T) {
	n := net(t)
	tbl, err := Build(n.Config(), n.Links(), nil)
	if err != nil {
		t.Fatal(err)
	}
	xy := noc.XYRoute(n.Config())
	for r := 0; r < 16; r++ {
		for d := 0; d < 16; d++ {
			if got, want := tbl.Port[r][d], xy(r, d); got != want {
				t.Fatalf("route %d->%d: table %s, xy %s", r, d, noc.PortName(got), noc.PortName(want))
			}
		}
	}
	if tbl.ExtraHops() != 0 {
		t.Fatalf("healthy table pays %d extra hops", tbl.ExtraHops())
	}
}

func TestDetourAroundOneLink(t *testing.T) {
	n := net(t)
	disabled := map[int]bool{linkID(n, 0, 1): true}
	tbl, err := Build(n.Config(), n.Links(), disabled)
	if err != nil {
		t.Fatal(err)
	}
	// 0 -> 1 must avoid the dead link and pay exactly 2 extra hops.
	if tbl.Port[0][1] == noc.PortEast {
		t.Fatal("route still uses the disabled link")
	}
	if tbl.Hops[0][1] != 3 {
		t.Fatalf("0->1 detour length %d, want 3", tbl.Hops[0][1])
	}
	if tbl.ExtraHops() == 0 {
		t.Fatal("no extra hops recorded for the detour")
	}
	// Reverse direction is untouched.
	if tbl.Hops[1][0] != 1 {
		t.Fatalf("1->0 should be direct, got %d hops", tbl.Hops[1][0])
	}
}

func TestHopsMatchShortestPaths(t *testing.T) {
	n := net(t)
	disabled := map[int]bool{
		linkID(n, 0, 1): true,
		linkID(n, 5, 6): true,
		linkID(n, 9, 8): true,
	}
	tbl, err := Build(n.Config(), n.Links(), disabled)
	if err != nil {
		t.Fatal(err)
	}
	// Every routed next hop must strictly decrease the distance.
	cfg := n.Config()
	adj := map[[2]int]int{} // (router, port) -> neighbor
	for _, l := range n.Links() {
		if !disabled[l.ID] {
			adj[[2]int{l.From, l.FromPort}] = l.To
		}
	}
	for r := 0; r < cfg.Routers(); r++ {
		for d := 0; d < cfg.Routers(); d++ {
			if r == d {
				continue
			}
			nb, ok := adj[[2]int{r, tbl.Port[r][d]}]
			if !ok {
				t.Fatalf("%d->%d routes into missing/disabled port", r, d)
			}
			if tbl.Hops[nb][d] != tbl.Hops[r][d]-1 {
				t.Fatalf("%d->%d via %d does not shorten: %d -> %d",
					r, d, nb, tbl.Hops[r][d], tbl.Hops[nb][d])
			}
		}
	}
}

func TestDisconnectionRejected(t *testing.T) {
	n := net(t)
	// Cut both links into router 0 and both out: 0 is unreachable.
	disabled := map[int]bool{
		linkID(n, 1, 0): true,
		linkID(n, 4, 0): true,
	}
	if _, err := Build(n.Config(), n.Links(), disabled); err == nil {
		t.Fatal("disconnected destination accepted")
	}
}

func TestApplyDeliversAroundFault(t *testing.T) {
	n := net(t)
	id := linkID(n, 0, 1)
	if _, err := Apply(n, map[int]bool{id: true}); err != nil {
		t.Fatal(err)
	}
	if !n.LinkDisabled(id) {
		t.Fatal("Apply did not disable the link")
	}
	p := &flit.Packet{Hdr: flit.Header{DstR: 1}}
	if !n.Inject(0, p) {
		t.Fatal("inject failed")
	}
	n.Run(300)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatal("packet not delivered around the disabled link")
	}
}

// TestRoutedTrafficAvoidsAllDisabled floods a rerouted network and checks
// nothing is ever sent on the dead links.
func TestRoutedTrafficAvoidsAllDisabled(t *testing.T) {
	n := net(t)
	dead := map[int]bool{
		linkID(n, 0, 1):  true,
		linkID(n, 6, 10): true,
	}
	if _, err := Apply(n, dead); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 64; core += 3 {
		p := &flit.Packet{Hdr: flit.Header{VC: uint8(core % 4), DstR: uint8((core + 9) % 16)}}
		n.Inject(core, p)
	}
	n.Run(2000)
	for id := range dead {
		if got := n.LinkOutput(id).FlitsSent; got != 0 {
			t.Fatalf("disabled link %d carried %d flits", id, got)
		}
	}
	if n.Counters.DeliveredPackets == 0 {
		t.Fatal("nothing delivered on the rerouted network")
	}
}
