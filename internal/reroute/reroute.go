// Package reroute is the fault-tolerant rerouting baseline the paper
// compares L-Ob against in Figure 10 (labelled "Rerouting (Ariadne)"):
// instead of continuing to use a compromised link under obfuscation, the
// network disables it and recomputes routes around it, paying extra hops.
//
// Routes are built per destination with a breadth-first search over the
// healthy directed links, preferring the lowest-numbered port on ties: on
// the mesh that is east before west before north before south, so the
// fault-free network reproduces plain XY routing exactly. Like Ariadne, the
// reconfiguration is a full-table rebuild triggered by each newly disabled
// link, and it works unchanged on any Topology.
package reroute

import (
	"fmt"
	"sort"

	"tasp/internal/noc"
)

// Table is a fault-aware routing table: Port[r][d] is the output port
// router r uses toward destination d.
type Table struct {
	cfg  noc.Config
	Port [][]int
	// Hops[r][d] is the path length from r to d, -1 when unreachable.
	Hops [][]int
}

// Build computes a table for the configured topology avoiding the given
// disabled directed links (by link id). Ties between equal-length paths go
// to the lowest-numbered port, which on the mesh degenerates to XY routing
// (x-dimension first).
func Build(cfg noc.Config, links []noc.LinkInfo, disabled map[int]bool) (*Table, error) {
	topo := cfg.Topology()
	R := cfg.Routers()
	// adj[r][port] = neighbor router over a healthy link, or -1.
	adj := make([][]int, R)
	for r := range adj {
		adj[r] = make([]int, topo.NumPorts(r))
		for p := range adj[r] {
			adj[r][p] = -1
		}
	}
	for _, l := range links {
		if disabled[l.ID] {
			continue
		}
		adj[l.From][l.FromPort] = l.To
	}

	t := &Table{cfg: cfg, Port: make([][]int, R), Hops: make([][]int, R)}
	for r := range t.Port {
		t.Port[r] = make([]int, R)
		t.Hops[r] = make([]int, R)
	}

	// One reverse BFS per destination over directed healthy links.
	for d := 0; d < R; d++ {
		dist := make([]int, R)
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		queue := []int{d}
		// Reverse adjacency: who can reach "cur" in one hop?
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for from := 0; from < R; from++ {
				if dist[from] != -1 {
					continue
				}
				for p := 1; p < len(adj[from]); p++ {
					if adj[from][p] == cur {
						dist[from] = dist[cur] + 1
						queue = append(queue, from)
						break
					}
				}
			}
		}
		for r := 0; r < R; r++ {
			t.Hops[r][d] = dist[r]
			if r == d {
				t.Port[r][d] = noc.PortLocal
				continue
			}
			if dist[r] == -1 {
				return nil, fmt.Errorf("reroute: router %d cannot reach %d with the given faults", r, d)
			}
			// Choose the preferred healthy neighbour strictly closer to d.
			t.Port[r][d] = -1
			for p := 1; p < len(adj[r]); p++ {
				nb := adj[r][p]
				if nb >= 0 && dist[nb] == dist[r]-1 {
					t.Port[r][d] = p
					break
				}
			}
			if t.Port[r][d] == -1 {
				return nil, fmt.Errorf("reroute: no forwarding port at %d toward %d", r, d)
			}
		}
	}
	return t, nil
}

// BuildSafe computes a deadlock-free reconfiguration table: spanning-tree
// routing over the surviving topology. A BFS spanning tree is grown from the
// healthiest router and every packet follows the unique tree path to its
// destination — up*/down* routing restricted to tree links, whose channel
// dependency graph is acyclic (all dependencies point rootward, then
// leafward, never back), so wormhole routing cannot deadlock no matter which
// links died. Build's shortest-path tables do not carry that guarantee: away
// from the fault-free case their detours can close a turn cycle, which is
// fine for the paper's oracle Rerouting baseline (reconfiguration happens at
// a quiet boundary) but not for mid-run recovery, where a reconfiguration
// landing mid-burst must never wedge the network it is trying to heal.
//
// Tree links must be healthy in both directions (traffic crosses them both
// up and down); when one-way faults disconnect the bidirectional graph,
// BuildSafe falls back to Build rather than strand reachable routers.
func BuildSafe(cfg noc.Config, links []noc.LinkInfo, disabled map[int]bool) (*Table, error) {
	topo := cfg.Topology()
	R := cfg.Routers()
	adj := make([][]int, R)
	for r := range adj {
		adj[r] = make([]int, topo.NumPorts(r))
		for p := range adj[r] {
			adj[r][p] = -1
		}
	}
	for _, l := range links {
		if disabled[l.ID] {
			continue
		}
		adj[l.From][l.FromPort] = l.To
	}
	// und[r][p] = neighbor over a bidirectionally healthy edge, or -1.
	und := make([][]int, R)
	for r := range und {
		und[r] = make([]int, len(adj[r]))
		for p := range und[r] {
			und[r][p] = -1
			nb := adj[r][p]
			if nb < 0 {
				continue
			}
			for q := 1; q < len(adj[nb]); q++ {
				if adj[nb][q] == r {
					und[r][p] = nb
					break
				}
			}
		}
	}
	// Root at the best-connected router (lowest id on ties) to keep the
	// tree shallow, then grow a BFS tree visiting ports in order so the
	// tree — and therefore the whole table — is deterministic.
	root, best := 0, -1
	for r := 0; r < R; r++ {
		deg := 0
		for p := 1; p < len(und[r]); p++ {
			if und[r][p] >= 0 {
				deg++
			}
		}
		if deg > best {
			root, best = r, deg
		}
	}
	tree := make([][]int, R) // tree[r][p] = neighbor when port p is a tree edge, else -1
	for r := range tree {
		tree[r] = make([]int, len(und[r]))
		for p := range tree[r] {
			tree[r][p] = -1
		}
	}
	seen := make([]bool, R)
	seen[root] = true
	visited := 1
	for queue := []int{root}; len(queue) > 0; {
		cur := queue[0]
		queue = queue[1:]
		for p := 1; p < len(und[cur]); p++ {
			nb := und[cur][p]
			if nb < 0 || seen[nb] {
				continue
			}
			seen[nb] = true
			visited++
			tree[cur][p] = nb
			for q := 1; q < len(und[nb]); q++ {
				if und[nb][q] == cur {
					tree[nb][q] = cur
					break
				}
			}
			queue = append(queue, nb)
		}
	}
	if visited < R {
		return Build(cfg, links, disabled)
	}

	t := &Table{cfg: cfg, Port: make([][]int, R), Hops: make([][]int, R)}
	for r := range t.Port {
		t.Port[r] = make([]int, R)
		t.Hops[r] = make([]int, R)
	}
	// Paths in a tree are unique, so one BFS per destination over tree
	// edges fully determines the table.
	for d := 0; d < R; d++ {
		dist := make([]int, R)
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		for queue := []int{d}; len(queue) > 0; {
			cur := queue[0]
			queue = queue[1:]
			for p := 1; p < len(tree[cur]); p++ {
				if nb := tree[cur][p]; nb >= 0 && dist[nb] == -1 {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		for r := 0; r < R; r++ {
			t.Hops[r][d] = dist[r]
			if r == d {
				t.Port[r][d] = noc.PortLocal
				continue
			}
			t.Port[r][d] = -1
			for p := 1; p < len(tree[r]); p++ {
				if nb := tree[r][p]; nb >= 0 && dist[nb] == dist[r]-1 {
					t.Port[r][d] = p
					break
				}
			}
			if t.Port[r][d] == -1 {
				return nil, fmt.Errorf("reroute: no tree port at %d toward %d", r, d)
			}
		}
	}
	return t, nil
}

// Route returns the table as a noc.RouteFunc.
func (t *Table) Route() noc.RouteFunc {
	return func(router, dst int) int { return t.Port[router][dst] }
}

// ExtraHops returns the total additional hops the table pays relative to
// the topology's fault-free distance, summed over all pairs — the
// rerouting cost metric of Figure 2's permanent-fault panel.
func (t *Table) ExtraHops() int {
	topo := t.cfg.Topology()
	extra := 0
	for r := range t.Hops {
		for d, h := range t.Hops[r] {
			if min := topo.HopDist(r, d); h > min {
				extra += h - min
			}
		}
	}
	return extra
}

// Apply disables the links on the network and installs the rebuilt table.
func Apply(n *noc.Network, disabled map[int]bool) (*Table, error) {
	return apply(n, disabled, Build, func(n *noc.Network, id int) int {
		n.DisableLink(id)
		return 0
	})
}

// ApplySafe is the mid-run recovery variant of Apply: it installs the
// deadlock-free BuildSafe table, disables links with the reclaiming
// DisableLinkReclaim (purging wormholes cut by the reconfiguration),
// rebuilds the dateline VC classes for the routes actually installed
// (off-minimal detours cross datelines where the constructor's
// minimal-route tables say they never will, re-closing the ring
// dependency cycle the dateline exists to cut), and finishes with a
// ReclaimTruncated sweep that frees the virtual channels wedged by
// tail-swallowing drop trojans — resources a tail can now never release.
// Apply keeps the plain semantics the oracle Rerouting baseline
// (Figure 10) is pinned to.
func ApplySafe(n *noc.Network, disabled map[int]bool) (*Table, error) {
	t, err := apply(n, disabled, BuildSafe, (*noc.Network).DisableLinkReclaim)
	if err != nil {
		return nil, err
	}
	n.ReclassifyVCs()
	n.ReclaimTruncated()
	return t, nil
}

func apply(n *noc.Network, disabled map[int]bool,
	build func(noc.Config, []noc.LinkInfo, map[int]bool) (*Table, error),
	disable func(*noc.Network, int) int) (*Table, error) {
	t, err := build(n.Config(), n.LinkSlice(), disabled)
	if err != nil {
		return nil, err
	}
	// Disable in link-id order: disabling mutates network state (drops
	// committed traffic), so the mutation order must not follow map order.
	ids := make([]int, 0, len(disabled))
	for id := range disabled { //nocvet:orderfree ids are sorted before use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !n.LinkDisabled(id) {
			disable(n, id)
		}
	}
	n.SetRoute(t.Route())
	return t, nil
}
