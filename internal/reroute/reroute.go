// Package reroute is the fault-tolerant rerouting baseline the paper
// compares L-Ob against in Figure 10 (labelled "Rerouting (Ariadne)"):
// instead of continuing to use a compromised link under obfuscation, the
// network disables it and recomputes routes around it, paying extra hops.
//
// Routes are built per destination with a breadth-first search over the
// healthy directed links, preferring the XY-consistent port on ties so the
// fault-free network reproduces plain XY routing exactly. Like Ariadne, the
// reconfiguration is a full-table rebuild triggered by each newly disabled
// link.
package reroute

import (
	"fmt"

	"tasp/internal/noc"
)

// Table is a fault-aware routing table: Port[r][d] is the output port
// router r uses toward destination d.
type Table struct {
	cfg  noc.Config
	Port [][]int
	// Hops[r][d] is the path length from r to d, -1 when unreachable.
	Hops [][]int
}

// portPreference orders ports for tie-breaking so that the healthy-network
// table degenerates to XY routing (x-dimension first).
var portPreference = []int{noc.PortEast, noc.PortWest, noc.PortNorth, noc.PortSouth}

// Build computes a table for the mesh avoiding the given disabled directed
// links (by link id).
func Build(cfg noc.Config, links []noc.LinkInfo, disabled map[int]bool) (*Table, error) {
	R := cfg.Routers()
	// adj[r][port] = neighbor router over a healthy link, or -1.
	adj := make([][]int, R)
	for r := range adj {
		adj[r] = []int{-1, -1, -1, -1, -1}
	}
	for _, l := range links {
		if disabled[l.ID] {
			continue
		}
		adj[l.From][l.FromPort] = l.To
	}

	t := &Table{cfg: cfg, Port: make([][]int, R), Hops: make([][]int, R)}
	for r := range t.Port {
		t.Port[r] = make([]int, R)
		t.Hops[r] = make([]int, R)
	}

	// One reverse BFS per destination over directed healthy links.
	for d := 0; d < R; d++ {
		dist := make([]int, R)
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		queue := []int{d}
		// Reverse adjacency: who can reach "cur" in one hop?
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for from := 0; from < R; from++ {
				if dist[from] != -1 {
					continue
				}
				for _, p := range portPreference {
					if adj[from][p] == cur {
						dist[from] = dist[cur] + 1
						queue = append(queue, from)
						break
					}
				}
			}
		}
		for r := 0; r < R; r++ {
			t.Hops[r][d] = dist[r]
			if r == d {
				t.Port[r][d] = noc.PortLocal
				continue
			}
			if dist[r] == -1 {
				return nil, fmt.Errorf("reroute: router %d cannot reach %d with the given faults", r, d)
			}
			// Choose the preferred healthy neighbour strictly closer to d.
			t.Port[r][d] = -1
			for _, p := range portPreference {
				nb := adj[r][p]
				if nb >= 0 && dist[nb] == dist[r]-1 {
					t.Port[r][d] = p
					break
				}
			}
			if t.Port[r][d] == -1 {
				return nil, fmt.Errorf("reroute: no forwarding port at %d toward %d", r, d)
			}
		}
	}
	return t, nil
}

// Route returns the table as a noc.RouteFunc.
func (t *Table) Route() noc.RouteFunc {
	return func(router, dst int) int { return t.Port[router][dst] }
}

// ExtraHops returns the total additional hops the table pays relative to
// Manhattan distance, summed over all pairs — the rerouting cost metric of
// Figure 2's permanent-fault panel.
func (t *Table) ExtraHops() int {
	extra := 0
	for r := range t.Hops {
		rx, ry := t.cfg.XY(r)
		for d, h := range t.Hops[r] {
			dx, dy := t.cfg.XY(d)
			man := abs(rx-dx) + abs(ry-dy)
			if h > man {
				extra += h - man
			}
		}
	}
	return extra
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Apply disables the links on the network and installs the rebuilt table.
func Apply(n *noc.Network, disabled map[int]bool) (*Table, error) {
	t, err := Build(n.Config(), n.Links(), disabled)
	if err != nil {
		return nil, err
	}
	for id := range disabled {
		if !n.LinkDisabled(id) {
			n.DisableLink(id)
		}
	}
	n.SetRoute(t.Route())
	return t, nil
}
