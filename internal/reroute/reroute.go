// Package reroute is the fault-tolerant rerouting baseline the paper
// compares L-Ob against in Figure 10 (labelled "Rerouting (Ariadne)"):
// instead of continuing to use a compromised link under obfuscation, the
// network disables it and recomputes routes around it, paying extra hops.
//
// Routes are built per destination with a breadth-first search over the
// healthy directed links, preferring the lowest-numbered port on ties: on
// the mesh that is east before west before north before south, so the
// fault-free network reproduces plain XY routing exactly. Like Ariadne, the
// reconfiguration is a full-table rebuild triggered by each newly disabled
// link, and it works unchanged on any Topology.
package reroute

import (
	"fmt"
	"sort"

	"tasp/internal/noc"
)

// Table is a fault-aware routing table: Port[r][d] is the output port
// router r uses toward destination d.
type Table struct {
	cfg  noc.Config
	Port [][]int
	// Hops[r][d] is the path length from r to d, -1 when unreachable.
	Hops [][]int
}

// Build computes a table for the configured topology avoiding the given
// disabled directed links (by link id). Ties between equal-length paths go
// to the lowest-numbered port, which on the mesh degenerates to XY routing
// (x-dimension first).
func Build(cfg noc.Config, links []noc.LinkInfo, disabled map[int]bool) (*Table, error) {
	topo := cfg.Topology()
	R := cfg.Routers()
	// adj[r][port] = neighbor router over a healthy link, or -1.
	adj := make([][]int, R)
	for r := range adj {
		adj[r] = make([]int, topo.NumPorts(r))
		for p := range adj[r] {
			adj[r][p] = -1
		}
	}
	for _, l := range links {
		if disabled[l.ID] {
			continue
		}
		adj[l.From][l.FromPort] = l.To
	}

	t := &Table{cfg: cfg, Port: make([][]int, R), Hops: make([][]int, R)}
	for r := range t.Port {
		t.Port[r] = make([]int, R)
		t.Hops[r] = make([]int, R)
	}

	// One reverse BFS per destination over directed healthy links.
	for d := 0; d < R; d++ {
		dist := make([]int, R)
		for i := range dist {
			dist[i] = -1
		}
		dist[d] = 0
		queue := []int{d}
		// Reverse adjacency: who can reach "cur" in one hop?
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for from := 0; from < R; from++ {
				if dist[from] != -1 {
					continue
				}
				for p := 1; p < len(adj[from]); p++ {
					if adj[from][p] == cur {
						dist[from] = dist[cur] + 1
						queue = append(queue, from)
						break
					}
				}
			}
		}
		for r := 0; r < R; r++ {
			t.Hops[r][d] = dist[r]
			if r == d {
				t.Port[r][d] = noc.PortLocal
				continue
			}
			if dist[r] == -1 {
				return nil, fmt.Errorf("reroute: router %d cannot reach %d with the given faults", r, d)
			}
			// Choose the preferred healthy neighbour strictly closer to d.
			t.Port[r][d] = -1
			for p := 1; p < len(adj[r]); p++ {
				nb := adj[r][p]
				if nb >= 0 && dist[nb] == dist[r]-1 {
					t.Port[r][d] = p
					break
				}
			}
			if t.Port[r][d] == -1 {
				return nil, fmt.Errorf("reroute: no forwarding port at %d toward %d", r, d)
			}
		}
	}
	return t, nil
}

// Route returns the table as a noc.RouteFunc.
func (t *Table) Route() noc.RouteFunc {
	return func(router, dst int) int { return t.Port[router][dst] }
}

// ExtraHops returns the total additional hops the table pays relative to
// the topology's fault-free distance, summed over all pairs — the
// rerouting cost metric of Figure 2's permanent-fault panel.
func (t *Table) ExtraHops() int {
	topo := t.cfg.Topology()
	extra := 0
	for r := range t.Hops {
		for d, h := range t.Hops[r] {
			if min := topo.HopDist(r, d); h > min {
				extra += h - min
			}
		}
	}
	return extra
}

// Apply disables the links on the network and installs the rebuilt table.
func Apply(n *noc.Network, disabled map[int]bool) (*Table, error) {
	t, err := Build(n.Config(), n.LinkSlice(), disabled)
	if err != nil {
		return nil, err
	}
	// Disable in link-id order: DisableLink mutates network state (drops
	// committed traffic), so the mutation order must not follow map order.
	ids := make([]int, 0, len(disabled))
	for id := range disabled { //nocvet:orderfree ids are sorted before use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if !n.LinkDisabled(id) {
			n.DisableLink(id)
		}
	}
	n.SetRoute(t.Route())
	return t, nil
}
