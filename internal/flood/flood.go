// Package flood implements the flood-based denial-of-service threat model
// the paper positions TASP against (Section II, [12]): rogue threads on
// compromised cores inject traffic at the maximum rate the injection port
// sustains, aimed at a victim region, depleting bandwidth and buffers. It
// also implements the runtime latency auditor of [13] — the detection
// technique the paper argues is hard to tune because "several factors
// influence packet latency during normal operation".
//
// Unlike a TASP trojan, a flood attack needs no hardware modification, is
// highly visible (injection counters spike) and is bandwidth-bound: QoS
// and rate limiting mitigate it, while TASP slips under both by weaponising
// the retransmission protocol itself.
package flood

import (
	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// Attack is a flood-based DoS configuration.
type Attack struct {
	// Cores lists the compromised cores running rogue threads.
	Cores []int
	// Victim is the router whose resources the flood targets.
	Victim int
	// Rate is the per-rogue-core injection probability per cycle (set
	// close to 1 for a full flood).
	Rate float64
	// Spray, when true, sprays packets uniformly instead of at the victim
	// (a bandwidth-depletion rather than endpoint-congestion flood).
	Spray bool
	// BodyFlits is the flood packet body size (big packets hold wormhole
	// resources longer).
	BodyFlits int

	EnableAt uint64 // cycle the rogue threads start

	rng  *xrand.RNG
	seq  map[int]uint8
	sent uint64
}

// New prepares a flood attack.
func New(cores []int, victim int, rate float64, seed uint64) *Attack {
	return &Attack{
		Cores:  append([]int(nil), cores...),
		Victim: victim,
		Rate:   rate,
		rng:    xrand.New(seed),
		seq:    map[int]uint8{},
	}
}

// Sent counts the flood packets injected so far.
func (a *Attack) Sent() uint64 { return a.sent }

// Tick rolls the rogue threads for one cycle, injecting through the same
// function the legitimate generator uses. routers is the mesh router count
// (for spray mode).
func (a *Attack) Tick(cycle uint64, routers int, inject func(core int, p *flit.Packet) bool) {
	if cycle < a.EnableAt {
		return
	}
	for _, core := range a.Cores {
		if !a.rng.Bool(a.Rate) {
			continue
		}
		dst := a.Victim
		if a.Spray {
			dst = a.rng.Intn(routers)
		}
		a.seq[core]++
		p := &flit.Packet{Hdr: flit.Header{
			VC:   uint8(a.rng.Intn(4)),
			DstR: uint8(dst),
			DstC: uint8(a.rng.Intn(4)),
			Mem:  uint32(dst)<<24 | uint32(a.rng.Intn(1<<20)),
			Seq:  a.seq[core],
		}}
		for i := 0; i < a.BodyFlits; i++ {
			p.Body = append(p.Body, a.rng.Uint64())
		}
		if inject(core, p) {
			a.sent++
		}
	}
}

// LatencyAuditor is the runtime latency monitor of [13]: it learns a
// baseline end-to-end latency during a calibration window and raises an
// alarm when the recent average exceeds the baseline by a threshold
// factor. The paper's criticism — normal congestion also moves latency —
// is measurable here as the auditor's false-positive rate.
type LatencyAuditor struct {
	// Threshold is the alarm multiplier over the calibrated baseline.
	Threshold float64
	// Window is the EWMA weight denominator (larger = smoother).
	Window float64

	calibrating bool
	baseline    float64
	ewma        float64
	samples     uint64

	// Alarms counts threshold crossings; FirstAlarm is the sample index
	// of the first one (0 = never).
	Alarms     uint64
	FirstAlarm uint64
}

// NewLatencyAuditor returns an auditor in its calibration phase.
func NewLatencyAuditor(threshold, window float64) *LatencyAuditor {
	if threshold <= 1 {
		threshold = 2
	}
	if window <= 1 {
		window = 64
	}
	return &LatencyAuditor{Threshold: threshold, Window: window, calibrating: true}
}

// EndCalibration freezes the learned baseline.
func (a *LatencyAuditor) EndCalibration() {
	a.calibrating = false
	a.baseline = a.ewma
	if a.baseline == 0 {
		a.baseline = 1
	}
}

// Observe feeds one delivered packet's latency.
func (a *LatencyAuditor) Observe(latency uint64) {
	a.samples++
	l := float64(latency)
	if a.ewma == 0 {
		a.ewma = l
	} else {
		a.ewma += (l - a.ewma) / a.Window
	}
	if a.calibrating {
		return
	}
	if a.ewma > a.baseline*a.Threshold {
		a.Alarms++
		if a.FirstAlarm == 0 {
			a.FirstAlarm = a.samples
		}
	}
}

// Baseline returns the calibrated baseline latency.
func (a *LatencyAuditor) Baseline() float64 { return a.baseline }

// EWMA returns the current latency estimate.
func (a *LatencyAuditor) EWMA() float64 { return a.ewma }

// Alarmed reports whether any alarm fired.
func (a *LatencyAuditor) Alarmed() bool { return a.Alarms > 0 }
