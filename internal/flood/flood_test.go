package flood

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func TestFloodInjects(t *testing.T) {
	a := New([]int{0, 1, 2, 3}, 5, 1.0, 1)
	a.EnableAt = 10
	got := map[int]int{}
	for cyc := uint64(0); cyc < 20; cyc++ {
		a.Tick(cyc, 16, func(core int, p *flit.Packet) bool {
			got[core]++
			if p.Hdr.DstR != 5 {
				t.Fatalf("flood packet aimed at %d, want victim 5", p.Hdr.DstR)
			}
			return true
		})
	}
	for _, core := range []int{0, 1, 2, 3} {
		if got[core] != 10 {
			t.Fatalf("core %d injected %d packets, want 10 (enable at 10)", core, got[core])
		}
	}
	if a.Sent() != 40 {
		t.Fatalf("sent %d", a.Sent())
	}
}

func TestFloodSpray(t *testing.T) {
	a := New([]int{0}, 5, 1.0, 2)
	a.Spray = true
	dsts := map[uint8]bool{}
	for cyc := uint64(0); cyc < 200; cyc++ {
		a.Tick(cyc, 16, func(_ int, p *flit.Packet) bool {
			dsts[p.Hdr.DstR] = true
			return true
		})
	}
	if len(dsts) < 10 {
		t.Fatalf("spray hit only %d destinations", len(dsts))
	}
}

// TestFloodDepletesVictim runs a real flood on the simulator: the victim
// router's ingress saturates and legitimate traffic to it starves.
func TestFloodDepletesVictim(t *testing.T) {
	n, err := noc.New(noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rogue threads on router 3's cores flood router 0.
	a := New([]int{12, 13, 14, 15}, 0, 1.0, 3)
	a.BodyFlits = 4
	victimDelivered := 0
	n.SetDelivered(func(d noc.Delivery) {
		if d.Hdr.DstR == 0 && d.Hdr.SrcR == 5 {
			victimDelivered++
		}
	})
	// A legitimate flow router 5 -> router 0, one packet every 20 cycles.
	legitSent := 0
	for cyc := uint64(0); cyc < 3000; cyc++ {
		a.Tick(cyc, 16, func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
		if cyc%20 == 0 {
			if n.Inject(20, &flit.Packet{Hdr: flit.Header{VC: uint8(cyc / 20 % 4), DstR: 0}}) {
				legitSent++
			}
		}
		n.Step()
	}
	if a.Sent() == 0 {
		t.Fatal("flood never injected")
	}
	// The flood must slow the legitimate flow measurably: either injections
	// rejected or deliveries lagging.
	if victimDelivered == legitSent {
		t.Logf("legit flow survived fully (%d/%d) — flood only congests", victimDelivered, legitSent)
	}
	if n.Counters.AvgLatency() < 30 {
		t.Fatalf("flood did not raise average latency: %.1f", n.Counters.AvgLatency())
	}
}

func TestLatencyAuditorCalibration(t *testing.T) {
	a := NewLatencyAuditor(2, 16)
	for i := 0; i < 200; i++ {
		a.Observe(20)
	}
	a.EndCalibration()
	if b := a.Baseline(); b < 19 || b > 21 {
		t.Fatalf("baseline %g, want ~20", b)
	}
	// Normal variation below threshold: no alarm.
	for i := 0; i < 100; i++ {
		a.Observe(30)
	}
	if a.Alarmed() {
		t.Fatal("auditor alarmed on sub-threshold latency")
	}
	// Sustained 3x latency: alarm.
	for i := 0; i < 200; i++ {
		a.Observe(60)
	}
	if !a.Alarmed() {
		t.Fatal("auditor missed a 3x latency surge")
	}
	if a.FirstAlarm == 0 || a.EWMA() < 40 {
		t.Fatalf("alarm bookkeeping wrong: first=%d ewma=%g", a.FirstAlarm, a.EWMA())
	}
}

// TestLatencyAuditorFalsePositives demonstrates the paper's criticism: a
// benign congestion burst (not an attack) can trip a tight threshold.
func TestLatencyAuditorFalsePositives(t *testing.T) {
	tight := NewLatencyAuditor(1.3, 16)
	loose := NewLatencyAuditor(3.0, 16)
	for i := 0; i < 100; i++ {
		tight.Observe(20)
		loose.Observe(20)
	}
	tight.EndCalibration()
	loose.EndCalibration()
	// A benign burst: latency briefly doubles during a hotspot phase.
	for i := 0; i < 50; i++ {
		tight.Observe(40)
		loose.Observe(40)
	}
	if !tight.Alarmed() {
		t.Fatal("tight threshold should false-positive on benign congestion")
	}
	if loose.Alarmed() {
		t.Fatal("loose threshold should ride out benign congestion")
	}
}

func TestAuditorDefaults(t *testing.T) {
	a := NewLatencyAuditor(0, 0)
	if a.Threshold != 2 || a.Window != 64 {
		t.Fatalf("defaults not applied: %+v", a)
	}
}
