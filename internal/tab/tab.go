// Package tab renders experiment results as aligned plain-text tables. It
// is the shared reporting substrate of the paper harnesses (internal/exp)
// and the campaign aggregator (internal/campaign), which must format
// identically for their outputs to be diffable against each other.
package tab

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

// Render formats the table as aligned plain text.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c + "  ")
			}
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// F1 formats a float at 1 decimal, F2 at 2, F3 at 3, F4 at 4.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F2 formats a float at 2 decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats a float at 3 decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// F4 formats a float at 4 decimals.
func F4(v float64) string { return fmt.Sprintf("%.4f", v) }

// Pct formats a fraction as a percentage at 1 decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
