package sidechannel

import (
	"testing"

	"tasp/internal/power"
)

func TestCleanChipFalsePositiveRateLow(t *testing.T) {
	a := Default40nm()
	r := a.Run(5000, 0, 2000, 1)
	// 3-sigma one-sided threshold: ~0.1-1% false positives expected
	// (calibration sigma is itself noisy with 20 goldens).
	if r.FalsePositiveRate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", r.FalsePositiveRate)
	}
	if r.DetectionRate > 0.05 {
		t.Fatalf("zero-overhead 'trojan' detected at %.3f", r.DetectionRate)
	}
}

func TestHugeTrojanAlwaysDetected(t *testing.T) {
	a := Default40nm()
	// +100% leakage: far outside any process spread.
	r := a.Run(5000, 5000, 500, 2)
	if r.DetectionRate < 0.99 {
		t.Fatalf("2x leakage trojan detected only %.3f", r.DetectionRate)
	}
}

// TestTASPEvadesSideChannel reproduces the paper's Section V-A argument:
// a single TASP trojan's leakage is a sub-1% perturbation of a router,
// far below a 7% process-variation floor, so power-based side-channel
// analysis cannot find it.
func TestTASPEvadesSideChannel(t *testing.T) {
	router := power.BuildRouter(power.DefaultRouterParams())
	ht := power.BuildTASP(power.TASPFull)
	a := Default40nm()
	r := a.Run(router.Leakage(), ht.Leakage(), 2000, 3)
	if r.RelativeOverhead >= 0.01 {
		t.Fatalf("TASP leakage overhead %.4f should be <1%%", r.RelativeOverhead)
	}
	// Detection must be statistically indistinguishable from the false
	// positive rate.
	if r.DetectionRate > r.FalsePositiveRate+0.05 {
		t.Fatalf("TASP detected at %.3f vs false positives %.3f — it should hide in the variation floor",
			r.DetectionRate, r.FalsePositiveRate)
	}
}

func TestDetectionMonotoneInOverhead(t *testing.T) {
	a := Default40nm()
	prev := -1.0
	for _, ht := range []float64{0, 250, 1000, 2500, 5000} {
		r := a.Run(5000, ht, 1500, 4)
		if r.DetectionRate < prev-0.05 {
			t.Fatalf("detection rate not (weakly) monotone at ht=%g: %g after %g", ht, r.DetectionRate, prev)
		}
		prev = r.DetectionRate
	}
}

func TestLowerVariationCatchesMore(t *testing.T) {
	precise := Analysis{ProcessSigma: 0.005, NoiseSigma: 0.001, Goldens: 50, ThresholdSigma: 3}
	sloppy := Default40nm()
	ht := 100.0 // 2% of base
	rp := precise.Run(5000, ht, 2000, 5)
	rs := sloppy.Run(5000, ht, 2000, 5)
	if rp.DetectionRate <= rs.DetectionRate {
		t.Fatalf("precise campaign (%.3f) not better than sloppy (%.3f)", rp.DetectionRate, rs.DetectionRate)
	}
	if rp.DetectionRate < 0.5 {
		t.Fatalf("a 2%% trojan should be visible at 0.5%% variation: %.3f", rp.DetectionRate)
	}
}

func TestMinDetectableOverhead(t *testing.T) {
	a := Default40nm()
	min := a.MinDetectableOverhead(5000, 0.9, 400, 6)
	// With 7% process variation, the resolution should be on the order of
	// tens of percent — far above TASP's <1%.
	if min < 0.02 || min > 1.5 {
		t.Fatalf("min detectable overhead %.3f implausible", min)
	}
	ht := power.BuildTASP(power.TASPFull)
	router := power.BuildRouter(power.DefaultRouterParams())
	if taspOv := ht.Leakage() / router.Leakage(); taspOv >= min {
		t.Fatalf("TASP overhead %.4f not under the side-channel resolution %.3f", taspOv, min)
	}
}
