// Package sidechannel models post-fabrication hardware-trojan detection by
// side-channel analysis (paper Sections II and V-A, [16][17]): comparing a
// suspect chip's static power or path timing against a golden population.
// "The static power cost of a HT is important because when the HT is idle,
// it remains the only visible characteristic that is detectable."
//
// The model is the standard one from the HT-detection literature: each
// fabricated chip's leakage is the nominal design leakage scaled by a
// lognormal-ish process-variation factor plus measurement noise; the
// detector calibrates mean and deviation on golden (trojan-free) chips and
// flags suspects whose measurement exceeds a k-sigma threshold. A trojan is
// caught only when its added leakage stands out of the variation floor —
// which a sub-1% TASP does not.
package sidechannel

import (
	"math"

	"tasp/internal/xrand"
)

// Analysis configures one side-channel detection campaign.
type Analysis struct {
	// ProcessSigma is the relative per-chip process-variation sigma of the
	// measured quantity (5-10% is typical for leakage at 40 nm).
	ProcessSigma float64
	// NoiseSigma is the relative measurement-noise sigma per reading.
	NoiseSigma float64
	// Goldens is the number of trojan-free chips used for calibration.
	Goldens int
	// ThresholdSigma is the alarm threshold in calibrated deviations.
	ThresholdSigma float64
}

// Default40nm returns a realistic campaign: 7% process variation, 1%
// measurement noise, 20 golden chips, 3-sigma alarm.
func Default40nm() Analysis {
	return Analysis{ProcessSigma: 0.07, NoiseSigma: 0.01, Goldens: 20, ThresholdSigma: 3}
}

// gauss draws a standard normal via Box-Muller.
func gauss(rng *xrand.RNG) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// measure simulates one chip reading: nominal * (1 + process) * (1 + noise).
func (a Analysis) measure(rng *xrand.RNG, nominal float64) float64 {
	p := 1 + a.ProcessSigma*gauss(rng)
	n := 1 + a.NoiseSigma*gauss(rng)
	if p < 0.5 {
		p = 0.5 // clamp pathological tails
	}
	return nominal * p * n
}

// Result summarises a campaign.
type Result struct {
	// DetectionRate is the fraction of infected chips flagged.
	DetectionRate float64
	// FalsePositiveRate is the fraction of clean chips flagged.
	FalsePositiveRate float64
	// RelativeOverhead is htQuantity / baseQuantity, for reporting.
	RelativeOverhead float64
}

// Run executes a Monte-Carlo campaign: base is the clean chip's nominal
// quantity (leakage in nW, or a path delay in ps), ht the trojan's
// addition. trials chips of each kind are measured against a golden
// calibration.
func (a Analysis) Run(base, ht float64, trials int, seed uint64) Result {
	rng := xrand.New(seed)
	// Calibrate on golden chips.
	var sum, sum2 float64
	for i := 0; i < a.Goldens; i++ {
		m := a.measure(rng, base)
		sum += m
		sum2 += m * m
	}
	mean := sum / float64(a.Goldens)
	vari := sum2/float64(a.Goldens) - mean*mean
	if vari < 1e-12 {
		vari = 1e-12
	}
	sigma := math.Sqrt(vari)
	limit := mean + a.ThresholdSigma*sigma

	detected, falsePos := 0, 0
	for i := 0; i < trials; i++ {
		if a.measure(rng, base+ht) > limit {
			detected++
		}
		if a.measure(rng, base) > limit {
			falsePos++
		}
	}
	return Result{
		DetectionRate:     float64(detected) / float64(trials),
		FalsePositiveRate: float64(falsePos) / float64(trials),
		RelativeOverhead:  ht / base,
	}
}

// MinDetectableOverhead estimates, by bisection, the smallest relative
// trojan addition the campaign catches with at least the target detection
// rate — the side-channel "resolution" a trojan designer must stay under.
func (a Analysis) MinDetectableOverhead(base float64, targetRate float64, trials int, seed uint64) float64 {
	lo, hi := 0.0, 2.0
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		r := a.Run(base, base*mid, trials, seed)
		if r.DetectionRate >= targetRate {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
