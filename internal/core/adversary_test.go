package core

import (
	"testing"

	"tasp/internal/detect"
	"tasp/internal/tasp"
)

// TestDropMisrouteDetectionAndLocalization is the end-to-end acceptance
// check for the quiet trojan families: on every topology, under both drop
// and misroute attacks, the secure-ack monitor must convict every infected
// link with the right verdict and the locate engine must rank an infected
// link first — from ack-gap/violation evidence alone, since neither family
// ever raises a NACK for the fault-triggered detector.
func TestDropMisrouteDetectionAndLocalization(t *testing.T) {
	wantClass := map[tasp.Kind]detect.AckClass{
		tasp.KindDrop:     detect.AckDropper,
		tasp.KindMisroute: detect.AckMisroute,
	}
	r := NewRunner()
	for _, topo := range []string{"mesh", "torus", "ring"} {
		for _, kind := range []tasp.Kind{tasp.KindDrop, tasp.KindMisroute} {
			for _, seed := range []uint64{1, 42} {
				t.Run(topo+"/"+kind.String(), func(t *testing.T) {
					cfg := quickExp()
					cfg.Noc.Topo = topo
					cfg.Seed = seed
					cfg.Attack.Kind = kind
					cfg.SecureAck = true
					cfg.Locate = true
					res, err := r.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.InfectedLinks) == 0 {
						t.Fatal("no infected links placed")
					}
					if res.HTInjections == 0 {
						t.Fatal("trojans never struck")
					}
					if kind == tasp.KindDrop && res.Final.DroppedInFlight == 0 {
						t.Fatal("drop attack swallowed nothing")
					}
					for _, id := range res.InfectedLinks {
						if got := res.AckVerdicts[id]; got != wantClass[kind] {
							t.Errorf("seed %d: link %d verdict = %v, want %v (all verdicts: %v)",
								seed, id, got, wantClass[kind], res.AckVerdicts)
						}
					}
					if res.AckFlaggedAt == 0 {
						t.Errorf("seed %d: monitor never flagged a link", seed)
					}
					if len(res.Suspects) == 0 {
						t.Fatalf("seed %d: locate produced no ranking", seed)
					}
					rank1 := res.Suspects[0].LinkID
					hit := false
					for _, id := range res.InfectedLinks {
						if id == rank1 {
							hit = true
						}
					}
					if !hit {
						t.Errorf("seed %d: rank-1 = link %d, want one of the infected %v",
							seed, rank1, res.InfectedLinks)
					}
				})
			}
		}
	}
}

// TestAdversaryRunsAreDeterministic pins the detector verdicts and the
// locate ranking across independent arenas: two fresh runners on the same
// configuration must agree exactly, for both quiet families at both pinned
// seeds.
func TestAdversaryRunsAreDeterministic(t *testing.T) {
	for _, kind := range []tasp.Kind{tasp.KindDrop, tasp.KindMisroute} {
		for _, seed := range []uint64{1, 42} {
			cfg := quickExp()
			cfg.Seed = seed
			cfg.Attack.Kind = kind
			cfg.SecureAck = true
			cfg.Locate = true

			a, err := NewRunner().Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewRunner().Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Throughput != b.Throughput || a.HTInjections != b.HTInjections ||
				a.AckFlaggedAt != b.AckFlaggedAt ||
				a.Final.DroppedInFlight != b.Final.DroppedInFlight ||
				a.Final.DroppedOrphan != b.Final.DroppedOrphan {
				t.Fatalf("%v seed %d: scalar results diverged", kind, seed)
			}
			if len(a.AckVerdicts) != len(b.AckVerdicts) {
				t.Fatalf("%v seed %d: verdict sets differ: %v vs %v", kind, seed, a.AckVerdicts, b.AckVerdicts)
			}
			for id, c := range a.AckVerdicts {
				if b.AckVerdicts[id] != c {
					t.Fatalf("%v seed %d: link %d verdict %v vs %v", kind, seed, id, c, b.AckVerdicts[id])
				}
			}
			if len(a.Suspects) != len(b.Suspects) {
				t.Fatalf("%v seed %d: ranking lengths differ", kind, seed)
			}
			for i := range a.Suspects {
				if a.Suspects[i] != b.Suspects[i] {
					t.Fatalf("%v seed %d: ranking diverged at %d: %+v vs %+v",
						kind, seed, i, a.Suspects[i], b.Suspects[i])
				}
			}
		}
	}
}
