package core

import (
	"fmt"

	"tasp/internal/detect"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/locate"
	"tasp/internal/noc"
	"tasp/internal/obfe2e"
	"tasp/internal/qos"
	"tasp/internal/reroute"
	"tasp/internal/stats"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// Runner executes experiments against reusable simulation arenas. One-shot
// callers get identical behaviour to the old core.Run (which is now a thin
// wrapper); the campaign engine keeps one Runner per worker so repeated
// points on the same platform reuse a single network, its wires, trojans,
// traffic generators and result storage instead of reallocating them —
// the basis of the 0 allocs/point steady-state contract.
//
// A Runner is NOT safe for concurrent use; give each worker its own.
type Runner struct {
	arenas map[noc.Config]*arena
	models map[modelKey]*traffic.Model
}

// NewRunner returns an empty Runner; arenas are built on first use per
// effective network configuration.
func NewRunner() *Runner {
	return &Runner{
		arenas: map[noc.Config]*arena{},
		models: map[modelKey]*traffic.Model{},
	}
}

type modelKey struct {
	name string
	cfg  noc.Config
}

// model memoizes benchmark traffic models: building one walks every
// src/dst pair's route, far too expensive per point.
func (r *Runner) model(name string, cfg noc.Config) (*traffic.Model, error) {
	k := modelKey{name, cfg}
	if m := r.models[k]; m != nil {
		return m, nil
	}
	m, err := traffic.Benchmark(name, cfg)
	if err != nil {
		return nil, err
	}
	r.models[k] = m
	return m, nil
}

type placementKey struct {
	model  *traffic.Model
	k      int
	target tasp.Target
}

type trojanKey struct {
	kind   tasp.Kind
	target tasp.Target
	yBits  int
	hijack int
	period int
	active int
}

// arena is one reusable simulation platform: a network plus every per-link
// and per-run component an experiment wires onto it, all reset in place
// between points. It is keyed by the effective noc.Config (after any
// mitigation-driven mutation such as TDM's retransmission partitioning).
type arena struct {
	cfg noc.Config
	net *noc.Network

	wires      []*SecureWire      // per link id, installed each point
	chains     []fault.Chain      // per link id, reusable injector chain storage
	transients []*fault.Transient // per link id, lazily built, reseeded per point
	isInfected []bool             // per link id scratch

	placements map[placementKey][]int
	trojans    map[trojanKey][]tasp.Trojan
	colls      map[int]*tasp.Collusion // per slice length, shared by a collude set
	gens       map[*traffic.Model]*traffic.Generator

	// disabled is the cumulative reconfiguration set for the current point:
	// the Rerouting baseline and conviction-driven recovery both feed it,
	// and every reroute.Apply receives the full set (the route builder does
	// not consult the network's own disabled-link state).
	disabled map[int]bool

	// hijacks memoizes the auto-selected misroute hijack router per victim;
	// nextAt is the (router, port) -> downstream-router table the selection
	// walks, built lazily on first misroute point.
	hijacks map[int]int
	nextAt  []int

	// ackmon is the memoized secure-ack monitor (SecureAck points only).
	ackmon *detect.AckMonitor

	tdm         *qos.TDM
	tdmSchedule func(cycle uint64, vc uint8) bool
	e2e         *obfe2e.Scrambler
	evScratch   map[int]locate.LinkEvidence
	scratch     flit.Packet // reused injection packet (TickInto)

	// Per-point state the hoisted closures read. The closures are created
	// once at arena construction so installing them per point costs nothing.
	res         *Results
	curTDM      *qos.TDM
	curE2E      *obfe2e.Scrambler
	trackVictim bool
	victim      uint8
	enableAt    uint64

	deliveredFn func(d noc.Delivery)
	injectFn    func(core int, p *flit.Packet) bool
}

// arena returns the reusable platform for an effective network
// configuration, building it on first use.
func (r *Runner) arena(cfg noc.Config) (*arena, error) {
	if a := r.arenas[cfg]; a != nil {
		return a, nil
	}
	net, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}
	layout := cfg.Layout()
	links := net.LinkSlice()
	a := &arena{
		cfg:        cfg,
		net:        net,
		wires:      make([]*SecureWire, len(links)),
		chains:     make([]fault.Chain, len(links)),
		transients: make([]*fault.Transient, len(links)),
		isInfected: make([]bool, len(links)),
		placements: map[placementKey][]int{},
		trojans:    map[trojanKey][]tasp.Trojan{},
		colls:      map[int]*tasp.Collusion{},
		gens:       map[*traffic.Model]*traffic.Generator{},
		hijacks:    map[int]int{},
		disabled:   map[int]bool{},
	}
	for i := range a.wires {
		a.wires[i] = NewSecureWire(fault.None, 0, layout)
	}
	a.deliveredFn = func(d noc.Delivery) {
		a.res.Latency.Observe(d.Latency)
		if a.trackVictim && d.Hdr.DstR == a.victim && a.net.Cycle() >= a.enableAt {
			a.res.VictimDelivered++
		}
	}
	a.injectFn = func(core int, p *flit.Packet) bool {
		if a.curTDM != nil {
			p.Hdr.VC = a.curTDM.AssignVC(core, p.Hdr.Seq)
		}
		if a.curE2E != nil {
			p.Hdr.SrcR = uint8(a.cfg.CoreRouter(core)) // key derivation needs src
			a.curE2E.Apply(p)
		}
		return a.net.Inject(core, p)
	}
	r.arenas[cfg] = a
	return a, nil
}

// placement memoizes the attacker's optimal link selection, which reruns the
// analytic load model and a connectivity check per candidate. The returned
// slice is shared — callers must copy, not mutate.
func (a *arena) placement(m *traffic.Model, k int, target tasp.Target) []int {
	key := placementKey{m, k, target}
	if p, ok := a.placements[key]; ok {
		return p
	}
	p := ChooseInfectedLinks(m, a.cfg, a.net.LinkSlice(), k, target)
	a.placements[key] = p
	return p
}

// trojanSet returns n reset trojans of one family for a target, reusing
// previously compiled instances (the comparator taps and wire tables depend
// only on the family, target, hijack, duty cycle and the arena's layout).
// Colluding sets get their rotation roles reassigned per call — the memoized
// slice may be cut to a different n between points.
func (a *arena) trojanSet(kind tasp.Kind, target tasp.Target, yBits, hijack, period, active, n int) []tasp.Trojan {
	key := trojanKey{kind, target, yBits, hijack, period, active}
	ts := a.trojans[key]
	for len(ts) < n {
		switch kind {
		case tasp.KindDrop:
			ts = append(ts, tasp.NewDropper(target, a.net.Layout()))
		case tasp.KindMisroute:
			ts = append(ts, tasp.NewMisrouter(target, uint8(hijack), a.net.Layout()))
		case tasp.KindThrottle:
			ts = append(ts, tasp.NewThrottledDropper(target, a.net.Layout(), period, active))
		case tasp.KindCollude:
			coord := a.colls[period]
			if coord == nil {
				coord = tasp.NewCollusion(period)
				a.colls[period] = coord
			}
			ts = append(ts, tasp.NewColludingDropper(target, a.net.Layout(), coord))
		default:
			ts = append(ts, tasp.New(target, yBits, a.net.Layout()))
		}
	}
	a.trojans[key] = ts
	ts = ts[:n]
	for i, t := range ts {
		t.Reset()
		if cd, ok := t.(*tasp.ColludingDropper); ok {
			cd.SetRole(i, n)
		}
	}
	return ts
}

// autoHijack picks the misroute hijack router for a victim: the reachable
// router farthest from the victim by default-route walk distance (ties to the
// higher id), so the diversion path is maximal and, on every supported
// substrate, already diverges at the first hop. Memoized per victim — the
// route walk is O(R^2) and must not recur per campaign point.
func (a *arena) autoHijack(victim int) int {
	if h, ok := a.hijacks[victim]; ok {
		return h
	}
	t := a.net.Topology()
	R := t.Routers()
	if a.nextAt == nil {
		a.nextAt = make([]int, R*noc.MaxPorts)
		for i := range a.nextAt {
			a.nextAt[i] = -1
		}
		for _, l := range a.net.LinkSlice() {
			a.nextAt[l.From*noc.MaxPorts+l.FromPort] = l.To
		}
	}
	best, bestDist := victim, -1
	for cand := 0; cand < R; cand++ {
		if cand == victim {
			continue
		}
		r, dist := victim, 0
		for hop := 0; r != cand && hop <= R; hop++ {
			nxt := a.nextAt[r*noc.MaxPorts+t.Route(r, cand)]
			if nxt < 0 {
				dist = -1
				break
			}
			r = nxt
			dist++
		}
		if r != cand || dist < 0 {
			continue
		}
		if dist > bestDist || (dist == bestDist && cand > best) {
			best, bestDist = cand, dist
		}
	}
	a.hijacks[victim] = best
	return best
}

// generator returns the memoized traffic generator for a model, rewound to
// the given seed.
func (a *arena) generator(m *traffic.Model, seed uint64) *traffic.Generator {
	g := a.gens[m]
	if g == nil {
		g = m.Generator(seed)
		a.gens[m] = g
		return g
	}
	g.Reset(seed)
	return g
}

// Run executes one experiment into a fresh Results (the one-shot API; the
// old core.Run delegates here).
func (r *Runner) Run(cfg ExperimentConfig) (*Results, error) {
	res := &Results{}
	if err := r.RunInto(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// resetResults rewinds a Results for reuse: maps cleared, slices truncated
// in place, the latency histogram emptied. Grown storage is kept — the
// amortisation RunInto's steady state relies on.
func resetResults(res *Results, cfg ExperimentConfig) {
	res.Config = cfg
	res.InfectedLinks = res.InfectedLinks[:0]
	res.Samples = res.Samples[:0]
	res.AtEnable, res.Final = noc.Counters{}, noc.Counters{}
	res.Throughput, res.AvgLatency = 0, 0
	res.HTMatches, res.HTInjections = 0, 0
	if res.Detections == nil {
		res.Detections = map[int]detect.Classification{}
	} else {
		clear(res.Detections)
	}
	if res.TriggerScopes == nil {
		res.TriggerScopes = map[int]string{}
	} else {
		clear(res.TriggerScopes)
	}
	res.Obfuscated, res.StallCycles, res.BISTScans = 0, 0, 0
	if res.AckVerdicts == nil {
		res.AckVerdicts = map[int]detect.AckClass{}
	} else {
		clear(res.AckVerdicts)
	}
	if res.AckChannels == nil {
		res.AckChannels = map[int]detect.AckChannel{}
	} else {
		clear(res.AckChannels)
	}
	res.AckFlaggedAt = 0
	res.HijackRouter = -1
	res.ReroutedAt = 0
	res.RecoveredAt = 0
	res.RecoveredLinks = res.RecoveredLinks[:0]
	res.AtRecover = noc.Counters{}
	res.VictimAtRecover = 0
	res.VictimDelivered = 0
	res.FirstTrojanAt = 0
	if res.Latency == nil {
		res.Latency = stats.NewHistogram()
	} else {
		res.Latency.Reset()
	}
	res.Suspects, res.SuspectsTelemetry = nil, nil
	res.SuspectTrace = res.SuspectTrace[:0]
}

// RunInto executes one experiment into a caller-owned Results, reusing both
// the Results' storage and the Runner's arena for the experiment's platform.
// Repeated same-platform points with the none or s2s-lob mitigations run
// allocation-free at steady state; points that reconfigure the topology
// (rerouting), rank suspects (locate) or scramble end-to-end pay their own
// per-point costs.
//
// The behaviour is exactly the old core.Run's: same seeded draw order, same
// phase structure, same results — enforced by the golden experiment output
// and the fresh-vs-reused equivalence test.
func (r *Runner) RunInto(cfg ExperimentConfig, res *Results) error {
	if err := cfg.Noc.Validate(); err != nil {
		return err
	}
	model := cfg.Model
	if model == nil {
		m, err := r.model(cfg.Benchmark, cfg.Noc)
		if err != nil {
			return err
		}
		model = m
	}
	if cfg.Mitigation == TDMQoS {
		// SurfNoC-style non-interference partitions the retransmission
		// buffers between the domains too.
		cfg.Noc.PartitionRetrans = true
	}
	a, err := r.arena(cfg.Noc)
	if err != nil {
		return err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 25
	}
	if cfg.RerouteDetectDelay <= 0 {
		cfg.RerouteDetectDelay = 200
	}
	enableAt := cfg.Attack.EnableAt
	if enableAt == 0 {
		enableAt = uint64(cfg.Warmup)
	}

	resetResults(res, cfg)
	net := a.net
	net.Reset()

	// ---- attack deployment ----
	res.InfectedLinks = append(res.InfectedLinks, cfg.Attack.Links...)
	if cfg.Attack.Enabled && len(res.InfectedLinks) == 0 {
		k := cfg.Attack.NumLinks
		if k <= 0 {
			k = 1
		}
		res.InfectedLinks = append(res.InfectedLinks, a.placement(model, k, cfg.Attack.Target)...)
	}
	infected := res.InfectedLinks
	yBits := cfg.Attack.YBits
	if yBits == 0 {
		yBits = tasp.DefaultPayloadBits
	}

	// ---- wire assembly ----
	mitigated := cfg.Mitigation == S2SLOb
	wantCap := cfg.DetectorHistory
	if wantCap <= 0 {
		wantCap = detect.DefaultHistoryCap
	}
	// A negative hijack means auto-select; 0 is a legitimate explicit choice
	// (router 0 exists on every substrate), so the sentinel is -1, not 0.
	hijack := cfg.Attack.Hijack
	if cfg.Attack.Enabled && cfg.Attack.Kind == tasp.KindMisroute {
		if hijack < 0 {
			hijack = a.autoHijack(int(cfg.Attack.Target.DstR))
		}
		res.HijackRouter = hijack
	}
	var trojans []tasp.Trojan
	if cfg.Attack.Enabled && len(infected) > 0 {
		trojans = a.trojanSet(cfg.Attack.Kind, cfg.Attack.Target, yBits, hijack,
			cfg.Attack.DutyPeriod, cfg.Attack.DutyActive, len(infected))
	}
	for i := range a.isInfected {
		a.isInfected[i] = false
	}
	for _, id := range infected {
		a.isInfected[id] = true
	}
	ti := 0
	for _, l := range net.LinkSlice() {
		chain := a.chains[l.ID][:0]
		if a.isInfected[l.ID] && cfg.Attack.Enabled {
			chain = append(chain, trojans[ti])
			ti++
		}
		if cfg.TransientBER > 0 {
			tr := a.transients[l.ID]
			if tr == nil {
				tr = fault.NewTransient(cfg.TransientBER, cfg.Seed^uint64(l.ID)<<8)
				a.transients[l.ID] = tr
			} else {
				tr.Reset(cfg.TransientBER, cfg.Seed^uint64(l.ID)<<8)
			}
			chain = append(chain, tr)
		}
		a.chains[l.ID] = chain
		var tap fault.Adversary = fault.None
		if len(chain) > 0 {
			// *Chain (not Chain) keeps the interface assignment pointer-
			// shaped: boxing the slice header would allocate per link.
			tap = &a.chains[l.ID]
		}
		w := a.wires[l.ID]
		w.Reset(tap, cfg.Seed^0x10b^uint64(l.ID))
		w.Mitigated = mitigated
		if w.Detector.Cap() != wantCap {
			w.Detector = detect.New(wantCap)
		}
		net.SetWire(l.ID, w)
	}

	// ---- mitigation-specific setup ----
	var tdm *qos.TDM
	if cfg.Mitigation == TDMQoS {
		if a.tdm == nil {
			a.tdm = qos.NewTDM(cfg.Noc)
			a.tdmSchedule = a.tdm.Schedule
		}
		tdm = a.tdm
		net.SetLinkSchedule(a.tdmSchedule)
	}
	var e2e *obfe2e.Scrambler
	if cfg.Mitigation == E2EObfuscation {
		if a.e2e == nil {
			a.e2e = obfe2e.New(cfg.Seed ^ 0xe2e)
		} else {
			a.e2e.Reseed(cfg.Seed ^ 0xe2e)
		}
		e2e = a.e2e
	}

	// Delivery accounting: latency distribution plus, for destination-style
	// targets, the victim application's goodput.
	trackVictim := false
	var victim uint8
	switch cfg.Attack.Target.Kind {
	case tasp.TargetDest, tasp.TargetDestSrc, tasp.TargetFull:
		trackVictim, victim = true, cfg.Attack.Target.DstR
	}
	a.res = res
	a.curTDM, a.curE2E = tdm, e2e
	a.trackVictim, a.victim = trackVictim, victim
	a.enableAt = enableAt
	net.SetDelivered(a.deliveredFn)

	// ---- localization + secure-ack layers ----
	var tel *noc.LinkTelemetry
	var eng *locate.Engine
	if cfg.Locate {
		tel = net.EnableTelemetry(0)
		eng = locate.New(net.Topology(), net.LinkSlice())
		if a.evScratch == nil {
			a.evScratch = make(map[int]locate.LinkEvidence, len(a.wires))
		}
	}
	var ackmon *detect.AckMonitor
	if cfg.SecureAck {
		if a.ackmon == nil {
			a.ackmon = detect.NewAckMonitor(len(net.LinkSlice()))
		} else {
			a.ackmon.Reset()
		}
		ackmon = a.ackmon
		ackmon.DeficitRatio = cfg.AckDeficitRatio
	}
	recoverOn := cfg.RecoverOnConvict && ackmon != nil
	clear(a.disabled)
	if len(cfg.PredisabledLinks) > 0 {
		// Post-fault capacity oracle: the links are down (with the safe
		// reconfiguration) from the very first cycle, as if recovery had
		// convicted them instantly and for free.
		for _, id := range cfg.PredisabledLinks {
			a.disabled[id] = true
		}
		if _, err := reroute.ApplySafe(net, a.disabled); err != nil {
			return fmt.Errorf("predisable: %w", err)
		}
	}
	gatherEvidence := func() map[int]locate.LinkEvidence {
		for _, l := range net.LinkSlice() {
			op := net.LinkOutput(l.ID)
			// Clamped like the monitor's: sampling skew can put recv
			// momentarily ahead of sent, and an unsigned wrap here would
			// swamp the ranking's anomaly term.
			var ackGap uint64
			if op.FlitsSent > op.FlitsRecv {
				ackGap = op.FlitsSent - op.FlitsRecv
			}
			ev := locate.LinkEvidence{
				Class:           a.wires[l.ID].Detector.Classification(),
				Retransmissions: op.Retransmissions,
				FlitsSent:       op.FlitsSent,
				AckGap:          ackGap,
				RouteViolations: op.RouteViolations,
			}
			if ackmon != nil {
				ev.Ack = ackmon.Class(l.ID)
			}
			a.evScratch[l.ID] = ev
		}
		return a.evScratch
	}

	gen := a.generator(model, cfg.Seed)

	// ---- main loop ----
	total := cfg.Warmup + cfg.Measure
	rerouted := false
	for c := 0; c < total; c++ {
		if net.Cycle()+1 == enableAt {
			for _, ht := range trojans {
				ht.SetKillSwitch(true)
			}
		}
		gen.TickInto(&a.scratch, a.injectFn)
		net.Step()
		if net.Cycle() == enableAt {
			res.AtEnable = net.Counters
		}
		if cfg.Mitigation == Rerouting && !rerouted && cfg.Attack.Enabled &&
			net.Cycle() >= enableAt+uint64(cfg.RerouteDetectDelay) {
			for _, id := range infected {
				a.disabled[id] = true
			}
			if _, err := reroute.Apply(net, a.disabled); err != nil {
				return fmt.Errorf("rerouting baseline: %w", err)
			}
			rerouted = true
			res.ReroutedAt = net.Cycle()
		}
		if mitigated && res.FirstTrojanAt == 0 {
			for _, w := range a.wires {
				if w.Detector.Classification() == detect.Trojan {
					res.FirstTrojanAt = net.Cycle()
					break
				}
			}
		}
		if int(net.Cycle())%cfg.SampleEvery == 0 {
			s := Sample{Occupancy: net.Occupancy()}
			if tdm != nil {
				for d := 0; d < qos.NumDomains; d++ {
					s.Domain[d] = tdm.OccupancyOf(net, d)
				}
			}
			res.Samples = append(res.Samples, s)
			if ackmon != nil {
				for _, l := range net.LinkSlice() {
					op := net.LinkOutput(l.ID)
					ackmon.Observe(l.ID, detect.AckObservation{
						FlitsSent:       op.FlitsSent,
						FlitsRecv:       op.FlitsRecv,
						RouteViolations: op.RouteViolations,
						Blocked:         net.LinkBlocked(l.ID),
					})
				}
				ackmon.FinishWindow()
				if res.AckFlaggedAt == 0 && ackmon.Flagged() > 0 {
					res.AckFlaggedAt = net.Cycle()
				}
				if recoverOn {
					// Conviction-driven recovery: every newly convicted
					// link joins the cumulative reconfiguration set and the
					// routes rebuild around it — retransmit-around on the
					// surviving topology.
					newly := false
					for _, l := range net.LinkSlice() {
						if c := ackmon.Class(l.ID); (c == detect.AckDropper || c == detect.AckMisroute) && !a.disabled[l.ID] {
							a.disabled[l.ID] = true
							res.RecoveredLinks = append(res.RecoveredLinks, l.ID)
							newly = true
						}
					}
					if newly {
						if res.RecoveredAt == 0 {
							res.RecoveredAt = net.Cycle()
							res.AtRecover = net.Counters
							res.VictimAtRecover = res.VictimDelivered
						}
						if _, err := reroute.ApplySafe(net, a.disabled); err != nil {
							return fmt.Errorf("recover-on-convict: %w", err)
						}
					}
				}
			}
			if tel != nil {
				tel.Sample()
				if net.Cycle() >= enableAt {
					ranked := eng.Rank(tel, gatherEvidence())
					res.SuspectTrace = append(res.SuspectTrace, locate.TraceSample{
						Cycle:      net.Cycle(),
						LinkID:     ranked[0].LinkID,
						Score:      ranked[0].Score,
						Confidence: ranked[0].Confidence,
					})
				}
			}
		}
	}

	// ---- results ----
	res.Final = net.Counters
	if cfg.Measure > 0 {
		res.Throughput = float64(res.Final.DeliveredPackets-res.AtEnable.DeliveredPackets) / float64(cfg.Measure)
	}
	res.AvgLatency = res.Final.AvgLatency()
	for _, t := range trojans {
		m, s := t.Stats()
		res.HTMatches += m
		res.HTInjections += s
	}
	if ackmon != nil {
		for _, l := range net.LinkSlice() {
			if c := ackmon.Class(l.ID); c != detect.AckHealthy {
				res.AckVerdicts[l.ID] = c
				if ch := ackmon.Channel(l.ID); ch != detect.ChannelNone {
					res.AckChannels[l.ID] = ch
				}
			}
		}
	}
	if eng != nil {
		res.Suspects = eng.Rank(tel, gatherEvidence())
		res.SuspectsTelemetry = eng.RankWeighted(locate.TelemetryWeights(), tel, nil)
	}
	for _, l := range net.LinkSlice() {
		w := a.wires[l.ID]
		res.Obfuscated += w.Obfuscated
		res.StallCycles += w.StallCycles
		res.BISTScans += w.BISTScans
		if cl := w.Detector.Classification(); cl != detect.Healthy {
			res.Detections[l.ID] = cl
			res.TriggerScopes[l.ID] = w.Detector.TriggerScope()
		}
	}
	return nil
}
