package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tasp/internal/tasp"
)

// summarize renders every observable field of a Results deterministically,
// so two runs can be compared for exact behavioural equality.
func summarize(res *Results) string {
	var b strings.Builder
	fmt.Fprintf(&b, "infected=%v\n", res.InfectedLinks)
	fmt.Fprintf(&b, "atEnable=%+v\nfinal=%+v\n", res.AtEnable, res.Final)
	fmt.Fprintf(&b, "tput=%.9f lat=%.9f\n", res.Throughput, res.AvgLatency)
	fmt.Fprintf(&b, "ht=%d/%d obf=%d stall=%d bist=%d\n",
		res.HTMatches, res.HTInjections, res.Obfuscated, res.StallCycles, res.BISTScans)
	fmt.Fprintf(&b, "rerouted=%d victim=%d firstTrojan=%d\n",
		res.ReroutedAt, res.VictimDelivered, res.FirstTrojanAt)
	fmt.Fprintf(&b, "latency: n=%d mean=%.9f p50=%d p99=%d max=%d\n",
		res.Latency.Count(), res.Latency.Mean(),
		res.Latency.Percentile(50), res.Latency.Percentile(99), res.Latency.Max())
	ids := make([]int, 0, len(res.Detections))
	for id := range res.Detections { //nocvet:orderfree collecting keys for sorting
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "det %d %v %s\n", id, res.Detections[id], res.TriggerScopes[id])
	}
	for _, s := range res.Samples {
		fmt.Fprintf(&b, "sample %+v\n", s)
	}
	for _, s := range res.Suspects {
		fmt.Fprintf(&b, "suspect %+v\n", s)
	}
	for _, s := range res.SuspectsTelemetry {
		fmt.Fprintf(&b, "suspectTel %+v\n", s)
	}
	for _, s := range res.SuspectTrace {
		fmt.Fprintf(&b, "trace %+v\n", s)
	}
	return b.String()
}

// runnerCases spans every mitigation, attack kinds, localization, transient
// noise and a second topology — the behaviours a reused arena must
// reproduce exactly.
func runnerCases() []ExperimentConfig {
	short := func(mut func(*ExperimentConfig)) ExperimentConfig {
		cfg := DefaultExperiment()
		cfg.Warmup, cfg.Measure = 400, 400
		mut(&cfg)
		return cfg
	}
	return []ExperimentConfig{
		short(func(c *ExperimentConfig) { c.Attack.Enabled = false }),
		short(func(c *ExperimentConfig) {}),
		short(func(c *ExperimentConfig) { c.Mitigation = S2SLOb }),
		short(func(c *ExperimentConfig) { c.Mitigation = S2SLOb; c.TransientBER = 1e-5 }),
		short(func(c *ExperimentConfig) { c.Mitigation = E2EObfuscation }),
		short(func(c *ExperimentConfig) { c.Mitigation = TDMQoS }),
		short(func(c *ExperimentConfig) { c.Mitigation = Rerouting }),
		short(func(c *ExperimentConfig) { c.Mitigation = S2SLOb; c.Locate = true }),
		short(func(c *ExperimentConfig) { c.Seed = 9; c.Attack.Target = tasp.ForVC(1) }),
		short(func(c *ExperimentConfig) {
			c.Noc.Topo = "torus"
			c.Mitigation = S2SLOb
			c.Benchmark = "fft"
		}),
	}
}

// TestRunnerMatchesRun is the arena-reuse equivalence contract: a single
// Runner executing many heterogeneous points back to back (and revisiting
// earlier ones with warm arenas) must produce exactly the results of a
// fresh one-shot Run for every point.
func TestRunnerMatchesRun(t *testing.T) {
	cases := runnerCases()
	want := make([]string, len(cases))
	for i, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("case %d: fresh run: %v", i, err)
		}
		want[i] = summarize(res)
	}
	r := NewRunner()
	res := &Results{}
	// Two passes: the first builds each arena, the second revisits every
	// point on a warm, dirty arena.
	for pass := 0; pass < 2; pass++ {
		for i, cfg := range cases {
			if err := r.RunInto(cfg, res); err != nil {
				t.Fatalf("pass %d case %d: %v", pass, i, err)
			}
			if got := summarize(res); got != want[i] {
				t.Errorf("pass %d case %d (%s): reused arena diverged from fresh run\nfresh:\n%s\nreused:\n%s",
					pass, i, cases[i].Mitigation, want[i], got)
			}
		}
	}
}

// TestRunnerSteadyStateAllocs pins the campaign engine's per-point
// allocation contract: after warm-up, repeated RunInto calls on the same
// platform allocate nothing for the none and s2s-lob mitigations (the
// paper's headline configurations).
func TestRunnerSteadyStateAllocs(t *testing.T) {
	for _, mit := range []Mitigation{NoMitigation, S2SLOb} {
		cfg := DefaultExperiment()
		cfg.Warmup, cfg.Measure = 300, 300
		cfg.Mitigation = mit
		r := NewRunner()
		res := &Results{}
		seed := uint64(1)
		point := func() {
			cfg.Seed = seed
			seed++
			if err := r.RunInto(cfg, res); err != nil {
				t.Fatal(err)
			}
		}
		// Warm the arena, freelists and result storage past their high-water
		// marks: early points occasionally grow a recycler (detector records,
		// rx reassembly states, flow latches) to a new maximum.
		for i := 0; i < 40; i++ {
			point()
		}
		if avg := testing.AllocsPerRun(10, point); avg > 0.1 {
			t.Errorf("%s: warmed RunInto allocates %.2f times per point; budget is 0", mit, avg)
		}
	}
}

// BenchmarkRunnerPoint measures one warm campaign point end to end
// (4x4 mesh, 800 cycles, attack on, no mitigation) — the unit of work the
// campaign engine schedules. Wired into the CI allocation gate.
func BenchmarkRunnerPoint(b *testing.B) {
	cfg := DefaultExperiment()
	cfg.Warmup, cfg.Measure = 400, 400
	r := NewRunner()
	res := &Results{}
	for i := 0; i < 3; i++ {
		cfg.Seed = uint64(i + 100)
		if err := r.RunInto(cfg, res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if err := r.RunInto(cfg, res); err != nil {
			b.Fatal(err)
		}
	}
}
