package core

import (
	"testing"

	"tasp/internal/detect"
	"tasp/internal/noc"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// quickExp shrinks the default protocol for test runtime.
func quickExp() ExperimentConfig {
	cfg := DefaultExperiment()
	cfg.Warmup = 1500
	cfg.Measure = 1500
	return cfg
}

func TestRunNoAttack(t *testing.T) {
	cfg := quickExp()
	cfg.Attack.Enabled = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.DeliveredPackets == 0 {
		t.Fatal("no packets delivered")
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	if len(res.InfectedLinks) != 0 || res.HTInjections != 0 {
		t.Fatal("attack artefacts present in clean run")
	}
	// A healthy network must not build up persistent back-pressure. (The
	// hot region around the primary router may keep one router's cores
	// throttled — visible in Figure 11(b)'s nonzero baseline — but nothing
	// chip-wide.)
	last := res.Samples[len(res.Samples)-1]
	if last.BlockedRouters > 1 || last.AllCoresFull > 1 {
		t.Fatalf("healthy run shows pressure: %+v", last.Occupancy)
	}
}

// TestFigure11Deadlock reproduces the paper's headline result: a single
// TASP trojan with no mitigation deadlocks most of the chip. The paper
// reports back-pressure on 68% (11/16) of routers within 50-100 cycles of
// enabling TASP and 81% (13/16) of injection ports within 1500 cycles.
func TestFigure11Deadlock(t *testing.T) {
	cfg := quickExp()
	cfg.Mitigation = NoMitigation
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HTInjections == 0 {
		t.Fatal("trojan never struck")
	}
	// Back-pressure must appear quickly after the kill switch (the paper
	// reports 68% of routers within 50-100 cycles; our stall detector needs
	// 50 progress-free cycles before it even counts a port, so assert 8+
	// routers within 500 cycles)...
	fast := false
	for _, s := range res.Samples {
		if s.Cycle <= 2000 && s.BlockedRouters >= 8 {
			fast = true
			break
		}
	}
	if !fast {
		t.Error("back-pressure did not reach half the chip within 500 cycles of enable")
	}
	// ...and grow to most of the chip by 1500 cycles (paper: 11/16 routers,
	// 13/16 injection ports).
	last := res.Samples[len(res.Samples)-1]
	if last.BlockedRouters < 10 {
		t.Fatalf("only %d/16 routers blocked 1500 cycles after enable, paper reports 11+", last.BlockedRouters)
	}
	if last.HalfCoresFull < 10 {
		t.Fatalf("only %d/16 routers have >50%% cores full, paper reports 13", last.HalfCoresFull)
	}
	// Throughput during the attack must collapse versus the clean run.
	clean := cfg
	clean.Attack.Enabled = false
	base, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput > base.Throughput*0.7 {
		t.Fatalf("attack throughput %.3f not collapsed vs clean %.3f", res.Throughput, base.Throughput)
	}
}

// TestFigure12LObMitigation reproduces Figure 12(b): with the threat
// detector + L-Ob, a single TASP trojan causes only a few-cycle penalty and
// the network keeps flowing.
func TestFigure12LObMitigation(t *testing.T) {
	cfg := quickExp()
	cfg.Mitigation = S2SLOb
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.BlockedRouters > 1 {
		t.Fatalf("%d routers blocked under L-Ob, want ~0", last.BlockedRouters)
	}
	if last.AllCoresFull > 3 {
		t.Fatalf("%d routers with all cores full under L-Ob — the hot region may throttle, the chip must not", last.AllCoresFull)
	}
	// The trojan must have been found.
	foundTrojan := false
	for _, cl := range res.Detections {
		if cl == detect.Trojan {
			foundTrojan = true
		}
	}
	if !foundTrojan {
		t.Fatalf("trojan not classified; detections: %v", res.Detections)
	}
	if res.Obfuscated == 0 || res.BISTScans == 0 {
		t.Fatal("mitigation hardware unused")
	}
	// Throughput must stay close to the clean baseline.
	clean := cfg
	clean.Attack.Enabled = false
	base, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < base.Throughput*0.8 {
		t.Fatalf("L-Ob throughput %.3f fell below 80%% of clean %.3f", res.Throughput, base.Throughput)
	}
}

// TestFigure12TDMContainment reproduces Figure 12(a): with two TDM domains,
// a trojan striking domain-2 traffic saturates D2's resources while D1
// keeps operating.
func TestFigure12TDMContainment(t *testing.T) {
	cfg := quickExp()
	cfg.Mitigation = TDMQoS
	// TDM halves each domain's bandwidth, so run at a rate the TDM network
	// sustains cleanly before the attack.
	m, err := traffic.Benchmark("blackscholes", cfg.Noc)
	if err != nil {
		t.Fatal(err)
	}
	m.Rate = 0.03
	cfg.Model = m
	// Target the upper VC pair — the whole of domain 2 (VCs 2,3).
	cfg.Attack.Target = tasp.ForVCRange(2, 0b10)
	cfg.Attack.NumLinks = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HTInjections == 0 {
		t.Fatal("trojan never struck in the TDM run")
	}
	last := res.Samples[len(res.Samples)-1]
	d1, d2 := last.Domain[0], last.Domain[1]
	if d2.InputFlits+d2.OutputFlits <= (d1.InputFlits+d1.OutputFlits)*2 {
		t.Fatalf("attacked domain not saturated: D1=%d D2=%d buffered flits",
			d1.InputFlits+d1.OutputFlits, d2.InputFlits+d2.OutputFlits)
	}
	if d1.AllCoresFull > 1 {
		t.Fatalf("containment failed: %d clean-domain routers have all cores full", d1.AllCoresFull)
	}
}

// TestE2EObfuscationFailsOnRoutingTargets reproduces the premise of Figure
// 11(a): e2e obfuscation cannot hide routing fields, so a Dest-triggered
// trojan still fires and the chip still deadlocks.
func TestE2EObfuscationFailsOnRoutingTargets(t *testing.T) {
	cfg := quickExp()
	cfg.Mitigation = E2EObfuscation
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HTInjections == 0 {
		t.Fatal("dest-triggered trojan was hidden by e2e obfuscation — it must not be")
	}
	last := res.Samples[len(res.Samples)-1]
	if last.BlockedRouters < 8 {
		t.Fatalf("e2e run should deadlock like the unprotected one, blocked=%d", last.BlockedRouters)
	}
}

// TestE2EObfuscationHidesMemTargets shows the complementary case: a trojan
// triggering on memory addresses strikes far less often when e2e scrambles
// them — only chance aliasing (including body flits that happen to look
// like matching headers) remains.
func TestE2EObfuscationHidesMemTargets(t *testing.T) {
	// A sharp 16-bit window over the primary router's region: every dest-0
	// request matches in plaintext (their top 16 address bits are zero),
	// while scrambled addresses or aliasing body flits almost never do.
	target := tasp.ForMem(0, 0xffff0000)
	cfg := quickExp()
	cfg.Attack.Target = target
	cfg.Mitigation = NoMitigation
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mitigation = E2EObfuscation
	e2e, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare.HTMatches == 0 {
		t.Fatal("mem-triggered trojan never matched in the unprotected run")
	}
	if e2e.HTMatches*3 > bare.HTMatches {
		t.Fatalf("e2e scrambling left %d matches vs %d unprotected — no real reduction",
			e2e.HTMatches, bare.HTMatches)
	}
}

// TestReroutingRecoversSlower reproduces the Figure 10 relationship: the
// rerouting baseline survives the attack (after reconfiguration) but yields
// less throughput than continuing to use the link under L-Ob.
func TestReroutingRecoversSlower(t *testing.T) {
	cfg := quickExp()
	cfg.Attack.NumLinks = 3
	cfg.Mitigation = Rerouting
	rr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ReroutedAt == 0 {
		t.Fatal("rerouting baseline never reconfigured")
	}
	cfg.Mitigation = S2SLOb
	lo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Throughput <= rr.Throughput {
		t.Fatalf("L-Ob (%.3f pkt/cyc) not faster than rerouting (%.3f pkt/cyc)",
			lo.Throughput, rr.Throughput)
	}
}

func TestChooseInfectedLinksPrefersHotLinks(t *testing.T) {
	cfg := quickExp()
	res, err := Run(ExperimentConfig{
		Noc: cfg.Noc, Benchmark: "blackscholes", Seed: 1,
		Warmup: 10, Measure: 10,
		Attack: AttackConfig{Enabled: true, NumLinks: 4, Target: tasp.ForDest(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.InfectedLinks) != 4 {
		t.Fatalf("picked %d links, want 4", len(res.InfectedLinks))
	}
	// The hottest blackscholes links neighbour the primary router 0.
	n, err := noc.New(cfg.Noc)
	if err != nil {
		t.Fatal(err)
	}
	near := 0
	for _, id := range res.InfectedLinks {
		for _, l := range n.Links() {
			if l.ID == id && (l.From <= 5 || l.To <= 5) {
				near++
				break
			}
		}
	}
	if near < 3 {
		t.Fatalf("only %d/4 infected links near the primary region", near)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := quickExp()
	cfg.Noc.VCs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid noc config accepted")
	}
	cfg = quickExp()
	cfg.Benchmark = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMitigationStrings(t *testing.T) {
	want := map[Mitigation]string{
		NoMitigation: "none", S2SLOb: "s2s-lob", E2EObfuscation: "e2e-obfuscation",
		TDMQoS: "tdm-qos", Rerouting: "rerouting",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d = %q want %q", m, m.String(), s)
		}
	}
}
