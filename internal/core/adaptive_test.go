package core

import (
	"testing"

	"tasp/internal/detect"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// adaptiveArms is the adaptive-adversary acceptance matrix: both families
// on every substrate at both pinned seeds.
var adaptiveArms = []struct {
	kind     tasp.Kind
	numLinks int
}{
	{tasp.KindThrottle, 2},
	{tasp.KindCollude, 3},
}

func adaptiveExp(topo string, seed uint64, kind tasp.Kind, numLinks int) ExperimentConfig {
	cfg := quickExp()
	cfg.Noc.Topo = topo
	cfg.Seed = seed
	cfg.Attack.Kind = kind
	cfg.Attack.NumLinks = numLinks
	cfg.SecureAck = true
	return cfg
}

// TestAdaptiveDroppersEvadeStockDetector pins the attack side of the arms
// race: at the default duty tuning, both adaptive families strike
// continuously while the stock streak-only detector (deficit and fused
// channels disabled) never convicts anyone — the consecutive-window streak
// is exactly what the duty cycle is engineered against.
func TestAdaptiveDroppersEvadeStockDetector(t *testing.T) {
	r := NewRunner()
	for _, topo := range []string{"mesh", "torus", "ring"} {
		for _, seed := range []uint64{1, 42} {
			for _, arm := range adaptiveArms {
				t.Run(topo+"/"+arm.kind.String(), func(t *testing.T) {
					cfg := adaptiveExp(topo, seed, arm.kind, arm.numLinks)
					cfg.AckDeficitRatio = -1 // stock streak-only detector
					res, err := r.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if res.HTInjections == 0 {
						t.Fatal("adaptive trojans never struck")
					}
					if res.Final.DroppedInFlight == 0 {
						t.Fatal("adaptive droppers swallowed nothing")
					}
					if res.AckFlaggedAt != 0 {
						t.Errorf("seed %d: stock detector convicted at cycle %d (verdicts %v), want evasion",
							seed, res.AckFlaggedAt, res.AckVerdicts)
					}
					for id, v := range res.AckVerdicts {
						if v == detect.AckDropper || v == detect.AckMisroute {
							t.Errorf("seed %d: stock detector convicted link %d as %v", seed, id, v)
						}
					}
				})
			}
		}
	}
}

// TestAdaptiveDroppersConvictedAndLocated is the defence side: with the
// full monitor, every infected link is convicted as a dropper — throttle
// via the per-link cumulative-deficit channel, collusion via the
// cross-link fused view — and the locate engine ranks an infected link
// first, on every substrate at both pinned seeds.
func TestAdaptiveDroppersConvictedAndLocated(t *testing.T) {
	wantChannel := map[tasp.Kind]detect.AckChannel{
		tasp.KindThrottle: detect.ChannelDeficit,
		tasp.KindCollude:  detect.ChannelFused,
	}
	r := NewRunner()
	for _, topo := range []string{"mesh", "torus", "ring"} {
		for _, seed := range []uint64{1, 42} {
			for _, arm := range adaptiveArms {
				t.Run(topo+"/"+arm.kind.String(), func(t *testing.T) {
					cfg := adaptiveExp(topo, seed, arm.kind, arm.numLinks)
					cfg.Locate = true
					res, err := r.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(res.InfectedLinks) != arm.numLinks {
						t.Fatalf("placed %v, want %d links", res.InfectedLinks, arm.numLinks)
					}
					if res.AckFlaggedAt == 0 {
						t.Fatal("full monitor never convicted")
					}
					for _, id := range res.InfectedLinks {
						if got := res.AckVerdicts[id]; got != detect.AckDropper {
							t.Errorf("seed %d: link %d verdict = %v, want dropper (all: %v)",
								seed, id, got, res.AckVerdicts)
						}
						if got := res.AckChannels[id]; got != wantChannel[arm.kind] {
							t.Errorf("seed %d: link %d convicted via %v, want %v",
								seed, id, got, wantChannel[arm.kind])
						}
					}
					if len(res.Suspects) == 0 {
						t.Fatal("locate produced no ranking")
					}
					rank1 := res.Suspects[0].LinkID
					hit := false
					for _, id := range res.InfectedLinks {
						hit = hit || id == rank1
					}
					if !hit {
						t.Errorf("seed %d: rank-1 = link %d, want one of %v",
							seed, rank1, res.InfectedLinks)
					}
				})
			}
		}
	}
}

// TestRecoveryRestoresVictimGoodput is the end-to-end recovery acceptance
// check: with recover-on-convict, the victim's post-conviction goodput
// must reach at least 90% of the post-fault capacity oracle — an otherwise
// identical run with the convicted links administratively disabled from
// cycle 0 (PredisabledLinks), which is what a zero-lag, zero-debris
// recovery would have delivered. Judging against the oracle rather than
// the fault-free clean rate isolates what recovery controls (detection
// lag, reconfiguration debris, reclamation) from the structural capacity
// the fabric lost with the links: the repo's own Figure 10 pins the
// rerouting baseline at ~75% of clean with two links out, so a
// whole-network ≥90%-of-clean bar would be structurally unreachable.
func TestRecoveryRestoresVictimGoodput(t *testing.T) {
	r := NewRunner()
	for _, topo := range []string{"mesh", "torus", "ring"} {
		for _, seed := range []uint64{1, 42} {
			for _, arm := range adaptiveArms {
				t.Run(topo+"/"+arm.kind.String(), func(t *testing.T) {
					base := adaptiveExp(topo, seed, arm.kind, arm.numLinks)
					// A long measure phase so the steady state, not the
					// reconfiguration transient, dominates the post window.
					base.Measure = 6500
					cfg := base
					cfg.RecoverOnConvict = true
					res, err := r.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					total := uint64(cfg.Warmup + cfg.Measure)
					if res.RecoveredAt == 0 || res.RecoveredAt >= total {
						t.Fatalf("no conviction-driven recovery (recoveredAt=%d)", res.RecoveredAt)
					}
					if len(res.RecoveredLinks) == 0 {
						t.Fatal("recovery disabled no links")
					}
					post := float64(res.VictimDelivered-res.VictimAtRecover) /
						float64(total-res.RecoveredAt)

					oracle := base
					oracle.PredisabledLinks = res.RecoveredLinks
					ores, err := r.Run(oracle)
					if err != nil {
						t.Fatal(err)
					}
					orate := float64(ores.VictimDelivered) / float64(oracle.Measure)
					if orate == 0 {
						t.Fatal("oracle run delivered no victim traffic")
					}
					if q := post / orate; q < 0.90 {
						t.Errorf("seed %d: post-recovery victim goodput %.3f/cycle is %.1f%% of the %.3f/cycle oracle, want >= 90%%",
							seed, post, 100*q, orate)
					}
				})
			}
		}
	}
}

// TestHijackSentinelRouterZero is the regression test for the misroute
// hijack sentinel: router 0 used to double as "auto-select", so an attacker
// could never aim the hijack at router 0 explicitly. The sentinel is -1.
func TestHijackSentinelRouterZero(t *testing.T) {
	r := NewRunner()
	cfg := quickExp()
	cfg.Attack.Kind = tasp.KindMisroute
	cfg.Attack.Target = tasp.ForDest(5)
	cfg.SecureAck = true

	cfg.Attack.Hijack = 0 // explicit: divert the victim's packets to router 0
	res, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HTInjections == 0 {
		t.Fatal("misroute trojan never struck")
	}
	if res.HijackRouter != 0 {
		t.Fatalf("explicit Hijack=0 resolved to router %d, want 0", res.HijackRouter)
	}

	cfg.Attack.Hijack = -1 // sentinel: auto-select
	res, err = r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HijackRouter < 0 {
		t.Fatal("auto-select left no effective hijack router")
	}
	if res.HijackRouter == 5 {
		t.Fatal("auto-select picked the victim itself")
	}
}

// TestCongestionNeverConvictsHealthyLinks soaks the full monitor (streak,
// deficit and fused channels) under congestion-only traffic: a hotspot
// workload hammering one router, no attack anywhere. Congestion delays
// end-to-end acknowledgments exactly the way the channels measure loss, so
// this pins the false-positive side of the congestion discount: no healthy
// link may ever be convicted, on any substrate, at either pinned seed.
func TestCongestionNeverConvictsHealthyLinks(t *testing.T) {
	r := NewRunner()
	for _, topo := range []string{"mesh", "torus", "ring"} {
		for _, seed := range []uint64{1, 42} {
			t.Run(topo, func(t *testing.T) {
				cfg := quickExp()
				cfg.Noc.Topo = topo
				cfg.Seed = seed
				cfg.Attack.Enabled = false
				cfg.SecureAck = true
				// Half of a heavy load aimed at the victim router: bursty
				// Bernoulli arrivals over a saturating hotspot.
				cfg.Model = traffic.Hotspot(cfg.Noc, 0.05, 0, 0.5)
				res, err := r.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				congested := false
				for _, s := range res.Samples {
					if s.BlockedRouters > 0 {
						congested = true
						break
					}
				}
				if !congested {
					t.Fatal("soak never congested a router: the discount was not exercised")
				}
				if res.AckFlaggedAt != 0 {
					t.Errorf("seed %d: monitor convicted under congestion-only traffic at cycle %d",
						seed, res.AckFlaggedAt)
				}
				for id, v := range res.AckVerdicts {
					if v == detect.AckDropper || v == detect.AckMisroute {
						t.Errorf("seed %d: healthy link %d convicted as %v (channel %v)",
							seed, id, v, res.AckChannels[id])
					}
				}
			})
		}
	}
}
