package core

import (
	"testing"

	"tasp/internal/detect"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/lob"
	"tasp/internal/tasp"
)

func targetFlit(dst uint8) flit.Flit {
	h := flit.Header{Kind: flit.Single, VC: 1, SrcR: 3, DstR: dst, Mem: 0x0900beef, Seq: 9}
	return flit.Flit{Kind: flit.Single, Payload: flit.Default.Encode(h), PacketID: 42}
}

func TestSecureWireHealthyPassThrough(t *testing.T) {
	w := NewSecureWire(nil, 1, flit.Default)
	f := targetFlit(9)
	got, res := w.Transmit(0, f, 1, 0)
	if !res.OK || res.Stall != 0 || got.Payload != f.Payload {
		t.Fatalf("healthy wire: %+v", res)
	}
	if w.Detector.Classification() != detect.Healthy {
		t.Fatal("healthy link classified otherwise")
	}
}

// TestSecureWireDefeatsTrojan walks the full Figure 6/7 sequence against a
// live TASP trojan: strike, plain retry strike, BIST, obfuscated success,
// method logged, and the flow's next flit passes on its first attempt.
func TestSecureWireDefeatsTrojan(t *testing.T) {
	ht := tasp.New(tasp.ForDest(9), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	w := NewSecureWire(ht, 2, flit.Default)

	f := targetFlit(9)
	// Attempt 0: plain, struck.
	_, res := w.Transmit(10, f, 1, 0)
	if res.OK {
		t.Fatal("attempt 0 should be struck")
	}
	// Attempt 1: plain retry, struck again; detector calls BIST.
	_, res = w.Transmit(12, f, 1, 1)
	if res.OK {
		t.Fatal("attempt 1 should be struck")
	}
	if w.BISTScans != 1 {
		t.Fatalf("BIST scans %d, want 1", w.BISTScans)
	}
	// Attempt 2: first escalation (scramble/flit) hides the target.
	got, res := w.Transmit(14, f, 1, 2)
	if !res.OK {
		t.Fatal("scrambled attempt should pass")
	}
	if got.Payload != f.Payload {
		t.Fatalf("payload corrupted through obfuscation: %016x != %016x", got.Payload, f.Payload)
	}
	if res.Stall != lob.Scramble.Penalty() {
		t.Fatalf("stall %d, want scramble penalty %d", res.Stall, lob.Scramble.Penalty())
	}
	if w.Detector.Classification() != detect.Trojan {
		t.Fatalf("classification %v, want trojan", w.Detector.Classification())
	}
	// The method is logged: the flow's next flit obfuscates on attempt 0.
	f2 := targetFlit(9)
	f2.PacketID = 43
	got, res = w.Transmit(20, f2, 1, 0)
	if !res.OK || res.Stall == 0 {
		t.Fatalf("logged method not applied on first attempt: %+v", res)
	}
	if got.Payload != f2.Payload {
		t.Fatal("payload corrupted under logged method")
	}
	if ht.Injections != 2 {
		t.Fatalf("trojan injections %d, want exactly the 2 plain strikes", ht.Injections)
	}
}

func TestSecureWireUnmitigatedKeepsFailing(t *testing.T) {
	ht := tasp.New(tasp.ForDest(9), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	w := NewSecureWire(ht, 3, flit.Default)
	w.Mitigated = false
	f := targetFlit(9)
	for attempt := 0; attempt < 50; attempt++ {
		if _, res := w.Transmit(uint64(attempt), f, 1, attempt); res.OK {
			t.Fatalf("unmitigated wire delivered target flit at attempt %d", attempt)
		}
	}
	if w.BISTScans != 0 || w.Obfuscated != 0 {
		t.Fatal("unmitigated wire used mitigation hardware")
	}
}

func TestSecureWireNonTargetUnaffected(t *testing.T) {
	ht := tasp.New(tasp.ForDest(9), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	w := NewSecureWire(ht, 4, flit.Default)
	f := targetFlit(5) // different destination
	for i := 0; i < 20; i++ {
		got, res := w.Transmit(uint64(i), f, 1, 0)
		if !res.OK || res.Stall != 0 || got.Payload != f.Payload {
			t.Fatalf("non-target flit disturbed at %d: %+v", i, res)
		}
	}
}

func TestSecureWireCorrectsTransients(t *testing.T) {
	w := NewSecureWire(fault.NewTransient(3e-3, 5), 5, flit.Default)
	f := targetFlit(2)
	okCount, corrected := 0, 0
	for i := 0; i < 5000; i++ {
		got, res := w.Transmit(uint64(i), f, 1, 0)
		if res.OK {
			okCount++
			if got.Payload != f.Payload {
				t.Fatal("corrected flit has wrong payload")
			}
		}
		if res.Corrected {
			corrected++
		}
	}
	if corrected == 0 {
		t.Fatal("no corrections at BER 3e-3")
	}
	if okCount < 4800 {
		t.Fatalf("only %d/5000 traversals delivered", okCount)
	}
}

func TestSecureWirePermanentFaultClassified(t *testing.T) {
	// Two stuck wires: uncorrectable on many words; the detector must run
	// BIST and classify the link permanent.
	w := NewSecureWire(fault.NewStuckAt(map[int]uint{10: 1, 30: 1}), 6, flit.Default)
	f := flit.Flit{Kind: flit.Single, Payload: 0, PacketID: 7} // all-zero word collides with both stucks
	for attempt := 0; attempt < 3; attempt++ {
		w.Transmit(uint64(attempt), f, 0, attempt)
	}
	if w.Detector.Classification() != detect.Permanent {
		t.Fatalf("classification %v, want permanent", w.Detector.Classification())
	}
}

func TestSecureWireBodyFlitFlowTracking(t *testing.T) {
	ht := tasp.New(tasp.ForDest(9), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	w := NewSecureWire(ht, 7, flit.Default)

	// Deliver the head under escalation so the method gets logged.
	head := flit.Flit{Kind: flit.Head, PacketID: 99, Index: 0,
		Payload: flit.Default.Encode(flit.Header{Kind: flit.Head, VC: 2, SrcR: 1, DstR: 9})}
	w.Transmit(0, head, 2, 0)
	w.Transmit(2, head, 2, 1)
	if _, res := w.Transmit(4, head, 2, 2); !res.OK {
		t.Fatal("head not delivered under scramble")
	}
	// A body flit of the same packet must resolve to the same flow and be
	// obfuscated on its first attempt via the log.
	body := flit.Flit{Kind: flit.Body, PacketID: 99, Index: 1, Payload: 0xbeef}
	got, res := w.Transmit(6, body, 2, 0)
	if !res.OK || res.Stall == 0 {
		t.Fatalf("body flit did not use the logged method: %+v", res)
	}
	if got.Payload != 0xbeef {
		t.Fatal("body payload corrupted")
	}
}

func TestSecureWireForgetsFailedMethod(t *testing.T) {
	// If a logged method stops working (trojan retuned), the wire must
	// forget it and re-escalate rather than loop on the bad method.
	ht := tasp.New(tasp.ForVC(1), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	w := NewSecureWire(ht, 8, flit.Default)
	flow := lob.FlowKey{SrcR: 3, DstR: 9, VC: 1}
	w.Log.Record(flow, lob.Choice{Method: lob.Invert, Gran: lob.PayloadOnly}) // useless vs a VC trigger
	f := targetFlit(9)
	if _, res := w.Transmit(0, f, 1, 0); res.OK {
		t.Fatal("payload-only invert should not hide a VC trigger")
	}
	if _, ok := w.Log.Lookup(flow); ok {
		t.Fatal("failed method not forgotten")
	}
}
