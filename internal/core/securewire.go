// Package core assembles the paper's complete system: it wires TASP trojans,
// transient/permanent fault injectors, the threat detector, the L-Ob
// obfuscation block and BIST into the cycle-accurate NoC, implements the
// baselines the paper compares against (e2e obfuscation, TDM QoS,
// rerouting), and exposes the experiment engine every cmd, example and
// benchmark drives.
package core

import (
	"tasp/internal/bist"
	"tasp/internal/detect"
	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/lob"
	"tasp/internal/noc"
)

// SecureWire is a link whose two endpoints carry the paper's mitigation
// hardware: the upstream L-Ob block (method selection, per-flow method log,
// keystream) and the downstream threat source detector plus BIST hook. The
// trojan — and any other fault source — sits in Tap, between the two.
//
// Per Figure 6/7 the escalation schedule over a flit's transmission
// attempts is: attempt 0 uses the flow's logged method if one is known
// (otherwise plain), attempt 1 is a plain retry (first fault might be
// transient), and from attempt 2 on the L-Ob methods are walked in
// escalation order.
type SecureWire struct {
	// Tap is the physical fault source on the link (any trojan family,
	// transient, stuck-at or a chain). Never nil after NewSecureWire.
	Tap fault.Adversary
	// Detector is the downstream threat source detector.
	Detector *detect.Detector
	// Log is the upstream per-flow method log.
	Log *lob.MethodLog
	// Mitigated enables the detector/L-Ob path; when false the wire
	// behaves exactly like a PlainWire (used for the paper's
	// no-mitigation runs in Figure 11).
	Mitigated bool

	layout  flit.Layout
	windows *lob.Windows
	key     *lob.Keystream
	// packet flow bookkeeping: body flits carry no header, so the L-Ob
	// controller latches the flow when the head flit passes.
	flows map[uint64]lob.FlowKey

	// Counters.
	Corrected   uint64 // single-bit upsets fixed by SECDED
	Dropped     uint64 // uncorrectable traversals (NACKs)
	Swallowed   uint64 // flits an adversary consumed with a forged ACK
	Obfuscated  uint64 // traversals sent under an L-Ob method
	BISTScans   uint64 // scans triggered by the detector
	StallCycles uint64 // total undo penalty charged downstream
}

// NewSecureWire builds a mitigated link around the given fault tap. The
// layout is the network's flit-header layout; both endpoints' hardware (the
// L-Ob granularity windows and the flow latcher) is generated from it.
func NewSecureWire(tap fault.Adversary, keySeed uint64, l flit.Layout) *SecureWire {
	if tap == nil {
		tap = fault.None
	}
	return &SecureWire{
		Tap:       tap,
		Detector:  detect.New(0),
		Log:       lob.NewMethodLog(),
		Mitigated: true,
		layout:    l,
		windows:   lob.WindowsFor(l),
		key:       lob.NewKeystream(keySeed),
		flows:     map[uint64]lob.FlowKey{},
	}
}

// WithMitigation sets the Mitigated flag and returns the wire, for fluent
// construction of baseline (unprotected) links.
func (w *SecureWire) WithMitigation(on bool) *SecureWire {
	w.Mitigated = on
	return w
}

// Reset returns the wire to its post-NewSecureWire state for a new run
// without allocating: the tap is replaced, the keystream rewound to keySeed,
// and the detector, method log, flow latcher and counters cleared. The
// granularity windows are layout-derived and preserved — a wire belongs to
// one network (hence one layout) for its whole life, which is exactly the
// campaign arena's reuse pattern.
func (w *SecureWire) Reset(tap fault.Adversary, keySeed uint64) {
	if tap == nil {
		tap = fault.None
	}
	w.Tap = tap
	w.Detector.Reset()
	w.Log.Reset()
	w.Mitigated = true
	w.key.Reseed(keySeed)
	clear(w.flows)
	w.Corrected, w.Dropped, w.Swallowed, w.Obfuscated = 0, 0, 0, 0
	w.BISTScans, w.StallCycles = 0, 0
}

// flowOf resolves the flow a flit belongs to, latching it from head flits.
func (w *SecureWire) flowOf(f flit.Flit, vc uint8) lob.FlowKey {
	if f.IsHead() {
		h := f.Header(w.layout)
		k := lob.FlowKey{SrcR: h.SrcR, DstR: h.DstR, VC: h.VC}
		if !f.IsTail() {
			w.flows[f.PacketID] = k
		}
		return k
	}
	if k, ok := w.flows[f.PacketID]; ok {
		if f.IsTail() {
			delete(w.flows, f.PacketID)
		}
		return k
	}
	return lob.FlowKey{VC: vc}
}

// choose picks the obfuscation for this attempt.
func (w *SecureWire) choose(flow lob.FlowKey, attempt int) lob.Choice {
	if !w.Mitigated {
		return lob.Choice{Method: lob.None}
	}
	switch {
	case attempt == 0:
		if c, ok := w.Log.Lookup(flow); ok {
			return c
		}
		return lob.Choice{Method: lob.None}
	case attempt == 1:
		return lob.Choice{Method: lob.None}
	default:
		return lob.Escalate(attempt - 2)
	}
}

// Transmit implements noc.Wire.
func (w *SecureWire) Transmit(cycle uint64, f flit.Flit, vc uint8, attempt int) (flit.Flit, noc.TxResult) {
	flow := w.flowOf(f, vc)
	choice := w.choose(flow, attempt)

	var key ecc.Codeword
	if choice.Method == lob.Scramble {
		key = w.key.Next()
	}
	cw := ecc.Encode(f.Payload)
	if choice.Method != lob.None {
		w.Obfuscated++
		cw = w.windows.Apply(cw, choice, key)
	}
	cw, oc := w.Tap.Strike(cycle, cw, fault.Framing{Head: f.IsHead(), Tail: f.IsTail()})
	if oc == fault.Swallow {
		// The adversary consumed the flit and forged the ACK. The detector
		// never sees a syndrome — no NACK, no fault event — which is exactly
		// why drop trojans need the secure-ack monitor, not this wire's
		// threat detector.
		w.Swallowed++
		return f, noc.TxResult{OK: true, Swallowed: true}
	}
	if choice.Method != lob.None {
		cw = w.windows.Undo(cw, choice, key)
	}
	data, st, syn := ecc.Decode(cw)

	fk := detect.FlitKey{PacketID: f.PacketID, Index: f.Index}
	switch st {
	case ecc.Uncorrectable:
		w.Dropped++
		if w.Mitigated {
			act := w.Detector.OnFault(fk, syn, choice)
			if act.RunBIST {
				w.BISTScans++
				w.Detector.SetBISTResult(bist.Scan(cycle, w.Tap))
			}
			if choice.Method != lob.None {
				// The logged/escalated method failed this flow.
				w.Log.Forget(flow)
			}
		}
		return f, noc.TxResult{OK: false}
	case ecc.Corrected:
		w.Corrected++
	}

	f.Payload = data
	stall := 0
	if w.Mitigated {
		if choice.Method != lob.None {
			stall = choice.Method.Penalty()
			w.StallCycles += uint64(stall)
			w.Log.Record(flow, choice)
		}
		w.Detector.OnClean(fk, choice)
	}
	return f, noc.TxResult{OK: true, Corrected: st == ecc.Corrected, Stall: stall}
}

var _ noc.Wire = (*SecureWire)(nil)
