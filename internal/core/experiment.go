package core

import (
	"fmt"
	"sort"

	"tasp/internal/detect"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/locate"
	"tasp/internal/noc"
	"tasp/internal/obfe2e"
	"tasp/internal/qos"
	"tasp/internal/reroute"
	"tasp/internal/stats"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// Mitigation selects the defence installed for a run.
type Mitigation int

// The paper's configurations: no protection, the proposed switch-to-switch
// threat detector + L-Ob, FortNoCs-style end-to-end obfuscation, SurfNoC-
// style two-domain TDM QoS, and Ariadne-style rerouting.
const (
	NoMitigation Mitigation = iota
	S2SLOb
	E2EObfuscation
	TDMQoS
	Rerouting
)

// String names the mitigation.
func (m Mitigation) String() string {
	switch m {
	case NoMitigation:
		return "none"
	case S2SLOb:
		return "s2s-lob"
	case E2EObfuscation:
		return "e2e-obfuscation"
	case TDMQoS:
		return "tdm-qos"
	case Rerouting:
		return "rerouting"
	default:
		return fmt.Sprintf("mitigation(%d)", int(m))
	}
}

// AttackConfig describes the TASP deployment for a run.
type AttackConfig struct {
	Enabled bool
	// Target is the programmed comparator value. The zero value targets
	// destination router 0 — the primary core of most benchmarks.
	Target tasp.Target
	// YBits is the payload-counter width (0 = tasp.DefaultPayloadBits).
	YBits int
	// Links explicitly lists infected link ids. When empty, the NumLinks
	// hottest links for the workload are infected (the attacker's optimal
	// placement from Section III-A).
	Links    []int
	NumLinks int
	// EnableAt is the cycle the external kill switch flips on
	// (0 = after warm-up, the paper's 1500-cycle protocol).
	EnableAt uint64
}

// ExperimentConfig is one full simulation run.
type ExperimentConfig struct {
	Noc       noc.Config
	Benchmark string         // traffic model name; ignored when Model is set
	Model     *traffic.Model // explicit model (overrides Benchmark)
	Seed      uint64

	Warmup      int // cycles before the attack enables (paper: 1500)
	Measure     int // cycles simulated after the attack enables
	SampleEvery int // occupancy sampling period (0 = 25 cycles)

	Attack     AttackConfig
	Mitigation Mitigation

	// TransientBER adds background single-event upsets on every link.
	TransientBER float64

	// RerouteDetectDelay is how many cycles after attack enable the
	// rerouting baseline takes to classify and disable the infected links
	// (Ariadne's reconfiguration trigger). 0 = 200 cycles.
	RerouteDetectDelay int

	// DetectorHistory overrides the threat detector's fault-history table
	// capacity (0 = detect.DefaultHistoryCap). Ablation knob.
	DetectorHistory int

	// Locate enables the network-level DoS localization layer: the
	// blocked-port telemetry tap is sampled every SampleEvery cycles and
	// the locate engine's fused ranking recorded (Results.Suspects and
	// Results.SuspectTrace). Observation-only — it never perturbs the
	// simulation.
	Locate bool
}

// DefaultExperiment returns the paper's standard protocol: the 64-core mesh,
// Blackscholes traffic, a 1500-cycle warm-up, and a TASP attack targeting
// the traffic of the application's primary router. The attack is a single
// point of attack around that router: under strict XY routing a trojan on
// one ingress link can only wedge that link's row segment, so the default
// cuts the primary's whole ingress (its two hottest target-flow links) —
// the paper itself notes "the number of compromised links is orthogonal"
// to the single-point-of-attack analysis.
func DefaultExperiment() ExperimentConfig {
	return ExperimentConfig{
		Noc:       noc.DefaultConfig(),
		Benchmark: "blackscholes",
		Seed:      1,
		Warmup:    1500,
		Measure:   1500,
		Attack: AttackConfig{
			Enabled:  true,
			Target:   tasp.ForDest(0),
			NumLinks: 2,
		},
		Mitigation: NoMitigation,
	}
}

// Sample is one time-series point: the whole-network occupancy plus, for
// TDM runs, the per-domain split.
type Sample struct {
	noc.Occupancy
	Domain [qos.NumDomains]noc.Occupancy
}

// Results aggregates everything a run produced.
type Results struct {
	Config        ExperimentConfig
	InfectedLinks []int
	Samples       []Sample

	// Counter snapshots: at attack enable and at the end.
	AtEnable noc.Counters
	Final    noc.Counters

	// Throughput is delivered packets per cycle during the measure phase;
	// AvgLatency is over all delivered packets.
	Throughput float64
	AvgLatency float64

	// Attack-side telemetry.
	HTMatches    uint64
	HTInjections uint64

	// Defence-side telemetry (S2SLOb runs).
	Detections    map[int]detect.Classification
	TriggerScopes map[int]string
	Obfuscated    uint64
	StallCycles   uint64
	BISTScans     uint64

	// ReroutedAt is the cycle the rerouting baseline reconfigured (0 if
	// it never did).
	ReroutedAt uint64

	// VictimDelivered counts packets delivered to the attack target's
	// destination router during the measure phase — the victim
	// application's goodput (only tracked for Dest/DestSrc/Full targets).
	VictimDelivered uint64

	// FirstTrojanAt is the cycle the first link was classified as a
	// trojan (0 = never) — the detection latency measure.
	FirstTrojanAt uint64

	// Latency is the end-to-end packet latency distribution over the whole
	// run (both phases).
	Latency *stats.Histogram

	// Suspects is the final localization ranking (Locate runs only):
	// every link, most suspect first, with component scores.
	Suspects []locate.Suspect
	// SuspectsTelemetry is the same final ranking under TelemetryWeights —
	// localization from blocked-port telemetry and structure alone, with
	// the detector component zeroed (the ROADMAP's harder setting).
	SuspectsTelemetry []locate.Suspect
	// SuspectTrace records the rank-1 verdict at every telemetry sample
	// from attack enable onward — the time-to-localize series.
	SuspectTrace []locate.TraceSample
}

// flowMatcher returns the flow filter a target implies: the attacker places
// trojans on links its *target* flows actually cross (Section III-A). VC
// and Mem targets match flits of every flow, so no filter applies.
func flowMatcher(t tasp.Target) func(src, dst int) bool {
	switch t.Kind {
	case tasp.TargetDest:
		return func(_, dst int) bool { return dst == int(t.DstR) }
	case tasp.TargetSrc:
		return func(src, _ int) bool { return src == int(t.SrcR) }
	case tasp.TargetDestSrc, tasp.TargetFull:
		return func(src, dst int) bool { return src == int(t.SrcR) && dst == int(t.DstR) }
	default:
		return nil
	}
}

// ChooseInfectedLinks ranks the mesh's directed links by the analytic load
// of the flows the target matches (Section III-A's link-selection analysis)
// and returns the ids of the n hottest ones that keep the network connected
// if disabled — the attacker wants maximum coverage, and the rerouting
// comparison needs a survivable topology.
func ChooseInfectedLinks(m *traffic.Model, cfg noc.Config, links []noc.LinkInfo, n int, target tasp.Target) []int {
	loads := traffic.LinkLoadsWhere(m, cfg, flowMatcher(target))
	type cand struct {
		id   int
		load float64
	}
	cands := make([]cand, 0, len(links))
	for _, l := range links {
		key := fmt.Sprintf("%d->%d", l.From, l.To)
		cands = append(cands, cand{l.ID, loads[key]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load > cands[j].load
		}
		return cands[i].id < cands[j].id
	})
	var picked []int
	disabled := map[int]bool{}
	for _, c := range cands {
		if len(picked) == n {
			break
		}
		if c.load == 0 {
			break // target flows never cross the remaining links
		}
		disabled[c.id] = true
		if _, err := reroute.Build(cfg, links, disabled); err != nil {
			delete(disabled, c.id) // would disconnect the mesh; skip
			continue
		}
		picked = append(picked, c.id)
	}
	return picked
}

// Run executes one experiment.
func Run(cfg ExperimentConfig) (*Results, error) {
	if err := cfg.Noc.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		var err error
		model, err = traffic.Benchmark(cfg.Benchmark, cfg.Noc)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Mitigation == TDMQoS {
		// SurfNoC-style non-interference partitions the retransmission
		// buffers between the domains too.
		cfg.Noc.PartitionRetrans = true
	}
	net, err := noc.New(cfg.Noc)
	if err != nil {
		return nil, err
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 25
	}
	if cfg.RerouteDetectDelay <= 0 {
		cfg.RerouteDetectDelay = 200
	}
	enableAt := cfg.Attack.EnableAt
	if enableAt == 0 {
		enableAt = uint64(cfg.Warmup)
	}

	res := &Results{
		Config:        cfg,
		Detections:    map[int]detect.Classification{},
		TriggerScopes: map[int]string{},
	}

	// ---- attack deployment ----
	infected := append([]int(nil), cfg.Attack.Links...)
	if cfg.Attack.Enabled && len(infected) == 0 {
		k := cfg.Attack.NumLinks
		if k <= 0 {
			k = 1
		}
		infected = ChooseInfectedLinks(model, cfg.Noc, net.Links(), k, cfg.Attack.Target)
	}
	res.InfectedLinks = infected
	yBits := cfg.Attack.YBits
	if yBits == 0 {
		yBits = tasp.DefaultPayloadBits
	}

	// ---- wire assembly ----
	layout := cfg.Noc.Layout()
	mitigated := cfg.Mitigation == S2SLOb
	trojans := make([]*tasp.HT, 0, len(infected))
	wires := map[int]*SecureWire{}
	isInfected := map[int]bool{}
	for _, id := range infected {
		isInfected[id] = true
	}
	for _, l := range net.Links() {
		var tap fault.Injector = fault.None
		var chain fault.Chain
		if isInfected[l.ID] && cfg.Attack.Enabled {
			ht := tasp.New(cfg.Attack.Target, yBits, layout)
			trojans = append(trojans, ht)
			chain = append(chain, ht)
		}
		if cfg.TransientBER > 0 {
			chain = append(chain, fault.NewTransient(cfg.TransientBER, cfg.Seed^uint64(l.ID)<<8))
		}
		if len(chain) > 0 {
			tap = chain
		}
		w := NewSecureWire(tap, cfg.Seed^0x10b^uint64(l.ID), layout)
		w.Mitigated = mitigated
		if cfg.DetectorHistory > 0 {
			w.Detector = detect.New(cfg.DetectorHistory)
		}
		wires[l.ID] = w
		net.SetWire(l.ID, w)
	}

	// ---- mitigation-specific setup ----
	var tdm *qos.TDM
	if cfg.Mitigation == TDMQoS {
		tdm = qos.NewTDM(cfg.Noc)
		tdm.Install(net)
	}
	var e2e *obfe2e.Scrambler
	if cfg.Mitigation == E2EObfuscation {
		e2e = obfe2e.New(cfg.Seed ^ 0xe2e)
	}

	// Delivery accounting: latency distribution plus, for destination-style
	// targets, the victim application's goodput.
	res.Latency = stats.NewHistogram()
	trackVictim := false
	var victim uint8
	switch cfg.Attack.Target.Kind {
	case tasp.TargetDest, tasp.TargetDestSrc, tasp.TargetFull:
		trackVictim, victim = true, cfg.Attack.Target.DstR
	}
	net.SetDelivered(func(d noc.Delivery) {
		res.Latency.Observe(d.Latency)
		if trackVictim && d.Hdr.DstR == victim && net.Cycle() >= enableAt {
			res.VictimDelivered++
		}
	})

	// ---- localization layer ----
	var tel *noc.LinkTelemetry
	var eng *locate.Engine
	var evScratch map[int]locate.LinkEvidence
	if cfg.Locate {
		tel = net.EnableTelemetry(0)
		eng = locate.New(net.Topology(), net.Links())
		evScratch = make(map[int]locate.LinkEvidence, len(wires))
	}
	gatherEvidence := func() map[int]locate.LinkEvidence {
		for id, w := range wires { //nocvet:orderfree builds a map keyed by the same id, no order observed
			op := net.LinkOutput(id)
			evScratch[id] = locate.LinkEvidence{
				Class:           w.Detector.Classification(),
				Retransmissions: op.Retransmissions,
				FlitsSent:       op.FlitsSent,
			}
		}
		return evScratch
	}

	gen := model.Generator(cfg.Seed)
	inject := func(core int, p *flit.Packet) bool {
		if tdm != nil {
			p.Hdr.VC = tdm.AssignVC(core, p.Hdr.Seq)
		}
		if e2e != nil {
			p.Hdr.SrcR = uint8(cfg.Noc.CoreRouter(core)) // key derivation needs src
			e2e.Apply(p)
		}
		return net.Inject(core, p)
	}

	// ---- main loop ----
	total := cfg.Warmup + cfg.Measure
	rerouted := false
	for c := 0; c < total; c++ {
		if net.Cycle()+1 == enableAt {
			for _, ht := range trojans {
				ht.SetKillSwitch(true)
			}
		}
		gen.Tick(inject)
		net.Step()
		if net.Cycle() == enableAt {
			res.AtEnable = net.Counters
		}
		if cfg.Mitigation == Rerouting && !rerouted && cfg.Attack.Enabled &&
			net.Cycle() >= enableAt+uint64(cfg.RerouteDetectDelay) {
			disabled := map[int]bool{}
			for _, id := range infected {
				disabled[id] = true
			}
			if _, err := reroute.Apply(net, disabled); err != nil {
				return nil, fmt.Errorf("rerouting baseline: %w", err)
			}
			rerouted = true
			res.ReroutedAt = net.Cycle()
		}
		if mitigated && res.FirstTrojanAt == 0 {
			for _, w := range wires { //nocvet:orderfree existence scan, same FirstTrojanAt whichever wire matches
				if w.Detector.Classification() == detect.Trojan {
					res.FirstTrojanAt = net.Cycle()
					break
				}
			}
		}
		if int(net.Cycle())%cfg.SampleEvery == 0 {
			s := Sample{Occupancy: net.Occupancy()}
			if tdm != nil {
				for d := 0; d < qos.NumDomains; d++ {
					s.Domain[d] = tdm.OccupancyOf(net, d)
				}
			}
			res.Samples = append(res.Samples, s)
			if tel != nil {
				tel.Sample()
				if net.Cycle() >= enableAt {
					ranked := eng.Rank(tel, gatherEvidence())
					res.SuspectTrace = append(res.SuspectTrace, locate.TraceSample{
						Cycle:      net.Cycle(),
						LinkID:     ranked[0].LinkID,
						Score:      ranked[0].Score,
						Confidence: ranked[0].Confidence,
					})
				}
			}
		}
	}

	// ---- results ----
	res.Final = net.Counters
	if cfg.Measure > 0 {
		res.Throughput = float64(res.Final.DeliveredPackets-res.AtEnable.DeliveredPackets) / float64(cfg.Measure)
	}
	res.AvgLatency = res.Final.AvgLatency()
	for _, ht := range trojans {
		res.HTMatches += ht.Matches
		res.HTInjections += ht.Injections
	}
	if eng != nil {
		res.Suspects = eng.Rank(tel, gatherEvidence())
		res.SuspectsTelemetry = eng.RankWeighted(locate.TelemetryWeights(), tel, nil)
	}
	for id, w := range wires { //nocvet:orderfree commutative sums and per-id map fills
		res.Obfuscated += w.Obfuscated
		res.StallCycles += w.StallCycles
		res.BISTScans += w.BISTScans
		if cl := w.Detector.Classification(); cl != detect.Healthy {
			res.Detections[id] = cl
			res.TriggerScopes[id] = w.Detector.TriggerScope()
		}
	}
	return res, nil
}
