package core

import (
	"fmt"
	"sort"

	"tasp/internal/detect"
	"tasp/internal/locate"
	"tasp/internal/noc"
	"tasp/internal/qos"
	"tasp/internal/reroute"
	"tasp/internal/stats"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// Mitigation selects the defence installed for a run.
type Mitigation int

// The paper's configurations: no protection, the proposed switch-to-switch
// threat detector + L-Ob, FortNoCs-style end-to-end obfuscation, SurfNoC-
// style two-domain TDM QoS, and Ariadne-style rerouting.
const (
	NoMitigation Mitigation = iota
	S2SLOb
	E2EObfuscation
	TDMQoS
	Rerouting
)

// String names the mitigation.
func (m Mitigation) String() string {
	switch m {
	case NoMitigation:
		return "none"
	case S2SLOb:
		return "s2s-lob"
	case E2EObfuscation:
		return "e2e-obfuscation"
	case TDMQoS:
		return "tdm-qos"
	case Rerouting:
		return "rerouting"
	default:
		return fmt.Sprintf("mitigation(%d)", int(m))
	}
}

// ParseMitigation resolves a mitigation name (as produced by String) back to
// its value — the campaign scenario files and CLI flags use the names.
func ParseMitigation(s string) (Mitigation, error) {
	for _, m := range []Mitigation{NoMitigation, S2SLOb, E2EObfuscation, TDMQoS, Rerouting} {
		if m.String() == s {
			return m, nil
		}
	}
	return NoMitigation, fmt.Errorf("unknown mitigation %q (want none, s2s-lob, e2e-obfuscation, tdm-qos or rerouting)", s)
}

// AttackConfig describes the trojan deployment for a run.
type AttackConfig struct {
	Enabled bool
	// Kind selects the trojan family on the infected links: the TASP
	// double-flip (the zero value), the ACK-forging dropper, or the
	// header-rewriting misrouter. All families share the trigger
	// architecture, placement analysis and kill-switch protocol.
	Kind tasp.Kind
	// Target is the programmed comparator value. The zero value targets
	// destination router 0 — the primary core of most benchmarks.
	Target tasp.Target
	// YBits is the payload-counter width (0 = tasp.DefaultPayloadBits).
	// Flip family only.
	YBits int
	// Hijack is the router misrouted packets are delivered to (misroute
	// family only). Negative selects automatically: the reachable router
	// farthest from the victim by route-walk distance, so the diversion is
	// maximal and the first hop diverges from the legitimate path. Router 0
	// is a valid explicit choice — the sentinel is -1, not 0.
	Hijack int
	// DutyPeriod and DutyActive define the adaptive families' duty cycle in
	// cycles: a throttle trojan strikes during DutyActive cycles of every
	// DutyPeriod; a collusion set rotates the strike duty in slices of
	// DutyPeriod cycles (DutyActive is ignored). 0 = the tasp defaults,
	// tuned to sit under the secure-ack streak threshold at the default
	// sampling window.
	DutyPeriod int
	DutyActive int
	// Links explicitly lists infected link ids. When empty, the NumLinks
	// hottest links for the workload are infected (the attacker's optimal
	// placement from Section III-A).
	Links    []int
	NumLinks int
	// EnableAt is the cycle the external kill switch flips on
	// (0 = after warm-up, the paper's 1500-cycle protocol).
	EnableAt uint64
}

// ExperimentConfig is one full simulation run.
type ExperimentConfig struct {
	Noc       noc.Config
	Benchmark string         // traffic model name; ignored when Model is set
	Model     *traffic.Model // explicit model (overrides Benchmark)
	Seed      uint64

	Warmup      int // cycles before the attack enables (paper: 1500)
	Measure     int // cycles simulated after the attack enables
	SampleEvery int // occupancy sampling period (0 = 25 cycles)

	Attack     AttackConfig
	Mitigation Mitigation

	// TransientBER adds background single-event upsets on every link.
	TransientBER float64

	// RerouteDetectDelay is how many cycles after attack enable the
	// rerouting baseline takes to classify and disable the infected links
	// (Ariadne's reconfiguration trigger). 0 = 200 cycles.
	RerouteDetectDelay int

	// DetectorHistory overrides the threat detector's fault-history table
	// capacity (0 = detect.DefaultHistoryCap). Ablation knob.
	DetectorHistory int

	// Locate enables the network-level DoS localization layer: the
	// blocked-port telemetry tap is sampled every SampleEvery cycles and
	// the locate engine's fused ranking recorded (Results.Suspects and
	// Results.SuspectTrace). Observation-only — it never perturbs the
	// simulation.
	Locate bool

	// SecureAck enables secure-acknowledgment monitoring: every link's
	// sent/received counters are cross-checked each SampleEvery window
	// (detect.AckMonitor), convicting droppers and misrouters the
	// fault-triggered detector can never see. Verdicts land in
	// Results.AckVerdicts and, when Locate also runs, feed the ranking's
	// evidence. Observation-only unless RecoverOnConvict is set.
	SecureAck bool

	// AckDeficitRatio tunes the secure-ack monitor's cumulative-deficit
	// channel (0 = detect.DefaultDeficitRatio; negative disables the
	// deficit and fused channels — the stock streak-only detector, the
	// ablation arm adaptive trojans are tuned against).
	AckDeficitRatio float64

	// RecoverOnConvict turns secure-ack conviction into runtime recovery:
	// the moment the monitor convicts a link (any channel), the link is fed
	// to reroute.ApplySafe as a reconfiguration event and traffic
	// retransmits around it on the surviving topology, with the truncated
	// wormholes the attack and the cut left behind reclaimed. In-flight
	// traffic on the disabled link is dropped under the reconfig cause
	// (DroppedFlits split). Requires SecureAck.
	RecoverOnConvict bool

	// PredisabledLinks administratively disables links (by id) with the
	// safe reconfiguration (reroute.ApplySafe) before the run starts: the
	// post-fault capacity oracle. A recovery run's post-conviction goodput
	// is judged against an otherwise identical run that pre-disables the
	// convicted set — the gap isolates what recovery controls (detection
	// lag, reconfiguration debris) from the structural capacity the fabric
	// lost with the links.
	PredisabledLinks []int
}

// DefaultExperiment returns the paper's standard protocol: the 64-core mesh,
// Blackscholes traffic, a 1500-cycle warm-up, and a TASP attack targeting
// the traffic of the application's primary router. The attack is a single
// point of attack around that router: under strict XY routing a trojan on
// one ingress link can only wedge that link's row segment, so the default
// cuts the primary's whole ingress (its two hottest target-flow links) —
// the paper itself notes "the number of compromised links is orthogonal"
// to the single-point-of-attack analysis.
func DefaultExperiment() ExperimentConfig {
	return ExperimentConfig{
		Noc:       noc.DefaultConfig(),
		Benchmark: "blackscholes",
		Seed:      1,
		Warmup:    1500,
		Measure:   1500,
		Attack: AttackConfig{
			Enabled:  true,
			Target:   tasp.ForDest(0),
			NumLinks: 2,
			Hijack:   -1, // auto-select (router 0 would be the victim itself)
		},
		Mitigation: NoMitigation,
	}
}

// Sample is one time-series point: the whole-network occupancy plus, for
// TDM runs, the per-domain split.
type Sample struct {
	noc.Occupancy
	Domain [qos.NumDomains]noc.Occupancy
}

// Results aggregates everything a run produced.
type Results struct {
	Config        ExperimentConfig
	InfectedLinks []int
	Samples       []Sample

	// Counter snapshots: at attack enable and at the end.
	AtEnable noc.Counters
	Final    noc.Counters

	// Throughput is delivered packets per cycle during the measure phase;
	// AvgLatency is over all delivered packets.
	Throughput float64
	AvgLatency float64

	// Attack-side telemetry.
	HTMatches    uint64
	HTInjections uint64

	// Defence-side telemetry (S2SLOb runs).
	Detections    map[int]detect.Classification
	TriggerScopes map[int]string
	Obfuscated    uint64
	StallCycles   uint64
	BISTScans     uint64

	// AckVerdicts holds the secure-ack monitor's non-healthy link verdicts
	// (SecureAck runs only); AckChannels the evidence channel that produced
	// each; AckFlaggedAt is the cycle the first link was convicted as a
	// dropper or misrouter (0 = never).
	AckVerdicts  map[int]detect.AckClass
	AckChannels  map[int]detect.AckChannel
	AckFlaggedAt uint64

	// HijackRouter is the effective misroute hijack destination after
	// auto-selection (-1 for non-misroute runs): the regression surface for
	// the -1 sentinel semantics (router 0 is a valid explicit hijack).
	HijackRouter int

	// ReroutedAt is the cycle the rerouting baseline reconfigured (0 if
	// it never did).
	ReroutedAt uint64

	// Recovery telemetry (RecoverOnConvict runs). RecoveredAt is the cycle
	// of the first conviction-driven reconfiguration (0 = never convicted);
	// RecoveredLinks lists every link disabled by recovery in conviction
	// order; AtRecover snapshots the counters at the first reconfiguration,
	// so post-recovery throughput is (Final-AtRecover) over the remaining
	// cycles. VictimAtRecover snapshots VictimDelivered at the same instant
	// — the victim's post-recovery goodput rate is the DoS-recovery measure
	// (whole-network throughput is bounded by the surviving topology's
	// capacity, the Figure 10 rerouting cost).
	RecoveredAt     uint64
	RecoveredLinks  []int
	AtRecover       noc.Counters
	VictimAtRecover uint64

	// VictimDelivered counts packets delivered to the attack target's
	// destination router during the measure phase — the victim
	// application's goodput (only tracked for Dest/DestSrc/Full targets).
	VictimDelivered uint64

	// FirstTrojanAt is the cycle the first link was classified as a
	// trojan (0 = never) — the detection latency measure.
	FirstTrojanAt uint64

	// Latency is the end-to-end packet latency distribution over the whole
	// run (both phases).
	Latency *stats.Histogram

	// Suspects is the final localization ranking (Locate runs only):
	// every link, most suspect first, with component scores.
	Suspects []locate.Suspect
	// SuspectsTelemetry is the same final ranking under TelemetryWeights —
	// localization from blocked-port telemetry and structure alone, with
	// the detector component zeroed (the ROADMAP's harder setting).
	SuspectsTelemetry []locate.Suspect
	// SuspectTrace records the rank-1 verdict at every telemetry sample
	// from attack enable onward — the time-to-localize series.
	SuspectTrace []locate.TraceSample
}

// flowMatcher returns the flow filter a target implies: the attacker places
// trojans on links its *target* flows actually cross (Section III-A). VC
// and Mem targets match flits of every flow, so no filter applies.
func flowMatcher(t tasp.Target) func(src, dst int) bool {
	switch t.Kind {
	case tasp.TargetDest:
		return func(_, dst int) bool { return dst == int(t.DstR) }
	case tasp.TargetSrc:
		return func(src, _ int) bool { return src == int(t.SrcR) }
	case tasp.TargetDestSrc, tasp.TargetFull:
		return func(src, dst int) bool { return src == int(t.SrcR) && dst == int(t.DstR) }
	default:
		return nil
	}
}

// ChooseInfectedLinks ranks the mesh's directed links by the analytic load
// of the flows the target matches (Section III-A's link-selection analysis)
// and returns the ids of the n hottest ones that keep the network connected
// if disabled — the attacker wants maximum coverage, and the rerouting
// comparison needs a survivable topology.
func ChooseInfectedLinks(m *traffic.Model, cfg noc.Config, links []noc.LinkInfo, n int, target tasp.Target) []int {
	loads := traffic.LinkLoadsWhere(m, cfg, flowMatcher(target))
	type cand struct {
		id   int
		load float64
	}
	cands := make([]cand, 0, len(links))
	for _, l := range links {
		key := fmt.Sprintf("%d->%d", l.From, l.To)
		cands = append(cands, cand{l.ID, loads[key]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].load != cands[j].load {
			return cands[i].load > cands[j].load
		}
		return cands[i].id < cands[j].id
	})
	var picked []int
	disabled := map[int]bool{}
	for _, c := range cands {
		if len(picked) == n {
			break
		}
		if c.load == 0 {
			break // target flows never cross the remaining links
		}
		disabled[c.id] = true
		if _, err := reroute.Build(cfg, links, disabled); err != nil {
			delete(disabled, c.id) // would disconnect the mesh; skip
			continue
		}
		picked = append(picked, c.id)
	}
	return picked
}

// Run executes one experiment on a fresh one-shot platform. It is a thin
// wrapper over the Runner execution engine (runner.go); sweeps that revisit
// the same network configuration should hold a Runner per worker and call
// RunInto to reuse the simulation arena across points.
func Run(cfg ExperimentConfig) (*Results, error) {
	return NewRunner().Run(cfg)
}
