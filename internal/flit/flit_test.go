package flit

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: Head, VC: 3, SrcR: 12, SrcC: 1, DstR: 5, DstC: 3, Mem: 0xdeadbeef, Seq: 200, Spare: 0x5a}
	got := DecodeHeader(h.Encode())
	if got != h {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(kind, vc, sr, sc, dr, dc, seq, spare uint8, mem uint32) bool {
		h := Header{
			Kind:  Type(kind & 3),
			VC:    vc & 3,
			SrcR:  sr & 15,
			SrcC:  sc & 3,
			DstR:  dr & 15,
			DstC:  dc & 3,
			Mem:   mem,
			Seq:   seq,
			Spare: spare,
		}
		return DecodeHeader(h.Encode()) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFieldIsolation(t *testing.T) {
	// Changing one field must not disturb any other encoded field.
	base := Header{Kind: Head, VC: 1, SrcR: 7, SrcC: 2, DstR: 9, DstC: 1, Mem: 0x12345678, Seq: 42, Spare: 3}
	mod := base
	mod.DstR = 14
	a, b := base.Encode(), mod.Encode()
	diff := a ^ b
	lo := uint64(1)<<DstShift | uint64(1)<<(DstShift+1) | uint64(1)<<(DstShift+2) | uint64(1)<<(DstShift+3)
	if diff&^lo != 0 {
		t.Fatalf("changing DstR disturbed other bits: diff=%016x", diff)
	}
}

func TestFullWindowCoversRoutingFields(t *testing.T) {
	// The paper's 42-bit "full" comparator window must contain vc, src, dst
	// and mem but not type, seq or spare.
	if FullShift != VCShift {
		t.Fatalf("full window must start at the VC field")
	}
	end := FullShift + FullBits
	if MemShift+MemBits != end {
		t.Fatalf("full window must end with the memory field: end=%d mem end=%d", end, MemShift+MemBits)
	}
	if FullBits != VCBits+SrcBits+DstBits+MemBits {
		t.Fatalf("full window width %d does not equal sum of routed fields", FullBits)
	}
}

func TestPacketFlitsSingle(t *testing.T) {
	p := Packet{ID: 9, Hdr: Header{SrcR: 1, DstR: 2, Seq: 7}, Inject: 100}
	fs := p.Flits()
	if len(fs) != 1 {
		t.Fatalf("want 1 flit, got %d", len(fs))
	}
	f := fs[0]
	if f.Kind != Single || !f.IsHead() || !f.IsTail() {
		t.Fatalf("single flit has wrong kind: %v", f.Kind)
	}
	if f.Header().DstR != 2 || f.Header().Seq != 7 {
		t.Fatalf("header not carried: %v", f.Header())
	}
	if f.PacketID != 9 || f.InjectAt != 100 {
		t.Fatalf("bookkeeping not carried: %+v", f)
	}
}

func TestPacketFlitsMulti(t *testing.T) {
	p := Packet{ID: 3, Hdr: Header{SrcR: 4, DstR: 8}, Body: []uint64{10, 20, 30, 40}}
	fs := p.Flits()
	if len(fs) != 5 {
		t.Fatalf("want 5 flits, got %d", len(fs))
	}
	if fs[0].Kind != Head {
		t.Fatalf("first flit must be head, got %v", fs[0].Kind)
	}
	for i := 1; i < 4; i++ {
		if fs[i].Kind != Body {
			t.Fatalf("flit %d must be body, got %v", i, fs[i].Kind)
		}
		if fs[i].Payload != uint64(i*10) {
			t.Fatalf("flit %d payload %d", i, fs[i].Payload)
		}
	}
	if fs[4].Kind != Tail || !fs[4].IsTail() {
		t.Fatalf("last flit must be tail, got %v", fs[4].Kind)
	}
	for i, f := range fs {
		if int(f.Index) != i {
			t.Fatalf("flit %d has index %d", i, f.Index)
		}
	}
	if p.NumFlits() != 5 {
		t.Fatalf("NumFlits = %d", p.NumFlits())
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{Head: "head", Body: "body", Tail: "tail", Single: "single"} {
		if ty.String() != want {
			t.Errorf("Type(%d).String() = %q want %q", ty, ty.String(), want)
		}
	}
}
