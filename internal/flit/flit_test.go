package flit

import (
	"testing"
	"testing/quick"
)

// legacyEncode packs a header with the original fixed-format constants
// (type 0..1, vc 2..3, src 4..7, dst 8..11, mem 12..43, srcC 44..45,
// dstC 46..47, seq 48..55, spare 56..63). The Default layout must reproduce
// it bit for bit — that equivalence is the refactor's safety rail.
func legacyEncode(h Header) uint64 {
	var w uint64
	w |= (uint64(h.Kind) & 3) << 0
	w |= (uint64(h.VC) & 3) << 2
	w |= (uint64(h.SrcR) & 15) << 4
	w |= (uint64(h.DstR) & 15) << 8
	w |= (uint64(h.Mem) & 0xffffffff) << 12
	w |= (uint64(h.SrcC) & 3) << 44
	w |= (uint64(h.DstC) & 3) << 46
	w |= (uint64(h.Seq) & 255) << 48
	w |= (uint64(h.Spare) & 255) << 56
	return w
}

func TestDefaultLayoutMatchesLegacyConstants(t *testing.T) {
	l := Default
	want := []struct {
		name         string
		shift, width uint
		gotS, gotW   uint
	}{
		{"type", 0, 2, l.TypeShift, l.TypeBits},
		{"vc", 2, 2, l.VCShift, l.VCBits},
		{"src", 4, 4, l.SrcShift, l.SrcBits},
		{"dst", 8, 4, l.DstShift, l.DstBits},
		{"mem", 12, 32, l.MemShift, l.MemBits},
		{"srcCore", 44, 2, l.SrcCoreShift, l.SrcCoreBits},
		{"dstCore", 46, 2, l.DstCoreShift, l.DstCoreBits},
		{"seq", 48, 8, l.SeqShift, l.SeqBits},
		{"spare", 56, 8, l.SpareShift, l.SpareBits},
		{"full", 2, 42, l.FullShift, l.FullBits},
	}
	for _, f := range want {
		if f.gotS != f.shift || f.gotW != f.width {
			t.Errorf("%s: got [%d:%d), legacy [%d:%d)", f.name, f.gotS, f.gotS+f.gotW, f.shift, f.shift+f.width)
		}
	}
}

func TestDefaultEncodeMatchesLegacy(t *testing.T) {
	f := func(kind, vc, sr, sc, dr, dc, seq, spare uint8, mem uint32) bool {
		h := Header{
			Kind: Type(kind & 3), VC: vc, SrcR: sr, SrcC: sc, DstR: dr, DstC: dc,
			Mem: mem, Seq: seq, Spare: spare,
		}
		return Default.Encode(h) == legacyEncode(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutForDefaultPlatform(t *testing.T) {
	// The paper's platform (16 routers, concentration 4, 4 VCs) must derive
	// exactly the Default layout.
	l, err := LayoutFor(16, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l != Default {
		t.Fatalf("LayoutFor(16,4,4) = %v, want Default %v", l, Default)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Kind: Head, VC: 3, SrcR: 12, SrcC: 1, DstR: 5, DstC: 3, Mem: 0xdeadbeef, Seq: 200, Spare: 0x5a}
	got := Default.Decode(Default.Encode(h))
	if got != h {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(kind, vc, sr, sc, dr, dc, seq, spare uint8, mem uint32) bool {
		h := Header{
			Kind:  Type(kind & 3),
			VC:    vc & 3,
			SrcR:  sr & 15,
			SrcC:  sc & 3,
			DstR:  dr & 15,
			DstC:  dc & 3,
			Mem:   mem,
			Seq:   seq,
			Spare: spare,
		}
		return Default.Decode(Default.Encode(h)) == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderFieldIsolation(t *testing.T) {
	// Changing one field must not disturb any other encoded field.
	base := Header{Kind: Head, VC: 1, SrcR: 7, SrcC: 2, DstR: 9, DstC: 1, Mem: 0x12345678, Seq: 42, Spare: 3}
	mod := base
	mod.DstR = 14
	a, b := Default.Encode(base), Default.Encode(mod)
	diff := a ^ b
	dstWindow := mask(Default.DstBits) << Default.DstShift
	if diff&^dstWindow != 0 {
		t.Fatalf("changing DstR disturbed other bits: diff=%016x", diff)
	}
}

func TestFullWindowCoversRoutingFields(t *testing.T) {
	// The "full" comparator window must contain vc, src, dst and mem but not
	// type, seq, spare or the core ids, in every layout.
	for _, dims := range [][3]int{{16, 4, 4}, {64, 4, 4}, {64, 8, 8}, {256, 4, 4}, {4, 1, 2}} {
		l, err := LayoutFor(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatalf("LayoutFor(%v): %v", dims, err)
		}
		if l.FullShift != l.VCShift {
			t.Errorf("%v: full window must start at the VC field", dims)
		}
		end := l.FullShift + l.FullBits
		if l.MemShift+l.MemBits != end {
			t.Errorf("%v: full window must end with the memory field: end=%d mem end=%d", dims, end, l.MemShift+l.MemBits)
		}
		if l.FullBits != l.VCBits+l.SrcBits+l.DstBits+l.MemBits {
			t.Errorf("%v: full window width %d does not equal sum of routed fields", dims, l.FullBits)
		}
	}
}

func TestLayoutCapacity(t *testing.T) {
	cases := []struct {
		routers, conc, vcs       int
		wantErr                  bool
		maxRouters, maxConc, hdr int
	}{
		{16, 4, 4, false, 16, 4, 56},   // the paper's platform
		{64, 4, 4, false, 64, 4, 60},   // 8x8 mesh: 6-bit router ids
		{64, 8, 8, false, 64, 8, 63},   // concentration 8, 8 VCs
		{256, 4, 4, false, 256, 4, 64}, // 16x16 mesh: 8-bit ids, zero spare
		{256, 8, 4, true, 0, 0, 0},     // 2+2+8+8+32+3+3+8 = 66 > 64
		{512, 4, 4, true, 0, 0, 0},     // 9-bit router ids exceed uint8 header fields
		{1, 4, 4, true, 0, 0, 0},
		{16, 0, 4, true, 0, 0, 0},
		{16, 4, 0, true, 0, 0, 0},
	}
	for _, tc := range cases {
		l, err := LayoutFor(tc.routers, tc.conc, tc.vcs)
		if tc.wantErr {
			if err == nil {
				t.Errorf("LayoutFor(%d,%d,%d): expected error, got %v", tc.routers, tc.conc, tc.vcs, l)
			}
			continue
		}
		if err != nil {
			t.Errorf("LayoutFor(%d,%d,%d): %v", tc.routers, tc.conc, tc.vcs, err)
			continue
		}
		if l.MaxRouters() < tc.maxRouters || l.MaxConcentration() < tc.maxConc {
			t.Errorf("LayoutFor(%d,%d,%d): capacity %d routers x %d cores, want >= %d x %d",
				tc.routers, tc.conc, tc.vcs, l.MaxRouters(), l.MaxConcentration(), tc.maxRouters, tc.maxConc)
		}
		if l.HeaderBits() != tc.hdr {
			t.Errorf("LayoutFor(%d,%d,%d): header window %d bits, want %d", tc.routers, tc.conc, tc.vcs, l.HeaderBits(), tc.hdr)
		}
		if l.SeqShift+l.SeqBits+l.SpareBits != PayloadBits {
			t.Errorf("LayoutFor(%d,%d,%d): spare does not pad to %d bits", tc.routers, tc.conc, tc.vcs, PayloadBits)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 64: 6, 256: 8, 257: 9}
	for n, want := range cases {
		if got := BitsFor(n); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPacketFlitsSingle(t *testing.T) {
	p := Packet{ID: 9, Hdr: Header{SrcR: 1, DstR: 2, Seq: 7}, Inject: 100}
	fs := p.Flits(Default)
	if len(fs) != 1 {
		t.Fatalf("want 1 flit, got %d", len(fs))
	}
	f := fs[0]
	if f.Kind != Single || !f.IsHead() || !f.IsTail() {
		t.Fatalf("single flit has wrong kind: %v", f.Kind)
	}
	if f.Header(Default).DstR != 2 || f.Header(Default).Seq != 7 {
		t.Fatalf("header not carried: %v", f.Header(Default))
	}
	if f.PacketID != 9 || f.InjectAt != 100 {
		t.Fatalf("bookkeeping not carried: %+v", f)
	}
}

func TestPacketFlitsMulti(t *testing.T) {
	p := Packet{ID: 3, Hdr: Header{SrcR: 4, DstR: 8}, Body: []uint64{10, 20, 30, 40}}
	fs := p.Flits(Default)
	if len(fs) != 5 {
		t.Fatalf("want 5 flits, got %d", len(fs))
	}
	if fs[0].Kind != Head {
		t.Fatalf("first flit must be head, got %v", fs[0].Kind)
	}
	for i := 1; i < 4; i++ {
		if fs[i].Kind != Body {
			t.Fatalf("flit %d must be body, got %v", i, fs[i].Kind)
		}
		if fs[i].Payload != uint64(i*10) {
			t.Fatalf("flit %d payload %d", i, fs[i].Payload)
		}
	}
	if fs[4].Kind != Tail || !fs[4].IsTail() {
		t.Fatalf("last flit must be tail, got %v", fs[4].Kind)
	}
	for i, f := range fs {
		if int(f.Index) != i {
			t.Fatalf("flit %d has index %d", i, f.Index)
		}
	}
	if p.NumFlits() != 5 {
		t.Fatalf("NumFlits = %d", p.NumFlits())
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{Head: "head", Body: "body", Tail: "tail", Single: "single"} {
		if ty.String() != want {
			t.Errorf("Type(%d).String() = %q want %q", ty, ty.String(), want)
		}
	}
}
