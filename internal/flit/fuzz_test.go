package flit

import (
	"testing"
	"testing/quick"
)

// clamp masks a header's fields down to what the layout can carry, so a
// round-trip comparison is meaningful.
func (l Layout) clamp(h Header) Header {
	h.Kind = Type(uint64(h.Kind) & mask(l.TypeBits))
	h.VC = uint8(uint64(h.VC) & mask(l.VCBits))
	h.SrcR = uint8(uint64(h.SrcR) & mask(l.SrcBits))
	h.DstR = uint8(uint64(h.DstR) & mask(l.DstBits))
	h.SrcC = uint8(uint64(h.SrcC) & mask(l.SrcCoreBits))
	h.DstC = uint8(uint64(h.DstC) & mask(l.DstCoreBits))
	h.Mem = uint32(uint64(h.Mem) & mask(l.MemBits))
	h.Seq = uint8(uint64(h.Seq) & mask(l.SeqBits))
	h.Spare = uint8(uint64(h.Spare) & mask(l.SpareBits))
	return h
}

// FuzzHeaderRoundTrip fuzzes Encode/Decode across randomized layouts
// (router bits 2..6, core bits 0..3, vc bits 0..3): every clamped header
// must round-trip exactly, and rewriting one field must not disturb the
// encoded bits of any other field.
func FuzzHeaderRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(2), uint8(0), uint8(3), uint8(12), uint8(1), uint8(5), uint8(3), uint32(0xdeadbeef), uint8(200), uint8(0x5a))
	f.Add(uint8(6), uint8(0), uint8(3), uint8(3), uint8(7), uint8(63), uint8(0), uint8(42), uint8(0), uint32(1)<<31, uint8(0), uint8(255))
	f.Add(uint8(2), uint8(3), uint8(0), uint8(1), uint8(0), uint8(2), uint8(7), uint8(1), uint8(6), uint32(0), uint8(9), uint8(1))
	f.Fuzz(func(t *testing.T, rb, cb, vb, kind, vc, sr, sc, dr uint8, dc uint8, mem uint32, seq, spare uint8) {
		routerBits := 2 + int(rb%5) // 2..6
		coreBits := int(cb % 4)     // 0..3
		vcBits := int(vb % 4)       // 0..3
		l, err := NewLayout(routerBits, coreBits, vcBits)
		if err != nil {
			t.Fatalf("NewLayout(%d,%d,%d): %v", routerBits, coreBits, vcBits, err)
		}
		h := l.clamp(Header{
			Kind: Type(kind), VC: vc, SrcR: sr, SrcC: sc, DstR: dr, DstC: dc,
			Mem: mem, Seq: seq, Spare: spare,
		})
		w := l.Encode(h)
		got := l.Decode(w)
		if got != h {
			t.Fatalf("layout %v: round trip mismatch:\n got %+v\nwant %+v", l, got, h)
		}
		// Field isolation: flipping DstR touches only the dst window.
		mod := h
		mod.DstR = uint8(uint64(^h.DstR) & mask(l.DstBits))
		diff := w ^ l.Encode(mod)
		if window := mask(l.DstBits) << l.DstShift; diff&^window != 0 {
			t.Fatalf("layout %v: changing DstR disturbed bits outside [%d:%d): diff=%016x",
				l, l.DstShift, l.DstShift+l.DstBits, diff)
		}
		// The default layout must keep matching the legacy constants.
		if l == Default {
			if le := legacyEncode(h); w != le {
				t.Fatalf("default layout diverged from legacy encoding: %016x != %016x", w, le)
			}
		}
	})
}

// TestHeaderRoundTripAcrossLayouts is the quick.Check property-test twin of
// the fuzz target, so the invariant is exercised on every plain `go test`
// run, not only when fuzzing.
func TestHeaderRoundTripAcrossLayouts(t *testing.T) {
	f := func(rb, cb, vb, kind, vc, sr, sc, dr, dc, seq, spare uint8, mem uint32) bool {
		l, err := NewLayout(2+int(rb%5), int(cb%4), int(vb%4))
		if err != nil {
			return false
		}
		h := l.clamp(Header{
			Kind: Type(kind), VC: vc, SrcR: sr, SrcC: sc, DstR: dr, DstC: dc,
			Mem: mem, Seq: seq, Spare: spare,
		})
		return l.Decode(l.Encode(h)) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestFieldIsolationAcrossLayouts rewrites each field independently and
// asserts the encoded difference stays inside that field's bit window.
func TestFieldIsolationAcrossLayouts(t *testing.T) {
	layouts := []struct{ rb, cb, vb int }{{4, 2, 2}, {6, 2, 2}, {6, 3, 3}, {8, 0, 2}, {2, 0, 0}, {5, 1, 3}}
	base := Header{Kind: Head, VC: 0xff, SrcR: 0xff, SrcC: 0xff, DstR: 0xff, DstC: 0xff, Mem: 0xffffffff, Seq: 0xff, Spare: 0xff}
	for _, d := range layouts {
		l, err := NewLayout(d.rb, d.cb, d.vb)
		if err != nil {
			t.Fatalf("NewLayout(%v): %v", d, err)
		}
		h := l.clamp(base)
		w := l.Encode(h)
		muts := []struct {
			name         string
			mut          func(Header) Header
			shift, width uint
		}{
			{"vc", func(h Header) Header { h.VC = 0; return h }, l.VCShift, l.VCBits},
			{"src", func(h Header) Header { h.SrcR = 0; return h }, l.SrcShift, l.SrcBits},
			{"dst", func(h Header) Header { h.DstR = 0; return h }, l.DstShift, l.DstBits},
			{"mem", func(h Header) Header { h.Mem = 0; return h }, l.MemShift, l.MemBits},
			{"srcC", func(h Header) Header { h.SrcC = 0; return h }, l.SrcCoreShift, l.SrcCoreBits},
			{"dstC", func(h Header) Header { h.DstC = 0; return h }, l.DstCoreShift, l.DstCoreBits},
			{"seq", func(h Header) Header { h.Seq = 0; return h }, l.SeqShift, l.SeqBits},
			{"spare", func(h Header) Header { h.Spare = 0; return h }, l.SpareShift, l.SpareBits},
		}
		for _, m := range muts {
			diff := w ^ l.Encode(m.mut(h))
			window := mask(m.width) << m.shift
			if diff&^window != 0 {
				t.Errorf("layout (%d,%d,%d): clearing %s disturbed bits outside its window: diff=%016x",
					d.rb, d.cb, d.vb, m.name, diff)
			}
			if m.width > 0 && diff == 0 {
				t.Errorf("layout (%d,%d,%d): clearing %s changed nothing (field not encoded?)", d.rb, d.cb, d.vb, m.name)
			}
		}
	}
}
