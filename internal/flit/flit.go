// Package flit defines the packet and flit formats used throughout the NoC.
//
// A packet is a sequence of flits. The head flit carries the routing header;
// body and tail flits carry payload. Every flit is 64 data bits wide before
// link ECC encoding (the paper's routers use 64-bit buffer slots); the SECDED
// encoder in package ecc expands a flit to a 72-bit codeword for traversal.
//
// Header layout of a head (or single) flit, least-significant bit first:
//
//	bits  0..1   flit type (Head, Body, Tail, Single)
//	bits  2..3   virtual channel id (2 bits, 4 VCs)
//	bits  4..7   source router (4 bits, 16 routers)
//	bits  8..11  destination router
//	bits 12..43  memory address (32 bits)
//	bits 44..45  source core within router (2 bits, concentration 4)
//	bits 46..47  destination core within router
//	bits 48..55  packet sequence number (8 bits)
//	bits 56..63  spare / payload fragment
//
// The core sub-identifiers sit outside bits 2..43 so that the paper's 42-bit
// "full" comparator window (vc + src + dest + mem) is one contiguous span.
//
// These widths deliberately match the paper's TASP comparator widths:
// src 4, dest 4, dest+src 8, vc 2, mem 32, full 42 (bits 2..43).
package flit

import "fmt"

// Type distinguishes the role of a flit within its packet.
type Type uint8

// Flit types. Single is a one-flit packet (head and tail at once).
const (
	Head Type = iota
	Body
	Tail
	Single
)

// String returns a short human-readable name for the flit type.
func (t Type) String() string {
	switch t {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case Single:
		return "single"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Field bit positions within the 64-bit head flit payload.
const (
	TypeShift    = 0
	TypeBits     = 2
	VCShift      = 2
	VCBits       = 2
	SrcShift     = 4
	SrcBits      = 4
	DstShift     = 8
	DstBits      = 4
	MemShift     = 12
	MemBits      = 32
	SrcCoreShift = 44
	SrcCoreBits  = 2
	DstCoreShift = 46
	DstCoreBits  = 2
	SeqShift     = 48
	SeqBits      = 8
	SpareShift   = 56
	SpareBits    = 8

	// FullShift/FullBits span the paper's 42-bit "full" target window:
	// vc(2) + src(4) + dst(4) + mem(32) = 42 bits at bits 2..43.
	FullShift = 2
	FullBits  = 42
)

// Header is the decoded routing header of a packet.
type Header struct {
	Kind    Type   // Head or Single for the leading flit
	VC      uint8  // virtual channel (0..3)
	SrcR    uint8  // source router (0..15)
	SrcC    uint8  // source core within the router (0..3)
	DstR    uint8  // destination router (0..15)
	DstC    uint8  // destination core within the router (0..3)
	Mem     uint32 // memory address the request refers to
	Seq     uint8  // per-source packet sequence number
	Spare   uint8  // spare bits, carried verbatim
	badKind bool
}

// mask returns an n-bit all-ones mask.
func mask(n uint) uint64 { return (uint64(1) << n) - 1 }

// Encode packs the header into a 64-bit flit payload.
func (h Header) Encode() uint64 {
	var w uint64
	w |= (uint64(h.Kind) & mask(TypeBits)) << TypeShift
	w |= (uint64(h.VC) & mask(VCBits)) << VCShift
	w |= (uint64(h.SrcR) & mask(SrcBits)) << SrcShift
	w |= (uint64(h.DstR) & mask(DstBits)) << DstShift
	w |= (uint64(h.Mem) & mask(MemBits)) << MemShift
	w |= (uint64(h.SrcC) & mask(SrcCoreBits)) << SrcCoreShift
	w |= (uint64(h.DstC) & mask(DstCoreBits)) << DstCoreShift
	w |= (uint64(h.Seq) & mask(SeqBits)) << SeqShift
	w |= (uint64(h.Spare) & mask(SpareBits)) << SpareShift
	return w
}

// DecodeHeader unpacks a 64-bit flit payload into a Header.
func DecodeHeader(w uint64) Header {
	return Header{
		Kind:  Type((w >> TypeShift) & mask(TypeBits)),
		VC:    uint8((w >> VCShift) & mask(VCBits)),
		SrcR:  uint8((w >> SrcShift) & mask(SrcBits)),
		SrcC:  uint8((w >> SrcCoreShift) & mask(SrcCoreBits)),
		DstR:  uint8((w >> DstShift) & mask(DstBits)),
		DstC:  uint8((w >> DstCoreShift) & mask(DstCoreBits)),
		Mem:   uint32((w >> MemShift) & mask(MemBits)),
		Seq:   uint8((w >> SeqShift) & mask(SeqBits)),
		Spare: uint8((w >> SpareShift) & mask(SpareBits)),
	}
}

// Flit is one 64-bit unit of a packet inside a router, before link encoding.
type Flit struct {
	Kind    Type
	Payload uint64 // raw 64-bit payload; for head flits this is Header.Encode()
	// Bookkeeping (not on the wire): identity for stats and retransmission.
	PacketID uint64 // globally unique packet id assigned at injection
	Index    uint8  // position of this flit within its packet
	InjectAt uint64 // cycle the packet was injected (latency accounting)
}

// Header decodes the routing header carried by a head or single flit.
func (f *Flit) Header() Header { return DecodeHeader(f.Payload) }

// IsHead reports whether the flit leads a packet (Head or Single).
func (f *Flit) IsHead() bool { return f.Kind == Head || f.Kind == Single }

// IsTail reports whether the flit ends a packet (Tail or Single).
func (f *Flit) IsTail() bool { return f.Kind == Tail || f.Kind == Single }

// Packet is a whole message before flitisation.
type Packet struct {
	ID      uint64
	Hdr     Header
	Body    []uint64 // body payload words (may be empty for 1-flit packets)
	Inject  uint64   // injection cycle
	Deliver uint64   // delivery cycle of the tail flit (0 until delivered)
}

// NumFlits returns the number of flits the packet occupies on the wire.
func (p *Packet) NumFlits() int {
	if len(p.Body) == 0 {
		return 1
	}
	return 1 + len(p.Body)
}

// Flits serialises the packet into its wire flits. A packet with no body
// words becomes a lone Single flit; otherwise a Head flit followed by Body
// flits with the final one marked Tail.
func (p *Packet) Flits() []Flit {
	n := p.NumFlits()
	out := make([]Flit, 0, n)
	if n == 1 {
		h := p.Hdr
		h.Kind = Single
		out = append(out, Flit{Kind: Single, Payload: h.Encode(), PacketID: p.ID, Index: 0, InjectAt: p.Inject})
		return out
	}
	h := p.Hdr
	h.Kind = Head
	out = append(out, Flit{Kind: Head, Payload: h.Encode(), PacketID: p.ID, Index: 0, InjectAt: p.Inject})
	for i, w := range p.Body {
		k := Body
		if i == len(p.Body)-1 {
			k = Tail
		}
		out = append(out, Flit{Kind: k, Payload: w, PacketID: p.ID, Index: uint8(i + 1), InjectAt: p.Inject})
	}
	return out
}

// String renders the header compactly for logs and test failures.
func (h Header) String() string {
	return fmt.Sprintf("%s vc%d %d.%d->%d.%d mem=%08x seq=%d",
		h.Kind, h.VC, h.SrcR, h.SrcC, h.DstR, h.DstC, h.Mem, h.Seq)
}
