// Package flit defines the packet and flit formats used throughout the NoC.
//
// A packet is a sequence of flits. The head flit carries the routing header;
// body and tail flits carry payload. Every flit is 64 data bits wide before
// link ECC encoding (the paper's routers use 64-bit buffer slots); the SECDED
// encoder in package ecc expands a flit to a 72-bit codeword for traversal.
//
// Where each header field sits inside those 64 bits is not fixed: it is
// described by a Layout, derived from the network configuration. Fields are
// packed least-significant bit first, in a fixed order:
//
//	type | vc | src router | dst router | mem | src core | dst core | seq | spare
//
// The core sub-identifiers sit outside the vc..mem span so that the paper's
// "full" comparator window (vc + src + dest + mem) is one contiguous run of
// bits, whatever the field widths.
//
// Default is the paper's own instance — 16 routers (4-bit ids), 4 cores per
// router (2-bit ids), 4 VCs (2-bit ids) — which reproduces the exact layout
// and TASP comparator widths of the paper: src 4, dest 4, dest+src 8, vc 2,
// mem 32, full 42 (bits 2..43). Larger substrates (an 8x8 mesh, concentration
// 8) widen the id fields and squeeze the spare bits instead of being
// unrepresentable.
package flit

import (
	"fmt"
	"math/bits"
)

// Type distinguishes the role of a flit within its packet.
type Type uint8

// Flit types. Single is a one-flit packet (head and tail at once).
const (
	Head Type = iota
	Body
	Tail
	Single
)

// String returns a short human-readable name for the flit type.
func (t Type) String() string {
	switch t {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case Single:
		return "single"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Fixed field widths: every layout spends 2 bits on the flit type, 32 on the
// memory address and 8 on the per-source sequence number. Only the id fields
// (router, core, vc) scale with the substrate.
const (
	typeBits = 2
	memBits  = 32
	seqBits  = 8

	// PayloadBits is the flit width the layouts pack into.
	PayloadBits = 64

	// MaxIDBits caps each id field: Header carries router, core and vc ids
	// as uint8, so no id field may exceed 8 bits (256 routers).
	MaxIDBits = 8
)

// Layout maps header fields to bit positions within the 64-bit head-flit
// payload. Construct with NewLayout or LayoutFor; the zero value is invalid.
// Layouts are immutable values and safe to copy and share.
type Layout struct {
	TypeShift, TypeBits       uint
	VCShift, VCBits           uint
	SrcShift, SrcBits         uint
	DstShift, DstBits         uint
	MemShift, MemBits         uint
	SrcCoreShift, SrcCoreBits uint
	DstCoreShift, DstCoreBits uint
	SeqShift, SeqBits         uint
	SpareShift, SpareBits     uint

	// FullShift/FullBits span the paper's "full" target window: the
	// contiguous vc + src + dst + mem run (42 bits at bits 2..43 in the
	// default layout).
	FullShift, FullBits uint
}

// BitsFor returns the number of bits needed to hold ids 0..n-1 (0 for n <= 1:
// a field with a single possible value needs no wires).
func BitsFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// NewLayout builds a layout from explicit id-field widths. routerBits must be
// 1..MaxIDBits; coreBits and vcBits 0..MaxIDBits. The packed fields must fit
// the 64-bit payload; whatever is left becomes spare bits.
func NewLayout(routerBits, coreBits, vcBits int) (Layout, error) {
	switch {
	case routerBits < 1 || routerBits > MaxIDBits:
		return Layout{}, fmt.Errorf("flit: router id width must be 1..%d bits, got %d", MaxIDBits, routerBits)
	case coreBits < 0 || coreBits > MaxIDBits:
		return Layout{}, fmt.Errorf("flit: core id width must be 0..%d bits, got %d", MaxIDBits, coreBits)
	case vcBits < 0 || vcBits > MaxIDBits:
		return Layout{}, fmt.Errorf("flit: vc id width must be 0..%d bits, got %d", MaxIDBits, vcBits)
	}
	var l Layout
	pos := uint(0)
	place := func(shift, width *uint, n uint) {
		*shift, *width = pos, n
		pos += n
	}
	place(&l.TypeShift, &l.TypeBits, typeBits)
	place(&l.VCShift, &l.VCBits, uint(vcBits))
	place(&l.SrcShift, &l.SrcBits, uint(routerBits))
	place(&l.DstShift, &l.DstBits, uint(routerBits))
	place(&l.MemShift, &l.MemBits, memBits)
	place(&l.SrcCoreShift, &l.SrcCoreBits, uint(coreBits))
	place(&l.DstCoreShift, &l.DstCoreBits, uint(coreBits))
	place(&l.SeqShift, &l.SeqBits, seqBits)
	if pos > PayloadBits {
		return Layout{}, fmt.Errorf("flit: layout needs %d bits but the flit payload is %d (router %db, core %db, vc %db)",
			pos, PayloadBits, routerBits, coreBits, vcBits)
	}
	place(&l.SpareShift, &l.SpareBits, PayloadBits-pos)
	l.FullShift = l.VCShift
	l.FullBits = l.VCBits + l.SrcBits + l.DstBits + l.MemBits
	return l, nil
}

// LayoutFor derives the layout a network configuration needs: router ids wide
// enough for the router count, core ids for the concentration, vc ids for the
// VC count. It errors when the configuration cannot be packed into a 64-bit
// flit (the layout-fit capacity check noc.Config.Validate builds on).
func LayoutFor(routers, concentration, vcs int) (Layout, error) {
	if routers < 2 {
		return Layout{}, fmt.Errorf("flit: need at least 2 routers, got %d", routers)
	}
	rb := BitsFor(routers)
	if rb > MaxIDBits {
		return Layout{}, fmt.Errorf("flit: %d routers need %d-bit ids; at most %d bits (%d routers) supported",
			routers, rb, MaxIDBits, 1<<MaxIDBits)
	}
	if concentration < 1 {
		return Layout{}, fmt.Errorf("flit: concentration must be at least 1, got %d", concentration)
	}
	if vcs < 1 {
		return Layout{}, fmt.Errorf("flit: need at least 1 VC, got %d", vcs)
	}
	return NewLayout(rb, BitsFor(concentration), BitsFor(vcs))
}

// Default is the paper's evaluation layout: 4-bit router ids (16 routers),
// 2-bit core ids (concentration 4), 2-bit vc ids (4 VCs). Its bit positions
// are the ones printed in the paper's Table I and assumed throughout the
// original fixed-format header.
var Default = mustLayout(NewLayout(4, 2, 2))

func mustLayout(l Layout, err error) Layout {
	if err != nil {
		panic(err)
	}
	return l
}

// MaxRouters returns the router-id capacity of the layout.
func (l Layout) MaxRouters() int { return 1 << l.SrcBits }

// MaxConcentration returns the per-router core-id capacity.
func (l Layout) MaxConcentration() int { return 1 << l.SrcCoreBits }

// MaxVCs returns the vc-id capacity.
func (l Layout) MaxVCs() int { return 1 << l.VCBits }

// HeaderBits returns the number of low payload bits that carry header fields
// (everything below the spare window) — the "header" granularity window the
// L-Ob obfuscation block narrows to.
func (l Layout) HeaderBits() int { return int(l.SpareShift) }

// String renders the field map compactly, e.g.
// "type[0:2) vc[2:4) src[4:8) dst[8:12) mem[12:44) srcC[44:46) dstC[46:48) seq[48:56) spare[56:64)".
func (l Layout) String() string {
	span := func(name string, shift, width uint) string {
		if width == 0 {
			return ""
		}
		return fmt.Sprintf("%s[%d:%d) ", name, shift, shift+width)
	}
	s := span("type", l.TypeShift, l.TypeBits) +
		span("vc", l.VCShift, l.VCBits) +
		span("src", l.SrcShift, l.SrcBits) +
		span("dst", l.DstShift, l.DstBits) +
		span("mem", l.MemShift, l.MemBits) +
		span("srcC", l.SrcCoreShift, l.SrcCoreBits) +
		span("dstC", l.DstCoreShift, l.DstCoreBits) +
		span("seq", l.SeqShift, l.SeqBits) +
		span("spare", l.SpareShift, l.SpareBits)
	if len(s) > 0 {
		s = s[:len(s)-1]
	}
	return s
}

// Header is the decoded routing header of a packet.
type Header struct {
	Kind  Type   // Head or Single for the leading flit
	VC    uint8  // virtual channel
	SrcR  uint8  // source router
	SrcC  uint8  // source core within the router
	DstR  uint8  // destination router
	DstC  uint8  // destination core within the router
	Mem   uint32 // memory address the request refers to
	Seq   uint8  // per-source packet sequence number
	Spare uint8  // spare bits, carried verbatim (truncated to the layout's spare width)
}

// mask returns an n-bit all-ones mask.
func mask(n uint) uint64 { return (uint64(1) << n) - 1 }

// Encode packs the header into a 64-bit flit payload under this layout.
func (l Layout) Encode(h Header) uint64 {
	var w uint64
	w |= (uint64(h.Kind) & mask(l.TypeBits)) << l.TypeShift
	w |= (uint64(h.VC) & mask(l.VCBits)) << l.VCShift
	w |= (uint64(h.SrcR) & mask(l.SrcBits)) << l.SrcShift
	w |= (uint64(h.DstR) & mask(l.DstBits)) << l.DstShift
	w |= (uint64(h.Mem) & mask(l.MemBits)) << l.MemShift
	w |= (uint64(h.SrcC) & mask(l.SrcCoreBits)) << l.SrcCoreShift
	w |= (uint64(h.DstC) & mask(l.DstCoreBits)) << l.DstCoreShift
	w |= (uint64(h.Seq) & mask(l.SeqBits)) << l.SeqShift
	w |= (uint64(h.Spare) & mask(l.SpareBits)) << l.SpareShift
	return w
}

// Decode unpacks a 64-bit flit payload into a Header under this layout.
func (l Layout) Decode(w uint64) Header {
	return Header{
		Kind:  Type((w >> l.TypeShift) & mask(l.TypeBits)),
		VC:    uint8((w >> l.VCShift) & mask(l.VCBits)),
		SrcR:  uint8((w >> l.SrcShift) & mask(l.SrcBits)),
		SrcC:  uint8((w >> l.SrcCoreShift) & mask(l.SrcCoreBits)),
		DstR:  uint8((w >> l.DstShift) & mask(l.DstBits)),
		DstC:  uint8((w >> l.DstCoreShift) & mask(l.DstCoreBits)),
		Mem:   uint32((w >> l.MemShift) & mask(l.MemBits)),
		Seq:   uint8((w >> l.SeqShift) & mask(l.SeqBits)),
		Spare: uint8((w >> l.SpareShift) & mask(l.SpareBits)),
	}
}

// Flit is one 64-bit unit of a packet inside a router, before link encoding.
type Flit struct {
	Kind    Type
	Payload uint64 // raw 64-bit payload; for head flits this is Layout.Encode(hdr)
	// Bookkeeping (not on the wire): identity for stats and retransmission.
	PacketID uint64 // globally unique packet id assigned at injection
	Index    uint8  // position of this flit within its packet
	InjectAt uint64 // cycle the packet was injected (latency accounting)
}

// Header decodes the routing header carried by a head or single flit under
// the given layout.
func (f *Flit) Header(l Layout) Header { return l.Decode(f.Payload) }

// IsHead reports whether the flit leads a packet (Head or Single).
func (f *Flit) IsHead() bool { return f.Kind == Head || f.Kind == Single }

// IsTail reports whether the flit ends a packet (Tail or Single).
func (f *Flit) IsTail() bool { return f.Kind == Tail || f.Kind == Single }

// Packet is a whole message before flitisation.
type Packet struct {
	ID      uint64
	Hdr     Header
	Body    []uint64 // body payload words (may be empty for 1-flit packets)
	Inject  uint64   // injection cycle
	Deliver uint64   // delivery cycle of the tail flit (0 until delivered)
}

// NumFlits returns the number of flits the packet occupies on the wire.
func (p *Packet) NumFlits() int {
	if len(p.Body) == 0 {
		return 1
	}
	return 1 + len(p.Body)
}

// Flits serialises the packet into its wire flits under the given layout. A
// packet with no body words becomes a lone Single flit; otherwise a Head flit
// followed by Body flits with the final one marked Tail.
func (p *Packet) Flits(l Layout) []Flit {
	return p.AppendFlits(make([]Flit, 0, p.NumFlits()), l)
}

// AppendFlits serialises the packet like Flits but appends to the provided
// slice, letting hot injection paths reuse one scratch buffer instead of
// allocating per packet.
func (p *Packet) AppendFlits(out []Flit, l Layout) []Flit {
	n := p.NumFlits()
	if n == 1 {
		h := p.Hdr
		h.Kind = Single
		out = append(out, Flit{Kind: Single, Payload: l.Encode(h), PacketID: p.ID, Index: 0, InjectAt: p.Inject})
		return out
	}
	h := p.Hdr
	h.Kind = Head
	out = append(out, Flit{Kind: Head, Payload: l.Encode(h), PacketID: p.ID, Index: 0, InjectAt: p.Inject})
	for i, w := range p.Body {
		k := Body
		if i == len(p.Body)-1 {
			k = Tail
		}
		out = append(out, Flit{Kind: k, Payload: w, PacketID: p.ID, Index: uint8(i + 1), InjectAt: p.Inject})
	}
	return out
}

// String renders the header compactly for logs and test failures.
func (h Header) String() string {
	return fmt.Sprintf("%s vc%d %d.%d->%d.%d mem=%08x seq=%d",
		h.Kind, h.VC, h.SrcR, h.SrcC, h.DstR, h.DstC, h.Mem, h.Seq)
}
