package detect

import "testing"

func obsGap(sent, recv uint64, blocked bool) AckObservation {
	return AckObservation{FlitsSent: sent, FlitsRecv: recv, Blocked: blocked}
}

func TestAckMonitorHealthyLinkStaysHealthy(t *testing.T) {
	m := NewAckMonitor(4)
	for w := uint64(1); w <= 10; w++ {
		m.Observe(0, obsGap(100*w, 100*w, false))
	}
	if c := m.Class(0); c != AckHealthy {
		t.Fatalf("healthy link classified %v", c)
	}
	if m.Flagged() != 0 {
		t.Fatal("healthy monitor flagged links")
	}
}

func TestAckMonitorConvictsDropperAfterStreak(t *testing.T) {
	m := NewAckMonitor(2)
	// Growing gap on an unblocked link: suspect for the first two windows,
	// convicted on the third (DefaultMinGapWindows).
	m.Observe(0, obsGap(100, 99, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("after 1 window: %v, want ack-suspect", c)
	}
	m.Observe(0, obsGap(200, 198, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("after 2 windows: %v, want ack-suspect", c)
	}
	m.Observe(0, obsGap(300, 297, false))
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("after 3 windows: %v, want dropper", c)
	}
	if m.Flagged() != 1 {
		t.Fatalf("Flagged = %d, want 1", m.Flagged())
	}
}

func TestAckMonitorBlockedWindowHoldsStreak(t *testing.T) {
	m := NewAckMonitor(1)
	m.Observe(0, obsGap(100, 99, false))
	m.Observe(0, obsGap(200, 198, false))
	// The port is stalled: congestion could explain the withheld ACKs, so
	// this window neither grows nor resets the streak.
	m.Observe(0, obsGap(300, 297, true))
	if c := m.Class(0); c == AckDropper {
		t.Fatal("blocked window counted toward conviction")
	}
	// Flow resumes with the gap still growing: the held streak completes.
	m.Observe(0, obsGap(400, 396, false))
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("after resumed growth: %v, want dropper", c)
	}
}

func TestAckMonitorSuspicionLapsesConvictionSticks(t *testing.T) {
	m := NewAckMonitor(1)
	m.Observe(0, obsGap(100, 99, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("after growth: %v, want ack-suspect", c)
	}
	// A quiet window (gap stable) lapses a provisional suspicion.
	m.Observe(0, obsGap(200, 199, false))
	if c := m.Class(0); c != AckHealthy {
		t.Fatalf("suspicion did not lapse: %v", c)
	}
	// Convict, then go quiet: the verdict is latched.
	for w := uint64(1); w <= 3; w++ {
		m.Observe(0, obsGap(200+10*w, 199+9*w, false))
	}
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("conviction missing: %v", c)
	}
	for w := uint64(0); w < 5; w++ {
		m.Observe(0, obsGap(500, 496, false))
	}
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("conviction lapsed to %v", c)
	}
}

func TestAckMonitorRouteViolationConvictsImmediately(t *testing.T) {
	m := NewAckMonitor(1)
	m.Observe(0, AckObservation{FlitsSent: 100, FlitsRecv: 100, RouteViolations: 1})
	if c := m.Class(0); c != AckMisroute {
		t.Fatalf("after violating arrival: %v, want misroute", c)
	}
	// Misroute outranks a later dropper streak: the unambiguous evidence
	// keeps the verdict.
	for w := uint64(1); w <= 4; w++ {
		m.Observe(0, AckObservation{FlitsSent: 100 + 10*w, FlitsRecv: 100 + 9*w, RouteViolations: 1})
	}
	if c := m.Class(0); c != AckMisroute {
		t.Fatalf("misroute verdict displaced by %v", c)
	}
}

func TestAckMonitorCustomThreshold(t *testing.T) {
	m := NewAckMonitor(1)
	m.MinGapWindows = 1
	m.Observe(0, obsGap(10, 9, false))
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("MinGapWindows=1 did not convict on first window: %v", c)
	}
}

func TestAckMonitorReset(t *testing.T) {
	m := NewAckMonitor(2)
	for w := uint64(1); w <= 3; w++ {
		m.Observe(0, obsGap(10*w, 9*w, false))
	}
	m.Observe(1, AckObservation{RouteViolations: 2})
	if m.Flagged() != 2 {
		t.Fatalf("Flagged = %d, want 2", m.Flagged())
	}
	m.Reset()
	if m.Flagged() != 0 {
		t.Fatal("Reset left flagged links")
	}
	for i := 0; i < m.Links(); i++ {
		if c := m.Class(i); c != AckHealthy {
			t.Fatalf("link %d still %v after Reset", i, c)
		}
	}
	// State is genuinely rewound: the first post-reset window is a fresh
	// streak start, not a continuation.
	m.Observe(0, obsGap(40, 36, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("post-reset first window: %v, want ack-suspect", c)
	}
}

// TestAckGapUnderflowSkewClamps is the regression test for the uint64
// underflow: sampling skew can land a window where recv momentarily exceeds
// sent (a prior window's deposit counted before its acknowledgment).
// Unsigned subtraction turned that into a ~2^64 "gap", forging streak
// growth and an instant deficit conviction of a perfectly healthy link.
func TestAckGapUnderflowSkewClamps(t *testing.T) {
	m := NewAckMonitor(2)
	m.Observe(0, obsGap(100, 100, false))
	// Skewed window: 5 more flits acknowledged than sent.
	m.Observe(0, obsGap(200, 205, false))
	if c := m.Class(0); c != AckHealthy {
		t.Fatalf("skewed window classified %v, want healthy", c)
	}
	if d := m.Deficit(0); d != 0 {
		t.Fatalf("skewed window booked deficit %d, want 0", d)
	}
	// The skew settles; the link must still read healthy.
	m.Observe(0, obsGap(300, 300, false))
	if c := m.Class(0); c != AckHealthy {
		t.Fatalf("after settled skew: %v, want healthy", c)
	}
	if m.Flagged() != 0 {
		t.Fatal("underflow skew flagged a healthy link")
	}
}

// TestAckMonitorDeficitConvictsDutyCycledDropper pins the cumulative-deficit
// channel against the throttle family: the gap grows only every other
// window, so the consecutive-window streak never completes — but loss
// accumulates across the quiet windows until it crosses the deficit ratio.
func TestAckMonitorDeficitConvictsDutyCycledDropper(t *testing.T) {
	m := NewAckMonitor(1)
	sent, gap := uint64(0), uint64(0)
	for w := 0; w < 4 && m.Class(0) != AckDropper; w++ {
		sent += 1000
		gap += 20 // active window: the trojan swallows 20 flits
		m.Observe(0, obsGap(sent, sent-gap, false))
		if int(m.streak[0]) >= DefaultMinGapWindows {
			t.Fatal("duty-cycled dropper accumulated a streak: tuning broken")
		}
		sent += 1000 // quiet window: gap holds, streak resets
		m.Observe(0, obsGap(sent, sent-gap, false))
	}
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("duty-cycled dropper classified %v, want dropper", c)
	}
	if ch := m.Channel(0); ch != ChannelDeficit {
		t.Fatalf("convicted via %v, want deficit", ch)
	}
}

// TestAckMonitorStockMissesDutyCycledDropper is the ablation counterpart:
// with the deficit channel disabled (DeficitRatio < 0, the stock
// streak-only detector) the identical duty-cycled loss pattern never
// convicts — the evasion the adaptive families are engineered for.
func TestAckMonitorStockMissesDutyCycledDropper(t *testing.T) {
	m := NewAckMonitor(1)
	m.DeficitRatio = -1
	sent, gap := uint64(0), uint64(0)
	for w := 0; w < 50; w++ {
		sent += 1000
		gap += 20
		m.Observe(0, obsGap(sent, sent-gap, false))
		sent += 1000
		m.Observe(0, obsGap(sent, sent-gap, false))
	}
	if c := m.Class(0); c == AckDropper || c == AckMisroute {
		t.Fatalf("stock detector convicted the duty-cycled dropper (%v)", c)
	}
	if m.Flagged() != 0 {
		t.Fatal("stock detector flagged links")
	}
}

// TestAckMonitorFusedConvictsRotatingColluders pins the cross-link fused
// view: three links rotate the strike so each one's gap grows only every
// third window — no per-link streak, per-link deficits held under the
// ratio — but the network-wide sum of unblocked gap growth sustains a
// streak no single link shows, and the accumulated fused deficit is
// attributed back to every link carrying its share of the leak.
func TestAckMonitorFusedConvictsRotatingColluders(t *testing.T) {
	m := NewAckMonitor(3)
	sent := uint64(0)
	gaps := [3]uint64{}
	for w := 0; w < 6; w++ {
		sent += 6000 // heavy per-link traffic keeps per-link deficits sub-ratio
		gaps[w%3] += 30
		for l := 0; l < 3; l++ {
			m.Observe(l, obsGap(sent, sent-gaps[l], false))
		}
		m.FinishWindow()
	}
	for l := 0; l < 3; l++ {
		if c := m.Class(l); c != AckDropper {
			t.Errorf("colluder %d classified %v, want dropper", l, c)
		}
		if ch := m.Channel(l); ch != ChannelFused {
			t.Errorf("colluder %d convicted via %v, want fused", l, ch)
		}
	}
}

// TestAckMonitorFusedSparesBystander checks the attribution bar: a healthy
// link sharing the window with rotating colluders (zero deficit of its own)
// must not be swept up by the fused conviction.
func TestAckMonitorFusedSparesBystander(t *testing.T) {
	m := NewAckMonitor(4)
	sent := uint64(0)
	gaps := [3]uint64{}
	for w := 0; w < 6; w++ {
		sent += 6000
		gaps[w%3] += 30
		for l := 0; l < 3; l++ {
			m.Observe(l, obsGap(sent, sent-gaps[l], false))
		}
		m.Observe(3, obsGap(sent, sent, false)) // bystander: no gap, ever
		m.FinishWindow()
	}
	if c := m.Class(3); c != AckHealthy {
		t.Fatalf("bystander classified %v, want healthy", c)
	}
	for l := 0; l < 3; l++ {
		if c := m.Class(l); c != AckDropper {
			t.Errorf("colluder %d classified %v, want dropper", l, c)
		}
	}
}
