package detect

import "testing"

func obsGap(sent, recv uint64, blocked bool) AckObservation {
	return AckObservation{FlitsSent: sent, FlitsRecv: recv, Blocked: blocked}
}

func TestAckMonitorHealthyLinkStaysHealthy(t *testing.T) {
	m := NewAckMonitor(4)
	for w := uint64(1); w <= 10; w++ {
		m.Observe(0, obsGap(100*w, 100*w, false))
	}
	if c := m.Class(0); c != AckHealthy {
		t.Fatalf("healthy link classified %v", c)
	}
	if m.Flagged() != 0 {
		t.Fatal("healthy monitor flagged links")
	}
}

func TestAckMonitorConvictsDropperAfterStreak(t *testing.T) {
	m := NewAckMonitor(2)
	// Growing gap on an unblocked link: suspect for the first two windows,
	// convicted on the third (DefaultMinGapWindows).
	m.Observe(0, obsGap(100, 99, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("after 1 window: %v, want ack-suspect", c)
	}
	m.Observe(0, obsGap(200, 198, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("after 2 windows: %v, want ack-suspect", c)
	}
	m.Observe(0, obsGap(300, 297, false))
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("after 3 windows: %v, want dropper", c)
	}
	if m.Flagged() != 1 {
		t.Fatalf("Flagged = %d, want 1", m.Flagged())
	}
}

func TestAckMonitorBlockedWindowHoldsStreak(t *testing.T) {
	m := NewAckMonitor(1)
	m.Observe(0, obsGap(100, 99, false))
	m.Observe(0, obsGap(200, 198, false))
	// The port is stalled: congestion could explain the withheld ACKs, so
	// this window neither grows nor resets the streak.
	m.Observe(0, obsGap(300, 297, true))
	if c := m.Class(0); c == AckDropper {
		t.Fatal("blocked window counted toward conviction")
	}
	// Flow resumes with the gap still growing: the held streak completes.
	m.Observe(0, obsGap(400, 396, false))
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("after resumed growth: %v, want dropper", c)
	}
}

func TestAckMonitorSuspicionLapsesConvictionSticks(t *testing.T) {
	m := NewAckMonitor(1)
	m.Observe(0, obsGap(100, 99, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("after growth: %v, want ack-suspect", c)
	}
	// A quiet window (gap stable) lapses a provisional suspicion.
	m.Observe(0, obsGap(200, 199, false))
	if c := m.Class(0); c != AckHealthy {
		t.Fatalf("suspicion did not lapse: %v", c)
	}
	// Convict, then go quiet: the verdict is latched.
	for w := uint64(1); w <= 3; w++ {
		m.Observe(0, obsGap(200+10*w, 199+9*w, false))
	}
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("conviction missing: %v", c)
	}
	for w := uint64(0); w < 5; w++ {
		m.Observe(0, obsGap(500, 496, false))
	}
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("conviction lapsed to %v", c)
	}
}

func TestAckMonitorRouteViolationConvictsImmediately(t *testing.T) {
	m := NewAckMonitor(1)
	m.Observe(0, AckObservation{FlitsSent: 100, FlitsRecv: 100, RouteViolations: 1})
	if c := m.Class(0); c != AckMisroute {
		t.Fatalf("after violating arrival: %v, want misroute", c)
	}
	// Misroute outranks a later dropper streak: the unambiguous evidence
	// keeps the verdict.
	for w := uint64(1); w <= 4; w++ {
		m.Observe(0, AckObservation{FlitsSent: 100 + 10*w, FlitsRecv: 100 + 9*w, RouteViolations: 1})
	}
	if c := m.Class(0); c != AckMisroute {
		t.Fatalf("misroute verdict displaced by %v", c)
	}
}

func TestAckMonitorCustomThreshold(t *testing.T) {
	m := NewAckMonitor(1)
	m.MinGapWindows = 1
	m.Observe(0, obsGap(10, 9, false))
	if c := m.Class(0); c != AckDropper {
		t.Fatalf("MinGapWindows=1 did not convict on first window: %v", c)
	}
}

func TestAckMonitorReset(t *testing.T) {
	m := NewAckMonitor(2)
	for w := uint64(1); w <= 3; w++ {
		m.Observe(0, obsGap(10*w, 9*w, false))
	}
	m.Observe(1, AckObservation{RouteViolations: 2})
	if m.Flagged() != 2 {
		t.Fatalf("Flagged = %d, want 2", m.Flagged())
	}
	m.Reset()
	if m.Flagged() != 0 {
		t.Fatal("Reset left flagged links")
	}
	for i := 0; i < m.Links(); i++ {
		if c := m.Class(i); c != AckHealthy {
			t.Fatalf("link %d still %v after Reset", i, c)
		}
	}
	// State is genuinely rewound: the first post-reset window is a fresh
	// streak start, not a continuation.
	m.Observe(0, obsGap(40, 36, false))
	if c := m.Class(0); c != AckSuspect {
		t.Fatalf("post-reset first window: %v, want ack-suspect", c)
	}
}
