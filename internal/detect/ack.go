// Secure-acknowledgment monitoring: the runtime counter to trojans the
// fault-triggered detector (detect.go) can never see. A drop trojan swallows
// flits and forges the link ACK — no syndrome, no NACK, no fault event — and
// a misroute trojan re-encodes a valid codeword, so on both the per-link
// threat detector stays Healthy forever. The secure-ack scheme instead
// cross-checks the two ends of every link: the sender's count of acknowledged
// traversals against the receiver's count of actual arrivals. On a healthy
// link the two agree at all times; a gap that keeps growing while the link is
// demonstrably flowing (no blocked ports to blame) is in-flight loss, and an
// arrival that the routing function would never have produced is an in-flight
// header rewrite.
package detect

import "fmt"

// AckClass is the secure-ack monitor's verdict about a link.
type AckClass uint8

// Secure-ack verdicts.
const (
	// AckHealthy: sent and received counts agree, arrivals conform to the
	// route function.
	AckHealthy AckClass = iota
	// AckSuspect: the sent/received gap grew this window, but not yet for
	// enough consecutive windows to convict.
	AckSuspect
	// AckDropper: flits are being consumed in flight under forged ACKs —
	// convicted by the consecutive-window streak, the cumulative-deficit
	// channel, or the cross-link fused view (see AckChannel).
	AckDropper
	// AckMisroute: the receiving side saw route-violating arrivals —
	// headers are being rewritten in flight.
	AckMisroute
)

// AckChannel names the evidence channel that convicted a link — the
// explainability tag beside the verdict.
type AckChannel uint8

// Conviction channels.
const (
	// ChannelNone: the link is not convicted.
	ChannelNone AckChannel = iota
	// ChannelStreak: the gap grew over MinGapWindows consecutive unblocked
	// windows — the stock detector, defeated by duty-cycled droppers.
	ChannelStreak
	// ChannelDeficit: the link's cumulative unexplained loss crossed the
	// long-horizon deficit ratio — catches throttled droppers whose bursts
	// never complete a streak.
	ChannelDeficit
	// ChannelFused: the cross-link fused view attributed a network-wide
	// sustained deficit to this link — catches colluding droppers that
	// rotate strikes so no single link sustains either per-link channel.
	ChannelFused
	// ChannelViolation: a route-conformance violation — the misroute
	// signature, unambiguous on first sight.
	ChannelViolation
)

// String names the channel as experiment records spell it.
func (c AckChannel) String() string {
	switch c {
	case ChannelNone:
		return "none"
	case ChannelStreak:
		return "streak"
	case ChannelDeficit:
		return "deficit"
	case ChannelFused:
		return "fused"
	case ChannelViolation:
		return "violation"
	default:
		return fmt.Sprintf("ackchannel(%d)", uint8(c))
	}
}

// String names the verdict as experiment records spell it.
func (c AckClass) String() string {
	switch c {
	case AckHealthy:
		return "healthy"
	case AckSuspect:
		return "ack-suspect"
	case AckDropper:
		return "dropper"
	case AckMisroute:
		return "misroute"
	default:
		return fmt.Sprintf("ackclass(%d)", uint8(c))
	}
}

// AckObservation is one link's counter snapshot at a sampling window
// boundary: cumulative sender-acknowledged traversals, cumulative receiver
// deposits, cumulative route-conformance violations, and whether the link's
// output port was stalled at sampling time.
type AckObservation struct {
	FlitsSent       uint64
	FlitsRecv       uint64
	RouteViolations uint64
	Blocked         bool
}

// DefaultMinGapWindows is the consecutive growing-gap windows required to
// convict a dropper. One window tolerates sampling races; three in a row on
// an unblocked link do not happen by accident.
const DefaultMinGapWindows = 3

// Cumulative-deficit channel defaults. The streak channel asks "is the gap
// growing right now, repeatedly?"; the deficit channel asks "how many flits
// has this link lost over the whole run, relative to what it carried?" — a
// question a duty-cycled dropper cannot game, because quiet windows stop the
// streak but never refund the loss.
const (
	// DefaultDeficitRatio is the cumulative unexplained-loss fraction of
	// sent traffic that convicts: 1% of carried flits vanishing without a
	// blocked port to blame is far outside sampling noise (a healthy link's
	// long-horizon deficit is zero — late arrivals are refunded when the
	// next window's gap shrinks back).
	DefaultDeficitRatio = 0.01
	// DefaultDeficitMinLoss is the absolute loss floor in flits: the ratio
	// alone would convict a nearly idle link on a handful of skewed samples.
	DefaultDeficitMinLoss = 25
)

// AckMonitor runs the secure-ack scheme over all links of one network. It is
// sampled periodically (the experiment loop feeds it at every telemetry
// sample) and holds per-link windowed state; Observe is allocation-free, so
// the monitor can sit inside the campaign hot loop. Verdicts escalate
// monotonically: once a link is convicted it stays convicted (the hardware
// latches the alarm).
//
// Three conviction channels feed the same latched verdict:
//
//   - streak (per-link): MinGapWindows consecutive unblocked growing-gap
//     windows — fast against a naive dropper, blind to duty cycling;
//   - deficit (per-link): the cumulative unexplained loss crosses
//     DeficitRatio of sent traffic (with the DeficitMinLoss floor) — slower,
//     but immune to duty cycling because loss accumulates across quiet
//     windows;
//   - fused (cross-link): the sum of all links' unblocked gap growth
//     sustains a network-wide streak (FinishWindow), and the accumulated
//     fused deficit is attributed to the leaking links — catches colluders
//     whose rotation keeps every per-link channel below threshold.
type AckMonitor struct {
	// MinGapWindows is the consecutive growing-gap windows needed to convict
	// a dropper (0 = DefaultMinGapWindows). It also gates the fused
	// cross-link streak.
	MinGapWindows int
	// DeficitRatio is the cumulative-loss fraction of sent flits that
	// convicts via the deficit channel (0 = DefaultDeficitRatio; negative
	// disables the deficit and fused channels — the stock streak-only
	// detector, kept for ablation).
	DeficitRatio float64
	// DeficitMinLoss is the absolute flit-loss floor for the deficit and
	// fused channels (0 = DefaultDeficitMinLoss).
	DeficitMinLoss uint64

	prevGap  []uint64
	prevViol []uint64
	streak   []int32
	class    []AckClass
	channel  []AckChannel
	deficit  []uint64
	sent     []uint64

	// Cross-link fused view: unblocked gap growth summed over all links in
	// the current window, and the consecutive-window streak of that sum.
	windowGrowth uint64
	fusedStreak  int32
}

// NewAckMonitor returns a monitor for a network with the given link count.
func NewAckMonitor(links int) *AckMonitor {
	return &AckMonitor{
		prevGap:  make([]uint64, links),
		prevViol: make([]uint64, links),
		streak:   make([]int32, links),
		class:    make([]AckClass, links),
		channel:  make([]AckChannel, links),
		deficit:  make([]uint64, links),
		sent:     make([]uint64, links),
	}
}

// Links reports the number of links the monitor was sized for.
func (m *AckMonitor) Links() int { return len(m.class) }

// Reset clears every window and verdict without allocating (arena reuse).
func (m *AckMonitor) Reset() {
	for i := range m.class {
		m.prevGap[i], m.prevViol[i] = 0, 0
		m.streak[i] = 0
		m.class[i] = AckHealthy
		m.channel[i] = ChannelNone
		m.deficit[i], m.sent[i] = 0, 0
	}
	m.windowGrowth = 0
	m.fusedStreak = 0
}

func (m *AckMonitor) minWindows() int {
	if m.MinGapWindows <= 0 {
		return DefaultMinGapWindows
	}
	return m.MinGapWindows
}

func (m *AckMonitor) minLoss() uint64 {
	if m.DeficitMinLoss == 0 {
		return DefaultDeficitMinLoss
	}
	return m.DeficitMinLoss
}

func (m *AckMonitor) deficitRatio() float64 {
	if m.DeficitRatio == 0 {
		return DefaultDeficitRatio
	}
	return m.DeficitRatio
}

// convict latches a dropper verdict from the given channel. Misroute wins
// ties (it is the stronger, unambiguous evidence) and the first dropper
// channel to fire keeps the credit.
func (m *AckMonitor) convict(linkID int, ch AckChannel) {
	if m.class[linkID] == AckMisroute || m.class[linkID] == AckDropper {
		return
	}
	m.class[linkID] = AckDropper
	m.channel[linkID] = ch
}

// Observe feeds one link's window snapshot and updates its verdict.
func (m *AckMonitor) Observe(linkID int, o AckObservation) {
	min := m.minWindows()
	if o.RouteViolations > m.prevViol[linkID] {
		// A non-conforming arrival is unambiguous: no benign cause produces
		// a valid codeword carrying a destination this link cannot serve.
		m.class[linkID] = AckMisroute
		m.channel[linkID] = ChannelViolation
	}
	m.prevViol[linkID] = o.RouteViolations
	// Clamp, don't wrap: sampling skew can land a prior window's deposit
	// before its acknowledgment is counted, making recv momentarily exceed
	// sent. Unsigned subtraction would turn that into a ~2^64 "gap" and
	// forge streak growth (and an instant deficit conviction).
	var gap uint64
	if o.FlitsSent > o.FlitsRecv {
		gap = o.FlitsSent - o.FlitsRecv
	}
	deficitOn := m.DeficitRatio >= 0
	switch {
	case gap > m.prevGap[linkID] && !o.Blocked:
		if deficitOn {
			grow := gap - m.prevGap[linkID]
			m.deficit[linkID] += grow
			m.windowGrowth += grow
		}
		m.streak[linkID]++
		if int(m.streak[linkID]) >= min {
			m.convict(linkID, ChannelStreak)
		} else if m.class[linkID] == AckHealthy {
			m.class[linkID] = AckSuspect
		}
	case gap > m.prevGap[linkID]:
		// The gap grew but the port is stalled: congestion may explain
		// withheld end-to-end acknowledgments, so the streak is discounted
		// (it holds, neither growing nor resetting) and the deficit books
		// the growth at half weight — the congestion discount. A full
		// exemption would hand the adversary a shield: a dropper whose own
		// damage congests the link (or a colluder striking during bursts)
		// could bleed the victim forever behind blocked samples, while a
		// healthy link never grows its gap at all, blocked or not.
		if deficitOn {
			grow := (gap - m.prevGap[linkID]) / 2
			m.deficit[linkID] += grow
			m.windowGrowth += grow
		}
	default:
		// A quiet window breaks the streak; a provisional suspicion lapses,
		// a conviction does not. A *shrinking* gap means earlier counted
		// growth was sampling skew (the flits arrived after all), so the
		// refund is taken back out of the cumulative deficit.
		if deficitOn && gap < m.prevGap[linkID] {
			if back := m.prevGap[linkID] - gap; back >= m.deficit[linkID] {
				m.deficit[linkID] = 0
			} else {
				m.deficit[linkID] -= back
			}
		}
		m.streak[linkID] = 0
		if m.class[linkID] == AckSuspect {
			m.class[linkID] = AckHealthy
		}
	}
	m.prevGap[linkID] = gap
	m.sent[linkID] = o.FlitsSent
	if deficitOn {
		if d := m.deficit[linkID]; d >= m.minLoss() && float64(d) >= m.deficitRatio()*float64(o.FlitsSent) {
			m.convict(linkID, ChannelDeficit)
		}
	}
}

// FinishWindow closes a sampling window after every link has been Observed:
// the cross-link fused view for collusion. Colluders rotate the strike duty
// so each member's gap grows only every n-th turn — but *someone's* gap
// grows every window, so the network-wide sum of unblocked gap growth
// sustains exactly the streak no single link shows. Once the fused streak
// reaches MinGapWindows and the accumulated loss clears the floor, the
// deficit is attributed to the leak set: every link carrying at least half
// its equal share of the fused deficit is convicted. Allocation-free, like
// Observe.
func (m *AckMonitor) FinishWindow() {
	growth := m.windowGrowth
	m.windowGrowth = 0
	if m.DeficitRatio < 0 {
		return
	}
	if growth > 0 {
		m.fusedStreak++
	} else {
		m.fusedStreak = 0
	}
	if int(m.fusedStreak) < m.minWindows() {
		return
	}
	var fused uint64
	leaks := 0
	for _, d := range m.deficit {
		if d > 0 {
			fused += d
			leaks++
		}
	}
	if leaks == 0 || fused < m.minLoss() {
		return
	}
	// Attribution bar: half the equal share. Rotating colluders each hold
	// ~1/n of the fused deficit and clear it; a link holding a stray skewed
	// sample or two does not.
	bar := fused / uint64(2*leaks)
	if bar == 0 {
		bar = 1
	}
	for i, d := range m.deficit {
		if d >= bar {
			m.convict(i, ChannelFused)
		}
	}
}

// Class returns a link's current verdict.
func (m *AckMonitor) Class(linkID int) AckClass { return m.class[linkID] }

// Channel returns the evidence channel that convicted a link (ChannelNone
// while unconvicted).
func (m *AckMonitor) Channel(linkID int) AckChannel { return m.channel[linkID] }

// Deficit returns a link's cumulative unexplained loss in flits.
func (m *AckMonitor) Deficit(linkID int) uint64 { return m.deficit[linkID] }

// Flagged counts links convicted as droppers or misrouters.
func (m *AckMonitor) Flagged() int {
	n := 0
	for _, c := range m.class {
		if c == AckDropper || c == AckMisroute {
			n++
		}
	}
	return n
}
