// Secure-acknowledgment monitoring: the runtime counter to trojans the
// fault-triggered detector (detect.go) can never see. A drop trojan swallows
// flits and forges the link ACK — no syndrome, no NACK, no fault event — and
// a misroute trojan re-encodes a valid codeword, so on both the per-link
// threat detector stays Healthy forever. The secure-ack scheme instead
// cross-checks the two ends of every link: the sender's count of acknowledged
// traversals against the receiver's count of actual arrivals. On a healthy
// link the two agree at all times; a gap that keeps growing while the link is
// demonstrably flowing (no blocked ports to blame) is in-flight loss, and an
// arrival that the routing function would never have produced is an in-flight
// header rewrite.
package detect

import "fmt"

// AckClass is the secure-ack monitor's verdict about a link.
type AckClass uint8

// Secure-ack verdicts.
const (
	// AckHealthy: sent and received counts agree, arrivals conform to the
	// route function.
	AckHealthy AckClass = iota
	// AckSuspect: the sent/received gap grew this window, but not yet for
	// enough consecutive windows to convict.
	AckSuspect
	// AckDropper: the gap grew over MinGapWindows consecutive windows with
	// the link unblocked — flits are being consumed in flight under forged
	// ACKs.
	AckDropper
	// AckMisroute: the receiving side saw route-violating arrivals —
	// headers are being rewritten in flight.
	AckMisroute
)

// String names the verdict as experiment records spell it.
func (c AckClass) String() string {
	switch c {
	case AckHealthy:
		return "healthy"
	case AckSuspect:
		return "ack-suspect"
	case AckDropper:
		return "dropper"
	case AckMisroute:
		return "misroute"
	default:
		return fmt.Sprintf("ackclass(%d)", uint8(c))
	}
}

// AckObservation is one link's counter snapshot at a sampling window
// boundary: cumulative sender-acknowledged traversals, cumulative receiver
// deposits, cumulative route-conformance violations, and whether the link's
// output port was stalled at sampling time.
type AckObservation struct {
	FlitsSent       uint64
	FlitsRecv       uint64
	RouteViolations uint64
	Blocked         bool
}

// DefaultMinGapWindows is the consecutive growing-gap windows required to
// convict a dropper. One window tolerates sampling races; three in a row on
// an unblocked link do not happen by accident.
const DefaultMinGapWindows = 3

// AckMonitor runs the secure-ack scheme over all links of one network. It is
// sampled periodically (the experiment loop feeds it at every telemetry
// sample) and holds per-link windowed state; Observe is allocation-free, so
// the monitor can sit inside the campaign hot loop. Verdicts escalate
// monotonically: once a link is convicted it stays convicted (the hardware
// latches the alarm).
type AckMonitor struct {
	// MinGapWindows is the consecutive growing-gap windows needed to convict
	// a dropper (0 = DefaultMinGapWindows).
	MinGapWindows int

	prevGap  []uint64
	prevViol []uint64
	streak   []int32
	class    []AckClass
}

// NewAckMonitor returns a monitor for a network with the given link count.
func NewAckMonitor(links int) *AckMonitor {
	return &AckMonitor{
		prevGap:  make([]uint64, links),
		prevViol: make([]uint64, links),
		streak:   make([]int32, links),
		class:    make([]AckClass, links),
	}
}

// Links reports the number of links the monitor was sized for.
func (m *AckMonitor) Links() int { return len(m.class) }

// Reset clears every window and verdict without allocating (arena reuse).
func (m *AckMonitor) Reset() {
	for i := range m.class {
		m.prevGap[i], m.prevViol[i] = 0, 0
		m.streak[i] = 0
		m.class[i] = AckHealthy
	}
}

// Observe feeds one link's window snapshot and updates its verdict.
func (m *AckMonitor) Observe(linkID int, o AckObservation) {
	min := m.MinGapWindows
	if min <= 0 {
		min = DefaultMinGapWindows
	}
	if o.RouteViolations > m.prevViol[linkID] {
		// A non-conforming arrival is unambiguous: no benign cause produces
		// a valid codeword carrying a destination this link cannot serve.
		m.class[linkID] = AckMisroute
	}
	m.prevViol[linkID] = o.RouteViolations
	gap := o.FlitsSent - o.FlitsRecv
	switch {
	case gap > m.prevGap[linkID] && !o.Blocked:
		m.streak[linkID]++
		if int(m.streak[linkID]) >= min {
			if m.class[linkID] != AckMisroute {
				m.class[linkID] = AckDropper
			}
		} else if m.class[linkID] == AckHealthy {
			m.class[linkID] = AckSuspect
		}
	case gap > m.prevGap[linkID]:
		// The gap grew but the port is stalled: congestion may explain
		// withheld end-to-end acknowledgments, so the window is discounted
		// (the streak holds, neither growing nor resetting).
	default:
		// A quiet window breaks the streak; a provisional suspicion lapses,
		// a conviction does not.
		m.streak[linkID] = 0
		if m.class[linkID] == AckSuspect {
			m.class[linkID] = AckHealthy
		}
	}
	m.prevGap[linkID] = gap
}

// Class returns a link's current verdict.
func (m *AckMonitor) Class(linkID int) AckClass { return m.class[linkID] }

// Flagged counts links convicted as droppers or misrouters.
func (m *AckMonitor) Flagged() int {
	n := 0
	for _, c := range m.class {
		if c == AckDropper || c == AckMisroute {
			n++
		}
	}
	return n
}
