package detect

import (
	"testing"

	"tasp/internal/bist"
	"tasp/internal/fault"
	"tasp/internal/lob"
)

func key(p uint64, i uint8) FlitKey { return FlitKey{PacketID: p, Index: i} }

var plain = lob.Choice{Method: lob.None}

func TestHealthyUntilFault(t *testing.T) {
	d := New(0)
	if d.Classification() != Healthy {
		t.Fatalf("fresh detector is %v", d.Classification())
	}
}

func TestFirstFaultJustRetransmits(t *testing.T) {
	d := New(0)
	act := d.OnFault(key(1, 0), 33, plain)
	if act.RunBIST || act.Obfuscate {
		t.Fatalf("first fault over-reacted: %+v", act)
	}
	if d.Classification() != Transient {
		t.Fatalf("classification %v, want transient", d.Classification())
	}
	if d.HistoryLen() != 1 {
		t.Fatalf("history len %d", d.HistoryLen())
	}
}

func TestRepeatedFaultEscalates(t *testing.T) {
	d := New(0)
	d.OnFault(key(1, 0), 33, plain)
	act := d.OnFault(key(1, 0), 35, plain)
	if !act.RunBIST || !act.Obfuscate {
		t.Fatalf("repeat fault did not escalate: %+v", act)
	}
	if d.Classification() != Suspect {
		t.Fatalf("classification %v, want suspect", d.Classification())
	}
	// Once BIST has run, further faults must not re-request it.
	d.SetBISTResult(bist.Scan(0, fault.None))
	act = d.OnFault(key(1, 0), 37, lob.Choice{Method: lob.Scramble, Gran: lob.WholeFlit})
	if act.RunBIST {
		t.Fatal("BIST re-requested after completion")
	}
	if !act.Obfuscate {
		t.Fatal("obfuscation dropped on third fault")
	}
}

func TestTrojanClassification(t *testing.T) {
	// The paper's discovery sequence: repeated faults on one flit, BIST
	// clean, then a clean arrival under obfuscation => hardware trojan.
	d := New(0)
	d.OnFault(key(7, 0), 20, plain)
	d.OnFault(key(7, 0), 22, plain)
	d.SetBISTResult(bist.Scan(0, fault.None))
	d.OnClean(key(7, 0), lob.Choice{Method: lob.Scramble, Gran: lob.WholeFlit})
	if d.Classification() != Trojan {
		t.Fatalf("classification %v, want trojan", d.Classification())
	}
	if d.HistoryLen() != 0 {
		t.Fatal("delivered flit left in history")
	}
}

func TestPermanentClassification(t *testing.T) {
	d := New(0)
	d.OnFault(key(3, 0), 9, plain)
	d.OnFault(key(3, 0), 9, plain)
	d.SetBISTResult(bist.Scan(0, fault.NewStuckAt(map[int]uint{4: 1, 9: 0})))
	if d.Classification() != Permanent {
		t.Fatalf("classification %v, want permanent", d.Classification())
	}
	rep, ok := d.BISTReport()
	if !ok || !rep.Permanent() {
		t.Fatal("BIST report not retained")
	}
}

func TestTransientStaysTransient(t *testing.T) {
	d := New(0)
	// Many distinct flits fault once each — background upsets.
	for i := uint64(0); i < 20; i++ {
		act := d.OnFault(key(i, 0), int(i%63)+1, plain)
		if act.Obfuscate {
			t.Fatalf("isolated fault %d triggered obfuscation", i)
		}
	}
	if d.Classification() != Transient {
		t.Fatalf("classification %v, want transient", d.Classification())
	}
}

func TestCleanPlainArrivalIsNoop(t *testing.T) {
	d := New(0)
	d.OnClean(key(1, 0), plain)
	if d.Classification() != Healthy || d.CleanAfterObf != 0 {
		t.Fatal("plain clean arrival mutated detector state")
	}
}

func TestHistoryEviction(t *testing.T) {
	d := New(4)
	for i := uint64(0); i < 10; i++ {
		d.OnFault(key(i, 0), 5, plain)
	}
	if d.HistoryLen() != 4 {
		t.Fatalf("history len %d, cap 4", d.HistoryLen())
	}
	// The oldest entries were evicted: a repeat of flit 0 now looks new.
	act := d.OnFault(key(0, 0), 5, plain)
	if act.Obfuscate {
		t.Fatal("evicted flit treated as repeat")
	}
	// But a repeat of a recent one escalates.
	act = d.OnFault(key(9, 0), 5, plain)
	if !act.Obfuscate {
		t.Fatal("recent repeat not escalated")
	}
}

func TestTriggerScopeLocalisation(t *testing.T) {
	d := New(0)
	if d.TriggerScope() != "unknown" {
		t.Fatalf("fresh scope %q", d.TriggerScope())
	}
	// Header-only obfuscation succeeds, payload-only fails: the trigger
	// taps header wires.
	d.OnFault(key(1, 0), 3, plain)
	d.OnFault(key(1, 0), 3, lob.Choice{Method: lob.Scramble, Gran: lob.PayloadOnly})
	d.OnClean(key(1, 0), lob.Choice{Method: lob.Scramble, Gran: lob.HeaderOnly})
	if d.TriggerScope() != "header" {
		t.Fatalf("scope %q, want header", d.TriggerScope())
	}
}

// TestTriggerScopeFirstFaultObfuscated is the regression test for the
// OnFault first-fault path: the first observation of a flit can already be
// obfuscated (attempt 0 replays the flow's logged method; eviction can erase
// a flit's record between retries). That failure is granularity evidence and
// must land in granFail even though the history lookup misses.
func TestTriggerScopeFirstFaultObfuscated(t *testing.T) {
	d := New(0)
	// First observed fault: header-only obfuscation already applied (the
	// flow's logged method) and defeated — the trigger survives a scrambled
	// header, so it taps the payload.
	d.OnFault(key(1, 0), 3, lob.Choice{Method: lob.Scramble, Gran: lob.HeaderOnly})
	// A later attempt under payload-only obfuscation gets through.
	d.OnClean(key(1, 0), lob.Choice{Method: lob.Scramble, Gran: lob.PayloadOnly})
	if got := d.TriggerScope(); got != "payload" {
		t.Fatalf("scope %q, want payload (first-fault obfuscation evidence dropped?)", got)
	}
}

// TestEvictionKeepsMemoryStable asserts the fault-history backing array is
// allocated once and never grows, no matter how many evictions a sustained
// attack forces through the table.
func TestEvictionKeepsMemoryStable(t *testing.T) {
	const cap_ = 8
	d := New(cap_)
	for i := uint64(0); i < cap_; i++ {
		d.OnFault(key(i, 0), 5, plain)
	}
	base := cap(d.history)
	for i := uint64(cap_); i < 100*cap_; i++ {
		d.OnFault(key(i, 0), 5, plain)
	}
	if d.HistoryLen() != cap_ {
		t.Fatalf("history len %d, cap %d", d.HistoryLen(), cap_)
	}
	if got := cap(d.history); got != base {
		t.Fatalf("backing array grew: cap %d -> %d after sustained eviction", base, got)
	}
	if len(d.index) != cap_ {
		t.Fatalf("index holds %d keys, want %d", len(d.index), cap_)
	}
	// Steady-state insert allocates only the record itself, never the slice.
	i := uint64(1000)
	if avg := testing.AllocsPerRun(100, func() {
		d.OnFault(key(i, 0), 5, plain)
		i++
	}); avg > 3 {
		t.Fatalf("steady-state OnFault averages %.1f allocs, want <= 3", avg)
	}
}

func TestCounters(t *testing.T) {
	d := New(0)
	d.OnFault(key(1, 0), 3, plain)
	d.OnFault(key(1, 0), 3, plain)
	d.OnClean(key(1, 0), lob.Choice{Method: lob.Invert, Gran: lob.WholeFlit})
	if d.FaultEvents != 2 || d.RepeatedFaults != 1 || d.CleanAfterObf != 1 {
		t.Fatalf("counters: %d %d %d", d.FaultEvents, d.RepeatedFaults, d.CleanAfterObf)
	}
}

func TestClassificationStrings(t *testing.T) {
	want := map[Classification]string{
		Healthy: "healthy", Transient: "transient", Permanent: "permanent",
		Trojan: "trojan", Suspect: "suspect",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d = %q want %q", c, c.String(), s)
		}
	}
}
