// Package detect implements the paper's heuristic threat source detector
// (Section IV-B, Figure 6). One detector guards each link's receiving side.
// When ECC flags a fault it records the syndrome together with the packet's
// characteristics; the decision flow is the paper's:
//
//   - fault not seen before          -> correct / signal retransmission
//   - same flit faulted before       -> notify BIST (repeated transients are
//     unlikely) and, if the flit was already obfuscated, escalate to the
//     next L-Ob method; otherwise enable L-Ob now
//   - clean arrival of an obfuscated flit -> undo (1-cycle stall), notify
//     the upstream so the successful method is logged for similar flits
//
// Out of these observations the detector classifies the link: Transient
// (isolated, non-repeating faults), Permanent (BIST found stuck wires) or
// HardwareTrojan (repeating faults on targeted flits that stop under
// obfuscation while BIST finds nothing).
package detect

import (
	"fmt"

	"tasp/internal/bist"
	"tasp/internal/lob"
)

// Classification is the detector's verdict about a link.
type Classification uint8

// Link verdicts.
const (
	Healthy   Classification = iota // no faults observed
	Transient                       // isolated faults, none repeating
	Permanent                       // BIST found stuck wires
	Trojan                          // targeted faults defeated by obfuscation
	Suspect                         // repeating faults, cause not yet proven
)

// String names the classification.
func (c Classification) String() string {
	switch c {
	case Healthy:
		return "healthy"
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Trojan:
		return "trojan"
	case Suspect:
		return "suspect"
	default:
		return fmt.Sprintf("classification(%d)", uint8(c))
	}
}

// FlitKey identifies one flit for the fault-history table.
type FlitKey struct {
	PacketID uint64
	Index    uint8
}

// Action tells the link controller what to do after a fault.
type Action struct {
	// RunBIST asks for a link scan before the next retransmission.
	RunBIST bool
	// Obfuscate asks the upstream to apply (or escalate) L-Ob for this
	// flit's retransmission.
	Obfuscate bool
}

// record is one fault-history entry.
type record struct {
	key       FlitKey
	faults    int
	syndromes []int
	obfTried  int // obfuscation attempts made for this flit
}

// Detector is the per-link threat source detector.
type Detector struct {
	// historyCap bounds the fault-history table (the hardware table in the
	// power model holds 4 entries; the functional model defaults larger so
	// software analyses aren't table-limited).
	historyCap int
	history    []*record
	index      map[FlitKey]*record

	bistDone   bool
	bistReport bist.Report

	// Granularity evidence for trigger localisation: success/failure per
	// granularity of obfuscation attempts.
	granOK   map[lob.Granularity]int
	granFail map[lob.Granularity]int

	// Counters for experiments and tests.
	FaultEvents    uint64 // uncorrectable decodes observed
	RepeatedFaults uint64 // faults on flits already in the history
	CleanAfterObf  uint64 // obfuscated flits that arrived clean

	class Classification

	// free recycles retired records (and their syndrome storage) so a
	// sustained attack's insert/remove churn stops allocating once the list
	// has warmed up to the history high-water mark.
	free []*record
}

// DefaultHistoryCap is the default fault-history table size.
const DefaultHistoryCap = 64

// New returns a detector with the given history capacity (0 = default).
func New(historyCap int) *Detector {
	if historyCap <= 0 {
		historyCap = DefaultHistoryCap
	}
	return &Detector{
		historyCap: historyCap,
		index:      map[FlitKey]*record{},
		granOK:     map[lob.Granularity]int{},
		granFail:   map[lob.Granularity]int{},
	}
}

// OnFault implements the left half of Figure 6: an uncorrectable decode
// arrived. obf is the obfuscation that was applied to this attempt (None
// for plain traversals).
func (d *Detector) OnFault(key FlitKey, syndrome int, obf lob.Choice) Action {
	d.FaultEvents++
	r := d.index[key]
	if r == nil {
		// "Has this flit or fault been seen before?" — no: record it and
		// signal retransmission. The first observation can already be
		// obfuscated (attempt 0 replays the flow's logged method, and a
		// sustained attack can evict a flit's record between its retries);
		// that evidence feeds TriggerScope and must not be lost.
		r = d.getRecord(key)
		d.insert(r)
		r.faults = 1
		r.syndromes = append(r.syndromes, syndrome)
		if obf.Method != lob.None {
			r.obfTried++
			d.granFail[obf.Gran]++
		}
		if d.class == Healthy {
			d.class = Transient
		}
		return Action{}
	}
	// Seen before: repeated transients are unlikely — involve BIST, and
	// enable or escalate obfuscation.
	d.RepeatedFaults++
	r.faults++
	r.syndromes = append(r.syndromes, syndrome)
	if obf.Method != lob.None {
		r.obfTried++
		d.granFail[obf.Gran]++
	}
	if d.class == Healthy || d.class == Transient {
		d.class = Suspect
	}
	return Action{RunBIST: !d.bistDone, Obfuscate: true}
}

// OnClean implements the right half of Figure 6: a flit arrived without
// faults. If it was obfuscated, the undo stall has already been charged by
// the wire; here the detector updates the evidence and the classification.
func (d *Detector) OnClean(key FlitKey, obf lob.Choice) {
	if obf.Method == lob.None {
		return
	}
	d.CleanAfterObf++
	d.granOK[obf.Gran]++
	if r := d.index[key]; r != nil && r.faults >= 2 && d.bistDone && !d.bistReport.Permanent() {
		// Targeted repeating faults that stop under obfuscation, on a link
		// BIST says is electrically sound: a trojan.
		d.class = Trojan
	}
	// The flit got through; retire its history entry.
	d.remove(key)
}

// SetBISTResult records a completed link scan.
func (d *Detector) SetBISTResult(rep bist.Report) {
	d.bistDone = true
	d.bistReport = rep
	if rep.Permanent() {
		d.class = Permanent
	}
}

// BISTReport returns the last scan and whether one has run.
func (d *Detector) BISTReport() (bist.Report, bool) { return d.bistReport, d.bistDone }

// Classification returns the current verdict.
func (d *Detector) Classification() Classification { return d.class }

// TriggerScope reports where the trojan's trigger appears to tap, from the
// granularity evidence: narrowing obfuscation to the header (or payload)
// while still defeating the trojan localises the comparator.
func (d *Detector) TriggerScope() string {
	switch {
	case d.granOK[lob.HeaderOnly] > 0 && d.granFail[lob.PayloadOnly] > 0:
		return "header"
	case d.granOK[lob.PayloadOnly] > 0 && d.granFail[lob.HeaderOnly] > 0:
		return "payload"
	case d.granOK[lob.WholeFlit] > 0:
		return "flit"
	default:
		return "unknown"
	}
}

// insert adds a record, evicting the oldest beyond capacity. Eviction
// copies the survivors down instead of re-slicing (`history = history[1:]`
// would keep advancing into the backing array, forcing append to reallocate
// an ever-new array every historyCap inserts under sustained attack); the
// backing array is allocated once and never grows past historyCap.
func (d *Detector) insert(r *record) {
	if d.history == nil {
		d.history = make([]*record, 0, d.historyCap)
	}
	if len(d.history) >= d.historyCap {
		old := d.history[0]
		delete(d.index, old.key)
		n := copy(d.history, d.history[1:])
		d.history[n] = nil // release the evicted pointer
		d.history = d.history[:n]
		d.recycle(old)
	}
	d.history = append(d.history, r)
	d.index[r.key] = r
}

// remove drops a flit's record once it has been delivered.
func (d *Detector) remove(key FlitKey) {
	r := d.index[key]
	if r == nil {
		return
	}
	delete(d.index, key)
	for i, h := range d.history {
		if h == r {
			d.history = append(d.history[:i], d.history[i+1:]...)
			break
		}
	}
	d.recycle(r)
}

// getRecord returns a recycled record keyed for a new flit, or a fresh one
// while the free list is still warming up to the history high-water mark.
func (d *Detector) getRecord(key FlitKey) *record {
	if k := len(d.free); k > 0 {
		r := d.free[k-1]
		d.free = d.free[:k-1]
		r.key = key
		r.faults, r.obfTried = 0, 0
		r.syndromes = r.syndromes[:0]
		return r
	}
	return &record{key: key}
}

// recycle returns a retired record (and its grown syndrome storage) to the
// free list. The list is bounded by historyCap, since only resident records
// are ever retired.
func (d *Detector) recycle(r *record) { d.free = append(d.free, r) }

// Reset forgets every observation — history, BIST outcome, granularity
// evidence, counters and verdict — returning the detector to its post-New
// state. Resident records are recycled rather than dropped, so a reset
// detector re-reaches steady state without reallocating its history.
func (d *Detector) Reset() {
	for i, r := range d.history {
		delete(d.index, r.key)
		d.history[i] = nil
		d.recycle(r)
	}
	d.history = d.history[:0]
	d.bistDone = false
	d.bistReport = bist.Report{}
	clear(d.granOK)
	clear(d.granFail)
	d.FaultEvents, d.RepeatedFaults, d.CleanAfterObf = 0, 0, 0
	d.class = Healthy
}

// HistoryLen reports the current fault-history occupancy.
func (d *Detector) HistoryLen() int { return len(d.history) }

// Cap reports the configured fault-history capacity.
func (d *Detector) Cap() int { return d.historyCap }
