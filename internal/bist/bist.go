// Package bist implements the link built-in self test the threat detector
// invokes when a flit faults repeatedly (Figure 6: "notify built-in-self-
// test (BIST) to scan for a permanent fault because repetitive transient
// faults are unlikely").
//
// The scan drives walking-ones, walking-zeros and alternating patterns
// through the link's tap point and compares what arrives against what was
// driven, wire by wire. A stuck-at wire mismatches consistently in exactly
// one polarity; trojan strikes (if the patterns happen to alias the trigger)
// mismatch inconsistently and are not reported as stuck.
package bist

import (
	"tasp/internal/ecc"
	"tasp/internal/fault"
)

// StuckWire is one permanent defect found by a scan.
type StuckWire struct {
	Pos   int  // codeword wire position
	Value uint // the value the wire is stuck at
}

// Report is the outcome of one scan.
type Report struct {
	Stuck []StuckWire
	// PatternsRun counts the link traversals the scan consumed.
	PatternsRun int
	// Inconsistent counts wires that mismatched in some patterns but not
	// others of the same polarity — transient upsets or trojan strikes,
	// not permanent faults.
	Inconsistent int
	// Lost counts patterns an adversary swallowed outright (a drop trojan
	// aliasing on the stimulus). Lost patterns yield no wire observations;
	// a nonzero count is itself a strong in-flight-loss signal.
	Lost int
}

// Permanent reports whether the scan found any stuck wire.
func (r Report) Permanent() bool { return len(r.Stuck) > 0 }

// patterns generates the scan stimulus: walking-1, walking-0, alternating
// and solid words. Walking patterns give per-wire isolation; repeating each
// probe twice separates consistent (stuck) from inconsistent (transient or
// trojan) mismatches.
func patterns() []ecc.Codeword {
	var ps []ecc.Codeword
	for i := 0; i < ecc.CodewordBits; i++ {
		var one ecc.Codeword
		one = one.Flip(i)
		all := ecc.Codeword{Lo: ^uint64(0), Hi: 0xff}
		zero := all.Flip(i)
		ps = append(ps, one, one, zero, zero)
	}
	alt := ecc.Codeword{Lo: 0xaaaaaaaaaaaaaaaa, Hi: 0xaa}
	inv := ecc.Codeword{Lo: 0x5555555555555555, Hi: 0x55}
	ps = append(ps, alt, alt, inv, inv, ecc.Codeword{}, ecc.Codeword{},
		ecc.Codeword{Lo: ^uint64(0), Hi: 0xff}, ecc.Codeword{Lo: ^uint64(0), Hi: 0xff})
	return ps
}

// scanPatterns is the fixed stimulus set, generated once: the scan sits on
// the detector's reaction path, so a campaign point re-running BIST on every
// reset arena must not pay pattern-generation allocations per scan. Scan
// only reads it, so sharing across concurrent workers is safe.
var scanPatterns = patterns()

// Scan drives the pattern set through the tap and classifies each wire.
// cycle is the simulation time the scan starts at (patterns advance it by
// one per traversal, so time-dependent injectors behave naturally).
func Scan(cycle uint64, tap fault.Adversary) Report {
	type obs struct {
		drove0, drove1     int // times each value was driven
		stuckAs0, stuckAs1 int // times the wire read 0/1 while driven opposite
	}
	// A fixed-size array keeps the observation table on the stack; the
	// pattern set is the precomputed package-level stimulus.
	var wires [ecc.CodewordBits]obs
	lost := 0
	ps := scanPatterns
	for i, p := range ps {
		// Patterns are framed as single-flit packets: the worst case for a
		// framing-aware trojan, which may alias on them and expose itself
		// as inconsistency (flips) or loss (swallows).
		got, oc := tap.Strike(cycle+uint64(i), p, fault.Framing{Head: true, Tail: true})
		if oc == fault.Swallow {
			lost++
			continue
		}
		for w := 0; w < ecc.CodewordBits; w++ {
			sent, recv := p.Bit(w), got.Bit(w)
			if sent == 1 {
				wires[w].drove1++
				if recv == 0 {
					wires[w].stuckAs0++
				}
			} else {
				wires[w].drove0++
				if recv == 1 {
					wires[w].stuckAs1++
				}
			}
		}
	}
	rep := Report{PatternsRun: len(ps), Lost: lost}
	for w, o := range wires {
		switch {
		case o.drove1 > 0 && o.stuckAs0 == o.drove1:
			rep.Stuck = append(rep.Stuck, StuckWire{Pos: w, Value: 0})
		case o.drove0 > 0 && o.stuckAs1 == o.drove0:
			rep.Stuck = append(rep.Stuck, StuckWire{Pos: w, Value: 1})
		case o.stuckAs0+o.stuckAs1 > 0:
			rep.Inconsistent++
		}
	}
	return rep
}
