package bist

import (
	"testing"

	"tasp/internal/ecc"
	"tasp/internal/flit"
	"tasp/internal/fault"
	"tasp/internal/tasp"
)

func TestCleanLink(t *testing.T) {
	rep := Scan(0, fault.None)
	if rep.Permanent() || len(rep.Stuck) != 0 || rep.Inconsistent != 0 {
		t.Fatalf("clean link reported %+v", rep)
	}
	if rep.PatternsRun == 0 {
		t.Fatal("no patterns run")
	}
}

func TestFindsStuckWires(t *testing.T) {
	inj := fault.NewStuckAt(map[int]uint{5: 1, 40: 0, 70: 1})
	rep := Scan(0, inj)
	if len(rep.Stuck) != 3 {
		t.Fatalf("found %d stuck wires, want 3: %+v", len(rep.Stuck), rep.Stuck)
	}
	want := map[int]uint{5: 1, 40: 0, 70: 1}
	for _, s := range rep.Stuck {
		if v, ok := want[s.Pos]; !ok || v != s.Value {
			t.Fatalf("wrong stuck wire %+v", s)
		}
	}
	if !rep.Permanent() {
		t.Fatal("permanent not reported")
	}
}

func TestEveryWirePositionDetectable(t *testing.T) {
	for pos := 0; pos < ecc.CodewordBits; pos += 7 {
		for _, v := range []uint{0, 1} {
			rep := Scan(0, fault.NewStuckAt(map[int]uint{pos: v}))
			if len(rep.Stuck) != 1 || rep.Stuck[0].Pos != pos || rep.Stuck[0].Value != v {
				t.Fatalf("stuck(%d=%d) not isolated: %+v", pos, v, rep.Stuck)
			}
		}
	}
}

func TestTransientNoiseNotPermanent(t *testing.T) {
	// A fairly noisy transient injector must not be classified stuck.
	rep := Scan(0, fault.NewTransient(5e-4, 3))
	if rep.Permanent() {
		t.Fatalf("transient noise classified permanent: %+v", rep.Stuck)
	}
}

// TestTrojanEvadesBIST verifies the paper's premise that logic testing has
// a limited chance of exposing a dormant or target-gated trojan: scanning a
// link carrying an armed TASP must not classify the link as permanently
// faulty (the trojan's strikes are inconsistent, not stuck-at), and a
// disarmed trojan is completely invisible.
func TestTrojanEvadesBIST(t *testing.T) {
	ht := tasp.New(tasp.ForDest(9), tasp.DefaultPayloadBits, flit.Default)
	rep := Scan(0, ht) // kill switch off: dormant
	if rep.Permanent() || rep.Inconsistent != 0 {
		t.Fatalf("dormant trojan visible to BIST: %+v", rep)
	}
	ht.SetKillSwitch(true)
	rep = Scan(0, ht)
	if rep.Permanent() {
		t.Fatalf("armed trojan misclassified as permanent fault: %+v", rep.Stuck)
	}
}

// TestTrojanWithAliasingTargetStaysInconsistent drives a trojan whose
// target aliases the all-zero walking patterns; its strikes show up as
// inconsistent wires, not stuck ones.
func TestTrojanWithAliasingTargetStaysInconsistent(t *testing.T) {
	ht := tasp.New(tasp.ForDest(0), tasp.DefaultPayloadBits, flit.Default) // dest 0 = zeros
	ht.SetKillSwitch(true)
	rep := Scan(0, ht)
	if rep.Permanent() {
		t.Fatalf("aliasing trojan classified permanent: %+v", rep.Stuck)
	}
	if ht.Injections == 0 {
		t.Skip("patterns never aliased the target (layout-dependent)")
	}
	if rep.Inconsistent == 0 {
		t.Fatal("trojan strikes during BIST left no inconsistency evidence")
	}
}

func TestStuckPlusTransient(t *testing.T) {
	chain := fault.Chain{
		fault.NewStuckAt(map[int]uint{11: 0}),
		fault.NewTransient(1e-4, 7),
	}
	rep := Scan(0, chain)
	found := false
	for _, s := range rep.Stuck {
		if s.Pos == 11 && s.Value == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stuck wire missed under transient noise: %+v", rep.Stuck)
	}
}
