package lob

import (
	"testing"
	"testing/quick"

	"tasp/internal/ecc"
)

func allChoices() []Choice {
	var cs []Choice
	for _, m := range Methods {
		for _, g := range []Granularity{WholeFlit, HeaderOnly, PayloadOnly} {
			cs = append(cs, Choice{m, g})
		}
	}
	return cs
}

func TestApplyUndoRoundTrip(t *testing.T) {
	ks := NewKeystream(1)
	for _, c := range allChoices() {
		key := ks.Next()
		for _, data := range []uint64{0, ^uint64(0), 0xdeadbeefcafebabe} {
			cw := ecc.Encode(data)
			got := Undo(Apply(cw, c, key), c, key)
			if got != cw {
				t.Errorf("%v: round trip failed for %016x", c, data)
			}
		}
	}
}

func TestApplyUndoRoundTripProperty(t *testing.T) {
	ks := NewKeystream(2)
	cs := allChoices()
	f := func(data uint64, pick uint8) bool {
		c := cs[int(pick)%len(cs)]
		key := ks.Next()
		cw := ecc.Encode(data)
		return Undo(Apply(cw, c, key), c, key) == cw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyActuallyChangesWires(t *testing.T) {
	ks := NewKeystream(3)
	cw := ecc.Encode(0x123456789abcdef0)
	for _, c := range allChoices() {
		if got := Apply(cw, c, ks.Next()); got == cw {
			t.Errorf("%v left the codeword unchanged", c)
		}
	}
	if got := Apply(cw, Choice{Method: None}, ecc.Codeword{}); got != cw {
		t.Error("None modified the codeword")
	}
}

func TestGranularityWindowsDisjoint(t *testing.T) {
	// Header and payload windows must partition the codeword.
	if len(headerPos)+len(payloadPos) != ecc.CodewordBits {
		t.Fatalf("windows cover %d+%d of %d wires", len(headerPos), len(payloadPos), ecc.CodewordBits)
	}
	seen := map[int]bool{}
	for _, p := range append(append([]int{}, headerPos...), payloadPos...) {
		if seen[p] {
			t.Fatalf("wire %d in both windows", p)
		}
		seen[p] = true
	}
}

func TestHeaderOnlyLeavesPayloadWires(t *testing.T) {
	ks := NewKeystream(4)
	cw := ecc.Encode(0xaaaa5555ffff0000)
	got := Apply(cw, Choice{Invert, HeaderOnly}, ks.Next())
	for _, p := range payloadPos {
		if got.Bit(p) != cw.Bit(p) {
			t.Fatalf("header-only invert touched payload wire %d", p)
		}
	}
	changed := false
	for _, p := range headerPos {
		if got.Bit(p) != cw.Bit(p) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("header-only invert changed nothing")
	}
}

func TestTwoFlipsSurviveUndo(t *testing.T) {
	// The core compatibility property with SECDED: a trojan's 2-bit strike
	// on the obfuscated word is still exactly 2 flips after undo, so the
	// fault is still detected, never silently absorbed.
	ks := NewKeystream(5)
	for _, c := range allChoices() {
		key := ks.Next()
		cw := ecc.Encode(0x0123456789abcdef)
		obf := Apply(cw, c, key)
		struck := obf.Flip(7).Flip(41)
		back := Undo(struck, c, key)
		if diff := back.Xor(cw); diff.Weight() != 2 {
			t.Errorf("%v: strike weight %d after undo, want 2", c, diff.Weight())
		}
	}
}

func TestPenalties(t *testing.T) {
	if None.Penalty() != 0 {
		t.Error("None has a penalty")
	}
	if Scramble.Penalty() != 2 {
		t.Errorf("scramble penalty %d, want 2", Scramble.Penalty())
	}
	for _, m := range []Method{Invert, Shuffle, Reorder} {
		if m.Penalty() != 1 {
			t.Errorf("%v penalty %d, want 1", m, m.Penalty())
		}
	}
}

func TestEscalationOrderStartsWholeFlit(t *testing.T) {
	for i, c := range EscalationOrder[:4] {
		if c.Gran != WholeFlit {
			t.Errorf("escalation step %d is %v, want whole-flit first", i, c)
		}
	}
	for n := 0; n < len(EscalationOrder); n++ {
		if Escalate(n) != EscalationOrder[n] {
			t.Errorf("Escalate(%d) = %v", n, Escalate(n))
		}
	}
	if c := Escalate(100); c.Method != Scramble {
		t.Errorf("post-order escalation is %v, want scramble", c)
	}
}

func TestMethodLog(t *testing.T) {
	l := NewMethodLog()
	k := FlowKey{SrcR: 1, DstR: 2, VC: 3}
	if _, ok := l.Lookup(k); ok {
		t.Fatal("empty log returned a method")
	}
	c := Choice{Invert, HeaderOnly}
	l.Record(k, c)
	got, ok := l.Lookup(k)
	if !ok || got != c {
		t.Fatalf("lookup = %v,%v", got, ok)
	}
	if l.Hits != 1 || l.Len() != 1 {
		t.Fatalf("hits=%d len=%d", l.Hits, l.Len())
	}
	l.Forget(k)
	if _, ok := l.Lookup(k); ok {
		t.Fatal("forgotten flow still logged")
	}
}

func TestKeystreamDeterminism(t *testing.T) {
	a, b := NewKeystream(9), NewKeystream(9)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed keystreams diverged")
		}
	}
}

func TestStrings(t *testing.T) {
	if (Choice{Scramble, HeaderOnly}).String() != "scramble/header" {
		t.Errorf("choice string %q", Choice{Scramble, HeaderOnly}.String())
	}
	for m, w := range map[Method]string{None: "none", Scramble: "scramble", Invert: "invert", Shuffle: "shuffle", Reorder: "reorder"} {
		if m.String() != w {
			t.Errorf("%d = %q want %q", m, m.String(), w)
		}
	}
}
