package lob

import (
	"testing"
	"testing/quick"

	"tasp/internal/ecc"
	"tasp/internal/flit"
)

func allChoices() []Choice {
	var cs []Choice
	for _, m := range Methods {
		for _, g := range []Granularity{WholeFlit, HeaderOnly, PayloadOnly} {
			cs = append(cs, Choice{m, g})
		}
	}
	return cs
}

func TestApplyUndoRoundTrip(t *testing.T) {
	ks := NewKeystream(1)
	for _, c := range allChoices() {
		key := ks.Next()
		for _, data := range []uint64{0, ^uint64(0), 0xdeadbeefcafebabe} {
			cw := ecc.Encode(data)
			got := Undo(Apply(cw, c, key), c, key)
			if got != cw {
				t.Errorf("%v: round trip failed for %016x", c, data)
			}
		}
	}
}

func TestApplyUndoRoundTripProperty(t *testing.T) {
	ks := NewKeystream(2)
	cs := allChoices()
	f := func(data uint64, pick uint8) bool {
		c := cs[int(pick)%len(cs)]
		key := ks.Next()
		cw := ecc.Encode(data)
		return Undo(Apply(cw, c, key), c, key) == cw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyActuallyChangesWires(t *testing.T) {
	ks := NewKeystream(3)
	cw := ecc.Encode(0x123456789abcdef0)
	for _, c := range allChoices() {
		if got := Apply(cw, c, ks.Next()); got == cw {
			t.Errorf("%v left the codeword unchanged", c)
		}
	}
	if got := Apply(cw, Choice{Method: None}, ecc.Codeword{}); got != cw {
		t.Error("None modified the codeword")
	}
}

func TestGranularityWindowsDisjoint(t *testing.T) {
	// Header and payload windows must partition the codeword, for every
	// layout's windows — here the default and an 8x8/concentration-8/8-VC
	// substrate's (3-bit vc, 6-bit router ids, 3-bit core ids).
	big, err := flit.LayoutFor(64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*Windows{DefaultWindows, WindowsFor(big)} {
		if len(w.headerPos)+len(w.payloadPos) != ecc.CodewordBits {
			t.Fatalf("windows cover %d+%d of %d wires", len(w.headerPos), len(w.payloadPos), ecc.CodewordBits)
		}
		seen := map[int]bool{}
		for _, p := range append(append([]int{}, w.headerPos...), w.payloadPos...) {
			if seen[p] {
				t.Fatalf("wire %d in both windows", p)
			}
			seen[p] = true
		}
	}
}

func TestWindowsScaleWithLayout(t *testing.T) {
	// A wider header layout obfuscates more wires under HeaderOnly: the
	// window tracks the layout's header span instead of a fixed 56 bits.
	big, err := flit.LayoutFor(64, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.HeaderBits() <= flit.Default.HeaderBits() {
		t.Fatalf("expected 64-router layout to have a wider header than default (%d vs %d)",
			big.HeaderBits(), flit.Default.HeaderBits())
	}
	bw := WindowsFor(big)
	if len(bw.headerPos) != big.HeaderBits() {
		t.Fatalf("header window %d wires, want %d", len(bw.headerPos), big.HeaderBits())
	}
	if len(DefaultWindows.headerPos) != flit.Default.HeaderBits() {
		t.Fatalf("default header window %d wires, want %d", len(DefaultWindows.headerPos), flit.Default.HeaderBits())
	}
	// Round trip still holds on the scaled windows.
	ks := NewKeystream(7)
	for _, c := range allChoices() {
		key := ks.Next()
		cw := ecc.Encode(0xfeedface12345678)
		if got := bw.Undo(bw.Apply(cw, c, key), c, key); got != cw {
			t.Errorf("%v: round trip failed on scaled windows", c)
		}
	}
}

func TestHeaderOnlyLeavesPayloadWires(t *testing.T) {
	ks := NewKeystream(4)
	cw := ecc.Encode(0xaaaa5555ffff0000)
	got := Apply(cw, Choice{Invert, HeaderOnly}, ks.Next())
	for _, p := range DefaultWindows.payloadPos {
		if got.Bit(p) != cw.Bit(p) {
			t.Fatalf("header-only invert touched payload wire %d", p)
		}
	}
	changed := false
	for _, p := range DefaultWindows.headerPos {
		if got.Bit(p) != cw.Bit(p) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("header-only invert changed nothing")
	}
}

func TestTwoFlipsSurviveUndo(t *testing.T) {
	// The core compatibility property with SECDED: a trojan's 2-bit strike
	// on the obfuscated word is still exactly 2 flips after undo, so the
	// fault is still detected, never silently absorbed.
	ks := NewKeystream(5)
	for _, c := range allChoices() {
		key := ks.Next()
		cw := ecc.Encode(0x0123456789abcdef)
		obf := Apply(cw, c, key)
		struck := obf.Flip(7).Flip(41)
		back := Undo(struck, c, key)
		if diff := back.Xor(cw); diff.Weight() != 2 {
			t.Errorf("%v: strike weight %d after undo, want 2", c, diff.Weight())
		}
	}
}

func TestPenalties(t *testing.T) {
	if None.Penalty() != 0 {
		t.Error("None has a penalty")
	}
	if Scramble.Penalty() != 2 {
		t.Errorf("scramble penalty %d, want 2", Scramble.Penalty())
	}
	for _, m := range []Method{Invert, Shuffle, Reorder} {
		if m.Penalty() != 1 {
			t.Errorf("%v penalty %d, want 1", m, m.Penalty())
		}
	}
}

func TestEscalationOrderStartsWholeFlit(t *testing.T) {
	for i, c := range EscalationOrder[:4] {
		if c.Gran != WholeFlit {
			t.Errorf("escalation step %d is %v, want whole-flit first", i, c)
		}
	}
	for n := 0; n < len(EscalationOrder); n++ {
		if Escalate(n) != EscalationOrder[n] {
			t.Errorf("Escalate(%d) = %v", n, Escalate(n))
		}
	}
	if c := Escalate(100); c.Method != Scramble {
		t.Errorf("post-order escalation is %v, want scramble", c)
	}
}

func TestMethodLog(t *testing.T) {
	l := NewMethodLog()
	k := FlowKey{SrcR: 1, DstR: 2, VC: 3}
	if _, ok := l.Lookup(k); ok {
		t.Fatal("empty log returned a method")
	}
	c := Choice{Invert, HeaderOnly}
	l.Record(k, c)
	got, ok := l.Lookup(k)
	if !ok || got != c {
		t.Fatalf("lookup = %v,%v", got, ok)
	}
	if l.Hits != 1 || l.Len() != 1 {
		t.Fatalf("hits=%d len=%d", l.Hits, l.Len())
	}
	l.Forget(k)
	if _, ok := l.Lookup(k); ok {
		t.Fatal("forgotten flow still logged")
	}
}

func TestKeystreamDeterminism(t *testing.T) {
	a, b := NewKeystream(9), NewKeystream(9)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed keystreams diverged")
		}
	}
}

func TestStrings(t *testing.T) {
	if (Choice{Scramble, HeaderOnly}).String() != "scramble/header" {
		t.Errorf("choice string %q", Choice{Scramble, HeaderOnly}.String())
	}
	for m, w := range map[Method]string{None: "none", Scramble: "scramble", Invert: "invert", Shuffle: "shuffle", Reorder: "reorder"} {
		if m.String() != w {
			t.Errorf("%d = %q want %q", m, m.String(), w)
		}
	}
}
