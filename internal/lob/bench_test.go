package lob

import (
	"testing"

	"tasp/internal/ecc"
)

func benchChoice(b *testing.B, c Choice) {
	b.Helper()
	ks := NewKeystream(1)
	cw := ecc.Encode(0x0123456789abcdef)
	key := ks.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw = Undo(Apply(cw, c, key), c, key)
	}
}

func BenchmarkScrambleWholeFlit(b *testing.B) { benchChoice(b, Choice{Scramble, WholeFlit}) }
func BenchmarkInvertWholeFlit(b *testing.B)   { benchChoice(b, Choice{Invert, WholeFlit}) }
func BenchmarkShuffleWholeFlit(b *testing.B)  { benchChoice(b, Choice{Shuffle, WholeFlit}) }
func BenchmarkReorderHeaderOnly(b *testing.B) { benchChoice(b, Choice{Reorder, HeaderOnly}) }
