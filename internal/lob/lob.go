// Package lob implements the paper's L-Ob switch-to-switch link obfuscation
// block (Section IV-A, Figure 4). When the threat detector suspects a link
// trojan, the upstream L-Ob transforms the encoded codeword before link
// traversal so the trojan's comparator no longer sees its target bits; the
// downstream L-Ob undoes the transform before ECC decode, at a 1-2 cycle
// penalty. Methods can be applied to the whole flit, the header window or
// the payload window, which lets the detector narrow down where the
// trojan's trigger taps (Figure 4's method log).
//
// Every method is a bijection on the 72-bit codeword, so two trojan-injected
// flips remain two flips after the undo and SECDED still detects them; the
// point of obfuscation is not error protection but preventing the trigger
// from matching in the first place.
package lob

import (
	"fmt"

	"tasp/internal/ecc"
	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// Method is one obfuscation transform.
type Method uint8

// The methods of Figure 4, plus None. Scramble XORs the wires with an
// LFSR keystream shared by the two link endpoints (the paper's flit-pair
// scrambling of Figure 7 is modelled as a synchronized keystream: the same
// trigger-avoidance, the same 2-cycle penalty, without needing a partner
// flit to be in the buffer). Invert complements the wires. Shuffle rotates
// the window. Reorder swaps the halves of the window (the flit-reordering
// method at wire granularity).
const (
	None Method = iota
	Scramble
	Invert
	Shuffle
	Reorder
)

// Methods lists the real transforms in default escalation order.
var Methods = []Method{Scramble, Invert, Shuffle, Reorder}

// String names the method.
func (m Method) String() string {
	switch m {
	case None:
		return "none"
	case Scramble:
		return "scramble"
	case Invert:
		return "invert"
	case Shuffle:
		return "shuffle"
	case Reorder:
		return "reorder"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// Penalty returns the extra receiver cycles to undo the method (Figure 7:
// 1 cycle for invert/shuffle/reorder, 1-2 for scramble while the partner
// keystream word is produced).
func (m Method) Penalty() int {
	switch m {
	case None:
		return 0
	case Scramble:
		return 2
	default:
		return 1
	}
}

// Granularity selects which codeword window a method is applied to.
type Granularity uint8

// Granularities: the entire flit, only the header field window, or only the
// payload window (Section IV-A: "for the entire flit, header or payload").
const (
	WholeFlit Granularity = iota
	HeaderOnly
	PayloadOnly
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case WholeFlit:
		return "flit"
	case HeaderOnly:
		return "header"
	case PayloadOnly:
		return "payload"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// Choice is one (method, granularity) selection.
type Choice struct {
	Method Method
	Gran   Granularity
}

// String renders the choice.
func (c Choice) String() string { return c.Method.String() + "/" + c.Gran.String() }

// EscalationOrder is the default sequence the threat detector walks through
// on consecutive failed retransmissions: whole-flit methods first (maximum
// coverage), then narrowed granularities that localise the trigger.
var EscalationOrder = []Choice{
	{Scramble, WholeFlit},
	{Invert, WholeFlit},
	{Shuffle, WholeFlit},
	{Reorder, WholeFlit},
	{Scramble, HeaderOnly},
	{Scramble, PayloadOnly},
	{Invert, HeaderOnly},
	{Invert, PayloadOnly},
}

// Windows precomputes, for one flit-header layout, the codeword positions
// each granularity covers. The header window is the codeword image of the
// layout's header span (type, vc, src, dst, mem, core ids, seq — everything
// below the spare field); the payload window is everything else including
// parity. Both L-Ob endpoints of a link must be built from the same layout
// or the undo will not invert the apply.
type Windows struct {
	headerPos  []int
	payloadPos []int
	wholePos   []int
}

// WindowsFor builds the granularity windows for a header layout.
func WindowsFor(l flit.Layout) *Windows {
	w := &Windows{}
	isHeader := map[int]bool{}
	for d := 0; d < l.HeaderBits(); d++ {
		isHeader[ecc.DataPosition(d)] = true
	}
	for p := 0; p < ecc.CodewordBits; p++ {
		w.wholePos = append(w.wholePos, p)
		if isHeader[p] {
			w.headerPos = append(w.headerPos, p)
		} else {
			w.payloadPos = append(w.payloadPos, p)
		}
	}
	return w
}

// DefaultWindows are the windows of the paper's default header layout.
var DefaultWindows = WindowsFor(flit.Default)

// window returns the positions a granularity covers.
func (w *Windows) window(g Granularity) []int {
	switch g {
	case HeaderOnly:
		return w.headerPos
	case PayloadOnly:
		return w.payloadPos
	default:
		return w.wholePos
	}
}

// Keystream is the synchronized LFSR both ends of a secured link share. The
// upstream advances it per scrambled transmission; the downstream recreates
// the same words because attempts are acknowledged in lockstep.
type Keystream struct {
	rng *xrand.RNG
}

// NewKeystream seeds a link keystream.
func NewKeystream(seed uint64) *Keystream { return &Keystream{rng: xrand.New(seed)} }

// Reseed rewinds the keystream to the start of the stream a fresh
// NewKeystream(seed) would produce, in place. Both link endpoints must be
// reseeded together, exactly as they must be constructed together.
func (k *Keystream) Reseed(seed uint64) { k.rng.Seed(seed) }

// Next produces the next 72-bit keystream word.
func (k *Keystream) Next() ecc.Codeword {
	return ecc.Codeword{Lo: k.rng.Uint64(), Hi: uint8(k.rng.Uint64())}
}

// Apply transforms the codeword with the chosen method over the chosen
// window. key is consumed only by Scramble; pass the same word to Undo.
func (w *Windows) Apply(cw ecc.Codeword, c Choice, key ecc.Codeword) ecc.Codeword {
	pos := w.window(c.Gran)
	switch c.Method {
	case None:
		return cw
	case Invert:
		for _, p := range pos {
			cw = cw.Flip(p)
		}
		return cw
	case Scramble:
		for _, p := range pos {
			if key.Bit(p) == 1 {
				cw = cw.Flip(p)
			}
		}
		return cw
	case Shuffle:
		return permute(cw, pos, rotateIdx)
	case Reorder:
		return permute(cw, pos, swapHalvesIdx)
	default:
		return cw
	}
}

// Undo reverses Apply with the same choice and key.
func (w *Windows) Undo(cw ecc.Codeword, c Choice, key ecc.Codeword) ecc.Codeword {
	pos := w.window(c.Gran)
	switch c.Method {
	case Shuffle:
		return unpermute(cw, pos, rotateIdx)
	case Reorder:
		return unpermute(cw, pos, swapHalvesIdx)
	default:
		// Invert and Scramble are involutions.
		return w.Apply(cw, c, key)
	}
}

// Apply transforms the codeword using the default layout's windows.
func Apply(cw ecc.Codeword, c Choice, key ecc.Codeword) ecc.Codeword {
	return DefaultWindows.Apply(cw, c, key)
}

// Undo reverses Apply using the default layout's windows.
func Undo(cw ecc.Codeword, c Choice, key ecc.Codeword) ecc.Codeword {
	return DefaultWindows.Undo(cw, c, key)
}

// shuffleRotate is the rotation distance of the Shuffle method.
const shuffleRotate = 13

// rotateIdx maps window index i to its destination index.
func rotateIdx(i, n int) int { return (i + shuffleRotate) % n }

// swapHalvesIdx swaps the two halves of the window.
func swapHalvesIdx(i, n int) int { return (i + n/2) % n }

// permute moves bit at window index i to window index f(i, n).
func permute(cw ecc.Codeword, pos []int, f func(i, n int) int) ecc.Codeword {
	n := len(pos)
	out := cw
	for i := 0; i < n; i++ {
		src := pos[i]
		dst := pos[f(i, n)]
		if cw.Bit(src) != out.Bit(dst) {
			out = out.Flip(dst)
		}
	}
	return out
}

// unpermute inverts permute with the same index map.
func unpermute(cw ecc.Codeword, pos []int, f func(i, n int) int) ecc.Codeword {
	n := len(pos)
	out := cw
	for i := 0; i < n; i++ {
		src := pos[f(i, n)]
		dst := pos[i]
		if cw.Bit(src) != out.Bit(dst) {
			out = out.Flip(dst)
		}
	}
	return out
}

// FlowKey identifies a traffic flow for the per-flow method log.
type FlowKey struct {
	SrcR, DstR, VC uint8
}

// MethodLog remembers, per flow, the obfuscation choice that got flits of
// that flow through a compromised link ("Once a obfuscation method
// succeeds, it is logged for future attempts" — Figure 7). It also supplies
// the escalation sequence for flits that keep failing.
type MethodLog struct {
	known map[FlowKey]Choice
	// Hits counts log lookups that found a known-good method.
	Hits uint64
}

// NewMethodLog returns an empty log.
func NewMethodLog() *MethodLog { return &MethodLog{known: map[FlowKey]Choice{}} }

// Lookup returns the logged choice for a flow, if any.
func (l *MethodLog) Lookup(k FlowKey) (Choice, bool) {
	c, ok := l.known[k]
	if ok {
		l.Hits++
	}
	return c, ok
}

// Record stores a successful choice for a flow.
func (l *MethodLog) Record(k FlowKey, c Choice) { l.known[k] = c }

// Reset forgets every logged flow and the hit counter, returning the log to
// its post-NewMethodLog state without reallocating the table.
func (l *MethodLog) Reset() {
	clear(l.known)
	l.Hits = 0
}

// Forget drops a logged choice (when it stops working, e.g. the trojan's
// trigger turned out to alias the obfuscated form too).
func (l *MethodLog) Forget(k FlowKey) { delete(l.known, k) }

// Escalate returns the n-th choice to try for a flit that has failed n
// plain transmissions (n starts at 0). Past the end of the order it cycles
// with the keystream-based scramble, which re-randomises every attempt.
func Escalate(n int) Choice {
	if n < len(EscalationOrder) {
		return EscalationOrder[n]
	}
	return Choice{Scramble, WholeFlit}
}

// Len reports the number of flows with logged methods.
func (l *MethodLog) Len() int { return len(l.known) }
