package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// ProtectedField names one piece of scheduler state as (named type, field).
type ProtectedField struct {
	Type  string
	Field string
}

// NewTelemetrySafe builds the telemetrysafe analyzer: every mutation of the
// event-driven scheduler's bookkeeping — activity bitmaps, occupancy and
// request masks, flit counters — must go through the edge helpers defined
// in the allowed files (sched.go), because those helpers are what the
// brute-force invariant audit certifies. A direct `r.occ |= ...` elsewhere
// compiles fine and desynchronizes the active sets from the buffers in a
// way that only surfaces as a wedged or silently-wrong simulation.
//
// Flagged: assignments (including op-assign), ++/--, and taking the address
// of a protected field, in any file not in allowedFiles. There is no
// annotation escape: new scheduler-state transitions belong in sched.go.
func NewTelemetrySafe(protected []ProtectedField, allowedFiles []string) *Analyzer {
	prot := map[ProtectedField]bool{}
	for _, p := range protected {
		prot[p] = true
	}
	allowed := map[string]bool{}
	for _, f := range allowedFiles {
		allowed[f] = true
	}
	a := &Analyzer{
		Name: "telemetrysafe",
		Doc:  "requires scheduler-state mutations to go through the sched.go edge helpers",
	}
	report := func(pass *Pass, pos token.Pos, what string, pf ProtectedField) {
		pass.Reportf(pos,
			"%s of scheduler state %s.%s outside %v: use the sched.go edge helpers (gain/lose, markOccupied/clearOccupied, routeInput/unrouteInput, grantVA/retireRouted) so the invariant audit keeps covering every transition",
			what, pf.Type, pf.Field, allowedFiles)
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if allowed[base] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if pf, ok := protectedTarget(pass, lhs, prot); ok {
							report(pass, lhs.Pos(), "direct mutation", pf)
						}
					}
				case *ast.IncDecStmt:
					if pf, ok := protectedTarget(pass, n.X, prot); ok {
						report(pass, n.X.Pos(), "direct mutation", pf)
					}
				case *ast.UnaryExpr:
					if n.Op != token.AND {
						return true
					}
					if pf, ok := protectedTarget(pass, n.X, prot); ok {
						report(pass, n.Pos(), "taking the address", pf)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// protectedTarget unwraps an assignment target (parens, indexing, derefs)
// down to a field selection and reports whether it hits a protected field.
func protectedTarget(pass *Pass, e ast.Expr, prot map[ProtectedField]bool) (ProtectedField, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			sel, ok := pass.TypesInfo.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return ProtectedField{}, false
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return ProtectedField{}, false
			}
			pf := ProtectedField{Type: named.Obj().Name(), Field: sel.Obj().Name()}
			return pf, prot[pf]
		default:
			return ProtectedField{}, false
		}
	}
}
