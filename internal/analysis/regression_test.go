package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"tasp/internal/analysis"
)

// TestSeededRegression is the acceptance check for the whole suite: plant
// the two canonical contract violations — a map range over router state and
// a math/rand import — in a noc-shaped package and prove the shipped
// internal/noc analyzer configuration (SuiteFor) turns both into findings.
// If either analyzer regressed to silence, introducing this exact code into
// internal/noc would sail through `make lint` and CI.
func TestSeededRegression(t *testing.T) {
	dir := t.TempDir()
	src := `package noc

import "math/rand"

type Router struct {
	occ uint64
}

type Network struct {
	routers map[int]*Router
}

func (n *Network) Step() {
	for id, r := range n.routers {
		r.occ |= 1 << uint(id%64)
	}
	_ = rand.Int()
}
`
	if err := os.WriteFile(filepath.Join(dir, "noc.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.SuiteFor("tasp/internal/noc"))
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["detrange"] == 0 {
		t.Errorf("map range over router state not flagged by detrange; got %v", diags)
	}
	if byAnalyzer["detsource"] == 0 {
		t.Errorf("math/rand import not flagged by detsource; got %v", diags)
	}
	if byAnalyzer["telemetrysafe"] == 0 {
		t.Errorf("direct Router.occ mutation outside sched.go not flagged by telemetrysafe; got %v", diags)
	}
}

// TestSeededRegressionCleanBaseline is the control: the same shape with the
// violations removed produces zero findings, so the regression test above
// fails for the right reason.
func TestSeededRegressionCleanBaseline(t *testing.T) {
	dir := t.TempDir()
	src := `package noc

type Router struct {
	occ uint64
}

// markOccupied lives in sched.go, the sanctioned mutation site.
func (r *Router) markOccupied(idx uint) { r.occ |= 1 << idx }

type Network struct {
	routers []*Router
}

func (n *Network) Step() {
	for id, r := range n.routers {
		r.markOccupied(uint(id % 64))
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "sched.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.SuiteFor("tasp/internal/noc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("clean baseline produced findings: %v", diags)
	}
}

// TestSeededRegressionCampaign plants the campaign engine's canonical
// contract violations — a per-point allocation inside the worker loop and a
// writer-cursor mutation outside writer.go — in a campaign-shaped package
// and proves the shipped internal/campaign configuration flags both. The
// worker loop's 0 allocs/point contract is what makes thousand-point sweeps
// run at arena speed; a make() in the loop would silently cost a heap
// allocation per grid point.
func TestSeededRegressionCampaign(t *testing.T) {
	dir := t.TempDir()
	src := `package campaign

type Record struct {
	line []byte
}

type writer struct {
	next    int
	written int
}

func worker(recs []Record, results chan<- []byte) {
	for i := range recs {
		buf := make([]byte, 0, 256)
		buf = append(buf, recs[i].line...)
		results <- buf
	}
}

// commitDirect lives outside writer.go, so advancing the cursor here must
// be flagged even though it compiles fine.
func (w *writer) commitDirect() {
	w.next++
	w.written = w.next
}
`
	if err := os.WriteFile(filepath.Join(dir, "run.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.SuiteFor("tasp/internal/campaign"))
	if err != nil {
		t.Fatal(err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["hotalloc"] == 0 {
		t.Errorf("per-point allocation in the worker loop not flagged by hotalloc; got %v", diags)
	}
	if byAnalyzer["telemetrysafe"] == 0 {
		t.Errorf("writer cursor mutation outside writer.go not flagged by telemetrysafe; got %v", diags)
	}
}

func TestSuiteFor(t *testing.T) {
	if got := analysis.SuiteFor("tasp/internal/noc"); len(got) != 4 {
		t.Errorf("internal/noc suite has %d analyzers, want 4 (detrange, detsource, hotalloc, telemetrysafe)", len(got))
	}
	if got := analysis.SuiteFor("tasp/internal/campaign"); len(got) != 4 {
		t.Errorf("internal/campaign suite has %d analyzers, want 4 (detrange, detsource, hotalloc, telemetrysafe)", len(got))
	}
	if got := analysis.SuiteFor("tasp/internal/exp"); len(got) != 2 {
		t.Errorf("non-noc sim package suite has %d analyzers, want 2 (detrange, detsource)", len(got))
	}
	if got := analysis.SuiteFor("fmt"); got != nil {
		t.Errorf("non-module package got a suite: %v", got)
	}
}

// TestLoadModulePackage smoke-tests the go list -export loader against a
// real module package (the smallest one), end to end through type checking.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./internal/xrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "tasp/internal/xrand" {
		t.Errorf("import path %q", p.ImportPath)
	}
	if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
		t.Error("package loaded without types or syntax")
	}
}
