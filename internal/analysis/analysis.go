// Package analysis is nocvet's static-analysis framework: a deliberately
// small, dependency-free mirror of the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic) built on the standard library's
// go/parser and go/types plus `go list -export` for import data.
//
// The repository's correctness rests on two unwritten contracts:
//
//  1. Simulation is bit-deterministic — the golden-file CI job and every
//     seed-determinism test diff output byte for byte, so a stray map
//     iteration or wall-clock read anywhere in a simulation package turns
//     into a flaky golden diff instead of a compile error.
//  2. The Network.Step/Inject hot path is allocation-free — the headline
//     performance wins are guarded only by a benchmark smoke test that
//     fires long after the offending code landed.
//
// The analyzers in this package (detrange, detsource, hotalloc,
// telemetrysafe) turn both contracts into mechanical findings surfaced by
// `go run ./cmd/nocvet ./...` in `make lint` and CI. See DESIGN.md §10.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one nocvet check. Analyzers are constructed (not global
// singletons) so package-specific configuration — hot-path roots, protected
// field sets — is baked in by the driver or by a test.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("detrange").
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Annots holds the package's parsed //nocvet:* annotations. Analyzers
	// consult it (via Suppressed) before reporting; consulting marks the
	// annotation used, and annotations no analyzer used are themselves
	// reported by RunAnalyzers so a stale or misplaced escape hatch cannot
	// silently rot.
	Annots *Annotations

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a finding at pos is covered by an annotation
// with the given verb — on the same line (trailing comment) or the line
// directly above. A match marks the annotation used.
func (p *Pass) Suppressed(pos token.Pos, verb string) bool {
	return p.Annots.at(p.Fset, pos, verb) != nil
}

// FileOf returns the *ast.File containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// RunAnalyzers runs the given analyzers over one loaded package and returns
// every diagnostic: analyzer findings, malformed //nocvet: annotations, and
// annotations that suppressed nothing. The result is sorted by position so
// nocvet's own output is deterministic.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	annots, malformed := ParseAnnotations(pkg.Fset, pkg.Syntax)
	var diags []Diagnostic
	diags = append(diags, malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Annots:    annots,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
		diags = append(diags, pass.diags...)
	}
	diags = append(diags, annots.unused()...)
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
