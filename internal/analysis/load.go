package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load type-checks every non-test package matching the go-list patterns,
// resolving imports from compiler export data (`go list -export`) so no
// third-party loader is needed: the toolchain's build cache is the only
// dependency. dir is the module directory the patterns are relative to.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("load %s: %s", p.ImportPath, p.Error.Err)
			}
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	var pkgs []*Package
	for _, t := range targets {
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := check(t.ImportPath, t.Dir, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixtureDir type-checks the single package under dir (an analysistest
// fixture, typically inside a testdata tree `go list` pattern expansion
// skips). Imports are resolved the same way as Load, via one `go list
// -export -deps` over the fixture's import set.
func LoadFixtureDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files", dir)
	}
	sort.Strings(files)
	// A pre-pass collects the imports so their export data can be listed.
	fset := token.NewFileSet()
	imports := map[string]bool{}
	for _, f := range files {
		pf, err := parser.ParseFile(fset, f, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, im := range pf.Imports {
			imports[strings.Trim(im.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		pats := make([]string, 0, len(imports))
		for im := range imports { //nocvet:orderfree keys are sorted before use
			pats = append(pats, im)
		}
		sort.Strings(pats)
		listed, err := goList(dir, pats)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return check("fixture/"+filepath.Base(dir), dir, files, exports)
}

// goList runs `go list -e -export -json -deps` on the patterns and decodes
// the JSON stream. -export makes the toolchain produce (or reuse) compiler
// export data for every listed package; -deps pulls in the transitive
// closure so the type-checker's importer can resolve any path it meets.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPkg
	for {
		p := new(listedPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// check parses and type-checks one package whose imports resolve through
// the export-data map.
func check(importPath, dir string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, f := range filenames {
		pf, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, pf)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
