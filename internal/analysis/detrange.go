package analysis

import (
	"go/ast"
	"go/types"
)

// NewDetRange builds the detrange analyzer: `for ... range` over a value of
// map type in a simulation package is nondeterministic iteration order, the
// exact bug class that turns into a flaky golden-file diff. The loop is
// permitted when it binds no variables (a pure counting loop observes no
// order) or when annotated `//nocvet:orderfree <reason>`. Iterating a
// sorted key slice is the sanctioned pattern and is naturally not flagged —
// the range operand is then a slice, not a map.
func NewDetRange() *Analyzer {
	a := &Analyzer{
		Name: "detrange",
		Doc:  "flags map iteration in simulation packages: order is nondeterministic and leaks straight into golden output",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil && rs.Value == nil {
					// `for range m {}` binds nothing: the body cannot
					// observe iteration order.
					return true
				}
				if pass.Suppressed(rs.Pos(), "orderfree") {
					return true
				}
				pass.Reportf(rs.Pos(),
					"nondeterministic iteration over map %s: sort the keys first, or annotate //nocvet:orderfree <reason> if the body is order-insensitive",
					types.TypeString(t, types.RelativeTo(pass.Pkg)))
				return true
			})
		}
		return nil
	}
	return a
}
