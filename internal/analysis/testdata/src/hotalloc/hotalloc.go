// Fixture for the hotalloc analyzer, rooted at Net.Step: every function
// statically reachable from a root must be free of allocation-inducing
// constructs unless annotated //nocvet:allowalloc with a reason.
package hotalloc

import "fmt"

type item struct{ v int }

// Net mimics the simulator: Step is the hot path, Cold is not.
type Net struct {
	buf  []int
	sink interface{}
}

func (n *Net) Step() {
	n.helper()
	s := make([]int, 4) // want `make allocates on the hot path \(Net\.Step\)`
	_ = s
	p := new(item) // want `new allocates`
	_ = p
	q := &item{v: 1} // want `heap allocation &item\{\.\.\.\}`
	_ = q
	n.buf = append(n.buf, 1)                // want `append may grow its backing array`
	n.buf = append(n.buf[:0], n.buf[1:]...) // permitted: self-delete idiom never grows
	fmt.Println("step")                     // want `fmt\.Println formats`
	n.box(3)                                // want `interface boxing of int argument`
	f := func() {}                          // want `closure allocation`
	f()
	//nocvet:allowalloc warm-up growth only, capacity is bounded by config
	n.buf = append(n.buf, 2)
	_ = n.dump()
}

// helper is reached transitively from Step, so its body is checked too.
func (n *Net) helper() {
	n.buf = append(n.buf, 2) // want `append may grow its backing array on the hot path \(Net\.Step -> Net\.helper\)`
}

func (n *Net) box(v interface{}) { n.sink = v }

// dump is reachable from Step but wholly sanctioned by a function-level
// annotation: diagnostics-only code invoked on invariant failure.
//
//nocvet:allowalloc cold diagnostics path, formats only on failure
func (n *Net) dump() string {
	return fmt.Sprintf("%d", len(n.buf))
}

// Cold is not reachable from any root: allocations here are fine.
func Cold() []int {
	return make([]int, 8)
}
