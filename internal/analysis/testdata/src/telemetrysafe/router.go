package telemetrysafe

// deposit mixes sanctioned helper calls with the direct bit twiddling the
// analyzer exists to catch.
func (r *Router) deposit(idx uint) {
	r.occ |= 1 << idx // want `direct mutation of scheduler state Router\.occ outside \[sched\.go\]`
	r.inFlits++       // want `direct mutation of scheduler state Router\.inFlits`
	r.sched.flitsIn++ // want `direct mutation of scheduler state scheduler\.flitsIn`
	p := &r.occ       // want `taking the address of scheduler state Router\.occ`
	_ = p
	r.markOccupied(idx) // permitted: the sched.go edge helper
	r.gainIn(1)         // permitted
}

// evade pokes the activity bitmap through the nested selector chain; the
// analyzer unwraps the indexing and still sees the protected field.
func (r *Router) evade() {
	r.sched.actIn.w[0] |= 1 // want `direct mutation of scheduler state activeSet\.w`
}
