// Fixture for the telemetrysafe analyzer, shaped like internal/noc: this
// file (sched.go) is the allowed mutation site for scheduler state; any
// other file must go through the edge helpers defined here.
package telemetrysafe

type activeSet struct{ w []uint64 }

func (s activeSet) set(i int) { s.w[i>>6] |= 1 << uint(i&63) } // permitted: sched.go

type scheduler struct {
	actIn   activeSet
	flitsIn int
}

// Router mirrors the simulator's protected fields.
type Router struct {
	id      int
	occ     uint64
	inFlits int
	sched   *scheduler
}

// gainIn is a sanctioned edge helper: every mutation below is permitted
// because it lives in sched.go.
func (r *Router) gainIn(k int) {
	if r.inFlits == 0 {
		r.sched.actIn.set(r.id)
	}
	r.inFlits += k
	r.sched.flitsIn += k
}

// markOccupied is the sanctioned occupancy-mask transition.
func (r *Router) markOccupied(idx uint) { r.occ |= 1 << idx }
