// Fixture for the //nocvet:* annotation parser: malformed annotations are
// reported, never silently honored, and well-formed annotations that
// suppress nothing are reported as unused.
package annot

// An unknown verb is a finding, not a silently-ignored comment.
//
//nocvet:bogus whatever this was meant to do // want `unknown nocvet annotation verb "bogus"`
var X = 1

// A missing reason is a finding: escape hatches carry justifications.
//
//nocvet:orderfree // want `nocvet:orderfree annotation requires a reason`
var Y = 2

// A malformed annotation does not suppress: the map range below it is
// still flagged even though the (reason-less) annotation sits right above.
func NotSuppressed(m map[int]int) int {
	s := 0
	//nocvet:orderfree // want `nocvet:orderfree annotation requires a reason`
	for _, v := range m { // want `nondeterministic iteration over map`
		s += v
	}
	return s
}

// A well-formed annotation consulted by no analyzer is unused.
//
//nocvet:allowalloc this function is not on any hot path // want `nocvet:allowalloc annotation matches no finding`
func ColdAllocation() []int {
	return make([]int, 4)
}
