// Fixture for the detsource analyzer: nondeterminism sources — math/rand,
// wall-clock reads, the process environment, racy selects — are forbidden
// in simulation code; randomness flows through internal/xrand seeds.
package detsource

import (
	"math/rand" // want `import of math/rand in simulation code`
	"os"
	"time"
)

// Flagged: the classic trio that silently breaks seed-reproducibility.
func Flagged() int64 {
	t := time.Now()       // want `time\.Now reads wall-clock time`
	_ = os.Getenv("SEED") // want `os\.Getenv reads host environment`
	d := time.Since(t)    // want `time\.Since reads wall-clock time`
	return rand.Int63() + int64(d)
}

// FlaggedSelect: with two ready cases the runtime picks pseudo-randomly.
func FlaggedSelect(a, b chan int) int {
	select { // want `select with 2 comm cases chooses pseudo-randomly`
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

// PermittedSelect: one comm case plus default is a deterministic poll.
func PermittedSelect(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return 0
	}
}

// PermittedAnnotated: a deliberate wall-clock read outside any golden
// path, documented with the escape hatch.
func PermittedAnnotated() int64 {
	//nocvet:nondet tooling timestamp, never feeds golden output
	return time.Now().Unix()
}
