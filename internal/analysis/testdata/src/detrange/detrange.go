// Fixture for the detrange analyzer: map iteration order is
// nondeterministic, so ranging a map in simulation code is flagged unless
// the loop provably observes no order or carries an orderfree annotation.
package detrange

import "sort"

// Flagged: the body observes iteration order (it prints-like accumulates
// into an order-sensitive slice).
func Flagged(m map[int]int) []int {
	var out []int
	for k, v := range m { // want `nondeterministic iteration over map map\[int\]int`
		out = append(out, k+v)
	}
	return out
}

// PermittedSorted is the sanctioned pattern: collect the keys (annotated,
// because the collection itself ranges the map), sort, then iterate the
// slice — the second loop ranges a slice and is not flagged.
func PermittedSorted(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //nocvet:orderfree keys are sorted before use
		ks = append(ks, k)
	}
	sort.Strings(ks)
	out := make([]string, 0, len(ks))
	for _, k := range ks {
		out = append(out, k)
	}
	return out
}

// PermittedCounting binds no loop variables: no order is observable.
func PermittedCounting(m map[int]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// PermittedAnnotated documents an order-insensitive body.
func PermittedAnnotated(m map[int]int) int {
	s := 0
	for _, v := range m { //nocvet:orderfree commutative sum
		s += v
	}
	return s
}

// Misplaced: an orderfree annotation on a slice range suppresses nothing
// and is reported instead of being silently honored.
func Misplaced(xs []int) int {
	s := 0
	//nocvet:orderfree slices already iterate in order // want `nocvet:orderfree annotation matches no finding`
	for _, x := range xs {
		s += x
	}
	return s
}
