package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// forbiddenCalls lists package-level functions whose results depend on the
// host rather than the seed. All randomness must flow through
// internal/xrand (seeded, splittable); all time must be simulation cycles.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":       "wall-clock time",
		"Since":     "wall-clock time",
		"Until":     "wall-clock time",
		"Sleep":     "wall-clock scheduling",
		"After":     "wall-clock scheduling",
		"Tick":      "wall-clock scheduling",
		"NewTimer":  "wall-clock scheduling",
		"NewTicker": "wall-clock scheduling",
	},
	"os": {
		"Getenv":    "host environment",
		"LookupEnv": "host environment",
		"Environ":   "host environment",
	},
}

// NewDetSource builds the detsource analyzer: it forbids nondeterminism
// sources in simulation code — importing math/rand (global or not, the
// seed discipline lives in internal/xrand), reading wall-clock time or the
// process environment, and multi-case select statements (the runtime picks
// a ready case pseudo-randomly). `//nocvet:nondet <reason>` is the escape
// hatch for deliberate uses outside any golden-output path.
func NewDetSource() *Analyzer {
	a := &Analyzer{
		Name: "detsource",
		Doc:  "forbids nondeterminism sources (math/rand, wall-clock, environment, racy select) in simulation packages",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, im := range f.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if path != "math/rand" && path != "math/rand/v2" {
					continue
				}
				if pass.Suppressed(im.Pos(), "nondet") {
					continue
				}
				pass.Reportf(im.Pos(),
					"import of %s in simulation code: all randomness must flow through internal/xrand seeds (annotate //nocvet:nondet <reason> only for non-simulation tooling)",
					path)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectStmt:
					comms := 0
					for _, c := range n.Body.List {
						if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
							comms++
						}
					}
					if comms >= 2 && !pass.Suppressed(n.Pos(), "nondet") {
						pass.Reportf(n.Pos(),
							"select with %d comm cases chooses pseudo-randomly among ready cases; simulation code must not race channels (//nocvet:nondet <reason> to override)",
							comms)
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := sel.X.(*ast.Ident)
					if !ok {
						return true
					}
					pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
					if !ok {
						return true
					}
					why, bad := forbiddenCalls[pn.Imported().Path()][sel.Sel.Name]
					if !bad || pass.Suppressed(n.Pos(), "nondet") {
						return true
					}
					pass.Reportf(n.Pos(),
						"%s.%s reads %s, which is invisible to the seed: simulation results would not reproduce (//nocvet:nondet <reason> to override)",
						pn.Imported().Path(), sel.Sel.Name, why)
				}
				return true
			})
		}
		return nil
	}
	return a
}
