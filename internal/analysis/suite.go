package analysis

import "strings"

// This file is the nocvet policy: which contracts apply where. The driver
// (cmd/nocvet) and the tests share it so the shipped configuration is
// itself under test.

// NocHotPathRoots are the simulator entry points whose transitive (static,
// intra-package) callees must stay allocation-free: the per-cycle pipeline,
// the injection path, and the arena reset the campaign engine calls once
// per grid point. The router phase functions and the NI inject/receive
// paths are reached from these, so they are covered without being named.
var NocHotPathRoots = []string{
	"Network.Step",
	"Network.Inject",
	"Network.Run",
	"Network.Reset",
}

// NocProtectedFields is the scheduler state of the event-driven core
// (DESIGN.md §9): the activity bitmaps and flit counters plus the
// occupancy/request masks the arbitration scans trust. Every transition
// must go through the sched.go edge helpers the invariant audit certifies.
var NocProtectedFields = []ProtectedField{
	{Type: "Router", Field: "occ"},
	{Type: "Router", Field: "routedTo"},
	{Type: "Router", Field: "reqVA"},
	{Type: "Router", Field: "inFlits"},
	{Type: "Router", Field: "parked"},
	{Type: "NI", Field: "total"},
	{Type: "scheduler", Field: "actIn"},
	{Type: "scheduler", Field: "actOut"},
	{Type: "scheduler", Field: "actNI"},
	{Type: "scheduler", Field: "flitsIn"},
	{Type: "scheduler", Field: "flitsParked"},
	{Type: "scheduler", Field: "flitsNI"},
	{Type: "activeSet", Field: "w"},
	{Type: "Network", Field: "sleepUntil"},
}

// NocSchedFiles are the files allowed to mutate NocProtectedFields.
var NocSchedFiles = []string{"sched.go"}

// CampaignHotPathRoots are the campaign engine's per-point entry points:
// the worker loop body and the record fill/encode pair it calls once per
// grid point. Statically reachable callees (Scenario.Config and the
// AttackSpec/JSONL helpers) are covered without being named. Amortized
// appends into recycled storage are annotated at their declarations; the
// dynamic complement to this static gate is BenchmarkCampaignPoint's
// 0 allocs/op contract.
var CampaignHotPathRoots = []string{
	"worker",
	"Record.Fill",
	"Record.AppendJSONL",
}

// CampaignWriterFields is the in-order writer's shared bookkeeping: the
// commit cursor, checkpoint counters and the reorder buffer. Workers only
// ever hand the writer immutable encoded records over a channel; every
// mutation of this state belongs in writer.go, where the commit/checkpoint
// pair keeps the sidecar consistent with the bytes on disk.
var CampaignWriterFields = []ProtectedField{
	{Type: "writer", Field: "next"},
	{Type: "writer", Field: "written"},
	{Type: "writer", Field: "offset"},
	{Type: "writer", Field: "dirty"},
	{Type: "writer", Field: "pending"},
}

// CampaignWriterFiles are the files allowed to mutate CampaignWriterFields.
// run.go constructs the writer but only reads its cursors afterwards.
var CampaignWriterFiles = []string{"writer.go"}

// DetectHotPathRoots are the runtime detectors' per-sample entry points.
// The secure-ack monitor is fed once per link at every telemetry sample
// inside the campaign worker loop (Observe, then one FinishWindow per
// sample), so they and the arena-reuse Reset must stay allocation-free
// like the simulator phases that feed them.
var DetectHotPathRoots = []string{
	"AckMonitor.Observe",
	"AckMonitor.FinishWindow",
	"AckMonitor.Reset",
	"AckMonitor.Class",
	"AckMonitor.Channel",
	"AckMonitor.Deficit",
	"AckMonitor.Flagged",
}

// DetectMonitorFields is the secure-ack monitor's windowed state: verdicts
// escalate monotonically (a conviction latches), the cumulative deficit
// and fused counters only grow, and the per-link/fused streaks only move
// through window boundaries — which only holds if every transition goes
// through Observe/FinishWindow/Reset in ack.go.
var DetectMonitorFields = []ProtectedField{
	{Type: "AckMonitor", Field: "prevGap"},
	{Type: "AckMonitor", Field: "prevViol"},
	{Type: "AckMonitor", Field: "streak"},
	{Type: "AckMonitor", Field: "class"},
	{Type: "AckMonitor", Field: "channel"},
	{Type: "AckMonitor", Field: "deficit"},
	{Type: "AckMonitor", Field: "sent"},
	{Type: "AckMonitor", Field: "windowGrowth"},
	{Type: "AckMonitor", Field: "fusedStreak"},
}

// DetectMonitorFiles are the files allowed to mutate DetectMonitorFields.
var DetectMonitorFiles = []string{"ack.go"}

// LocateHotPathRoots is the localization engine's per-sample entry point:
// RankWeighted runs at every telemetry sample of a locate-enabled run (the
// SuspectTrace series), over every link. Its two deliberate allocations —
// amortized scratch growth and the caller-retained result copy — are
// annotated at their sites.
var LocateHotPathRoots = []string{
	"Engine.RankWeighted",
}

// simPackage reports whether an import path is simulation code bound by
// the determinism contracts. Everything in this module feeds the golden
// files or the seed-determinism tests except the analysis tooling itself —
// which is still included: nocvet's own output must be deterministic too.
func simPackage(path string) bool {
	return path == "tasp" || strings.HasPrefix(path, "tasp/")
}

// SuiteFor returns the analyzers nocvet runs on one package.
func SuiteFor(importPath string) []*Analyzer {
	if !simPackage(importPath) {
		return nil
	}
	suite := []*Analyzer{NewDetRange(), NewDetSource()}
	switch importPath {
	case "tasp/internal/noc":
		suite = append(suite,
			NewHotAlloc(NocHotPathRoots),
			NewTelemetrySafe(NocProtectedFields, NocSchedFiles),
		)
	case "tasp/internal/campaign":
		suite = append(suite,
			NewHotAlloc(CampaignHotPathRoots),
			NewTelemetrySafe(CampaignWriterFields, CampaignWriterFiles),
		)
	case "tasp/internal/detect":
		suite = append(suite,
			NewHotAlloc(DetectHotPathRoots),
			NewTelemetrySafe(DetectMonitorFields, DetectMonitorFiles),
		)
	case "tasp/internal/locate":
		suite = append(suite,
			NewHotAlloc(LocateHotPathRoots),
		)
	}
	return suite
}
