package analysis

import "strings"

// This file is the nocvet policy: which contracts apply where. The driver
// (cmd/nocvet) and the tests share it so the shipped configuration is
// itself under test.

// NocHotPathRoots are the simulator entry points whose transitive (static,
// intra-package) callees must stay allocation-free: the per-cycle pipeline
// and the injection path. The router phase functions and the NI
// inject/receive paths are reached from these, so they are covered without
// being named.
var NocHotPathRoots = []string{
	"Network.Step",
	"Network.Inject",
	"Network.Run",
}

// NocProtectedFields is the scheduler state of the event-driven core
// (DESIGN.md §9): the activity bitmaps and flit counters plus the
// occupancy/request masks the arbitration scans trust. Every transition
// must go through the sched.go edge helpers the invariant audit certifies.
var NocProtectedFields = []ProtectedField{
	{Type: "Router", Field: "occ"},
	{Type: "Router", Field: "routedTo"},
	{Type: "Router", Field: "reqVA"},
	{Type: "Router", Field: "inFlits"},
	{Type: "Router", Field: "parked"},
	{Type: "NI", Field: "total"},
	{Type: "scheduler", Field: "actIn"},
	{Type: "scheduler", Field: "actOut"},
	{Type: "scheduler", Field: "actNI"},
	{Type: "scheduler", Field: "flitsIn"},
	{Type: "scheduler", Field: "flitsParked"},
	{Type: "scheduler", Field: "flitsNI"},
	{Type: "activeSet", Field: "w"},
	{Type: "Network", Field: "sleepUntil"},
}

// NocSchedFiles are the files allowed to mutate NocProtectedFields.
var NocSchedFiles = []string{"sched.go"}

// simPackage reports whether an import path is simulation code bound by
// the determinism contracts. Everything in this module feeds the golden
// files or the seed-determinism tests except the analysis tooling itself —
// which is still included: nocvet's own output must be deterministic too.
func simPackage(path string) bool {
	return path == "tasp" || strings.HasPrefix(path, "tasp/")
}

// SuiteFor returns the analyzers nocvet runs on one package.
func SuiteFor(importPath string) []*Analyzer {
	if !simPackage(importPath) {
		return nil
	}
	suite := []*Analyzer{NewDetRange(), NewDetSource()}
	if importPath == "tasp/internal/noc" {
		suite = append(suite,
			NewHotAlloc(NocHotPathRoots),
			NewTelemetrySafe(NocProtectedFields, NocSchedFiles),
		)
	}
	return suite
}
