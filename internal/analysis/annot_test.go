package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *Annotations, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "annot_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	annots, malformed := ParseAnnotations(fset, []*ast.File{f})
	return fset, f, annots, malformed
}

func TestParseAnnotationsPositions(t *testing.T) {
	src := `package p

//nocvet:orderfree keys sorted later
var a = 1

var b = 2 //nocvet:allowalloc trailing form, cold path

//nocvet:nondet reason here
var c = 3
`
	fset, _, annots, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed annotations: %v", malformed)
	}
	if got := len(annots.all); got != 3 {
		t.Fatalf("parsed %d annotations, want 3", got)
	}
	wantLines := map[string]int{"orderfree": 3, "allowalloc": 6, "nondet": 8}
	wantReasons := map[string]string{
		"orderfree":  "keys sorted later",
		"allowalloc": "trailing form, cold path",
		"nondet":     "reason here",
	}
	for _, an := range annots.all {
		if line := fset.Position(an.Pos).Line; line != wantLines[an.Verb] {
			t.Errorf("%s: parsed at line %d, want %d", an.Verb, line, wantLines[an.Verb])
		}
		if an.Reason != wantReasons[an.Verb] {
			t.Errorf("%s: reason %q, want %q", an.Verb, an.Reason, wantReasons[an.Verb])
		}
	}
}

func TestAnnotationCoversSameLineAndLineBelow(t *testing.T) {
	src := `package p

//nocvet:orderfree own-line form covers the next line
var a = 1

var b = 2 //nocvet:allowalloc trailing form covers its own line
`
	fset, f, annots, _ := parseSrc(t, src)
	file := fset.File(f.Pos())
	// Line 4 (var a) is covered by the annotation on line 3.
	if annots.at(fset, file.LineStart(4), "orderfree") == nil {
		t.Error("own-line annotation does not cover the following line")
	}
	// Line 6 (var b) is covered by its trailing annotation.
	if annots.at(fset, file.LineStart(6), "allowalloc") == nil {
		t.Error("trailing annotation does not cover its own line")
	}
	// Verb mismatch never matches.
	if annots.at(fset, file.LineStart(6), "orderfree") != nil {
		t.Error("annotation matched the wrong verb")
	}
	// Lines further away are not covered.
	if annots.at(fset, file.LineStart(5), "orderfree") != nil {
		t.Error("annotation leaked past its line window")
	}
}

func TestMalformedAnnotationsReported(t *testing.T) {
	src := `package p

//nocvet:bogus some reason
var a = 1

//nocvet:orderfree
var b = 2

//nocvet:
var c = 3
`
	_, _, annots, malformed := parseSrc(t, src)
	if len(annots.all) != 0 {
		t.Errorf("malformed annotations were indexed: %d", len(annots.all))
	}
	if len(malformed) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3", len(malformed))
	}
	for _, want := range []string{`unknown nocvet annotation verb "bogus"`, "requires a reason", `unknown nocvet annotation verb ""`} {
		found := false
		for _, d := range malformed {
			if strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no malformed diagnostic containing %q", want)
		}
	}
}

func TestUnusedAnnotationsReported(t *testing.T) {
	src := `package p

//nocvet:orderfree never consulted
var a = 1
`
	fset, f, annots, _ := parseSrc(t, src)
	if got := len(annots.unused()); got != 1 {
		t.Fatalf("got %d unused diagnostics, want 1", got)
	}
	// Consulting the annotation (as an analyzer would via Pass.Suppressed)
	// marks it used and clears the unused report.
	line4 := fset.File(f.Pos()).LineStart(4)
	if annots.at(fset, line4, "orderfree") == nil {
		t.Fatal("annotation did not cover the line below it")
	}
	if got := len(annots.unused()); got != 0 {
		t.Fatalf("got %d unused diagnostics after use, want 0", got)
	}
}

func TestWantSuffixStrippedFromReason(t *testing.T) {
	// Fixture files carry analysistest expectations in the same comment;
	// they must not leak into the reason.
	src := "package p\n\n//nocvet:orderfree sorted later // want `x`\nvar a = 1\n"
	_, _, annots, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", malformed)
	}
	if len(annots.all) != 1 || annots.all[0].Reason != "sorted later" {
		t.Fatalf("reason not stripped of want suffix: %+v", annots.all)
	}
}
