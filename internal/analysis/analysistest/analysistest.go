// Package analysistest runs nocvet analyzers over fixture packages and
// checks their diagnostics against in-source expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest workflow:
//
//	func F() {
//		m := map[int]int{}
//		for k := range m { // want `nondeterministic iteration`
//			_ = k
//		}
//	}
//
// A `// want` comment carries one or more quoted regular expressions
// (double quotes or backquotes); every diagnostic reported on that line
// must match one expectation and every expectation must be matched by a
// diagnostic, so fixtures demonstrate both the flagged and the permitted
// pattern of each analyzer.
package analysistest

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"tasp/internal/analysis"
)

// wantRE extracts the quoted expectations from a `// want` comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// Run loads the fixture package in dir, applies the analyzers, and reports
// any mismatch between diagnostics and `// want` expectations through t.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadFixtureDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, q := range wantRE.FindAllString(c.Text[i+len("// want "):], -1) {
					re, err := regexp.Compile(q[1 : len(q)-1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		ok := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	var missing []string
	for k, res := range wants { //nocvet:orderfree collected messages are sorted before reporting
		for _, re := range res {
			if !matched[re] {
				missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}
