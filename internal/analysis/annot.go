package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation verbs and the analyzers that honor them:
//
//	//nocvet:orderfree <reason>   detrange: the loop body is insensitive to
//	                              map iteration order.
//	//nocvet:allowalloc <reason>  hotalloc: the allocation is deliberate —
//	                              a cold path, or an append into storage
//	                              pre-sized at construction.
//	//nocvet:nondet <reason>      detsource: the nondeterminism source is
//	                              deliberate (e.g. tooling that stamps a
//	                              wall-clock date outside any golden path).
//
// An annotation covers findings on its own line (trailing comment) or on
// the line directly below (own-line comment). The reason is mandatory:
// an escape hatch without a justification is itself a finding. Unknown
// verbs and annotations that suppressed nothing are reported, never
// silently honored — see RunAnalyzers.
const annotPrefix = "//nocvet:"

var knownVerbs = map[string]bool{
	"orderfree":  true,
	"allowalloc": true,
	"nondet":     true,
}

// Annotation is one parsed //nocvet:<verb> <reason> comment.
type Annotation struct {
	Verb   string
	Reason string
	Pos    token.Pos
	used   bool
}

// Annotations indexes a package's annotations by file and line.
type Annotations struct {
	byLine map[fileLine][]*Annotation
	all    []*Annotation // in file/position order, for deterministic reports
}

type fileLine struct {
	file string
	line int
}

// ParseAnnotations extracts every //nocvet:* comment from the files and
// returns the well-formed ones plus diagnostics for the malformed ones
// (unknown verb, missing reason). Malformed annotations are not indexed:
// they can never suppress a finding.
func ParseAnnotations(fset *token.FileSet, files []*ast.File) (*Annotations, []Diagnostic) {
	a := &Annotations{byLine: map[fileLine][]*Annotation{}}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, annotPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, annotPrefix)
				// Fixture files append analysistest-style expectations
				// ("// want ...") to the same comment; they are not part
				// of the reason.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				verb, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case !knownVerbs[verb]:
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "nocvet",
						Message: "unknown nocvet annotation verb " + quoteVerb(verb) +
							" (known: allowalloc, nondet, orderfree)",
					})
				case reason == "":
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "nocvet",
						Message:  "nocvet:" + verb + " annotation requires a reason",
					})
				default:
					an := &Annotation{Verb: verb, Reason: reason, Pos: c.Pos()}
					pos := fset.Position(c.Pos())
					key := fileLine{pos.Filename, pos.Line}
					a.byLine[key] = append(a.byLine[key], an)
					a.all = append(a.all, an)
				}
			}
		}
	}
	return a, malformed
}

// at returns an annotation with the given verb covering pos — same line or
// the line above — marking it used. Nil when none covers it.
func (a *Annotations) at(fset *token.FileSet, pos token.Pos, verb string) *Annotation {
	p := fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, an := range a.byLine[fileLine{p.Filename, line}] {
			if an.Verb == verb {
				an.used = true
				return an
			}
		}
	}
	return nil
}

// unused reports every well-formed annotation that no analyzer consulted:
// an escape hatch attached to the wrong node kind (orderfree above a slice
// range, allowalloc on a cold function) suppresses nothing and must not
// linger as false documentation.
func (a *Annotations) unused() []Diagnostic {
	var out []Diagnostic
	for _, an := range a.all {
		if !an.used {
			out = append(out, Diagnostic{
				Pos:      an.Pos,
				Analyzer: "nocvet",
				Message:  "nocvet:" + an.Verb + " annotation matches no finding; attach it to the flagged statement or delete it",
			})
		}
	}
	return out
}

// quoteVerb quotes a possibly-empty verb for the unknown-verb message.
func quoteVerb(s string) string {
	if s == "" {
		return `""`
	}
	return `"` + s + `"`
}
