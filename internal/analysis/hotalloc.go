package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewHotAlloc builds the hotalloc analyzer. roots name the hot-path entry
// points as "Recv.Method" (receiver type without pointer) or "Func"; every
// function in the package statically reachable from a root — direct calls
// and concrete method calls, walked conservatively within the package — is
// checked for allocation-inducing constructs:
//
//   - make / new
//   - append, except the self-delete idiom append(s[:i], s[j:]...) which
//     re-slices in place and can never grow
//   - &T{...} and map/slice composite literals
//   - function literals (closure allocation)
//   - any call into package fmt (formatting allocates)
//   - interface boxing: passing or assigning a concrete basic-typed value
//     where an interface is expected
//
// Dynamic calls (interfaces, func values) are not traversed: the walk is
// deliberately intra-package and static, which keeps it sound for the
// simulator core where the hot path is concrete. `//nocvet:allowalloc
// <reason>` on the flagged line — or on the function declaration for a
// whole cold function — is the escape hatch, and the reason is mandatory.
func NewHotAlloc(roots []string) *Analyzer {
	rootSet := map[string]bool{}
	for _, r := range roots {
		rootSet[r] = true
	}
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags allocation-inducing constructs in functions reachable from the simulator hot path",
	}
	a.Run = func(pass *Pass) error {
		// Index every function declaration by its types object.
		decls := map[*types.Func]*ast.FuncDecl{}
		names := map[*types.Func]string{}
		var rootFns []*types.Func
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[obj] = fd
				name := funcDisplayName(obj)
				names[obj] = name
				if rootSet[name] {
					rootFns = append(rootFns, obj)
				}
			}
		}
		// BFS over static intra-package calls; via[f] is the caller through
		// which f was first reached, for readable "Step → phaseSAST" paths.
		via := map[*types.Func]*types.Func{}
		reached := map[*types.Func]bool{}
		queue := append([]*types.Func{}, rootFns...)
		for _, r := range rootFns {
			reached[r] = true
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := staticCallee(pass.TypesInfo, call)
				if callee == nil || reached[callee] {
					return true
				}
				if _, inPkg := decls[callee]; !inPkg {
					return true
				}
				reached[callee] = true
				via[callee] = fn
				queue = append(queue, callee)
				return true
			})
		}
		// Iterate files/decls (not the map) for deterministic report order.
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if obj == nil || !reached[obj] {
					continue
				}
				// A function-level annotation (on the declaration line or
				// the last doc line) marks the whole body a sanctioned
				// cold path.
				if pass.Suppressed(fd.Pos(), "allowalloc") {
					continue
				}
				path := callPath(obj, via, names)
				checkAllocs(pass, fd.Body, path)
			}
		}
		return nil
	}
	return a
}

// checkAllocs reports allocation-inducing constructs in one reachable body.
func checkAllocs(pass *Pass, body *ast.BlockStmt, path string) {
	report := func(pos ast.Node, format string, args ...interface{}) {
		if pass.Suppressed(pos.Pos(), "allowalloc") {
			return
		}
		args = append(args, path)
		pass.Reportf(pos.Pos(), format+" on the hot path (%s); move it off the path or annotate //nocvet:allowalloc <reason>", args...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "closure allocation")
			return false // its body runs only if the closure is called
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				report(n, "heap allocation &%s{...}", litTypeString(pass, cl))
				return false
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					report(n, "%s literal allocates", litTypeString(pass, n))
				}
			}
		case *ast.CallExpr:
			checkCallAlloc(pass, n, report)
		}
		return true
	})
}

// litTypeString renders a composite literal's type for a diagnostic.
func litTypeString(pass *Pass, cl *ast.CompositeLit) string {
	if t := pass.TypesInfo.TypeOf(cl); t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	return "composite"
}

// checkCallAlloc handles the call-shaped allocation sources: builtins,
// fmt, and interface boxing at the call boundary.
func checkCallAlloc(pass *Pass, call *ast.CallExpr, report func(ast.Node, string, ...interface{})) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				report(call, "%s allocates", b.Name())
			case "append":
				if !isSelfDeleteAppend(call) {
					report(call, "append may grow its backing array")
				}
			}
			return
		}
	}
	if callee := staticCallee(pass.TypesInfo, call); callee != nil {
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			report(call, "fmt.%s formats (and allocates)", callee.Name())
			return
		}
		// Interface boxing at the call boundary: a concrete basic-typed
		// argument passed as an interface parameter escapes to the heap.
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // passing a slice through, no boxing
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			if !types.IsInterface(pt) {
				continue
			}
			at := pass.TypesInfo.TypeOf(arg)
			if at == nil || types.IsInterface(at) {
				continue
			}
			if _, basic := at.Underlying().(*types.Basic); basic {
				report(arg, "interface boxing of %s argument", types.TypeString(at, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

// isSelfDeleteAppend recognizes append(s[:i], s[j:]...) — the in-place
// element-removal idiom, whose result length never exceeds the original
// length and therefore never reallocates.
func isSelfDeleteAppend(call *ast.CallExpr) bool {
	if !call.Ellipsis.IsValid() || len(call.Args) != 2 {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || dst.High == nil {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return sameSimpleExpr(dst.X, src.X)
}

// sameSimpleExpr reports structural equality for the small expression
// grammar that appears as a slice base (identifiers, field selections,
// constant indexes). Anything more exotic is conservatively unequal.
func sameSimpleExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameSimpleExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := ast.Unparen(b).(*ast.IndexExpr)
		return ok && sameSimpleExpr(a.X, b.X) && sameSimpleExpr(a.Index, b.Index)
	case *ast.BasicLit:
		b, ok := ast.Unparen(b).(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	}
	return false
}

// staticCallee resolves the *types.Func a call statically dispatches to:
// a plain function, or a method called on a concrete (non-interface)
// receiver. Dynamic calls resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return nil
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
		}
		return fn
	}
	return nil
}

// funcDisplayName renders a function as "Recv.Name" (pointerless receiver)
// or "Name", matching the root-spec syntax.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// callPath renders the discovery chain root -> ... -> fn.
func callPath(fn *types.Func, via map[*types.Func]*types.Func, names map[*types.Func]string) string {
	var parts []string
	for f := fn; f != nil; f = via[f] {
		parts = append(parts, names[f])
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " -> ")
}
