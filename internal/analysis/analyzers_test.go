package analysis_test

import (
	"testing"

	"tasp/internal/analysis"
	"tasp/internal/analysis/analysistest"
)

// The four analyzer fixtures each demonstrate at least one flagged and one
// permitted pattern, including the escape-hatch annotations (see the
// testdata/src sources for the expectations).

func TestDetRangeFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrange", analysis.NewDetRange())
}

func TestDetSourceFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/detsource", analysis.NewDetSource())
}

func TestHotAllocFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/hotalloc", analysis.NewHotAlloc([]string{"Net.Step"}))
}

func TestTelemetrySafeFixture(t *testing.T) {
	protected := []analysis.ProtectedField{
		{Type: "Router", Field: "occ"},
		{Type: "Router", Field: "inFlits"},
		{Type: "scheduler", Field: "flitsIn"},
		{Type: "scheduler", Field: "actIn"},
		{Type: "activeSet", Field: "w"},
	}
	analysistest.Run(t, "testdata/src/telemetrysafe",
		analysis.NewTelemetrySafe(protected, []string{"sched.go"}))
}

// TestAnnotFixture exercises the annotation parser end to end: unknown
// verbs and reason-less annotations are reported, a malformed annotation
// does not suppress the finding beneath it, and a well-formed annotation
// no analyzer consulted is reported as unused.
func TestAnnotFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/annot", analysis.NewDetRange())
}
