// Package stats provides the measurement utilities the experiment harness
// aggregates with: streaming histograms with percentile queries, running
// mean/max trackers, exponentially weighted averages and simple time-series
// reductions. Everything is deterministic and allocation-light so it can
// run inside the per-cycle simulation loop.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a power-of-two-bucketed streaming histogram of non-negative
// integer samples (latencies in cycles). Bucket i holds samples in
// [2^(i-1), 2^i), with bucket 0 holding {0}.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     uint64
	max     uint64
	min     uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, 40), min: math.MaxUint64}
}

// Reset empties the histogram in place, reusing the bucket storage.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxUint64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	return b
}

// Observe adds one sample.
func (h *Histogram) Observe(v uint64) {
	b := bucketOf(v)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Percentile returns an upper bound of the p-th percentile (0 < p <= 100):
// the upper edge of the bucket containing it. Bucketing makes this exact to
// within a factor of two, which is the right fidelity for latency tails.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		p = 1e-9
	}
	if p > 100 {
		p = 100
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	var acc uint64
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			if i == 0 {
				return 0
			}
			return (uint64(1) << uint(i)) - 1
		}
	}
	return h.max
}

// String renders count/mean/p50/p99/max on one line.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}

// Merge folds another histogram into this one.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.max > h.max {
			h.max = o.max
		}
		if o.min < h.min {
			h.min = o.min
		}
	}
}

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	// Alpha is the update weight in (0, 1].
	Alpha float64
	val   float64
	seen  bool
}

// Observe folds in a sample.
func (e *EWMA) Observe(v float64) {
	if !e.seen {
		e.val, e.seen = v, true
		return
	}
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.1
	}
	e.val += a * (v - e.val)
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.val }

// Series is an append-only time series of (cycle, value) points with simple
// reductions, used to post-process occupancy samples.
type Series struct {
	Cycles []uint64
	Values []float64
}

// Add appends a point.
func (s *Series) Add(cycle uint64, v float64) {
	s.Cycles = append(s.Cycles, cycle)
	s.Values = append(s.Values, v)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.Values) }

// Reset empties the series in place, keeping the grown point storage.
func (s *Series) Reset() {
	s.Cycles = s.Cycles[:0]
	s.Values = s.Values[:0]
}

// Max returns the maximum value and its cycle.
func (s *Series) Max() (cycle uint64, v float64) {
	for i, x := range s.Values {
		if i == 0 || x > v {
			v, cycle = x, s.Cycles[i]
		}
	}
	return
}

// MeanAfter returns the mean of values at cycles >= from.
func (s *Series) MeanAfter(from uint64) float64 {
	sum, n := 0.0, 0
	for i, c := range s.Cycles {
		if c >= from {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FirstAbove returns the first cycle at which the value reaches at least
// threshold (ok=false if never).
func (s *Series) FirstAbove(threshold float64) (uint64, bool) {
	for i, v := range s.Values {
		if v >= threshold {
			return s.Cycles[i], true
		}
	}
	return 0, false
}

// Spark renders the series as a compact ASCII sparkline.
func (s *Series) Spark(width int) string {
	if s.Len() == 0 || width <= 0 {
		return ""
	}
	marks := []byte("_.-=#@")
	_, max := s.Max()
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	step := float64(s.Len()) / float64(width)
	if step < 1 {
		step = 1
		width = s.Len()
	}
	for i := 0; i < width; i++ {
		idx := int(float64(i) * step)
		if idx >= s.Len() {
			idx = s.Len() - 1
		}
		level := int(s.Values[idx] / max * float64(len(marks)-1))
		b.WriteByte(marks[level])
	}
	return b.String()
}

// Quantiles computes exact quantiles of a small sample slice (sorted copy);
// for offline analyses where bucketing is too coarse.
func Quantiles(samples []float64, qs ...float64) []float64 {
	if len(samples) == 0 {
		return make([]float64, len(qs))
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		idx := int(q * float64(len(cp)-1))
		out[i] = cp[idx]
	}
	return out
}
