package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("empty histogram misbehaves: %s", h)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []uint64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 22 {
		t.Fatalf("mean %g", h.Mean())
	}
	if h.Max() != 100 || h.Min() != 1 {
		t.Fatalf("min/max %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram()
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Bucketed percentile is an upper bound within a factor of two.
	p50 := h.Percentile(50)
	if p50 < 500 || p50 > 1023 {
		t.Fatalf("p50 bound %d", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 990 || p99 > 2047 {
		t.Fatalf("p99 bound %d", p99)
	}
	if h.Percentile(100) < 1000 {
		t.Fatalf("p100 %d below max", h.Percentile(100))
	}
}

func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		prev := uint64(0)
		for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(10)
	b.Observe(1000)
	b.Observe(2)
	a.Merge(b)
	if a.Count() != 3 || a.Max() != 1000 || a.Min() != 2 {
		t.Fatalf("merge broken: %s", a)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Observe(7)
	if !strings.Contains(h.String(), "n=1") {
		t.Fatalf("string: %s", h)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first sample: %g", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("after second: %g", e.Value())
	}
	// Converges toward a constant input.
	for i := 0; i < 50; i++ {
		e.Observe(100)
	}
	if math.Abs(e.Value()-100) > 1e-6 {
		t.Fatalf("no convergence: %g", e.Value())
	}
}

func TestEWMADefaultAlpha(t *testing.T) {
	e := EWMA{} // invalid alpha falls back to 0.1
	e.Observe(0)
	e.Observe(10)
	if e.Value() != 1 {
		t.Fatalf("default alpha: %g", e.Value())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	for i := uint64(0); i < 10; i++ {
		s.Add(i*10, float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("len %d", s.Len())
	}
	cyc, v := s.Max()
	if cyc != 90 || v != 81 {
		t.Fatalf("max (%d, %g)", cyc, v)
	}
	if m := s.MeanAfter(70); m != (49+64+81)/3.0 {
		t.Fatalf("mean after: %g", m)
	}
	if c, ok := s.FirstAbove(25); !ok || c != 50 {
		t.Fatalf("first above: %d %v", c, ok)
	}
	if _, ok := s.FirstAbove(1e9); ok {
		t.Fatal("impossible threshold crossed")
	}
	if sp := s.Spark(5); len(sp) != 5 {
		t.Fatalf("spark %q", sp)
	}
	var empty Series
	if empty.Spark(10) != "" || empty.MeanAfter(0) != 0 {
		t.Fatal("empty series misbehaves")
	}
}

func TestQuantiles(t *testing.T) {
	qs := Quantiles([]float64{5, 1, 3, 2, 4}, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("quantiles %v", qs)
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Fatal("empty quantiles")
	}
}
