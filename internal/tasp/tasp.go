// Package tasp implements the paper's primary attack contribution: the
// target-activated sequential-payload (TASP) hardware trojan (Section III).
//
// A TASP trojan sits on one directed link between two routers, behind the
// upstream ECC encoder, and performs deep packet inspection on the physical
// 72-bit codeword. It has three components (Figure 3): a target comparator
// tapping a subset of the codeword wires, a Y-bit payload counter whose
// states select which two wires to flip, and an XOR tree that performs the
// flips. Two simultaneous flips are precisely what SECDED can detect but not
// correct, so every strike forces a switch-to-switch retransmission; the
// payload counter shifts the flip locations between strikes to disguise them
// as transient faults and dodge permanent-fault classification.
//
// Activation requires both an externally driven kill switch and a sighted
// target, giving the FSM three states: Idle (kill switch off), Active
// (armed, snooping) and Attacking (target seen, faults flowing).
package tasp

import (
	"fmt"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

// TargetKind selects which header fields the trojan's comparator taps
// (Table I's variants).
type TargetKind uint8

// Comparator variants, in the paper's order. The parenthesised widths are
// for the paper's default 4x4/concentration-4/4-VC header layout; on other
// layouts the routing-field variants widen with the id fields (WidthIn).
const (
	TargetFull    TargetKind = iota // vc + src + dest + mem (42 bits)
	TargetDest                      // destination router (4 bits)
	TargetSrc                       // source router (4 bits)
	TargetDestSrc                   // both routers (8 bits)
	TargetMem                       // memory address region (32 bits, masked)
	TargetVC                        // virtual channel (2 bits)
)

// String names the target kind as in Table I.
func (k TargetKind) String() string {
	switch k {
	case TargetFull:
		return "Full"
	case TargetDest:
		return "Dest"
	case TargetSrc:
		return "Src"
	case TargetDestSrc:
		return "Dest_Src"
	case TargetMem:
		return "Mem"
	case TargetVC:
		return "VC"
	default:
		return fmt.Sprintf("TargetKind(%d)", uint8(k))
	}
}

// Width returns the number of compared bits for the paper's hardware
// instance (Section V-A, Table I) — the default header layout. This is what
// the area/power model costs; use WidthIn for other layouts.
func (k TargetKind) Width() int { return k.WidthIn(flit.Default) }

// WidthIn returns the number of compared bits when the comparator is built
// against the given header layout: the routing-field variants scale with the
// layout's id widths, Full spans the layout's contiguous vc+src+dst+mem
// comparator window.
func (k TargetKind) WidthIn(l flit.Layout) int {
	switch k {
	case TargetFull:
		return int(l.FullBits)
	case TargetDest:
		return int(l.DstBits)
	case TargetSrc:
		return int(l.SrcBits)
	case TargetDestSrc:
		return int(l.SrcBits + l.DstBits)
	case TargetMem:
		return int(l.MemBits)
	case TargetVC:
		return int(l.VCBits)
	default:
		return 0
	}
}

// Target is the value programmed into the comparator.
type Target struct {
	Kind TargetKind
	// SrcR/DstR/VC are exact-match values for the routing-field variants.
	SrcR, DstR, VC uint8
	// VCMask restricts which VC bits are compared for the VC variant
	// (0 = compare both bits; the paper allows targets to be "ranges").
	VCMask uint8
	// Mem/MemMask define the address window for the Mem (and Full)
	// variants: a flit matches when mem&MemMask == Mem&MemMask.
	Mem, MemMask uint32
}

// ForDest returns a target that strikes packets heading to router dst.
func ForDest(dst uint8) Target { return Target{Kind: TargetDest, DstR: dst} }

// ForSrc returns a target that strikes packets originating at router src.
func ForSrc(src uint8) Target { return Target{Kind: TargetSrc, SrcR: src} }

// ForDestSrc returns a target matching one src->dst flow.
func ForDestSrc(src, dst uint8) Target {
	return Target{Kind: TargetDestSrc, SrcR: src, DstR: dst}
}

// ForVC returns a target that strikes one virtual channel.
func ForVC(vc uint8) Target { return Target{Kind: TargetVC, VC: vc} }

// ForVCRange returns a target that strikes every VC agreeing with vc on the
// bits set in mask — e.g. mask 0b10 strikes the upper (or lower) half of
// the VCs, a whole TDM domain.
func ForVCRange(vc, mask uint8) Target { return Target{Kind: TargetVC, VC: vc, VCMask: mask} }

// ForMem returns a target that strikes an address window.
func ForMem(base, mask uint32) Target {
	return Target{Kind: TargetMem, Mem: base, MemMask: mask}
}

// ForFull returns the full 42-bit target for a single flow.
func ForFull(src, dst, vc uint8, mem, mask uint32) Target {
	return Target{Kind: TargetFull, SrcR: src, DstR: dst, VC: vc, Mem: mem, MemMask: mask}
}

// wireTap is one tapped codeword wire and the value the comparator expects.
type wireTap struct {
	pos  int
	want uint
}

// compile lowers the target into codeword wire taps against one concrete
// header layout. The attacker knows both the header layout and the ECC
// layout, so logical header bits are translated to physical codeword
// positions via the ecc data-position map. Only head/single flits carry a
// header, so the type-field wires are tapped too (they qualify the match);
// a body flit whose corresponding payload bits happen to look like a
// matching head flit will falsely trigger the trojan — real collateral the
// paper's obfuscation analysis also acknowledges.
func (t Target) compile(l flit.Layout) []wireTap {
	var taps []wireTap
	field := func(shift, bits uint, val uint64) {
		for i := uint(0); i < bits; i++ {
			taps = append(taps, wireTap{
				pos:  ecc.DataPosition(int(shift + i)),
				want: uint(val>>i) & 1,
			})
		}
	}
	switch t.Kind {
	case TargetDest:
		field(l.DstShift, l.DstBits, uint64(t.DstR))
	case TargetSrc:
		field(l.SrcShift, l.SrcBits, uint64(t.SrcR))
	case TargetDestSrc:
		field(l.SrcShift, l.SrcBits, uint64(t.SrcR))
		field(l.DstShift, l.DstBits, uint64(t.DstR))
	case TargetVC:
		mask := t.VCMask
		if mask == 0 {
			mask = uint8((uint64(1) << l.VCBits) - 1)
		}
		for i := uint(0); i < l.VCBits; i++ {
			if mask>>i&1 == 0 {
				continue
			}
			taps = append(taps, wireTap{
				pos:  ecc.DataPosition(int(l.VCShift + i)),
				want: uint(t.VC>>i) & 1,
			})
		}
	case TargetMem:
		for i := uint(0); i < l.MemBits; i++ {
			if t.MemMask>>i&1 == 0 {
				continue
			}
			taps = append(taps, wireTap{
				pos:  ecc.DataPosition(int(l.MemShift + i)),
				want: uint(t.Mem>>i) & 1,
			})
		}
	case TargetFull:
		field(l.VCShift, l.VCBits, uint64(t.VC))
		field(l.SrcShift, l.SrcBits, uint64(t.SrcR))
		field(l.DstShift, l.DstBits, uint64(t.DstR))
		for i := uint(0); i < l.MemBits; i++ {
			if t.MemMask>>i&1 == 0 {
				continue
			}
			taps = append(taps, wireTap{
				pos:  ecc.DataPosition(int(l.MemShift + i)),
				want: uint(t.Mem>>i) & 1,
			})
		}
	}
	return taps
}

// State is the trojan FSM state (Figure 3).
type State uint8

// FSM states.
const (
	Idle      State = iota // kill switch off; dormant
	Active                 // armed; snooping for the target
	Attacking              // target sighted; injecting between payload states
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Attacking:
		return "attacking"
	default:
		return "state(?)"
	}
}

// HT is one TASP trojan instance — the flip family of the pluggable Trojan
// contract (trojan.go). It implements fault.Adversary (and the historical
// fault.Injector view) so it can be attached to any link tap point. The zero
// value is not usable; construct with New.
type HT struct {
	trigger
	yBits   int
	wires   []int // the Y attackable wires the payload counter selects among
	plState int   // current payload state (pair index)

	// Matches counts sighted targets; Injections counts fault strikes.
	Matches    uint64
	Injections uint64
}

// DefaultPayloadBits is the reference Y (payload-counter width): 8 bits
// select among 8 attackable wires, giving 28 two-wire payload states.
const DefaultPayloadBits = 8

// New constructs a TASP trojan for the given target with a Y-bit payload
// counter (Y attackable wires, Y*(Y-1)/2 payload states). The comparator is
// wired against the given header layout — a trojan fabricated for one
// substrate taps different physical wires than one for another. Y must be
// at least 2.
func New(target Target, yBits int, l flit.Layout) *HT {
	if yBits < 2 {
		panic("tasp: payload counter needs at least 2 bits")
	}
	h := &HT{
		trigger: newTrigger(target, l),
		yBits:   yBits,
	}
	// Spread the Y attackable wires evenly across the codeword, skewed off
	// the tapped wires so injections don't mask the trojan's own trigger.
	for i := 0; i < yBits; i++ {
		h.wires = append(h.wires, (i*ecc.CodewordBits/yBits+3)%ecc.CodewordBits)
	}
	return h
}

// Reset disarms the trojan and rewinds its FSM, payload counter and strike
// counters to the post-New state without allocating. The compiled comparator
// taps and attackable-wire table are functions of the target and layout
// alone, so they are preserved — simulation arenas memoize one HT per
// (target, layout) and Reset it between scenario points.
func (h *HT) Reset() {
	h.resetFSM()
	h.plState = 0
	h.Matches, h.Injections = 0, 0
}

// Kind implements Trojan.
func (h *HT) Kind() Kind { return KindFlip }

// Stats implements Trojan.
func (h *HT) Stats() (uint64, uint64) { return h.Matches, h.Injections }

// PayloadStates returns the number of distinct two-wire payload states.
func (h *HT) PayloadStates() int { return h.yBits * (h.yBits - 1) / 2 }

// payloadPair returns the two wires selected by the current payload state.
func (h *HT) payloadPair() (int, int) {
	// Enumerate unordered pairs (i, j) of the Y wires in a fixed sequence.
	s := h.plState
	for i := 0; i < h.yBits-1; i++ {
		n := h.yBits - 1 - i
		if s < n {
			return h.wires[i], h.wires[i+1+s]
		}
		s -= n
	}
	return h.wires[0], h.wires[1]
}

// Strike implements fault.Adversary: deep packet inspection on the codeword
// and, when armed and the target is sighted, a two-bit strike at the current
// payload state's wires, after which the payload counter advances ("the HT
// holds the payload state until the next fault injection"). Flips always
// forward — SECDED raising the NACK is the attack.
func (h *HT) Strike(_ uint64, cw ecc.Codeword, fr fault.Framing) (ecc.Codeword, fault.Outcome) {
	if !h.sighted(cw, fr) {
		return cw, fault.Forward
	}
	h.state = Attacking
	h.Matches++
	p1, p2 := h.payloadPair()
	cw = cw.Flip(p1).Flip(p2)
	h.plState = (h.plState + 1) % h.PayloadStates()
	h.Injections++
	return cw, fault.Forward
}

// Inspect is the fault.Injector view of Strike, kept for the logic-test
// campaigns that drive taps as plain word mutators.
func (h *HT) Inspect(cycle uint64, cw ecc.Codeword, fr fault.Framing) ecc.Codeword {
	out, _ := h.Strike(cycle, cw, fr)
	return out
}
