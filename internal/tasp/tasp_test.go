package tasp

import (
	"testing"
	"testing/quick"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

func headWord(h flit.Header) ecc.Codeword {
	h.Kind = flit.Single
	return ecc.Encode(flit.Default.Encode(h))
}

func TestIdleUntilKillSwitch(t *testing.T) {
	ht := New(ForDest(5), DefaultPayloadBits, flit.Default)
	cw := headWord(flit.Header{DstR: 5})
	if got := ht.Inspect(0, cw, fault.Framing{Head: true}); got != cw {
		t.Fatal("dormant trojan injected a fault")
	}
	if ht.State() != Idle {
		t.Fatalf("state %v, want idle", ht.State())
	}
	ht.SetKillSwitch(true)
	if ht.State() != Active {
		t.Fatalf("state %v after killsw, want active", ht.State())
	}
	if got := ht.Inspect(1, cw, fault.Framing{Head: true}); got == cw {
		t.Fatal("armed trojan did not strike its target")
	}
	if ht.State() != Attacking {
		t.Fatalf("state %v after strike, want attacking", ht.State())
	}
	ht.SetKillSwitch(false)
	if ht.State() != Idle {
		t.Fatal("kill switch off did not return the trojan to idle")
	}
	if got := ht.Inspect(2, cw, fault.Framing{Head: true}); got != cw {
		t.Fatal("disarmed trojan struck")
	}
}

func TestStrikeIsUncorrectable(t *testing.T) {
	// The core attack property: every strike flips exactly two bits, which
	// SECDED detects but cannot correct, forcing a retransmission.
	ht := New(ForDest(9), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	cw := headWord(flit.Header{DstR: 9, Mem: 0xabcd})
	for i := 0; i < 100; i++ {
		struck := ht.Inspect(uint64(i), cw, fault.Framing{Head: true})
		if struck == cw {
			t.Fatalf("strike %d missed", i)
		}
		_, st, _ := ecc.Decode(struck)
		if st != ecc.Uncorrectable {
			t.Fatalf("strike %d decoded as %v, want uncorrectable", i, st)
		}
	}
	if ht.Injections != 100 || ht.Matches != 100 {
		t.Fatalf("counters: %d injections, %d matches", ht.Injections, ht.Matches)
	}
}

func TestNonTargetPassesUntouched(t *testing.T) {
	ht := New(ForDest(9), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	for d := 0; d < 16; d++ {
		if d == 9 {
			continue
		}
		cw := headWord(flit.Header{DstR: uint8(d)})
		if ht.Inspect(0, cw, fault.Framing{Head: true}) != cw {
			t.Fatalf("trojan struck wrong destination %d", d)
		}
	}
	if ht.Injections != 0 {
		t.Fatal("injections counted on non-targets")
	}
}

func TestBodyFlitsNormallyIgnored(t *testing.T) {
	ht := New(ForDest(9), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	// A body flit whose payload would match the target but whose type
	// field says Body (01) must not trigger deep packet inspection.
	h := flit.Header{Kind: flit.Single, DstR: 9}
	w := flit.Default.Encode(h)
	w = (w &^ 3) | uint64(flit.Body) // overwrite type bits
	if got := ht.Inspect(0, ecc.Encode(w), fault.Framing{Head: false}); got != ecc.Encode(w) {
		t.Fatal("trojan struck a body flit")
	}
}

func TestPayloadStatesShift(t *testing.T) {
	ht := New(ForDest(3), 4, flit.Default) // 4 wires -> 6 payload states
	if ht.PayloadStates() != 6 {
		t.Fatalf("payload states %d, want 6", ht.PayloadStates())
	}
	ht.SetKillSwitch(true)
	cw := headWord(flit.Header{DstR: 3})
	seen := map[[2]uint64]bool{}
	for i := 0; i < 6; i++ {
		struck := ht.Inspect(uint64(i), cw, fault.Framing{Head: true})
		diff := [2]uint64{struck.Lo ^ cw.Lo, uint64(struck.Hi ^ cw.Hi)}
		if seen[diff] {
			t.Fatalf("payload state %d repeated a flip mask", i)
		}
		seen[diff] = true
	}
	// State 7 wraps to the first mask.
	struck := ht.Inspect(7, cw, fault.Framing{Head: true})
	diff := [2]uint64{struck.Lo ^ cw.Lo, uint64(struck.Hi ^ cw.Hi)}
	if !seen[diff] {
		t.Fatal("payload counter did not wrap")
	}
}

func TestAllVariantsMatchTheirFlows(t *testing.T) {
	hdr := flit.Header{VC: 2, SrcR: 4, DstR: 11, Mem: 0x0b001234}
	cases := []struct {
		name   string
		target Target
		miss   flit.Header
	}{
		{"dest", ForDest(11), flit.Header{VC: 2, SrcR: 4, DstR: 12, Mem: 0x0b001234}},
		{"src", ForSrc(4), flit.Header{VC: 2, SrcR: 5, DstR: 11, Mem: 0x0b001234}},
		{"destsrc", ForDestSrc(4, 11), flit.Header{VC: 2, SrcR: 4, DstR: 12, Mem: 0x0b001234}},
		{"vc", ForVC(2), flit.Header{VC: 1, SrcR: 4, DstR: 11, Mem: 0x0b001234}},
		{"mem", ForMem(0x0b000000, 0xff000000), flit.Header{VC: 2, SrcR: 4, DstR: 11, Mem: 0x0c001234}},
		{"full", ForFull(4, 11, 2, 0x0b000000, 0xff000000), flit.Header{VC: 3, SrcR: 4, DstR: 11, Mem: 0x0b001234}},
	}
	for _, tc := range cases {
		ht := New(tc.target, DefaultPayloadBits, flit.Default)
		ht.SetKillSwitch(true)
		hit := headWord(hdr)
		if ht.Inspect(0, hit, fault.Framing{Head: true}) == hit {
			t.Errorf("%s: target flow not struck", tc.name)
		}
		miss := headWord(tc.miss)
		if ht.Inspect(0, miss, fault.Framing{Head: true}) != miss {
			t.Errorf("%s: non-target flow struck", tc.name)
		}
	}
}

func TestTargetKindWidths(t *testing.T) {
	want := map[TargetKind]int{
		TargetFull: 42, TargetDest: 4, TargetSrc: 4,
		TargetDestSrc: 8, TargetMem: 32, TargetVC: 2,
	}
	for k, w := range want {
		if k.Width() != w {
			t.Errorf("%v width %d, want %d", k, k.Width(), w)
		}
	}
	names := map[TargetKind]string{
		TargetFull: "Full", TargetDest: "Dest", TargetSrc: "Src",
		TargetDestSrc: "Dest_Src", TargetMem: "Mem", TargetVC: "VC",
	}
	for k, n := range names {
		if k.String() != n {
			t.Errorf("%d name %q, want %q", k, k.String(), n)
		}
	}
}

func TestCompiledTapCountsMatchWidths(t *testing.T) {
	full := ForFull(1, 2, 3, 0xdead0000, 0xffffffff)
	if got := len(full.compile(flit.Default)); got != 42 {
		t.Fatalf("full target taps %d wires, want 42", got)
	}
	mem := ForMem(0x12340000, 0xffff0000)
	if got := len(mem.compile(flit.Default)); got != 16 {
		t.Fatalf("masked mem target taps %d wires, want 16", got)
	}
}

func TestStrikeAlwaysTwoFlipsProperty(t *testing.T) {
	ht := New(ForVC(1), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	f := func(src, dst uint8, mem uint32) bool {
		cw := headWord(flit.Header{VC: 1, SrcR: src & 15, DstR: dst & 15, Mem: mem})
		struck := ht.Inspect(0, cw, fault.Framing{Head: true})
		diff := struck.Xor(cw)
		return diff.Weight() == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnTinyCounter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 1-bit counter did not panic")
		}
	}()
	New(ForDest(1), 1, flit.Default)
}
