package tasp

import (
	"fmt"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

// Kind selects a trojan family: the attack it mounts once the comparator
// sights the target. All families share the TASP trigger architecture
// (kill switch + deep-packet-inspection comparator, Figure 3); they differ
// in the strike payload.
type Kind uint8

// Trojan families.
const (
	// KindFlip is the paper's TASP payload: two simultaneous wire flips,
	// exactly what SECDED detects but cannot correct, forcing a
	// switch-to-switch retransmission per strike (the NACK-flood DoS).
	KindFlip Kind = iota
	// KindDrop swallows the matched head flit and forges the link ACK
	// (Prasad et al., arXiv:1908.00289): the sender retires the flit as
	// delivered, the packet is beheaded, and — with no NACK ever raised —
	// neither the retransmission machinery nor the fault-triggered threat
	// detector engages.
	KindDrop
	// KindMisroute rewrites the matched head's destination-router field and
	// re-encodes the codeword, so SECDED decodes clean and the packet sails
	// to the hijack router instead of its destination.
	KindMisroute
	// KindThrottle is the adaptive dropper (adaptive.go): the KindDrop
	// payload gated by a duty cycle tuned to sit under the secure-ack
	// monitor's consecutive-window conviction streak.
	KindThrottle
	// KindCollude is the colluding dropper set (adaptive.go): N trojan
	// links rotate the strike duty so no single link's ack gap grows often
	// enough to accumulate a streak.
	KindCollude
)

// String names the kind as the campaign/CLI knobs spell it.
func (k Kind) String() string {
	switch k {
	case KindFlip:
		return "flip"
	case KindDrop:
		return "drop"
	case KindMisroute:
		return "misroute"
	case KindThrottle:
		return "throttle"
	case KindCollude:
		return "collude"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind resolves a kind name; the empty string is the flip default so
// pre-existing specs and flags keep their meaning.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "flip":
		return KindFlip, nil
	case "drop":
		return KindDrop, nil
	case "misroute":
		return KindMisroute, nil
	case "throttle":
		return KindThrottle, nil
	case "collude":
		return KindCollude, nil
	default:
		return KindFlip, fmt.Errorf("unknown trojan kind %q (want flip, drop, misroute, throttle or collude)", s)
	}
}

// Trojan is the pluggable adversary contract every trojan family implements:
// the wire-boundary Strike plus the shared kill-switch/target FSM and the
// statistics the experiment layer aggregates. HT (flip), Dropper and
// Misrouter all satisfy it, which is what lets core.Runner memoize and wire
// any family through the same arena plumbing.
type Trojan interface {
	fault.Adversary
	SetKillSwitch(on bool)
	KillSwitch() bool
	State() State
	Target() Target
	Kind() Kind
	// Stats returns sighted targets and executed strikes (flips, drops or
	// rewrites, by family).
	Stats() (matches, strikes uint64)
	// Reset rewinds the FSM and counters to the post-construction state
	// without allocating (arena reuse).
	Reset()
}

// trigger is the shared TASP trigger architecture: the externally driven
// kill switch, the compiled comparator taps and the Idle/Active/Attacking
// FSM. Every trojan family embeds it; the payload (what happens on a
// sighting) is the family's own.
type trigger struct {
	target Target
	taps   []wireTap
	killsw bool
	state  State
}

func newTrigger(target Target, l flit.Layout) trigger {
	return trigger{target: target, taps: target.compile(l)}
}

// Target returns the programmed target.
func (t *trigger) Target() Target { return t.target }

// State returns the current FSM state.
func (t *trigger) State() State { return t.state }

// SetKillSwitch drives the external backdoor enable. Turning it off returns
// the trojan to Idle, hiding it from logic testing (Section III-B).
func (t *trigger) SetKillSwitch(on bool) {
	t.killsw = on
	if !on {
		t.state = Idle
	} else if t.state == Idle {
		t.state = Active
	}
}

// KillSwitch reports the current enable.
func (t *trigger) KillSwitch() bool { return t.killsw }

// resetFSM disarms and rewinds the FSM (the compiled taps are a function of
// the target and layout alone and are preserved).
func (t *trigger) resetFSM() {
	t.killsw = false
	t.state = Idle
}

// matches runs the comparator over the codeword: every tapped wire must
// carry its expected value. Head qualification happens on the link's
// control wires (Framing), not in the payload.
func (t *trigger) matches(cw ecc.Codeword) bool {
	for _, tap := range t.taps {
		if cw.Bit(tap.pos) != tap.want {
			return false
		}
	}
	return true
}

// sighted reports whether an armed comparator matches this flit: the strike
// gate every family's payload sits behind. Only flits the control wires
// frame as header-carrying are inspected — body flits carry payload in the
// compared positions.
func (t *trigger) sighted(cw ecc.Codeword, fr fault.Framing) bool {
	return t.killsw && fr.Head && t.matches(cw)
}

// Dropper is the packet-drop trojan: on a sighting it swallows the head
// flit and forges the link acknowledgment. The beheaded packet's body flits
// still traverse the link (the comparator only fires on header framing) and
// are discarded as orphans at the downstream buffer front. No NACK is ever
// raised, so the fault-triggered detector and L-Ob never engage — the
// secure-ack monitor (internal/detect.AckMonitor) is the counter.
type Dropper struct {
	trigger
	// Matches counts sighted targets; Drops counts swallowed flits (always
	// equal for this family — every sighting drops).
	Matches uint64
	Drops   uint64
}

// NewDropper constructs a drop trojan for the given target, with the
// comparator wired against the given header layout.
func NewDropper(target Target, l flit.Layout) *Dropper {
	return &Dropper{trigger: newTrigger(target, l)}
}

// Kind implements Trojan.
func (d *Dropper) Kind() Kind { return KindDrop }

// Stats implements Trojan.
func (d *Dropper) Stats() (uint64, uint64) { return d.Matches, d.Drops }

// Reset implements Trojan.
func (d *Dropper) Reset() {
	d.resetFSM()
	d.Matches, d.Drops = 0, 0
}

// Strike implements fault.Adversary: swallow matched heads, forward
// everything else untouched.
func (d *Dropper) Strike(_ uint64, cw ecc.Codeword, fr fault.Framing) (ecc.Codeword, fault.Outcome) {
	if !d.sighted(cw, fr) {
		return cw, fault.Forward
	}
	d.state = Attacking
	d.Matches++
	d.Drops++
	return cw, fault.Swallow
}

// Misrouter is the misrouting trojan: on a sighting it decodes the
// codeword, rewrites the header's destination-router field to the hijack
// router, and re-encodes — a valid codeword, so the downstream SECDED sees
// nothing and the receiver's route computation obediently carries the
// packet to the wrong tile. Detection needs the receiving router to check
// route conformance (the arrival port must lie on the route function's path
// for the carried destination), which is what noc counts as
// RouteViolations.
type Misrouter struct {
	trigger
	layout flit.Layout
	hijack uint8
	// Matches counts sighted targets; Rewrites counts re-encoded headers.
	Matches  uint64
	Rewrites uint64
}

// NewMisrouter constructs a misroute trojan delivering matched packets to
// the hijack router instead of their destination.
func NewMisrouter(target Target, hijack uint8, l flit.Layout) *Misrouter {
	return &Misrouter{trigger: newTrigger(target, l), layout: l, hijack: hijack}
}

// Hijack returns the programmed hijack router.
func (m *Misrouter) Hijack() uint8 { return m.hijack }

// Kind implements Trojan.
func (m *Misrouter) Kind() Kind { return KindMisroute }

// Stats implements Trojan.
func (m *Misrouter) Stats() (uint64, uint64) { return m.Matches, m.Rewrites }

// Reset implements Trojan.
func (m *Misrouter) Reset() {
	m.resetFSM()
	m.Matches, m.Rewrites = 0, 0
}

// Strike implements fault.Adversary: rewrite the destination field of
// matched heads inside a valid re-encoded codeword.
func (m *Misrouter) Strike(_ uint64, cw ecc.Codeword, fr fault.Framing) (ecc.Codeword, fault.Outcome) {
	if !m.sighted(cw, fr) {
		return cw, fault.Forward
	}
	data, st, _ := ecc.Decode(cw)
	if st == ecc.Uncorrectable {
		// The word is already beyond use (a co-resident fault source struck
		// first); rewriting garbage would only help the defender.
		return cw, fault.Forward
	}
	m.state = Attacking
	m.Matches++
	mask := (uint64(1)<<m.layout.DstBits - 1) << m.layout.DstShift
	data = data&^mask | (uint64(m.hijack) << m.layout.DstShift & mask)
	m.Rewrites++
	return ecc.Encode(data), fault.Forward
}

// The three families all satisfy the pluggable contract.
var (
	_ Trojan = (*HT)(nil)
	_ Trojan = (*Dropper)(nil)
	_ Trojan = (*Misrouter)(nil)
)
