// Adaptive trojan families: droppers engineered against the defender's
// runtime detector rather than against SECDED. The secure-ack monitor
// (internal/detect.AckMonitor) convicts a dropper when the link's
// sent/received gap grows over MinGapWindows *consecutive* sampling windows,
// so a stealthy adversary has two obvious refinements, both from the
// refined/low-rate DoS regime of DL2Fence (arXiv:2403.13563):
//
//   - throttle: strike at a duty cycle tuned to the defender's sampling
//     period, so the gap grows in short bursts separated by quiet windows
//     and the consecutive-window streak never completes; or
//   - collude: spread the same strike budget across several trojan links
//     that take turns, so no single link's gap grows often enough to
//     accumulate a streak even though the victim flow bleeds continuously.
//
// Both families are caught by the monitor's cumulative-deficit channel (and,
// for collusion, the cross-link fused view) — see internal/detect/ack.go.
package tasp

import (
	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

// Duty-cycle defaults, tuned against the defender's default 25-cycle
// sampling window (core.ExperimentConfig.SampleEvery): one active window
// followed by one quiet window, so the streak detector reads
// grow/quiet/grow/quiet and never reaches DefaultMinGapWindows.
const (
	// DefaultDutyPeriod is the duty-cycle length in cycles (two default
	// sampling windows).
	DefaultDutyPeriod = 50
	// DefaultDutyActive is how many cycles of each period the trojan
	// strikes (one default sampling window).
	DefaultDutyActive = 25
)

// dutyOn reports whether a throttled trojan is in the active span of its
// duty cycle. The active span is cycles 1..active of each period (1-based,
// not 0-based) so it aligns with the defender's sampling windows, which
// cover cycles (k*w, (k+1)*w] — the sample is taken after the cycle runs.
// A 0-based span would leak exactly one strike cycle into every "quiet"
// window and hand the streak detector an unbroken run of growing windows.
func dutyOn(cycle, period, active uint64) bool {
	p := cycle % period
	return p >= 1 && p <= active
}

// ThrottledDropper is the adaptive drop trojan: identical strike payload to
// Dropper (swallow the matched head, forge the link ACK) but gated by a duty
// cycle. At the default tuning it drops half the victim's matched heads —
// still a heavy DoS — while the per-link ack-gap streak alternates
// grow/quiet and the stock consecutive-window detector stays at
// AckHealthy/AckSuspect forever.
type ThrottledDropper struct {
	trigger
	// Period and Active define the duty cycle in cycles: the trojan strikes
	// during the first Active cycles of every Period.
	Period, Active uint64
	// Matches counts sighted targets (on- and off-duty); Drops counts
	// swallowed flits (on-duty sightings only).
	Matches uint64
	Drops   uint64
}

// NewThrottledDropper constructs a duty-cycled drop trojan. period/active
// <= 0 take the defaults tuned against the default sampling window.
func NewThrottledDropper(target Target, l flit.Layout, period, active int) *ThrottledDropper {
	if period <= 0 {
		period = DefaultDutyPeriod
	}
	if active <= 0 {
		active = DefaultDutyActive
	}
	if active > period {
		active = period
	}
	return &ThrottledDropper{
		trigger: newTrigger(target, l),
		Period:  uint64(period),
		Active:  uint64(active),
	}
}

// Kind implements Trojan.
func (d *ThrottledDropper) Kind() Kind { return KindThrottle }

// Stats implements Trojan.
func (d *ThrottledDropper) Stats() (uint64, uint64) { return d.Matches, d.Drops }

// Reset implements Trojan.
func (d *ThrottledDropper) Reset() {
	d.resetFSM()
	d.Matches, d.Drops = 0, 0
}

// Strike implements fault.Adversary: swallow matched heads while on duty,
// forward everything else (including off-duty sightings) untouched.
func (d *ThrottledDropper) Strike(cycle uint64, cw ecc.Codeword, fr fault.Framing) (ecc.Codeword, fault.Outcome) {
	if !d.sighted(cw, fr) {
		return cw, fault.Forward
	}
	d.Matches++
	if !dutyOn(cycle, d.Period, d.Active) {
		return cw, fault.Forward
	}
	d.state = Attacking
	d.Drops++
	return cw, fault.Swallow
}

// Collusion coordinates a set of trojan links that take turns striking:
// time is cut into slices of Slice cycles and slice s belongs to link
// s mod n. Each member link's ack gap grows only during its own slices, so
// with Slice at most (MinGapWindows-1) sampling windows no member ever
// accumulates a conviction streak — while the victim flow is struck in
// every slice by someone. The rotation is a pure function of the cycle, so
// colluders need no runtime channel between them (a shared clock is all the
// hardware requires) and the schedule is deterministic.
type Collusion struct {
	// Slice is the duty-slot length in cycles.
	Slice uint64
}

// NewCollusion returns a coordinator with the given slice length (<= 0
// takes DefaultDutyPeriod: two default sampling windows per turn, one short
// of the default conviction streak).
func NewCollusion(slice int) *Collusion {
	if slice <= 0 {
		slice = DefaultDutyPeriod
	}
	return &Collusion{Slice: uint64(slice)}
}

// onDuty reports whether member idx of n is the striker for this cycle.
// The slice index is 1-based-aligned like dutyOn, for the same
// window-boundary reason.
func (c *Collusion) onDuty(cycle uint64, idx, n int) bool {
	if n <= 0 {
		return false
	}
	return int(((cycle+c.Slice-1)/c.Slice)%uint64(n)) == idx
}

// ColludingDropper is one member of a colluding drop set: the Dropper
// payload gated by the coordinator's rotation.
type ColludingDropper struct {
	trigger
	coord *Collusion
	idx   int
	n     int
	// Matches counts sighted targets (on- and off-duty); Drops counts
	// swallowed flits (own-slice sightings only).
	Matches uint64
	Drops   uint64
}

// NewColludingDropper constructs one member of a colluding set. Its role
// (index and set size) is assigned with SetRole once the set is final.
func NewColludingDropper(target Target, l flit.Layout, coord *Collusion) *ColludingDropper {
	return &ColludingDropper{trigger: newTrigger(target, l), coord: coord}
}

// SetRole assigns the member's rotation slot: it strikes in slices where
// slice mod n == idx. The runner reassigns roles whenever the deployed set
// size changes (memoized trojan sets are sliced per point).
func (d *ColludingDropper) SetRole(idx, n int) { d.idx, d.n = idx, n }

// Role returns the member's rotation slot and the set size.
func (d *ColludingDropper) Role() (idx, n int) { return d.idx, d.n }

// Kind implements Trojan.
func (d *ColludingDropper) Kind() Kind { return KindCollude }

// Stats implements Trojan.
func (d *ColludingDropper) Stats() (uint64, uint64) { return d.Matches, d.Drops }

// Reset implements Trojan. The role survives: it is re-assigned by the
// deployer per point anyway.
func (d *ColludingDropper) Reset() {
	d.resetFSM()
	d.Matches, d.Drops = 0, 0
}

// Strike implements fault.Adversary: swallow matched heads during the
// member's own slices, forward everything else untouched.
func (d *ColludingDropper) Strike(cycle uint64, cw ecc.Codeword, fr fault.Framing) (ecc.Codeword, fault.Outcome) {
	if !d.sighted(cw, fr) {
		return cw, fault.Forward
	}
	d.Matches++
	if !d.coord.onDuty(cycle, d.idx, d.n) {
		return cw, fault.Forward
	}
	d.state = Attacking
	d.Drops++
	return cw, fault.Swallow
}

// The adaptive families satisfy the pluggable contract too.
var (
	_ Trojan = (*ThrottledDropper)(nil)
	_ Trojan = (*ColludingDropper)(nil)
)
