package tasp

import (
	"testing"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

func BenchmarkInspectMiss(b *testing.B) {
	ht := New(ForDest(9), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	cw := ecc.Encode(flit.Default.Encode(flit.Header{Kind: flit.Single, DstR: 5}))
	fr := fault.Framing{Head: true, Tail: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Inspect(uint64(i), cw, fr)
	}
}

func BenchmarkInspectStrike(b *testing.B) {
	ht := New(ForDest(9), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	cw := ecc.Encode(flit.Default.Encode(flit.Header{Kind: flit.Single, DstR: 9}))
	fr := fault.Framing{Head: true, Tail: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Inspect(uint64(i), cw, fr)
	}
}

func BenchmarkInspectFullTarget(b *testing.B) {
	ht := New(ForFull(3, 9, 1, 0x09000000, 0xff000000), DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	cw := ecc.Encode(flit.Default.Encode(flit.Header{Kind: flit.Single, VC: 1, SrcR: 3, DstR: 9, Mem: 0x09001234}))
	fr := fault.Framing{Head: true, Tail: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Inspect(uint64(i), cw, fr)
	}
}
