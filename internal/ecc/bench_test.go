package ecc

import "testing"

func BenchmarkEncode(b *testing.B) {
	var sink Codeword
	for i := 0; i < b.N; i++ {
		sink = Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = sink
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0xdeadbeefcafebabe)
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}

func BenchmarkDecodeCorrect(b *testing.B) {
	cw := Encode(0xdeadbeefcafebabe).Flip(17)
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}
