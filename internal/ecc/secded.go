// Package ecc implements the Hamming(72,64) SECDED code the paper assumes on
// every router-to-router link: single-error correction, double-error
// detection. One injected fault is silently corrected by the receiver; two
// simultaneous faults are detected but uncorrectable and force a switch-to-
// switch retransmission — exactly the response the TASP hardware trojan
// exploits to mount its denial-of-service attack.
//
// The codeword layout is the classic extended Hamming construction: 72 bit
// positions, position 0 holds the overall (extended) parity, positions that
// are powers of two (1, 2, 4, 8, 16, 32, 64) hold the Hamming check bits, and
// the remaining 64 positions hold data bits in ascending order. The package
// exports the data-bit <-> codeword-position maps because the attacker is
// assumed to know the code (Section III-B): the TASP comparator taps codeword
// wires, not logical header bits.
package ecc

import "math/bits"

// CodewordBits is the width of an encoded link word.
const CodewordBits = 72

// DataBits is the width of the information word (one flit payload).
const DataBits = 64

// CheckBits counts the redundancy: 7 Hamming check bits + 1 overall parity.
const CheckBits = CodewordBits - DataBits

// Status is the outcome of decoding a received codeword.
type Status uint8

const (
	// OK means the codeword arrived with no detectable error.
	OK Status = iota
	// Corrected means a single-bit error was detected and corrected.
	Corrected
	// Uncorrectable means a double-bit error was detected; the decoder
	// cannot repair it and the flit must be retransmitted.
	Uncorrectable
)

// String names the decode status.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return "status(?)"
	}
}

// Codeword is a 72-bit encoded link word. Bit i of the codeword is bit i%64
// of Lo for i < 64 and bit i-64 of Hi otherwise.
type Codeword struct {
	Lo uint64 // codeword bits 0..63
	Hi uint8  // codeword bits 64..71
}

// Bit returns codeword bit i (0 <= i < 72).
func (c Codeword) Bit(i int) uint {
	if i < 64 {
		return uint(c.Lo>>uint(i)) & 1
	}
	return uint(c.Hi>>uint(i-64)) & 1
}

// Flip toggles codeword bit i and returns the modified codeword.
func (c Codeword) Flip(i int) Codeword {
	if i < 64 {
		c.Lo ^= 1 << uint(i)
	} else {
		c.Hi ^= 1 << uint(i-64)
	}
	return c
}

// Xor applies a 72-bit flip mask (same layout as Codeword) to the codeword.
func (c Codeword) Xor(m Codeword) Codeword {
	c.Lo ^= m.Lo
	c.Hi ^= m.Hi
	return c
}

// dataPos[d] is the codeword position of data bit d; posData[p] is the data
// bit stored at codeword position p, or -1 for parity positions.
var (
	dataPos [DataBits]int
	posData [CodewordBits]int
)

// Precomputed acceleration structures. Encode/Decode sit on the simulator's
// per-traversal hot path (every link crossing encodes and decodes), so the
// bit-at-a-time construction is folded into byte-indexed scatter/gather
// tables plus parity masks evaluated with popcounts. The tables are derived
// from the same dataPos/posData layout the package exports, so the emitted
// codewords are bit-for-bit those of the reference construction (the golden
// matrix model in golden_test.go cross-checks this).
var (
	// spreadTab[k][v] scatters byte k of the data word (value v) into its
	// codeword positions (parallel Lo/Hi planes, so Encode moves words, not
	// structs).
	spreadLo [8][256]uint64
	spreadHi [8][256]uint8
	// gatherTab[k][v] collects the data bits carried by byte k of the
	// codeword (byte 8 is the Hi octet).
	gatherTab [9][256]uint64
	// chkMask[i] selects every codeword position p >= 1 with bit i set in
	// its index — the coverage of Hamming check bit 2^i (including the
	// check position itself, which is zero at encode time).
	chkMaskLo [7]uint64
	chkMaskHi [7]uint8
)

func init() {
	d := 0
	for p := 0; p < CodewordBits; p++ {
		posData[p] = -1
		if p == 0 || p&(p-1) == 0 { // overall parity at 0, checks at powers of 2
			continue
		}
		posData[p] = d
		dataPos[d] = p
		d++
	}
	if d != DataBits {
		panic("ecc: layout produced wrong data width")
	}
	for k := 0; k < 8; k++ {
		for v := 0; v < 256; v++ {
			var c Codeword
			for j := 0; j < 8; j++ {
				if v>>uint(j)&1 == 1 {
					c = c.Flip(dataPos[k*8+j])
				}
			}
			spreadLo[k][v] = c.Lo
			spreadHi[k][v] = c.Hi
		}
	}
	for k := 0; k < 9; k++ {
		for v := 0; v < 256; v++ {
			var data uint64
			for j := 0; j < 8; j++ {
				p := k*8 + j
				if p < CodewordBits && posData[p] >= 0 && v>>uint(j)&1 == 1 {
					data |= 1 << uint(posData[p])
				}
			}
			gatherTab[k][v] = data
		}
	}
	for i := 0; i < 7; i++ {
		for p := 1; p < CodewordBits; p++ {
			if p&(1<<uint(i)) == 0 {
				continue
			}
			if p < 64 {
				chkMaskLo[i] |= 1 << uint(p)
			} else {
				chkMaskHi[i] |= 1 << uint(p-64)
			}
		}
	}
}

// DataPosition returns the codeword position that carries data bit d.
func DataPosition(d int) int { return dataPos[d] }

// PositionData returns the data bit carried at codeword position p, or -1 if
// p is a parity position.
func PositionData(p int) int { return posData[p] }

// Encode computes the SECDED codeword for a 64-bit data word.
func Encode(data uint64) Codeword {
	// Scatter the data bytes into their codeword positions.
	lo := spreadLo[0][data&0xff] | spreadLo[1][data>>8&0xff] |
		spreadLo[2][data>>16&0xff] | spreadLo[3][data>>24&0xff] |
		spreadLo[4][data>>32&0xff] | spreadLo[5][data>>40&0xff] |
		spreadLo[6][data>>48&0xff] | spreadLo[7][data>>56]
	hi := spreadHi[0][data&0xff] | spreadHi[1][data>>8&0xff] |
		spreadHi[2][data>>16&0xff] | spreadHi[3][data>>24&0xff] |
		spreadHi[4][data>>32&0xff] | spreadHi[5][data>>40&0xff] |
		spreadHi[6][data>>48&0xff] | spreadHi[7][data>>56]
	c := Codeword{Lo: lo, Hi: hi}
	// Hamming check bits: check bit at position 2^i covers every position
	// whose index has bit i set. The check positions themselves are still
	// zero here, so the mask parity is exactly the data-coverage parity.
	for i := 0; i < 7; i++ {
		if (bits.OnesCount64(c.Lo&chkMaskLo[i])+bits.OnesCount8(c.Hi&chkMaskHi[i]))&1 == 1 {
			c = c.Flip(1 << uint(i))
		}
	}
	// Overall parity at position 0 makes total parity even (position 0 is
	// still zero, so whole-word parity equals the parity over 1..71).
	if (bits.OnesCount64(c.Lo)+bits.OnesCount8(c.Hi))&1 == 1 {
		c.Lo ^= 1
	}
	return c
}

// extractData gathers the 64 data bits out of a codeword.
func extractData(c Codeword) uint64 {
	data := gatherTab[0][c.Lo&0xff]
	for k := 1; k < 8; k++ {
		data |= gatherTab[k][c.Lo>>uint(k*8)&0xff]
	}
	return data | gatherTab[8][c.Hi]
}

// Decode checks and, when possible, corrects a received codeword. It returns
// the recovered 64-bit data word, the decode status and the raw Hamming
// syndrome (the position of the flipped bit for single-bit errors; for
// double-bit errors the syndrome is a nonzero fingerprint of the error pair
// that the threat detector records in its fault history).
func Decode(c Codeword) (data uint64, st Status, syndrome int) {
	// Syndrome: parity of each check's coverage mask (which includes the
	// check position itself on the decode side).
	syn := 0
	for i := 0; i < 7; i++ {
		if (bits.OnesCount64(c.Lo&chkMaskLo[i])+bits.OnesCount8(c.Hi&chkMaskHi[i]))&1 == 1 {
			syn |= 1 << uint(i)
		}
	}
	overall := uint(bits.OnesCount64(c.Lo)+bits.OnesCount8(c.Hi)) & 1

	switch {
	case syn == 0 && overall == 0:
		return extractData(c), OK, 0
	case syn == 0 && overall == 1:
		// The overall parity bit itself flipped; data is intact.
		return extractData(c), Corrected, 0
	case overall == 1:
		// Odd number of flips with a nonzero syndrome: single-bit error.
		if syn < CodewordBits {
			c = c.Flip(syn)
		}
		return extractData(c), Corrected, syn
	default:
		// Nonzero syndrome with even overall parity: double-bit error.
		return extractData(c), Uncorrectable, syn
	}
}

// Weight returns the Hamming weight (number of set bits) of the codeword,
// used by BIST to sanity-check pattern transmission.
func (c Codeword) Weight() int {
	return bits.OnesCount64(c.Lo) + bits.OnesCount8(c.Hi)
}
