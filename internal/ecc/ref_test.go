package ecc

import (
	"testing"
	"testing/quick"
)

// This file keeps the original bit-at-a-time SECDED construction as an
// executable reference and cross-checks the table/popcount production
// implementation against it: identical codewords for every data word and
// identical decode verdicts (data, status, syndrome) under no-error,
// every single-bit and every double-bit flip pattern.

// encodeRef is the reference encoder: bit-by-bit data placement, then each
// Hamming check computed by walking every covered position, then the overall
// parity.
func encodeRef(data uint64) Codeword {
	var c Codeword
	for d := 0; d < DataBits; d++ {
		if data>>uint(d)&1 == 1 {
			c = c.Flip(dataPos[d])
		}
	}
	for i := 0; i < 7; i++ {
		pb := 1 << uint(i)
		var par uint
		for p := 1; p < CodewordBits; p++ {
			if p&pb != 0 && p != pb {
				par ^= c.Bit(p)
			}
		}
		if par == 1 {
			c = c.Flip(pb)
		}
	}
	var par uint
	for p := 1; p < CodewordBits; p++ {
		par ^= c.Bit(p)
	}
	if par == 1 {
		c = c.Flip(0)
	}
	return c
}

// decodeRef is the reference decoder: per-check parity walks and a
// position-by-position data gather.
func decodeRef(c Codeword) (data uint64, st Status, syndrome int) {
	syn := 0
	for i := 0; i < 7; i++ {
		pb := 1 << uint(i)
		var par uint
		for p := 1; p < CodewordBits; p++ {
			if p&pb != 0 {
				par ^= c.Bit(p)
			}
		}
		if par == 1 {
			syn |= pb
		}
	}
	var overall uint
	for p := 0; p < CodewordBits; p++ {
		overall ^= c.Bit(p)
	}
	extract := func(c Codeword) uint64 {
		var data uint64
		for d := 0; d < DataBits; d++ {
			if c.Bit(dataPos[d]) == 1 {
				data |= 1 << uint(d)
			}
		}
		return data
	}
	switch {
	case syn == 0 && overall == 0:
		return extract(c), OK, 0
	case syn == 0 && overall == 1:
		return extract(c), Corrected, 0
	case overall == 1:
		if syn < CodewordBits {
			c = c.Flip(syn)
		}
		return extract(c), Corrected, syn
	default:
		return extract(c), Uncorrectable, syn
	}
}

func TestEncodeMatchesReference(t *testing.T) {
	f := func(data uint64) bool { return Encode(data) == encodeRef(data) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for _, data := range []uint64{0, ^uint64(0), 1, 1 << 63, 0xdeadbeefcafef00d} {
		if Encode(data) != encodeRef(data) {
			t.Fatalf("Encode(%#x) diverges from reference", data)
		}
	}
}

func TestDecodeMatchesReferenceUnderAllFlips(t *testing.T) {
	check := func(t *testing.T, c Codeword) {
		t.Helper()
		d1, s1, y1 := Decode(c)
		d2, s2, y2 := decodeRef(c)
		if d1 != d2 || s1 != s2 || y1 != y2 {
			t.Fatalf("decode diverges on %+v: (%#x,%v,%d) vs ref (%#x,%v,%d)",
				c, d1, s1, y1, d2, s2, y2)
		}
	}
	for _, data := range []uint64{0, ^uint64(0), 0x0123456789abcdef, 0x5555aaaa5555aaaa} {
		cw := Encode(data)
		check(t, cw)
		for i := 0; i < CodewordBits; i++ {
			check(t, cw.Flip(i))
			for j := i + 1; j < CodewordBits; j++ {
				check(t, cw.Flip(i).Flip(j))
			}
		}
	}
}
