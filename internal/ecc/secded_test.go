package ecc

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xffffffffffffffff, 0xdeadbeefcafebabe, 1 << 63} {
		got, st, syn := Decode(Encode(d))
		if st != OK || syn != 0 || got != d {
			t.Fatalf("clean decode of %016x: got %016x st=%v syn=%d", d, got, st, syn)
		}
	}
}

func TestEncodeDecodeCleanProperty(t *testing.T) {
	f := func(d uint64) bool {
		got, st, _ := Decode(Encode(d))
		return st == OK && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllSingleBitErrorsCorrected(t *testing.T) {
	data := uint64(0xa5a5_5a5a_0f0f_f0f0)
	cw := Encode(data)
	for p := 0; p < CodewordBits; p++ {
		got, st, _ := Decode(cw.Flip(p))
		if st != Corrected {
			t.Fatalf("flip at %d: status %v, want corrected", p, st)
		}
		if got != data {
			t.Fatalf("flip at %d: data %016x, want %016x", p, got, data)
		}
	}
}

func TestSingleBitErrorsCorrectedProperty(t *testing.T) {
	f := func(d uint64, p uint8) bool {
		pos := int(p) % CodewordBits
		got, st, _ := Decode(Encode(d).Flip(pos))
		return st == Corrected && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllDoubleBitErrorsDetected(t *testing.T) {
	// Exhaustive over all 72*71/2 pairs: every double error must be flagged
	// uncorrectable — this is the exact property the TASP attack relies on.
	data := uint64(0x0123_4567_89ab_cdef)
	cw := Encode(data)
	for i := 0; i < CodewordBits; i++ {
		for j := i + 1; j < CodewordBits; j++ {
			_, st, syn := Decode(cw.Flip(i).Flip(j))
			if st != Uncorrectable {
				t.Fatalf("flips at (%d,%d): status %v, want uncorrectable", i, j, st)
			}
			if syn == 0 {
				t.Fatalf("flips at (%d,%d): zero syndrome", i, j)
			}
		}
	}
}

func TestDoubleBitErrorsDetectedProperty(t *testing.T) {
	f := func(d uint64, a, b uint8) bool {
		i, j := int(a)%CodewordBits, int(b)%CodewordBits
		if i == j {
			j = (j + 1) % CodewordBits
		}
		_, st, _ := Decode(Encode(d).Flip(i).Flip(j))
		return st == Uncorrectable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataPositionMaps(t *testing.T) {
	seen := map[int]bool{}
	for d := 0; d < DataBits; d++ {
		p := DataPosition(d)
		if p <= 0 || p >= CodewordBits {
			t.Fatalf("data bit %d mapped to invalid position %d", d, p)
		}
		if p&(p-1) == 0 {
			t.Fatalf("data bit %d mapped to parity position %d", d, p)
		}
		if seen[p] {
			t.Fatalf("position %d mapped twice", p)
		}
		seen[p] = true
		if PositionData(p) != d {
			t.Fatalf("inverse map broken at data bit %d (pos %d)", d, p)
		}
	}
	// Parity positions must report -1.
	for _, p := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		if PositionData(p) != -1 {
			t.Fatalf("parity position %d claims data bit %d", p, PositionData(p))
		}
	}
}

func TestDataBitTravelsToItsPosition(t *testing.T) {
	for d := 0; d < DataBits; d++ {
		cw := Encode(uint64(1) << uint(d))
		if cw.Bit(DataPosition(d)) != 1 {
			t.Fatalf("data bit %d not present at its position %d", d, DataPosition(d))
		}
	}
}

func TestCodewordBitFlipXor(t *testing.T) {
	var c Codeword
	c = c.Flip(0).Flip(63).Flip(64).Flip(71)
	for _, p := range []int{0, 63, 64, 71} {
		if c.Bit(p) != 1 {
			t.Fatalf("bit %d not set after flip", p)
		}
	}
	if c.Weight() != 4 {
		t.Fatalf("weight = %d, want 4", c.Weight())
	}
	m := Codeword{Lo: 1 | 1<<63, Hi: 0x81}
	c = c.Xor(m)
	if c.Weight() != 0 {
		t.Fatalf("xor did not clear: weight %d", c.Weight())
	}
}

func TestTripleErrorsAreNotSilentlyAccepted(t *testing.T) {
	// SECDED makes no promise for 3 flips, but the decoder must never
	// return OK with wrong data: 3 flips always show odd overall parity and
	// decode as a (mis)correction, never as a clean word.
	data := uint64(0xfeed_face_dead_beef)
	cw := Encode(data)
	tested := 0
	for i := 0; i < CodewordBits; i += 7 {
		for j := i + 1; j < CodewordBits; j += 5 {
			for k := j + 1; k < CodewordBits; k += 3 {
				_, st, _ := Decode(cw.Flip(i).Flip(j).Flip(k))
				if st == OK {
					t.Fatalf("triple flip (%d,%d,%d) decoded as clean", i, j, k)
				}
				tested++
			}
		}
	}
	if tested == 0 {
		t.Fatal("no triples tested")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{OK: "ok", Corrected: "corrected", Uncorrectable: "uncorrectable"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q want %q", st, st.String(), want)
		}
	}
}
