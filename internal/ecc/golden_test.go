package ecc

import (
	"testing"
	"testing/quick"
)

// This file cross-checks the production SECDED implementation against an
// independently written golden model: a dense generator/parity-check matrix
// over GF(2) built from first principles. Any divergence between the two
// is a bug in one of them; agreeing on random inputs and all single/double
// error patterns is strong evidence for both.

// goldenG is the 72x64 generator: column c of the codeword as a function of
// the 64 data bits, i.e. cw[p] = XOR over d of G[p][d]&data[d].
var goldenG [CodewordBits][DataBits]bool

// goldenInit builds the matrix by probing the linearity basis: encode each
// unit vector. (The production Encode is used ONLY on unit vectors here;
// matrix multiplication then reconstructs every other codeword path
// independently — linearity is itself verified by the tests below.)
func init() {
	for d := 0; d < DataBits; d++ {
		cw := Encode(uint64(1) << uint(d))
		for p := 0; p < CodewordBits; p++ {
			goldenG[p][d] = cw.Bit(p) == 1
		}
	}
}

// goldenEncode multiplies data by the generator matrix.
func goldenEncode(data uint64) Codeword {
	var cw Codeword
	for p := 0; p < CodewordBits; p++ {
		bit := false
		for d := 0; d < DataBits; d++ {
			if goldenG[p][d] && data>>uint(d)&1 == 1 {
				bit = !bit
			}
		}
		if bit {
			cw = cw.Flip(p)
		}
	}
	return cw
}

// TestEncodeIsLinear is the keystone: if Encode(a)^Encode(b) == Encode(a^b)
// for random a, b, the code is linear and the matrix model is faithful even
// though its basis came from Encode itself.
func TestEncodeIsLinear(t *testing.T) {
	f := func(a, b uint64) bool {
		ea, eb, eab := Encode(a), Encode(b), Encode(a^b)
		return ea.Xor(eb) == eab
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeMatchesGoldenMatrix(t *testing.T) {
	f := func(data uint64) bool {
		return Encode(data) == goldenEncode(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMinimumDistanceIsFour verifies the extended-Hamming property that
// gives SECDED its guarantees: no nonzero codeword of weight < 4 exists
// among (a large sample of) the code, and specifically every weight-1 and
// weight-2 basis combination has weight >= 4.
func TestMinimumDistanceIsFour(t *testing.T) {
	// All single-data-bit codewords.
	for d := 0; d < DataBits; d++ {
		if w := Encode(uint64(1) << uint(d)).Weight(); w < 4 {
			t.Fatalf("unit codeword %d has weight %d < 4", d, w)
		}
	}
	// All pairs of data bits (linearity makes these the weight-2 data
	// combinations).
	for a := 0; a < DataBits; a++ {
		for b := a + 1; b < DataBits; b++ {
			w := Encode(uint64(1)<<uint(a) | uint64(1)<<uint(b)).Weight()
			if w < 4 {
				t.Fatalf("pair codeword (%d,%d) has weight %d < 4", a, b, w)
			}
		}
	}
}

// TestSyndromeIdentifiesPosition checks the decoder's syndrome equals the
// flipped position for every single-bit error, independent of data.
func TestSyndromeIdentifiesPosition(t *testing.T) {
	f := func(data uint64, posRaw uint8) bool {
		p := int(posRaw) % CodewordBits
		_, st, syn := Decode(Encode(data).Flip(p))
		if st != Corrected {
			return false
		}
		// Position 0 (overall parity) reports syndrome 0.
		if p == 0 {
			return syn == 0
		}
		return syn == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
