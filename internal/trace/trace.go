// Package trace records and replays packet injection traces. The paper
// drives its simulator with "real traffic distributions from the PARSEC and
// SPLASH-2 benchmark suites"; this package provides the equivalent
// trace-driven mode: capture any workload (including the statistical
// models) into a compact binary trace once, then replay it bit-identically
// across experiments, so every configuration sees exactly the same offered
// traffic.
//
// Format (little endian): an 16-byte header — 8-byte magic "TASPTRC1",
// uint16 cores, uint16 routers, uint32 record count — followed by 16-byte
// records: uint32 cycle, uint16 core, uint8 dstR, uint8 dstC, uint8 vc,
// uint8 bodyFlits, uint16 seq(+pad), uint32 mem.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

// Magic identifies trace files.
const Magic = "TASPTRC1"

// Event is one packet injection.
type Event struct {
	Cycle uint32
	Core  uint16
	DstR  uint8
	DstC  uint8
	VC    uint8
	Body  uint8 // body flit count (0 = single-flit packet)
	Seq   uint8
	Mem   uint32
}

// Packet materialises the event's packet. Body payloads are synthesised
// deterministically from the event fields (traces carry shape, not data).
func (e Event) Packet() *flit.Packet {
	p := &flit.Packet{Hdr: flit.Header{
		VC:   e.VC,
		DstR: e.DstR,
		DstC: e.DstC,
		Mem:  e.Mem,
		Seq:  e.Seq,
	}}
	for i := 0; i < int(e.Body); i++ {
		p.Body = append(p.Body, uint64(e.Mem)<<16|uint64(e.Core)<<4|uint64(i))
	}
	return p
}

// Writer streams events to a trace file.
type Writer struct {
	w      *bufio.Writer
	cores  uint16
	nRec   uint32
	closed bool
	// sink retains the header position trick: we buffer everything and
	// patch the count on Close via the caller providing io.WriteSeeker, or
	// we write count last in a trailer. Simpler: trailer-free, count
	// patched by Close when the underlying writer supports Seek.
	under io.Writer
}

// NewWriter starts a trace for the given platform.
func NewWriter(w io.Writer, cfg noc.Config) (*Writer, error) {
	tw := &Writer{w: bufio.NewWriter(w), under: w, cores: uint16(cfg.Cores())}
	hdr := make([]byte, 16)
	copy(hdr, Magic)
	binary.LittleEndian.PutUint16(hdr[8:], uint16(cfg.Cores()))
	binary.LittleEndian.PutUint16(hdr[10:], uint16(cfg.Routers()))
	// Record count is unknown until Close; zero means "until EOF".
	if _, err := tw.w.Write(hdr); err != nil {
		return nil, err
	}
	return tw, nil
}

// Add appends one event.
func (w *Writer) Add(e Event) error {
	if w.closed {
		return fmt.Errorf("trace: writer closed")
	}
	if e.Core >= w.cores {
		return fmt.Errorf("trace: core %d out of range (%d cores)", e.Core, w.cores)
	}
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:], e.Cycle)
	binary.LittleEndian.PutUint16(rec[4:], e.Core)
	rec[6] = e.DstR
	rec[7] = e.DstC
	rec[8] = e.VC
	rec[9] = e.Body
	rec[10] = e.Seq
	binary.LittleEndian.PutUint32(rec[12:], e.Mem)
	if _, err := w.w.Write(rec[:]); err != nil {
		return err
	}
	w.nRec++
	return nil
}

// Count returns the number of events written so far.
func (w *Writer) Count() uint32 { return w.nRec }

// Close flushes the stream and, when the underlying writer is seekable,
// patches the record count into the header.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.Flush(); err != nil {
		return err
	}
	if s, ok := w.under.(io.WriteSeeker); ok {
		if _, err := s.Seek(12, io.SeekStart); err != nil {
			return err
		}
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], w.nRec)
		if _, err := s.Write(cnt[:]); err != nil {
			return err
		}
		if _, err := s.Seek(0, io.SeekEnd); err != nil {
			return err
		}
	}
	return nil
}

// Reader parses a trace file.
type Reader struct {
	r       *bufio.Reader
	Cores   int
	Routers int
	// Declared is the header's record count (0 = stream until EOF).
	Declared uint32
	read     uint32
}

// NewReader validates the header and prepares to stream events.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:8])
	}
	return &Reader{
		r:        br,
		Cores:    int(binary.LittleEndian.Uint16(hdr[8:])),
		Routers:  int(binary.LittleEndian.Uint16(hdr[10:])),
		Declared: binary.LittleEndian.Uint32(hdr[12:]),
	}, nil
}

// Next returns the next event, or io.EOF at the end.
func (r *Reader) Next() (Event, error) {
	if r.Declared > 0 && r.read >= r.Declared {
		return Event{}, io.EOF
	}
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Event{}, fmt.Errorf("trace: truncated record")
		}
		return Event{}, err
	}
	r.read++
	return Event{
		Cycle: binary.LittleEndian.Uint32(rec[0:]),
		Core:  binary.LittleEndian.Uint16(rec[4:]),
		DstR:  rec[6],
		DstC:  rec[7],
		VC:    rec[8],
		Body:  rec[9],
		Seq:   rec[10],
		Mem:   binary.LittleEndian.Uint32(rec[12:]),
	}, nil
}

// ReadAll drains the remaining events.
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// Player replays a loaded trace against a network: at each Tick it injects
// every event whose cycle has come due. Events rejected by a full injection
// queue are retried the next cycle (the source stalls, it does not drop).
type Player struct {
	events []Event
	pos    int
	// Stalled counts injection attempts deferred by full queues.
	Stalled uint64
}

// NewPlayer wraps a fully loaded event list (must be cycle-sorted, which
// recorded traces are by construction).
func NewPlayer(events []Event) *Player {
	return &Player{events: events}
}

// Tick injects all due events.
func (p *Player) Tick(cycle uint64, inject func(core int, pk *flit.Packet) bool) {
	for p.pos < len(p.events) && uint64(p.events[p.pos].Cycle) <= cycle {
		e := p.events[p.pos]
		if !inject(int(e.Core), e.Packet()) {
			p.Stalled++
			return // retry this and later events next cycle
		}
		p.pos++
	}
}

// Done reports whether every event has been injected.
func (p *Player) Done() bool { return p.pos >= len(p.events) }

// Remaining returns the count of not-yet-injected events.
func (p *Player) Remaining() int { return len(p.events) - p.pos }

// Record captures a workload model into a trace: it rolls the generator for
// the given cycles against a virtual unlimited sink (no network), recording
// every packet the model offers.
func Record(w *Writer, gen interface {
	Tick(inject func(core int, p *flit.Packet) bool)
}, cycles int) error {
	for c := 0; c < cycles; c++ {
		var err error
		gen.Tick(func(core int, p *flit.Packet) bool {
			if err != nil {
				return false
			}
			err = w.Add(Event{
				Cycle: uint32(c),
				Core:  uint16(core),
				DstR:  p.Hdr.DstR,
				DstC:  p.Hdr.DstC,
				VC:    p.Hdr.VC,
				Body:  uint8(len(p.Body)),
				Seq:   p.Hdr.Seq,
				Mem:   p.Hdr.Mem,
			})
			return err == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
