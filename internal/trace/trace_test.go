package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/traffic"
)

func TestRoundTripInMemory(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Cycle: 0, Core: 0, DstR: 5, DstC: 1, VC: 2, Body: 4, Seq: 9, Mem: 0x05001234},
		{Cycle: 3, Core: 63, DstR: 15, VC: 3, Seq: 1, Mem: 0x0f000001},
	}
	for _, e := range evs {
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 64 || r.Routers != 16 {
		t.Fatalf("header: %d cores %d routers", r.Cores, r.Routers)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("events: %d", len(got))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], evs[i])
		}
	}
}

func TestRoundTripFileWithPatchedCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Add(Event{Cycle: uint32(i), Core: uint16(i), DstR: uint8(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Declared != 10 {
		t.Fatalf("declared count %d, want 10 (seek patch)", r.Declared)
	}
	got, err := r.ReadAll()
	if err != nil || len(got) != 10 {
		t.Fatalf("read back %d events, err %v", len(got), err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file..."))); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, noc.DefaultConfig())
	w.Add(Event{Cycle: 1})
	w.Close()
	raw := buf.Bytes()[:len(buf.Bytes())-3] // chop the last record
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Declared count is patched only on seekable writers; here it is 0, so
	// the reader streams until the truncation error.
	if _, err := r.ReadAll(); err == nil {
		t.Fatal("truncated record not reported")
	}
}

func TestWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, noc.DefaultConfig())
	if err := w.Add(Event{Core: 64}); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	w.Close()
	if err := w.Add(Event{}); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestEventPacket(t *testing.T) {
	e := Event{Core: 7, DstR: 3, DstC: 2, VC: 1, Body: 4, Seq: 5, Mem: 0x03000042}
	p := e.Packet()
	if p.NumFlits() != 5 {
		t.Fatalf("flits: %d", p.NumFlits())
	}
	h := p.Hdr
	if h.DstR != 3 || h.DstC != 2 || h.VC != 1 || h.Seq != 5 || h.Mem != 0x03000042 {
		t.Fatalf("header: %+v", h)
	}
	// Deterministic body synthesis.
	q := e.Packet()
	for i := range p.Body {
		if p.Body[i] != q.Body[i] {
			t.Fatal("body synthesis not deterministic")
		}
	}
}

// TestRecordReplayIdentical records the blackscholes model, replays the
// trace twice on fresh networks, and checks both runs produce identical
// counters — the bit-identical replay property trace-driven mode exists
// for.
func TestRecordReplayIdentical(t *testing.T) {
	cfg := noc.DefaultConfig()
	m, err := traffic.Benchmark("blackscholes", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, cfg)
	if err := Record(w, m.Generator(5), 800); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if w.Count() == 0 {
		t.Fatal("nothing recorded")
	}

	run := func() noc.Counters {
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		evs, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		pl := NewPlayer(evs)
		n, err := noc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2000; c++ {
			pl.Tick(n.Cycle(), func(core int, pk *flit.Packet) bool { return n.Inject(core, pk) })
			n.Step()
		}
		if !pl.Done() {
			t.Fatalf("player left %d events pending", pl.Remaining())
		}
		return n.Counters
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replays diverged:\n%+v\n%+v", a, b)
	}
	if a.DeliveredPackets == 0 {
		t.Fatal("replay delivered nothing")
	}
}

// TestPlayerStallsDoNotDrop fills a core's queue and checks deferred events
// are injected later rather than lost.
func TestPlayerStallsDoNotDrop(t *testing.T) {
	var evs []Event
	for i := 0; i < 50; i++ { // 50 singles at cycle 0 from core 0: queue cap 32
		evs = append(evs, Event{Cycle: 0, Core: 0, DstR: 9, VC: uint8(i % 4)})
	}
	pl := NewPlayer(evs)
	n, err := noc.New(noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 1500 && !pl.Done(); c++ {
		pl.Tick(n.Cycle(), func(core int, pk *flit.Packet) bool { return n.Inject(core, pk) })
		n.Step()
	}
	if !pl.Done() {
		t.Fatalf("player stuck with %d events", pl.Remaining())
	}
	if pl.Stalled == 0 {
		t.Fatal("expected stalls with a 32-flit queue and 50 packets")
	}
	n.Run(1000)
	if n.Counters.DeliveredPackets != 50 {
		t.Fatalf("delivered %d of 50", n.Counters.DeliveredPackets)
	}
}
