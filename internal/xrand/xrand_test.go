package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 7, 16, 100} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %g", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %g too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 5, 64} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(3)
	c1 := parent.Fork()
	c2 := parent.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical first draws")
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) frequency %g", got)
	}
}
