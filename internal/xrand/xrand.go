// Package xrand provides a tiny, fast, deterministic pseudo-random number
// generator (splitmix64 seeding an xoshiro256**-style state) used by the
// traffic generators and fault injectors. Simulation runs must be exactly
// reproducible from a seed, so the simulator never touches global or
// time-seeded randomness.
package xrand

// RNG is a deterministic pseudo-random generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-derives the generator's state from seed in place, producing the
// exact stream a fresh New(seed) would: the reseed hook simulation arenas
// use to reuse one RNG across runs without allocating.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 expansion of the seed into the full state, as recommended
	// by the xoshiro authors to avoid correlated low-entropy states.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free-ish reduction is overkill for
	// simulator workloads; modulo bias at n << 2^64 is negligible, but use
	// rejection to keep distributions exactly uniform for property tests.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from this one, for giving each
// component (per-link injector, per-core generator) its own stream.
func (r *RNG) Fork() *RNG { return New(r.Uint64()) }
