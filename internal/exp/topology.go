package exp

import (
	"fmt"

	"tasp/internal/campaign"
	"tasp/internal/noc"
)

// AblationTopology runs the paper's standard attack protocol (Figure 11:
// blackscholes, TASP on the two hottest dest-0 links, 1500-cycle warm-up)
// on every supported substrate and reports how attack potency and the
// S2S L-Ob defence carry over from the mesh to torus and ring networks.
// The attacker re-derives its optimal link placement per topology from the
// same analytic load model, so each row is the topology's own worst case
// rather than the mesh placement transplanted.
func AblationTopology(seed uint64) (Table, error) {
	t := Table{
		Title: "Extension: attack potency and S2S L-Ob mitigation across topologies (Figure 11 protocol per substrate)",
		Columns: []string{
			"topology", "infected", "clean tput", "attacked tput", "retained",
			"l-ob tput", "l-ob retained", "blocked (none)",
		},
		Notes: []string{
			"same workload, seed and attacker strategy everywhere; trojan links are re-chosen per topology from the analytic target-flow loads",
			"torus and ring runs use dateline VC classes for deadlock freedom; wraparound path diversity shrinks the single-point-of-attack congestion tree, the ring's narrow bisection amplifies it",
		},
	}
	sr := newScenarios()
	for _, topo := range noc.Topologies() {
		mk := func(kind, mit string) campaign.Scenario {
			sc := figure11Scenario(seed)
			sc.Topology = topo
			sc.Attack.Kind = kind
			sc.Mitigation = mit
			return sc
		}
		clean, err := sr.run(mk("none", "none"))
		if err != nil {
			return t, fmt.Errorf("%s clean: %w", topo, err)
		}
		attacked, err := sr.run(mk("dest", "none"))
		if err != nil {
			return t, fmt.Errorf("%s attacked: %w", topo, err)
		}
		defended, err := sr.run(mk("dest", "s2s-lob"))
		if err != nil {
			return t, fmt.Errorf("%s defended: %w", topo, err)
		}
		last := attacked.Samples[len(attacked.Samples)-1]
		t.Rows = append(t.Rows, []string{
			topo,
			fmt.Sprintf("%v", attacked.InfectedLinks),
			f3(clean.Throughput),
			f3(attacked.Throughput),
			pct(attacked.Throughput / clean.Throughput),
			f3(defended.Throughput),
			pct(defended.Throughput / clean.Throughput),
			fmt.Sprintf("%d/%d", last.BlockedRouters, clean.Config.Noc.Routers()),
		})
	}
	return t, nil
}
