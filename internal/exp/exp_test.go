package exp

import (
	"strings"
	"testing"

	"tasp/internal/noc"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	s := tb.Render()
	for _, want := range []string{"demo", "a", "bee", "333", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestFigure1Shapes(t *testing.T) {
	cfg := noc.DefaultConfig()
	f, err := RunFigure1("blackscholes", cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, row := range f.Matrix {
		for _, w := range row {
			sum += w
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("matrix not normalised: %g", sum)
	}
	if f.RouterTotals[0] <= f.RouterTotals[15] {
		t.Fatal("primary router not hottest source")
	}
	if len(f.LinkShare) != 48 && len(f.LinkShare) == 0 {
		t.Fatalf("link shares: %d", len(f.LinkShare))
	}
	for _, tb := range []Table{f.MatrixTable(), f.HotspotTable(cfg), f.LinkTable()} {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s has no rows", tb.Title)
		}
	}
	if _, err := RunFigure1("bogus", cfg); err == nil {
		t.Fatal("bogus benchmark accepted")
	}
}

func TestFigure2Shapes(t *testing.T) {
	f := RunFigure2()
	if len(f.Distances) != 6 {
		t.Fatalf("distances: %v", f.Distances)
	}
	for i := range f.Distances {
		if f.Clean[i] <= 0 {
			t.Fatalf("clean latency %g at distance %d", f.Clean[i], i+1)
		}
		// Transient costs a bounded retransmission penalty.
		if f.Transient[i] < f.Clean[i] || f.Transient[i] > f.Clean[i]+10 {
			t.Errorf("dist %d: transient %g vs clean %g", i+1, f.Transient[i], f.Clean[i])
		}
		// Permanent pays extra hops where no equal-length alternate path
		// exists (row-0 destinations); elsewhere a same-length detour may
		// absorb the fault.
		if f.Permanent[i] < f.Clean[i] {
			t.Errorf("dist %d: permanent %g below clean %g", i+1, f.Permanent[i], f.Clean[i])
		}
		if i < 3 && f.Permanent[i] <= f.Clean[i] {
			t.Errorf("dist %d: permanent %g not above clean %g despite no alternate path", i+1, f.Permanent[i], f.Clean[i])
		}
		// The first targeted packet pays detection; later ones only the
		// logged obfuscation penalty.
		if f.TrojanFirst[i] <= f.Clean[i] {
			t.Errorf("dist %d: first trojan packet %g not above clean %g", i+1, f.TrojanFirst[i], f.Clean[i])
		}
		if f.TrojanLOb[i] <= f.Clean[i] || f.TrojanLOb[i] > f.Clean[i]+4 {
			t.Errorf("dist %d: steady trojan %g vs clean %g (want the 1-3 cycle obfuscation penalty)",
				i+1, f.TrojanLOb[i], f.Clean[i])
		}
		if f.TrojanFirst[i] < f.TrojanLOb[i] {
			t.Errorf("dist %d: first packet %g cheaper than steady state %g", i+1, f.TrojanFirst[i], f.TrojanLOb[i])
		}
	}
	if len(f.TableOf().Rows) != 6 {
		t.Fatal("figure 2 table wrong size")
	}
	// Latency grows with distance in every healthy series.
	for i := 1; i < 6; i++ {
		if f.Clean[i] <= f.Clean[i-1] {
			t.Errorf("clean latency not monotone at distance %d", i+1)
		}
	}
}

func TestHardwareTables(t *testing.T) {
	t1 := RunTableI()
	if len(t1.Rows) != 6 {
		t.Fatalf("Table I rows: %d", len(t1.Rows))
	}
	t2 := RunTableII()
	if len(t2.Rows) != 4 {
		t.Fatalf("Table II rows: %d", len(t2.Rows))
	}
	f9 := RunFigure9()
	if len(f9.Rows) != 6 {
		t.Fatalf("Figure 9 rows: %d", len(f9.Rows))
	}
	pies := RunFigure8()
	if len(pies) != 4 {
		t.Fatalf("Figure 8 pies: %d", len(pies))
	}
	for _, p := range pies {
		if len(p.Rows) < 2 {
			t.Fatalf("%s underpopulated", p.Title)
		}
	}
}

func TestFigure10SmallSweep(t *testing.T) {
	// A reduced sweep (full sweep runs in the bench/cmd): one benchmark,
	// two fractions.
	saveB, saveF := Figure10Benches, Figure10Fracs
	Figure10Benches = []string{"blackscholes"}
	Figure10Fracs = []float64{0, 0.10}
	defer func() { Figure10Benches, Figure10Fracs = saveB, saveF }()

	pts, err := RunFigure10(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	if pts[0].InfectedNum != 0 {
		t.Fatal("0% row has infected links")
	}
	// With infected links, L-Ob must beat rerouting (the paper's headline
	// Figure 10 relationship).
	p := pts[1]
	if p.InfectedNum == 0 {
		t.Fatal("10% row has no infected links")
	}
	if p.Speedup <= 1.0 {
		t.Fatalf("speedup %.2f at 10%% infected, want > 1", p.Speedup)
	}
	tb := Figure10Table(pts)
	if len(tb.Rows) != 2 {
		t.Fatal("figure 10 table wrong size")
	}
}

func TestFigure11Shapes(t *testing.T) {
	f, err := RunFigure11(1)
	if err != nil {
		t.Fatal(err)
	}
	aLast := f.Attacked.Samples[len(f.Attacked.Samples)-1]
	hLast := f.Healthy.Samples[len(f.Healthy.Samples)-1]
	if aLast.BlockedRouters <= hLast.BlockedRouters {
		t.Fatalf("attacked run (%d blocked) not worse than healthy (%d)",
			aLast.BlockedRouters, hLast.BlockedRouters)
	}
	if aLast.HalfCoresFull < 10 {
		t.Fatalf("attacked run has only %d/16 injection regions deadlocked", aLast.HalfCoresFull)
	}
	tabs := f.Tables()
	if len(tabs) != 2 || len(tabs[0].Rows) == 0 {
		t.Fatal("figure 11 tables malformed")
	}
}

func TestFigure12Shapes(t *testing.T) {
	f, err := RunFigure12(1)
	if err != nil {
		t.Fatal(err)
	}
	last := f.TDM.Samples[len(f.TDM.Samples)-1]
	d1, d2 := last.Domain[0], last.Domain[1]
	if d2.InjectionFlit <= d1.InjectionFlit {
		t.Fatalf("attacked domain injection backlog (%d) not above clean domain (%d)",
			d2.InjectionFlit, d1.InjectionFlit)
	}
	lLast := f.LOb.Samples[len(f.LOb.Samples)-1]
	if lLast.BlockedRouters > 1 {
		t.Fatalf("L-Ob run still shows %d blocked routers", lLast.BlockedRouters)
	}
	tabs := f.Tables()
	if len(tabs) != 2 {
		t.Fatal("figure 12 tables malformed")
	}
}

func TestHeadline(t *testing.T) {
	tb, err := Headline(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 6 {
		t.Fatalf("headline rows: %d", len(tb.Rows))
	}
	s := tb.Render()
	if !strings.Contains(s, "TASP footprint") {
		t.Fatal("headline missing hardware claim")
	}
}
