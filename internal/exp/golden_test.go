package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoldenExperimentsAllByteIdentical is the in-tree twin of `make
// golden-check`: the canonical 4x4 `-exp all` output must stay byte-for-byte
// what the golden file records. Extension experiments (topology, scale,
// locate, adversary) are outside the canonical set precisely so they can
// evolve without touching this baseline; anything that moves these bytes is
// either a deliberate output change (regenerate with `make golden`) or a
// determinism regression.
func TestGoldenExperimentsAllByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full canonical experiment set")
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", "experiments-all-mesh.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RenderAll(RunAll(Registry("blackscholes"), 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("canonical output diverged from golden at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("canonical output length diverged from golden: %d vs %d lines", len(gl), len(wl))
}
