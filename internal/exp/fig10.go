package exp

import (
	"fmt"

	"tasp/internal/campaign"
)

// Figure10Benches are the traces the paper sweeps in Figure 10.
var Figure10Benches = []string{"blackscholes", "facesim", "ferret", "fft"}

// Figure10Fracs are the infected-link fractions of the x axis.
var Figure10Fracs = []float64{0, 0.05, 0.10, 0.15}

// Figure10Point is one bar of Figure 10: the throughput of continuing to
// use infected links under s2s L-Ob versus disabling them and rerouting
// (Ariadne), normalised to the rerouting baseline ("speedup").
type Figure10Point struct {
	Benchmark    string
	InfectedFrac float64
	InfectedNum  int
	TputLOb      float64 // packets/cycle with s2s obfuscation
	TputReroute  float64 // packets/cycle with rerouting
	Speedup      float64 // TputLOb / TputReroute
}

// RunFigure10 sweeps the benchmarks and infected-link fractions. The trojan
// targets each benchmark's primary router; infected links are the
// target-flow-hottest ones (Section III-A placement). links48 is the total
// directed link count (48 for the 4x4 mesh).
func RunFigure10(seed uint64) ([]Figure10Point, error) {
	var out []Figure10Point
	sr := newScenarios()
	for _, bench := range Figure10Benches {
		for _, frac := range Figure10Fracs {
			nLinks := int(frac*float64(48) + 0.5)
			base := campaign.Scenario{Benchmark: bench, Seed: seed}
			base.Attack.Kind = "none"
			if nLinks > 0 {
				base.Attack.Kind = "dest"
				base.Attack.NumLinks = nLinks
			}
			// Target the benchmark's primary core region.
			base.Attack.Dest = primaryDest(bench)

			lob := base
			lob.Mitigation = "s2s-lob"
			rl, err := sr.run(lob)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s lob: %w", bench, err)
			}
			rr := base
			rr.Mitigation = "rerouting"
			rrRes, err := sr.run(rr)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s reroute: %w", bench, err)
			}
			p := Figure10Point{
				Benchmark:    bench,
				InfectedFrac: frac,
				InfectedNum:  len(rl.InfectedLinks),
				TputLOb:      rl.Throughput,
				TputReroute:  rrRes.Throughput,
			}
			if p.TputReroute > 0 {
				p.Speedup = p.TputLOb / p.TputReroute
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// primaryDest returns a benchmark's primary (hottest destination) router.
func primaryDest(bench string) int {
	switch bench {
	case "facesim":
		return 5
	case "ferret":
		return 2
	default: // blackscholes, fft and most others concentrate on router 0
		return 0
	}
}

// Figure10Table renders the sweep.
func Figure10Table(points []Figure10Point) Table {
	t := Table{
		Title:   "Figure 10: speedup of continuing to use infected links with s2s L-Ob vs rerouting around them (Ariadne)",
		Columns: []string{"benchmark", "infected", "links", "tput l-ob", "tput reroute", "speedup"},
		Notes: []string{
			"speedup > 1 means keeping the link alive under obfuscation beats paying reroute detours and lost capacity",
		},
	}
	for _, p := range points {
		t.Rows = append(t.Rows, []string{
			p.Benchmark, pct(p.InfectedFrac), fmt.Sprintf("%d", p.InfectedNum),
			f3(p.TputLOb), f3(p.TputReroute), f2(p.Speedup),
		})
	}
	return t
}
