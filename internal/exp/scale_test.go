package exp

import (
	"testing"

	"tasp/internal/core"
)

// TestScaleExtensionRegistered pins "scale" as an extension: addressable by
// id, never part of -exp all (the canonical output is a regression
// baseline).
func TestScaleExtensionRegistered(t *testing.T) {
	if _, ok := Lookup(Extensions(), "scale"); !ok {
		t.Fatal("scale extension not registered")
	}
	if _, ok := Lookup(Registry("blackscholes"), "scale"); ok {
		t.Fatal("scale experiment leaked into the canonical registry")
	}
}

// TestScaledMeshAttack runs a shortened Figure 11 protocol on the
// 8x8/256-core mesh and checks the attack's qualitative signature holds on
// the scaled substrate with its wider header layout: the attacker finds
// links, the trojans (compiled against 6-bit router ids) fire, throughput
// drops under attack, and S2S L-Ob recovers it. Determinism is asserted by
// running the attacked configuration twice.
func TestScaledMeshAttack(t *testing.T) {
	run := func(attack bool, mit core.Mitigation) *core.Results {
		t.Helper()
		cfg := core.DefaultExperiment()
		cfg.Seed = 7
		cfg.Noc.Width, cfg.Noc.Height = 8, 8
		cfg.Warmup, cfg.Measure = 500, 700
		cfg.Attack.Enabled = attack
		cfg.Mitigation = mit
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("8x8 (attack=%v, mit=%v): %v", attack, mit, err)
		}
		return res
	}
	clean := run(false, core.NoMitigation)
	attacked := run(true, core.NoMitigation)
	defended := run(true, core.S2SLOb)
	if len(attacked.InfectedLinks) == 0 {
		t.Fatal("attacker found no links to infect on the 8x8 mesh")
	}
	if attacked.HTInjections == 0 {
		t.Fatal("trojans never fired on the 8x8 mesh")
	}
	if attacked.Throughput >= clean.Throughput {
		t.Fatalf("attacked throughput %.3f not below clean %.3f",
			attacked.Throughput, clean.Throughput)
	}
	if defended.Throughput <= attacked.Throughput {
		t.Fatalf("defended throughput %.3f not above attacked %.3f",
			defended.Throughput, attacked.Throughput)
	}
	again := run(true, core.NoMitigation)
	if again.Throughput != attacked.Throughput || again.HTInjections != attacked.HTInjections {
		t.Fatalf("8x8 attacked run not deterministic: tput %.6f vs %.6f, injections %d vs %d",
			again.Throughput, attacked.Throughput, again.HTInjections, attacked.HTInjections)
	}
}
