package exp

import (
	"fmt"

	"tasp/internal/core"
	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// ClosedLoopStudy quantifies the paper's introduction claim that "any
// disruptions to [the] NoC has the potential to reverberate throughout the
// entire chip": under request-reply traffic with finite per-core request
// windows (MSHRs), killing the primary router's ingress stalls requesters
// chip-wide — cores that never touch a compromised link stop making
// progress because their windows fill with unanswered requests. The s2s
// L-Ob mitigation restores end-to-end transaction flow.
func ClosedLoopStudy(seed uint64) (Table, error) {
	t := Table{
		Title:   "Extension: closed-loop (request-reply, 4 MSHRs/core) impact of the Figure 11 attack",
		Columns: []string{"configuration", "transactions/cycle", "outstanding at end", "window stalls"},
		Notes: []string{
			"open-loop traffic understates a DoS attack: with request windows, unanswered requests to the victim stall cores everywhere — the chip-wide reverberation the paper's introduction describes",
		},
	}
	for _, c := range []struct {
		name   string
		attack bool
		lob    bool
	}{
		{"healthy", false, false},
		{"attacked, no mitigation", true, false},
		{"attacked, s2s l-ob", true, true},
	} {
		row, err := runClosedLoopCase(seed, c.attack, c.lob)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, append([]string{c.name}, row...))
	}
	return t, nil
}

func runClosedLoopCase(seed uint64, attack, lob bool) ([]string, error) {
	ncfg := noc.DefaultConfig()
	net, err := noc.New(ncfg)
	if err != nil {
		return nil, err
	}
	model, err := traffic.Benchmark("blackscholes", ncfg)
	if err != nil {
		return nil, err
	}
	const (
		warmup  = 1500
		measure = 1500
	)
	var trojans []*tasp.HT
	if attack {
		target := tasp.ForDest(0)
		infected := core.ChooseInfectedLinks(model, ncfg, net.LinkSlice(), 2, target)
		for _, id := range infected {
			ht := tasp.New(target, tasp.DefaultPayloadBits, net.Layout())
			trojans = append(trojans, ht)
			w := core.NewSecureWire(ht, seed^uint64(id), net.Layout())
			w.Mitigated = lob
			net.SetWire(id, w)
		}
	}

	cl := traffic.NewClosedLoop(model, seed, 4)
	net.SetDelivered(cl.OnDeliver)

	var atEnable uint64
	for c := 0; c < warmup+measure; c++ {
		if net.Cycle()+1 == warmup {
			for _, ht := range trojans {
				ht.SetKillSwitch(true)
			}
		}
		cl.Tick(func(coreID int, p *flit.Packet) bool { return net.Inject(coreID, p) })
		net.Step()
		if net.Cycle() == warmup {
			atEnable = cl.Completed
		}
	}
	tput := float64(cl.Completed-atEnable) / measure
	return []string{
		f3(tput),
		fmt.Sprintf("%d", cl.Pending()),
		fmt.Sprintf("%d", cl.Stalled),
	}, nil
}

// SaturationCurve is the classic NoC validation experiment: offered uniform
// load versus average packet latency, showing the flat region and the
// saturation knee. It validates the simulator's congestion behaviour and
// locates the operating points the DoS experiments run at.
func SaturationCurve() (Table, error) {
	t := Table{
		Title:   "Validation: latency vs offered load (uniform random traffic, XY routing)",
		Columns: []string{"rate (pkt/core/cycle)", "delivered/cycle", "avg latency", "p99 bound"},
		Notes: []string{
			"the knee marks saturation (~0.06 under uniform load); the benchmark models run in their flat region — Figure 11(b)'s stable baseline — so attack-induced congestion is attributable to the trojan, not the workload",
		},
	}
	ncfg := noc.DefaultConfig()
	for _, rate := range []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.12, 0.20} {
		m := traffic.Uniform(ncfg, rate)
		net, err := noc.New(ncfg)
		if err != nil {
			return t, err
		}
		gen := m.Generator(7)
		const cycles = 4000
		for c := 0; c < cycles; c++ {
			gen.Tick(func(coreID int, p *flit.Packet) bool { return net.Inject(coreID, p) })
			net.Step()
		}
		cnt := net.Counters
		// p99 via a second pass is overkill; reuse max as the tail proxy
		// alongside the mean.
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", rate),
			f3(float64(cnt.DeliveredPackets) / cycles),
			f1(cnt.AvgLatency()),
			fmt.Sprintf("max=%d", cnt.MaxLatency),
		})
	}
	return t, nil
}
