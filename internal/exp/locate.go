package exp

import (
	"fmt"

	"tasp/internal/locate"
	"tasp/internal/noc"
)

// timeToLocalize scans the rank-1 trace for the earliest sample from which
// the verdict stays inside the infected set for the rest of the run, and
// returns the delay from attack enable (ok=false when localization never
// settled on an infected link).
func timeToLocalize(trace []locate.TraceSample, infected []int, enableAt uint64) (uint64, bool) {
	in := map[int]bool{}
	for _, id := range infected {
		in[id] = true
	}
	settled, ok := uint64(0), false
	for i := len(trace) - 1; i >= 0; i-- {
		if !in[trace[i].LinkID] {
			break
		}
		settled, ok = trace[i].Cycle, true
	}
	if !ok {
		return 0, false
	}
	return settled - enableAt, true
}

// rankHit reports whether the top-ranked suspect is an infected link.
func rankHit(suspects []locate.Suspect, infected []int) bool {
	if len(suspects) == 0 {
		return false
	}
	for _, id := range infected {
		if suspects[0].LinkID == id {
			return true
		}
	}
	return false
}

// AblationLocate runs the Figure 11 attack protocol (blackscholes, TASP on
// the two hottest dest-0 links, 1500-cycle warm-up, no effective mitigation
// so the saturation tree grows unchecked) on every substrate with the
// localization layer on, and reports whether the fused ranking pins the
// infected link set: rank-1 accuracy, confidence, time-to-localize, and the
// telemetry-only ablation (detector evidence zeroed — localization from
// blocked-port telemetry and topology structure alone).
func AblationLocate(seed uint64) (Table, error) {
	t := Table{
		Title: "Extension: topology-aware DoS localization (Figure 11 protocol per substrate, locate layer on)",
		Columns: []string{
			"topology", "infected", "rank-1", "hit", "confidence",
			"t-localize", "rank-1 (telemetry-only)", "hit",
		},
		Notes: []string{
			"rank-1 = the locate engine's top suspect at run end; hit = it is an infected link; confidence = normalized margin over rank-2",
			"t-localize = cycles after attack enable until the per-sample rank-1 verdict settles inside the infected set",
			"telemetry-only zeroes the detector/NACK component: blocked-port telemetry + structural priors alone",
		},
	}
	sr := newScenarios()
	for _, topo := range noc.Topologies() {
		sc := figure11Scenario(seed)
		sc.Topology = topo
		sc.Locate = true
		res, err := sr.run(sc)
		if err != nil {
			return t, fmt.Errorf("%s: %w", topo, err)
		}
		n, err := noc.New(res.Config.Noc)
		if err != nil {
			return t, fmt.Errorf("%s: %w", topo, err)
		}
		links := n.LinkSlice()
		name := func(s []locate.Suspect) string {
			if len(s) == 0 {
				return "-"
			}
			return fmt.Sprintf("%d (%s)", s[0].LinkID, links[s[0].LinkID])
		}
		ttl := "never"
		if d, ok := timeToLocalize(res.SuspectTrace, res.InfectedLinks, uint64(res.Config.Warmup)); ok {
			ttl = fmt.Sprintf("%d cyc", d)
		}
		t.Rows = append(t.Rows, []string{
			topo,
			fmt.Sprintf("%v", res.InfectedLinks),
			name(res.Suspects),
			yes(rankHit(res.Suspects, res.InfectedLinks)),
			fmt.Sprintf("%.2f", res.Suspects[0].Confidence),
			ttl,
			name(res.SuspectsTelemetry),
			yes(rankHit(res.SuspectsTelemetry, res.InfectedLinks)),
		})
	}
	return t, nil
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
