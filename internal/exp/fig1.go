package exp

import (
	"fmt"

	"tasp/internal/noc"
	"tasp/internal/traffic"
)

// Figure1 reproduces the three traffic-distribution views of Figure 1 for a
// benchmark on the 64-core concentrated mesh: (a) the source-router x
// destination-router request matrix, (b) the per-router geographic source
// hot spots, and (c) the percentage of traffic crossing each link under XY
// routing.
type Figure1 struct {
	Benchmark string
	Platform  noc.Config
	// Matrix[s][d] is the relative request weight from router s to d
	// (source intensity folded in, as in the paper's packet counts).
	Matrix [][]float64
	// RouterTotals[r] is router r's share of all generated requests.
	RouterTotals []float64
	// LinkShare maps "from->to" to the fraction of link traversals.
	LinkShare map[string]float64
}

// RunFigure1 builds the distributions for one benchmark.
func RunFigure1(bench string, cfg noc.Config) (*Figure1, error) {
	m, err := traffic.Benchmark(bench, cfg)
	if err != nil {
		return nil, err
	}
	R := cfg.Routers()
	out := &Figure1{Benchmark: bench, Platform: cfg, Matrix: make([][]float64, R)}
	total := 0.0
	for s := 0; s < R; s++ {
		out.Matrix[s] = make([]float64, R)
		for d := 0; d < R; d++ {
			w := m.Matrix[s][d] * m.Intensity[s]
			out.Matrix[s][d] = w
			total += w
		}
	}
	out.RouterTotals = make([]float64, R)
	for s := 0; s < R; s++ {
		rowSum := 0.0
		for d := 0; d < R; d++ {
			out.Matrix[s][d] /= total
			rowSum += out.Matrix[s][d]
		}
		out.RouterTotals[s] = rowSum
	}
	out.LinkShare = traffic.LinkLoads(m, cfg)
	return out, nil
}

// platformLabel describes the substrate for table titles ("4x4 mesh,
// conc. 4", "16-router ring, conc. 4").
func platformLabel(cfg noc.Config) string {
	if cfg.TopoName() == "ring" {
		return fmt.Sprintf("%d-router ring, conc. %d", cfg.Routers(), cfg.Concentration)
	}
	return fmt.Sprintf("%dx%d %s, conc. %d", cfg.Width, cfg.Height, cfg.TopoName(), cfg.Concentration)
}

// routeLabel names the default routing rule of the substrate.
func routeLabel(cfg noc.Config) string {
	if cfg.TopoName() == "ring" {
		return "shortest-direction routing"
	}
	return "XY routing"
}

// MatrixTable renders Figure 1(a).
func (f *Figure1) MatrixTable() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 1(a): %s source->destination request shares (%s)", f.Benchmark, platformLabel(f.Platform)),
		Columns: []string{"src\\dst"},
	}
	for d := range f.Matrix {
		t.Columns = append(t.Columns, fmt.Sprintf("r%d", d))
	}
	for s, row := range f.Matrix {
		cells := []string{fmt.Sprintf("r%d", s)}
		for _, w := range row {
			cells = append(cells, f4(w))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// HotspotTable renders Figure 1(b) as a geographic grid.
func (f *Figure1) HotspotTable(cfg noc.Config) Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 1(b): %s per-router source shares (geographic layout)", f.Benchmark),
		Columns: []string{"y\\x"},
	}
	for x := 0; x < cfg.Width; x++ {
		t.Columns = append(t.Columns, fmt.Sprintf("x=%d", x))
	}
	for y := cfg.Height - 1; y >= 0; y-- {
		cells := []string{fmt.Sprintf("y=%d", y)}
		for x := 0; x < cfg.Width; x++ {
			cells = append(cells, pct(f.RouterTotals[cfg.RouterAt(x, y)]))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// LinkTable renders Figure 1(c), hottest links first.
func (f *Figure1) LinkTable() Table {
	t := Table{
		Title:   fmt.Sprintf("Figure 1(c): %s per-link traffic shares under %s", f.Benchmark, routeLabel(f.Platform)),
		Columns: []string{"link", "share"},
	}
	type kv struct {
		k string
		v float64
	}
	var all []kv
	for k, v := range f.LinkShare { //nocvet:orderfree pairs are fully sorted (share desc, name asc) before use
		all = append(all, kv{k, v})
	}
	// Hottest first, stable tie-break by name.
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].v > all[i].v || (all[j].v == all[i].v && all[j].k < all[i].k) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	for _, e := range all {
		t.Rows = append(t.Rows, []string{e.k, pct(e.v)})
	}
	t.Notes = append(t.Notes,
		"traffic localises around the primary router and diminishes with distance (Section III-A)")
	return t
}
