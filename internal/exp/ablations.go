package exp

import (
	"fmt"

	"tasp/internal/core"
	"tasp/internal/flit"
	"tasp/internal/flood"
	"tasp/internal/lob"
	"tasp/internal/noc"
	"tasp/internal/power"
	"tasp/internal/routing"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// AblationRetransScheme compares the paper's two retransmission-buffer
// micro-architectures (Figure 5) under the Figure 11 attack: the shared
// post-crossbar buffer (the stated worst case) against per-VC buffers.
func AblationRetransScheme(seed uint64) (Table, error) {
	t := Table{
		Title:   "Ablation: retransmission buffer placement (Figure 5's two schemes) under a VC-targeted attack",
		Columns: []string{"scheme", "throughput", "blocked routers", ">50% cores full"},
		Notes: []string{
			"a VC-1 trojan wedges one VC's flits; in the shared output buffer those wedges consume everyone's slots (head-of-line blocking across VCs) while per-VC buffers contain the damage — the paper evaluates the shared case as the worst case",
		},
	}
	for _, scheme := range []struct {
		name  string
		perVC bool
	}{{"shared output buffer", false}, {"per-VC buffers", true}} {
		cfg := core.DefaultExperiment()
		cfg.Seed = seed
		cfg.Noc.RetransPerVC = scheme.perVC
		cfg.Attack.Target = tasp.ForVC(1)
		cfg.Attack.NumLinks = 4
		res, err := core.Run(cfg)
		if err != nil {
			return t, err
		}
		last := res.Samples[len(res.Samples)-1]
		R := cfg.Noc.Routers()
		t.Rows = append(t.Rows, []string{
			scheme.name, f3(res.Throughput),
			fmt.Sprintf("%d/%d", last.BlockedRouters, R),
			fmt.Sprintf("%d/%d", last.HalfCoresFull, R),
		})
	}
	return t, nil
}

// AblationRoutingUnderFlood reproduces the paper's Section III-A remark
// that XY routing outperforms adaptive algorithms under flood-based DoS
// below saturation: a rogue-core flood targets the primary router while
// background traffic runs, per routing algorithm.
func AblationRoutingUnderFlood(seed uint64) (Table, error) {
	t := Table{
		Title:   "Ablation: routing algorithm vs flood-based DoS [12] (4 rogue cores flooding router 0)",
		Columns: []string{"algorithm", "tput clean", "tput flooded", "retained"},
		Notes: []string{
			"Section III-A: under flood DoS, XY outperforms adaptive algorithms below saturation — adaptivity spreads the flood's congestion tree",
		},
	}
	ncfg := noc.DefaultConfig()
	algs := []string{"xy", "west-first", "north-last", "negative-first", "odd-even"}
	table := routing.Algorithms(ncfg)
	for _, name := range algs {
		clean, err := runFloodCase(ncfg, table[name], seed, false)
		if err != nil {
			return t, err
		}
		flooded, err := runFloodCase(ncfg, table[name], seed, true)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			name, f3(clean), f3(flooded), pct(flooded / clean),
		})
	}
	return t, nil
}

// runFloodCase runs blackscholes background traffic with or without a
// 4-core flood at router 15 aimed at router 0, returning throughput of the
// background traffic (flood packets excluded).
func runFloodCase(ncfg noc.Config, alg noc.AdaptiveRouteFunc, seed uint64, withFlood bool) (float64, error) {
	n, err := noc.New(ncfg)
	if err != nil {
		return 0, err
	}
	n.SetAdaptiveRoute(alg)
	m, err := traffic.Benchmark("blackscholes", ncfg)
	if err != nil {
		return 0, err
	}
	gen := m.Generator(seed)
	var fl *flood.Attack
	var floodDelivered uint64
	if withFlood {
		fl = flood.New([]int{60, 61, 62, 63}, 0, 0.9, seed^0xf1)
		fl.BodyFlits = 4
		fl.EnableAt = 500
		n.SetDelivered(func(d noc.Delivery) {
			if d.Hdr.SrcR == 15 {
				floodDelivered++
			}
		})
	}
	const cycles = 3000
	for c := 0; c < cycles; c++ {
		gen.Tick(func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
		if fl != nil {
			fl.Tick(n.Cycle(), ncfg.Routers(), func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
		}
		n.Step()
	}
	return float64(n.Counters.DeliveredPackets-floodDelivered) / cycles, nil
}

// AblationPayloadCounter quantifies the attacker's Y-bit trade-off
// (Section III-B): camouflage (distinct two-wire fault masks before the
// pattern repeats) against flip-flop area that side-channel analysis can
// find.
func AblationPayloadCounter() Table {
	t := Table{
		Title:   "Ablation: TASP payload-counter width Y — camouflage vs silicon",
		Columns: []string{"Y bits", "payload states", "strikes before repeat", "counter area um^2", "counter leak nW"},
		Notes: []string{
			"more payload states disguise strikes as transients for longer; more flip-flops raise the idle leakage that side-channel detection keys on",
		},
	}
	for _, y := range []int{2, 4, 8, 12, 16} {
		ht := tasp.New(tasp.ForDest(1), y, flit.Default)
		ctr := power.Counter("payload", y, 0.1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", y),
			fmt.Sprintf("%d", ht.PayloadStates()),
			fmt.Sprintf("%d", ht.PayloadStates()), // one strike per state before wrap
			f2(ctr.Area()), f2(ctr.Leakage()),
		})
	}
	return t
}

// AblationDetectorHistory measures detection coverage versus the threat
// detector's fault-history capacity: with a tiny table, interleaved flows
// evict the repeat-fault evidence before it accumulates.
func AblationDetectorHistory(seed uint64) (Table, error) {
	t := Table{
		Title:   "Ablation: threat-detector history capacity (Figure 11 attack + transient noise, s2s L-Ob)",
		Columns: []string{"history entries", "detect latency (cycles)", "throughput", "trojans classified"},
		Notes: []string{
			"background transient faults interleave with trojan strikes; a small history table evicts the repeat-fault evidence before it accumulates, delaying classification",
		},
	}
	for _, cap := range []int{1, 2, 4, 16, 64} {
		cfg := core.DefaultExperiment()
		cfg.Seed = seed
		cfg.Mitigation = core.S2SLOb
		cfg.DetectorHistory = cap
		cfg.TransientBER = 5e-4
		res, err := core.Run(cfg)
		if err != nil {
			return t, err
		}
		trojans := 0
		for _, cl := range res.Detections { //nocvet:orderfree commutative count
			if cl.String() == "trojan" {
				trojans++
			}
		}
		lat := "-"
		if res.FirstTrojanAt > 0 {
			lat = fmt.Sprintf("%d", res.FirstTrojanAt-uint64(cfg.Warmup))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cap), lat, f3(res.Throughput),
			fmt.Sprintf("%d/%d", trojans, len(res.InfectedLinks)),
		})
	}
	return t, nil
}

// AblationEscalationOrder compares L-Ob method orders: the default
// scramble-first schedule against an invert-first one, measuring total
// obfuscation stall and residual retransmissions.
func AblationEscalationOrder(seed uint64) (Table, error) {
	t := Table{
		Title:   "Ablation: L-Ob escalation order (Figure 11 attack, s2s L-Ob)",
		Columns: []string{"order", "throughput", "obfuscated traversals", "stall cycles", "retransmissions"},
		Notes: []string{
			"scramble randomises every retry (robust, 2-cycle undo); invert is cheaper (1 cycle) but a fixed bijection a retuned trigger could learn",
		},
	}
	orders := []struct {
		name  string
		order []lob.Choice
	}{
		{"scramble-first (default)", nil},
		{"invert-first", []lob.Choice{
			{Method: lob.Invert, Gran: lob.WholeFlit},
			{Method: lob.Shuffle, Gran: lob.WholeFlit},
			{Method: lob.Reorder, Gran: lob.WholeFlit},
			{Method: lob.Scramble, Gran: lob.WholeFlit},
			{Method: lob.Invert, Gran: lob.HeaderOnly},
			{Method: lob.Invert, Gran: lob.PayloadOnly},
			{Method: lob.Scramble, Gran: lob.HeaderOnly},
			{Method: lob.Scramble, Gran: lob.PayloadOnly},
		}},
	}
	saved := lob.EscalationOrder
	defer func() { lob.EscalationOrder = saved }()
	for _, o := range orders {
		if o.order != nil {
			lob.EscalationOrder = o.order
		} else {
			lob.EscalationOrder = saved
		}
		cfg := core.DefaultExperiment()
		cfg.Seed = seed
		cfg.Mitigation = core.S2SLOb
		res, err := core.Run(cfg)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			o.name, f3(res.Throughput),
			fmt.Sprintf("%d", res.Obfuscated),
			fmt.Sprintf("%d", res.StallCycles),
			fmt.Sprintf("%d", res.Final.Retransmissions),
		})
	}
	return t, nil
}

// AblationPlacement compares the attacker's link-placement strategies from
// Section III-A: target-flow-hottest links (the paper's analysis), the
// globally hottest links, and deterministic "random" links.
func AblationPlacement(seed uint64) (Table, error) {
	t := Table{
		Title:   "Ablation: TASP link placement strategy (2 trojans, dest-0 target, no mitigation)",
		Columns: []string{"placement", "links", "strikes", "victim goodput", "blocked routers"},
		Notes: []string{
			"the attacker's objective is disruption of the victim application (goodput of packets still reaching router 0) with the fewest trojans; links the target flow never crosses strike nothing at all — placement is everything (Section III-A)",
		},
	}
	ncfg := noc.DefaultConfig()
	n, err := noc.New(ncfg)
	if err != nil {
		return t, err
	}
	m, err := traffic.Benchmark("blackscholes", ncfg)
	if err != nil {
		return t, err
	}
	hottestTarget := core.ChooseInfectedLinks(m, ncfg, n.LinkSlice(), 2, tasp.ForDest(0))
	hottestAny := core.ChooseInfectedLinks(m, ncfg, n.LinkSlice(), 2, tasp.ForVC(0)) // VC matcher = all flows
	arbitrary := []int{11, 29}                                                   // mid-mesh links some target flows cross
	cold := []int{12, 13}                                                        // 3<->7 edge links the dest-0 flow never crosses

	for _, pl := range []struct {
		name  string
		links []int
	}{
		{"target-flow hottest (paper)", hottestTarget},
		{"globally hottest", hottestAny},
		{"arbitrary mid-mesh", arbitrary},
		{"cold edge links", cold},
	} {
		cfg := core.DefaultExperiment()
		cfg.Seed = seed
		cfg.Attack.Links = pl.links
		res, err := core.Run(cfg)
		if err != nil {
			return t, err
		}
		last := res.Samples[len(res.Samples)-1]
		t.Rows = append(t.Rows, []string{
			pl.name, fmt.Sprintf("%v", pl.links),
			fmt.Sprintf("%d", res.HTInjections),
			fmt.Sprintf("%d pkts", res.VictimDelivered),
			fmt.Sprintf("%d/%d", last.BlockedRouters, cfg.Noc.Routers()),
		})
	}
	return t, nil
}
