package exp

import (
	"testing"

	"tasp/internal/core"
)

// TestExtensionsRegistry pins the extension set apart from the canonical
// one: "topology" is addressable but must never join -exp all (the
// canonical output is a regression baseline).
func TestExtensionsRegistry(t *testing.T) {
	if _, ok := Lookup(Extensions(), "topology"); !ok {
		t.Fatal("topology extension not registered")
	}
	if _, ok := Lookup(Registry("blackscholes"), "topology"); ok {
		t.Fatal("topology experiment leaked into the canonical registry")
	}
}

// TestCrossTopologyAttack runs a shortened Figure 11 protocol on torus and
// ring substrates and checks the attack's qualitative signature carries
// over: the attacker finds links to infect, the TASP trojans fire, and
// throughput drops under attack. (The cross-substrate severity ordering
// needs the full 1500-cycle saturation protocol and is reported by the
// "topology" extension table, not asserted here.)
func TestCrossTopologyAttack(t *testing.T) {
	run := func(topo string, attack bool) *core.Results {
		t.Helper()
		cfg := core.DefaultExperiment()
		cfg.Seed = 7
		cfg.Noc.Topo = topo
		cfg.Warmup, cfg.Measure = 500, 700
		cfg.Attack.Enabled = attack
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s (attack=%v): %v", topo, attack, err)
		}
		return res
	}
	for _, topo := range []string{"torus", "ring"} {
		clean := run(topo, false)
		attacked := run(topo, true)
		if len(attacked.InfectedLinks) == 0 {
			t.Fatalf("%s: attacker found no links to infect", topo)
		}
		if attacked.HTInjections == 0 {
			t.Fatalf("%s: trojans never fired", topo)
		}
		if attacked.Throughput >= clean.Throughput {
			t.Fatalf("%s: attacked throughput %.3f not below clean %.3f",
				topo, attacked.Throughput, clean.Throughput)
		}
	}
}
