package exp

import (
	"strings"
	"testing"
)

// fastRegistry returns the registry minus its slowest entries (fig10 sweeps
// 16 benchmark x infection-fraction cells; ablations and the saturation
// curve run many full simulations). The remaining set still covers both
// hardware-model and cycle-accurate-simulation experiments.
func fastRegistry() []Experiment {
	slow := map[string]bool{"fig10": true, "ablations": true, "detectability": true, "saturation": true}
	var out []Experiment
	for _, e := range Registry("blackscholes") {
		if !slow[e.ID] {
			out = append(out, e)
		}
	}
	return out
}

func renderAll(t *testing.T, exps []Experiment, seed uint64, workers int) string {
	t.Helper()
	s, err := RenderAll(RunAll(exps, seed, workers))
	if err != nil {
		t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
	}
	return s
}

// TestRunAllParallelMatchesSerial is the determinism regression test for
// the parallel experiment engine: fanning experiments across goroutines
// must render byte-identical tables to a serial run, for multiple seeds.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		exps := fastRegistry()
		serial := renderAll(t, exps, seed, 1)
		parallel := renderAll(t, exps, seed, 8)
		if serial != parallel {
			t.Fatalf("seed %d: parallel output diverges from serial\nserial %d bytes, parallel %d bytes",
				seed, len(serial), len(parallel))
		}
		if !strings.Contains(serial, "==== fig11 ====") {
			t.Fatalf("seed %d: rendering is missing experiment banners", seed)
		}
	}
	if raceEnabled || testing.Short() {
		return // the full registry re-runs fig10's 16-cell sweep twice; too slow here
	}
	full := Registry("blackscholes")
	serial := renderAll(t, full, 1, 1)
	parallel := renderAll(t, full, 1, 8)
	if serial != parallel {
		t.Fatalf("full registry: parallel output diverges from serial (serial %d bytes, parallel %d bytes)",
			len(serial), len(parallel))
	}
}

// TestRunAllSeedSensitivity guards against a wiring bug where the seed is
// dropped on the floor: simulation-backed experiments must react to it.
func TestRunAllSeedSensitivity(t *testing.T) {
	exps := []Experiment{}
	for _, id := range []string{"fig11", "headline"} {
		e, ok := Lookup(Registry("blackscholes"), id)
		if !ok {
			t.Fatalf("registry is missing %q", id)
		}
		exps = append(exps, e)
	}
	a := renderAll(t, exps, 1, 2)
	b := renderAll(t, exps, 42, 2)
	if a == b {
		t.Fatal("seeds 1 and 42 render identical output; seed is not reaching the harnesses")
	}
}

func TestRegistryShape(t *testing.T) {
	exps := Registry("blackscholes")
	want := []string{"fig1", "fig2", "table1", "fig9", "table2", "fig8", "fig10", "fig11",
		"fig12", "headline", "ablations", "detectability", "migration", "closedloop", "saturation"}
	got := IDs(exps)
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %q, want %q (order is part of the output contract)", i, got[i], want[i])
		}
	}
	if _, ok := Lookup(exps, "no-such-experiment"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}
