package exp

import (
	"fmt"

	"tasp/internal/campaign"
	"tasp/internal/detect"
	"tasp/internal/noc"
)

// AblationAdversary runs the quiet trojan families — the ACK-forging dropper
// and the header-rewriting misrouter — under the Figure 11 protocol on every
// supported substrate, with secure-ack monitoring and the localization layer
// observing. Neither family ever raises a NACK, so the paper's fault-
// triggered detector is structurally blind to both; the table shows the
// secure-ack monitor convicting the infected links and the ack-gap evidence
// carrying the locate ranking to them instead.
func AblationAdversary(seed uint64) (Table, error) {
	t := Table{
		Title: "Extension: drop/misroute trojans vs secure-ack monitoring across topologies (Figure 11 protocol per substrate)",
		Columns: []string{
			"topology", "mode", "infected", "clean tput", "attacked tput", "retained",
			"victim goodput", "strikes", "inflight drops", "ack verdicts", "rank-1",
		},
		Notes: []string{
			"drop: matched heads are swallowed with a forged link ACK; the beheaded packets' bodies die as orphans downstream, and no NACK ever fires",
			"misroute: matched heads are re-encoded with the hijack router's id; SECDED decodes clean and delivery simply lands at the wrong tile",
			"ack verdicts: secure-ack monitor convictions on the infected links (sent/received gap windows for droppers, route-conformance violations for misrouters)",
			"rank-1: whether the locate engine's top suspect is an infected link, from ack-gap/violation evidence plus structural priors — no detector verdicts exist on these runs",
		},
	}
	sr := newScenarios()
	for _, topo := range noc.Topologies() {
		mk := func(mode, mit string) campaign.Scenario {
			sc := figure11Scenario(seed)
			sc.Topology = topo
			sc.Mitigation = mit
			if mode == "none" {
				sc.Attack.Kind = "none"
			} else {
				sc.Attack.Mode = mode
			}
			sc.SecureAck = mode != "none"
			sc.Locate = mode != "none"
			return sc
		}
		clean, err := sr.run(mk("none", "none"))
		if err != nil {
			return t, fmt.Errorf("%s clean: %w", topo, err)
		}
		cleanTput, cleanVictim := clean.Throughput, clean.VictimDelivered
		for _, mode := range []string{"drop", "misroute"} {
			res, err := sr.run(mk(mode, "none"))
			if err != nil {
				return t, fmt.Errorf("%s %s: %w", topo, mode, err)
			}
			verdicts := 0
			for _, id := range res.InfectedLinks {
				if c := res.AckVerdicts[id]; c == detect.AckDropper || c == detect.AckMisroute {
					verdicts++
				}
			}
			rank1 := "miss"
			if len(res.Suspects) > 0 {
				for _, id := range res.InfectedLinks {
					if res.Suspects[0].LinkID == id {
						rank1 = fmt.Sprintf("hit (link %d)", id)
						break
					}
				}
			}
			t.Rows = append(t.Rows, []string{
				topo,
				mode,
				fmt.Sprintf("%v", res.InfectedLinks),
				f3(cleanTput),
				f3(res.Throughput),
				pct(res.Throughput / cleanTput),
				fmt.Sprintf("%d/%d", res.VictimDelivered, cleanVictim),
				fmt.Sprintf("%d", res.HTInjections),
				fmt.Sprintf("%d", res.Final.DroppedInFlight),
				fmt.Sprintf("%d/%d", verdicts, len(res.InfectedLinks)),
				rank1,
			})
		}
	}
	return t, nil
}
