//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in; the
// determinism regression test trims its experiment set under -race to keep
// the instrumented run time sane.
const raceEnabled = true
