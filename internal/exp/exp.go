// Package exp contains one harness per table and figure of the paper's
// evaluation (Section V). Each harness runs the relevant simulation or
// hardware-model computation and returns both structured data and a
// plain-text rendering with the same rows/series the paper reports. The
// cmd tools and the benchmark suite are thin wrappers over this package.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries paper-vs-measured commentary for EXPERIMENTS.md.
	Notes []string
}

// Render formats the table as aligned plain text.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c + "  ")
			}
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// f2 formats a float at 2 decimals, f3 at 3, f1 at 1.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //nocvet:orderfree keys are sorted before use
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
