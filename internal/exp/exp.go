// Package exp contains one harness per table and figure of the paper's
// evaluation (Section V). Each harness runs the relevant simulation or
// hardware-model computation and returns both structured data and a
// plain-text rendering with the same rows/series the paper reports. The
// cmd tools and the benchmark suite are thin wrappers over this package.
package exp

import (
	"sort"

	"tasp/internal/tab"
)

// Table is a rendered experiment result. It is an alias for the shared
// rendering type in internal/tab, so harness tables and campaign-aggregated
// tables are interchangeable (and byte-diffable).
type Table = tab.Table

// f2 formats a float at 2 decimals, f3 at 3, f1 at 1.
var (
	f1  = tab.F1
	f2  = tab.F2
	f3  = tab.F3
	f4  = tab.F4
	pct = tab.Pct
)

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m { //nocvet:orderfree keys are sorted before use
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
