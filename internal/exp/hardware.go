package exp

import (
	"fmt"

	"tasp/internal/power"
)

// paperTableI holds the paper's published numbers for comparison columns.
var paperTableI = map[power.TASPVariant]struct{ area, dyn, leak, ns float64 }{
	power.TASPFull:    {50.45, 25.5304, 30.2694, 0.21},
	power.TASPDest:    {33.516, 9.9263, 16.2355, 0.21},
	power.TASPSrc:     {33.516, 9.9263, 16.2355, 0.21},
	power.TASPDestSrc: {37.044, 10.9416, 16.2498, 0.21},
	power.TASPMem:     {44.4528, 10.1997, 17.0468, 0.21},
	power.TASPVC:      {31.9284, 10.5953, 15.0765, 0.21},
}

// RunTableI computes the area/power/timing of every TASP variant next to
// the paper's numbers.
func RunTableI() Table {
	t := Table{
		Title: "Table I: power, area and timing for each TASP variant (40 nm-like library, 1.0 V, 2 GHz)",
		Columns: []string{"variant", "width", "area um^2", "paper", "dyn uW", "paper",
			"leak nW", "paper", "path ns", "paper"},
		Notes: []string{
			"absolute values come from a synthetic cell library calibrated once; relative ordering is the reproduced claim",
		},
	}
	for _, v := range power.TASPVariants {
		b := power.BuildTASP(v)
		p := paperTableI[v]
		t.Rows = append(t.Rows, []string{
			string(v), fmt.Sprintf("%d", v.Width()),
			f2(b.Area()), f2(p.area),
			f2(b.Dynamic(power.DefaultFreqGHz)), f2(p.dyn),
			f2(b.Leakage()), f2(p.leak),
			f3(b.CriticalPathPS() / 1000), f2(p.ns),
		})
	}
	return t
}

// RunFigure9 renders the TASP per-variant area bars of Figure 9.
func RunFigure9() Table {
	t := Table{
		Title:   "Figure 9: TASP target selection vs area overhead",
		Columns: []string{"variant", "area um^2", "bar"},
	}
	for _, v := range power.TASPVariants {
		a := power.BuildTASP(v).Area()
		bar := ""
		for i := 0.0; i < a; i += 2.5 {
			bar += "#"
		}
		t.Rows = append(t.Rows, []string{string(v), f2(a), bar})
	}
	return t
}

// RunTableII computes the mitigation hardware overhead (threat detector +
// L-Ob) relative to the baseline router.
func RunTableII() Table {
	base := power.BuildRouter(power.DefaultRouterParams())
	p := power.DefaultRouterParams()
	p.WithMitigation = true
	sec := power.BuildRouter(p)
	det := sec.Sub("threat-detector")
	lob := sec.Sub("l-ob")

	t := Table{
		Title:   "Table II: overhead of the proposed mitigation (threat detector + L-Ob)",
		Columns: []string{"block", "area um^2", "dyn uW", "leak nW", "path ns"},
	}
	add := func(name string, b interface {
		Area() float64
		Dynamic(float64) float64
		Leakage() float64
		CriticalPathPS() float64
	}) {
		t.Rows = append(t.Rows, []string{
			name, f2(b.Area()), f2(b.Dynamic(power.DefaultFreqGHz)),
			f2(b.Leakage()), f3(b.CriticalPathPS() / 1000),
		})
	}
	add("router (baseline)", base)
	add("threat detector", det)
	add("l-ob", lob)
	add("router + mitigation", sec)
	t.Notes = append(t.Notes,
		fmt.Sprintf("area overhead %s (paper: ~2%%), dynamic power overhead %s (paper: ~6%%)",
			pct(sec.Area()/base.Area()-1),
			pct(sec.Dynamic(power.DefaultFreqGHz)/base.Dynamic(power.DefaultFreqGHz)-1)))
	return t
}

// RunFigure8 computes the four pie charts of Figure 8.
func RunFigure8() []Table {
	r := power.BuildRouter(power.DefaultRouterParams())
	ht := power.BuildTASP(power.TASPFull)
	freq := power.DefaultFreqGHz

	pie := func(title string, shares map[string]float64, paper map[string]string) Table {
		t := Table{Title: title, Columns: []string{"component", "share", "paper"}}
		for _, k := range sortedKeys(shares) {
			t.Rows = append(t.Rows, []string{k, pct(shares[k]), paper[k]})
		}
		return t
	}

	// Router dynamic power including one trojan.
	dynTot := r.Dynamic(freq) + ht.Dynamic(freq)
	dynShares := map[string]float64{"single TASP HT": ht.Dynamic(freq) / dynTot}
	for _, s := range r.Subs {
		dynShares[s.Name] += s.Dynamic(freq) / dynTot
	}
	d := pie("Figure 8: router dynamic power", dynShares, map[string]string{
		"buffer": "71%", "crossbar": "18%", "switch-allocator": "4%", "clock": "6%", "single TASP HT": "1%",
	})

	// Router leakage including one trojan.
	leakTot := r.Leakage() + ht.Leakage()
	leakShares := map[string]float64{"single TASP HT": ht.Leakage() / leakTot}
	for _, s := range r.Subs {
		leakShares[s.Name] += s.Leakage() / leakTot
	}
	l := pie("Figure 8: router leakage power", leakShares, map[string]string{
		"buffer": "88%", "crossbar": "9%", "switch-allocator": "3%", "clock": "0%", "single TASP HT": "0%",
	})

	// NoC area: global wire vs active vs one trojan.
	m := power.BuildNoC(power.DefaultNoCParams(), freq)
	areaTot := m.WireArea + m.ActiveArea + m.TASPArea
	a := pie("Figure 8: NoC area", map[string]float64{
		"global wire area": m.WireArea / areaTot,
		"active area":      m.ActiveArea / areaTot,
		"single TASP HT":   m.TASPArea / areaTot,
	}, map[string]string{
		"global wire area": "86%", "active area": "13%", "single TASP HT": "1%",
	})

	// NoC dynamic power: routers vs TASP on all 48 links.
	nd := pie("Figure 8: NoC dynamic power (worst case: TASP on all 48 links)", map[string]float64{
		"routers":              1 - m.AllTASPDynUW/m.NoCDynUW,
		"TASP on all 48 links": m.AllTASPDynUW / m.NoCDynUW,
	}, map[string]string{
		"routers": "99.44%", "TASP on all 48 links": "0.56%",
	})

	return []Table{d, l, a, nd}
}
