package exp

import (
	"fmt"

	"tasp/internal/core"
	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/reroute"
	"tasp/internal/tasp"
)

// Figure2 reproduces the paper's Figure 2: the latency effect of the three
// link-fault classes — transient (ECC absorbs or one retransmission),
// permanent (reroute, +hops), and a TASP trojan (trojan-defined delay; with
// L-Ob, a 1-3 cycle obfuscation penalty instead of unbounded stalling) — as
// a function of source-destination distance, with the fault on the first
// hop.
type Figure2 struct {
	Distances []int
	Clean     []float64 // baseline latency per distance
	Transient []float64 // one uncorrectable transient on the first hop
	Permanent []float64 // first hop disabled, rerouted
	TrojanLOb []float64 // armed trojan on first hop, L-Ob mitigation
	// TrojanFirst is the latency of the very first targeted packet, which
	// pays the full detect-and-escalate sequence.
	TrojanFirst []float64
}

// fig2Dests are destinations at hop distances 1..6 from router 0 whose XY
// path crosses link 0->1.
var fig2Dests = []int{1, 2, 3, 7, 11, 15}

// eastLink finds the directed link 0->1.
func eastLink(n *noc.Network) noc.LinkInfo {
	for _, l := range n.LinkSlice() {
		if l.From == 0 && l.FromPort == noc.PortEast {
			return l
		}
	}
	panic("exp: mesh without 0->east link")
}

// oneShot returns an adversary that corrupts exactly its first head flit
// with a double-bit (uncorrectable) error.
func oneShot() fault.Adversary {
	done := false
	return fault.InjectorFunc(func(_ uint64, w ecc.Codeword, fr fault.Framing) ecc.Codeword {
		if done || !fr.Head {
			return w
		}
		done = true
		return w.Flip(5).Flip(50)
	})
}

// measure runs a single packet 0->dst through the prepared network and
// returns its latency.
func measure(n *noc.Network, dst int) float64 {
	before := n.Counters.DeliveredPackets
	p := &flit.Packet{Hdr: flit.Header{DstR: uint8(dst), Mem: 0x100}}
	if !n.Inject(0, p) {
		panic("exp: injection failed on an idle network")
	}
	start := n.Counters.LatencySum
	for i := 0; i < 2000; i++ {
		n.Step()
		if n.Counters.DeliveredPackets > before {
			return float64(n.Counters.LatencySum - start)
		}
	}
	return -1 // undelivered: the unmitigated-trojan case
}

// RunFigure2 builds the latency-vs-distance series.
func RunFigure2() *Figure2 {
	cfg := noc.DefaultConfig()
	out := &Figure2{}
	for i, dst := range fig2Dests {
		out.Distances = append(out.Distances, i+1)

		// Clean baseline.
		n, _ := noc.New(cfg)
		out.Clean = append(out.Clean, measure(n, dst))

		// Transient: one uncorrectable upset on the first hop.
		n, _ = noc.New(cfg)
		w := noc.NewPlainWire()
		w.Tap = oneShot()
		n.SetWire(eastLink(n).ID, w)
		out.Transient = append(out.Transient, measure(n, dst))

		// Permanent: first hop disabled, table rebuilt around it.
		n, _ = noc.New(cfg)
		if _, err := reroute.Apply(n, map[int]bool{eastLink(n).ID: true}); err != nil {
			panic(err)
		}
		out.Permanent = append(out.Permanent, measure(n, dst))

		// Trojan with L-Ob: the first packet pays detection + escalation,
		// later packets only the logged-method penalty.
		n, _ = noc.New(cfg)
		ht := tasp.New(tasp.ForDest(uint8(dst)), tasp.DefaultPayloadBits, n.Layout())
		ht.SetKillSwitch(true)
		sw := core.NewSecureWire(ht, 42, n.Layout())
		n.SetWire(eastLink(n).ID, sw)
		out.TrojanFirst = append(out.TrojanFirst, measure(n, dst))
		out.TrojanLOb = append(out.TrojanLOb, measure(n, dst))
	}
	return out
}

// TableOf renders the figure as a latency table.
func (f *Figure2) TableOf() Table {
	t := Table{
		Title: "Figure 2: latency (cycles) vs distance for transient, permanent and TASP faults on the first hop",
		Columns: []string{"hops", "clean", "transient(+retx)", "permanent(+reroute)",
			"tasp first(+detect)", "tasp steady(+l-ob)"},
		Notes: []string{
			"transient pays one 1-3 cycle retransmission (Section III-B)",
			"permanent pays extra hops around the disabled link",
			"the first targeted packet pays plain retry + BIST + escalation; later packets only the logged obfuscation penalty (1-3 cycles)",
		},
	}
	for i := range f.Distances {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", f.Distances[i]),
			f1(f.Clean[i]), f1(f.Transient[i]), f1(f.Permanent[i]),
			f1(f.TrojanFirst[i]), f1(f.TrojanLOb[i]),
		})
	}
	return t
}
