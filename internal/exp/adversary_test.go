package exp

import (
	"strings"
	"testing"
)

// TestAdversaryExtensionRegistered pins the adversary study to the extension
// set: addressable by id, never part of -exp all (the canonical output is a
// regression baseline).
func TestAdversaryExtensionRegistered(t *testing.T) {
	if _, ok := Lookup(Extensions(), "adversary"); !ok {
		t.Fatal("adversary extension not registered")
	}
	if _, ok := Lookup(Registry("blackscholes"), "adversary"); ok {
		t.Fatal("adversary experiment leaked into the canonical registry")
	}
}

// TestAblationAdversaryShapes runs the cross-topology drop/misroute table
// and checks its qualitative content: six rows (three substrates, two quiet
// families), every infected set convicted in full, and every rank-1 verdict
// an infected link.
func TestAblationAdversaryShapes(t *testing.T) {
	tb, err := AblationAdversary(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows: %d, want 6 (3 topologies x 2 modes)", len(tb.Rows))
	}
	verdictCol, rankCol := len(tb.Columns)-2, len(tb.Columns)-1
	for _, row := range tb.Rows {
		if parts := strings.SplitN(row[verdictCol], "/", 2); len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("%s/%s: secure-ack convicted %s of the infected links", row[0], row[1], row[verdictCol])
		}
		if !strings.HasPrefix(row[rankCol], "hit") {
			t.Errorf("%s/%s: locate rank-1 missed the infected set (%s)", row[0], row[1], row[rankCol])
		}
	}
}
