package exp

import (
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tb Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tb.Title, row, col)
	}
	return tb.Rows[row][col]
}

func numCell(t *testing.T, tb Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.Fields(cell(t, tb, row, col))[0], "%")
	s = strings.Split(s, "/")[0]
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q not numeric", row, col, cell(t, tb, row, col))
	}
	return v
}

// TestAblationRetransScheme: per-VC retransmission buffers must contain a
// VC-targeted attack much better than the shared worst-case buffer.
func TestAblationRetransScheme(t *testing.T) {
	tb, err := AblationRetransScheme(1)
	if err != nil {
		t.Fatal(err)
	}
	shared := numCell(t, tb, 0, 1)
	perVC := numCell(t, tb, 1, 1)
	if perVC <= shared*2 {
		t.Fatalf("per-VC buffers (%.3f) should far outperform shared (%.3f) under a VC attack", perVC, shared)
	}
}

// TestAblationRoutingUnderFlood: XY must retain at least as much throughput
// as the classic turn models under a flood (the paper's Section III-A
// remark).
func TestAblationRoutingUnderFlood(t *testing.T) {
	tb, err := AblationRoutingUnderFlood(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	retained := map[string]float64{}
	for i, row := range tb.Rows {
		retained[row[0]] = numCell(t, tb, i, 3)
	}
	for _, adaptive := range []string{"west-first", "north-last", "negative-first"} {
		if retained["xy"] < retained[adaptive]-1.0 { // percentage points
			t.Errorf("xy retained %.1f%% vs %s %.1f%% — paper says xy wins below saturation",
				retained["xy"], adaptive, retained[adaptive])
		}
	}
	// Every algorithm must still deliver most traffic (flood congests, it
	// does not deadlock).
	for name, r := range retained {
		if r < 50 {
			t.Errorf("%s retained only %.1f%% under flood", name, r)
		}
	}
}

// TestAblationPayloadCounter: states grow quadratically, area linearly.
func TestAblationPayloadCounter(t *testing.T) {
	tb := AblationPayloadCounter()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	prevStates, prevArea := -1.0, -1.0
	for i := range tb.Rows {
		states := numCell(t, tb, i, 1)
		area := numCell(t, tb, i, 3)
		if states <= prevStates || area <= prevArea {
			t.Fatalf("row %d not monotone: states=%g area=%g", i, states, area)
		}
		prevStates, prevArea = states, area
	}
	// Y=8 (the reference) gives 28 two-wire payload states.
	if got := numCell(t, tb, 2, 1); got != 28 {
		t.Fatalf("Y=8 states %g, want 28", got)
	}
}

// TestAblationDetectorHistory: every capacity must still find the trojans
// (the repeat-fault funnel is per-link), and detection latency must not
// degrade with larger tables.
func TestAblationDetectorHistory(t *testing.T) {
	tb, err := AblationDetectorHistory(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tb.Rows {
		if !strings.HasPrefix(row[3], "2/") {
			t.Errorf("row %d (%s entries): trojans %s, want 2/2", i, row[0], row[3])
		}
	}
	small := numCell(t, tb, 0, 1)
	big := numCell(t, tb, len(tb.Rows)-1, 1)
	if big > small {
		t.Errorf("large history (%g cycles) slower than 1-entry history (%g)", big, small)
	}
}

// TestAblationEscalationOrder: both orders mitigate; invert-first pays less
// stall (1-cycle undo), scramble-first is the default.
func TestAblationEscalationOrder(t *testing.T) {
	tb, err := AblationEscalationOrder(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if tput := numCell(t, tb, i, 1); tput < 1.5 {
			t.Errorf("order %q failed to mitigate: tput %.3f", tb.Rows[i][0], tput)
		}
	}
	if scrStall, invStall := numCell(t, tb, 0, 3), numCell(t, tb, 1, 3); invStall >= scrStall {
		t.Errorf("invert-first stall %g not below scramble-first %g", invStall, scrStall)
	}
}

// TestAblationPlacement: cold links strike nothing; the target-flow-hottest
// placement disrupts the victim.
func TestAblationPlacement(t *testing.T) {
	tb, err := AblationPlacement(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	hotStrikes := numCell(t, tb, 0, 2)
	coldStrikes := numCell(t, tb, 3, 2)
	if coldStrikes != 0 {
		t.Errorf("cold links struck %g times", coldStrikes)
	}
	if hotStrikes == 0 {
		t.Error("target-flow-hottest placement never struck")
	}
	hotGoodput := numCell(t, tb, 0, 3)
	coldGoodput := numCell(t, tb, 3, 3)
	if hotGoodput >= coldGoodput {
		t.Errorf("victim goodput under hot placement (%g) not below cold placement (%g)",
			hotGoodput, coldGoodput)
	}
}

// TestDetectabilityStudy: the kill switch hides everything from logic
// testing; narrow triggers are excited when armed, wide ones never; the
// side-channel campaign stays at its false-positive floor for every
// variant.
func TestDetectabilityStudy(t *testing.T) {
	tb := DetectabilityStudy(1)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	for i, row := range tb.Rows {
		if row[2] != "0.0000" {
			t.Errorf("row %d: dormant trojan excited: %s", i, row[2])
		}
		det := numCell(t, tb, i, 4)
		if det > 0.10 {
			t.Errorf("%s: side-channel detection %.3f should sit at the fp floor", row[0], det)
		}
	}
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	if byName["Full"][3] != "never" || byName["Mem"][3] != "never" {
		t.Error("wide triggers should survive 100k vectors")
	}
	if byName["VC"][3] == "never" || byName["Dest"][3] == "never" {
		t.Error("narrow triggers should be excited when armed")
	}
}

// TestMigrationStudy: L-Ob variants unblock the chip; migration alone
// cannot (wedged flits persist); the migration rows actually migrate.
func TestMigrationStudy(t *testing.T) {
	tb, err := MigrationStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tb.Rows {
		byName[row[0]] = row
	}
	noneGood := numCell(t, tb, 0, 1)
	lobGood := numCell(t, tb, 1, 1)
	if lobGood <= noneGood {
		t.Errorf("l-ob victim goodput %g not above unmitigated %g", lobGood, noneGood)
	}
	for _, name := range []string{"s2s l-ob", "l-ob + migration"} {
		if byName[name][3] != "0/16" {
			t.Errorf("%s left blocked routers: %s", name, byName[name][3])
		}
	}
	for _, name := range []string{"migration", "l-ob + migration"} {
		if byName[name][4] != "1" {
			t.Errorf("%s migrations = %s, want 1", name, byName[name][4])
		}
	}
	if byName["none"][4] != "0" {
		t.Error("unmitigated run migrated")
	}
}

// TestClosedLoopStudy: the attack must hurt closed-loop transaction
// throughput far more than open-loop packet throughput, and L-Ob must
// restore it.
func TestClosedLoopStudy(t *testing.T) {
	tb, err := ClosedLoopStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	healthy := numCell(t, tb, 0, 1)
	attacked := numCell(t, tb, 1, 1)
	lob := numCell(t, tb, 2, 1)
	if attacked > healthy*0.5 {
		t.Errorf("closed-loop attack impact too small: %.3f vs healthy %.3f", attacked, healthy)
	}
	if lob < healthy*0.9 {
		t.Errorf("l-ob restored only %.3f of healthy %.3f", lob, healthy)
	}
}

// TestSaturationCurve: latency must be flat at low load and blow up past
// the knee; delivered throughput must be monotone in offered load up to
// saturation.
func TestSaturationCurve(t *testing.T) {
	tb, err := SaturationCurve()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	low := numCell(t, tb, 0, 2)
	mid := numCell(t, tb, 2, 2)
	high := numCell(t, tb, len(tb.Rows)-1, 2)
	if mid > low*2 {
		t.Errorf("latency not flat below the knee: %.1f vs %.1f", mid, low)
	}
	if high < low*4 {
		t.Errorf("no saturation blow-up: %.1f vs %.1f", high, low)
	}
	prev := 0.0
	for i := range tb.Rows {
		d := numCell(t, tb, i, 1)
		if d+0.2 < prev {
			t.Errorf("delivered throughput dropped at row %d: %.3f after %.3f", i, d, prev)
		}
		prev = d
	}
}
