package exp

import (
	"fmt"

	"tasp/internal/core"
	"tasp/internal/flit"
	"tasp/internal/migrate"
	"tasp/internal/noc"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// MigrationStudy evaluates the OS response the paper suggests as a
// complement to L-Ob: migrating the victim application out of the trojan's
// hunting region. Four configurations run the Figure 11 attack: no
// response, L-Ob only, migration only, and both. Migration rescues the
// victim application's goodput even without obfuscation — but whoever the
// OS moves *into* the hot region inherits the attack, so only L-Ob (or
// both) also saves chip-wide throughput.
func MigrationStudy(seed uint64) (Table, error) {
	t := Table{
		Title:   "Extension: OS process migration as a complement to L-Ob (Figure 11 attack)",
		Columns: []string{"response", "victim goodput (pkts)", "total tput", "blocked routers", "migrations"},
		Notes: []string{
			"migration retargets only *future* traffic: flits already wedged in the retransmission buffers still carry the old destination and stall forever (dropping is unsupported), so the saturation tree persists and the displaced processes inherit the attack — migration complements L-Ob, it cannot replace it",
		},
	}
	for _, c := range []struct {
		name    string
		lob     bool
		migrate bool
	}{
		{"none", false, false},
		{"s2s l-ob", true, false},
		{"migration", false, true},
		{"l-ob + migration", true, true},
	} {
		row, err := runMigrationCase(seed, c.lob, c.migrate)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, append([]string{c.name}, row...))
	}
	return t, nil
}

// runMigrationCase runs one Figure 11 attack with the chosen responses.
func runMigrationCase(seed uint64, useLOb, useMigration bool) ([]string, error) {
	ncfg := noc.DefaultConfig()
	net, err := noc.New(ncfg)
	if err != nil {
		return nil, err
	}
	model, err := traffic.Benchmark("blackscholes", ncfg)
	if err != nil {
		return nil, err
	}
	const (
		victim      = 0
		warmup      = 1500
		measure     = 1500
		detectDelay = 250
	)
	target := tasp.ForDest(victim)
	infected := core.ChooseInfectedLinks(model, ncfg, net.LinkSlice(), 2, target)
	trojans := make([]*tasp.HT, 0, len(infected))
	for _, l := range net.LinkSlice() {
		var ht *tasp.HT
		for _, id := range infected {
			if id == l.ID {
				ht = tasp.New(target, tasp.DefaultPayloadBits, net.Layout())
				trojans = append(trojans, ht)
			}
		}
		var w *core.SecureWire
		if ht != nil {
			w = core.NewSecureWire(ht, seed^uint64(l.ID), net.Layout())
		} else {
			w = core.NewSecureWire(nil, seed^uint64(l.ID), net.Layout())
		}
		w.Mitigated = useLOb
		net.SetWire(l.ID, w)
	}

	mig := migrate.New(ncfg)
	var victimGoodput uint64
	net.SetDelivered(func(d noc.Delivery) {
		if net.Cycle() >= warmup && mig.LogRouter(int(d.Hdr.DstR)) == victim {
			victimGoodput++
		}
	})

	gen := model.Generator(seed)
	inject := func(coreID int, p *flit.Packet) bool {
		phys := mig.PhysCore(coreID)
		if mig.Paused(net.Cycle(), ncfg.CoreRouter(phys)) {
			return false
		}
		mig.Rewrite(p)
		return net.Inject(phys, p)
	}

	var atEnable noc.Counters
	var pendingTransfer []*flit.Packet
	for c := 0; c < warmup+measure; c++ {
		if net.Cycle()+1 == warmup {
			for _, ht := range trojans {
				ht.SetKillSwitch(true)
			}
		}
		gen.Tick(inject)
		// Drain pending state-transfer packets a few per cycle.
		for i := 0; i < 2 && len(pendingTransfer) > 0; i++ {
			p := pendingTransfer[0]
			src := int(p.Hdr.Mem>>16) & 0xff // stashed source core
			if net.Inject(src, p) {
				pendingTransfer = pendingTransfer[1:]
			} else {
				break
			}
		}
		net.Step()
		if net.Cycle() == warmup {
			atEnable = net.Counters
		}
		if useMigration && mig.Moves == 0 && net.Cycle() >= warmup+detectDelay {
			fromPhys := mig.PhysRouter(victim)
			donor := migrate.PlanTarget(ncfg, net.LinkSlice(), infected, fromPhys)
			mig.Evacuate(victim, donor, net.Cycle())
			for i, p := range mig.StateTransfer(fromPhys, donor, 24) {
				src := fromPhys*ncfg.Concentration + i%ncfg.Concentration
				p.Hdr.Mem = uint32(src) << 16
				pendingTransfer = append(pendingTransfer, p)
			}
		}
	}

	tput := float64(net.Counters.DeliveredPackets-atEnable.DeliveredPackets) / measure
	blocked := net.Occupancy().BlockedRouters
	return []string{
		fmt.Sprintf("%d", victimGoodput),
		f3(tput),
		fmt.Sprintf("%d/%d", blocked, ncfg.Routers()),
		fmt.Sprintf("%d", mig.Moves),
	}, nil
}
