package exp

import (
	"fmt"

	"tasp/internal/campaign"
)

// AblationScale runs the paper's standard attack protocol (Figure 11:
// blackscholes, TASP on the two hottest dest-0 links, 1500-cycle warm-up)
// on the paper's 4x4 mesh and on an 8x8/256-core mesh, and reports how
// TASP potency and the S2S L-Ob recovery carry over when the substrate
// quadruples. The 8x8 runs use the wider header layout the configuration
// derives (6-bit router ids instead of 4), so the trojan comparator, the
// L-Ob granularity windows and the flow log are all rebuilt for the larger
// platform — nothing is transplanted from the 16-router instance.
func AblationScale(seed uint64) (Table, error) {
	t := Table{
		Title: "Extension: TASP potency and S2S L-Ob recovery vs substrate scale (Figure 11 protocol per platform)",
		Columns: []string{
			"platform", "routers", "cores", "header", "infected", "clean tput",
			"attacked tput", "retained", "l-ob tput", "l-ob retained", "blocked (none)",
		},
		Notes: []string{
			"same workload family, seed and attacker strategy on both platforms; trojan links are re-chosen per platform from the analytic target-flow loads",
			"the 8x8 header layout widens the router-id fields to 6 bits, so the trojan taps and the L-Ob header window are compiled against the scaled layout",
			"scale amplifies the single point of attack: the larger mesh funnels four times the flows toward the victim's hotspot, so the wedged wormhole tree back-pressures nearly the whole substrate; S2S L-Ob still recovers >90% of clean throughput",
		},
	}
	sr := newScenarios()
	for _, p := range []struct {
		name          string
		width, height int
	}{
		{"4x4 mesh", 4, 4},
		{"8x8 mesh", 8, 8},
	} {
		mk := func(kind, mit string) campaign.Scenario {
			sc := figure11Scenario(seed)
			sc.Width, sc.Height = p.width, p.height
			sc.Attack.Kind = kind
			sc.Mitigation = mit
			return sc
		}
		clean, err := sr.run(mk("none", "none"))
		if err != nil {
			return t, fmt.Errorf("%s clean: %w", p.name, err)
		}
		attacked, err := sr.run(mk("dest", "none"))
		if err != nil {
			return t, fmt.Errorf("%s attacked: %w", p.name, err)
		}
		defended, err := sr.run(mk("dest", "s2s-lob"))
		if err != nil {
			return t, fmt.Errorf("%s defended: %w", p.name, err)
		}
		ncfg := clean.Config.Noc
		layout := ncfg.Layout()
		last := attacked.Samples[len(attacked.Samples)-1]
		t.Rows = append(t.Rows, []string{
			p.name,
			fmt.Sprintf("%d", ncfg.Routers()),
			fmt.Sprintf("%d", ncfg.Cores()),
			fmt.Sprintf("%db hdr/%db ids", layout.HeaderBits(), layout.SrcBits),
			fmt.Sprintf("%v", attacked.InfectedLinks),
			f3(clean.Throughput),
			f3(attacked.Throughput),
			pct(attacked.Throughput / clean.Throughput),
			f3(defended.Throughput),
			pct(defended.Throughput / clean.Throughput),
			fmt.Sprintf("%d/%d", last.BlockedRouters, ncfg.Routers()),
		})
	}
	return t, nil
}
