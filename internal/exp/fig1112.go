package exp

import (
	"fmt"

	"tasp/internal/core"
	"tasp/internal/tasp"
	"tasp/internal/traffic"
)

// Figure11 holds the two runs of the paper's Figure 11: (a) a single active
// TASP attack point with no effective mitigation (e2e obfuscation fails on
// routing-field triggers) and (b) the same workload with no trojan.
type Figure11 struct {
	Attacked *core.Results
	Healthy  *core.Results
}

// RunFigure11 executes both runs with the paper's protocol: Blackscholes
// traces, 1500-cycle warm-up, then the kill switch.
func RunFigure11(seed uint64) (*Figure11, error) {
	sr := newScenarios()
	atk := figure11Scenario(seed)
	atk.Mitigation = "e2e-obfuscation" // present but ineffective, as in 11(a)
	a, err := sr.run(atk)
	if err != nil {
		return nil, err
	}
	clean := figure11Scenario(seed)
	clean.Attack.Kind = "none"
	h, err := sr.run(clean)
	if err != nil {
		return nil, err
	}
	return &Figure11{Attacked: a, Healthy: h}, nil
}

// seriesTable renders one run's occupancy time series.
func seriesTable(title string, res *core.Results, every int) Table {
	t := Table{
		Title: title,
		Columns: []string{"cycle", "input util", "output util", "injection util",
			">=1 port blocked", "all cores full", ">50% cores full"},
	}
	for i, s := range res.Samples {
		if i%every != 0 && i != len(res.Samples)-1 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s.Cycle),
			fmt.Sprintf("%d", s.InputFlits),
			fmt.Sprintf("%d", s.OutputFlits),
			fmt.Sprintf("%d", s.InjectionFlit),
			fmt.Sprintf("%d", s.BlockedRouters),
			fmt.Sprintf("%d", s.AllCoresFull),
			fmt.Sprintf("%d", s.HalfCoresFull),
		})
	}
	return t
}

// Tables renders Figure 11(a) and 11(b).
func (f *Figure11) Tables() []Table {
	a := seriesTable("Figure 11(a): single active TASP attack point, e2e obfuscation failing (no s2s mitigation)", f.Attacked, 4)
	a.Notes = append(a.Notes,
		fmt.Sprintf("trojan matches=%d injections=%d; throughput %.3f pkt/cyc",
			f.Attacked.HTMatches, f.Attacked.HTInjections, f.Attacked.Throughput))
	b := seriesTable("Figure 11(b): no trojan (normal operation)", f.Healthy, 4)
	b.Notes = append(b.Notes, fmt.Sprintf("throughput %.3f pkt/cyc", f.Healthy.Throughput))
	return []Table{a, b}
}

// Figure12 holds the paper's Figure 12: (a) a TDM QoS NoC with the trojan
// striking one domain, and (b) the proposed threat detector + s2s L-Ob.
type Figure12 struct {
	TDM *core.Results
	LOb *core.Results
}

// RunFigure12 executes both runs.
func RunFigure12(seed uint64) (*Figure12, error) {
	cfg := core.DefaultExperiment()
	cfg.Seed = seed
	cfg.Mitigation = core.TDMQoS
	// TDM halves per-domain bandwidth; run at a rate it sustains cleanly.
	m, err := traffic.Benchmark(cfg.Benchmark, cfg.Noc)
	if err != nil {
		return nil, err
	}
	m.Rate = 0.03
	cfg.Model = m
	// The trojan targets domain 2 (the upper half of the VCs).
	cfg.Attack.Target = tasp.ForVCRange(2, 0b10)
	cfg.Attack.NumLinks = 4
	tdm, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}

	lo := core.DefaultExperiment()
	lo.Seed = seed
	lo.Mitigation = core.S2SLOb
	lob, err := core.Run(lo)
	if err != nil {
		return nil, err
	}
	return &Figure12{TDM: tdm, LOb: lob}, nil
}

// Tables renders Figure 12(a) with per-domain series and 12(b).
func (f *Figure12) Tables() []Table {
	a := Table{
		Title: "Figure 12(a): TDM QoS (two domains) under a TASP attack on domain 2",
		Columns: []string{"cycle",
			"D1 in", "D1 out", "D1 injq", "D1 allfull",
			"D2 in", "D2 out", "D2 injq", "D2 allfull"},
	}
	for i, s := range f.TDM.Samples {
		if i%4 != 0 && i != len(f.TDM.Samples)-1 {
			continue
		}
		d1, d2 := s.Domain[0], s.Domain[1]
		a.Rows = append(a.Rows, []string{
			fmt.Sprintf("%d", s.Cycle),
			fmt.Sprintf("%d", d1.InputFlits), fmt.Sprintf("%d", d1.OutputFlits),
			fmt.Sprintf("%d", d1.InjectionFlit), fmt.Sprintf("%d", d1.AllCoresFull),
			fmt.Sprintf("%d", d2.InputFlits), fmt.Sprintf("%d", d2.OutputFlits),
			fmt.Sprintf("%d", d2.InjectionFlit), fmt.Sprintf("%d", d2.AllCoresFull),
		})
	}
	a.Notes = append(a.Notes,
		"the attack saturates domain 2's injection while domain 1 keeps operating — contained, but D2 still deadlocks")

	b := seriesTable("Figure 12(b): proposed threat detector + s2s L-Ob", f.LOb, 4)
	b.Notes = append(b.Notes, fmt.Sprintf(
		"detections: %v; obfuscated traversals=%d; total undo stall=%d cycles; throughput %.3f pkt/cyc",
		len(f.LOb.Detections), f.LOb.Obfuscated, f.LOb.StallCycles, f.LOb.Throughput))
	return []Table{a, b}
}
