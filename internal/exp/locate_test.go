package exp

import (
	"testing"

	"tasp/internal/core"
	"tasp/internal/locate"
)

func runLocate(t *testing.T, topo string, seed uint64) *core.Results {
	t.Helper()
	cfg := core.DefaultExperiment()
	cfg.Seed = seed
	cfg.Noc.Topo = topo
	cfg.Locate = true
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatalf("%s seed %d: %v", topo, seed, err)
	}
	if len(res.Suspects) == 0 {
		t.Fatalf("%s seed %d: locate produced no suspects", topo, seed)
	}
	return res
}

// TestLocateRankOneMesh is the localization layer's acceptance test: on the
// canonical mesh attack (Figure 11 protocol — blackscholes, TASP on the two
// hottest dest-0 links, 1500-cycle warm-up) the fused ranking must put an
// infected link at rank 1 for both pinned seeds, with a positive margin, and
// the per-sample verdict must settle inside the infected set.
func TestLocateRankOneMesh(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		res := runLocate(t, "mesh", seed)
		if !rankHit(res.Suspects, res.InfectedLinks) {
			t.Fatalf("seed %d: rank-1 = link %d, want one of the infected %v (top: %+v)",
				seed, res.Suspects[0].LinkID, res.InfectedLinks, res.Suspects[:3])
		}
		if res.Suspects[0].Confidence <= 0 {
			t.Fatalf("seed %d: rank-1 confidence %f, want a positive margin",
				seed, res.Suspects[0].Confidence)
		}
		if _, ok := timeToLocalize(res.SuspectTrace, res.InfectedLinks, 1500); !ok {
			t.Fatalf("seed %d: per-sample verdict never settled on an infected link", seed)
		}
	}
}

// TestLocateRankOneTorusRing pins the cross-substrate behaviour the
// EXPERIMENTS.md table reports: the fused ranking localizes the infected set
// on the torus and the ring too.
func TestLocateRankOneTorusRing(t *testing.T) {
	for _, topo := range []string{"torus", "ring"} {
		res := runLocate(t, topo, 1)
		if !rankHit(res.Suspects, res.InfectedLinks) {
			t.Fatalf("%s: rank-1 = link %d, want one of the infected %v",
				topo, res.Suspects[0].LinkID, res.InfectedLinks)
		}
	}
}

// TestLocateTelemetryOnlyMesh pins the ablation column: on the mesh the
// detector-free ranking (blocked-port telemetry + structural priors alone)
// still finds an infected link at rank 1.
func TestLocateTelemetryOnlyMesh(t *testing.T) {
	res := runLocate(t, "mesh", 1)
	if !rankHit(res.SuspectsTelemetry, res.InfectedLinks) {
		t.Fatalf("telemetry-only rank-1 = link %d, want one of the infected %v",
			res.SuspectsTelemetry[0].LinkID, res.InfectedLinks)
	}
}

// TestTimeToLocalize covers the trace-settling helper on synthetic traces.
func TestTimeToLocalize(t *testing.T) {
	infected := []int{3, 17}
	trace := []locate.TraceSample{
		{Cycle: 1525, LinkID: 9},
		{Cycle: 1550, LinkID: 3},
		{Cycle: 1575, LinkID: 9},
		{Cycle: 1600, LinkID: 17},
		{Cycle: 1625, LinkID: 3},
	}
	if d, ok := timeToLocalize(trace, infected, 1500); !ok || d != 100 {
		t.Fatalf("timeToLocalize = %d, %v; want 100 (settles at 1600)", d, ok)
	}
	if _, ok := timeToLocalize([]locate.TraceSample{{Cycle: 1525, LinkID: 9}}, infected, 1500); ok {
		t.Fatal("settled on a non-infected verdict")
	}
	if _, ok := timeToLocalize(nil, infected, 1500); ok {
		t.Fatal("settled with no trace")
	}
}
