package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"tasp/internal/noc"
)

// Experiment is one runnable entry of the paper's evaluation: a stable id
// plus a seed-parameterised harness returning rendered tables. Every
// harness builds its own *noc.Network (and any other simulation state) from
// scratch on each call and touches no shared mutable state, which is the
// concurrency contract that lets RunAll fan experiments out across
// goroutines while staying bit-identical to serial execution.
type Experiment struct {
	ID  string
	Run func(seed uint64) ([]Table, error)
}

// Result is the outcome of one experiment run.
type Result struct {
	ID     string
	Tables []Table
	Err    error
}

// Registry returns the canonical, ordered list of experiments behind the
// paper's tables/figures and the extension studies — the same order
// `cmd/experiments -exp all` prints. bench selects the traffic trace used
// by fig1 (the other experiments fix their own workloads).
func Registry(bench string) []Experiment {
	return RegistryFor(bench, noc.DefaultConfig())
}

// RegistryFor is Registry with an explicit platform for the workload
// characterisation (fig1) — the `-topology` knob. The paper-reproduction
// experiments pin their own platform (the 4x4 mesh the paper evaluates), so
// only fig1 follows ncfg; cross-substrate attack results live in the
// "topology" extension instead.
func RegistryFor(bench string, ncfg noc.Config) []Experiment {
	one := func(t Table, err error) ([]Table, error) {
		if err != nil {
			return nil, err
		}
		return []Table{t}, nil
	}
	return []Experiment{
		{ID: "fig1", Run: func(uint64) ([]Table, error) {
			f, err := RunFigure1(bench, ncfg)
			if err != nil {
				return nil, err
			}
			return []Table{f.MatrixTable(), f.HotspotTable(ncfg), f.LinkTable()}, nil
		}},
		{ID: "fig2", Run: func(uint64) ([]Table, error) {
			return []Table{RunFigure2().TableOf()}, nil
		}},
		{ID: "table1", Run: func(uint64) ([]Table, error) {
			return []Table{RunTableI()}, nil
		}},
		{ID: "fig9", Run: func(uint64) ([]Table, error) {
			return []Table{RunFigure9()}, nil
		}},
		{ID: "table2", Run: func(uint64) ([]Table, error) {
			return []Table{RunTableII()}, nil
		}},
		{ID: "fig8", Run: func(uint64) ([]Table, error) {
			return RunFigure8(), nil
		}},
		{ID: "fig10", Run: func(seed uint64) ([]Table, error) {
			pts, err := RunFigure10(seed)
			if err != nil {
				return nil, err
			}
			return []Table{Figure10Table(pts)}, nil
		}},
		{ID: "fig11", Run: func(seed uint64) ([]Table, error) {
			f, err := RunFigure11(seed)
			if err != nil {
				return nil, err
			}
			return f.Tables(), nil
		}},
		{ID: "fig12", Run: func(seed uint64) ([]Table, error) {
			f, err := RunFigure12(seed)
			if err != nil {
				return nil, err
			}
			return f.Tables(), nil
		}},
		{ID: "headline", Run: func(seed uint64) ([]Table, error) {
			return one(Headline(seed))
		}},
		{ID: "ablations", Run: func(seed uint64) ([]Table, error) {
			var out []Table
			for _, a := range []struct {
				name string
				fn   func() (Table, error)
			}{
				{"retrans-scheme", func() (Table, error) { return AblationRetransScheme(seed) }},
				{"routing-vs-flood", func() (Table, error) { return AblationRoutingUnderFlood(seed) }},
				{"payload-counter", func() (Table, error) { return AblationPayloadCounter(), nil }},
				{"detector-history", func() (Table, error) { return AblationDetectorHistory(seed) }},
				{"escalation-order", func() (Table, error) { return AblationEscalationOrder(seed) }},
				{"ht-placement", func() (Table, error) { return AblationPlacement(seed) }},
			} {
				t, err := a.fn()
				if err != nil {
					return nil, fmt.Errorf("%s: %w", a.name, err)
				}
				out = append(out, t)
			}
			return out, nil
		}},
		{ID: "detectability", Run: func(seed uint64) ([]Table, error) {
			return []Table{DetectabilityStudy(seed)}, nil
		}},
		{ID: "migration", Run: func(seed uint64) ([]Table, error) {
			return one(MigrationStudy(seed))
		}},
		{ID: "closedloop", Run: func(seed uint64) ([]Table, error) {
			return one(ClosedLoopStudy(seed))
		}},
		{ID: "saturation", Run: func(uint64) ([]Table, error) {
			return one(SaturationCurve())
		}},
	}
}

// Extensions returns studies addressable by id but excluded from the
// canonical `-exp all` set, so adding one never perturbs the regression
// baseline of the canonical output.
func Extensions() []Experiment {
	return []Experiment{
		{ID: "topology", Run: func(seed uint64) ([]Table, error) {
			t, err := AblationTopology(seed)
			if err != nil {
				return nil, err
			}
			return []Table{t}, nil
		}},
		{ID: "scale", Run: func(seed uint64) ([]Table, error) {
			t, err := AblationScale(seed)
			if err != nil {
				return nil, err
			}
			return []Table{t}, nil
		}},
		{ID: "locate", Run: func(seed uint64) ([]Table, error) {
			t, err := AblationLocate(seed)
			if err != nil {
				return nil, err
			}
			return []Table{t}, nil
		}},
		{ID: "adversary", Run: func(seed uint64) ([]Table, error) {
			t, err := AblationAdversary(seed)
			if err != nil {
				return nil, err
			}
			return []Table{t}, nil
		}},
		{ID: "adaptive", Run: func(seed uint64) ([]Table, error) {
			t, err := AblationAdaptive(seed)
			if err != nil {
				return nil, err
			}
			return []Table{t}, nil
		}},
	}
}

// Lookup returns the registry entry with the given id, or false.
func Lookup(exps []Experiment, id string) (Experiment, bool) {
	for _, e := range exps {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registry ids in order.
func IDs(exps []Experiment) []string {
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// DefaultWorkers is the worker count RunAll uses when given workers <= 0:
// one per available CPU, capped at the experiment count.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// RunAll executes the experiments with one seed, fanned out across at most
// `workers` goroutines (<= 1 runs serially on the calling goroutine, 0
// means DefaultWorkers). Results come back in registry order regardless of
// completion order, so rendered output is byte-identical to a serial run.
//
// Concurrency contract: each Experiment.Run call owns every piece of
// simulation state it touches (networks, RNGs, traffic models) and shares
// nothing mutable with other experiments. The determinism regression test
// and the -race suite in this package enforce the contract.
func RunAll(exps []Experiment, seed uint64, workers int) []Result {
	results := make([]Result, len(exps))
	runOne := func(i int) {
		ts, err := exps[i].Run(seed)
		results[i] = Result{ID: exps[i].ID, Tables: ts, Err: err}
	}
	if workers == 0 {
		workers = DefaultWorkers()
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers <= 1 {
		for i := range exps {
			runOne(i)
		}
		return results
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// RenderAll renders a result set exactly as `cmd/experiments -exp all`
// prints it: a banner per experiment followed by its tables. The first
// experiment error is returned (with its id) after rendering stops.
func RenderAll(results []Result) (string, error) {
	var sb strings.Builder
	for _, res := range results {
		fmt.Fprintf(&sb, "==== %s ====\n\n", res.ID)
		if res.Err != nil {
			return sb.String(), fmt.Errorf("%s: %w", res.ID, res.Err)
		}
		for _, t := range res.Tables {
			sb.WriteString(t.Render())
			sb.WriteString("\n")
		}
	}
	return sb.String(), nil
}
