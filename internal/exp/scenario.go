package exp

import (
	"tasp/internal/campaign"
	"tasp/internal/core"
)

// scenarios adapts the harnesses onto the declarative campaign layer: an
// experiment states its points as campaign.Scenario values and runs them on
// a shared core.Runner, reusing simulation arenas across its runs exactly
// like a campaign worker does. The results (and hence the golden experiment
// output) are unchanged — runner/Run equivalence is pinned by core's
// TestRunnerMatchesRun and the golden regression.
//
// Experiments whose knobs a scenario cannot express (explicit link lists,
// detector-history and retransmission-scheme ablations, custom traffic
// models, mid-run rewiring) keep driving core directly.
type scenarios struct{ r *core.Runner }

func newScenarios() scenarios { return scenarios{core.NewRunner()} }

func (s scenarios) run(sc campaign.Scenario) (*core.Results, error) {
	cfg, err := sc.Config()
	if err != nil {
		return nil, err
	}
	return s.r.Run(cfg)
}

// figure11Scenario is the paper's standard attack protocol (Figure 11:
// blackscholes, dest-0 TASP on the two hottest target-flow links,
// 1500-cycle phases) as a declarative scenario — the twin of
// core.DefaultExperiment.
func figure11Scenario(seed uint64) campaign.Scenario {
	return campaign.Scenario{
		Benchmark: "blackscholes",
		Seed:      seed,
		Attack:    campaign.AttackSpec{Kind: "dest"},
	}
}
