package exp

import (
	"fmt"

	"tasp/internal/campaign"
	"tasp/internal/core"
	"tasp/internal/detect"
	"tasp/internal/noc"
)

// AblationAdaptive runs the adaptive adversary arms race on every supported
// substrate under the Figure 11 protocol: a duty-cycled throttle dropper
// first against the stock streak-only secure-ack detector (which it is tuned
// to evade), then against the cumulative-deficit channel (which convicts
// it), and a three-link colluding dropper set against the cross-link fused
// view — each conviction feeding retransmit-around recovery, with delivered
// throughput after the reconfiguration measured against the clean baseline.
func AblationAdaptive(seed uint64) (Table, error) {
	t := Table{
		Title: "Extension: adaptive trojans vs deficit/fused detection and retransmit-around recovery (Figure 11 protocol per substrate)",
		Columns: []string{
			"topology", "mode", "detector", "infected", "attacked tput", "retained",
			"verdicts", "channel", "recovered@", "post-recovery", "rank-1",
		},
		Notes: []string{
			"throttle: the drop payload gated by a duty cycle tuned under the streak threshold — the stock consecutive-window detector never convicts (\"evaded\")",
			"collude: three trojan links rotate the strike duty so no single link sustains a streak or a per-link deficit; the fused cross-link view attributes the summed loss",
			"detector=stock disables the deficit/fused channels (streak only); detector=deficit runs the full monitor",
			"post-recovery: delivered throughput from the first conviction-driven reroute to the end of the run, as a share of the clean baseline",
			"rank-1: whether the locate engine's top suspect is an infected link at the end of the run",
		},
	}
	sr := newScenarios()
	for _, topo := range noc.Topologies() {
		mk := func(mode string, numLinks int) campaign.Scenario {
			sc := figure11Scenario(seed)
			sc.Topology = topo
			if mode == "none" {
				sc.Attack.Kind = "none"
			} else {
				sc.Attack.Mode = mode
			}
			if numLinks > 0 {
				sc.Attack.NumLinks = numLinks
			}
			sc.SecureAck = mode != "none"
			sc.Locate = mode != "none"
			return sc
		}
		clean, err := sr.run(mk("none", 0))
		if err != nil {
			return t, fmt.Errorf("%s clean: %w", topo, err)
		}
		cleanTput := clean.Throughput

		arms := []struct {
			mode     string
			numLinks int
			stock    bool // streak-only detector (deficit/fused disabled)
			recover  bool
		}{
			{"throttle", 0, true, false},
			{"throttle", 0, false, true},
			{"collude", 3, false, true},
		}
		for _, arm := range arms {
			sc := mk(arm.mode, arm.numLinks)
			sc.Recover = arm.recover
			cfg, err := sc.Config()
			if err != nil {
				return t, fmt.Errorf("%s %s: %w", topo, arm.mode, err)
			}
			if arm.stock {
				// Not expressible as a scenario knob by design: the stock
				// arm exists only to show the evasion, so it drives the
				// runner directly.
				cfg.AckDeficitRatio = -1
			}
			res, err := sr.r.Run(cfg)
			if err != nil {
				return t, fmt.Errorf("%s %s: %w", topo, arm.mode, err)
			}
			verdicts, channel := 0, "-"
			for _, id := range res.InfectedLinks {
				if c := res.AckVerdicts[id]; c == detect.AckDropper || c == detect.AckMisroute {
					verdicts++
					channel = res.AckChannels[id].String()
				}
			}
			det := "deficit"
			if arm.stock {
				det = "stock"
			}
			verdictCell := fmt.Sprintf("%d/%d", verdicts, len(res.InfectedLinks))
			if verdicts == 0 {
				verdictCell = "evaded"
			}
			recovered, postRec := "-", "-"
			if res.RecoveredAt > 0 {
				recovered = fmt.Sprintf("%d", res.RecoveredAt)
				postRec = pct(postRecoveryTput(res) / cleanTput)
			}
			rank1 := "miss"
			if len(res.Suspects) > 0 {
				for _, id := range res.InfectedLinks {
					if res.Suspects[0].LinkID == id {
						rank1 = fmt.Sprintf("hit (link %d)", id)
						break
					}
				}
			}
			t.Rows = append(t.Rows, []string{
				topo,
				arm.mode,
				det,
				fmt.Sprintf("%v", res.InfectedLinks),
				f3(res.Throughput),
				pct(res.Throughput / cleanTput),
				verdictCell,
				channel,
				recovered,
				postRec,
				rank1,
			})
		}
	}
	return t, nil
}

// postRecoveryTput is delivered packets per cycle from the first
// conviction-driven reconfiguration to the end of the run.
func postRecoveryTput(res *core.Results) float64 {
	total := uint64(res.Config.Warmup + res.Config.Measure)
	if res.RecoveredAt == 0 || total <= res.RecoveredAt {
		return 0
	}
	return float64(res.Final.DeliveredPackets-res.AtRecover.DeliveredPackets) / float64(total-res.RecoveredAt)
}
