package exp

import (
	"fmt"

	"tasp/internal/power"
)

// Headline checks the paper's abstract/conclusion claims in one pass and
// renders a claim-by-claim comparison. It is the summary row of
// EXPERIMENTS.md.
func Headline(seed uint64) (Table, error) {
	t := Table{
		Title:   "Headline claims: paper vs this reproduction",
		Columns: []string{"claim", "paper", "measured"},
	}

	// Hardware claims.
	r := power.BuildRouter(power.DefaultRouterParams())
	ht := power.BuildTASP(power.TASPFull)
	t.Rows = append(t.Rows, []string{
		"TASP footprint relative to one router (area)", "<1%",
		pct(ht.Area() / r.Area()),
	})
	p := power.DefaultRouterParams()
	p.WithMitigation = true
	sec := power.BuildRouter(p)
	t.Rows = append(t.Rows, []string{
		"mitigation area overhead", "2%", pct(sec.Area()/r.Area() - 1),
	})
	t.Rows = append(t.Rows, []string{
		"mitigation power overhead", "6%",
		pct(sec.Dynamic(power.DefaultFreqGHz)/r.Dynamic(power.DefaultFreqGHz) - 1),
	})

	// Attack potency claims (Figure 11 protocol).
	sr := newScenarios()
	res, err := sr.run(figure11Scenario(seed))
	if err != nil {
		return t, err
	}
	bestBlocked, fastCycle := 0, uint64(0)
	for _, s := range res.Samples {
		if s.BlockedRouters > bestBlocked {
			bestBlocked = s.BlockedRouters
			fastCycle = s.Cycle
		}
		if s.BlockedRouters >= 11 && fastCycle == 0 {
			fastCycle = s.Cycle
		}
	}
	last := res.Samples[len(res.Samples)-1]
	R := res.Config.Noc.Routers()
	t.Rows = append(t.Rows, []string{
		">=1 blocked port on routers, <1500 cycles after enable", "68% (11/16)",
		fmt.Sprintf("%d/%d (%s)", last.BlockedRouters, R, pct(float64(last.BlockedRouters)/float64(R))),
	})
	t.Rows = append(t.Rows, []string{
		"injection ports (>50% cores full) deadlocked by 1500 cycles", "81% (13/16)",
		fmt.Sprintf("%d/%d (%s)", last.HalfCoresFull, R, pct(float64(last.HalfCoresFull)/float64(R))),
	})

	// Mitigation efficacy.
	lo := figure11Scenario(seed)
	lo.Mitigation = "s2s-lob"
	lores, err := sr.run(lo)
	if err != nil {
		return t, err
	}
	clean := figure11Scenario(seed)
	clean.Attack.Kind = "none"
	cres, err := sr.run(clean)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"throughput under attack with s2s L-Ob (vs clean)", "graceful (1-3 cycle penalty)",
		fmt.Sprintf("%.3f vs %.3f pkt/cyc (%s)", lores.Throughput, cres.Throughput,
			pct(lores.Throughput/cres.Throughput)),
	})
	t.Rows = append(t.Rows, []string{
		"throughput under attack without mitigation (vs clean)", "chip-scale deadlock",
		fmt.Sprintf("%.3f vs %.3f pkt/cyc (%s)", res.Throughput, cres.Throughput,
			pct(res.Throughput/cres.Throughput)),
	})
	return t, nil
}
