package exp

import (
	"fmt"

	"tasp/internal/flit"
	"tasp/internal/logictest"
	"tasp/internal/power"
	"tasp/internal/sidechannel"
	"tasp/internal/tasp"
)

// DetectabilityStudy quantifies the paper's threat analysis (Sections II,
// III-A, V-A): for each TASP variant, can post-fabrication verification
// find it? Logic testing excites narrow triggers but not wide ones — and
// nothing at all while the kill switch is off; power side-channel analysis
// needs the trojan to stand out of the process-variation floor, which a
// sub-1% TASP never does. Runtime detection (the paper's threat detector)
// is therefore the only layer that catches it — the motivation for the
// whole mitigation design.
func DetectabilityStudy(seed uint64) Table {
	t := Table{
		Title: "Detectability study: post-fabrication verification vs TASP variants",
		Columns: []string{"variant", "width",
			"logic-test Pr(trigger), killsw off", "killsw on (100k vectors)",
			"side-channel detect rate", "runtime detector"},
		Notes: []string{
			"side-channel campaign: 7% process variation, 1% noise, 20 golden chips, 3-sigma alarm, leakage of one router vs router+trojan",
			"logic testing can excite only narrow triggers, and only if the kill switch is up; the variation floor hides every variant from power analysis — runtime detection is the remaining layer (Section V-A)",
		},
	}
	router := power.BuildRouter(power.DefaultRouterParams())
	sc := sidechannel.Default40nm()

	targets := map[power.TASPVariant]tasp.Target{
		power.TASPFull:    tasp.ForFull(3, 9, 1, 0xdead0000, 0xffffffff),
		power.TASPDest:    tasp.ForDest(9),
		power.TASPSrc:     tasp.ForSrc(3),
		power.TASPDestSrc: tasp.ForDestSrc(3, 9),
		power.TASPMem:     tasp.ForMem(0xdead0000, 0xffffffff),
		power.TASPVC:      tasp.ForVC(1),
	}
	for _, v := range power.TASPVariants {
		// Logic testing, kill switch down.
		dormant := tasp.New(targets[v], tasp.DefaultPayloadBits, flit.Default)
		off := logictest.Campaign{Vectors: 100000}.Run(dormant, seed)

		// Logic testing, kill switch up.
		armed := tasp.New(targets[v], tasp.DefaultPayloadBits, flit.Default)
		armed.SetKillSwitch(true)
		on := logictest.Campaign{Vectors: 100000}.Run(armed, seed+1)
		onCell := "never"
		if on.Detected() {
			onCell = fmt.Sprintf("Pr=%.4f first@%d", on.TriggerPr, on.FirstAt)
		}

		// Side channel: leakage of one trojan against one router.
		htLeak := power.BuildTASP(v).Leakage()
		r := sc.Run(router.Leakage(), htLeak, 1000, seed+2)

		t.Rows = append(t.Rows, []string{
			string(v), fmt.Sprintf("%d", v.Width()),
			fmt.Sprintf("%.4f", off.TriggerPr), onCell,
			fmt.Sprintf("%.3f (fp %.3f)", r.DetectionRate, r.FalsePositiveRate),
			"classified 'trojan' (Figure 12(b))",
		})
	}
	return t
}
