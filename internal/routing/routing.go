// Package routing provides the adaptive routing algorithms the paper
// compares XY routing against under DoS load (Section III-A: "In a
// flood-based DoS attack, x-y routing performs better than multiple
// adaptive algorithms when the injection rate is less than 0.65").
//
// Each algorithm is a turn-model candidate generator: it returns the set of
// minimal output ports a packet may take at a router such that the global
// channel-dependency graph stays acyclic (Glass & Ni's turn models, plus
// Chiu's odd-even rule). The simulator picks the least congested candidate
// at route-computation time.
package routing

import "tasp/internal/noc"

// delta returns the signed x and y displacement toward the destination.
func delta(cfg noc.Config, router, dst int) (dx, dy int) {
	cx, cy := cfg.XY(router)
	tx, ty := cfg.XY(dst)
	return tx - cx, ty - cy
}

// XY returns dimension-order routing as a (single-candidate) adaptive
// function, for uniform comparisons.
func XY(cfg noc.Config) noc.AdaptiveRouteFunc {
	base := noc.XYRoute(cfg)
	return func(router, dst int) []int {
		return []int{base(router, dst)}
	}
}

// WestFirst implements the west-first turn model: all westward hops happen
// first; once a packet moves east/north/south it may never turn west again.
// Minimal version: if the destination is west, the only candidate is west;
// otherwise every productive non-west direction is a candidate.
func WestFirst(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		dx, dy := delta(cfg, router, dst)
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		if dx < 0 {
			return []int{noc.PortWest}
		}
		var c []int
		if dx > 0 {
			c = append(c, noc.PortEast)
		}
		if dy > 0 {
			c = append(c, noc.PortNorth)
		}
		if dy < 0 {
			c = append(c, noc.PortSouth)
		}
		return c
	}
}

// NorthLast implements the north-last turn model: a packet may turn into
// the north direction only when north is the sole remaining productive
// move (no turns out of north are ever needed).
func NorthLast(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		dx, dy := delta(cfg, router, dst)
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		var c []int
		if dx > 0 {
			c = append(c, noc.PortEast)
		}
		if dx < 0 {
			c = append(c, noc.PortWest)
		}
		if dy < 0 {
			c = append(c, noc.PortSouth)
		}
		if len(c) == 0 {
			return []int{noc.PortNorth} // north only as the last resort
		}
		return c
	}
}

// NegativeFirst implements the negative-first turn model: all hops in the
// negative directions (west, south) happen before any positive hop.
func NegativeFirst(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		dx, dy := delta(cfg, router, dst)
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		var neg []int
		if dx < 0 {
			neg = append(neg, noc.PortWest)
		}
		if dy < 0 {
			neg = append(neg, noc.PortSouth)
		}
		if len(neg) > 0 {
			return neg
		}
		var pos []int
		if dx > 0 {
			pos = append(pos, noc.PortEast)
		}
		if dy > 0 {
			pos = append(pos, noc.PortNorth)
		}
		return pos
	}
}

// OddEven implements Chiu's odd-even turn model (minimal version): in even
// columns packets may not turn from east to north/south; in odd columns
// they may not turn from north/south to west. The resulting rule set below
// is the standard minimal formulation.
func OddEven(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		cx, cy := cfg.XY(router)
		tx, ty := cfg.XY(dst)
		dx, dy := tx-cx, ty-cy
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		var c []int
		if dx == 0 { // same column: go vertically
			if dy > 0 {
				return []int{noc.PortNorth}
			}
			return []int{noc.PortSouth}
		}
		if dx > 0 { // eastbound
			if dy == 0 {
				return []int{noc.PortEast}
			}
			// EN/ES turns are allowed only in odd columns.
			if cx%2 == 1 {
				if dy > 0 {
					c = append(c, noc.PortNorth)
				} else {
					c = append(c, noc.PortSouth)
				}
			}
			// Continuing east is safe unless the next column is the (even)
			// destination column, where the vertical turn would be
			// forbidden — then the turn must happen here.
			if dx > 1 || tx%2 == 1 {
				c = append(c, noc.PortEast)
			}
			if len(c) == 0 {
				// Trapped only if cx is even and tx=cx+1 is even, which
				// cannot happen (adjacent columns differ in parity); kept
				// as a defensive fallback.
				c = append(c, noc.PortEast)
			}
			return c
		}
		// Westbound: NW/SW turns are forbidden in odd columns, so vertical
		// movement must finish in even columns.
		if dy != 0 && cx%2 == 0 {
			if dy > 0 {
				c = append(c, noc.PortNorth)
			} else {
				c = append(c, noc.PortSouth)
			}
		}
		c = append(c, noc.PortWest)
		return c
	}
}

// Algorithms lists the available adaptive algorithms by name.
func Algorithms(cfg noc.Config) map[string]noc.AdaptiveRouteFunc {
	return map[string]noc.AdaptiveRouteFunc{
		"xy":             XY(cfg),
		"west-first":     WestFirst(cfg),
		"north-last":     NorthLast(cfg),
		"negative-first": NegativeFirst(cfg),
		"odd-even":       OddEven(cfg),
	}
}
