// Package routing provides the adaptive routing algorithms the paper
// compares XY routing against under DoS load (Section III-A: "In a
// flood-based DoS attack, x-y routing performs better than multiple
// adaptive algorithms when the injection rate is less than 0.65").
//
// Each algorithm is a turn-model candidate generator: it returns the set of
// minimal output ports a packet may take at a router such that the global
// channel-dependency graph stays acyclic (Glass & Ni's turn models, plus
// Chiu's odd-even rule). The simulator picks the least congested candidate
// at route-computation time.
//
// Deadlock-freedom proofs are topology-specific: the turn models argue
// acyclicity over the wrap-free mesh channel-dependency graph and say
// nothing about torus or ring wraparound links (those substrates get
// deadlock freedom from dateline VC classes under the default deterministic
// route instead). Each algorithm therefore declares the topologies its
// proof covers, and Algorithms only offers an algorithm on a substrate it
// is certified for.
package routing

import "tasp/internal/noc"

// validOn maps each algorithm name to the topologies its deadlock-freedom
// argument covers. "xy" is the topology's own default deterministic route,
// certified everywhere; the mesh turn models assume no wraparound channels.
var validOn = map[string][]string{
	"xy":             {"mesh", "torus", "ring"},
	"west-first":     {"mesh"},
	"north-last":     {"mesh"},
	"negative-first": {"mesh"},
	"odd-even":       {"mesh"},
}

// ValidOn reports whether the named algorithm is certified deadlock-free on
// the named topology.
func ValidOn(algo, topo string) bool {
	for _, t := range validOn[algo] {
		if t == topo {
			return true
		}
	}
	return false
}

// delta returns the signed x and y displacement toward the destination.
func delta(cfg noc.Config, router, dst int) (dx, dy int) {
	cx, cy := cfg.XY(router)
	tx, ty := cfg.XY(dst)
	return tx - cx, ty - cy
}

// XY returns the topology's default deterministic route (dimension-order on
// mesh and torus, shortest-direction on ring) as a (single-candidate)
// adaptive function, for uniform comparisons.
func XY(cfg noc.Config) noc.AdaptiveRouteFunc {
	base := noc.RouteTable(cfg.Topology())
	return func(router, dst int) []int {
		return []int{base(router, dst)}
	}
}

// WestFirst implements the west-first turn model: all westward hops happen
// first; once a packet moves east/north/south it may never turn west again.
// Minimal version: if the destination is west, the only candidate is west;
// otherwise every productive non-west direction is a candidate.
func WestFirst(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		dx, dy := delta(cfg, router, dst)
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		if dx < 0 {
			return []int{noc.PortWest}
		}
		var c []int
		if dx > 0 {
			c = append(c, noc.PortEast)
		}
		if dy > 0 {
			c = append(c, noc.PortNorth)
		}
		if dy < 0 {
			c = append(c, noc.PortSouth)
		}
		return c
	}
}

// NorthLast implements the north-last turn model: a packet may turn into
// the north direction only when north is the sole remaining productive
// move (no turns out of north are ever needed).
func NorthLast(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		dx, dy := delta(cfg, router, dst)
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		var c []int
		if dx > 0 {
			c = append(c, noc.PortEast)
		}
		if dx < 0 {
			c = append(c, noc.PortWest)
		}
		if dy < 0 {
			c = append(c, noc.PortSouth)
		}
		if len(c) == 0 {
			return []int{noc.PortNorth} // north only as the last resort
		}
		return c
	}
}

// NegativeFirst implements the negative-first turn model: all hops in the
// negative directions (west, south) happen before any positive hop.
func NegativeFirst(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		dx, dy := delta(cfg, router, dst)
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		var neg []int
		if dx < 0 {
			neg = append(neg, noc.PortWest)
		}
		if dy < 0 {
			neg = append(neg, noc.PortSouth)
		}
		if len(neg) > 0 {
			return neg
		}
		var pos []int
		if dx > 0 {
			pos = append(pos, noc.PortEast)
		}
		if dy > 0 {
			pos = append(pos, noc.PortNorth)
		}
		return pos
	}
}

// OddEven implements Chiu's odd-even turn model (minimal version): in even
// columns packets may not turn from east to north/south; in odd columns
// they may not turn from north/south to west. The resulting rule set below
// is the standard minimal formulation.
func OddEven(cfg noc.Config) noc.AdaptiveRouteFunc {
	return func(router, dst int) []int {
		cx, cy := cfg.XY(router)
		tx, ty := cfg.XY(dst)
		dx, dy := tx-cx, ty-cy
		if dx == 0 && dy == 0 {
			return []int{noc.PortLocal}
		}
		var c []int
		if dx == 0 { // same column: go vertically
			if dy > 0 {
				return []int{noc.PortNorth}
			}
			return []int{noc.PortSouth}
		}
		if dx > 0 { // eastbound
			if dy == 0 {
				return []int{noc.PortEast}
			}
			// EN/ES turns are allowed only in odd columns.
			if cx%2 == 1 {
				if dy > 0 {
					c = append(c, noc.PortNorth)
				} else {
					c = append(c, noc.PortSouth)
				}
			}
			// Continuing east is safe unless the next column is the (even)
			// destination column, where the vertical turn would be
			// forbidden — then the turn must happen here.
			if dx > 1 || tx%2 == 1 {
				c = append(c, noc.PortEast)
			}
			if len(c) == 0 {
				// Trapped only if cx is even and tx=cx+1 is even, which
				// cannot happen (adjacent columns differ in parity); kept
				// as a defensive fallback.
				c = append(c, noc.PortEast)
			}
			return c
		}
		// Westbound: NW/SW turns are forbidden in odd columns, so vertical
		// movement must finish in even columns.
		if dy != 0 && cx%2 == 0 {
			if dy > 0 {
				c = append(c, noc.PortNorth)
			} else {
				c = append(c, noc.PortSouth)
			}
		}
		c = append(c, noc.PortWest)
		return c
	}
}

// Algorithms lists the adaptive algorithms certified deadlock-free on the
// configuration's topology, by name. On the mesh that is all five; torus
// and ring configurations only get the default deterministic route.
func Algorithms(cfg noc.Config) map[string]noc.AdaptiveRouteFunc {
	all := map[string]func(noc.Config) noc.AdaptiveRouteFunc{
		"xy":             XY,
		"west-first":     WestFirst,
		"north-last":     NorthLast,
		"negative-first": NegativeFirst,
		"odd-even":       OddEven,
	}
	out := map[string]noc.AdaptiveRouteFunc{}
	for name, mk := range all { //nocvet:orderfree builds a map keyed by the same name
		if ValidOn(name, cfg.TopoName()) {
			out[name] = mk(cfg)
		}
	}
	return out
}
