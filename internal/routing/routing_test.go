package routing

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/xrand"
)

func cfg() noc.Config { return noc.DefaultConfig() }

// portDelta maps a port to its displacement.
func portDelta(p int) (dx, dy int) {
	switch p {
	case noc.PortEast:
		return 1, 0
	case noc.PortWest:
		return -1, 0
	case noc.PortNorth:
		return 0, 1
	case noc.PortSouth:
		return 0, -1
	}
	return 0, 0
}

// TestAllAlgorithmsMinimalAndProductive checks, for every router/dest pair
// and every algorithm: candidates are non-empty, every candidate moves
// strictly closer to the destination (minimal), and arriving packets eject.
func TestAllAlgorithmsMinimalAndProductive(t *testing.T) {
	c := cfg()
	for name, alg := range Algorithms(c) {
		for r := 0; r < c.Routers(); r++ {
			for d := 0; d < c.Routers(); d++ {
				cands := alg(r, d)
				if len(cands) == 0 {
					t.Fatalf("%s: no candidates %d->%d", name, r, d)
				}
				if r == d {
					if len(cands) != 1 || cands[0] != noc.PortLocal {
						t.Fatalf("%s: arrival at %d does not eject: %v", name, d, cands)
					}
					continue
				}
				rx, ry := c.XY(r)
				dx, dy := c.XY(d)
				dist := abs(rx-dx) + abs(ry-dy)
				for _, p := range cands {
					mx, my := portDelta(p)
					nd := abs(rx+mx-dx) + abs(ry+my-dy)
					if nd != dist-1 {
						t.Fatalf("%s: %d->%d candidate %s is not minimal", name, r, d, noc.PortName(p))
					}
				}
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestWestFirstNeverTurnsWest checks the defining turn restriction: once a
// minimal path has a non-west candidate, west is not among the candidates.
func TestWestFirstNeverTurnsWest(t *testing.T) {
	c := cfg()
	wf := WestFirst(c)
	for r := 0; r < 16; r++ {
		for d := 0; d < 16; d++ {
			cands := wf(r, d)
			hasWest, hasOther := false, false
			for _, p := range cands {
				if p == noc.PortWest {
					hasWest = true
				} else if p != noc.PortLocal {
					hasOther = true
				}
			}
			if hasWest && hasOther {
				t.Fatalf("west mixed with other candidates %d->%d: %v", r, d, cands)
			}
		}
	}
}

// TestNorthLastOnlyAloneNorth checks north appears only as the sole
// candidate.
func TestNorthLastOnlyAloneNorth(t *testing.T) {
	c := cfg()
	nl := NorthLast(c)
	for r := 0; r < 16; r++ {
		for d := 0; d < 16; d++ {
			cands := nl(r, d)
			for _, p := range cands {
				if p == noc.PortNorth && len(cands) > 1 {
					t.Fatalf("north not last %d->%d: %v", r, d, cands)
				}
			}
		}
	}
}

// TestNegativeFirstOrdering checks positive candidates never mix with
// negative ones.
func TestNegativeFirstOrdering(t *testing.T) {
	c := cfg()
	nf := NegativeFirst(c)
	for r := 0; r < 16; r++ {
		for d := 0; d < 16; d++ {
			neg, pos := false, false
			for _, p := range nf(r, d) {
				switch p {
				case noc.PortWest, noc.PortSouth:
					neg = true
				case noc.PortEast, noc.PortNorth:
					pos = true
				}
			}
			if neg && pos {
				t.Fatalf("negative-first mixes directions %d->%d", r, d)
			}
		}
	}
}

// TestOddEvenTurnRules checks the two defining restrictions: EN/ES turns
// only in odd columns, and westbound vertical movement only in even columns.
func TestOddEvenTurnRules(t *testing.T) {
	c := cfg()
	oe := OddEven(c)
	for r := 0; r < 16; r++ {
		cx, _ := c.XY(r)
		for d := 0; d < 16; d++ {
			dx, _ := c.XY(d)
			for _, p := range oe(r, d) {
				vertical := p == noc.PortNorth || p == noc.PortSouth
				if !vertical {
					continue
				}
				if dx > cx && cx%2 == 0 {
					t.Fatalf("EN/ES turn in even column %d (route %d->%d)", cx, r, d)
				}
				if dx < cx && cx%2 == 1 {
					t.Fatalf("westbound vertical in odd column %d (route %d->%d)", cx, r, d)
				}
			}
		}
	}
}

// TestAdaptiveDeliveryUnderLoad floods a network under every algorithm and
// checks everything is delivered (no deadlock, no livelock, no misroute).
func TestAdaptiveDeliveryUnderLoad(t *testing.T) {
	for name, alg := range Algorithms(cfg()) {
		n, err := noc.New(cfg())
		if err != nil {
			t.Fatal(err)
		}
		n.SetAdaptiveRoute(alg)
		rng := xrand.New(7)
		want := 0
		for i := 0; i < 300; i++ {
			core := rng.Intn(64)
			dst := rng.Intn(16)
			if dst == cfg().CoreRouter(core) {
				continue
			}
			p := &flit.Packet{Hdr: flit.Header{VC: uint8(rng.Intn(4)), DstR: uint8(dst)}}
			if rng.Bool(0.4) {
				p.Body = []uint64{1, 2, 3, 4}
			}
			if n.Inject(core, p) {
				want++
			}
		}
		n.Run(4000)
		if got := int(n.Counters.DeliveredPackets); got != want {
			t.Errorf("%s: delivered %d of %d packets", name, got, want)
		}
	}
}

// TestAdaptiveAvoidsCongestedCandidate wedges one candidate link and checks
// the adaptive selector steers around it when the turn model allows.
func TestAdaptiveAvoidsCongestedCandidate(t *testing.T) {
	c := cfg()
	n, err := noc.New(c)
	if err != nil {
		t.Fatal(err)
	}
	n.SetAdaptiveRoute(WestFirst(c))
	// Wedge link 0->1 (east) with a dead wire; traffic 0->5 (east+north)
	// should adapt through north.
	for _, l := range n.Links() {
		if l.From == 0 && l.FromPort == noc.PortEast {
			n.SetWire(l.ID, deadWire{})
		}
	}
	// Prime congestion on the east output so the selector sees it: four
	// single-flit packets (one per VC) wedge in its retransmission buffer,
	// leaving the input VCs clear for the probes.
	for i := 0; i < 4; i++ {
		n.Inject(0, &flit.Packet{Hdr: flit.Header{VC: uint8(i), DstR: 1}})
	}
	n.Run(60)
	before := n.Counters.DeliveredPackets
	for i := 0; i < 4; i++ {
		n.Inject(0, &flit.Packet{Hdr: flit.Header{VC: uint8(i % 4), DstR: 5}})
	}
	n.Run(400)
	if got := n.Counters.DeliveredPackets - before; got != 4 {
		t.Fatalf("adaptive routing delivered %d of 4 packets around congestion", got)
	}
}

type deadWire struct{}

func (deadWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, noc.TxResult) {
	return f, noc.TxResult{OK: false}
}

// TestTopologyLegality checks the per-topology certification: the turn
// models are mesh-only, the default route is offered everywhere, and
// Algorithms filters accordingly.
func TestTopologyLegality(t *testing.T) {
	for _, topo := range noc.Topologies() {
		if !ValidOn("xy", topo) {
			t.Errorf("xy must be valid on %s", topo)
		}
	}
	for _, algo := range []string{"west-first", "north-last", "negative-first", "odd-even"} {
		if !ValidOn(algo, "mesh") {
			t.Errorf("%s must be valid on mesh", algo)
		}
		for _, topo := range []string{"torus", "ring"} {
			if ValidOn(algo, topo) {
				t.Errorf("%s must not be certified on %s (wraparound breaks the turn-model proof)", algo, topo)
			}
		}
	}
	if ValidOn("nonsense", "mesh") {
		t.Error("unknown algorithm certified")
	}

	if got := len(Algorithms(cfg())); got != 5 {
		t.Errorf("mesh offers %d algorithms, want 5", got)
	}
	for _, topo := range []string{"torus", "ring"} {
		c := cfg()
		c.Topo = topo
		algs := Algorithms(c)
		if len(algs) != 1 || algs["xy"] == nil {
			t.Errorf("%s offers %v, want only xy", topo, algs)
		}
	}
}

// TestRingXYFollowsShortestDirection spot-checks that the xy algorithm on a
// ring is the shortest-direction route, not mesh arithmetic.
func TestRingXYFollowsShortestDirection(t *testing.T) {
	c := cfg()
	c.Topo = "ring"
	route := XY(c)
	if got := route(0, 15); len(got) != 1 || got[0] != noc.PortCCW {
		t.Fatalf("route(0,15) = %v, want counter-clockwise wrap", got)
	}
	if got := route(0, 3); len(got) != 1 || got[0] != noc.PortCW {
		t.Fatalf("route(0,3) = %v, want clockwise", got)
	}
}
