package power

import (
	"fmt"
	"sort"
	"strings"
)

// Block is a hierarchical netlist node: a bag of standard cells plus named
// sub-blocks. Area and leakage are sums over the hierarchy; dynamic power
// additionally weights each block's cells by its switching-activity factor.
type Block struct {
	Name string
	// Activity is the average fraction of cell outputs that toggle per
	// cycle within this block (0..1). Sub-blocks carry their own factors.
	Activity float64
	// DepthPS is this block's local critical path in picoseconds (combinational
	// logic between registers), excluding sub-blocks.
	DepthPS float64

	cells map[Cell]int
	Subs  []*Block
	lib   Library
}

// NewBlock creates an empty block with the given activity factor using the
// default library.
func NewBlock(name string, activity float64) *Block {
	return &Block{Name: name, Activity: activity, cells: map[Cell]int{}, lib: Default40nm}
}

// Add places n instances of cell c in the block (n may be 0; negative panics).
func (b *Block) Add(c Cell, n int) *Block {
	if n < 0 {
		panic(fmt.Sprintf("power: negative cell count %d for %s", n, c))
	}
	if _, ok := b.lib[c]; !ok {
		panic(fmt.Sprintf("power: unknown cell %q", c))
	}
	b.cells[c] += n
	return b
}

// AddSub attaches a sub-block.
func (b *Block) AddSub(s *Block) *Block {
	b.Subs = append(b.Subs, s)
	return b
}

// Sub returns the direct sub-block with the given name, or nil.
func (b *Block) Sub(name string) *Block {
	for _, s := range b.Subs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// CellCount returns the number of instances of c in this block only.
func (b *Block) CellCount(c Cell) int { return b.cells[c] }

// TotalCells returns the number of cell instances in the whole hierarchy.
func (b *Block) TotalCells() int {
	n := 0
	for _, c := range b.cells { //nocvet:orderfree commutative sum
		n += c
	}
	for _, s := range b.Subs {
		n += s.TotalCells()
	}
	return n
}

// Area returns the total silicon area of the hierarchy in um^2.
func (b *Block) Area() float64 {
	a := 0.0
	for c, n := range b.cells { //nocvet:orderfree commutative sum
		a += b.lib[c].Area * float64(n)
	}
	for _, s := range b.Subs {
		a += s.Area()
	}
	return a
}

// Leakage returns the total static power of the hierarchy in nW.
func (b *Block) Leakage() float64 {
	l := 0.0
	for c, n := range b.cells { //nocvet:orderfree commutative sum
		l += b.lib[c].Leakage * float64(n)
	}
	for _, s := range b.Subs {
		l += s.Leakage()
	}
	return l
}

// Dynamic returns the switching power of the hierarchy in uW at the given
// clock frequency: sum over cells of toggleEnergy * activity * f. With
// energies in fJ and f in GHz the product is in uW directly.
func (b *Block) Dynamic(freqGHz float64) float64 {
	d := 0.0
	for c, n := range b.cells { //nocvet:orderfree commutative sum
		d += b.lib[c].ToggleFJ * float64(n) * b.Activity * freqGHz
	}
	for _, s := range b.Subs {
		d += s.Dynamic(freqGHz)
	}
	return d
}

// CriticalPathPS returns the worst local combinational depth found anywhere
// in the hierarchy (sub-blocks are register-bounded, so depths do not add
// across the hierarchy).
func (b *Block) CriticalPathPS() float64 {
	worst := b.DepthPS
	for _, s := range b.Subs {
		if d := s.CriticalPathPS(); d > worst {
			worst = d
		}
	}
	return worst
}

// MeetsTiming reports whether the block's critical path fits in one clock
// period at the given frequency.
func (b *Block) MeetsTiming(freqGHz float64) bool {
	periodPS := 1000.0 / freqGHz
	return b.CriticalPathPS() <= periodPS
}

// Breakdown returns per-direct-sub-block shares of the given metric
// ("area", "leakage" or "dynamic"), with this block's own cells reported
// under "(self)". Shares sum to 1 when the total is nonzero.
func (b *Block) Breakdown(metric string, freqGHz float64) map[string]float64 {
	val := func(x *Block) float64 {
		switch metric {
		case "area":
			return x.Area()
		case "leakage":
			return x.Leakage()
		case "dynamic":
			return x.Dynamic(freqGHz)
		default:
			panic("power: unknown metric " + metric)
		}
	}
	total := val(b)
	out := map[string]float64{}
	if total == 0 {
		return out
	}
	selfOnly := *b
	selfOnly.Subs = nil
	if v := val(&selfOnly); v > 0 {
		out["(self)"] = v / total
	}
	for _, s := range b.Subs {
		out[s.Name] += val(s) / total
	}
	return out
}

// Report renders a one-level summary of the block for logs and tools.
func (b *Block) Report(freqGHz float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: area=%.2f um^2 leakage=%.3f nW dynamic=%.3f uW depth=%.0f ps cells=%d\n",
		b.Name, b.Area(), b.Leakage(), b.Dynamic(freqGHz), b.CriticalPathPS(), b.TotalCells())
	names := make([]string, 0, len(b.Subs))
	seen := map[string]*Block{}
	for _, s := range b.Subs {
		if _, dup := seen[s.Name]; !dup {
			names = append(names, s.Name)
		}
		seen[s.Name] = s
	}
	sort.Strings(names)
	for _, n := range names {
		s := seen[n]
		fmt.Fprintf(&sb, "  %-22s area=%10.2f leak=%10.3f dyn=%10.3f\n",
			s.Name, s.Area(), s.Leakage(), s.Dynamic(freqGHz))
	}
	return sb.String()
}
