package power

import "testing"

func TestDVFSScalingDirections(t *testing.T) {
	b := BuildTASP(TASPFull)
	nom := DefaultOperatingPoints[1]
	if nom.FreqGHz != DefaultFreqGHz || nom.Voltage != DefaultVoltage {
		t.Fatalf("nominal point drifted: %+v", nom)
	}
	turbo, low := DefaultOperatingPoints[0], DefaultOperatingPoints[3]

	if !(DynamicAt(b, turbo) > DynamicAt(b, nom) && DynamicAt(b, nom) > DynamicAt(b, low)) {
		t.Fatal("dynamic power not monotone in operating point")
	}
	if !(LeakageAt(b, turbo) > LeakageAt(b, nom) && LeakageAt(b, nom) > LeakageAt(b, low)) {
		t.Fatal("leakage not monotone in voltage")
	}
	if !(CriticalPathAt(b, low) > CriticalPathAt(b, nom)) {
		t.Fatal("delay must stretch at low voltage")
	}
	// At nominal, the helpers must agree with the base methods.
	if DynamicAt(b, nom) != b.Dynamic(DefaultFreqGHz) {
		t.Fatal("nominal dynamic mismatch")
	}
	if LeakageAt(b, nom) != b.Leakage() {
		t.Fatal("nominal leakage mismatch")
	}
}

// TestTASPFitsAcrossDVFSLadder reproduces the paper's Section V-A remark:
// every TASP variant fits the LT stage's clock window at every DVFS
// operating point, including the stretched-delay low-voltage ones.
func TestTASPFitsAcrossDVFSLadder(t *testing.T) {
	for _, v := range TASPVariants {
		b := BuildTASP(v)
		for _, op := range DefaultOperatingPoints {
			if !MeetsTimingAt(b, op) {
				t.Errorf("%s misses timing at %s (%.0f ps vs %.0f ps period)",
					v, op.Name, CriticalPathAt(b, op), 1000.0/op.FreqGHz)
			}
		}
	}
}

// TestRouterTimingAtTurbo: the router's own pipeline must close timing at
// every ladder point too, otherwise the platform itself is implausible.
func TestRouterTimingAtTurbo(t *testing.T) {
	r := BuildRouter(DefaultRouterParams())
	for _, op := range DefaultOperatingPoints {
		if !MeetsTimingAt(r, op) {
			t.Errorf("router misses timing at %s: %.0f ps", op.Name, CriticalPathAt(r, op))
		}
	}
}

func TestDVFSEnergyQuadratic(t *testing.T) {
	b := BuildTASP(TASPVC)
	hi := OperatingPoint{FreqGHz: 2, Voltage: 2 * DefaultVoltage}
	if got, want := DynamicAt(b, hi), 4*b.Dynamic(2); got != want {
		t.Fatalf("V^2 scaling broken: %g vs %g", got, want)
	}
}
