package power

import "fmt"

// TASPVariant names the paper's six TASP target-selection variants (Table I,
// Figure 9). The attached width is the number of codeword wires the target
// comparator taps.
type TASPVariant string

// The six variants evaluated in the paper with their comparator widths.
const (
	TASPFull    TASPVariant = "Full"     // vc+src+dest+mem, 42 bits
	TASPDest    TASPVariant = "Dest"     // destination router, 4 bits
	TASPSrc     TASPVariant = "Src"      // source router, 4 bits
	TASPDestSrc TASPVariant = "Dest_Src" // both routers, 8 bits
	TASPMem     TASPVariant = "Mem"      // memory address, 32 bits
	TASPVC      TASPVariant = "VC"       // virtual channel, 2 bits
)

// TASPVariants lists the variants in the paper's Table I column order.
var TASPVariants = []TASPVariant{TASPFull, TASPDest, TASPSrc, TASPDestSrc, TASPMem, TASPVC}

// Width returns the comparator width of the variant (Section V-A).
func (v TASPVariant) Width() int {
	switch v {
	case TASPFull:
		return 42
	case TASPDest, TASPSrc:
		return 4
	case TASPDestSrc:
		return 8
	case TASPMem:
		return 32
	case TASPVC:
		return 2
	default:
		panic(fmt.Sprintf("power: unknown TASP variant %q", v))
	}
}

// PayloadCounterBits is the paper's Y-bit payload-counter width used by the
// reference TASP implementation (design-time trade-off, Section III-B).
const PayloadCounterBits = 8

// BuildTASP constructs the gate-level model of one TASP hardware trojan
// (Figure 3): target comparator, Y-bit payload counter, payload-state FSM,
// the 2-bit XOR fault-injection stage and the kill-switch gating.
//
// Activity factors encode the trojan's stealth behaviour: the comparator
// snoops every traversing flit (high activity, except the Mem variant whose
// wide compare is gated behind a narrow pre-match), while the counter and
// FSM hold state between injections (low activity) precisely "to prevent the
// HT from consuming more power and cycling states when the target is
// absent".
func BuildTASP(v TASPVariant) *Block {
	b := NewBlock("TASP-"+string(v), 0)

	w := v.Width()
	cmpAct := 0.5
	if v == TASPMem {
		// Wide memory compare is clock-gated behind a 4-bit pre-match.
		pre := EqComparator("prematch", 4, 0.5)
		b.AddSub(pre)
		cmpAct = 0.06
	}
	b.AddSub(EqComparator("target", w, cmpAct))

	// Y-bit payload counter: holds its state until the next injection.
	b.AddSub(Counter("payload-counter", PayloadCounterBits, 0.08))

	// Idle/Active/Attacking FSM (Figure 3): 2 state bits plus next-state and
	// payload-state-select logic.
	fsm := NewBlock("fsm", 0.10)
	fsm.Add(DFF, 2).Add(NAND2, 8).Add(INV, 4)
	fsm.DepthPS = 3 * Default40nm[NAND2].DelayPS
	b.AddSub(fsm)

	// Payload decode: steers the two flip enables from the counter state.
	b.AddSub(MuxTree("payload-decode", 2, 2, 0.1))

	// The injection stage: XOR gates on the two targeted wires plus the
	// kill-switch AND gating.
	inj := XorStage("inject", 2, 0.05)
	inj.Add(AND2, 2)
	b.AddSub(inj)

	// Clock distribution for the trojan's ~12 flip-flops.
	b.AddSub(ClockTree("clock", CountFFs(b)))
	return b
}

// BuildThreatDetector constructs the gate-level model of the per-router
// threat source detector (Figure 6): a small history table recording the
// syndrome and packet characteristics of recent faults, match logic, and the
// decision FSM that drives retransmission, BIST and L-Ob escalation.
func BuildThreatDetector() *Block {
	b := NewBlock("threat-detector", 0)

	// Fault-history table: 6 entries x 48 bits (syndrome 7b + src/dst/vc/seq
	// 18b + mem tag 16b + method/state 7b). Scanned on every received flit,
	// hence the high activity: the paper's mitigation costs more in power
	// (6%) than area (2%) because this table never sleeps.
	tbl := NewBlock("history-table", 0.45)
	tbl.Add(SRAMBIT, 4*48)
	tbl.Add(DFF, 6) // victim/way pointers
	b.AddSub(tbl)

	// Match logic across the table entries.
	b.AddSub(EqComparator("match", 48, 0.5))

	// Decision FSM (Figure 6 flow) + upstream notification encode.
	fsm := NewBlock("decision-fsm", 0.25)
	fsm.Add(DFF, 6).Add(NAND2, 30).Add(INV, 10).Add(OR2, 8)
	fsm.DepthPS = 4 * Default40nm[NAND2].DelayPS
	b.AddSub(fsm)

	b.AddSub(ClockTree("clock", CountFFs(b)))
	return b
}

// BuildLOb constructs the gate-level model of the L-Ob switch-to-switch
// obfuscation block (Figure 4): an LFSR keystream, a 72-bit XOR
// scramble/invert stage, a shuffle (rotate) network, the method-selection
// control and the per-flow method log.
func BuildLOb() *Block {
	b := NewBlock("l-ob", 0)

	b.AddSub(LFSR("keystream", 8, 0.4))
	b.AddSub(XorStage("scramble-invert", 72, 0.30))

	// Shuffle network: a single-stage barrel rotator over 72 wires.
	sh := NewBlock("shuffle", 0.30)
	sh.Add(MUX2, 72)
	sh.DepthPS = Default40nm[MUX2].DelayPS
	b.AddSub(sh)

	// Scramble-partner holding register (flit 2+4 pairing in Figure 7).
	b.AddSub(FIFO("partner-buf", 1, 72, 0.2))

	// Method-selection control and per-flow method log (8 flows x 6 bits).
	ctl := NewBlock("method-ctl", 0.2)
	ctl.Add(DFF, 4).Add(SRAMBIT, 8*6).Add(NAND2, 20).Add(INV, 8)
	b.AddSub(ctl)

	b.AddSub(ClockTree("clock", CountFFs(b)))
	return b
}
