// Package power is the synthesis substitute for the paper's Synopsys Design
// Compiler + TSMC 40 nm flow. It models circuits structurally: every block is
// a netlist of standard cells drawn from a 40 nm-like library, and area,
// leakage, dynamic power and critical-path timing are computed from cell
// counts, per-cell constants and per-block switching-activity factors.
//
// Absolute um^2 and uW cannot match a proprietary foundry kit, but every
// claim the paper makes about hardware cost is *relative* (TASP < 1% of a
// router, mitigation +2% area / +6% power, the ordering of the TASP target
// variants), and those relations are preserved by any self-consistent
// library. The constants below were calibrated once so that the TASP
// variants land near Table I and the router near a typical 40 nm NoC router;
// the calibration is asserted by tests and reported in EXPERIMENTS.md.
package power

// Cell identifies a standard-cell type.
type Cell string

// Standard cells used by the circuit builders.
const (
	INV     Cell = "INV"     // inverter
	NAND2   Cell = "NAND2"   // 2-input NAND
	NOR2    Cell = "NOR2"    // 2-input NOR
	AND2    Cell = "AND2"    // 2-input AND
	OR2     Cell = "OR2"     // 2-input OR
	XOR2    Cell = "XOR2"    // 2-input XOR
	XNOR2   Cell = "XNOR2"   // 2-input XNOR
	MUX2    Cell = "MUX2"    // 2:1 multiplexer
	DFF     Cell = "DFF"     // D flip-flop with enable
	LATCH   Cell = "LATCH"   // transparent latch
	FA      Cell = "FA"      // full adder
	SRAMBIT Cell = "SRAMBIT" // one bit of register-file storage
	CLKBUF  Cell = "CLKBUF"  // clock buffer
	TBUF    Cell = "TBUF"    // tri-state buffer
	CMPBIT  Cell = "CMPBIT"  // one comparator bit-slice (XNOR + wired-AND), CAM-style
	WIRE    Cell = "WIRE"    // 0.1 mm of local datapath wire inside a router
	GWIRE   Cell = "GWIRE"   // 0.1 mm of global inter-router link wire incl. repeaters/shielding
)

// CellParams holds the physical constants of one standard cell.
type CellParams struct {
	Area     float64 // um^2
	Leakage  float64 // nW at 1.0 V, 25 C
	ToggleFJ float64 // fJ consumed per output toggle at 1.0 V
	DelayPS  float64 // propagation delay in ps (typical load)
}

// Library maps cells to their physical constants.
type Library map[Cell]CellParams

// Default40nm is the calibrated 40 nm-like library (1.0 V, 2 GHz target).
// Area values approximate TSMC 40 nm standard-cell footprints (NAND2 as the
// ~0.25 um^2 unit gate at high utilisation); leakage and switching energies
// are set so the TASP Table I points and the router Figure 8 breakdown come
// out near the paper's numbers.
var Default40nm = Library{
	INV:     {Area: 0.18, Leakage: 0.10, ToggleFJ: 0.25, DelayPS: 11},
	NAND2:   {Area: 0.25, Leakage: 0.14, ToggleFJ: 0.35, DelayPS: 14},
	NOR2:    {Area: 0.25, Leakage: 0.14, ToggleFJ: 0.35, DelayPS: 16},
	AND2:    {Area: 0.28, Leakage: 0.16, ToggleFJ: 0.40, DelayPS: 18},
	OR2:     {Area: 0.28, Leakage: 0.16, ToggleFJ: 0.40, DelayPS: 18},
	XOR2:    {Area: 0.42, Leakage: 0.25, ToggleFJ: 0.70, DelayPS: 24},
	XNOR2:   {Area: 0.42, Leakage: 0.25, ToggleFJ: 0.70, DelayPS: 24},
	MUX2:    {Area: 0.46, Leakage: 0.20, ToggleFJ: 0.55, DelayPS: 20},
	DFF:     {Area: 2.20, Leakage: 1.00, ToggleFJ: 1.60, DelayPS: 90},
	LATCH:   {Area: 1.10, Leakage: 0.60, ToggleFJ: 0.80, DelayPS: 45},
	FA:      {Area: 1.30, Leakage: 0.80, ToggleFJ: 1.50, DelayPS: 40},
	SRAMBIT: {Area: 0.60, Leakage: 0.55, ToggleFJ: 2.00, DelayPS: 0},
	CLKBUF:  {Area: 0.32, Leakage: 0.18, ToggleFJ: 0.20, DelayPS: 12},
	TBUF:    {Area: 0.40, Leakage: 0.20, ToggleFJ: 0.50, DelayPS: 17},
	CMPBIT:  {Area: 0.33, Leakage: 0.10, ToggleFJ: 0.45, DelayPS: 20},
	WIRE:    {Area: 4.00, Leakage: 0.00, ToggleFJ: 10.0, DelayPS: 10},
	GWIRE:   {Area: 18.0, Leakage: 0.00, ToggleFJ: 20.0, DelayPS: 15},
}

// DefaultFreqGHz is the paper's operating frequency.
const DefaultFreqGHz = 2.0

// DefaultVoltage is the paper's supply voltage (volts). Dynamic energies in
// the library are quoted at this voltage; Scale* helpers adjust for others.
const DefaultVoltage = 1.0
