package power

import (
	"math"
	"testing"
)

// within reports whether got is within tol (fractional) of want.
func within(got, want, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) <= tol
}

func TestBlockAccounting(t *testing.T) {
	b := NewBlock("x", 0.5)
	b.Add(INV, 10)
	sub := NewBlock("y", 1.0)
	sub.Add(DFF, 2)
	b.AddSub(sub)

	wantArea := 10*Default40nm[INV].Area + 2*Default40nm[DFF].Area
	if !within(b.Area(), wantArea, 1e-9) {
		t.Fatalf("area %g want %g", b.Area(), wantArea)
	}
	wantLeak := 10*Default40nm[INV].Leakage + 2*Default40nm[DFF].Leakage
	if !within(b.Leakage(), wantLeak, 1e-9) {
		t.Fatalf("leakage %g want %g", b.Leakage(), wantLeak)
	}
	wantDyn := 10*Default40nm[INV].ToggleFJ*0.5*2 + 2*Default40nm[DFF].ToggleFJ*1.0*2
	if !within(b.Dynamic(2), wantDyn, 1e-9) {
		t.Fatalf("dynamic %g want %g", b.Dynamic(2), wantDyn)
	}
	if b.Sub("y") != sub || b.Sub("z") != nil {
		t.Fatal("Sub lookup broken")
	}
	if b.TotalCells() != 12 {
		t.Fatalf("TotalCells = %d", b.TotalCells())
	}
}

func TestBlockAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewBlock("x", 0).Add(INV, -1)
}

func TestBreakdownSumsToOne(t *testing.T) {
	r := BuildRouter(DefaultRouterParams())
	for _, metric := range []string{"area", "leakage", "dynamic"} {
		sum := 0.0
		for _, share := range r.Breakdown(metric, DefaultFreqGHz) {
			sum += share
		}
		if !within(sum, 1.0, 1e-9) {
			t.Fatalf("%s breakdown sums to %g", metric, sum)
		}
	}
}

func TestCriticalPathIsMaxOverHierarchy(t *testing.T) {
	b := NewBlock("top", 0)
	b.DepthPS = 100
	s := NewBlock("s", 0)
	s.DepthPS = 300
	b.AddSub(s)
	if b.CriticalPathPS() != 300 {
		t.Fatalf("critical path %g", b.CriticalPathPS())
	}
	if !b.MeetsTiming(2.0) { // 300 ps < 500 ps period
		t.Fatal("should meet 2 GHz timing")
	}
	if b.MeetsTiming(4.0) { // 300 ps > 250 ps period
		t.Fatal("should fail 4 GHz timing")
	}
}

// TestTASPVariantOrdering checks the relative claims of Table I / Figure 9:
// area grows with comparator width, Full is the most expensive in every
// metric, and all variants meet 2 GHz timing with margin (0.21 ns < 0.5 ns).
func TestTASPVariantOrdering(t *testing.T) {
	area := map[TASPVariant]float64{}
	dyn := map[TASPVariant]float64{}
	for _, v := range TASPVariants {
		b := BuildTASP(v)
		area[v] = b.Area()
		dyn[v] = b.Dynamic(DefaultFreqGHz)
		if !b.MeetsTiming(DefaultFreqGHz) {
			t.Errorf("%s misses 2 GHz timing: %.0f ps", v, b.CriticalPathPS())
		}
		if b.CriticalPathPS() > 300 {
			t.Errorf("%s critical path %.0f ps, paper reports 210 ps", v, b.CriticalPathPS())
		}
	}
	if !(area[TASPVC] < area[TASPDest] && area[TASPDest] < area[TASPDestSrc] &&
		area[TASPDestSrc] < area[TASPMem] && area[TASPMem] < area[TASPFull]) {
		t.Errorf("area ordering violated: %v", area)
	}
	if area[TASPDest] != area[TASPSrc] {
		t.Errorf("Dest and Src must cost the same: %g vs %g", area[TASPDest], area[TASPSrc])
	}
	for _, v := range TASPVariants {
		if v != TASPFull && dyn[v] >= dyn[TASPFull] {
			t.Errorf("Full must dominate dynamic power: %s=%g full=%g", v, dyn[v], dyn[TASPFull])
		}
	}
}

// TestTableICalibration checks that the model lands near the paper's
// absolute Table I numbers (tolerances are generous: we substitute a
// synthetic cell library for TSMC's).
func TestTableICalibration(t *testing.T) {
	want := map[TASPVariant]struct{ area, dyn, leak float64 }{
		TASPFull:    {50.45, 25.5304, 30.2694},
		TASPDest:    {33.516, 9.9263, 16.2355},
		TASPSrc:     {33.516, 9.9263, 16.2355},
		TASPDestSrc: {37.044, 10.9416, 16.2498},
		TASPMem:     {44.4528, 10.1997, 17.0468},
		TASPVC:      {31.9284, 10.5953, 15.0765},
	}
	for v, w := range want {
		b := BuildTASP(v)
		if !within(b.Area(), w.area, 0.25) {
			t.Errorf("%s area %.2f um^2, paper %.2f (>25%% off)", v, b.Area(), w.area)
		}
		if !within(b.Dynamic(DefaultFreqGHz), w.dyn, 0.40) {
			t.Errorf("%s dynamic %.2f uW, paper %.2f (>40%% off)", v, b.Dynamic(DefaultFreqGHz), w.dyn)
		}
		if !within(b.Leakage(), w.leak, 0.40) {
			t.Errorf("%s leakage %.2f nW, paper %.2f (>40%% off)", v, b.Leakage(), w.leak)
		}
	}
}

// TestTASPIsTinyRelativeToRouter checks the paper's headline hardware claim:
// a TASP trojan is below 1% of the router in area and power.
func TestTASPIsTinyRelativeToRouter(t *testing.T) {
	r := BuildRouter(DefaultRouterParams())
	h := BuildTASP(TASPFull)
	if ratio := h.Area() / r.Area(); ratio >= 0.01 {
		t.Errorf("TASP/router area ratio %.4f, want < 0.01", ratio)
	}
	if ratio := h.Dynamic(DefaultFreqGHz) / r.Dynamic(DefaultFreqGHz); ratio >= 0.01 {
		t.Errorf("TASP/router dynamic ratio %.4f, want < 0.01", ratio)
	}
}

// TestMitigationOverhead checks Table II's claim: the threat detector plus
// L-Ob add about 2% area and about 6% power to the router.
func TestMitigationOverhead(t *testing.T) {
	base := BuildRouter(DefaultRouterParams())
	p := DefaultRouterParams()
	p.WithMitigation = true
	sec := BuildRouter(p)

	areaOv := sec.Area()/base.Area() - 1
	dynOv := sec.Dynamic(DefaultFreqGHz)/base.Dynamic(DefaultFreqGHz) - 1
	if areaOv <= 0.005 || areaOv > 0.045 {
		t.Errorf("mitigation area overhead %.1f%%, paper reports ~2%%", areaOv*100)
	}
	if dynOv <= 0.02 || dynOv > 0.12 {
		t.Errorf("mitigation power overhead %.1f%%, paper reports ~6%%", dynOv*100)
	}
	det := sec.Sub("threat-detector")
	lob := sec.Sub("l-ob")
	if det == nil || lob == nil {
		t.Fatal("mitigation blocks missing from secured router")
	}
	if !det.MeetsTiming(DefaultFreqGHz) || !lob.MeetsTiming(DefaultFreqGHz) {
		t.Error("mitigation blocks miss 2 GHz timing")
	}
}

// TestRouterDynamicBreakdown checks Figure 8's left pie: buffers dominate
// dynamic power (paper: 71%), crossbar second (18%), allocator and clock
// small, single TASP ~1%.
func TestRouterDynamicBreakdown(t *testing.T) {
	r := BuildRouter(DefaultRouterParams())
	bd := r.Breakdown("dynamic", DefaultFreqGHz)
	if bd["buffer"] < 0.55 || bd["buffer"] > 0.85 {
		t.Errorf("buffer dynamic share %.2f, paper 0.71", bd["buffer"])
	}
	if bd["crossbar"] < 0.08 || bd["crossbar"] > 0.30 {
		t.Errorf("crossbar dynamic share %.2f, paper 0.18", bd["crossbar"])
	}
	if bd["switch-allocator"] > 0.12 {
		t.Errorf("allocator dynamic share %.2f, paper 0.04", bd["switch-allocator"])
	}
	if bd["clock"] > 0.15 {
		t.Errorf("clock dynamic share %.2f, paper 0.06", bd["clock"])
	}

	lb := r.Breakdown("leakage", DefaultFreqGHz)
	if lb["buffer"] < 0.70 {
		t.Errorf("buffer leakage share %.2f, paper 0.88", lb["buffer"])
	}
}

// TestNoCLevelShares checks Figure 8's right pies: global wires dominate NoC
// area; all 48 TASPs together are a sub-1% sliver of NoC dynamic power.
func TestNoCLevelShares(t *testing.T) {
	m := BuildNoC(DefaultNoCParams(), DefaultFreqGHz)
	totalArea := m.WireArea + m.ActiveArea + m.AllTASPArea
	wireShare := m.WireArea / totalArea
	activeShare := m.ActiveArea / totalArea
	taspShare := m.AllTASPArea / totalArea
	if wireShare < 0.70 || wireShare > 0.95 {
		t.Errorf("wire area share %.2f, paper 0.86", wireShare)
	}
	if activeShare < 0.05 || activeShare > 0.25 {
		t.Errorf("active area share %.2f, paper 0.13", activeShare)
	}
	if taspShare > 0.02 {
		t.Errorf("all-links TASP area share %.3f, paper <=0.01", taspShare)
	}
	dynShare := m.AllTASPDynUW / m.NoCDynUW
	if dynShare > 0.012 {
		t.Errorf("all-links TASP dynamic share %.4f, paper 0.0056", dynShare)
	}
}

// TestCalibrationReport prints the full hardware report with -v so the
// calibration numbers that feed EXPERIMENTS.md are visible in test logs.
func TestCalibrationReport(t *testing.T) {
	for _, v := range TASPVariants {
		b := BuildTASP(v)
		t.Logf("%-8s area=%7.2f um^2  dyn=%7.3f uW  leak=%7.3f nW  path=%4.0f ps",
			v, b.Area(), b.Dynamic(DefaultFreqGHz), b.Leakage(), b.CriticalPathPS())
	}
	r := BuildRouter(DefaultRouterParams())
	t.Logf("\n%s", r.Report(DefaultFreqGHz))
	p := DefaultRouterParams()
	p.WithMitigation = true
	s := BuildRouter(p)
	t.Logf("mitigation overhead: area +%.2f%%  dynamic +%.2f%%",
		(s.Area()/r.Area()-1)*100, (s.Dynamic(DefaultFreqGHz)/r.Dynamic(DefaultFreqGHz)-1)*100)
	m := BuildNoC(DefaultNoCParams(), DefaultFreqGHz)
	tot := m.WireArea + m.ActiveArea + m.AllTASPArea
	t.Logf("NoC area: wire %.1f%% active %.1f%% tasp(all48) %.2f%%",
		m.WireArea/tot*100, m.ActiveArea/tot*100, m.AllTASPArea/tot*100)
	t.Logf("NoC dynamic: routers %.2f%% tasp(all48) %.2f%%",
		(1-m.AllTASPDynUW/m.NoCDynUW)*100, m.AllTASPDynUW/m.NoCDynUW*100)
}
