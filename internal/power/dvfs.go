package power

// DVFS support: the paper notes the TASP trojan "fits well within the
// 0.5 ns window, even for architectures with dynamic frequency scaling".
// These helpers evaluate any block across operating points using the
// standard first-order models: dynamic energy scales with V^2, leakage
// roughly linearly with V (sub-threshold, over the small ranges DVFS
// spans), and gate delay with V_nom/V (alpha-power approximation with the
// overdrive folded into calibration).

// OperatingPoint is one DVFS setting.
type OperatingPoint struct {
	Name    string
	FreqGHz float64
	Voltage float64
}

// DefaultOperatingPoints spans a typical 40 nm DVFS ladder around the
// paper's nominal 2 GHz / 1.0 V point.
var DefaultOperatingPoints = []OperatingPoint{
	{Name: "turbo", FreqGHz: 2.5, Voltage: 1.10},
	{Name: "nominal", FreqGHz: 2.0, Voltage: 1.00},
	{Name: "efficient", FreqGHz: 1.5, Voltage: 0.90},
	{Name: "low", FreqGHz: 1.0, Voltage: 0.80},
}

// DynamicAt returns the block's switching power (uW) at an operating
// point: library energies are quoted at DefaultVoltage, scaled by (V/V0)^2
// and the point's clock.
func DynamicAt(b *Block, op OperatingPoint) float64 {
	r := op.Voltage / DefaultVoltage
	return b.Dynamic(op.FreqGHz) * r * r
}

// LeakageAt returns the block's static power (nW) at an operating point
// (linear voltage scaling over DVFS ranges).
func LeakageAt(b *Block, op OperatingPoint) float64 {
	return b.Leakage() * op.Voltage / DefaultVoltage
}

// CriticalPathAt returns the block's critical path (ps) at an operating
// point: delays are quoted at DefaultVoltage and stretch as V drops.
func CriticalPathAt(b *Block, op OperatingPoint) float64 {
	return b.CriticalPathPS() * DefaultVoltage / op.Voltage
}

// MeetsTimingAt reports whether the block closes timing at the operating
// point's own clock.
func MeetsTimingAt(b *Block, op OperatingPoint) bool {
	return CriticalPathAt(b, op) <= 1000.0/op.FreqGHz
}
