package power

import "math"

// log2ceil returns ceil(log2(n)) with log2ceil(1) == 0.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// EqComparator builds a width-bit equality comparator as a CAM-style row of
// compare bit-slices (XNOR + wired-AND match line) plus a match sense stage.
// This is the structure of the TASP target block (Figure 3): the paper's
// per-variant areas imply ~0.39 um^2 per compared bit, which matches a
// bit-slice structure rather than discrete XNOR + AND-tree gates.
func EqComparator(name string, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(CMPBIT, width)
	b.Add(AND2, 1) // match-line sense
	// Match-line evaluation slows roughly linearly with row width (wired-AND RC).
	b.DepthPS = Default40nm[CMPBIT].DelayPS + float64(width)*2 + Default40nm[AND2].DelayPS
	return b
}

// RangeComparator builds a width-bit magnitude comparator (a borrow-ripple
// subtractor with carry-lookahead grouping), used when a target is an
// address *range* rather than an exact match.
func RangeComparator(name string, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(FA, width)
	b.Add(AND2, width/2) // lookahead grouping
	groups := (width + 3) / 4
	b.DepthPS = Default40nm[FA].DelayPS + float64(log2ceil(groups))*Default40nm[AND2].DelayPS
	return b
}

// Counter builds a width-bit binary up-counter: a DFF and a half adder
// (XOR2+AND2) per bit. The TASP payload counter is one of these.
func Counter(name string, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(DFF, width)
	b.Add(XOR2, width)
	b.Add(AND2, width)
	b.DepthPS = Default40nm[XOR2].DelayPS + float64(width)*Default40nm[AND2].DelayPS*0.25
	return b
}

// LFSR builds a width-bit linear-feedback shift register (DFF chain plus a
// few feedback XORs), used by BIST pattern generation and L-Ob scrambling.
func LFSR(name string, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(DFF, width)
	b.Add(XOR2, 3)
	b.DepthPS = 2 * Default40nm[XOR2].DelayPS
	return b
}

// XorStage builds an n-bit XOR layer applied across a datapath: the fault-
// injection tree of TASP (n = number of attackable wires) or an L-Ob
// scramble/invert stage.
func XorStage(name string, n int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(XOR2, n)
	b.DepthPS = Default40nm[XOR2].DelayPS
	return b
}

// MuxTree builds an inputs:1 multiplexer for a width-bit datapath.
func MuxTree(name string, inputs, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	if inputs > 1 {
		b.Add(MUX2, (inputs-1)*width)
	}
	b.DepthPS = float64(log2ceil(inputs)) * Default40nm[MUX2].DelayPS
	return b
}

// Decoder builds an n-to-2^n one-hot decoder.
func Decoder(name string, n int, activity float64) *Block {
	b := NewBlock(name, activity)
	outs := 1 << uint(n)
	b.Add(AND2, outs*(n-1)/1)
	b.Add(INV, n)
	b.DepthPS = float64(log2ceil(n))*Default40nm[AND2].DelayPS + Default40nm[INV].DelayPS
	return b
}

// FIFO builds a slots x width register-file buffer with read/write pointers
// and full/empty logic. NoC input-VC buffers and retransmission buffers are
// FIFOs.
func FIFO(name string, slots, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(SRAMBIT, slots*width)
	ptr := log2ceil(slots) + 1
	b.Add(DFF, 2*ptr) // read + write pointers
	b.Add(XOR2, ptr)  // full/empty compare
	b.Add(AND2, ptr)
	// Write decoder and read mux.
	b.AddSub(MuxTree(name+"/rdmux", slots, width, activity))
	b.DepthPS = float64(log2ceil(slots))*Default40nm[MUX2].DelayPS + Default40nm[AND2].DelayPS
	return b
}

// Crossbar builds a ports x ports crossbar for a width-bit datapath: one
// ports:1 mux tree per output.
func Crossbar(name string, ports, width int, activity float64) *Block {
	b := NewBlock(name, activity)
	for i := 0; i < ports; i++ {
		b.AddSub(MuxTree(name+"/out", ports, width, activity))
	}
	b.DepthPS = float64(log2ceil(ports)) * Default40nm[MUX2].DelayPS
	return b
}

// RoundRobinArbiter builds an n-requester round-robin arbiter: a rotating
// priority pointer plus a fixed-priority chain.
func RoundRobinArbiter(name string, n int, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(DFF, log2ceil(n))
	b.Add(AND2, 2*n)
	b.Add(OR2, n)
	b.Add(INV, n)
	b.DepthPS = float64(n) * Default40nm[AND2].DelayPS * 0.5
	return b
}

// Allocator builds a separable input-first allocator (VA or SA): a first
// stage of arbiters at the inputs and a second stage at the outputs.
func Allocator(name string, inputs, outputs int, activity float64) *Block {
	b := NewBlock(name, activity)
	for i := 0; i < inputs; i++ {
		b.AddSub(RoundRobinArbiter(name+"/in-arb", outputs, activity))
	}
	for o := 0; o < outputs; o++ {
		b.AddSub(RoundRobinArbiter(name+"/out-arb", inputs, activity))
	}
	return b
}

// ECCEncoder builds a Hamming(72,64) SECDED encoder: eight parity trees of
// roughly 32 XOR2 each.
func ECCEncoder(name string, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(XOR2, 8*32)
	b.DepthPS = 6 * Default40nm[XOR2].DelayPS // log2(64) levels
	return b
}

// ECCDecoder builds a SECDED decoder: syndrome trees, a 7-to-72 corrector
// decoder and 72 correction XORs.
func ECCDecoder(name string, activity float64) *Block {
	b := NewBlock(name, activity)
	b.Add(XOR2, 8*36) // syndrome trees (72 inputs each)
	b.Add(AND2, 72*2) // corrector decode
	b.Add(XOR2, 72)   // correction stage
	b.Add(INV, 16)
	b.DepthPS = 7*Default40nm[XOR2].DelayPS + 3*Default40nm[AND2].DelayPS
	return b
}

// ClockTree builds the clock-distribution buffers for a design with nFF
// flip-flops (one buffer per ~8 sinks, high activity — the clock toggles
// twice per cycle).
func ClockTree(name string, nFF int) *Block {
	b := NewBlock(name, 2.0) // clock nets toggle every half-cycle
	b.Add(CLKBUF, (nFF+7)/8)
	return b
}

// CountFFs returns the number of storage cells (DFF + SRAMBIT + LATCH) in
// the hierarchy, used to size clock trees.
func CountFFs(b *Block) int {
	n := b.CellCount(DFF) + b.CellCount(SRAMBIT) + b.CellCount(LATCH)
	for _, s := range b.Subs {
		n += CountFFs(s)
	}
	return n
}
