package power

// RouterParams describes the paper's router micro-architecture for the
// hardware model: 5 ports (4 mesh + 1 local concentrator), 4 VCs per port,
// 4 x 64-bit buffer slots per VC, a 72-bit crossbar datapath (codewords),
// per-port SECDED codecs and per-output retransmission buffers.
type RouterParams struct {
	Ports        int // router ports (5 for a concentrated mesh router)
	VCs          int // virtual channels per port
	SlotsPerVC   int // buffer slots per VC
	FlitBits     int // flit width before ECC
	LinkBits     int // codeword width on the wire
	RetransSlots int // retransmission buffer slots per output
	// WithMitigation adds the threat detector and L-Ob blocks.
	WithMitigation bool
}

// DefaultRouterParams matches the paper's evaluation platform (Section V).
func DefaultRouterParams() RouterParams {
	return RouterParams{
		Ports:        5,
		VCs:          4,
		SlotsPerVC:   4,
		FlitBits:     64,
		LinkBits:     72,
		RetransSlots: 4,
	}
}

// BuildRouter constructs the gate-level model of one NoC router. Sub-blocks
// are named to match the paper's Figure 8 breakdown: "buffer" (input VC
// buffers, retransmission buffers and the ECC codecs that guard them),
// "crossbar", "switch-allocator" (SA + VA + route computation) and "clock".
// When p.WithMitigation is set, "threat-detector" and "l-ob" are added
// (Table II).
func BuildRouter(p RouterParams) *Block {
	b := NewBlock("router", 0)

	// ---- buffer: input VC FIFOs + output retransmission FIFOs + ECC ----
	buf := NewBlock("buffer", 0.25)
	for port := 0; port < p.Ports; port++ {
		for vc := 0; vc < p.VCs; vc++ {
			buf.AddSub(FIFO("vc-fifo", p.SlotsPerVC, p.FlitBits, 0.25))
		}
		buf.AddSub(FIFO("retrans-fifo", p.RetransSlots, p.LinkBits, 0.25))
		buf.AddSub(ECCEncoder("ecc-enc", 0.15))
		buf.AddSub(ECCDecoder("ecc-dec", 0.15))
	}
	b.AddSub(buf)

	// ---- crossbar: ports x ports at link width, including the wire load
	// of the datapath spans across the router floorplan ----
	xbar := Crossbar("crossbar", p.Ports, p.LinkBits, 0.25)
	wires := NewBlock("wire-load", 0.25)
	wires.Add(WIRE, p.Ports*p.LinkBits) // ~0.1 mm per crossbar span
	xbar.AddSub(wires)
	b.AddSub(xbar)

	// ---- switch allocator: SA + VA + route computation ----
	alloc := NewBlock("switch-allocator", 0)
	alloc.AddSub(Allocator("sa", p.Ports, p.Ports, 0.20))
	alloc.AddSub(Allocator("va", p.Ports*p.VCs, p.Ports*p.VCs, 0.08))
	rc := NewBlock("rc", 0.2) // XY route computation per input port
	rc.Add(FA, 8*p.Ports).Add(AND2, 6*p.Ports).Add(INV, 4*p.Ports)
	alloc.AddSub(rc)
	b.AddSub(alloc)

	// ---- mitigation (Table II) ----
	if p.WithMitigation {
		b.AddSub(BuildThreatDetector())
		b.AddSub(BuildLOb())
	}

	// ---- clock tree over every storage cell in the router ----
	b.AddSub(ClockTree("clock", CountFFs(b)))
	return b
}

// NoCParams describes the full chip for Figure 8's NoC-level pies.
type NoCParams struct {
	Routers      int     // router count (16)
	Links        int     // unidirectional inter-router links (48 in a 4x4 mesh, both directions)
	LinkBits     int     // wires per link
	LinkLengthMM float64 // physical length of one link
	Router       RouterParams
}

// DefaultNoCParams matches the paper's 64-core, 16-router, 48-link mesh.
// A 4x4 mesh has 24 router-to-router connections; the paper counts the two
// unidirectional links of each connection separately ("TASP on all 48
// links").
func DefaultNoCParams() NoCParams {
	return NoCParams{
		Routers:      16,
		Links:        48,
		LinkBits:     72,
		LinkLengthMM: 2.0, // 64 cores at 40 nm => ~8 mm die, ~2 mm router pitch
		Router:       DefaultRouterParams(),
	}
}

// NoCModel aggregates the chip-level hardware totals used by Figure 8.
type NoCModel struct {
	Router       *Block // one router instance
	RouterArea   float64
	ActiveArea   float64 // all routers
	WireArea     float64 // global link wiring
	TASP         *Block  // one TASP-Full trojan
	TASPArea     float64 // one trojan
	AllTASPArea  float64 // trojan on every link
	RouterDynUW  float64
	TASPDynUW    float64
	AllTASPDynUW float64
	NoCDynUW     float64
}

// BuildNoC computes the chip-level model at the given clock.
func BuildNoC(p NoCParams, freqGHz float64) NoCModel {
	r := BuildRouter(p.Router)
	t := BuildTASP(TASPFull)
	m := NoCModel{Router: r, TASP: t}
	m.RouterArea = r.Area()
	m.ActiveArea = m.RouterArea * float64(p.Routers)
	// Global wire area: links * wires/link * length, via the WIRE cell's
	// per-0.1mm footprint.
	wireCells := float64(p.Links*p.LinkBits) * p.LinkLengthMM * 10
	m.WireArea = wireCells * Default40nm[GWIRE].Area
	m.TASPArea = t.Area()
	m.AllTASPArea = m.TASPArea * float64(p.Links)
	m.RouterDynUW = r.Dynamic(freqGHz)
	m.TASPDynUW = t.Dynamic(freqGHz)
	m.AllTASPDynUW = m.TASPDynUW * float64(p.Links)
	m.NoCDynUW = m.RouterDynUW*float64(p.Routers) + m.AllTASPDynUW
	return m
}
