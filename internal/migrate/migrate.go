// Package migrate implements the OS-level response the paper proposes as a
// complement to L-Ob (Section IV-B): once the threat detector has localised
// compromised links, "more aggressive approaches [can] be taken, such as
// rerouting packets or invoking the OS to migrate processes from one
// network region to another". Migrating the victim application's processes
// away from the trojan's hunting ground changes the header fields its
// comparator was programmed for — the attack goes blind.
//
// The model works at router granularity: a logical-to-physical placement
// map starts as the identity; an evacuation swaps the victim router's
// processes with a donor region far from every infected link, pauses the
// moved cores for a state-transfer window, and injects the bulk state-copy
// traffic the move itself costs.
package migrate

import (
	"tasp/internal/flit"
	"tasp/internal/noc"
)

// Migrator tracks the logical-to-physical placement of router process
// groups (with concentration c, a router's group is its c cores).
type Migrator struct {
	cfg    noc.Config
	physOf []int // logical router -> physical router
	logOf  []int // physical router -> logical router

	// PauseCycles is the injection blackout of both swapped regions while
	// architectural state moves (register files, dirty cache lines).
	PauseCycles uint64

	pausedUntil map[int]uint64 // physical router -> cycle injection resumes
	// Moves counts evacuations performed.
	Moves int
}

// New returns the identity placement.
func New(cfg noc.Config) *Migrator {
	m := &Migrator{
		cfg:         cfg,
		physOf:      make([]int, cfg.Routers()),
		logOf:       make([]int, cfg.Routers()),
		PauseCycles: 200,
		pausedUntil: map[int]uint64{},
	}
	for i := range m.physOf {
		m.physOf[i] = i
		m.logOf[i] = i
	}
	return m
}

// PhysRouter returns the physical router hosting a logical router's
// processes.
func (m *Migrator) PhysRouter(logical int) int { return m.physOf[logical] }

// LogRouter returns the logical router whose processes a physical router
// hosts.
func (m *Migrator) LogRouter(physical int) int { return m.logOf[physical] }

// PhysCore maps a logical core to its physical core.
func (m *Migrator) PhysCore(logicalCore int) int {
	c := m.cfg.Concentration
	return m.physOf[logicalCore/c]*c + logicalCore%c
}

// Paused reports whether a physical router's injection is blacked out.
func (m *Migrator) Paused(cycle uint64, physical int) bool {
	return cycle < m.pausedUntil[physical]
}

// Evacuate swaps the logical victim's processes with those hosted at the
// donor physical router, starting a state-transfer pause at both ends.
func (m *Migrator) Evacuate(victimLogical, donorPhysical int, cycle uint64) {
	from := m.physOf[victimLogical]
	if from == donorPhysical {
		return
	}
	displaced := m.logOf[donorPhysical]
	m.physOf[victimLogical] = donorPhysical
	m.physOf[displaced] = from
	m.logOf[donorPhysical] = victimLogical
	m.logOf[from] = displaced
	m.pausedUntil[from] = cycle + m.PauseCycles
	m.pausedUntil[donorPhysical] = cycle + m.PauseCycles
	m.Moves++
}

// Rewrite retargets a packet under the current placement: the destination
// router (and implicitly the source, which is set by the physical core the
// packet is injected from) moves with the processes.
func (m *Migrator) Rewrite(p *flit.Packet) {
	p.Hdr.DstR = uint8(m.physOf[p.Hdr.DstR])
}

// PlanTarget picks the donor router for an evacuation: the router
// maximising the minimum hop distance to any endpoint of an infected link
// (breaking ties toward higher router ids for determinism). The victim's
// current host is never chosen.
func PlanTarget(cfg noc.Config, links []noc.LinkInfo, infected []int, victimPhys int) int {
	hot := map[int]bool{}
	byID := map[int]noc.LinkInfo{}
	for _, l := range links {
		byID[l.ID] = l
	}
	for _, id := range infected {
		if l, ok := byID[id]; ok {
			hot[l.From] = true
			hot[l.To] = true
		}
	}
	best, bestDist := victimPhys, -1
	for r := 0; r < cfg.Routers(); r++ {
		if r == victimPhys {
			continue
		}
		min := 1 << 30
		for h := range hot { //nocvet:orderfree commutative min over the hot set
			hx, hy := cfg.XY(h)
			rx, ry := cfg.XY(r)
			d := abs(hx-rx) + abs(hy-ry)
			if d < min {
				min = d
			}
		}
		if min > bestDist || (min == bestDist && r > best) {
			best, bestDist = r, min
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// StateTransfer builds the bulk copy traffic of one evacuation: n five-flit
// packets from the old physical region to the new one (cache and register
// state following the processes).
func (m *Migrator) StateTransfer(fromPhys, toPhys, n int) []*flit.Packet {
	out := make([]*flit.Packet, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &flit.Packet{
			Hdr: flit.Header{
				VC:   uint8(i % m.cfg.VCs),
				DstR: uint8(toPhys),
				DstC: uint8(i % m.cfg.Concentration),
				Mem:  uint32(toPhys)<<24 | uint32(i),
				Seq:  uint8(i),
			},
			Body: make([]uint64, 4),
		})
	}
	return out
}
