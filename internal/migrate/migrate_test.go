package migrate

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func TestIdentityPlacement(t *testing.T) {
	m := New(noc.DefaultConfig())
	for r := 0; r < 16; r++ {
		if m.PhysRouter(r) != r || m.LogRouter(r) != r {
			t.Fatalf("identity broken at %d", r)
		}
	}
	if m.PhysCore(37) != 37 {
		t.Fatalf("core identity broken: %d", m.PhysCore(37))
	}
}

func TestEvacuateSwaps(t *testing.T) {
	m := New(noc.DefaultConfig())
	m.Evacuate(0, 15, 100)
	if m.PhysRouter(0) != 15 || m.PhysRouter(15) != 0 {
		t.Fatalf("swap broken: %d %d", m.PhysRouter(0), m.PhysRouter(15))
	}
	if m.LogRouter(15) != 0 || m.LogRouter(0) != 15 {
		t.Fatal("inverse map broken")
	}
	if m.PhysCore(1) != 61 { // logical core 1 lives at router 15 now
		t.Fatalf("core remap: %d", m.PhysCore(1))
	}
	if m.Moves != 1 {
		t.Fatalf("moves: %d", m.Moves)
	}
	// Both ends pause for the state transfer.
	if !m.Paused(150, 0) || !m.Paused(150, 15) {
		t.Fatal("regions not paused during transfer")
	}
	if m.Paused(301, 0) || m.Paused(301, 15) {
		t.Fatal("pause did not expire")
	}
	// Evacuating to the current host is a no-op.
	m.Evacuate(0, 15, 400)
	if m.Moves != 1 || m.PhysRouter(0) != 15 {
		t.Fatalf("re-evacuation misbehaved: moves=%d phys=%d", m.Moves, m.PhysRouter(0))
	}
}

func TestEvacuateToSameHostIsNoop(t *testing.T) {
	m := New(noc.DefaultConfig())
	m.Evacuate(3, 3, 10)
	if m.Moves != 0 || m.PhysRouter(3) != 3 {
		t.Fatal("same-host evacuation mutated state")
	}
}

func TestRewriteFollowsPlacement(t *testing.T) {
	m := New(noc.DefaultConfig())
	m.Evacuate(0, 12, 0)
	p := &flit.Packet{Hdr: flit.Header{DstR: 0}}
	m.Rewrite(p)
	if p.Hdr.DstR != 12 {
		t.Fatalf("dst not rewritten: %d", p.Hdr.DstR)
	}
	q := &flit.Packet{Hdr: flit.Header{DstR: 5}}
	m.Rewrite(q)
	if q.Hdr.DstR != 5 {
		t.Fatal("unrelated destination rewritten")
	}
}

func TestPlanTargetAvoidsInfectedRegion(t *testing.T) {
	cfg := noc.DefaultConfig()
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Infect both ingress links of router 0 (ids known from wiring: find
	// them properly).
	var infected []int
	for _, l := range n.Links() {
		if l.To == 0 {
			infected = append(infected, l.ID)
		}
	}
	target := PlanTarget(cfg, n.Links(), infected, 0)
	// The farthest router from {0, 1, 4} is 15.
	if target != 15 {
		t.Fatalf("evacuation target %d, want 15", target)
	}
}

func TestPlanTargetNeverPicksVictim(t *testing.T) {
	cfg := noc.DefaultConfig()
	n, _ := noc.New(cfg)
	if got := PlanTarget(cfg, n.Links(), nil, 7); got == 7 {
		t.Fatal("victim chosen as its own donor")
	}
}

func TestStateTransferPackets(t *testing.T) {
	m := New(noc.DefaultConfig())
	ps := m.StateTransfer(0, 15, 8)
	if len(ps) != 8 {
		t.Fatalf("packets: %d", len(ps))
	}
	for i, p := range ps {
		if p.Hdr.DstR != 15 {
			t.Fatalf("packet %d aimed at %d", i, p.Hdr.DstR)
		}
		if p.NumFlits() != 5 {
			t.Fatalf("packet %d has %d flits, want 5", i, p.NumFlits())
		}
	}
}
