// Package fault models the three ways faults occur on NoC links (paper
// Figure 2): transient single-event upsets, permanent stuck-at defects, and
// hardware-trojan-injected faults. Links expose a tap point on the physical
// 72-bit codeword; every fault source — including the TASP trojan in package
// tasp — implements the Injector interface and mutates the codeword in
// flight.
package fault

import (
	"tasp/internal/ecc"
	"tasp/internal/xrand"
)

// Framing carries the flit-type side band of a link. NoC links transport
// the head/tail indicators on dedicated control wires next to the data
// wires, so a link tap — benign or malicious — can frame packets without
// parsing payload bits. The TASP trojan uses it to qualify its deep packet
// inspection to header-carrying flits.
type Framing struct {
	Head bool // the flit opens a packet (head or single)
	Tail bool // the flit closes a packet (tail or single)
}

// Injector mutates a codeword as it traverses a link. Inspect receives the
// word exactly as the upstream ECC encoder emitted it (after any L-Ob
// obfuscation) and returns the word the downstream decoder will see. cycle
// is the global simulation clock, letting injectors model temporal
// behaviour; fr is the control-wire framing of the flit.
type Injector interface {
	Inspect(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword

// Inspect calls f.
func (f InjectorFunc) Inspect(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword {
	return f(cycle, w, fr)
}

// None is the identity injector used on healthy links.
var None = InjectorFunc(func(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword { return w })

// Transient flips each wire independently with a (very small) per-traversal
// probability, modelling single-event upsets. With realistic rates almost
// all upsets are single-bit and silently corrected by SECDED.
type Transient struct {
	// BitErrorRate is the per-bit, per-traversal flip probability.
	BitErrorRate float64
	rng          *xrand.RNG
	// Flips counts the total number of bits flipped, for tests and stats.
	Flips uint64
}

// NewTransient returns a transient-fault injector with the given per-bit
// error rate, deterministically seeded.
func NewTransient(ber float64, seed uint64) *Transient {
	return &Transient{BitErrorRate: ber, rng: xrand.New(seed)}
}

// Reset re-arms the injector in place with a new rate and seed, producing
// the exact upset stream a fresh NewTransient(ber, seed) would (arena reuse
// across simulation runs).
func (t *Transient) Reset(ber float64, seed uint64) {
	t.BitErrorRate = ber
	t.rng.Seed(seed)
	t.Flips = 0
}

// Inspect implements Injector.
func (t *Transient) Inspect(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword {
	// Fast path: with rate p the chance of any flip in 72 bits is ~72p;
	// sample the count first to avoid 72 RNG draws per flit.
	if !t.rng.Bool(t.BitErrorRate * ecc.CodewordBits) {
		return w
	}
	w = w.Flip(t.rng.Intn(ecc.CodewordBits))
	t.Flips++
	// Rarely, a second upset hits the same traversal.
	if t.rng.Bool(t.BitErrorRate * ecc.CodewordBits) {
		w = w.Flip(t.rng.Intn(ecc.CodewordBits))
		t.Flips++
	}
	return w
}

// StuckAt models a permanent defect: the listed wires are stuck at fixed
// values regardless of the driven data. A single stuck wire manifests as a
// (correctable) error on roughly half of all traversals; BIST walking
// patterns expose it deterministically.
type StuckAt struct {
	// Wires maps codeword bit position -> stuck value (0 or 1).
	Wires map[int]uint
}

// NewStuckAt returns a permanent-fault injector with the given stuck wires.
func NewStuckAt(wires map[int]uint) *StuckAt {
	cp := make(map[int]uint, len(wires))
	for p, v := range wires { //nocvet:orderfree builds a map keyed by the same bit position
		cp[p] = v & 1
	}
	return &StuckAt{Wires: cp}
}

// Inspect implements Injector.
func (s *StuckAt) Inspect(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword {
	for p, v := range s.Wires { //nocvet:orderfree independent single-bit flips commute
		if w.Bit(p) != v {
			w = w.Flip(p)
		}
	}
	return w
}

// Chain composes injectors; the word passes through each in order. It lets a
// compromised link also suffer background transient noise.
type Chain []Injector

// Inspect implements Injector.
func (c Chain) Inspect(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword {
	for _, in := range c {
		w = in.Inspect(cycle, w, fr)
	}
	return w
}
