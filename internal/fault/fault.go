// Package fault models the ways faults and attacks occur on NoC links
// (paper Figure 2): transient single-event upsets, permanent stuck-at
// defects, and hardware-trojan-injected faults. Links expose a tap point on
// the physical 72-bit codeword; every fault source — including the trojan
// family in package tasp — implements the Adversary interface and decides
// the fate of the codeword in flight.
//
// Two contracts live here. Injector is the historical wire-mutation tap:
// the word goes in, a (possibly corrupted) word comes out, and SECDED
// downstream arbitrates. Adversary subsumes it: Strike can additionally
// swallow the flit outright — the drop-trojan class of Prasad et al.
// (arXiv:1908.00289), where the link forges the ACK and the flit simply
// never arrives, leaving SECDED nothing to see. Every Injector in this
// package also implements Adversary (forwarding), so benign fault sources
// compose with trojans in one Chain.
package fault

import (
	"tasp/internal/ecc"
	"tasp/internal/xrand"
)

// Framing carries the flit-type side band of a link. NoC links transport
// the head/tail indicators on dedicated control wires next to the data
// wires, so a link tap — benign or malicious — can frame packets without
// parsing payload bits. The TASP trojan uses it to qualify its deep packet
// inspection to header-carrying flits.
type Framing struct {
	Head bool // the flit opens a packet (head or single)
	Tail bool // the flit closes a packet (tail or single)
}

// Injector mutates a codeword as it traverses a link. Inspect receives the
// word exactly as the upstream ECC encoder emitted it (after any L-Ob
// obfuscation) and returns the word the downstream decoder will see. cycle
// is the global simulation clock, letting injectors model temporal
// behaviour; fr is the control-wire framing of the flit.
type Injector interface {
	Inspect(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword
}

// Outcome is an adversary's decision about a traversing flit.
type Outcome uint8

// Strike outcomes.
const (
	// Forward delivers the (possibly mutated) codeword downstream — the
	// bit-flip attack class and every benign fault source.
	Forward Outcome = iota
	// Swallow consumes the flit in flight and forges the link-level ACK:
	// the sender retires the flit as delivered, the receiver never sees it,
	// and no NACK/retransmission machinery engages. The returned codeword
	// is ignored.
	Swallow
)

// Adversary is the full wire-boundary attack contract: it sees the codeword
// exactly as the upstream ECC encoder emitted it (after any L-Ob
// obfuscation) and decides its fate — forward it (mutated or not) or swallow
// it with a forged acknowledgment. cycle is the global simulation clock; fr
// is the control-wire framing of the flit.
type Adversary interface {
	Strike(cycle uint64, w ecc.Codeword, fr Framing) (ecc.Codeword, Outcome)
}

// InjectorFunc adapts a function to the Injector interface (and, always
// forwarding, to Adversary).
type InjectorFunc func(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword

// Inspect calls f.
func (f InjectorFunc) Inspect(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword {
	return f(cycle, w, fr)
}

// Strike implements Adversary: mutate and forward.
func (f InjectorFunc) Strike(cycle uint64, w ecc.Codeword, fr Framing) (ecc.Codeword, Outcome) {
	return f(cycle, w, fr), Forward
}

// None is the identity adversary used on healthy links.
var None = InjectorFunc(func(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword { return w })

// Transient flips each wire independently with a (very small) per-traversal
// probability, modelling single-event upsets. With realistic rates almost
// all upsets are single-bit and silently corrected by SECDED.
type Transient struct {
	// BitErrorRate is the per-bit, per-traversal flip probability.
	BitErrorRate float64
	rng          *xrand.RNG
	// Flips counts the total number of bits flipped, for tests and stats.
	Flips uint64
}

// NewTransient returns a transient-fault injector with the given per-bit
// error rate, deterministically seeded.
func NewTransient(ber float64, seed uint64) *Transient {
	return &Transient{BitErrorRate: ber, rng: xrand.New(seed)}
}

// Reset re-arms the injector in place with a new rate and seed, producing
// the exact upset stream a fresh NewTransient(ber, seed) would (arena reuse
// across simulation runs).
func (t *Transient) Reset(ber float64, seed uint64) {
	t.BitErrorRate = ber
	t.rng.Seed(seed)
	t.Flips = 0
}

// Inspect implements Injector.
func (t *Transient) Inspect(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword {
	// Fast path: with rate p the chance of any flip in 72 bits is ~72p;
	// sample the count first to avoid 72 RNG draws per flit.
	if !t.rng.Bool(t.BitErrorRate * ecc.CodewordBits) {
		return w
	}
	w = w.Flip(t.rng.Intn(ecc.CodewordBits))
	t.Flips++
	// Rarely, a second upset hits the same traversal.
	if t.rng.Bool(t.BitErrorRate * ecc.CodewordBits) {
		w = w.Flip(t.rng.Intn(ecc.CodewordBits))
		t.Flips++
	}
	return w
}

// Strike implements Adversary: upsets forward.
func (t *Transient) Strike(cycle uint64, w ecc.Codeword, fr Framing) (ecc.Codeword, Outcome) {
	return t.Inspect(cycle, w, fr), Forward
}

// StuckAt models a permanent defect: the listed wires are stuck at fixed
// values regardless of the driven data. A single stuck wire manifests as a
// (correctable) error on roughly half of all traversals; BIST walking
// patterns expose it deterministically.
type StuckAt struct {
	// Wires maps codeword bit position -> stuck value (0 or 1).
	Wires map[int]uint
}

// NewStuckAt returns a permanent-fault injector with the given stuck wires.
func NewStuckAt(wires map[int]uint) *StuckAt {
	cp := make(map[int]uint, len(wires))
	for p, v := range wires { //nocvet:orderfree builds a map keyed by the same bit position
		cp[p] = v & 1
	}
	return &StuckAt{Wires: cp}
}

// Inspect implements Injector.
func (s *StuckAt) Inspect(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword {
	for p, v := range s.Wires { //nocvet:orderfree independent single-bit flips commute
		if w.Bit(p) != v {
			w = w.Flip(p)
		}
	}
	return w
}

// Strike implements Adversary: stuck wires forward.
func (s *StuckAt) Strike(cycle uint64, w ecc.Codeword, fr Framing) (ecc.Codeword, Outcome) {
	return s.Inspect(cycle, w, fr), Forward
}

// Chain composes adversaries; the word passes through each in order. It lets
// a compromised link also suffer background transient noise. A Swallow ends
// the traversal immediately — a flit a trojan has consumed cannot suffer
// further upsets.
type Chain []Adversary

// Strike implements Adversary.
func (c Chain) Strike(cycle uint64, w ecc.Codeword, fr Framing) (ecc.Codeword, Outcome) {
	for _, in := range c {
		var oc Outcome
		if w, oc = in.Strike(cycle, w, fr); oc == Swallow {
			return w, Swallow
		}
	}
	return w, Forward
}

// Inspect adapts a forwarding chain to the Injector view (logic-test
// campaigns drive taps through it). Swallows read as unchanged words there;
// wire-level simulation must use Strike.
func (c Chain) Inspect(cycle uint64, w ecc.Codeword, fr Framing) ecc.Codeword {
	out, oc := c.Strike(cycle, w, fr)
	if oc == Swallow {
		return w
	}
	return out
}
