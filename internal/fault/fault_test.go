package fault

import (
	"testing"

	"tasp/internal/ecc"
)

func TestNoneIsIdentity(t *testing.T) {
	w := ecc.Encode(0xdeadbeef)
	if got := None.Inspect(0, w, Framing{Head: true}); got != w {
		t.Fatalf("None mutated the codeword")
	}
}

func TestTransientRespectsRate(t *testing.T) {
	// At rate 0 the injector must never flip; at a huge rate it must flip.
	quiet := NewTransient(0, 1)
	w := ecc.Encode(42)
	for c := uint64(0); c < 1000; c++ {
		if quiet.Inspect(c, w, Framing{Head: true}) != w {
			t.Fatal("zero-rate transient injector flipped a bit")
		}
	}
	noisy := NewTransient(0.5, 1)
	flipped := false
	for c := uint64(0); c < 100; c++ {
		if noisy.Inspect(c, w, Framing{Head: true}) != w {
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("high-rate transient injector never flipped")
	}
	if noisy.Flips == 0 {
		t.Fatal("flip counter not incremented")
	}
}

func TestTransientMostlyCorrectable(t *testing.T) {
	// With a realistic (small) BER, upsets must be overwhelmingly
	// single-bit, i.e. corrected by SECDED — the property that
	// distinguishes background noise from the trojan's 2-bit payloads.
	tr := NewTransient(1e-4, 9)
	data := uint64(0x0f0f_f0f0_1234_5678)
	cw := ecc.Encode(data)
	var corrected, uncorrectable int
	for c := uint64(0); c < 200000; c++ {
		_, st, _ := ecc.Decode(tr.Inspect(c, cw, Framing{Head: true}))
		switch st {
		case ecc.Corrected:
			corrected++
		case ecc.Uncorrectable:
			uncorrectable++
		}
	}
	if corrected == 0 {
		t.Fatal("no transient upsets observed at BER 1e-4 over 200k traversals")
	}
	if uncorrectable > corrected/10 {
		t.Fatalf("too many uncorrectable transients: %d vs %d corrected", uncorrectable, corrected)
	}
}

func TestStuckAtForcesWires(t *testing.T) {
	s := NewStuckAt(map[int]uint{5: 1, 20: 0})
	// Drive both polarities through the stuck wires.
	w := ecc.Codeword{}
	got := s.Inspect(0, w, Framing{Head: true})
	if got.Bit(5) != 1 {
		t.Fatal("stuck-at-1 wire not forced high")
	}
	w = w.Flip(20)
	got = s.Inspect(0, w, Framing{Head: true})
	if got.Bit(20) != 0 {
		t.Fatal("stuck-at-0 wire not forced low")
	}
}

func TestStuckAtTransparentWhenDataMatches(t *testing.T) {
	s := NewStuckAt(map[int]uint{3: 1})
	w := ecc.Codeword{}.Flip(3)
	if s.Inspect(0, w, Framing{Head: true}) != w {
		t.Fatal("stuck-at mutated a word that already matched")
	}
}

func TestStuckAtCopiesMap(t *testing.T) {
	m := map[int]uint{7: 1}
	s := NewStuckAt(m)
	m[7] = 0
	w := ecc.Codeword{}
	if s.Inspect(0, w, Framing{Head: true}).Bit(7) != 1 {
		t.Fatal("injector shares caller's map")
	}
}

func TestChainAppliesInOrder(t *testing.T) {
	a := InjectorFunc(func(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword { return w.Flip(0) })
	b := InjectorFunc(func(_ uint64, w ecc.Codeword, _ Framing) ecc.Codeword { return w.Flip(0).Flip(1) })
	c := Chain{a, b}
	got := c.Inspect(0, ecc.Codeword{}, Framing{Head: true})
	if got.Bit(0) != 0 || got.Bit(1) != 1 {
		t.Fatalf("chain misapplied: bits %d %d", got.Bit(0), got.Bit(1))
	}
}
