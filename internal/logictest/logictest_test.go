package logictest

import (
	"testing"

	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/tasp"
)

func TestKillSwitchHidesFromLogicTesting(t *testing.T) {
	// Even the most easily excited trigger (2-bit VC) is invisible while
	// the kill switch is off — the paper's stated reason for the killsw.
	ht := tasp.New(tasp.ForVC(1), tasp.DefaultPayloadBits, flit.Default)
	r := Campaign{Vectors: 100000}.Run(ht, 1)
	if r.Detected() {
		t.Fatalf("dormant trojan triggered %d times", r.Triggers)
	}
}

func TestNarrowTriggerCaughtQuickly(t *testing.T) {
	ht := tasp.New(tasp.ForVC(1), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	r := Campaign{Vectors: 1000}.Run(ht, 2)
	if !r.Detected() {
		t.Fatal("armed 2-bit trigger survived 1000 random vectors")
	}
	// P(match) = 1/4: expect first trigger within a few vectors.
	if r.FirstAt > 50 {
		t.Fatalf("first trigger at vector %d, expected within ~4", r.FirstAt)
	}
	if r.TriggerPr < 0.15 || r.TriggerPr > 0.35 {
		t.Fatalf("trigger probability %.3f, want ~0.25", r.TriggerPr)
	}
}

func TestWideTriggerEvadesRandomVectors(t *testing.T) {
	// The Full 42-bit comparator: 2^-42 per vector. 100k vectors see
	// nothing.
	ht := tasp.New(tasp.ForFull(3, 9, 1, 0xdead0000, 0xffffffff), tasp.DefaultPayloadBits, flit.Default)
	ht.SetKillSwitch(true)
	r := Campaign{Vectors: 100000}.Run(ht, 3)
	if r.Detected() {
		t.Fatalf("42-bit trigger excited %d times in 100k vectors", r.Triggers)
	}
}

func TestMemTriggerWithWideMask(t *testing.T) {
	// A 16-bit address window: caught with enough vectors (2^16 expected),
	// evaded by short campaigns.
	target := tasp.ForMem(0x12340000, 0xffff0000)
	short := tasp.New(target, tasp.DefaultPayloadBits, flit.Default)
	short.SetKillSwitch(true)
	if r := (Campaign{Vectors: 1000}).Run(short, 4); r.Detected() {
		t.Logf("short campaign got lucky at vector %d (p~1.5%%)", r.FirstAt)
	}
	long := tasp.New(target, tasp.DefaultPayloadBits, flit.Default)
	long.SetKillSwitch(true)
	if r := (Campaign{Vectors: 500000}).Run(long, 5); !r.Detected() {
		t.Fatal("16-bit window not excited in 500k vectors (expected ~8 hits)")
	}
}

func TestDirectedVectorsStillFramed(t *testing.T) {
	// Directed campaigns must behave (no panic, sane stats) and remain
	// unable to excite a dormant trojan.
	ht := tasp.New(tasp.ForDest(3), tasp.DefaultPayloadBits, flit.Default)
	r := Campaign{Vectors: 5000, Directed: true}.Run(ht, 6)
	if r.Detected() || r.Vectors != 5000 {
		t.Fatalf("directed campaign misbehaved: %+v", r)
	}
}

func TestCleanLinkNeverTriggers(t *testing.T) {
	r := Campaign{Vectors: 10000}.Run(fault.None, 7)
	if r.Detected() {
		t.Fatal("clean link corrupted vectors")
	}
}

func TestExpectedVectors(t *testing.T) {
	if ExpectedVectors(2) != 4 || ExpectedVectors(4) != 16 {
		t.Fatal("expectation formula wrong")
	}
	if ExpectedVectors(42) < 4e12 {
		t.Fatal("42-bit expectation should be astronomically large")
	}
}

// TestStuckAtCaughtByLogicTesting contrasts the trojan with a permanent
// fault: stuck wires corrupt roughly half of all vectors.
func TestStuckAtCaughtByLogicTesting(t *testing.T) {
	r := Campaign{Vectors: 1000}.Run(fault.NewStuckAt(map[int]uint{7: 1}), 8)
	if !r.Detected() || r.TriggerPr < 0.3 {
		t.Fatalf("stuck wire not exposed: %+v", r)
	}
}
