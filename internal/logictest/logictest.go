// Package logictest models post-fabrication trojan detection by logic
// testing (paper Sections II and III-A, MERO [18]): driving random and
// directed test vectors through the link and watching for the trojan to
// reveal itself by corrupting a word. The paper's analysis, reproduced
// here: small combinational triggers (a 2-bit VC comparator) are excited
// quickly by random vectors, wide triggers (the 42-bit Full comparator)
// practically never — and a trojan gated behind an external kill switch is
// invisible to logic testing entirely, "preventing logic testing from
// accidentally triggering the HT and revealing itself in the verification
// process".
package logictest

import (
	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/xrand"
)

// Campaign configures a logic-testing run against one link tap.
type Campaign struct {
	// Vectors is the number of test words driven through the link.
	Vectors int
	// Directed, when true, biases vectors toward realistic header layouts
	// (valid flit-type fields, small router ids) instead of uniform random
	// bits — a smarter, MERO-like stimulus.
	Directed bool
}

// Result reports a campaign's outcome.
type Result struct {
	Vectors   int
	Triggers  int     // vectors the trojan corrupted
	FirstAt   int     // 1-based index of the first trigger (0 = never)
	TriggerPr float64 // Triggers / Vectors
}

// Detected reports whether the campaign exposed the trojan.
func (r Result) Detected() bool { return r.Triggers > 0 }

// Run drives the campaign through the injector. Every vector is framed as
// a head flit (test harnesses control the framing wires).
func (c Campaign) Run(tap fault.Injector, seed uint64) Result {
	rng := xrand.New(seed)
	res := Result{Vectors: c.Vectors}
	for i := 1; i <= c.Vectors; i++ {
		var data uint64
		if c.Directed {
			// Bias: plausible header fields — type head/single, random
			// small ids, random address — covering realistic traffic.
			data = rng.Uint64() & 0xffffffffffff0000
			data |= rng.Uint64() & 0xffff
		} else {
			data = rng.Uint64()
		}
		cw := ecc.Encode(data)
		got := tap.Inspect(uint64(i), cw, fault.Framing{Head: true, Tail: true})
		if got != cw {
			res.Triggers++
			if res.FirstAt == 0 {
				res.FirstAt = i
			}
		}
	}
	if c.Vectors > 0 {
		res.TriggerPr = float64(res.Triggers) / float64(c.Vectors)
	}
	return res
}

// ExpectedVectors returns the analytic expectation of vectors needed to
// excite an exact-match trigger of the given width with uniform random
// stimulus: 2^width.
func ExpectedVectors(width int) float64 {
	return float64(uint64(1) << uint(width&63))
}
