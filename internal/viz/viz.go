// Package viz renders mesh-shaped data as ASCII art for the CLI tools:
// per-router heatmaps laid out geographically and per-link load maps drawn
// on the mesh topology. Terminals are the only display surface this
// repository assumes.
package viz

import (
	"fmt"
	"strings"

	"tasp/internal/noc"
)

// shades maps intensity (0..1) to a glyph ramp.
var shades = []string{" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"}

// shade picks the glyph for v in [0, max].
func shade(v, max float64) string {
	if max <= 0 {
		return shades[0]
	}
	i := int(v / max * float64(len(shades)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(shades) {
		i = len(shades) - 1
	}
	return shades[i]
}

// RouterHeatmap renders one value per router on the mesh layout, highest
// row (y) on top, with the numeric values alongside.
func RouterHeatmap(cfg noc.Config, title string, values []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	for y := cfg.Height - 1; y >= 0; y-- {
		b.WriteString("  ")
		for x := 0; x < cfg.Width; x++ {
			v := values[cfg.RouterAt(x, y)]
			fmt.Fprintf(&b, "[%s]", strings.Repeat(shade(v, max), 2))
		}
		b.WriteString("   ")
		for x := 0; x < cfg.Width; x++ {
			fmt.Fprintf(&b, "r%-2d=%-7.3g", cfg.RouterAt(x, y), values[cfg.RouterAt(x, y)])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// LinkMap renders per-directed-link values on the mesh: routers as boxes,
// horizontal links as <./> glyph pairs and vertical links as ^/v pairs,
// shaded by load.
func LinkMap(cfg noc.Config, title string, load func(from, to int) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			r := cfg.RouterAt(x, y)
			if x+1 < cfg.Width {
				e := cfg.RouterAt(x+1, y)
				if v := load(r, e); v > max {
					max = v
				}
				if v := load(e, r); v > max {
					max = v
				}
			}
			if y+1 < cfg.Height {
				n := cfg.RouterAt(x, y+1)
				if v := load(r, n); v > max {
					max = v
				}
				if v := load(n, r); v > max {
					max = v
				}
			}
		}
	}
	for y := cfg.Height - 1; y >= 0; y-- {
		// Router row with eastbound/westbound link glyphs between boxes.
		b.WriteString("  ")
		for x := 0; x < cfg.Width; x++ {
			r := cfg.RouterAt(x, y)
			fmt.Fprintf(&b, "[%2d]", r)
			if x+1 < cfg.Width {
				e := cfg.RouterAt(x+1, y)
				fmt.Fprintf(&b, "%s%s", shade(load(r, e), max), shade(load(e, r), max))
			}
		}
		b.WriteString("\n")
		// Vertical link row below (toward y-1? we draw links to the row
		// beneath, i.e. between y and y-1 — these are (r, south) pairs).
		if y > 0 {
			b.WriteString("  ")
			for x := 0; x < cfg.Width; x++ {
				up := cfg.RouterAt(x, y)
				dn := cfg.RouterAt(x, y-1)
				fmt.Fprintf(&b, " %s%s ", shade(load(up, dn), max), shade(load(dn, up), max))
				if x+1 < cfg.Width {
					b.WriteString("  ")
				}
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("  glyph ramp (low->high): " + strings.Join(shades, "") + "\n")
	return b.String()
}

// OccupancyHeatmap renders a network's current per-router buffered-flit
// totals.
func OccupancyHeatmap(n *noc.Network) string {
	cfg := n.Config()
	vals := make([]float64, cfg.Routers())
	for _, l := range n.LinkSlice() {
		// Attribute each link's parked retransmission entries to its
		// source router; input occupancy is not exposed per router, so use
		// link telemetry as the congestion proxy.
		vals[l.From] += float64(len(n.DebugRetransVCs(l.ID)))
	}
	return RouterHeatmap(cfg, fmt.Sprintf("retransmission-buffer occupancy (cycle %d)", n.Cycle()), vals)
}
