package viz

import (
	"strings"
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func TestRouterHeatmapLayout(t *testing.T) {
	cfg := noc.DefaultConfig()
	vals := make([]float64, 16)
	vals[0] = 10 // bottom-left hottest
	s := RouterHeatmap(cfg, "demo", vals)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "demo" {
		t.Fatalf("title line: %q", lines[0])
	}
	if len(lines) != 5 { // title + 4 rows
		t.Fatalf("lines: %d", len(lines))
	}
	// Router 0 is bottom-left: the last row must carry the hottest glyph.
	if !strings.Contains(lines[4], "@@") {
		t.Fatalf("hot cell not in bottom row: %q", lines[4])
	}
	if strings.Contains(lines[1], "@@") {
		t.Fatalf("top row should be cold: %q", lines[1])
	}
	if !strings.Contains(lines[4], "r0 =10") {
		t.Fatalf("numeric annotation missing: %q", lines[4])
	}
}

func TestRouterHeatmapAllZero(t *testing.T) {
	s := RouterHeatmap(noc.DefaultConfig(), "zeros", make([]float64, 16))
	if strings.Contains(s, "@") {
		t.Fatal("zero map shows hot glyphs")
	}
}

func TestLinkMapShadesHotLink(t *testing.T) {
	cfg := noc.DefaultConfig()
	s := LinkMap(cfg, "links", func(from, to int) float64 {
		if from == 0 && to == 1 {
			return 1
		}
		return 0
	})
	if !strings.Contains(s, "[ 0]@") {
		t.Fatalf("hot 0->1 link not shaded next to router 0:\n%s", s)
	}
	if !strings.Contains(s, "glyph ramp") {
		t.Fatal("legend missing")
	}
}

func TestOccupancyHeatmapOnLiveNetwork(t *testing.T) {
	n, err := noc.New(noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Inject(0, &flit.Packet{Hdr: flit.Header{VC: uint8(i % 4), DstR: 3}})
	}
	n.Run(8)
	s := OccupancyHeatmap(n)
	if !strings.Contains(s, "cycle 8") {
		t.Fatalf("missing cycle stamp:\n%s", s)
	}
	if len(strings.Split(s, "\n")) < 5 {
		t.Fatal("heatmap too short")
	}
}
