// Package locate is the network-level DoS localization layer: it fuses
// per-link threat-detector verdicts, blocked-port telemetry sampled over
// time, and topology-structural priors into a ranked suspect-link set with a
// confidence score — pinpointing the infected link(s) behind a saturation
// outage rather than merely classifying each link in isolation.
//
// The discriminator is the saturation tree's growth direction. A trojan
// wedges its own link first: endless NACK/retransmission cycles stop the
// driving output port's progress clock. Back-pressure then starves credits
// upstream, so the ports feeding the infected router block next, and the
// blockage fans upstream against the traffic flow — victims appear
// downstream-first (starved of deliveries), while the *blocked-port* front
// grows upstream from the root. A link that (i) blocked earliest, (ii) has
// its upstream feeders blocking strictly after it, (iii) NACKs a large
// fraction of its traversals or carries a detector verdict, and (iv) sits
// where the topology concentrates routes (high fan-in, bisection or
// wraparound membership) is the root of the tree.
package locate

import (
	"sort"

	"tasp/internal/detect"
	"tasp/internal/noc"
)

// Priors are the topology-structural attack priors of every directed link,
// computed once per substrate from the Topology interface alone.
type Priors struct {
	// FanIn is the fraction of all (src, dst) default routes that traverse
	// the link, normalized so the most-traversed link scores 1. Attackers
	// place trojans where the route table concentrates flows (the paper's
	// Section III-A link-selection analysis), so high fan-in is prior
	// evidence.
	FanIn []float64
	// Bisection marks links crossing the id-halving cut (routers < R/2 vs
	// the rest). On a row-major mesh/torus this is the horizontal midline,
	// on the ring the two half-way crossings — the narrow waists every
	// cross-half flow must use.
	Bisection []bool
	// Wraparound marks dateline links (torus wraparound pairs, the ring's
	// modulo closure): they aggregate a whole dimension's shorter-way-around
	// traffic, and their dateline VC discipline makes saturation there
	// especially contagious.
	Wraparound []bool
}

// ComputePriors derives the structural priors for one substrate.
func ComputePriors(t noc.Topology, links []noc.LinkInfo) Priors {
	p := Priors{
		FanIn:      make([]float64, len(links)),
		Bisection:  make([]bool, len(links)),
		Wraparound: make([]bool, len(links)),
	}
	R := t.Routers()

	// linkAt[(router, port)] -> link id, for route walking.
	linkAt := make(map[[2]int]int, len(links))
	for _, l := range links {
		linkAt[[2]int{l.From, l.FromPort}] = l.ID
	}

	// Route-table fan-in: walk every (src, dst) default route and count the
	// links it crosses. Hop-bounded so a malformed route table cannot loop.
	counts := make([]int, len(links))
	maxHops := R + 1
	for src := 0; src < R; src++ {
		for dst := 0; dst < R; dst++ {
			if src == dst {
				continue
			}
			r := src
			for hop := 0; r != dst && hop < maxHops; hop++ {
				id, ok := linkAt[[2]int{r, t.Route(r, dst)}]
				if !ok {
					break // route points at an unwired port
				}
				counts[id]++
				r = links[id].To
			}
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		if max > 0 {
			p.FanIn[i] = float64(c) / float64(max)
		}
	}

	// Bisection membership: the id-halving cut.
	for _, l := range links {
		p.Bisection[l.ID] = (l.From < R/2) != (l.To < R/2)
	}

	// Wraparound detection, topology-agnostic: group the links by port name
	// (direction) and find each group's modal id stride To-From — the
	// regular neighbour offset. Links deviating from the mode are the
	// dimension's closure (torus wraparound, ring modulo link): e.g. east on
	// a 4x4 torus is +1 twelve times and -3 four times. Ties break toward
	// the smaller |stride|, since closures jump farther than neighbours.
	byDir := map[string][]int{}
	for _, l := range links {
		byDir[l.FromName] = append(byDir[l.FromName], l.ID)
	}
	for _, ids := range byDir { //nocvet:orderfree each direction writes only its own links' Wraparound entries
		strides := map[int]int{}
		for _, id := range ids {
			strides[links[id].To-links[id].From]++
		}
		// Scan the strides in sorted order: on a count tie with equal
		// |stride| (e.g. +2 and -2 seen equally often) the winner would
		// otherwise depend on map iteration order and the wraparound prior
		// would differ run to run.
		ss := make([]int, 0, len(strides))
		for s := range strides { //nocvet:orderfree keys are sorted before use
			ss = append(ss, s)
		}
		sort.Ints(ss)
		mode, best := 0, -1
		for _, s := range ss {
			if c := strides[s]; c > best || (c == best && iabs(s) < iabs(mode)) {
				mode, best = s, c
			}
		}
		if len(strides) < 2 {
			continue // uniform direction (mesh): no closure
		}
		for _, id := range ids {
			if links[id].To-links[id].From != mode {
				p.Wraparound[links[id].ID] = true
			}
		}
	}
	return p
}

// LinkEvidence is the detector-side evidence of one link, read from its
// receiving endpoint's threat detector and the driving port's link-level
// counters.
type LinkEvidence struct {
	// Class is the detector's current verdict (Healthy when the link has no
	// detector, e.g. unmitigated baselines).
	Class detect.Classification
	// Retransmissions counts NACKed traversal attempts on the link,
	// FlitsSent the successful ones — the NACK ratio is evidence the
	// localization can use even when no detector hardware is deployed.
	Retransmissions uint64
	FlitsSent       uint64
	// Ack is the secure-ack monitor's verdict (AckHealthy when no monitor
	// runs); AckGap is the cumulative sent-minus-received count and
	// RouteViolations the non-conforming arrivals on the link. This is the
	// evidence channel for the quiet attack families — drop and misroute
	// trojans raise no NACKs and leave Class at Healthy forever.
	Ack             detect.AckClass
	AckGap          uint64
	RouteViolations uint64
}

// Weights blends the four score components. They should sum to ~1 so scores
// stay comparable across configurations.
type Weights struct {
	Detector  float64 // detector verdict + NACK ratio
	Earliness float64 // how early the link's port blocked
	Growth    float64 // saturation-tree growth direction (feeders block later)
	Prior     float64 // structural priors (fan-in, bisection, wraparound)
}

// DefaultWeights is the blend used by the experiment harness: detector
// evidence dominates when present, telemetry carries otherwise.
func DefaultWeights() Weights {
	return Weights{Detector: 0.45, Earliness: 0.2, Growth: 0.2, Prior: 0.15}
}

// TelemetryWeights zeroes the detector component: localization from
// blocked-port telemetry and structure alone, the ablation the ROADMAP item
// asks for ("from blocked-port telemetry alone").
func TelemetryWeights() Weights {
	return Weights{Detector: 0, Earliness: 0.35, Growth: 0.35, Prior: 0.3}
}

// Suspect is one entry of the ranked verdict.
type Suspect struct {
	LinkID int
	// Score is the fused suspicion in [0, 1].
	Score float64
	// Confidence is the margin to the next-ranked suspect, normalized by
	// the top score — rank-1's Confidence is the localization confidence.
	Confidence float64
	// Component scores, for explainability (each in [0, 1]).
	Det, Early, Growth, Prior float64
}

// TraceSample is one point of the localization time series: the rank-1
// verdict at a sample cycle.
type TraceSample struct {
	Cycle      uint64
	LinkID     int
	Score      float64
	Confidence float64
}

// Engine ranks suspect links for one network. It precomputes the structural
// priors and the upstream feeder sets; Rank may be called repeatedly as
// telemetry accumulates.
type Engine struct {
	links   []noc.LinkInfo
	priors  Priors
	feeders [][]int // link id -> ids of links into links[id].From (reverse link excluded)

	scratch []Suspect // reused across Rank calls
}

// New builds an engine for the given substrate.
func New(t noc.Topology, links []noc.LinkInfo) *Engine {
	e := &Engine{
		links:   append([]noc.LinkInfo(nil), links...),
		priors:  ComputePriors(t, links),
		feeders: make([][]int, len(links)),
	}
	for _, l := range links {
		for _, f := range links {
			if f.To != l.From {
				continue
			}
			if f.From == l.To && f.To == l.From {
				continue // the reverse link: its traffic cannot feed l's flows
			}
			e.feeders[l.ID] = append(e.feeders[l.ID], f.ID)
		}
	}
	return e
}

// Priors exposes the engine's structural priors.
func (e *Engine) Priors() Priors { return e.priors }

// Rank fuses the current telemetry and evidence under DefaultWeights.
// tel may be nil (no telemetry: detector evidence and priors carry); ev may
// be nil or sparse (missing links read as Healthy with zero counters).
func (e *Engine) Rank(tel *noc.LinkTelemetry, ev map[int]LinkEvidence) []Suspect {
	return e.RankWeighted(DefaultWeights(), tel, ev)
}

// classScore maps a detector verdict to suspicion.
func classScore(c detect.Classification) float64 {
	switch c {
	case detect.Trojan:
		return 1.0
	case detect.Suspect:
		return 0.85
	case detect.Permanent:
		return 0.6
	case detect.Transient:
		return 0.2
	default:
		return 0
	}
}

// ackScore maps a secure-ack verdict to suspicion.
func ackScore(c detect.AckClass) float64 {
	switch c {
	case detect.AckDropper, detect.AckMisroute:
		return 1.0
	case detect.AckSuspect:
		return 0.6
	default:
		return 0
	}
}

// RankWeighted fuses with an explicit blend. The result is sorted by
// descending score, ties broken by link id for determinism.
func (e *Engine) RankWeighted(w Weights, tel *noc.LinkTelemetry, ev map[int]LinkEvidence) []Suspect {
	n := len(e.links)
	if cap(e.scratch) < n {
		e.scratch = make([]Suspect, n) //nocvet:allowalloc amortized scratch growth; later Rank calls reuse it
	}
	out := e.scratch[:n]

	// Earliness normalization: the span of blockage-onset cycles. Onset (the
	// start of the longest contiguous blocked streak) rather than
	// FirstBlocked, so isolated pre-attack congestion blips cannot claim the
	// "blocked earliest" crown from the link whose sustained outage actually
	// roots the tree.
	var minFirst, maxFirst uint64
	if tel != nil {
		for id := 0; id < n; id++ {
			if f, ok := tel.Onset(id); ok {
				if minFirst == 0 || f < minFirst {
					minFirst = f
				}
				if f > maxFirst {
					maxFirst = f
				}
			}
		}
	}

	for id := 0; id < n; id++ {
		s := Suspect{LinkID: id}

		// Detector component: the verdict plus the NACK ratio (evidence
		// even without detector hardware).
		var evd LinkEvidence
		if ev != nil {
			evd = ev[id]
		}
		nack := 0.0
		if t := evd.Retransmissions + evd.FlitsSent; t > 0 {
			nack = float64(evd.Retransmissions) / float64(t)
		}
		s.Det = 0.5*classScore(evd.Class) + 0.5*nack

		// Secure-ack channel: the verdict plus the loss/violation fraction
		// of the link's traffic. Fused by max, not sum — the NACK channel
		// and the ack channel witness disjoint attack families, and a link
		// is as suspect as its strongest witness. On runs without a monitor
		// every term is zero and s.Det is untouched (byte-stable rankings
		// for the flip-trojan experiments).
		if evd.Ack != detect.AckHealthy || evd.AckGap > 0 || evd.RouteViolations > 0 {
			anomaly := 0.0
			if evd.FlitsSent > 0 {
				anomaly = 5 * float64(evd.AckGap+evd.RouteViolations) / float64(evd.FlitsSent)
				if anomaly > 1 {
					anomaly = 1
				}
			}
			if ackDet := 0.5*ackScore(evd.Ack) + 0.5*anomaly; ackDet > s.Det {
				s.Det = ackDet
			}
		}

		// Telemetry components.
		if tel != nil {
			if first, ok := tel.Onset(id); ok {
				if span := maxFirst - minFirst; span > 0 {
					s.Early = 1 - float64(first-minFirst)/float64(span)
				} else {
					s.Early = 1
				}
				// Growth direction: of this link's upstream feeders that
				// ever blocked, the fraction that blocked at or after it.
				// The root wedges first and drags its feeders down; a
				// victim's feeder set contains the earlier-blocked root.
				blocked, later := 0, 0
				for _, f := range e.feeders[id] {
					ff, ok := tel.Onset(f)
					if !ok {
						continue
					}
					blocked++
					if ff >= first {
						later++
					}
				}
				if blocked > 0 {
					s.Growth = float64(later) / float64(blocked)
				} else {
					s.Growth = 0.5 // no feeder evidence either way
				}
				// Weight both by how persistently blocked the link is in
				// the trailing window: a transiently-congested port that
				// recovered is not the root.
				persist := tel.RecentBlockedFrac(id)
				s.Early *= 0.5 + 0.5*persist
				s.Growth *= 0.5 + 0.5*persist
			}
		}

		// Structural prior.
		s.Prior = 0.6 * e.priors.FanIn[id]
		if e.priors.Bisection[id] {
			s.Prior += 0.25
		}
		if e.priors.Wraparound[id] {
			s.Prior += 0.15
		}

		s.Score = w.Detector*s.Det + w.Earliness*s.Early + w.Growth*s.Growth + w.Prior*s.Prior
		out[id] = s
	}

	//nocvet:allowalloc sort.Slice's closure; the ranking runs per telemetry sample, not per cycle
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].LinkID < out[j].LinkID
	})

	// Confidence: margin to the next-ranked suspect, normalized by the top
	// score.
	top := out[0].Score
	if top > 0 {
		for i := range out {
			next := 0.0
			if i+1 < len(out) {
				next = out[i+1].Score
			}
			out[i].Confidence = (out[i].Score - next) / top
		}
	}

	// Hand back a copy so the caller may retain it across Rank calls.
	res := make([]Suspect, n) //nocvet:allowalloc caller-retained result; scratch is reused underneath
	copy(res, out)
	return res
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
