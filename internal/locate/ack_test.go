package locate

import (
	"testing"

	"tasp/internal/detect"
)

// TestRankAckEvidenceDominates: a secure-ack conviction must carry the
// ranking even though the quiet trojan families leave the NACK channel (and
// the detector Class) untouched.
func TestRankAckEvidenceDominates(t *testing.T) {
	topo, links := topoLinks(t, "mesh", 4, 4)
	eng := New(topo, links)
	ev := map[int]LinkEvidence{
		7: {Ack: detect.AckDropper, AckGap: 300, FlitsSent: 1000},
	}
	ranked := eng.Rank(nil, ev)
	if ranked[0].LinkID != 7 {
		t.Fatalf("rank-1 = %d, want the ack-convicted link 7", ranked[0].LinkID)
	}
	if ranked[0].Det <= ranked[1].Det {
		t.Fatal("ack channel not discriminating in the detector component")
	}

	// Route violations (misroute evidence) carry identically.
	ev = map[int]LinkEvidence{
		11: {Ack: detect.AckMisroute, RouteViolations: 200, FlitsSent: 1000},
	}
	if ranked = eng.Rank(nil, ev); ranked[0].LinkID != 11 {
		t.Fatalf("rank-1 = %d, want the misroute-convicted link 11", ranked[0].LinkID)
	}
}

// TestRankAckFusionIsMax: on a link witnessed by both channels the detector
// component is the strongest witness, not the sum — so enabling the monitor
// can never push a fully-convicted link's Det above 1.
func TestRankAckFusionIsMax(t *testing.T) {
	topo, links := topoLinks(t, "mesh", 4, 4)
	eng := New(topo, links)
	ev := map[int]LinkEvidence{
		5: {
			Class: detect.Trojan, Retransmissions: 900, FlitsSent: 100,
			Ack: detect.AckDropper, AckGap: 90,
		},
	}
	ranked := eng.Rank(nil, ev)
	if ranked[0].LinkID != 5 {
		t.Fatalf("rank-1 = %d, want 5", ranked[0].LinkID)
	}
	if ranked[0].Det > 1.0 {
		t.Fatalf("Det = %f, want <= 1 (max fusion, not additive)", ranked[0].Det)
	}
}

// TestRankZeroAckEvidenceIsByteStable: evidence whose ack channel is all
// zero values must rank exactly as evidence without the fields — the guard
// that keeps flip-trojan experiment output (and the golden file) untouched
// by the secure-ack extension.
func TestRankZeroAckEvidenceIsByteStable(t *testing.T) {
	topo, links := topoLinks(t, "torus", 4, 4)
	eng := New(topo, links)
	ev := map[int]LinkEvidence{
		3: {Class: detect.Suspect, Retransmissions: 400, FlitsSent: 600},
		9: {Retransmissions: 50, FlitsSent: 950},
	}
	withAckZero := map[int]LinkEvidence{
		3: {Class: detect.Suspect, Retransmissions: 400, FlitsSent: 600,
			Ack: detect.AckHealthy, AckGap: 0, RouteViolations: 0},
		9: {Retransmissions: 50, FlitsSent: 950, Ack: detect.AckHealthy},
	}
	a := eng.Rank(nil, ev)
	b := eng.Rank(nil, withAckZero)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
