package locate

import (
	"testing"

	"tasp/internal/detect"
	"tasp/internal/flit"
	"tasp/internal/noc"
)

func topoLinks(t *testing.T, name string, w, h int) (noc.Topology, []noc.LinkInfo) {
	t.Helper()
	cfg := noc.DefaultConfig()
	cfg.Topo, cfg.Width, cfg.Height = name, w, h
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n.Topology(), n.Links()
}

func TestPriorsMeshHasNoWraparound(t *testing.T) {
	topo, links := topoLinks(t, "mesh", 4, 4)
	p := ComputePriors(topo, links)
	for id, wrap := range p.Wraparound {
		if wrap {
			t.Fatalf("mesh link %d (%s) flagged wraparound", id, links[id])
		}
	}
	// XY routing concentrates center-column vertical traffic: the max
	// fan-in link must score 1 and every link in (0, 1].
	sawMax := false
	for id, f := range p.FanIn {
		if f < 0 || f > 1 {
			t.Fatalf("fan-in out of range: link %d = %f", id, f)
		}
		if f == 1 {
			sawMax = true
		}
	}
	if !sawMax {
		t.Fatal("no link with normalized fan-in 1")
	}
}

func TestPriorsTorusWraparound(t *testing.T) {
	topo, links := topoLinks(t, "torus", 4, 4)
	p := ComputePriors(topo, links)
	// The torus adds 8 wraparound pairs after the 48 mesh links: 4 east-west
	// row pairs + 4 north-south column pairs = 16 directed links.
	var wraps []int
	for id, w := range p.Wraparound {
		if w {
			wraps = append(wraps, id)
		}
	}
	if len(wraps) != 16 {
		t.Fatalf("torus wraparound links: got %d (%v), want 16", len(wraps), wraps)
	}
	for _, id := range wraps {
		if id < 48 {
			t.Fatalf("mesh-portion link %d flagged wraparound", id)
		}
	}
}

func TestPriorsRingWraparoundAndBisection(t *testing.T) {
	topo, links := topoLinks(t, "ring", 4, 4) // 16-router ring
	p := ComputePriors(topo, links)
	var wraps []int
	for id, w := range p.Wraparound {
		if w {
			wraps = append(wraps, id)
		}
	}
	// Exactly the modulo closure pair: cw 15->0 and ccw 0->15.
	if len(wraps) != 2 {
		t.Fatalf("ring wraparound links: got %v, want the 15<->0 pair", wraps)
	}
	for _, id := range wraps {
		l := links[id]
		if !(l.From == 15 && l.To == 0) && !(l.From == 0 && l.To == 15) {
			t.Fatalf("wrong wraparound link: %s", l)
		}
	}
	// Bisection (ids < 8 vs >= 8): the 7<->8 pair and the 15<->0 pair.
	var cuts []int
	for id, b := range p.Bisection {
		if b {
			cuts = append(cuts, id)
		}
	}
	if len(cuts) != 4 {
		t.Fatalf("ring bisection links: got %d (%v), want 4", len(cuts), cuts)
	}
}

// TestRankWedgedLinkTelemetryOnly wedges one link of a real mesh with a
// NACK-only wire and checks the engine localizes it from blocked-port
// telemetry and priors alone — no detector evidence at all.
func TestRankWedgedLinkTelemetryOnly(t *testing.T) {
	cfg := noc.DefaultConfig()
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var target noc.LinkInfo
	for _, l := range n.Links() {
		if l.From == 1 && l.FromPort == noc.PortWest { // 1 -> 0: dest-0 ingress
			target = l
			break
		}
	}
	n.SetWire(target.ID, nackWire{})
	tel := n.EnableTelemetry(0)
	for i := 0; i < 1200; i++ {
		if i%3 == 0 {
			// Saturate flows that cross the wedged link: east-side routers
			// sending to router 0.
			src := []int{4, 8, 12, 20, 24}[i/3%5] // cores on routers 1, 2, 3, 5, 6
			p := &flit.Packet{Hdr: flit.Header{DstR: 0, VC: uint8(i % 4), Mem: 0x1000}}
			p.Body = []uint64{1, 2, 3}
			n.Inject(src, p)
		}
		n.Step()
		if i%25 == 24 {
			tel.Sample()
		}
	}
	eng := New(n.Topology(), n.Links())
	ranked := eng.RankWeighted(TelemetryWeights(), tel, nil)
	if ranked[0].LinkID != target.ID {
		t.Fatalf("telemetry-only rank-1 = link %d (%s), want wedged link %d (%s); top scores: %+v",
			ranked[0].LinkID, n.Links()[ranked[0].LinkID], target.ID, target, ranked[:3])
	}
	if ranked[0].Confidence <= 0 {
		t.Fatalf("rank-1 confidence %f, want positive margin", ranked[0].Confidence)
	}
}

// nackWire refuses every transmission.
type nackWire struct{}

func (nackWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, noc.TxResult) {
	return f, noc.TxResult{OK: false}
}

func TestRankDetectorEvidenceDominates(t *testing.T) {
	topo, links := topoLinks(t, "mesh", 4, 4)
	eng := New(topo, links)
	ev := map[int]LinkEvidence{
		7: {Class: detect.Trojan, Retransmissions: 900, FlitsSent: 100},
	}
	ranked := eng.Rank(nil, ev)
	if ranked[0].LinkID != 7 {
		t.Fatalf("rank-1 = %d, want the trojan-classified link 7", ranked[0].LinkID)
	}
	if ranked[0].Det <= ranked[1].Det {
		t.Fatal("detector component not discriminating")
	}
}

func TestRankIsDeterministic(t *testing.T) {
	topo, links := topoLinks(t, "torus", 4, 4)
	eng := New(topo, links)
	a := eng.Rank(nil, nil)
	b := eng.Rank(nil, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// With no evidence at all the ordering is the structural prior alone,
	// ties by id — still a total, stable order.
	for i := 1; i < len(a); i++ {
		if a[i-1].Score < a[i].Score {
			t.Fatal("ranking not sorted")
		}
	}
}
