package noc

import (
	"testing"

	"tasp/internal/flit"
)

// healableNackWire NACKs every transmission until healed, then behaves like
// a perfect link. It models a fault source that stops (e.g. a trojan whose
// kill switch flips off) after MaxAttempts has already abandoned traffic.
type healableNackWire struct{ healed bool }

func (w *healableNackWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, TxResult) {
	if !w.healed {
		return f, TxResult{OK: false}
	}
	return f, TxResult{OK: true}
}

// TestTailDropReleasesVCOwnership is the regression test for the MaxAttempts
// drop path: abandoning a tail flit must release op.vcOwner[vc] (else the VC
// leaks forever and no later packet can ever allocate it) and must be counted
// in Counters.DroppedFlits.
func TestTailDropReleasesVCOwnership(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxAttempts = 2
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 0 && l.FromPort == PortEast {
			target = l
			break
		}
	}
	w := &healableNackWire{}
	n.SetWire(target.ID, w)

	// A single-flit packet is head and tail at once: when the wire NACKs it
	// to abandonment, the drop retires the whole packet.
	if !n.Inject(0, pkt(1, 0, 0, 0)) {
		t.Fatal("inject failed")
	}
	n.Run(200)
	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("packet delivered through nack wire")
	}
	if got := n.Counters.DroppedFlits; got != 1 {
		t.Fatalf("DroppedFlits = %d after a MaxAttempts tail abandon, want 1", got)
	}
	op := n.LinkOutput(target.ID)
	for v, owner := range op.vcOwner {
		if owner != 0 {
			t.Fatalf("vc%d still owned by packet %d after its tail was dropped", v, owner-1)
		}
	}

	// The leaked VC was the one the dropped packet held; with the wire healed
	// a second packet on the same VC must re-allocate it and deliver.
	w.healed = true
	if !n.Inject(0, pkt(1, 0, 0, 0)) {
		t.Fatal("second inject failed")
	}
	n.Run(200)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatalf("delivered %d packets after the wire healed, want 1 (VC never re-allocatable?)",
			n.Counters.DeliveredPackets)
	}
	if got := n.Counters.DroppedFlits; got != 1 {
		t.Fatalf("DroppedFlits = %d after recovery, want still 1", got)
	}
}
