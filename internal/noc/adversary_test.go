package noc

import (
	"testing"

	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/tasp"
	"tasp/internal/xrand"
)

// linkBetween finds the directional link From -> To.
func linkBetween(t *testing.T, n *Network, from, to int) LinkInfo {
	t.Helper()
	for _, l := range n.Links() {
		if l.From == from && l.To == to {
			return l
		}
	}
	t.Fatalf("no link %d -> %d", from, to)
	return LinkInfo{}
}

// coreAt finds a core attached to the given router.
func coreAt(t *testing.T, cfg Config, router int) int {
	t.Helper()
	for c := 0; c < cfg.Cores(); c++ {
		if cfg.CoreRouter(c) == router {
			return c
		}
	}
	t.Fatalf("no core at router %d", router)
	return -1
}

// TestDropperSwallowRetiresPacket is the swallow-path contract: a dropped
// head must retire its retransmission entry (credit and VC ownership
// returned), count as an in-flight drop, leave a FlitsSent/FlitsRecv gap on
// the infected link, and orphan the beheaded body downstream — all without
// tripping the invariant auditor or wedging the link for later packets.
func TestDropperSwallowRetiresPacket(t *testing.T) {
	n := mkNet(t)
	target := linkBetween(t, n, 1, 0) // XY path of router-1 -> router-0 traffic
	d := tasp.NewDropper(tasp.ForDest(0), n.Layout())
	d.SetKillSwitch(true)
	w := NewPlainWire()
	w.Tap = d
	n.SetWire(target.ID, w)

	if !n.Inject(coreAt(t, n.cfg, 1), pkt(0, 0, 0, 3)) {
		t.Fatal("inject failed")
	}
	n.Run(300)

	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("beheaded packet was delivered")
	}
	if matches, drops := d.Stats(); matches != 1 || drops != 1 {
		t.Fatalf("dropper stats = %d/%d, want 1/1", matches, drops)
	}
	if w.Swallowed != 1 {
		t.Fatalf("wire Swallowed = %d, want 1", w.Swallowed)
	}
	if n.Counters.DroppedInFlight != 1 {
		t.Fatalf("DroppedInFlight = %d, want 1 (the swallowed head)", n.Counters.DroppedInFlight)
	}
	if n.Counters.DroppedOrphan == 0 {
		t.Fatal("beheaded body flits were not orphan-dropped downstream")
	}
	if got, want := n.Counters.DroppedFlits, n.Counters.DroppedInFlight+n.Counters.DroppedOrphan; got != want {
		t.Fatalf("DroppedFlits = %d, want %d (in-flight + orphan)", got, want)
	}
	op := n.LinkOutput(target.ID)
	if gap := op.FlitsSent - op.FlitsRecv; gap != 1 {
		t.Fatalf("secure-ack gap = %d, want 1", gap)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// With the kill switch off the same path must carry traffic again: the
	// swallow returned the SA-reserved credit and released the VC.
	d.SetKillSwitch(false)
	if !n.Inject(coreAt(t, n.cfg, 1), pkt(0, 0, 0, 3)) {
		t.Fatal("second inject failed")
	}
	n.Run(300)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatalf("delivered %d packets after disarm, want 1 (link wedged?)", n.Counters.DeliveredPackets)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMisrouterRewritesDestination checks the misroute strike end to end:
// the rewritten header decodes clean, the packet lands at the hijack router,
// and the receiving router's route-conformance check books the violation.
func TestMisrouterRewritesDestination(t *testing.T) {
	n := mkNet(t)
	target := linkBetween(t, n, 2, 1) // XY path of router-2 -> router-0 traffic
	m := tasp.NewMisrouter(tasp.ForDest(0), 15, n.Layout())
	m.SetKillSwitch(true)
	w := NewPlainWire()
	w.Tap = m
	n.SetWire(target.ID, w)

	var deliveredDst []uint8
	n.SetDelivered(func(d Delivery) { deliveredDst = append(deliveredDst, d.Hdr.DstR) })

	if !n.Inject(coreAt(t, n.cfg, 2), pkt(0, 0, 0, 3)) {
		t.Fatal("inject failed")
	}
	n.Run(400)

	if matches, rewrites := m.Stats(); matches != 1 || rewrites != 1 {
		t.Fatalf("misrouter stats = %d/%d, want 1/1", matches, rewrites)
	}
	if n.Counters.DeliveredPackets != 1 {
		t.Fatalf("delivered %d packets, want 1 (hijacked delivery)", n.Counters.DeliveredPackets)
	}
	if len(deliveredDst) != 1 || deliveredDst[0] != 15 {
		t.Fatalf("delivered destinations = %v, want [15]", deliveredDst)
	}
	if n.Counters.DroppedFlits != 0 {
		t.Fatalf("DroppedFlits = %d, want 0 (misroute loses nothing)", n.Counters.DroppedFlits)
	}
	if op := n.LinkOutput(target.ID); op.RouteViolations == 0 {
		t.Fatal("route-conformance check missed the rewritten arrival")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsUnderTrojanSoak audits the event-driven core on every
// topology with drop and misroute trojans armed under random traffic — the
// swallow path exercises retirement, credit return and orphan cleanup
// against the full invariant sweep.
func TestInvariantsUnderTrojanSoak(t *testing.T) {
	topos := []struct {
		name string
		mut  func(*Config)
	}{
		{"mesh", func(c *Config) {}},
		{"torus", func(c *Config) { c.Topo = "torus" }},
		{"ring", func(c *Config) { c.Topo = "ring"; c.Width, c.Height = 8, 1 }},
	}
	for _, tc := range topos {
		for _, kind := range []tasp.Kind{tasp.KindDrop, tasp.KindMisroute} {
			t.Run(tc.name+"/"+kind.String(), func(t *testing.T) {
				cfg := DefaultConfig()
				tc.mut(&cfg)
				n, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				routers := cfg.Width * cfg.Height
				var trojans []tasp.Trojan
				for _, l := range n.Links()[:2] {
					var tr tasp.Trojan
					if kind == tasp.KindDrop {
						tr = tasp.NewDropper(tasp.ForDest(0), n.Layout())
					} else {
						tr = tasp.NewMisrouter(tasp.ForDest(0), uint8(routers-1), n.Layout())
					}
					tr.SetKillSwitch(true)
					w := NewPlainWire()
					w.Tap = tr
					n.SetWire(l.ID, w)
					trojans = append(trojans, tr)
				}
				// A background transient source on one more link keeps the
				// retransmission machinery live alongside the trojans.
				third := n.Links()[2]
				tw := NewPlainWire()
				tw.Tap = fault.NewTransient(1e-4, uint64(third.ID)+11)
				n.SetWire(third.ID, tw)

				rng := xrand.New(23)
				cores := cfg.Cores()
				for c := 0; c < 1500; c++ {
					for core := 0; core < cores; core++ {
						if !rng.Bool(0.05) {
							continue
						}
						dst := rng.Intn(routers)
						if dst == cfg.CoreRouter(core) {
							continue
						}
						n.Inject(core, &flit.Packet{
							Hdr:  flit.Header{VC: uint8(rng.Intn(cfg.VCs)), DstR: uint8(dst), Mem: uint32(rng.Uint64())},
							Body: make([]uint64, rng.Intn(5)),
						})
					}
					n.Step()
					if c%10 == 0 {
						if err := n.CheckInvariants(); err != nil {
							t.Fatalf("cycle %d: %v", c, err)
						}
					}
				}
				struck := uint64(0)
				for _, tr := range trojans {
					_, s := tr.Stats()
					struck += s
				}
				if struck == 0 {
					t.Fatal("soak never exercised a trojan strike")
				}
				if n.Counters.DeliveredPackets == 0 {
					t.Fatal("soak delivered nothing")
				}
				if err := n.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
