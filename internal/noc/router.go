package noc

import (
	"math/bits"

	"tasp/internal/flit"
)

// bufFlit is a buffered flit plus the cycle from which it may compete for
// switch allocation (models pipeline latency and obfuscation-undo stalls).
type bufFlit struct {
	f       flit.Flit
	readyAt uint64
}

// inputVC is one virtual-channel FIFO of an input port, plus the wormhole
// state of the packet currently at its front: the computed route (RC) and
// whether the downstream VC has been allocated (VA). Both persist from the
// head flit until the tail is popped.
//
// The FIFO uses head-index ring semantics over a single backing array:
// pop advances head instead of re-slicing (which would retain popped flits
// and force the next push to reallocate), and push compacts the live tail
// down to index 0 when the array is exhausted. Steady state is
// allocation-free once the buffer has grown to BufDepth.
type inputVC struct {
	buf       []bufFlit
	head      int // index of the front flit within buf
	routed    bool
	route     int
	allocated bool
	// outVC is the downstream virtual channel VA allocated for the packet
	// at the front. It equals the input VC index except on dateline links
	// of wraparound topologies, where the VC class remap moves the packet
	// between VC halves (see outputPort.vcClass). Valid while allocated.
	outVC uint8
}

func (v *inputVC) size() int { return len(v.buf) - v.head }

func (v *inputVC) empty() bool { return len(v.buf) == v.head }

func (v *inputVC) front() *bufFlit {
	if v.empty() {
		return nil
	}
	return &v.buf[v.head]
}

func (v *inputVC) pop() flit.Flit {
	f := v.buf[v.head].f
	v.head++
	if v.head == len(v.buf) {
		// Drained: rewind to the start of the backing array for free.
		v.buf = v.buf[:0]
		v.head = 0
	}
	return f
}

func (v *inputVC) push(bf bufFlit) {
	if v.head > 0 && len(v.buf) == cap(v.buf) {
		// Compact the live region down to index 0; occupancy is bounded by
		// BufDepth (credits), so the array never needs to grow past it.
		n := copy(v.buf, v.buf[v.head:])
		v.buf = v.buf[:n]
		v.head = 0
	}
	//nocvet:allowalloc bounded: occupancy is credit-limited to BufDepth and the array is pre-sized to it, so this append grows only while warming up
	v.buf = append(v.buf, bf)
}

// clear empties the FIFO and returns how many flits it dropped.
func (v *inputVC) clear() int {
	n := v.size()
	v.buf = v.buf[:0]
	v.head = 0
	return n
}

// retransEntry is a flit parked in an output retransmission buffer, awaiting
// link traversal and its switch-to-switch ACK.
type retransEntry struct {
	f          flit.Flit
	vc         uint8
	attempts   int    // prior failed traversals of this flit
	nextTry    uint64 // earliest cycle the next attempt may happen
	enqueuedAt uint64 // cycle the flit entered this buffer (ST)
}

// outputPort owns the retransmission buffer behind one crossbar output, the
// credit and VC-ownership state of the downstream input port, and the wire.
type outputPort struct {
	router int
	port   int
	linkID int // index into Network.links; -1 for the local ejection port

	entries  []retransEntry
	vcOwner  []uint64 // downstream input VC -> owning packet id + 1 (0 = free)
	credits  []int    // downstream input VC -> free buffer slots
	wire     Wire
	disabled bool

	// vcClass, when non-nil, is the dateline VC-class table of the link
	// this port drives: vcClass[dst] is the class (0 or 1) a packet
	// destined for dst must occupy in the downstream buffer. VA maps the
	// packet's VC lane into that class's half of the VC space. Nil on
	// topologies without wraparound (the mesh) and on ejection ports.
	vcClass []uint8

	ejection bool // local port: delivers to the NI, no credits

	saPtr int // round-robin pointer for switch allocation
	vaPtr int // round-robin pointer for VC allocation

	// lastProgress is the last cycle this port delivered a flit or had an
	// empty retransmission buffer; the stall detector in Occupancy uses it
	// to tell deadlock from transient congestion.
	lastProgress uint64

	// FlitsSent counts successful traversals (Figure 1(c) link loads). A
	// forged ACK counts here too — the sender cannot tell it from a real one.
	FlitsSent uint64
	// FlitsRecv counts flits actually deposited at the receiving end of the
	// link. On a healthy link FlitsSent == FlitsRecv at all times; a growing
	// gap is the secure-ack signature of an in-flight swallow.
	FlitsRecv uint64
	// Retransmissions counts NACKed attempts on this link.
	Retransmissions uint64
	// RouteViolations counts head flits that arrived carrying a destination
	// the default route table would never have sent through this link — the
	// receiver-side signature of an in-flight header rewrite.
	RouteViolations uint64
}

func (op *outputPort) full(depth int) bool { return len(op.entries) >= depth }

// hasSpace checks admission into the retransmission storage for a flit of
// the given VC under the configured scheme: one shared post-crossbar buffer
// (default, the paper's worst case), half-split (TDM non-interference), or
// per-VC buffers (Figure 5's second scheme).
func (op *outputPort) hasSpace(cfg Config, vc int) bool {
	switch {
	case cfg.RetransPerVC:
		used := 0
		for _, e := range op.entries {
			if int(e.vc) == vc {
				used++
			}
		}
		return used < cfg.RetransDepth
	case cfg.PartitionRetrans:
		quota := cfg.RetransDepth / 2
		if quota < 1 {
			quota = 1
		}
		half := cfg.VCs / 2
		used := 0
		for _, e := range op.entries {
			if (int(e.vc) < half) == (vc < half) {
				used++
			}
		}
		return used < quota
	default:
		return len(op.entries) < cfg.RetransDepth
	}
}

// retransCap returns the total entries an output port may hold.
func retransCap(cfg Config) int {
	if cfg.RetransPerVC {
		return cfg.RetransDepth * cfg.VCs
	}
	return cfg.RetransDepth
}

// Router is one router of the configured topology: numPorts input ports of
// VCs and numPorts output ports, with port 0 always the local port.
type Router struct {
	id       int
	numPorts int
	inputs   [][]inputVC
	outputs  []*outputPort
	// ups[p] is the upstream output port feeding input port p (nil for the
	// local injection port); credits return there when a slot frees.
	ups []*outputPort

	// inFlits and parked count the flits currently buffered in this
	// router's input VCs and output retransmission buffers. When both are
	// zero every pipeline phase is a no-op, and Step skips the router
	// entirely (the active-router skip: idle routers cost ~nothing).
	inFlits int
	parked  int

	// occ is the input-occupancy mask: bit p*vcs+v is set iff input VC
	// (p, v) holds at least one flit. MaxPorts*MaxVCs = 64, so one word
	// always suffices; the arbitration scans walk set bits instead of
	// probing every VC.
	occ uint64
	vcs int

	// routedTo[o] masks the input VCs whose resident packet is routed to
	// output o (bit p*vcs+v, set while inputVC.routed with route == o).
	// SA scans routedTo[o]&occ — only VCs with flits bound for this exact
	// output — and hasWorkFor(o) is a single AND.
	routedTo [MaxPorts]uint64
	// reqVA masks the input VCs whose front flit is a routed, unallocated
	// head — precisely the VCs phaseVA can grant. Set when RC routes a
	// head, cleared when VA allocates it (or the route is invalidated).
	reqVA uint64

	// sched is the network's event-driven scheduler; the gain/lose
	// helpers (sched.go) keep its active sets in lockstep with inFlits
	// and parked. Set by Network.New right after construction.
	sched *scheduler
}

// occBit is the occupancy-mask bit index of input VC (port, vc).
func (r *Router) occBit(port, vc int) uint { return uint(port*r.vcs + vc) }

func newRouter(id int, cfg Config, ports int) *Router {
	r := &Router{
		id:       id,
		numPorts: ports,
		inputs:   make([][]inputVC, ports),
		outputs:  make([]*outputPort, ports),
		ups:      make([]*outputPort, ports),
		vcs:      cfg.VCs,
	}
	// One contiguous block per router for the output ports (and one for
	// the input VCs, via the [][]inputVC backing): the LT phase walks all
	// ports of every active router each cycle, and on big substrates the
	// pointer-per-port layout was a cache miss per port.
	ops := make([]outputPort, ports)
	ivcs := make([]inputVC, ports*cfg.VCs)
	for p := 0; p < ports; p++ {
		r.inputs[p] = ivcs[p*cfg.VCs : (p+1)*cfg.VCs : (p+1)*cfg.VCs]
		for v := range r.inputs[p] {
			r.inputs[p][v].buf = make([]bufFlit, 0, cfg.BufDepth)
		}
		op := &ops[p]
		op.router = id
		op.port = p
		op.linkID = -1
		op.entries = make([]retransEntry, 0, retransCap(cfg))
		op.vcOwner = make([]uint64, cfg.VCs)
		op.credits = make([]int, cfg.VCs)
		for v := range op.credits {
			op.credits[v] = cfg.BufDepth
		}
		r.outputs[p] = op
	}
	lp := r.outputs[PortLocal]
	lp.ejection = true
	lp.wire = perfectWire{}
	return r
}

// idle reports whether the router holds no work at all.
func (r *Router) idle() bool { return r.inFlits == 0 && r.parked == 0 }

// reset empties every buffer and restores the router's post-newRouter
// state without allocating: input VCs and their wormhole state, output
// retransmission buffers, credits, VC ownership, arbitration pointers,
// per-port counters and the disabled flags. The scheduler-facing masks and
// counters are cleared through resetActivity (sched.go). Wires are owned by
// the network and restored by Network.Reset.
func (r *Router) reset(cfg Config) {
	for p := 0; p < r.numPorts; p++ {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			ivc.buf = ivc.buf[:0]
			ivc.head = 0
			ivc.routed, ivc.allocated = false, false
			ivc.route = 0
			ivc.outVC = 0
		}
		op := r.outputs[p]
		op.entries = op.entries[:0]
		for v := range op.vcOwner {
			op.vcOwner[v] = 0
			op.credits[v] = cfg.BufDepth
		}
		op.disabled = false
		op.saPtr, op.vaPtr = 0, 0
		op.lastProgress = 0
		op.FlitsSent, op.FlitsRecv = 0, 0
		op.Retransmissions, op.RouteViolations = 0, 0
	}
	r.resetActivity()
}

// wake refreshes the stall clocks of a router that is receiving its first
// flit after an idle stretch. While a router is idle, Step skips it — so
// the per-port lastProgress updates phaseLT would have performed each idle
// cycle are applied in one batch here, keeping the Occupancy stall detector
// oblivious to the skip.
func (r *Router) wake(cycle uint64) {
	if !r.idle() {
		return
	}
	for p := 0; p < r.numPorts; p++ {
		r.outputs[p].lastProgress = cycle
	}
}

// deposit pushes a flit into an input VC, waking the router if it was idle.
func (r *Router) deposit(port, vc int, bf bufFlit, cycle uint64) {
	r.wake(cycle)
	r.inputs[port][vc].push(bf)
	r.markOccupied(r.occBit(port, vc))
	r.gainIn(1)
}

// hasWorkFor reports whether any input VC holds a flit destined for the
// given output port — used by the stall detector to distinguish an idle
// port from a starved one.
func (r *Router) hasWorkFor(port int) bool {
	return r.routedTo[port]&r.occ != 0
}

// phaseRC computes routes for head flits that reached the front of their VC
// buffer (the BW/RC pipeline stage). It also retires debris left by link
// disabling or in-flight head swallowing: heads whose computed route now
// points at a dead port are re-routed, and orphaned body/tail flits of
// truncated packets are dropped.
func (r *Router) phaseRC(route RouteFunc, l flit.Layout, cycle uint64, cnt *Counters) {
	// Walk only the occupied input VCs, in the same ascending (port, vc)
	// order as the full sweep (bit index == p*vcs+v is monotone in it).
	for m := r.occ; m != 0; m &= m - 1 {
		idx := bits.TrailingZeros64(m)
		p, v := idx/r.vcs, idx%r.vcs
		ivc := &r.inputs[p][v]
		for {
			f := ivc.front()
			if f == nil || f.readyAt > cycle {
				// Not yet visible to the pipeline: an obfuscated flit
				// is opaque until L-Ob has undone it (the 1-2 cycle
				// penalty of Figure 7), so route computation waits.
				break
			}
			if !f.f.IsHead() && !ivc.routed {
				// Orphan: its head was dropped with a disabled link or
				// swallowed in flight by a drop trojan.
				ivc.pop()
				r.loseIn(1)
				cnt.DroppedFlits++
				cnt.DroppedOrphan++
				if up := r.ups[p]; up != nil {
					up.credits[v]++ // freed slot
				}
				continue
			}
			if f.f.IsHead() && ivc.routed && !ivc.allocated &&
				r.outputs[ivc.route].disabled {
				ivc.routed = false // stale route to a dead port
				r.unrouteInput(ivc.route, uint(idx))
			}
			if f.f.IsHead() && !ivc.routed {
				ivc.route = route(r.id, int(f.f.Header(l).DstR))
				ivc.routed = true
				r.routeInput(ivc.route, uint(idx))
			}
			break
		}
		if ivc.empty() {
			r.clearOccupied(uint(idx)) // drained by the orphan drop
		}
	}
}

// phaseVA allocates the downstream virtual channel to routed head flits.
// VCs are static along the path (the header's VC field, which is also what
// the TASP trojan snoops), so allocation normally means acquiring ownership
// of the same-numbered VC at the chosen output; on dateline links of
// wraparound topologies the packet's lane is remapped into the VC class the
// dateline scheme demands (outVCFor). Round-robin across input ports
// resolves contention.
func (r *Router) phaseVA(cfg Config, l flit.Layout) {
	for o := 0; o < r.numPorts; o++ {
		op := r.outputs[o]
		n := r.numPorts * cfg.VCs
		// Round-robin over the VCs requesting this output — routed,
		// unallocated heads bound for o — scanning from vaPtr up, then
		// wrapping to the bits below it: bit order equals the (vaPtr+k)%n
		// probe order of a full sweep over the VCs that could be granted.
		req := r.reqVA & r.routedTo[o]
		ptr := op.vaPtr % n
		m, base := req>>uint(ptr), ptr
		for pass := 0; pass < 2; pass, m, base = pass+1, req&(uint64(1)<<uint(ptr)-1), 0 {
			for ; m != 0; m &= m - 1 {
				idx := base + bits.TrailingZeros64(m)
				p, v := idx/cfg.VCs, idx%cfg.VCs
				ivc := &r.inputs[p][v]
				f := ivc.front()
				ov := op.outVCFor(cfg, v, int(f.f.Header(l).DstR))
				if op.vcOwner[ov] != 0 {
					continue // downstream VC held by another packet
				}
				op.vcOwner[ov] = f.f.PacketID + 1
				ivc.allocated = true
				ivc.outVC = uint8(ov)
				r.grantVA(uint(idx))
				op.vaPtr = idx + 1
				pass = 2 // one VC allocation per output per cycle
				break
			}
		}
	}
}

// outVCFor maps an input VC index to the downstream VC the packet must
// occupy: the identity except on links with a dateline VC-class table,
// where the packet keeps its lane within a class half but moves between
// halves as the class changes.
func (op *outputPort) outVCFor(cfg Config, v, dst int) int {
	if op.vcClass == nil {
		return v
	}
	half := cfg.VCs / 2
	return v%half + int(op.vcClass[dst])*half
}

// phaseSAST performs switch allocation and switch traversal: one winning
// flit per output port (and at most one per input port) moves through the
// crossbar into the output retransmission buffer. Freed input slots return
// a credit upstream.
func (r *Router) phaseSAST(cfg Config, cycle uint64) {
	var inputUsed [MaxPorts]bool
	for o := 0; o < r.numPorts; o++ {
		op := r.outputs[o]
		if op.full(retransCap(cfg)) || op.disabled {
			continue
		}
		n := r.numPorts * cfg.VCs
		// Round-robin over the occupied input VCs routed to this output
		// (same two-segment mask walk as phaseVA); grants from earlier
		// output ports have already cleared the bits of drained VCs.
		req := r.routedTo[o] & r.occ
		ptr := op.saPtr % n
		m, base := req>>uint(ptr), ptr
		for pass := 0; pass < 2; pass, m, base = pass+1, req&(uint64(1)<<uint(ptr)-1), 0 {
			for ; m != 0; m &= m - 1 {
				idx := base + bits.TrailingZeros64(m)
				p, v := idx/cfg.VCs, idx%cfg.VCs
				if inputUsed[p] {
					continue
				}
				ivc := &r.inputs[p][v]
				f := ivc.front()
				if f.readyAt > cycle {
					continue
				}
				if f.f.IsHead() && !ivc.allocated {
					continue
				}
				// Downstream-facing state (credits, retransmission slots,
				// parked entries) lives in the VA-allocated output VC, which
				// differs from the input VC index only across dateline links.
				ov := int(ivc.outVC)
				if !op.hasSpace(cfg, ov) {
					continue
				}
				// The downstream buffer slot is reserved here, at switch
				// allocation: a flit never enters the retransmission buffer
				// without a credit. This keeps the shared post-crossbar
				// buffer free of credit-starved entries, which would
				// otherwise create cross-VC dependency cycles and deadlock
				// the healthy network.
				if !op.ejection && op.credits[ov] <= 0 {
					continue
				}
				// Grant: traverse the crossbar into the retransmission buffer.
				fl := ivc.pop()
				r.loseIn(1)
				if ivc.empty() {
					r.clearOccupied(uint(idx))
				}
				if !op.ejection {
					op.credits[ov]--
				}
				inputUsed[p] = true
				op.saPtr = idx + 1
				//nocvet:allowalloc bounded: entries is pre-sized to retransCap at construction and hasSpace admits at most that many
				op.entries = append(op.entries, retransEntry{
					f: fl, vc: uint8(ov), enqueuedAt: cycle,
				})
				r.gainParked(1)
				if fl.IsTail() {
					ivc.routed = false
					ivc.allocated = false
					r.retireRouted(o, uint(idx))
				}
				if up := r.ups[p]; up != nil {
					up.credits[v]++
				}
				pass = 2 // one grant per output port per cycle
				break
			}
		}
	}
}
