package noc

// Reconfiguration-time dateline reclassification.
//
// The per-link VC-class tables built at New assume the topology's minimal
// routes: class 0 while the minimal path ahead still crosses the
// dimension's wraparound dateline, class 1 once it never will again. A
// reconfigured routing table voids that assumption — a ring packet sent
// the long way around a fault crosses the dateline where the minimal
// route never would, lands in the wrong class half, and the dependency
// cycle the dateline was cut to prevent closes again (observed as a
// whole-network wormhole deadlock on the ring with three adjacent edges
// disabled). ReclassifyVCs repairs the tables by walking the routes that
// are actually installed.

// ringOf identifies the unidirectional wraparound ring a directed
// neighbour link (from -> to) belongs to, and reports whether the link is
// that ring's dateline wraparound. ok is false on topologies without
// wraparound rings (mesh) and for non-neighbour pairs.
func ringOf(topo Topology, from, to int) (id int, wrap, ok bool) {
	switch t := topo.(type) {
	case Ring:
		if to == (from+1)%t.N {
			return 0, from == t.N-1, true // clockwise ring
		}
		if to == (from+t.N-1)%t.N {
			return 1, from == 0, true // counter-clockwise ring
		}
	case Torus:
		fx, fy := from%t.W, from/t.W
		tx, ty := to%t.W, to/t.W
		switch {
		case fy == ty && (tx-fx+t.W)%t.W == 1:
			return fy, fx == t.W-1, true // +x ring of row fy
		case fy == ty && (fx-tx+t.W)%t.W == 1:
			return t.H + fy, fx == 0, true // -x ring of row fy
		case fx == tx && (ty-fy+t.H)%t.H == 1:
			return 2*t.H + fx, fy == t.H-1, true // +y ring of column fx
		case fx == tx && (fy-ty+t.H)%t.H == 1:
			return 2*t.H + t.W + fx, fy == 0, true // -y ring of column fx
		}
	}
	return 0, false, false
}

// ReclassifyVCs rebuilds every wraparound link's dateline VC-class table
// from the routing function currently installed. For a destination whose
// installed paths cross a ring's dateline, the canonical rule applies,
// evaluated on the real routes instead of the minimal ones: class 0
// while the path ahead still crosses, class 1 at the wraparound and ever
// after — non-decreasing along every path and never class 0 across the
// wrap, which is exactly what the dateline acyclicity proof needs, no
// matter how far off-minimal the detours run. For a destination whose
// installed paths never cross the ring's dateline the class is
// unconstrained (its dependencies cannot wrap), so those destinations
// are spread across both halves by parity — collapsing them all into one
// class would idle half the VC capacity, which costs little on a quiet
// network but collapses under the retransmission pressure of a
// still-active trojan. Packets already holding a VC keep the class they
// were granted; reconfiguration callers purge the wormholes the route
// change cuts (see reclaim.go), which bounds the mixed-class transient.
// Only the recovery path (reroute.ApplySafe) calls this; the paper's
// pinned baselines keep the constructor's minimal-route tables. Reset
// restores those tables, preserving arena reuse equivalence.
func (n *Network) ReclassifyVCs() {
	R := len(n.routers)
	maxRing := -1
	for i := range n.links {
		l := &n.links[i]
		if id, _, ok := ringOf(n.topo, l.From, l.To); ok && id > maxRing {
			maxRing = id
		}
	}
	if maxRing < 0 {
		return // no wraparound rings (mesh): nothing to reclassify
	}
	// crossing[ring*R+d] = some installed path toward d traverses ring's
	// dateline wraparound. Per-destination tables are trees, so walking
	// from every source covers every installed link.
	crossing := make([]bool, (maxRing+1)*R)
	maxHops := 4 * R
	for d := 0; d < R; d++ {
		for s := 0; s < R; s++ {
			for cur, hop := s, 0; cur != d && hop < maxHops; hop++ {
				nb, ok := n.routeHop(cur, d)
				if !ok {
					break
				}
				if id, wrap, ok := ringOf(n.topo, cur, nb); ok && wrap {
					crossing[id*R+d] = true
				}
				cur = nb
			}
		}
	}
	for i := range n.links {
		l := &n.links[i]
		op := n.routers[l.From].outputs[l.FromPort]
		if op.vcClass == nil {
			continue
		}
		rid, _, ok := ringOf(n.topo, l.From, l.To)
		if !ok {
			continue
		}
		for d := range op.vcClass {
			if !crossing[rid*R+d] {
				op.vcClass[d] = uint8(d & 1) // unconstrained: balance by parity
				continue
			}
			cl := uint8(1)
			for cur, hop := l.To, 0; cur != d && hop < maxHops; hop++ {
				nb, ok := n.routeHop(cur, d)
				if !ok {
					break
				}
				if hid, wrap, ok := ringOf(n.topo, cur, nb); ok && wrap && hid == rid {
					cl = 0 // this ring's dateline crossing is still ahead
					break
				}
				cur = nb
			}
			op.vcClass[d] = cl
		}
	}
	n.vcReclassed = true
}

// routeHop resolves one step of the installed routing function: the
// neighbour router cur forwards toward d. ok is false when the table
// yields no usable router-to-router hop (local delivery, out-of-range
// port, or a disabled output).
func (n *Network) routeHop(cur, d int) (next int, ok bool) {
	p := n.route(cur, d)
	if p <= PortLocal || p >= n.routers[cur].numPorts {
		return 0, false
	}
	op := n.routers[cur].outputs[p]
	if op.disabled {
		return 0, false
	}
	return n.links[op.linkID].To, true
}
