package noc

import "fmt"

// MaxPorts bounds the per-router port count (including the local port) any
// Topology may declare. Pipeline phases use it for fixed-size scratch state
// so the hot path stays allocation-free regardless of radix.
const MaxPorts = 8

// LinkSpec is one directed router-to-router link a topology declares:
// output port FromPort of router From drives input port ToPort of router To.
type LinkSpec struct {
	From, FromPort, To, ToPort int
}

// Topology describes a network substrate: how many routers exist, how their
// ports are named and wired, the deterministic deadlock-free default route,
// and (for topologies with wraparound channels) the dateline virtual-channel
// class that keeps the channel-dependency graph acyclic.
//
// Port 0 of every router is always the local injection/ejection port; ports
// 1..NumPorts(r)-1 connect to neighbours. Link enumeration order is part of
// the contract: link ids are assigned in Links() order and experiments key
// attack placement on them, so implementations must enumerate
// deterministically.
type Topology interface {
	// Name is the topology's registry key ("mesh", "torus", "ring").
	Name() string
	// Routers returns the router count.
	Routers() int
	// NumPorts returns router r's port count, including the local port.
	NumPorts(r int) int
	// PortName names port p of router r for logs and dumps.
	PortName(r, p int) string
	// Links enumerates every directed router-to-router link.
	Links() []LinkSpec
	// Route returns the output port of the deterministic deadlock-free
	// default route from router r toward destination d (PortLocal when
	// r == d). Dimension-order on mesh/torus, shortest-direction on ring.
	Route(r, d int) int
	// HopDist returns the hop count of the default route from a to b.
	HopDist(a, b int) int
	// VCClass returns the dateline virtual-channel class (0 or 1) a packet
	// destined for dst must occupy in the input buffer at router `to` when
	// it arrives over the link from->to, and whether the topology restricts
	// VC classes at all. The class is a property of the link's dimension:
	// 0 while the packet's remaining path in that dimension still crosses
	// the dimension's wraparound dateline, 1 once it never will again.
	// Topologies whose default route has an acyclic channel-dependency
	// graph without VC restrictions (the mesh) return (0, false).
	VCClass(from, to, dst int) (class int, restricted bool)
}

// RouteTable precomputes a topology's default route as a flat
// (router, dst) -> port table: one array load at route-computation time.
func RouteTable(t Topology) RouteFunc {
	R := t.Routers()
	tab := make([]uint8, R*R)
	for r := 0; r < R; r++ {
		for d := 0; d < R; d++ {
			tab[r*R+d] = uint8(t.Route(r, d))
		}
	}
	return func(router, dst int) int {
		return int(tab[router*R+dst])
	}
}

// Topologies lists the available topology names in registry order.
func Topologies() []string { return []string{"mesh", "torus", "ring"} }

// NewTopology constructs a named topology over a width x height router grid
// (the ring uses width*height routers in a cycle). An empty name means mesh.
func NewTopology(name string, width, height int) (Topology, error) {
	switch name {
	case "", "mesh":
		return Mesh{W: width, H: height}, nil
	case "torus":
		return Torus{W: width, H: height}, nil
	case "ring":
		return Ring{N: width * height}, nil
	default:
		return nil, fmt.Errorf("noc: unknown topology %q (have %v)", name, Topologies())
	}
}

// ----------------------------------------------------------------------------
// Mesh

// Mesh is the paper's substrate: a width x height grid with no wraparound.
// XY dimension-order routing is deadlock-free without VC restrictions.
type Mesh struct{ W, H int }

// Name implements Topology.
func (m Mesh) Name() string { return "mesh" }

// Routers implements Topology.
func (m Mesh) Routers() int { return m.W * m.H }

// NumPorts implements Topology: local + E/W/N/S. Edge routers keep the full
// five-port radix with unconnected ports, matching the original hard-wired
// mesh (round-robin pointers sweep the same index space).
func (m Mesh) NumPorts(int) int { return 5 }

// PortName implements Topology.
func (m Mesh) PortName(_, p int) string { return PortName(p) }

// Links implements Topology, preserving the seed simulator's enumeration
// order: row-major over routers, the east pair then the north pair.
func (m Mesh) Links() []LinkSpec {
	var ls []LinkSpec
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			r := y*m.W + x
			if x+1 < m.W {
				e := r + 1
				ls = append(ls, LinkSpec{r, PortEast, e, PortWest}, LinkSpec{e, PortWest, r, PortEast})
			}
			if y+1 < m.H {
				s := r + m.W
				ls = append(ls, LinkSpec{r, PortNorth, s, PortSouth}, LinkSpec{s, PortSouth, r, PortNorth})
			}
		}
	}
	return ls
}

// Route implements Topology: XY dimension-order.
func (m Mesh) Route(r, d int) int {
	cx, cy := r%m.W, r/m.W
	dx, dy := d%m.W, d/m.W
	switch {
	case dx > cx:
		return PortEast
	case dx < cx:
		return PortWest
	case dy > cy:
		return PortNorth
	case dy < cy:
		return PortSouth
	default:
		return PortLocal
	}
}

// HopDist implements Topology: Manhattan distance.
func (m Mesh) HopDist(a, b int) int {
	ax, ay := a%m.W, a/m.W
	bx, by := b%m.W, b/m.W
	return iabs(ax-bx) + iabs(ay-by)
}

// VCClass implements Topology: the mesh needs no VC restriction.
func (m Mesh) VCClass(_, _, _ int) (int, bool) { return 0, false }

// ----------------------------------------------------------------------------
// Torus

// Torus is the mesh plus wraparound links in both dimensions. Minimal
// dimension-order routing picks the shorter way around each dimension's
// ring (ties break toward +x/+y). Wraparound closes each ring's
// channel-dependency graph into a cycle, so deadlock freedom needs the
// dateline scheme: a packet buffered behind a dimension-i link occupies VC
// class 0 while its remaining path in dimension i still crosses that
// dimension's dateline (the wraparound link) and class 1 once it never
// will again. Per dimension this splits the ring's dependency cycle into
// two acyclic spirals; dimension-order keeps the x->y composition a DAG.
type Torus struct{ W, H int }

// Name implements Topology.
func (t Torus) Name() string { return "torus" }

// Routers implements Topology.
func (t Torus) Routers() int { return t.W * t.H }

// NumPorts implements Topology: every router has the full five-port radix,
// all connected.
func (t Torus) NumPorts(int) int { return 5 }

// PortName implements Topology.
func (t Torus) PortName(_, p int) string { return PortName(p) }

// Links implements Topology: the mesh links in mesh order, then the
// wraparound pairs (east-west per row, north-south per column).
func (t Torus) Links() []LinkSpec {
	ls := Mesh{W: t.W, H: t.H}.Links()
	for y := 0; y < t.H; y++ {
		last := y*t.W + t.W - 1
		first := y * t.W
		ls = append(ls, LinkSpec{last, PortEast, first, PortWest}, LinkSpec{first, PortWest, last, PortEast})
	}
	for x := 0; x < t.W; x++ {
		last := (t.H-1)*t.W + x
		first := x
		ls = append(ls, LinkSpec{last, PortNorth, first, PortSouth}, LinkSpec{first, PortSouth, last, PortNorth})
	}
	return ls
}

// ringDelta returns the signed displacement of the minimal way from c to d
// around a k-ring: positive = forward (+1 direction), ties break forward.
func ringDelta(c, d, k int) int {
	fwd := ((d-c)%k + k) % k
	if fwd == 0 {
		return 0
	}
	if 2*fwd <= k {
		return fwd
	}
	return fwd - k
}

// Route implements Topology: minimal dimension-order, x before y, shorter
// way around each ring.
func (t Torus) Route(r, d int) int {
	cx, cy := r%t.W, r/t.W
	dx, dy := d%t.W, d/t.W
	if dd := ringDelta(cx, dx, t.W); dd > 0 {
		return PortEast
	} else if dd < 0 {
		return PortWest
	}
	if dd := ringDelta(cy, dy, t.H); dd > 0 {
		return PortNorth
	} else if dd < 0 {
		return PortSouth
	}
	return PortLocal
}

// HopDist implements Topology: minimal ring distance per dimension.
func (t Torus) HopDist(a, b int) int {
	ax, ay := a%t.W, a/t.W
	bx, by := b%t.W, b/t.W
	return iabs(ringDelta(ax, bx, t.W)) + iabs(ringDelta(ay, by, t.H))
}

// VCClass implements Topology. The class is keyed to the dimension of the
// arrival link — the dimension whose buffer the packet occupies — never to
// the dimension it routes next, or a packet parked at its x/y turn could
// hold an x buffer in the y-ring's class and re-close the x cycle. The x
// dateline is the wraparound pair between columns W-1 and 0, the y dateline
// the pair between rows H-1 and 0; x and y channels are disjoint resources
// and dimension-order routing only ever creates x->y dependencies, so the
// two spirals compose into a DAG.
func (t Torus) VCClass(from, to, dst int) (int, bool) {
	cx, cy := to%t.W, to/t.W
	dx, dy := dst%t.W, dst/t.W
	if from/t.W == to/t.W { // x-dimension link (same row)
		if dd := ringDelta(cx, dx, t.W); dd != 0 {
			if (dd > 0 && cx > dx) || (dd < 0 && cx < dx) {
				return 0, true // the x wraparound crossing is still ahead
			}
		}
		return 1, true
	}
	// y-dimension link (same column).
	if dd := ringDelta(cy, dy, t.H); dd != 0 {
		if (dd > 0 && cy > dy) || (dd < 0 && cy < dy) {
			return 0, true
		}
	}
	return 1, true
}

// ----------------------------------------------------------------------------
// Ring

// Ring ports: local, clockwise (+1 mod N) and counter-clockwise (-1 mod N).
const (
	PortCW  = 1
	PortCCW = 2
)

// Ring is a bidirectional ring of N routers, the substrate of the ring
// router microarchitecture line of work: three-port routers, minimal
// shortest-direction routing (ties break clockwise). Each rotation
// direction is a wraparound ring, so the same dateline VC scheme as the
// torus applies, with the clockwise dateline between routers N-1 and 0 and
// the counter-clockwise dateline between 0 and N-1.
type Ring struct{ N int }

// Name implements Topology.
func (g Ring) Name() string { return "ring" }

// Routers implements Topology.
func (g Ring) Routers() int { return g.N }

// NumPorts implements Topology: local + cw + ccw.
func (g Ring) NumPorts(int) int { return 3 }

// PortName implements Topology.
func (g Ring) PortName(_, p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortCW:
		return "cw"
	case PortCCW:
		return "ccw"
	default:
		return fmt.Sprintf("port(%d)", p)
	}
}

// Links implements Topology: per router, the clockwise pair to its
// successor.
func (g Ring) Links() []LinkSpec {
	var ls []LinkSpec
	for r := 0; r < g.N; r++ {
		next := (r + 1) % g.N
		ls = append(ls, LinkSpec{r, PortCW, next, PortCCW}, LinkSpec{next, PortCCW, r, PortCW})
	}
	return ls
}

// Route implements Topology: shorter direction, ties clockwise.
func (g Ring) Route(r, d int) int {
	switch dd := ringDelta(r, d, g.N); {
	case dd > 0:
		return PortCW
	case dd < 0:
		return PortCCW
	default:
		return PortLocal
	}
}

// HopDist implements Topology.
func (g Ring) HopDist(a, b int) int { return iabs(ringDelta(a, b, g.N)) }

// VCClass implements Topology: same dateline rule as the torus, one ring
// per rotation direction. The ring has a single dimension, so only the
// destination matters.
func (g Ring) VCClass(_, to, dst int) (int, bool) {
	if dd := ringDelta(to, dst, g.N); dd != 0 {
		if (dd > 0 && to > dst) || (dd < 0 && to < dst) {
			return 0, true
		}
	}
	return 1, true
}

func iabs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
