package noc

import "math/bits"

// This file implements the event-driven simulator core: per-phase active
// sets plus a next-event sleep counter, so Step cost scales with the flits
// in flight rather than the router count, and whole-network quiescent
// stretches (retransmission-penalty waits, inter-burst gaps) cost O(1) per
// cycle instead of a full sweep.
//
// Membership is maintained at the same counter edges the old sweep's skip
// conditions tested:
//
//	actIn[r]  <=> routers[r].inFlits > 0   (SA/ST, VA, RC eligibility)
//	actOut[r] <=> routers[r].parked  > 0   (LT eligibility, with actIn)
//	actNI[r]  <=> nis[r].total       > 0   (injection eligibility)
//
// so iterating an active set visits exactly the routers the full sweep
// would not have skipped. Phase order inside Step is unchanged; see
// DESIGN.md §9 for why per-word snapshot iteration preserves the sweep's
// semantics bit for bit.

// activeSet is a bitmap over router ids (<= 256 routers, <= 4 words).
type activeSet struct {
	w []uint64
}

func newActiveSet(n int) activeSet {
	return activeSet{w: make([]uint64, (n+63)/64)}
}

func (s activeSet) set(i int)      { s.w[i>>6] |= 1 << uint(i&63) }
func (s activeSet) clear(i int)    { s.w[i>>6] &^= 1 << uint(i&63) }
func (s activeSet) has(i int) bool { return s.w[i>>6]>>uint(i&63)&1 == 1 }

// scheduler tracks which routers and NIs can make progress in each pipeline
// phase, and how many flits the network holds in total. The global counters
// decide when the whole network may sleep.
type scheduler struct {
	actIn  activeSet // routers with buffered input flits
	actOut activeSet // routers with parked retransmission entries
	actNI  activeSet // routers whose NI holds injection-queue flits

	flitsIn     int // sum of Router.inFlits
	flitsParked int // sum of Router.parked
	flitsNI     int // sum of NI.total
}

func newScheduler(routers int) *scheduler {
	return &scheduler{
		actIn:  newActiveSet(routers),
		actOut: newActiveSet(routers),
		actNI:  newActiveSet(routers),
	}
}

// gainIn/loseIn, gainParked/loseParked and NI.gain/lose are the only
// mutation points of the activity counters: every buffer edge flows through
// them, so set membership can never drift from the counters.

func (r *Router) gainIn(k int) {
	if r.inFlits == 0 {
		r.sched.actIn.set(r.id)
	}
	r.inFlits += k
	r.sched.flitsIn += k
}

func (r *Router) loseIn(k int) {
	r.inFlits -= k
	r.sched.flitsIn -= k
	if r.inFlits == 0 {
		r.sched.actIn.clear(r.id)
	}
}

func (r *Router) gainParked(k int) {
	if r.parked == 0 {
		r.sched.actOut.set(r.id)
	}
	r.parked += k
	r.sched.flitsParked += k
}

func (r *Router) loseParked(k int) {
	r.parked -= k
	r.sched.flitsParked -= k
	if r.parked == 0 {
		r.sched.actOut.clear(r.id)
	}
}

func (ni *NI) gain(k int) {
	if ni.total == 0 {
		ni.sched.actNI.set(ni.router)
	}
	ni.total += k
	ni.sched.flitsNI += k
}

func (ni *NI) lose(k int) {
	ni.total -= k
	ni.sched.flitsNI -= k
	if ni.total == 0 {
		ni.sched.actNI.clear(ni.router)
	}
}

// The occupancy/request-mask helpers below are the only mutation points of
// occ, routedTo and reqVA — the masks the arbitration scans (phaseSAST,
// phaseVA, hasWorkFor) trust instead of probing buffers. Keeping every
// transition here (enforced by nocvet's telemetrysafe analyzer) means the
// brute-force invariant audit certifies every way the masks can change.

// markOccupied sets the occupancy bit of input VC bit index idx (occBit).
func (r *Router) markOccupied(idx uint) { r.occ |= 1 << idx }

// clearOccupied clears the occupancy bit of a drained input VC.
func (r *Router) clearOccupied(idx uint) { r.occ &^= 1 << idx }

// routeInput records that the packet resident in input VC idx is routed to
// output o: SA may now consider it, and its head requests VA.
func (r *Router) routeInput(o int, idx uint) {
	r.routedTo[o] |= 1 << idx
	r.reqVA |= 1 << idx
}

// unrouteInput invalidates a route (dead output port, dropped packet):
// the VC neither competes for output o nor requests VA.
func (r *Router) unrouteInput(o int, idx uint) {
	r.routedTo[o] &^= 1 << idx
	r.reqVA &^= 1 << idx
}

// grantVA retires a VC's VA request after allocation succeeds.
func (r *Router) grantVA(idx uint) { r.reqVA &^= 1 << idx }

// retireRouted clears a VC's claim on output o when its packet's tail has
// traversed the crossbar (the route persists only head-to-tail).
func (r *Router) retireRouted(o int, idx uint) { r.routedTo[o] &^= 1 << idx }

// resetActivity clears a router's scheduler-facing state — the activity
// counters and the occupancy/request masks — back to the post-construction
// empty state. Only Network.Reset may call it: the buffers the masks mirror
// must be emptied in the same breath, or the invariant audit's
// counter/mask/buffer agreement breaks.
func (r *Router) resetActivity() {
	r.inFlits, r.parked = 0, 0
	r.occ, r.reqVA = 0, 0
	for o := range r.routedTo {
		r.routedTo[o] = 0
	}
}

// resetActivity clears an NI's flit counter alongside its emptied queues
// (Network.Reset only).
func (ni *NI) resetActivity() { ni.total = 0 }

// reset empties every active set and global counter (Network.Reset only;
// the per-router and per-NI resets above restore the mirrored state).
func (s *scheduler) reset() {
	for i := range s.actIn.w {
		s.actIn.w[i], s.actOut.w[i], s.actNI.w[i] = 0, 0, 0
	}
	s.flitsIn, s.flitsParked, s.flitsNI = 0, 0, 0
}

// resetSleep cancels any scheduled quiescence without replaying stall
// clocks — Network.Reset rewinds every clock to zero anyway.
func (n *Network) resetSleep() { n.sleepUntil = 0 }

// asleep reports whether the network is inside a scheduled quiescent
// stretch: cycles before sleepUntil are exact no-ops for every phase.
func (n *Network) asleep() bool { return n.cycle < n.sleepUntil }

// scheduleSleep computes the next cycle at which any pipeline phase can do
// work, assuming no external mutation. Callable only when the input buffers
// and injection queues are globally empty and no TDM schedule gates links
// (a schedule makes sendability time-dependent in ways we don't model
// here): the sole remaining event source is the retransmission buffers,
// whose entries become sendable at max(nextTry, enqueuedAt+1). Until the
// earliest such time every phaseLT call is a pure no-op (no entry passes
// the pick scan), SA/VA/RC have no input flits to move, and injection has
// no queued flits — so the skipped cycles change no state except the
// entry-free ports' lastProgress refreshes, which repairClocks replays.
func (n *Network) scheduleSleep() {
	if n.sched.flitsParked == 0 {
		n.sleepUntil = ^uint64(0) // fully idle: sleep until external input
		return
	}
	next := ^uint64(0)
	for wi, w := range n.sched.actOut.w {
		for ; w != 0; w &= w - 1 {
			r := n.routers[wi<<6+bits.TrailingZeros64(w)]
			for p := 0; p < r.numPorts; p++ {
				for i := range r.outputs[p].entries {
					e := &r.outputs[p].entries[i]
					t := e.enqueuedAt + 1
					if e.nextTry > t {
						t = e.nextTry
					}
					if t < next {
						next = t
					}
				}
			}
		}
	}
	// A conservative (early) wake is harmless: the woken Step is a no-op
	// and re-sleeps. Only commit to sleeping when at least one full cycle
	// is skipped.
	if next > n.cycle+1 {
		n.sleepUntil = next
	}
}

// repairClocks replays the lastProgress refreshes phaseLT would have
// performed during skipped cycles: an entry-free (or disabled) port of a
// non-idle router with no input flit routed toward it refreshes every
// cycle, so batch-setting it to the current cycle is equivalent to the
// per-cycle updates. Ports holding entries are deliberately left stale —
// their stall clocks must keep running, exactly as under the sweep.
func (n *Network) repairClocks() {
	for wi := range n.sched.actOut.w {
		w := n.sched.actIn.w[wi] | n.sched.actOut.w[wi]
		for ; w != 0; w &= w - 1 {
			r := n.routers[wi<<6+bits.TrailingZeros64(w)]
			for p := 0; p < r.numPorts; p++ {
				op := r.outputs[p]
				if (op.disabled || len(op.entries) == 0) &&
					(op.disabled || !r.hasWorkFor(p)) {
					op.lastProgress = n.cycle
				}
			}
		}
	}
}

// repairIfAsleep makes stall clocks exact before an observation (Occupancy,
// telemetry sampling) taken inside a sleep stretch.
func (n *Network) repairIfAsleep() {
	if n.asleep() {
		n.repairClocks()
	}
}

// wakeAll ends a sleep stretch because external state is about to change
// (injection, wire swap, link disabling, routing or schedule updates). The
// skipped refreshes are replayed first, under the pre-mutation state —
// order matters, or the mutation would leak into past cycles' predicates.
func (n *Network) wakeAll() {
	if n.asleep() {
		n.repairClocks()
		n.sleepUntil = 0
	}
}
