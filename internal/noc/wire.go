package noc

import (
	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

// TxResult is the outcome of one link-traversal attempt.
type TxResult struct {
	// OK is true when the receiver accepted the flit (clean or corrected
	// decode). False means the decode was uncorrectable: the flit was
	// dropped at the input and a NACK returns to the sender.
	OK bool
	// Corrected is true when the receiver's ECC corrected a single-bit
	// error in this traversal.
	Corrected bool
	// Stall is the number of extra cycles the delivered flit is held at
	// the receiver before becoming eligible for switch allocation — the
	// 1-3 cycle penalty of undoing L-Ob obfuscation (Figure 7).
	Stall int
	// Swallowed is true when an adversary consumed the flit in flight and
	// forged the ACK: the sender retires the flit as delivered (OK is true)
	// but nothing arrives downstream. The drop-trojan signature.
	Swallowed bool
}

// Wire carries one flit attempt across a physical link. Implementations own
// everything between the upstream retransmission buffer and the downstream
// input buffer: ECC encode, obfuscation, fault/trojan taps, ECC decode and
// threat detection. attempt counts prior tries of this same flit (0 on the
// first try), which is what lets secure wires escalate obfuscation methods
// per Figure 6.
type Wire interface {
	Transmit(cycle uint64, f flit.Flit, vc uint8, attempt int) (flit.Flit, TxResult)
}

// PlainWire is the baseline link: SECDED encode, pass through the adversary
// tap, SECDED decode. No obfuscation, no detection.
type PlainWire struct {
	// Tap decides the codeword's fate in flight; fault.None for a healthy
	// link.
	Tap fault.Adversary
	// Corrected and Dropped count link-level ECC outcomes; Swallowed counts
	// flits an adversary consumed with a forged ACK.
	Corrected uint64
	Dropped   uint64
	Swallowed uint64
}

// NewPlainWire returns a healthy baseline wire.
func NewPlainWire() *PlainWire { return &PlainWire{Tap: fault.None} }

// Transmit implements Wire.
func (w *PlainWire) Transmit(cycle uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, TxResult) {
	cw := ecc.Encode(f.Payload)
	if w.Tap != nil {
		var oc fault.Outcome
		cw, oc = w.Tap.Strike(cycle, cw, fault.Framing{Head: f.IsHead(), Tail: f.IsTail()})
		if oc == fault.Swallow {
			w.Swallowed++
			return f, TxResult{OK: true, Swallowed: true}
		}
	}
	data, st, _ := ecc.Decode(cw)
	switch st {
	case ecc.Uncorrectable:
		w.Dropped++
		return f, TxResult{OK: false}
	case ecc.Corrected:
		w.Corrected++
		f.Payload = data
		return f, TxResult{OK: true, Corrected: true}
	default:
		f.Payload = data
		return f, TxResult{OK: true}
	}
}

// perfectWire is used for router-to-NI ejection: no ECC, no faults, always
// delivers. The local "link" stays inside the trusted router tile.
type perfectWire struct{}

func (perfectWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, TxResult) {
	return f, TxResult{OK: true}
}
