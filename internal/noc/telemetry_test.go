package noc

import "testing"

func TestTelemetryQuiescentNetworkNeverBlocks(t *testing.T) {
	n := mkNet(t)
	tel := n.EnableTelemetry(8)
	for i := 0; i < 20; i++ {
		n.Run(25)
		tel.Sample()
	}
	if tel.Samples() != 20 {
		t.Fatalf("samples %d, want 20", tel.Samples())
	}
	for id := 0; id < tel.Links(); id++ {
		if _, ever := tel.FirstBlocked(id); ever {
			t.Fatalf("link %d blocked in an idle network", id)
		}
		if tel.BlockedFrac(id) != 0 || tel.RecentBlockedFrac(id) != 0 {
			t.Fatalf("link %d has non-zero blocked fraction in an idle network", id)
		}
	}
}

// TestTelemetryFlagsWedgedLink wedges one link with a persistent NACK wire
// and checks the tap singles it out: it blocks first, and its blocked
// fraction dominates the mesh.
func TestTelemetryFlagsWedgedLink(t *testing.T) {
	n := mkNet(t)
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 1 && l.FromPort == PortWest { // 1 -> 0, dest-0 ingress
			target = l
			break
		}
	}
	n.SetWire(target.ID, nackWire{})
	tel := n.EnableTelemetry(16)
	// Saturate the wedged link's flows: three-flit packets from router 1's
	// cores toward router 0.
	for i := 0; i < 400; i++ {
		if i%4 == 0 {
			n.Inject(4, pkt(0, 0, uint8(i%4), 3)) // core 4 lives on router 1
		}
		n.Step()
		if i%10 == 9 {
			tel.Sample()
		}
	}
	first, ever := tel.FirstBlocked(target.ID)
	if !ever {
		t.Fatal("wedged link never sampled blocked")
	}
	for id := 0; id < tel.Links(); id++ {
		if f, ever := tel.FirstBlocked(id); ever && f < first {
			t.Fatalf("link %d blocked at %d, before the wedged link (%d)", id, f, first)
		}
		if id != target.ID && tel.BlockedFrac(id) > tel.BlockedFrac(target.ID) {
			t.Fatalf("link %d blocked fraction %.2f exceeds the wedged link's %.2f",
				id, tel.BlockedFrac(id), tel.BlockedFrac(target.ID))
		}
	}
	if tel.RecentBlockedFrac(target.ID) == 0 {
		t.Fatal("wedged link not blocked in the trailing window")
	}
	// The ring's newest retained sample must agree with the aggregate.
	if blocked, _, ok := tel.BlockedAt(target.ID, 0); !ok || !blocked {
		t.Fatalf("newest ring sample: blocked=%v ok=%v, want blocked", blocked, ok)
	}
}

// TestTelemetrySampleDoesNotAllocate holds the tap to the simulator's
// steady-state allocation budget: zero allocations per Sample.
func TestTelemetrySampleDoesNotAllocate(t *testing.T) {
	n := mkNet(t)
	n.SetWire(0, nackWire{})
	tel := n.EnableTelemetry(8)
	for i := 0; i < 200; i++ {
		if i%4 == 0 {
			n.Inject(0, pkt(1, 0, uint8(i%4), 3))
		}
		n.Step()
	}
	if avg := testing.AllocsPerRun(100, tel.Sample); avg != 0 {
		t.Fatalf("Sample averages %.2f allocs, want 0", avg)
	}
}

func TestTelemetryRingWrapsAndIndexes(t *testing.T) {
	n := mkNet(t)
	tel := n.EnableTelemetry(4)
	for i := 0; i < 10; i++ {
		n.Step()
		tel.Sample()
	}
	if _, _, ok := tel.BlockedAt(0, 4); ok {
		t.Fatal("ring retains more rows than its depth")
	}
	// Newest row carries the latest sample cycle; oldest retained the
	// depth-th most recent.
	if _, cycle, ok := tel.BlockedAt(0, 0); !ok || cycle != n.Cycle() {
		t.Fatalf("newest row cycle %d ok=%v, want %d", cycle, ok, n.Cycle())
	}
	if _, cycle, ok := tel.BlockedAt(0, 3); !ok || cycle != n.Cycle()-3 {
		t.Fatalf("oldest row cycle %d ok=%v, want %d", cycle, ok, n.Cycle()-3)
	}
}

// TestTelemetryOnsetIgnoresTransientBlip is the regression test for the
// outage-onset estimate: a short congestion blip long before the real outage
// sets FirstBlocked, but Onset must track the start of the longest sustained
// streak — the actual outage — not the ancient transient.
func TestTelemetryOnsetIgnoresTransientBlip(t *testing.T) {
	n := mkNet(t)
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 1 && l.FromPort == PortWest { // 1 -> 0, dest-0 ingress
			target = l
			break
		}
	}
	w := &healableNackWire{}
	n.SetWire(target.ID, w)
	tel := n.EnableTelemetry(0)

	run := func(cycles int, inject bool) {
		for i := 0; i < cycles; i++ {
			if inject && i%4 == 0 {
				n.Inject(4, pkt(0, 0, uint8(i%4), 3)) // core 4 lives on router 1
			}
			n.Step()
			if i%10 == 9 {
				tel.Sample()
			}
		}
	}

	// A short blip: the wire NACKs briefly, then heals and the port drains.
	run(120, true)
	w.healed = true
	run(300, false)
	first, ever := tel.FirstBlocked(target.ID)
	if !ever {
		t.Fatal("blip never sampled blocked")
	}
	if blocked, _, ok := tel.BlockedAt(target.ID, 0); !ok || blocked {
		t.Fatal("port did not drain after the wire healed")
	}

	// The real outage: the wire breaks again, for much longer.
	w.healed = false
	outageFrom := n.Cycle()
	run(500, true)

	onset, ok := tel.Onset(target.ID)
	if !ok {
		t.Fatal("no onset for a wedged link")
	}
	if onset <= first {
		t.Fatalf("onset %d not after the transient blip's FirstBlocked %d", onset, first)
	}
	if onset < outageFrom {
		t.Fatalf("onset %d predates the outage (started at %d)", onset, outageFrom)
	}
	if tel.OnsetStreak(target.ID) < 10 {
		t.Fatalf("outage streak %d samples, want a sustained streak", tel.OnsetStreak(target.ID))
	}
}
