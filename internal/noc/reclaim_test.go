package noc

import (
	"testing"

	"tasp/internal/flit"
)

// tailSwallowWire models the drop-trojan tail swallow: it consumes every
// TAIL flit crossing the link (forging the ACK, so the sender books a
// clean delivery) and forwards everything else untouched.
type tailSwallowWire struct{ swallowed int }

func (w *tailSwallowWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, TxResult) {
	if f.Kind == flit.Tail {
		w.swallowed++
		return f, TxResult{OK: true, Swallowed: true}
	}
	return f, TxResult{OK: true}
}

// TestReclaimTruncatedFreesTailSwallowedWormholes is the regression test
// for the trojan tail-swallow VC leak: when a TAIL flit is consumed in
// flight, the sender's bookkeeping runs as on a real delivery, but every
// resource the packet holds downstream of the trojan — input VC wormhole
// state, output VC ownership, partial NI reassembly — stays held, because
// phaseRC's orphan retirement only cleans beheaded packets, never betailed
// ones. ReclaimTruncated must purge the betailed wormholes, restore every
// audited invariant, and leave the wedged path usable again.
func TestReclaimTruncatedFreesTailSwallowedWormholes(t *testing.T) {
	n := mkNet(t)
	var link LinkInfo
	for _, l := range n.Links() {
		if l.From == 1 && l.To == 2 {
			link = l
			break
		}
	}
	w := &tailSwallowWire{}
	n.SetWire(link.ID, w)

	// Multi-flit wormholes through the infected link: router 0's core to
	// router 3 crosses 0->1->2->3 under XY. The tails vanish in flight on
	// 1->2; heads and bodies run ahead and wedge the residual path.
	for i := 0; i < 2; i++ {
		if !n.Inject(0, pkt(3, 0, uint8(i%2), 10)) {
			t.Fatal("inject failed")
		}
	}
	// Stop the instant the second tail is swallowed: the flits ahead of
	// the vanished tails are still strung across routers 2 and 3.
	for i := 0; i < 600 && w.swallowed < 2; i++ {
		n.Step()
	}
	if w.swallowed != 2 {
		t.Fatalf("swallowed %d tails, want 2: the trojan path was not exercised", w.swallowed)
	}
	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("betailed packets delivered whole")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("before reclaim: %v", err)
	}
	if n.Occupancy().InputFlits == 0 {
		t.Fatal("no residual flits buffered: nothing was wedged")
	}

	// The reconfiguration-time sweep: every betailed wormhole is purged.
	dropped := n.ReclaimTruncated()
	if dropped == 0 {
		t.Fatal("ReclaimTruncated purged nothing")
	}
	if n.Counters.DroppedReconfig == 0 {
		t.Fatal("reclaimed flits not booked as reconfig drops")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after reclaim: %v", err)
	}
	n.Run(400)
	if got := n.Occupancy().InputFlits; got != 0 {
		t.Fatalf("%d flits still buffered after reclaim", got)
	}

	// The healed path must be fully usable: same route, same VCs.
	n.SetWire(link.ID, NewPlainWire())
	for i := 0; i < 2; i++ {
		if !n.Inject(0, pkt(3, 0, uint8(i%2), 10)) {
			t.Fatal("post-reclaim inject failed")
		}
	}
	n.Run(500)
	if got := n.Counters.DeliveredPackets; got != 2 {
		t.Fatalf("delivered %d of 2 packets after reclaim: VCs still wedged", got)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after post-reclaim traffic: %v", err)
	}
}

// TestDisableLinkReclaimPurgesCutWormholes pins the conviction-time cut:
// disabling a link a wormhole is strung across must purge the whole packet
// — the upstream remainder and the downstream head-side that would
// otherwise hold its allocations forever — and keep the audited invariants.
func TestDisableLinkReclaimPurgesCutWormholes(t *testing.T) {
	n := mkNet(t)
	var link LinkInfo
	for _, l := range n.Links() {
		if l.From == 1 && l.To == 2 {
			link = l
			break
		}
	}
	// A long wormhole crossing 1->2, cut mid-flight: step until the head
	// is past the link but the tail is not (a 12-flit packet takes 12+
	// cycles to cross, so the first crossing leaves it strung over the
	// link). A single packet keeps the test about the cut itself — with
	// no replacement routing table installed, a second packet's head
	// would legitimately park at the dead port forever.
	if !n.Inject(0, pkt(3, 0, 0, 10)) {
		t.Fatal("inject failed")
	}
	for i := 0; i < 600 && n.LinkOutput(link.ID).FlitsSent == 0; i++ {
		n.Step()
	}
	if n.LinkOutput(link.ID).FlitsSent == 0 {
		t.Fatal("nothing in flight across the target link")
	}
	dropped := n.DisableLinkReclaim(link.ID)
	if dropped == 0 {
		t.Fatal("cutting a busy link reclaimed nothing")
	}
	n.ReclaimTruncated()
	if n.Counters.DroppedReconfig == 0 {
		t.Fatal("cut flits not booked as reconfig drops")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after cut: %v", err)
	}
	n.Run(1000)
	if got := n.Occupancy().InputFlits; got != 0 {
		t.Fatalf("%d flits still buffered after drain", got)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}
