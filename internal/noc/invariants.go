package noc

import "fmt"

// CheckInvariants audits the network's internal consistency and returns the
// first violation found, or nil. It is meant for tests and long randomized
// runs: any breach indicates a simulator bug, not a workload property.
//
// Checked invariants:
//
//  1. Credit accounting: for every link, the upstream credit counter plus
//     the downstream input-VC occupancy plus in-flight reservations
//     (retransmission entries of that VC) equals the buffer depth.
//  2. Buffer bounds: no input VC or retransmission buffer exceeds its
//     capacity.
//  3. VC ownership: every owned output VC belongs to a packet that still
//     has presence somewhere (an in-flight wormhole); every retransmission
//     entry's VC is owned (by its own packet).
//  4. Wormhole front consistency: a non-head flit at the front of an input
//     VC implies the VC still holds routing state for its packet.
//  5. Activity counters: the per-router inFlits/parked tallies driving the
//     active-router skip match the actual buffer contents (a mismatch
//     would make Step silently skip a router that still holds work).
//  6. Occupancy and request masks: the occ bitmap matches buffer
//     emptiness bit for bit, routedTo[o] holds exactly the VCs whose
//     resident packet is routed to output o, and reqVA holds exactly the
//     VA-grantable VCs (routed, unallocated head at the front).
//  7. Active sets: each scheduler set's membership matches a brute-force
//     "holds work" predicate per router (input flits, parked entries,
//     queued injection flits), and the global flit counters equal the
//     per-router sums. A stale bit here is precisely the failure mode of
//     the event-driven core: a phase skipping a router that has work.
//  8. Sleep validity: inside a scheduled quiescent stretch the network
//     holds no input or injection flits, and no parked entry becomes
//     sendable before sleepUntil — the skipped cycles are provably
//     no-ops.
//  9. Drop accounting: the DroppedFlits total equals the sum of its
//     per-cause buckets (retransmission exhaustion, in-flight swallow,
//     orphan retirement, reconfiguration).
func (n *Network) CheckInvariants() error {
	c := n.Counters
	if sum := c.DroppedRetrans + c.DroppedInFlight + c.DroppedOrphan + c.DroppedReconfig; c.DroppedFlits != sum {
		return fmt.Errorf("dropped-flit split: total %d != retrans %d + inflight %d + orphan %d + reconfig %d",
			c.DroppedFlits, c.DroppedRetrans, c.DroppedInFlight, c.DroppedOrphan, c.DroppedReconfig)
	}
	for _, r := range n.routers {
		for p := 0; p < r.numPorts; p++ {
			op := r.outputs[p]
			if op.disabled {
				continue
			}
			if len(op.entries) > retransCap(n.cfg) {
				return fmt.Errorf("r%d %s: retrans holds %d > cap %d",
					r.id, PortName(p), len(op.entries), retransCap(n.cfg))
			}
			for _, e := range op.entries {
				if int(e.vc) >= n.cfg.VCs {
					return fmt.Errorf("r%d %s: entry with invalid vc %d", r.id, PortName(p), e.vc)
				}
				if op.vcOwner[e.vc] == 0 {
					return fmt.Errorf("r%d %s: retrans entry pkt %d on unowned vc %d",
						r.id, PortName(p), e.f.PacketID, e.vc)
				}
			}
			if p == PortLocal {
				continue // ejection has no credit loop
			}
			if op.linkID < 0 {
				continue
			}
			l := n.links[op.linkID]
			down := n.routers[l.To]
			for v := 0; v < n.cfg.VCs; v++ {
				occ := down.inputs[l.ToPort][v].size()
				inflight := 0
				for _, e := range op.entries {
					if int(e.vc) == v {
						inflight++
					}
				}
				if got := op.credits[v] + occ + inflight; got != n.cfg.BufDepth {
					return fmt.Errorf("link %s vc%d: credits %d + occupancy %d + inflight %d != depth %d",
						l, v, op.credits[v], occ, inflight, n.cfg.BufDepth)
				}
			}
		}
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				ivc := &r.inputs[p][v]
				if ivc.size() > n.cfg.BufDepth {
					return fmt.Errorf("r%d %s vc%d: input holds %d > depth %d",
						r.id, PortName(p), v, ivc.size(), n.cfg.BufDepth)
				}
				if f := ivc.front(); f != nil && !f.f.IsHead() && !ivc.routed {
					// Tolerated transiently after link disabling or an
					// in-flight head swallow (orphans are retired by the next
					// RC phase); flag only when neither beheading cause has
					// occurred.
					if !n.anyDisabled() && n.Counters.DroppedInFlight == 0 {
						return fmt.Errorf("r%d %s vc%d: orphan body flit pkt %d at front",
							r.id, PortName(p), v, f.f.PacketID)
					}
				}
			}
		}
		inFlits, parked := 0, 0
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				inFlits += r.inputs[p][v].size()
			}
			parked += len(r.outputs[p].entries)
		}
		if r.inFlits != inFlits || r.parked != parked {
			return fmt.Errorf("r%d: activity counters inFlits=%d parked=%d, actual %d/%d",
				r.id, r.inFlits, r.parked, inFlits, parked)
		}
		if err := r.checkMasks(); err != nil {
			return err
		}
	}
	return n.checkScheduler()
}

// checkMasks rebuilds the router's occupancy/routing/request bitmaps from the
// buffer state and compares them bit for bit with the incrementally
// maintained masks that SA/VA/RC actually scan.
func (r *Router) checkMasks() error {
	var occ, reqVA uint64
	var routedTo [MaxPorts]uint64
	for p := 0; p < r.numPorts; p++ {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			bit := uint64(1) << r.occBit(p, v)
			if ivc.size() > 0 {
				occ |= bit
			}
			if ivc.routed {
				routedTo[ivc.route] |= bit
				if f := ivc.front(); f != nil && f.f.IsHead() && !ivc.allocated {
					reqVA |= bit
				}
			}
		}
	}
	if r.occ != occ {
		return fmt.Errorf("r%d: occ mask %#x, buffers say %#x", r.id, r.occ, occ)
	}
	if r.reqVA != reqVA {
		return fmt.Errorf("r%d: reqVA mask %#x, buffers say %#x", r.id, r.reqVA, reqVA)
	}
	for o := 0; o < r.numPorts; o++ {
		if r.routedTo[o] != routedTo[o] {
			return fmt.Errorf("r%d %s: routedTo mask %#x, buffers say %#x",
				r.id, PortName(o), r.routedTo[o], routedTo[o])
		}
	}
	return nil
}

// checkScheduler cross-checks the event-driven core's active sets and global
// counters against brute-force recomputation, then audits any scheduled
// sleep stretch.
func (n *Network) checkScheduler() error {
	s := n.sched
	var sumIn, sumParked, sumNI int
	for _, r := range n.routers {
		if got, want := s.actIn.has(r.id), r.inFlits > 0; got != want {
			return fmt.Errorf("r%d: actIn=%v but inFlits=%d", r.id, got, r.inFlits)
		}
		if got, want := s.actOut.has(r.id), r.parked > 0; got != want {
			return fmt.Errorf("r%d: actOut=%v but parked=%d", r.id, got, r.parked)
		}
		sumIn += r.inFlits
		sumParked += r.parked
	}
	for i, ni := range n.nis {
		queued := 0
		for c := range ni.queues {
			queued += ni.qlen(c)
		}
		if ni.total != queued {
			return fmt.Errorf("ni%d: total=%d but queues hold %d", i, ni.total, queued)
		}
		if got, want := s.actNI.has(i), ni.total > 0; got != want {
			return fmt.Errorf("ni%d: actNI=%v but total=%d", i, got, ni.total)
		}
		sumNI += ni.total
	}
	if s.flitsIn != sumIn || s.flitsParked != sumParked || s.flitsNI != sumNI {
		return fmt.Errorf("scheduler counters in/parked/ni = %d/%d/%d, sums %d/%d/%d",
			s.flitsIn, s.flitsParked, s.flitsNI, sumIn, sumParked, sumNI)
	}
	if n.asleep() {
		if sumIn != 0 || sumNI != 0 {
			return fmt.Errorf("asleep until %d with %d input / %d injection flits",
				n.sleepUntil, sumIn, sumNI)
		}
		if n.sleepUntil == ^uint64(0) {
			if sumParked != 0 {
				return fmt.Errorf("asleep forever with %d parked flits", sumParked)
			}
		} else {
			for _, r := range n.routers {
				for p := 0; p < r.numPorts; p++ {
					for i := range r.outputs[p].entries {
						e := &r.outputs[p].entries[i]
						ready := e.enqueuedAt + 1
						if e.nextTry > ready {
							ready = e.nextTry
						}
						if ready < n.sleepUntil {
							return fmt.Errorf("r%d %s: entry sendable at %d inside sleep until %d",
								r.id, PortName(p), ready, n.sleepUntil)
						}
					}
				}
			}
		}
	}
	return nil
}

// anyDisabled reports whether any link has been administratively disabled.
func (n *Network) anyDisabled() bool {
	for _, l := range n.links {
		if n.routers[l.From].outputs[l.FromPort].disabled {
			return true
		}
	}
	return false
}
