package noc

import "fmt"

// CheckInvariants audits the network's internal consistency and returns the
// first violation found, or nil. It is meant for tests and long randomized
// runs: any breach indicates a simulator bug, not a workload property.
//
// Checked invariants:
//
//  1. Credit accounting: for every link, the upstream credit counter plus
//     the downstream input-VC occupancy plus in-flight reservations
//     (retransmission entries of that VC) equals the buffer depth.
//  2. Buffer bounds: no input VC or retransmission buffer exceeds its
//     capacity.
//  3. VC ownership: every owned output VC belongs to a packet that still
//     has presence somewhere (an in-flight wormhole); every retransmission
//     entry's VC is owned (by its own packet).
//  4. Wormhole front consistency: a non-head flit at the front of an input
//     VC implies the VC still holds routing state for its packet.
//  5. Activity counters: the per-router inFlits/parked tallies driving the
//     active-router skip match the actual buffer contents (a mismatch
//     would make Step silently skip a router that still holds work).
func (n *Network) CheckInvariants() error {
	for _, r := range n.routers {
		for p := 0; p < r.numPorts; p++ {
			op := r.outputs[p]
			if op.disabled {
				continue
			}
			if len(op.entries) > retransCap(n.cfg) {
				return fmt.Errorf("r%d %s: retrans holds %d > cap %d",
					r.id, PortName(p), len(op.entries), retransCap(n.cfg))
			}
			for _, e := range op.entries {
				if int(e.vc) >= n.cfg.VCs {
					return fmt.Errorf("r%d %s: entry with invalid vc %d", r.id, PortName(p), e.vc)
				}
				if op.vcOwner[e.vc] == 0 {
					return fmt.Errorf("r%d %s: retrans entry pkt %d on unowned vc %d",
						r.id, PortName(p), e.f.PacketID, e.vc)
				}
			}
			if p == PortLocal {
				continue // ejection has no credit loop
			}
			if op.linkID < 0 {
				continue
			}
			l := n.links[op.linkID]
			down := n.routers[l.To]
			for v := 0; v < n.cfg.VCs; v++ {
				occ := down.inputs[l.ToPort][v].size()
				inflight := 0
				for _, e := range op.entries {
					if int(e.vc) == v {
						inflight++
					}
				}
				if got := op.credits[v] + occ + inflight; got != n.cfg.BufDepth {
					return fmt.Errorf("link %s vc%d: credits %d + occupancy %d + inflight %d != depth %d",
						l, v, op.credits[v], occ, inflight, n.cfg.BufDepth)
				}
			}
		}
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				ivc := &r.inputs[p][v]
				if ivc.size() > n.cfg.BufDepth {
					return fmt.Errorf("r%d %s vc%d: input holds %d > depth %d",
						r.id, PortName(p), v, ivc.size(), n.cfg.BufDepth)
				}
				if f := ivc.front(); f != nil && !f.f.IsHead() && !ivc.routed {
					// Tolerated transiently after link disabling (orphans
					// are retired by the next RC phase); flag only when no
					// link is disabled.
					if !n.anyDisabled() {
						return fmt.Errorf("r%d %s vc%d: orphan body flit pkt %d at front",
							r.id, PortName(p), v, f.f.PacketID)
					}
				}
			}
		}
		inFlits, parked := 0, 0
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				inFlits += r.inputs[p][v].size()
			}
			parked += len(r.outputs[p].entries)
		}
		if r.inFlits != inFlits || r.parked != parked {
			return fmt.Errorf("r%d: activity counters inFlits=%d parked=%d, actual %d/%d",
				r.id, r.inFlits, r.parked, inFlits, parked)
		}
	}
	return nil
}

// anyDisabled reports whether any link has been administratively disabled.
func (n *Network) anyDisabled() bool {
	for _, l := range n.links {
		if n.routers[l.From].outputs[l.FromPort].disabled {
			return true
		}
	}
	return false
}
