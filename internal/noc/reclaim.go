package noc

import "sort"

// Reconfiguration-time reclamation of truncated wormholes.
//
// Two mechanisms can cut a wormhole so that its tail can never reach the
// resources its head acquired:
//
//   - A drop trojan swallowing a TAIL flit in flight. The sender's
//     bookkeeping runs exactly as on a real delivery (the forged ACK is the
//     attack's cover), so the sending port releases its ownership — but
//     downstream, every input VC the packet still occupies stays
//     routed/allocated and every output VC it owns stays owned, forever.
//     Each such wormhole permanently wedges one VC per hop of its residual
//     path; under a sustained drop attack the wedges accumulate until the
//     victim's neighbourhood has no usable VCs left. The paper's baselines
//     live with this amplification (phaseRC's orphan retirement only cleans
//     beheaded packets, not betailed ones), but a recovery that claims to
//     restore service must clean it up.
//
//   - Disabling a link a wormhole was strung across. DisableLink drops the
//     upstream remainder committed to the dead port; the downstream part —
//     head and any bodies that already crossed — keeps waiting for a tail
//     that was just dropped.
//
// DisableLinkReclaim and ReclaimTruncated are the recovery-path repair for
// both: they purge every flit and every resource claim of packets that can
// no longer complete. Only reroute.ApplySafe (conviction-driven recovery)
// calls them; the oracle Rerouting baseline keeps the plain DisableLink
// semantics the paper's Figure 10 numbers are pinned to.

// DisableLinkReclaim disables a link like DisableLink and additionally
// purges every packet that was mid-flight across it. Ownership of a link's
// output VC is granted at VC allocation and released only when the tail
// crosses, so the owners at disable time are exactly the wormholes the
// reconfiguration cuts.
func (n *Network) DisableLinkReclaim(linkID int) int {
	l := n.links[linkID]
	op := n.routers[l.From].outputs[l.FromPort]
	var cut []uint64
	for _, own := range op.vcOwner {
		if own != 0 {
			cut = append(cut, own-1)
		}
	}
	n.DisableLink(linkID)
	dropped := 0
	for _, pkt := range cut {
		dropped += n.purgePacket(pkt)
	}
	return dropped
}

// ReclaimTruncated purges every packet that holds network resources but can
// never complete: it owns an output VC (or flits in some buffer) yet its
// tail flit no longer exists anywhere — swallowed by a drop trojan or
// dropped with a disabled link. A tail still waiting in an injection queue
// or buffer keeps its packet alive. Returns the number of flits discarded
// (booked as DroppedReconfig). O(network); reconfiguration-time only.
func (n *Network) ReclaimTruncated() int {
	n.wakeAll()
	live := map[uint64]bool{}
	holders := map[uint64]bool{}
	for _, r := range n.routers {
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				ivc := &r.inputs[p][v]
				for i := ivc.head; i < len(ivc.buf); i++ {
					f := &ivc.buf[i].f
					holders[f.PacketID] = true
					if f.IsTail() {
						live[f.PacketID] = true
					}
				}
			}
			op := r.outputs[p]
			for i := range op.entries {
				f := &op.entries[i].f
				holders[f.PacketID] = true
				if f.IsTail() {
					live[f.PacketID] = true
				}
			}
			for _, own := range op.vcOwner {
				if own != 0 {
					holders[own-1] = true
				}
			}
		}
	}
	for _, ni := range n.nis {
		for c := range ni.queues {
			for i := ni.heads[c]; i < len(ni.queues[c]); i++ {
				if f := &ni.queues[c][i]; f.IsTail() {
					live[f.PacketID] = true
				}
			}
		}
	}
	var doomed []uint64
	for pkt := range holders { //nocvet:orderfree doomed is sorted before use
		if !live[pkt] {
			doomed = append(doomed, pkt)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i] < doomed[j] })
	dropped := 0
	for _, pkt := range doomed {
		dropped += n.purgePacket(pkt)
	}
	return dropped
}

// purgePacket removes every flit and resource claim of one packet from the
// network: input-VC flits (with upstream credit refunds), parked
// retransmission entries (releasing the slot reserved at switch
// allocation), output VC ownerships, wormhole routing state, and any
// partial reassembly at the destination NI. Drops are booked as
// DroppedReconfig. All the audited relations (credit loops, occupancy and
// request masks, activity counters) are restored in the same breath.
func (n *Network) purgePacket(pkt uint64) int {
	dropped := 0
	for _, r := range n.routers {
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				ivc := &r.inputs[p][v]
				idx := r.occBit(p, v)
				if ivc.empty() {
					// Empty but possibly still held mid-stream: the wormhole
					// state persists head-to-tail even with nothing buffered.
					if ivc.routed && ivc.allocated &&
						r.outputs[ivc.route].vcOwner[ivc.outVC] == pkt+1 {
						r.unrouteInput(ivc.route, idx)
						ivc.routed, ivc.allocated = false, false
					}
					continue
				}
				frontWasPkt := ivc.front().f.PacketID == pkt
				// FIFO surgery: drop the packet's flits, keep everyone else's.
				rest := ivc.buf[ivc.head:]
				w := 0
				for i := range rest {
					if rest[i].f.PacketID != pkt {
						ivc.buf[w] = rest[i]
						w++
					}
				}
				removed := len(rest) - w
				if removed == 0 {
					continue
				}
				ivc.buf = ivc.buf[:w]
				ivc.head = 0
				r.loseIn(removed)
				dropped += removed
				if up := r.ups[p]; up != nil {
					up.credits[v] += removed // freed slots
				}
				if frontWasPkt {
					if ivc.routed {
						r.unrouteInput(ivc.route, idx)
					}
					ivc.routed, ivc.allocated = false, false
				}
				if ivc.empty() {
					r.clearOccupied(idx)
				}
			}
			op := r.outputs[p]
			w := 0
			for i := range op.entries {
				e := op.entries[i]
				if e.f.PacketID != pkt {
					op.entries[w] = e
					w++
					continue
				}
				if !op.ejection {
					op.credits[e.vc]++ // release the slot reserved at SA
				}
				dropped++
			}
			if removed := len(op.entries) - w; removed > 0 {
				op.entries = op.entries[:w]
				r.loseParked(removed)
			}
			for v := range op.vcOwner {
				if op.vcOwner[v] == pkt+1 {
					op.vcOwner[v] = 0
				}
			}
		}
	}
	for _, ni := range n.nis {
		if st, ok := ni.rx[pkt]; ok {
			delete(ni.rx, pkt)
			ni.rxFree = append(ni.rxFree, st)
		}
	}
	n.Counters.DroppedFlits += uint64(dropped)
	n.Counters.DroppedReconfig += uint64(dropped)
	return dropped
}
