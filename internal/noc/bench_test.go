package noc

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// stepLoad drives uniform random traffic into the network: each core flips a
// Bernoulli coin per cycle and, on success, injects a 5-flit packet to a
// uniformly chosen destination. Deterministic from the seed.
type stepLoad struct {
	n    *Network
	rng  *xrand.RNG
	rate float64
	// pkt is reused across injections: Inject's enqueue copies the flits
	// into the NI queue, so the packet (and its zeroed body) never escapes
	// and the driver itself stays allocation-free.
	pkt flit.Packet
}

func newStepLoad(n *Network, seed uint64, rate float64) *stepLoad {
	l := &stepLoad{n: n, rng: xrand.New(seed), rate: rate}
	l.pkt.Body = make([]uint64, 4) // 5-flit packet
	return l
}

func (l *stepLoad) inject() {
	cfg := l.n.Config()
	cores := cfg.Cores()
	for c := 0; c < cores; c++ {
		if !l.rng.Bool(l.rate) {
			continue
		}
		dst := l.rng.Intn(cores)
		if dst == c {
			continue
		}
		l.pkt.Hdr = flit.Header{
			VC:   uint8(l.rng.Intn(cfg.VCs)),
			DstR: uint8(cfg.CoreRouter(dst)),
			DstC: uint8(dst % cfg.Concentration),
			Mem:  uint32(l.rng.Uint64()),
		}
		l.n.Inject(c, &l.pkt)
	}
}

// benchUniform measures loaded Step on a size x size concentrated mesh under
// uniform traffic at the given per-core injection rate, reporting the mean
// number of in-network flits alongside the timing.
func benchUniform(b *testing.B, size int, rate float64) {
	cfg := DefaultConfig()
	cfg.Width, cfg.Height = size, size
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	load := newStepLoad(n, 1, rate)
	for i := 0; i < 1000; i++ { // warm up to steady state
		load.inject()
		n.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var inFlight uint64
	for i := 0; i < b.N; i++ {
		load.inject()
		n.Step()
		inFlight += uint64(n.sched.flitsIn + n.sched.flitsParked)
	}
	b.ReportMetric(float64(inFlight)/float64(b.N), "flits-in-flight")
}

// BenchmarkNetworkStep measures the simulator hot path: one whole-network
// clock cycle on the paper's 4x4 concentrated mesh. Run with -benchmem; the
// allocs/op figure is what internal/noc's allocation-budget test guards.
func BenchmarkNetworkStep(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		n, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Step()
		}
	})

	// uniform: sustained uniform random traffic at a moderate, non-saturating
	// rate. Includes the injection path, as production runs do. The size
	// variants scale the per-core rate down with the core count and the
	// longer average path, so the number of flits in flight — reported as a
	// metric — stays comparable across mesh sizes: with the event-driven
	// core, Step cost should track that metric, not the router count.
	b.Run("uniform", func(b *testing.B) { benchUniform(b, 4, 0.02) })
	b.Run("uniform-8x8", func(b *testing.B) { benchUniform(b, 8, 0.0034) })
	b.Run("uniform-16x16", func(b *testing.B) { benchUniform(b, 16, 0.00048) })

	// drain: pre-loaded network stepping with no new injection — the pure
	// Step cost with in-flight traffic.
	b.Run("drain", func(b *testing.B) {
		n, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		load := newStepLoad(n, 1, 0.05)
		for i := 0; i < 200; i++ {
			load.inject()
			n.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Step()
			if i%1000 == 999 {
				// Top the network back up so it never fully drains.
				b.StopTimer()
				for j := 0; j < 50; j++ {
					load.inject()
					n.Step()
				}
				b.StartTimer()
			}
		}
	})
}
