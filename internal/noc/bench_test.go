package noc

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// stepLoad drives uniform random traffic into the network: each core flips a
// Bernoulli coin per cycle and, on success, injects a 5-flit packet to a
// uniformly chosen destination. Deterministic from the seed.
type stepLoad struct {
	n    *Network
	rng  *xrand.RNG
	rate float64
}

func newStepLoad(n *Network, seed uint64, rate float64) *stepLoad {
	return &stepLoad{n: n, rng: xrand.New(seed), rate: rate}
}

func (l *stepLoad) inject() {
	cfg := l.n.Config()
	cores := cfg.Cores()
	for c := 0; c < cores; c++ {
		if !l.rng.Bool(l.rate) {
			continue
		}
		dst := l.rng.Intn(cores)
		if dst == c {
			continue
		}
		p := &flit.Packet{
			Hdr: flit.Header{
				VC:   uint8(l.rng.Intn(cfg.VCs)),
				DstR: uint8(cfg.CoreRouter(dst)),
				DstC: uint8(dst % cfg.Concentration),
				Mem:  uint32(l.rng.Uint64()),
			},
			Body: make([]uint64, 4), // 5-flit packet
		}
		l.n.Inject(c, p)
	}
}

// BenchmarkNetworkStep measures the simulator hot path: one whole-network
// clock cycle on the paper's 4x4 concentrated mesh. Run with -benchmem; the
// allocs/op figure is what internal/noc's allocation-budget test guards.
func BenchmarkNetworkStep(b *testing.B) {
	b.Run("idle", func(b *testing.B) {
		n, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Step()
		}
	})

	// uniform: sustained uniform random traffic at a moderate, non-saturating
	// rate. Includes the injection path, as production runs do.
	b.Run("uniform", func(b *testing.B) {
		n, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		load := newStepLoad(n, 1, 0.02)
		for i := 0; i < 500; i++ { // warm up to steady state
			load.inject()
			n.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			load.inject()
			n.Step()
		}
	})

	// drain: pre-loaded network stepping with no new injection — the pure
	// Step cost with in-flight traffic.
	b.Run("drain", func(b *testing.B) {
		n, err := New(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		load := newStepLoad(n, 1, 0.05)
		for i := 0; i < 200; i++ {
			load.inject()
			n.Step()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n.Step()
			if i%1000 == 999 {
				// Top the network back up so it never fully drains.
				b.StopTimer()
				for j := 0; j < 50; j++ {
					load.inject()
					n.Step()
				}
				b.StartTimer()
			}
		}
	})
}
