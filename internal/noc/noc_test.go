package noc

import (
	"strings"
	"testing"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
)

func mkNet(t *testing.T) *Network {
	t.Helper()
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func pkt(dstR, dstC int, vc uint8, body int) *flit.Packet {
	p := &flit.Packet{Hdr: flit.Header{VC: vc, DstR: uint8(dstR), DstC: uint8(dstC), Mem: 0x1000}}
	for i := 0; i < body; i++ {
		p.Body = append(p.Body, uint64(0xb0d7+i))
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*Config)
		wantErr string // substring of the error, "" = must validate
	}{
		{"default mesh", func(c *Config) {}, ""},
		{"explicit mesh", func(c *Config) { c.Topo = "mesh" }, ""},
		{"default torus", func(c *Config) { c.Topo = "torus" }, ""},
		{"default ring", func(c *Config) { c.Topo = "ring" }, ""},
		{"minimal ring", func(c *Config) { c.Topo = "ring"; c.Width, c.Height = 3, 1 }, ""},
		{"minimal mesh", func(c *Config) { c.Width, c.Height = 2, 2 }, ""},

		{"mesh too narrow", func(c *Config) { c.Width = 1 }, "at least 2x2"},
		{"mesh too short", func(c *Config) { c.Height = 1 }, "at least 2x2"},
		{"torus too narrow", func(c *Config) { c.Topo = "torus"; c.Width = 1 }, "at least 2x2"},
		{"ring too small", func(c *Config) { c.Topo = "ring"; c.Width, c.Height = 2, 1 }, "at least 3 routers"},
		{"unknown topology", func(c *Config) { c.Topo = "hypercube" }, "unknown topology"},
		{"torus one VC", func(c *Config) { c.Topo = "torus"; c.VCs = 1 }, "dateline"},
		{"ring one VC", func(c *Config) { c.Topo = "ring"; c.VCs = 1 }, "dateline"},
		{"5x4 mesh", func(c *Config) { c.Width, c.Height = 5, 4 }, ""},
		{"8x8 mesh", func(c *Config) { c.Width, c.Height = 8, 8 }, ""},
		{"8x8 torus", func(c *Config) { c.Topo = "torus"; c.Width, c.Height = 8, 8 }, ""},
		{"64-router ring", func(c *Config) { c.Topo = "ring"; c.Width, c.Height = 64, 1 }, ""},
		{"16x16 mesh", func(c *Config) { c.Width, c.Height = 16, 16 }, ""},
		{"32x32 mesh", func(c *Config) { c.Width, c.Height = 32, 32 }, "router"},
		{"zero concentration", func(c *Config) { c.Concentration = 0 }, "concentration"},
		{"concentration 8", func(c *Config) { c.Concentration = 8 }, ""},
		{"256 routers x8 cores overflow", func(c *Config) { c.Width, c.Height, c.Concentration = 16, 16, 8 }, "payload"},
		{"zero VCs", func(c *Config) { c.VCs = 0 }, "VCs must be 1..8"},
		{"8 VCs", func(c *Config) { c.VCs = 8 }, ""},
		{"oversize VCs", func(c *Config) { c.VCs = 9 }, "VCs must be 1..8"},
		{"zero BufDepth", func(c *Config) { c.BufDepth = 0 }, "BufDepth"},
		{"zero RetransDepth", func(c *Config) { c.RetransDepth = 0 }, "RetransDepth"},
		{"zero InjQueueCap", func(c *Config) { c.InjQueueCap = 0 }, "InjQueueCap"},
		{"zero RetransPenalty", func(c *Config) { c.RetransPenalty = 0 }, "RetransPenalty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			tc.mut(&c)
			err := c.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("valid config rejected: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("invalid config accepted")
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestMeshWiring(t *testing.T) {
	n := mkNet(t)
	links := n.Links()
	// 4x4 mesh: 2*(3*4) horizontal + 2*(3*4) vertical = 48 directed links.
	if len(links) != 48 {
		t.Fatalf("want 48 links, got %d", len(links))
	}
	seen := map[[2]int]bool{}
	for _, l := range links {
		if seen[[2]int{l.From, l.To}] {
			t.Fatalf("duplicate link %v", l)
		}
		seen[[2]int{l.From, l.To}] = true
		fx, fy := n.cfg.XY(l.From)
		tx, ty := n.cfg.XY(l.To)
		if ab(fx-tx)+ab(fy-ty) != 1 {
			t.Fatalf("link %v connects non-adjacent routers", l)
		}
	}
}

func ab(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestXYRouting(t *testing.T) {
	c := DefaultConfig()
	r := XYRoute(c)
	// Router 0 is at (0,0); router 15 at (3,3). X first.
	if got := r(0, 15); got != PortEast {
		t.Fatalf("0->15 first hop %s, want east", PortName(got))
	}
	if got := r(3, 15); got != PortNorth { // router 3 = (3,0): x aligned
		t.Fatalf("3->15 hop %s, want north", PortName(got))
	}
	if got := r(15, 15); got != PortLocal {
		t.Fatalf("15->15 hop %s, want local", PortName(got))
	}
	if got := r(5, 4); got != PortWest {
		t.Fatalf("5->4 hop %s, want west", PortName(got))
	}
	if got := r(12, 0); got != PortSouth {
		t.Fatalf("12->0 hop %s, want south", PortName(got))
	}
}

func TestSingleFlitDelivery(t *testing.T) {
	n := mkNet(t)
	var gotLat uint64
	var gotDst flit.Header
	n.SetDelivered(func(d Delivery) {
		gotLat = d.Latency
		gotDst = d.Hdr
	})
	if !n.Inject(0, pkt(15, 3, 0, 0)) {
		t.Fatal("inject failed")
	}
	n.Run(100)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatalf("delivered %d packets", n.Counters.DeliveredPackets)
	}
	if gotDst.DstR != 15 || gotDst.DstC != 3 {
		t.Fatalf("wrong destination header: %v", gotDst)
	}
	// 6 hops (0->1->2->3->7->11->15) plus ejection, ~5 cycles per hop.
	if gotLat < 12 || gotLat > 60 {
		t.Fatalf("latency %d cycles implausible for a 6-hop path", gotLat)
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	lat := func(dst int) uint64 {
		n := mkNet(t)
		n.Inject(0, pkt(dst, 0, 0, 0))
		n.Run(150)
		if n.Counters.DeliveredPackets != 1 {
			t.Fatalf("dst %d: not delivered", dst)
		}
		return n.Counters.LatencySum
	}
	l1, l3, l15 := lat(1), lat(3), lat(15)
	if !(l1 < l3 && l3 < l15) {
		t.Fatalf("latency not monotone with distance: %d %d %d", l1, l3, l15)
	}
}

func TestMultiFlitWormholeDelivery(t *testing.T) {
	n := mkNet(t)
	n.Inject(0, pkt(10, 1, 2, 4)) // 5-flit packet on VC 2
	n.Run(200)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatalf("delivered %d packets", n.Counters.DeliveredPackets)
	}
	if n.Counters.DeliveredFlits < 5 {
		t.Fatalf("delivered %d flits, want >= 5", n.Counters.DeliveredFlits)
	}
}

func TestManyPacketsAllDelivered(t *testing.T) {
	n := mkNet(t)
	want := 0
	for core := 0; core < n.cfg.Cores(); core++ {
		for i := 0; i < 3; i++ {
			dst := (core*7 + i*13) % n.cfg.Routers()
			if n.Inject(core, pkt(dst, core%4, uint8(i%n.cfg.VCs), i%3)) {
				want++
			}
		}
	}
	n.Run(3000)
	if got := int(n.Counters.DeliveredPackets); got != want {
		t.Fatalf("delivered %d of %d packets", got, want)
	}
	if n.Counters.InjectedFlits != n.Counters.DeliveredFlits {
		t.Fatalf("flit conservation violated: injected %d delivered %d",
			n.Counters.InjectedFlits, n.Counters.DeliveredFlits)
	}
}

func TestSameVCPacketsStayOrdered(t *testing.T) {
	n := mkNet(t)
	var order []uint64
	n.SetDelivered(func(d Delivery) { order = append(order, d.ID) })
	// Two multi-flit packets from the same core on the same VC to the same
	// destination: wormhole + per-VC ordering must deliver them in order.
	n.Inject(0, pkt(5, 0, 1, 3))
	n.Inject(0, pkt(5, 0, 1, 3))
	n.Run(300)
	if len(order) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(order))
	}
	if order[0] > order[1] {
		t.Fatalf("same-VC packets reordered: %v", order)
	}
}

func TestInjectionQueueBackpressure(t *testing.T) {
	n := mkNet(t)
	ok, fail := 0, 0
	for i := 0; i < 100; i++ { // cap is 32 flits; single-flit packets
		if n.Inject(0, pkt(15, 0, 0, 0)) {
			ok++
		} else {
			fail++
		}
	}
	if ok == 0 || fail == 0 {
		t.Fatalf("expected both accepts and rejects, got ok=%d fail=%d", ok, fail)
	}
	if n.Counters.InjectFailures != uint64(fail) {
		t.Fatalf("failure counter %d != %d", n.Counters.InjectFailures, fail)
	}
}

func TestTransientFaultsAreAbsorbed(t *testing.T) {
	n := mkNet(t)
	// Put a noisy transient injector on every link.
	for _, l := range n.Links() {
		w := NewPlainWire()
		w.Tap = fault.NewTransient(2e-4, uint64(l.ID)+1)
		n.SetWire(l.ID, w)
	}
	want := 0
	for core := 0; core < 64; core += 3 {
		if n.Inject(core, pkt((core+29)%16, 0, uint8(core%4), 2)) {
			want++
		}
	}
	n.Run(3000)
	if got := int(n.Counters.DeliveredPackets); got != want {
		t.Fatalf("delivered %d of %d despite ECC", got, want)
	}
	if n.Counters.CorrectedFaults == 0 {
		t.Fatal("expected some corrected faults at BER 2e-4")
	}
}

// nackWire refuses every transmission: the degenerate worst-case trojan.
type nackWire struct{}

func (nackWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, TxResult) {
	return f, TxResult{OK: false}
}

func TestPersistentNACKBuildsBackPressure(t *testing.T) {
	n := mkNet(t)
	// Kill the link 0->1 (east out of the corner router).
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 0 && l.FromPort == PortEast {
			target = l
			break
		}
	}
	n.SetWire(target.ID, nackWire{})
	// Saturate with traffic that must cross the dead link.
	for cyc := 0; cyc < 2000; cyc++ {
		for core := 0; core < 4; core++ { // router 0's cores
			n.Inject(core, pkt(3, 0, uint8(core%4), 0))
		}
		n.Step()
	}
	o := n.Occupancy()
	if o.BlockedRouters == 0 {
		t.Fatal("no blocked routers despite a dead link under load")
	}
	if n.Counters.Retransmissions == 0 {
		t.Fatal("no retransmissions recorded")
	}
	if o.InjectionFlit == 0 {
		t.Fatal("injection queues drained despite a dead link")
	}
}

func TestDisabledLinkStopsTraffic(t *testing.T) {
	n := mkNet(t)
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 0 && l.FromPort == PortEast {
			target = l
			break
		}
	}
	n.DisableLink(target.ID)
	if !n.LinkDisabled(target.ID) {
		t.Fatal("link not reported disabled")
	}
	n.Inject(0, pkt(1, 0, 0, 0)) // XY would use the disabled link
	n.Run(300)
	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("packet crossed a disabled link")
	}
	if got := n.LinkOutput(target.ID).FlitsSent; got != 0 {
		t.Fatalf("disabled link sent %d flits", got)
	}
}

func TestReroutingAroundDisabledLink(t *testing.T) {
	n := mkNet(t)
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 0 && l.FromPort == PortEast {
			target = l
			break
		}
	}
	n.DisableLink(target.ID)
	// Install a detour: router 0 sends north first when heading east.
	base := XYRoute(n.cfg)
	n.SetRoute(func(router, dst int) int {
		if router == 0 && base(router, dst) == PortEast {
			return PortNorth
		}
		return base(router, dst)
	})
	n.Inject(0, pkt(1, 0, 0, 0))
	n.Run(300)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatal("detoured packet not delivered")
	}
}

func TestCreditsNeverExceedDepth(t *testing.T) {
	n := mkNet(t)
	for core := 0; core < 64; core += 2 {
		n.Inject(core, pkt((core+5)%16, 0, uint8(core%4), 3))
	}
	for i := 0; i < 500; i++ {
		n.Step()
		for _, r := range n.routers {
			for p := 0; p < NumPorts; p++ {
				for v, cr := range r.outputs[p].credits {
					if cr < 0 || cr > n.cfg.BufDepth {
						t.Fatalf("cycle %d r%d %s vc%d credit %d out of [0,%d]",
							n.cycle, r.id, PortName(p), v, cr, n.cfg.BufDepth)
					}
				}
				for v := range r.inputs[p] {
					if got := r.inputs[p][v].size(); got > n.cfg.BufDepth {
						t.Fatalf("input VC overflow: %d flits", got)
					}
				}
				if got := len(r.outputs[p].entries); got > n.cfg.RetransDepth {
					t.Fatalf("retrans overflow: %d entries", got)
				}
			}
		}
	}
}

func TestOccupancyQuiescentNetworkIsZero(t *testing.T) {
	n := mkNet(t)
	n.Run(50)
	o := n.Occupancy()
	if o.InputFlits+o.OutputFlits+o.InjectionFlit != 0 {
		t.Fatalf("idle network has occupancy %+v", o)
	}
	if o.BlockedRouters+o.AllCoresFull+o.HalfCoresFull != 0 {
		t.Fatalf("idle network reports pressure %+v", o)
	}
}

func TestLinkLoadCounters(t *testing.T) {
	n := mkNet(t)
	n.Inject(0, pkt(3, 0, 0, 0)) // along the bottom row: 0->1->2->3
	n.Run(200)
	used := 0
	for _, l := range n.Links() {
		if n.LinkOutput(l.ID).FlitsSent > 0 {
			used++
			if l.FromPort != PortEast {
				t.Fatalf("XY path 0->3 used non-east link %v", l)
			}
		}
	}
	if used != 3 {
		t.Fatalf("XY path 0->3 should use 3 links, used %d", used)
	}
}

func TestPlainWireCorrectsAndDrops(t *testing.T) {
	w := NewPlainWire()
	f := flit.Flit{Kind: flit.Single, Payload: 0x1234}
	// Healthy.
	got, res := w.Transmit(0, f, 0, 0)
	if !res.OK || got.Payload != f.Payload {
		t.Fatal("healthy wire mangled the flit")
	}
	// Single flip: corrected.
	w.Tap = fault.InjectorFunc(func(_ uint64, cw ecc.Codeword, _ fault.Framing) ecc.Codeword { return cw.Flip(9) })
	got, res = w.Transmit(0, f, 0, 0)
	if !res.OK || !res.Corrected || got.Payload != f.Payload {
		t.Fatalf("single-bit fault not corrected: %+v", res)
	}
	// Double flip: dropped.
	w.Tap = fault.InjectorFunc(func(_ uint64, cw ecc.Codeword, _ fault.Framing) ecc.Codeword { return cw.Flip(9).Flip(33) })
	_, res = w.Transmit(0, f, 0, 0)
	if res.OK {
		t.Fatal("double-bit fault not rejected")
	}
	if w.Corrected != 1 || w.Dropped != 1 {
		t.Fatalf("wire counters wrong: %+v", w)
	}
}

func TestMaxAttemptsAbandons(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxAttempts = 3
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var target LinkInfo
	for _, l := range n.Links() {
		if l.From == 0 && l.FromPort == PortEast {
			target = l
			break
		}
	}
	n.SetWire(target.ID, nackWire{})
	n.Inject(0, pkt(1, 0, 0, 0))
	n.Run(500)
	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("packet delivered through nack wire")
	}
	// The abandoned entry must leave the retransmission buffer so the port
	// is not permanently blocked.
	if got := len(n.LinkOutput(target.ID).entries); got != 0 {
		t.Fatalf("retrans buffer still holds %d entries after abandon", got)
	}
}
