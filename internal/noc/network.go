package noc

import (
	"fmt"
	"math/bits"

	"tasp/internal/fault"
	"tasp/internal/flit"
)

// LinkInfo describes one directed router-to-router link.
type LinkInfo struct {
	ID       int
	From     int // source router
	FromPort int // output port at the source
	To       int // destination router
	ToPort   int // input port at the destination
	// FromName is the topology's name for FromPort (e.g. "east", "cw").
	FromName string
}

// String renders the link for logs ("r5 east -> r6").
func (l LinkInfo) String() string {
	name := l.FromName
	if name == "" {
		name = PortName(l.FromPort)
	}
	return fmt.Sprintf("r%d %s -> r%d", l.From, name, l.To)
}

// Counters aggregates cumulative simulation statistics.
type Counters struct {
	InjectedPackets  uint64
	InjectedFlits    uint64
	DeliveredPackets uint64
	DeliveredFlits   uint64
	Retransmissions  uint64 // NACKed link traversals
	CorrectedFaults  uint64 // single-bit errors fixed by SECDED
	InjectFailures   uint64 // packets rejected by a full injection queue
	// DroppedFlits is the total of every flit loss, split by cause below:
	// DroppedFlits == DroppedRetrans + DroppedInFlight + DroppedOrphan +
	// DroppedReconfig always (audited by CheckInvariants). The split keeps
	// drop-attack accounting honest — mitigation-induced losses (giving up
	// after MaxAttempts, disabling a link) must not be conflated with
	// trojan-induced in-flight losses.
	DroppedFlits uint64
	// DroppedRetrans counts flits abandoned after MaxAttempts NACKed
	// traversals (retransmission exhaustion — mitigation-induced).
	DroppedRetrans uint64
	// DroppedInFlight counts flits an adversary swallowed on a link with a
	// forged ACK (trojan-induced; the drop-attack family).
	DroppedInFlight uint64
	// DroppedOrphan counts headless body/tail flits discarded at a buffer
	// front — collateral of whatever beheaded their packet (a disabled
	// link or a swallowed head).
	DroppedOrphan uint64
	// DroppedReconfig counts flits discarded when a link was
	// administratively disabled (rerouting reconfiguration).
	DroppedReconfig uint64
	LatencySum      uint64
	MaxLatency      uint64
}

// AvgLatency returns the mean end-to-end packet latency in cycles.
func (c Counters) AvgLatency() float64 {
	if c.DeliveredPackets == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.DeliveredPackets)
}

// Occupancy is a point-in-time utilisation snapshot, the quantity plotted in
// the paper's Figures 11 and 12.
type Occupancy struct {
	Cycle         uint64
	InputFlits    int // flits buffered across all input VC buffers
	OutputFlits   int // flits parked in retransmission buffers
	InjectionFlit int // flits waiting in core injection queues
	// BlockedRouters counts routers with at least one completely stalled
	// (full) non-local output retransmission buffer — back-pressure.
	BlockedRouters int
	// AllCoresFull counts routers whose every core injection queue is full.
	AllCoresFull int
	// HalfCoresFull counts routers with more than half their cores full.
	HalfCoresFull int
}

// Network is the whole simulated NoC.
type Network struct {
	cfg     Config
	layout  flit.Layout
	topo    Topology
	routers []*Router
	nis     []*NI
	links   []LinkInfo
	route   RouteFunc
	cycle   uint64

	// baseRoute is the topology's default route table installed at New;
	// Reset restores it after a SetRoute/SetAdaptiveRoute replacement.
	baseRoute RouteFunc
	// plainWires holds each link's original healthy PlainWire so Reset can
	// restore the post-New wiring without allocating.
	plainWires []*PlainWire

	adaptive     AdaptiveRouteFunc
	nextPacketID uint64
	Counters     Counters

	// routePristine is true while the installed route function is the
	// topology's deterministic default. Only then can the receiving side of
	// a link check route conformance (a head arriving on a port the route
	// function would not have chosen for its carried destination — the
	// misroute-trojan signature) without false positives; SetRoute and
	// SetAdaptiveRoute clear it, Reset restores it.
	routePristine bool

	// vcReclassed is set by ReclassifyVCs so Reset knows the dateline
	// VC-class tables were rebuilt for a reconfigured route table and must
	// be restored to the constructor's minimal-route values.
	vcReclassed bool

	// sched holds the per-phase active sets and global flit counters of
	// the event-driven core (see sched.go).
	sched *scheduler
	// sleepUntil is the next cycle at which any phase can make progress;
	// Step returns immediately for cycles before it. Zero means awake.
	sleepUntil uint64

	// refPacketFlits is the packet size used to judge "core full" bins.
	refPacketFlits int

	// schedule, when set, gates link traversals by (cycle, vc): TDM QoS
	// baselines partition link bandwidth between domains with it. A nil
	// schedule admits everything.
	schedule func(cycle uint64, vc uint8) bool

	// telemetry is the blocked-port tap (nil until EnableTelemetry).
	telemetry *LinkTelemetry

	// injScratch is the reusable flitisation buffer of Inject: enqueue
	// copies the flits into the NI queue, so the scratch never escapes and
	// the loaded injection path stays allocation-free.
	injScratch []flit.Flit
}

// New builds a network from the configuration, fully wired with healthy
// PlainWire links and the topology's deterministic deadlock-free routing.
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology()
	n := &Network{cfg: cfg, layout: cfg.Layout(), topo: topo, refPacketFlits: 5}
	n.route = RouteTable(topo)
	n.baseRoute = n.route
	n.routePristine = true
	R := topo.Routers()
	n.sched = newScheduler(R)
	for r := 0; r < R; r++ {
		ports := topo.NumPorts(r)
		if ports < 2 || ports > MaxPorts {
			return nil, fmt.Errorf("noc: topology %s declares %d ports on router %d (supported: 2..%d)",
				topo.Name(), ports, r, MaxPorts)
		}
		n.routers = append(n.routers, newRouter(r, cfg, ports))
		n.nis = append(n.nis, newNI(r, cfg, n.layout))
		n.routers[r].sched = n.sched
		n.nis[r].sched = n.sched
	}
	// The dateline VC-class tables (nil on the mesh): each link's output
	// port gets its own table, vcClass[dst] = the class a packet destined
	// for dst occupies in the downstream buffer of that specific link.
	_, restricted := topo.VCClass(0, topo.Links()[0].To, 0)
	for _, ls := range topo.Links() {
		id := len(n.links)
		n.links = append(n.links, LinkInfo{
			ID: id, From: ls.From, FromPort: ls.FromPort, To: ls.To, ToPort: ls.ToPort,
			FromName: topo.PortName(ls.From, ls.FromPort),
		})
		op := n.routers[ls.From].outputs[ls.FromPort]
		op.linkID = id
		pw := NewPlainWire()
		n.plainWires = append(n.plainWires, pw)
		op.wire = pw
		if restricted {
			op.vcClass = make([]uint8, R)
			for d := 0; d < R; d++ {
				c, _ := topo.VCClass(ls.From, ls.To, d)
				op.vcClass[d] = uint8(c)
			}
		}
		n.routers[ls.To].ups[ls.ToPort] = op
	}
	return n, nil
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Layout returns the flit-header layout the network encodes packets with
// (derived from the configuration at construction).
func (n *Network) Layout() flit.Layout { return n.layout }

// Topology returns the network's substrate.
func (n *Network) Topology() Topology { return n.topo }

// Cycle returns the current simulation time.
func (n *Network) Cycle() uint64 { return n.cycle }

// Links returns a fresh copy of the descriptors of every directed
// router-to-router link. The copy is safe to retain and mutate, but it
// allocates on every call — hot-loop callers (telemetry consumers, the
// localization layer, per-point campaign setup) should use LinkSlice.
func (n *Network) Links() []LinkInfo { return append([]LinkInfo(nil), n.links...) }

// LinkSlice returns the network's link descriptors as a shared, read-only
// slice: the non-allocating accessor for hot loops. The slice is owned by
// the network and must not be modified or resized by callers; it is stable
// for the network's lifetime (links are fixed at construction and survive
// Reset).
func (n *Network) LinkSlice() []LinkInfo { return n.links }

// Reset restores a constructed network to its post-New state without
// allocating: buffers and retransmission entries are emptied, scheduler
// bitmaps and counters cleared, per-link wires restored to their original
// healthy PlainWires, disabled links revived, the topology's default route
// table reinstalled, and all clocks rewound to zero. An attached telemetry
// tap survives (observation-only state) but is cleared; delivery callbacks
// and TDM schedules are removed. A reset network is behaviourally
// indistinguishable from a freshly constructed one — the campaign engine's
// per-worker arenas lean on exactly that equivalence to reuse networks
// across scenario points instead of reallocating.
func (n *Network) Reset() {
	n.cycle = 0
	n.nextPacketID = 0
	n.Counters = Counters{}
	n.route = n.baseRoute
	n.routePristine = true
	n.adaptive = nil
	n.schedule = nil
	n.refPacketFlits = 5
	n.resetSleep()
	n.sched.reset()
	for _, r := range n.routers {
		r.reset(n.cfg)
	}
	for _, ni := range n.nis {
		ni.reset()
	}
	for i := range n.links {
		l := n.links[i]
		pw := n.plainWires[i]
		pw.Tap = fault.None
		pw.Corrected, pw.Dropped, pw.Swallowed = 0, 0, 0
		n.routers[l.From].outputs[l.FromPort].wire = pw
	}
	if n.vcReclassed {
		for i := range n.links {
			l := &n.links[i]
			op := n.routers[l.From].outputs[l.FromPort]
			for d := range op.vcClass {
				c, _ := n.topo.VCClass(l.From, l.To, d)
				op.vcClass[d] = uint8(c)
			}
		}
		n.vcReclassed = false
	}
	if n.telemetry != nil {
		n.telemetry.Reset()
	}
}

// LinkOutput returns the output port driving the given link, exposing its
// per-link counters.
func (n *Network) LinkOutput(linkID int) *outputPort {
	l := n.links[linkID]
	return n.routers[l.From].outputs[l.FromPort]
}

// SetWire replaces the Wire of one link (to install a compromised or secured
// link). It panics on an invalid link id.
func (n *Network) SetWire(linkID int, w Wire) {
	n.wakeAll()
	l := n.links[linkID]
	n.routers[l.From].outputs[l.FromPort].wire = w
}

// Wire returns the current Wire of a link.
func (n *Network) Wire(linkID int) Wire {
	l := n.links[linkID]
	return n.routers[l.From].outputs[l.FromPort].wire
}

// DisableLink marks a link permanently failed: the switch allocator stops
// granting flits to it. Used by the rerouting baseline after BIST flags a
// permanent fault. As in Ariadne-style reconfiguration, in-flight traffic
// committed to the dead link is dropped: the parked retransmission entries
// and any input-VC contents already routed toward the port. Orphaned body
// flits of truncated packets are discarded when they reach a buffer front
// (see phaseRC).
func (n *Network) DisableLink(linkID int) {
	n.wakeAll()
	l := n.links[linkID]
	r := n.routers[l.From]
	op := r.outputs[l.FromPort]
	op.disabled = true
	n.Counters.DroppedFlits += uint64(len(op.entries))
	n.Counters.DroppedReconfig += uint64(len(op.entries))
	r.loseParked(len(op.entries))
	op.entries = op.entries[:0]
	for v := range op.vcOwner {
		op.vcOwner[v] = 0
	}
	for p := 0; p < r.numPorts; p++ {
		for v := range r.inputs[p] {
			ivc := &r.inputs[p][v]
			if ivc.routed && ivc.route == l.FromPort {
				dropped := ivc.clear()
				r.clearOccupied(r.occBit(p, v))
				r.unrouteInput(l.FromPort, r.occBit(p, v))
				n.Counters.DroppedFlits += uint64(dropped)
				n.Counters.DroppedReconfig += uint64(dropped)
				r.loseIn(dropped)
				if up := r.ups[p]; up != nil {
					up.credits[v] += dropped // freed slots
				}
				ivc.routed = false
				ivc.allocated = false
			}
		}
	}
}

// LinkDisabled reports whether the link has been disabled.
func (n *Network) LinkDisabled(linkID int) bool {
	l := n.links[linkID]
	return n.routers[l.From].outputs[l.FromPort].disabled
}

// LinkBlocked reports whether the link's output port is currently stalled:
// work is waiting for it and nothing has crossed for at least the configured
// stall threshold. The secure-ack monitor uses it to separate congestion
// (blocked ports explain missing deliveries) from in-flight loss (a growing
// sent/received gap on a link that is demonstrably flowing).
func (n *Network) LinkBlocked(linkID int) bool {
	stall := uint64(n.cfg.StallThreshold)
	if stall == 0 {
		stall = 50
	}
	n.repairIfAsleep()
	l := n.links[linkID]
	r := n.routers[l.From]
	op := r.outputs[l.FromPort]
	return !op.disabled && !r.idle() && n.cycle-op.lastProgress >= stall
}

// SetRoute replaces the routing function (rerouting baselines install
// fault-aware tables here) and clears any adaptive function. Route
// conformance checking stops: arrivals can no longer be validated against
// the default table.
func (n *Network) SetRoute(fn RouteFunc) {
	n.wakeAll()
	n.route, n.adaptive = fn, nil
	n.routePristine = false
}

// SetAdaptiveRoute installs a turn-model adaptive routing function: at RC
// time the router picks, among the candidates, the output with the most
// free downstream credits (ties broken by candidate order, so the first
// candidate is the deterministic fallback).
func (n *Network) SetAdaptiveRoute(fn AdaptiveRouteFunc) {
	n.wakeAll()
	n.adaptive = fn
	n.routePristine = false
	n.route = func(router, dst int) int {
		cands := fn(router, dst)
		best, bestScore := cands[0], -1<<30
		for _, p := range cands {
			op := n.routers[router].outputs[p]
			if op.disabled {
				continue
			}
			score := 0
			for _, c := range op.credits {
				score += c
			}
			score -= 2 * len(op.entries)
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		return best
	}
}

// SetLinkSchedule installs a TDM link-admission gate: a router-to-router
// traversal on virtual channel vc may only happen in cycles for which the
// schedule returns true. Ejection to the local NI is never gated.
func (n *Network) SetLinkSchedule(fn func(cycle uint64, vc uint8) bool) {
	n.wakeAll()
	n.schedule = fn
}

// SetDelivered installs a delivery callback on every NI.
func (n *Network) SetDelivered(fn func(d Delivery)) {
	for _, ni := range n.nis {
		ni.Delivered = fn
	}
}

// SetRefPacketFlits sets the packet size used for "core full" accounting.
func (n *Network) SetRefPacketFlits(flits int) { n.refPacketFlits = flits }

// Inject submits a packet from a core. The header's source fields are
// overwritten to match the core; the packet id and injection cycle are
// assigned here. It returns false (and counts an InjectFailure) when the
// core's injection queue cannot hold the packet.
func (n *Network) Inject(core int, p *flit.Packet) bool {
	n.wakeAll()
	r := n.cfg.CoreRouter(core)
	p.Hdr.SrcR = uint8(r)
	p.Hdr.SrcC = uint8(core % n.cfg.Concentration)
	p.ID = n.nextPacketID
	p.Inject = n.cycle
	fs := p.AppendFlits(n.injScratch[:0], n.layout)
	n.injScratch = fs[:0]
	if !n.nis[r].enqueue(core%n.cfg.Concentration, fs) {
		n.Counters.InjectFailures++
		return false
	}
	n.nextPacketID++
	n.Counters.InjectedPackets++
	n.Counters.InjectedFlits += uint64(len(fs))
	return true
}

// Step advances the whole network by one clock cycle. Phase order within a
// step models the 5-stage pipeline: SA/ST and VA and RC operate on state
// registered in earlier cycles, then LT moves flits across links (including
// the ECC/obfuscation/trojan path inside each Wire), then injection fills
// the local input ports.
func (n *Network) Step() {
	n.cycle++
	if n.cycle < n.sleepUntil {
		// Scheduled quiescence: every phase is provably a no-op until
		// sleepUntil (see scheduleSleep), so the cycle costs O(1). Stall
		// clocks are replayed by repairClocks before any observation.
		return
	}
	// Each phase iterates only its active set — the routers the old full
	// sweep would not have skipped — in the same ascending-id order, so
	// mid-phase interactions (credits returned upstream during SA, flits
	// deposited downstream during LT) happen exactly as under the sweep.
	// Per-word snapshots are safe: a phase only clears the bit of the
	// router it is processing, and a router woken mid-LT by a deposit is a
	// state no-op if visited (wake already refreshed its clocks).
	s := n.sched
	for wi, w := range s.actIn.w {
		for ; w != 0; w &= w - 1 {
			n.routers[wi<<6+bits.TrailingZeros64(w)].phaseSAST(n.cfg, n.cycle)
		}
	}
	for wi, w := range s.actIn.w {
		for ; w != 0; w &= w - 1 {
			n.routers[wi<<6+bits.TrailingZeros64(w)].phaseVA(n.cfg, n.layout)
		}
	}
	for wi, w := range s.actIn.w {
		for ; w != 0; w &= w - 1 {
			n.routers[wi<<6+bits.TrailingZeros64(w)].phaseRC(n.route, n.layout, n.cycle, &n.Counters)
		}
	}
	for wi := range s.actOut.w {
		w := s.actIn.w[wi] | s.actOut.w[wi] // LT also refreshes input-only routers
		for ; w != 0; w &= w - 1 {
			r := n.routers[wi<<6+bits.TrailingZeros64(w)]
			for p := 0; p < r.numPorts; p++ {
				op := r.outputs[p]
				if len(op.entries) == 0 {
					// Entry-free (or disabled, which implies entry-free)
					// ports only refresh their stall clock; skip the call.
					if op.disabled || !r.hasWorkFor(p) {
						op.lastProgress = n.cycle
					}
					continue
				}
				n.phaseLT(op)
			}
		}
	}
	for wi, w := range s.actNI.w {
		for ; w != 0; w &= w - 1 {
			i := wi<<6 + bits.TrailingZeros64(w)
			n.nis[i].inject(n.routers[i], n.cycle)
		}
	}
	// With no buffered or queued input flits and no TDM gate, the only
	// future event source is the retransmission buffers: compute the next
	// event and sleep through the gap.
	if s.flitsIn == 0 && s.flitsNI == 0 && n.schedule == nil {
		n.scheduleSleep()
	}
}

// Run advances the network by k cycles, fast-forwarding over scheduled
// quiescent stretches in O(1) instead of stepping through them.
func (n *Network) Run(k int) {
	target := n.cycle + uint64(k)
	for n.cycle < target {
		if n.sleepUntil > n.cycle+1 {
			// Jump to the last asleep cycle (or the target): the skipped
			// cycles are exact no-ops, and Step's increment lands on the
			// first cycle that can make progress.
			jump := n.sleepUntil - 1
			if jump > target {
				jump = target
			}
			n.cycle = jump
			if n.cycle >= target {
				return
			}
		}
		n.Step()
	}
}

// phaseLT attempts one link traversal on an output port: the first sendable
// retransmission-buffer entry crosses the Wire; on ACK it is retired and the
// flit deposited downstream, on NACK it waits RetransPenalty cycles and the
// attempt counter feeds the Wire's obfuscation escalation. Entries of a
// blocked VC may be overtaken by entries of other VCs (Figure 7's flit 3
// passing the stalled flit 2), but per-VC order is preserved for wormhole
// integrity.
func (n *Network) phaseLT(op *outputPort) {
	if op.disabled || len(op.entries) == 0 {
		// The port is stalled only if work is waiting for it somewhere in
		// the router and it cannot move; with no parked entries, check the
		// input side before declaring progress.
		if op.disabled || !n.routers[op.router].hasWorkFor(op.port) {
			op.lastProgress = n.cycle
		}
		if len(op.entries) == 0 {
			return
		}
	}
	var blocked [MaxVCs]bool // per-VC
	pick := -1
	for i := range op.entries {
		e := &op.entries[i]
		if blocked[e.vc] {
			continue
		}
		if e.nextTry > n.cycle || e.enqueuedAt >= n.cycle ||
			(!op.ejection && n.schedule != nil && !n.schedule(n.cycle, e.vc)) {
			blocked[e.vc] = true
			continue
		}
		pick = i
		break
	}
	if pick < 0 {
		return
	}
	e := &op.entries[pick]
	delivered, res := op.wire.Transmit(n.cycle, e.f, e.vc, e.attempts)
	if res.Corrected {
		n.Counters.CorrectedFaults++
	}
	if !res.OK {
		e.attempts++
		e.nextTry = n.cycle + uint64(n.cfg.RetransPenalty)
		op.Retransmissions++
		n.Counters.Retransmissions++
		if n.cfg.MaxAttempts > 0 && e.attempts >= n.cfg.MaxAttempts {
			if !op.ejection {
				op.credits[e.vc]++ // release the reserved downstream slot
			}
			if e.f.IsTail() {
				// The packet is done from this output's perspective: release
				// the VC ownership the head acquired at VA, exactly as a
				// delivered tail would, or the VC leaks forever.
				op.vcOwner[e.vc] = 0
			}
			n.Counters.DroppedFlits++
			n.Counters.DroppedRetrans++
			op.entries = append(op.entries[:pick], op.entries[pick+1:]...)
			n.routers[op.router].loseParked(1)
		}
		return
	}
	op.FlitsSent++
	op.lastProgress = n.cycle
	if delivered.IsTail() {
		op.vcOwner[e.vc] = 0
	}
	if res.Swallowed {
		// Forged ACK: the sender's bookkeeping above ran exactly as on a real
		// delivery (entry retired, FlitsSent counted, tail ownership released)
		// — that is the attack's cover. But nothing arrives downstream, so
		// the buffer slot reserved at switch allocation returns its credit
		// and the loss is booked as trojan-induced. The beheaded packet's
		// later flits cross normally and die as orphans at the downstream
		// buffer front (phaseRC).
		if !op.ejection {
			op.credits[e.vc]++
		}
		n.Counters.DroppedFlits++
		n.Counters.DroppedInFlight++
		op.entries = append(op.entries[:pick], op.entries[pick+1:]...)
		n.routers[op.router].loseParked(1)
		return
	}
	op.FlitsRecv++
	if op.ejection {
		n.Counters.DeliveredFlits++
		if done, lat := n.nis[op.router].receive(delivered, n.cycle); done {
			n.Counters.DeliveredPackets++
			n.Counters.LatencySum += lat
			if lat > n.Counters.MaxLatency {
				n.Counters.MaxLatency = lat
			}
		}
	} else {
		// The credit for this slot was already reserved at switch
		// allocation; deposit without touching the counter.
		l := n.links[op.linkID]
		if delivered.IsHead() && n.routePristine &&
			n.route(l.From, int(delivered.Header(n.layout).DstR)) != l.FromPort {
			// Route conformance: under the topology's deterministic default
			// table the sending router would never have granted this output
			// for the destination the header now carries — the signature of
			// an in-flight header rewrite (misroute trojan). The check lives
			// at the receiving end of the wire, downstream of the adversary.
			op.RouteViolations++
		}
		n.routers[l.To].deposit(l.ToPort, int(e.vc), bufFlit{
			f:       delivered,
			readyAt: n.cycle + 1 + uint64(res.Stall),
		}, n.cycle)
	}
	op.entries = append(op.entries[:pick], op.entries[pick+1:]...)
	n.routers[op.router].loseParked(1)
}

// Occupancy computes the utilisation snapshot the paper plots in Figures 11
// and 12.
func (n *Network) Occupancy() Occupancy {
	return n.OccupancyWhere(nil, nil)
}

// OccupancyWhere computes a filtered snapshot: only VCs with vcIn(vc) true
// and cores with coreIn(globalCoreID) true are counted (nil means all).
// TDM experiments use it to split utilisation per domain (Figure 12's D1
// and D2 series).
func (n *Network) OccupancyWhere(vcIn func(vc int) bool, coreIn func(core int) bool) Occupancy {
	allVC := func(int) bool { return true }
	allCore := func(int) bool { return true }
	if vcIn == nil {
		vcIn = allVC
	}
	if coreIn == nil {
		coreIn = allCore
	}
	stall := uint64(n.cfg.StallThreshold)
	if stall == 0 {
		stall = 50
	}
	n.repairIfAsleep() // make lastProgress exact inside a sleep stretch
	o := Occupancy{Cycle: n.cycle}
	for i, r := range n.routers {
		blocked := false
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				if vcIn(v) {
					o.InputFlits += r.inputs[p][v].size()
				}
			}
			op := r.outputs[p]
			for _, e := range op.entries {
				if vcIn(int(e.vc)) {
					o.OutputFlits++
				}
			}
			// Idle routers are skipped by Step, so their lastProgress
			// clocks are stale by design (wake refreshes them); with no
			// flits anywhere they cannot be blocked.
			if p != PortLocal && !op.disabled && !r.idle() && n.cycle-op.lastProgress >= stall {
				blocked = true
			}
		}
		if blocked {
			o.BlockedRouters++
		}
		full, cores := 0, 0
		for c := 0; c < n.cfg.Concentration; c++ {
			if !coreIn(i*n.cfg.Concentration + c) {
				continue
			}
			cores++
			o.InjectionFlit += n.nis[i].qlen(c)
			if n.nis[i].coreFull(c, n.refPacketFlits) {
				full++
			}
		}
		if cores > 0 && full == cores {
			o.AllCoresFull++
		}
		if cores > 0 && full*2 > cores {
			o.HalfCoresFull++
		}
	}
	return o
}

// DebugRetransVCs exposes the VCs of the entries currently parked in a
// link's retransmission buffer (testing/diagnostics only).
func (n *Network) DebugRetransVCs(linkID int) []uint8 {
	op := n.LinkOutput(linkID)
	var out []uint8
	for _, e := range op.entries {
		out = append(out, e.vc)
	}
	return out
}

// DebugDump renders the full buffer/credit/ownership state of every router
// whose buffers are non-empty — the tool for diagnosing wedged networks.
func (n *Network) DebugDump() string {
	var sb []byte
	app := func(format string, args ...interface{}) { sb = append(sb, []byte(fmt.Sprintf(format, args...))...) }
	for _, r := range n.routers {
		busy := false
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				if !r.inputs[p][v].empty() {
					busy = true
				}
			}
			if len(r.outputs[p].entries) > 0 {
				busy = true
			}
		}
		if !busy {
			continue
		}
		app("router %d:\n", r.id)
		for p := 0; p < r.numPorts; p++ {
			for v := range r.inputs[p] {
				ivc := &r.inputs[p][v]
				f := ivc.front()
				if f == nil {
					continue
				}
				app("  in %s vc%d: %d flits routed=%v route=%d alloc=%v front={pkt %d idx %d %v ready %d}\n",
					n.topo.PortName(r.id, p), v, ivc.size(), ivc.routed, ivc.route, ivc.allocated,
					f.f.PacketID, f.f.Index, f.f.Kind, f.readyAt)
			}
			op := r.outputs[p]
			if len(op.entries) > 0 || anyOwner(op.vcOwner) {
				app("  out %s: owner=%v credits=%v entries=", n.topo.PortName(r.id, p), op.vcOwner, op.credits)
				for _, e := range op.entries {
					app("{pkt %d idx %d vc%d att%d next%d} ", e.f.PacketID, e.f.Index, e.vc, e.attempts, e.nextTry)
				}
				app("\n")
			}
		}
	}
	return string(sb)
}

func anyOwner(o []uint64) bool {
	for _, v := range o {
		if v != 0 {
			return true
		}
	}
	return false
}
