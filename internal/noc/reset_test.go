package noc

import (
	"bytes"
	"fmt"
	"testing"

	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// resetScenario drives a deterministic mixed scenario — transient-fault
// wires on every link, a hostile NACK link, a mid-run link disable with a
// reroute, telemetry sampling and periodic occupancy snapshots — and renders
// everything observable into one byte trace: deliveries in order, occupancy
// samples, final counters, per-link telemetry aggregates. Two runs are
// behaviourally identical iff their traces are byte-identical.
func resetScenario(n *Network) []byte {
	var buf []byte
	rng := xrand.New(7)
	cfg := n.Config()
	for _, l := range n.LinkSlice() {
		w := NewPlainWire()
		w.Tap = fault.NewTransient(5e-4, uint64(l.ID)+11)
		n.SetWire(l.ID, w)
	}
	n.SetWire(7, nackWire{})
	tel := n.EnableTelemetry(32)
	n.SetDelivered(func(d Delivery) {
		buf = fmt.Appendf(buf, "d %d %d %d\n", d.ID, d.Flits, d.Latency)
	})
	pkt := flit.Packet{Body: make([]uint64, 3)}
	cores := cfg.Cores()
	for c := 0; c < 2500; c++ {
		for k := 0; k < 2; k++ {
			if !rng.Bool(0.3) {
				continue
			}
			core := rng.Intn(cores)
			dst := rng.Intn(cores)
			if dst == core {
				continue
			}
			pkt.Hdr = flit.Header{
				VC:   uint8(rng.Intn(cfg.VCs)),
				DstR: uint8(cfg.CoreRouter(dst)),
				DstC: uint8(dst % cfg.Concentration),
				Mem:  uint32(rng.Uint64()),
			}
			n.Inject(core, &pkt)
		}
		if c == 800 {
			// Mid-run reconfiguration: kill the hostile link and steer
			// around it, exercising the disabled flag and route swap that
			// Reset must undo.
			n.DisableLink(7)
			base := XYRoute(cfg)
			dead := n.LinkSlice()[7]
			divert := -1 // another live output port on the same router
			for _, l := range n.LinkSlice() {
				if l.From == dead.From && l.FromPort != dead.FromPort {
					divert = l.FromPort
					break
				}
			}
			n.SetRoute(func(router, dst int) int {
				if p := base(router, dst); router != dead.From || p != dead.FromPort {
					return p
				}
				return divert
			})
		}
		n.Step()
		if c%50 == 0 {
			tel.Sample()
			o := n.Occupancy()
			buf = fmt.Appendf(buf, "o %d %d %d %d %d %d\n",
				o.Cycle, o.InputFlits, o.OutputFlits, o.InjectionFlit, o.BlockedRouters, o.AllCoresFull)
		}
	}
	buf = fmt.Appendf(buf, "counters %+v\n", n.Counters)
	for id := 0; id < tel.Links(); id++ {
		fb, _ := tel.FirstBlocked(id)
		onset, _ := tel.Onset(id)
		buf = fmt.Appendf(buf, "t %d %d %d %d %.6f\n", id, fb, onset, tel.OnsetStreak(id), tel.BlockedFrac(id))
	}
	return buf
}

// TestResetByteIdenticalToFresh is the satellite contract: a reset network
// must be behaviourally indistinguishable from a freshly constructed one.
// The same hostile scenario runs on a fresh network, on the same network
// after Reset, and on a second fresh network; all three traces must match
// byte for byte.
func TestResetByteIdenticalToFresh(t *testing.T) {
	n := mkNet(t)
	first := resetScenario(n)
	n.Reset()
	afterReset := resetScenario(n)
	if !bytes.Equal(first, afterReset) {
		t.Fatalf("reset network diverged from its own fresh run:\nfresh %d bytes, reset %d bytes\nfirst difference near %d",
			len(first), len(afterReset), diffAt(first, afterReset))
	}
	fresh := resetScenario(mkNet(t))
	if !bytes.Equal(first, fresh) {
		t.Fatalf("fresh-vs-fresh runs diverged (driver is not deterministic); first difference near %d", diffAt(first, fresh))
	}
}

// TestResetReusesTelemetryTap verifies the arena path: re-enabling telemetry
// with the same shape returns the same cleared tap instead of allocating a
// new one, and a different depth still swaps in a fresh tap.
func TestResetReusesTelemetryTap(t *testing.T) {
	n := mkNet(t)
	tap := n.EnableTelemetry(32)
	tap.Sample()
	n.Reset()
	if got := n.EnableTelemetry(32); got != tap {
		t.Fatal("same-shape EnableTelemetry after Reset did not reuse the attached tap")
	}
	if tap.Samples() != 0 || tap.rows != 0 {
		t.Fatalf("reused tap retained samples: samples=%d rows=%d", tap.Samples(), tap.rows)
	}
	if got := n.EnableTelemetry(16); got == tap {
		t.Fatal("EnableTelemetry with a different depth must build a fresh tap")
	}
}

// TestResetAllocationBudget pins the whole arena cycle — a loaded run
// followed by Reset — at zero steady-state allocations, the property the
// campaign engine's 0 allocs/point contract stands on.
func TestResetAllocationBudget(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	load := newStepLoad(n, 1, 0.02)
	for warm := 0; warm < 3; warm++ { // establish buffer/freelist high-water marks
		for i := 0; i < 1200; i++ {
			load.inject()
			n.Step()
		}
		n.EnableTelemetry(32)
		n.Reset()
	}
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 400; i++ {
			load.inject()
			n.Step()
		}
		n.EnableTelemetry(32)
		n.Reset()
	})
	if avg > 0.05 {
		t.Fatalf("steady-state run+Reset cycle allocates %.3f times; the arena budget is 0", avg)
	}
	if n.Counters.InjectedPackets != 0 {
		t.Fatal("Reset left counters dirty")
	}
}

// TestLinkSliceDoesNotAllocate pins the hot-loop accessor at zero
// allocations and verifies it exposes the same descriptors Links copies.
func TestLinkSliceDoesNotAllocate(t *testing.T) {
	n := mkNet(t)
	if avg := testing.AllocsPerRun(100, func() { _ = n.LinkSlice() }); avg != 0 {
		t.Fatalf("LinkSlice allocates %.3f times per call", avg)
	}
	copied, shared := n.Links(), n.LinkSlice()
	if len(copied) != len(shared) {
		t.Fatalf("Links/LinkSlice length mismatch: %d vs %d", len(copied), len(shared))
	}
	for i := range shared {
		if copied[i] != shared[i] {
			t.Fatalf("link %d differs between Links and LinkSlice", i)
		}
	}
}

func diffAt(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
