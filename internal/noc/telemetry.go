package noc

// DefaultTelemetryDepth is the blocked-port history ring's default depth in
// samples.
const DefaultTelemetryDepth = 64

// LinkTelemetry is the per-router blocked-port telemetry tap: each router
// exposes, per output port (= per directed link), whether the port has made
// no progress for StallThreshold cycles while holding work — the same
// criterion Occupancy's BlockedRouters uses, but kept per link and over
// time. The tap stores a fixed-depth ring of per-sample blocked bitsets plus
// two cumulative aggregates (first-blocked cycle and blocked-sample count
// per link). Everything is preallocated at Enable time; Sample performs no
// allocations, per the simulator's steady-state allocation budget.
//
// The tap is observation-only: it reads router state and never perturbs the
// simulation, so enabling it cannot change any experiment's outcome.
type LinkTelemetry struct {
	net   *Network
	stall uint64

	// The history ring: depth rows, words uint64 words per row, one bit per
	// link. Row i of the ring is ring[i*words : (i+1)*words].
	depth int
	words int
	ring  []uint64
	// cycleOf[i] is the sample cycle of ring row i (0 = row unused).
	cycleOf []uint64
	head    int // next row to overwrite
	rows    int // rows filled so far (saturates at depth)

	samples      uint64
	firstBlocked []uint64 // link id -> cycle first sampled blocked (0 = never)
	blockedCount []uint64 // link id -> samples the link was blocked in

	// Blocked-streak tracking, the basis of Onset: warm-up congestion can
	// block a port for a sample or two long before any attack, so "first
	// ever blocked" is a poor outage-onset estimate. The start of the
	// longest contiguous blocked streak is robust to such transients.
	curStart []uint64 // start cycle of the running streak
	curLen   []uint64 // samples in the running streak (0 = unblocked now)
	bestAt   []uint64 // start cycle of the longest streak seen
	bestLen  []uint64 // samples in the longest streak seen (0 = never blocked)
}

// EnableTelemetry attaches a blocked-port telemetry tap with the given ring
// depth (<= 0 means DefaultTelemetryDepth) and returns it. When a tap of the
// same shape (depth and link count) is already attached it is cleared and
// reused in place — the memoized-ring path campaign arenas rely on to keep
// repeated same-topology points allocation-free; otherwise a fresh tap
// replaces the old one.
func (n *Network) EnableTelemetry(depth int) *LinkTelemetry {
	if depth <= 0 {
		depth = DefaultTelemetryDepth
	}
	stall := uint64(n.cfg.StallThreshold)
	if stall == 0 {
		stall = 50
	}
	words := (len(n.links) + 63) / 64
	if t := n.telemetry; t != nil && t.depth == depth && t.words == words && len(t.firstBlocked) == len(n.links) {
		t.stall = stall
		t.Reset()
		return t
	}
	t := &LinkTelemetry{
		net:          n,
		stall:        stall,
		depth:        depth,
		words:        words,
		ring:         make([]uint64, depth*words),
		cycleOf:      make([]uint64, depth),
		firstBlocked: make([]uint64, len(n.links)),
		blockedCount: make([]uint64, len(n.links)),
		curStart:     make([]uint64, len(n.links)),
		curLen:       make([]uint64, len(n.links)),
		bestAt:       make([]uint64, len(n.links)),
		bestLen:      make([]uint64, len(n.links)),
	}
	n.telemetry = t
	return t
}

// Telemetry returns the attached tap, or nil when telemetry is disabled.
func (n *Network) Telemetry() *LinkTelemetry { return n.telemetry }

// Reset clears every recorded sample — the ring, the cumulative per-link
// aggregates and the streak trackers — without allocating, returning the tap
// to its post-Enable state. Network.Reset calls it so an arena-reused
// network starts each scenario point with virgin telemetry.
func (t *LinkTelemetry) Reset() {
	for i := range t.ring {
		t.ring[i] = 0
	}
	for i := range t.cycleOf {
		t.cycleOf[i] = 0
	}
	t.head, t.rows, t.samples = 0, 0, 0
	for i := range t.firstBlocked {
		t.firstBlocked[i] = 0
		t.blockedCount[i] = 0
		t.curStart[i] = 0
		t.curLen[i] = 0
		t.bestAt[i] = 0
		t.bestLen[i] = 0
	}
}

// linkBlocked reports whether a link's driving output port is blocked right
// now: not disabled, its router holds work, and the port has made no
// progress for the stall threshold. Mirrors OccupancyWhere's BlockedRouters
// criterion (idle routers are skipped by Step so their progress clocks are
// stale by design; with no flits anywhere they cannot be blocked).
func (n *Network) linkBlocked(l LinkInfo, stall uint64) bool {
	r := n.routers[l.From]
	op := r.outputs[l.FromPort]
	return !op.disabled && !r.idle() && n.cycle-op.lastProgress >= stall
}

// Sample records one blocked-port snapshot at the network's current cycle.
// It allocates nothing.
func (t *LinkTelemetry) Sample() {
	n := t.net
	n.repairIfAsleep() // make lastProgress exact inside a sleep stretch
	row := t.ring[t.head*t.words : (t.head+1)*t.words]
	for i := range row {
		row[i] = 0
	}
	cycle := n.cycle
	for id := range n.links {
		if n.linkBlocked(n.links[id], t.stall) {
			row[id/64] |= 1 << (id % 64)
			t.blockedCount[id]++
			if t.firstBlocked[id] == 0 {
				t.firstBlocked[id] = cycle
			}
			if t.curLen[id] == 0 {
				t.curStart[id] = cycle
			}
			t.curLen[id]++
			if t.curLen[id] > t.bestLen[id] {
				t.bestLen[id] = t.curLen[id]
				t.bestAt[id] = t.curStart[id]
			}
		} else {
			t.curLen[id] = 0
		}
	}
	t.cycleOf[t.head] = cycle
	t.head = (t.head + 1) % t.depth
	if t.rows < t.depth {
		t.rows++
	}
	t.samples++
}

// Samples returns how many snapshots have been taken.
func (t *LinkTelemetry) Samples() uint64 { return t.samples }

// Links returns the number of links the tap observes.
func (t *LinkTelemetry) Links() int { return len(t.firstBlocked) }

// FirstBlocked returns the cycle the link was first sampled blocked and
// whether it ever was.
func (t *LinkTelemetry) FirstBlocked(link int) (uint64, bool) {
	return t.firstBlocked[link], t.firstBlocked[link] != 0
}

// Onset returns the start cycle of the link's longest contiguous blocked
// streak and whether the link ever blocked. Unlike FirstBlocked, it is
// robust to isolated pre-outage congestion blips: a one-sample warm-up
// stall cannot masquerade as the onset of a sustained saturation outage.
// Ties between equal-length streaks keep the earlier one.
func (t *LinkTelemetry) Onset(link int) (uint64, bool) {
	return t.bestAt[link], t.bestLen[link] != 0
}

// OnsetStreak returns the length, in samples, of the link's longest
// contiguous blocked streak (0 = never blocked).
func (t *LinkTelemetry) OnsetStreak(link int) uint64 { return t.bestLen[link] }

// BlockedFrac returns the fraction of all samples in which the link was
// blocked (0 when nothing has been sampled yet).
func (t *LinkTelemetry) BlockedFrac(link int) float64 {
	if t.samples == 0 {
		return 0
	}
	return float64(t.blockedCount[link]) / float64(t.samples)
}

// RecentBlockedFrac returns the fraction of the ring's retained samples (the
// trailing window of up to depth snapshots) in which the link was blocked —
// the "is it persistently blocked *now*" signal, as opposed to the all-time
// BlockedFrac.
func (t *LinkTelemetry) RecentBlockedFrac(link int) float64 {
	if t.rows == 0 {
		return 0
	}
	w, bit := link/64, uint(link%64)
	hits := 0
	for r := 0; r < t.rows; r++ {
		if t.ring[r*t.words+w]&(1<<bit) != 0 {
			hits++
		}
	}
	return float64(hits) / float64(t.rows)
}

// BlockedAt reports whether the link was blocked in the i-th most recent
// retained sample (i = 0 is the newest) and the cycle of that sample; ok is
// false when the ring does not retain that many samples.
func (t *LinkTelemetry) BlockedAt(link, i int) (blocked bool, cycle uint64, ok bool) {
	if i < 0 || i >= t.rows {
		return false, 0, false
	}
	r := ((t.head-1-i)%t.depth + t.depth) % t.depth
	w, bit := link/64, uint(link%64)
	return t.ring[r*t.words+w]&(1<<bit) != 0, t.cycleOf[r], true
}
