package noc

import (
	"fmt"
	"testing"

	"tasp/internal/flit"
	"tasp/internal/xrand"
)

// topoConfig returns the default platform on the named topology.
func topoConfig(topo string) Config {
	c := DefaultConfig()
	c.Topo = topo
	return c
}

func TestTopologyWiring(t *testing.T) {
	cases := []struct {
		topo      string
		links     int
		portsMin  int
		connected int // routers with every non-local port connected
	}{
		{"mesh", 48, 5, 4},   // only the 4 interior routers are fully connected
		{"torus", 64, 5, 16}, // wraparound closes every edge
		{"ring", 32, 3, 16},
	}
	for _, tc := range cases {
		t.Run(tc.topo, func(t *testing.T) {
			n, err := New(topoConfig(tc.topo))
			if err != nil {
				t.Fatal(err)
			}
			links := n.Links()
			if len(links) != tc.links {
				t.Fatalf("want %d links, got %d", tc.links, len(links))
			}
			topo := n.Topology()
			// Every link must be reciprocated: if a->b exists so does b->a.
			dir := map[[2]int]bool{}
			for _, l := range links {
				dir[[2]int{l.From, l.To}] = true
			}
			for _, l := range links {
				if !dir[[2]int{l.To, l.From}] {
					t.Fatalf("link %v has no reverse", l)
				}
			}
			full := 0
			for r := 0; r < topo.Routers(); r++ {
				ports := topo.NumPorts(r)
				if ports < tc.portsMin {
					t.Fatalf("router %d has %d ports, want >= %d", r, ports, tc.portsMin)
				}
				wired := 0
				for _, l := range links {
					if l.From == r {
						wired++
					}
				}
				if wired == ports-1 {
					full++
				}
			}
			if full != tc.connected {
				t.Fatalf("want %d fully connected routers, got %d", tc.connected, full)
			}
		})
	}
}

// TestTopologyRoutesMinimal follows the default route for every (src, dst)
// pair and checks it reaches the destination in exactly HopDist hops.
func TestTopologyRoutesMinimal(t *testing.T) {
	for _, topo := range Topologies() {
		t.Run(topo, func(t *testing.T) {
			n, err := New(topoConfig(topo))
			if err != nil {
				t.Fatal(err)
			}
			tp := n.Topology()
			next := neighborMap(n)
			R := tp.Routers()
			for s := 0; s < R; s++ {
				for d := 0; d < R; d++ {
					cur, hops := s, 0
					for cur != d {
						p := tp.Route(cur, d)
						if p == PortLocal {
							t.Fatalf("%s: route(%d,%d) ejects before arrival", topo, cur, d)
						}
						nb, ok := next[[2]int{cur, p}]
						if !ok {
							t.Fatalf("%s: route(%d,%d) uses unconnected port %d", topo, cur, d, p)
						}
						cur = nb
						if hops++; hops > R {
							t.Fatalf("%s: route %d->%d does not converge", topo, s, d)
						}
					}
					if want := tp.HopDist(s, d); hops != want {
						t.Fatalf("%s: route %d->%d took %d hops, HopDist says %d", topo, s, d, hops, want)
					}
					if tp.Route(d, d) != PortLocal {
						t.Fatalf("%s: route(%d,%d) != local", topo, d, d)
					}
				}
			}
		})
	}
}

// neighborMap indexes (router, output port) -> neighbor router.
func neighborMap(n *Network) map[[2]int]int {
	next := map[[2]int]int{}
	for _, l := range n.Links() {
		next[[2]int{l.From, l.FromPort}] = l.To
	}
	return next
}

// TestChannelDependencyAcyclic is the formal deadlock-freedom check: for
// every topology it builds the channel-dependency graph induced by the
// default route table over (link, VC class) resources — the buffer a packet
// occupies at each hop — and asserts it is acyclic. For the mesh this is
// the classic XY turn-restriction argument; for torus and ring it verifies
// that the dateline VC classes cut every wraparound ring's cycle.
func TestChannelDependencyAcyclic(t *testing.T) {
	for _, topo := range Topologies() {
		t.Run(topo, func(t *testing.T) {
			n, err := New(topoConfig(topo))
			if err != nil {
				t.Fatal(err)
			}
			tp := n.Topology()
			next := neighborMap(n)
			linkID := map[[2]int]int{}
			for _, l := range n.Links() {
				linkID[[2]int{l.From, l.FromPort}] = l.ID
			}
			type node struct{ link, class int }
			edges := map[node]map[node]bool{}
			R := tp.Routers()
			for s := 0; s < R; s++ {
				for d := 0; d < R; d++ {
					var path []node
					cur := s
					for cur != d {
						p := tp.Route(cur, d)
						nb := next[[2]int{cur, p}]
						cl, _ := tp.VCClass(cur, nb, d)
						path = append(path, node{linkID[[2]int{cur, p}], cl})
						cur = nb
					}
					for i := 1; i < len(path); i++ {
						a, b := path[i-1], path[i]
						if edges[a] == nil {
							edges[a] = map[node]bool{}
						}
						edges[a][b] = true
					}
				}
			}
			// DFS cycle detection.
			const (
				white = 0
				grey  = 1
				black = 2
			)
			color := map[node]int{}
			var visit func(u node) bool
			visit = func(u node) bool {
				color[u] = grey
				for v := range edges[u] {
					switch color[v] {
					case grey:
						return false
					case white:
						if !visit(v) {
							return false
						}
					}
				}
				color[u] = black
				return true
			}
			for u := range edges {
				if color[u] == white && !visit(u) {
					t.Fatalf("%s: channel-dependency graph has a cycle — routing is not deadlock-free", topo)
				}
			}
		})
	}
}

// uniformLoad drives deterministic uniform-random traffic into a network.
type uniformLoad struct {
	n    *Network
	rng  *xrand.RNG
	rate float64
	seq  uint8
}

func (u *uniformLoad) tick() {
	cfg := u.n.Config()
	R := cfg.Routers()
	for core := 0; core < cfg.Cores(); core++ {
		if !u.rng.Bool(u.rate) {
			continue
		}
		src := cfg.CoreRouter(core)
		dst := u.rng.Intn(R - 1)
		if dst >= src {
			dst++
		}
		u.seq++
		p := &flit.Packet{Hdr: flit.Header{
			VC:   uint8(u.rng.Intn(cfg.VCs)),
			DstR: uint8(dst),
			DstC: uint8(u.rng.Intn(cfg.Concentration)),
			Mem:  uint32(dst) << 24,
			Seq:  u.seq,
		}}
		if u.rng.Bool(0.4) {
			p.Body = []uint64{1, 2, 3, 4}
		}
		u.n.Inject(core, p)
	}
}

// TestDeadlockFreedomUnderLoad is the per-topology property test: sustained
// uniform-random traffic (no attack) must keep every router unblocked and
// keep delivering packets on mesh, torus and ring alike. Rates sit below
// each substrate's saturation point (the ring's bisection is 4 links, so
// its knee is far lower than the grid topologies').
func TestDeadlockFreedomUnderLoad(t *testing.T) {
	rates := map[string]float64{"mesh": 0.04, "torus": 0.04, "ring": 0.012}
	const (
		cycles = 6000
		window = 250
	)
	for _, topo := range Topologies() {
		t.Run(topo, func(t *testing.T) {
			n, err := New(topoConfig(topo))
			if err != nil {
				t.Fatal(err)
			}
			load := &uniformLoad{n: n, rng: xrand.New(0xd1ce), rate: rates[topo]}
			lastDelivered := uint64(0)
			for c := 0; c < cycles; c++ {
				load.tick()
				n.Step()
				if (c+1)%window != 0 {
					continue
				}
				if err := n.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", c+1, err)
				}
				o := n.Occupancy()
				if o.BlockedRouters != 0 {
					t.Fatalf("cycle %d: %d blocked routers under healthy load\n%s",
						c+1, o.BlockedRouters, n.DebugDump())
				}
				delivered := n.Counters.DeliveredPackets
				if c+1 > window && delivered <= lastDelivered {
					t.Fatalf("cycle %d: delivery stalled at %d packets", c+1, delivered)
				}
				lastDelivered = delivered
			}
			if n.Counters.DeliveredPackets == 0 {
				t.Fatal("no packets delivered")
			}
		})
	}
}

// TestDatelineVCRemap checks that a wrapping torus packet is carried in the
// class-0 VC half while its dateline crossing is still ahead and in the
// class-1 half from the crossing link onward, while a non-wrapping packet
// stays in class 1 throughout.
func TestDatelineVCRemap(t *testing.T) {
	tp := Torus{W: 4, H: 4}
	// Router 2 -> router 0 goes east through the wraparound (2 -> 3 -> 0):
	// distance 2 each way, ties break forward.
	if got := tp.Route(2, 0); got != PortEast {
		t.Fatalf("route(2,0) = %s, want east (wrap)", PortName(got))
	}
	// Link 2->3 is before the crossing: class 0. The wrap link 3->0 performs
	// the crossing, so its downstream buffer is class 1.
	if cl, _ := tp.VCClass(2, 3, 0); cl != 0 {
		t.Fatalf("class on link 2->3 = %d, want 0 (crossing ahead)", cl)
	}
	if cl, _ := tp.VCClass(3, 0, 0); cl != 1 {
		t.Fatalf("class on wrap link 3->0 = %d, want 1 (crossed)", cl)
	}
	// Router 0 -> 2 never wraps: class 1 on both hops.
	for _, l := range [][2]int{{0, 1}, {1, 2}} {
		if cl, _ := tp.VCClass(l[0], l[1], 2); cl != 1 {
			t.Fatalf("non-wrapping flow: class on link %d->%d = %d, want 1", l[0], l[1], cl)
		}
	}

	// End to end: inject on VC 3 at router 2 toward router 0. With the
	// lane-preserving remap v%2 + class*2, link 2->3 must carry the flit in
	// the class-0 half (VC 1) and the wrap link 3->0 in the class-1 half
	// (VC 3).
	n, err := New(topoConfig("torus"))
	if err != nil {
		t.Fatal(err)
	}
	preLink, wrapLink := -1, -1
	for _, l := range n.Links() {
		switch {
		case l.From == 2 && l.To == 3:
			preLink = l.ID
		case l.From == 3 && l.To == 0:
			wrapLink = l.ID
		}
	}
	if preLink < 0 || wrapLink < 0 {
		t.Fatal("missing 2->3 or 3->0 link")
	}
	pre, wrap := n.LinkOutput(preLink), n.LinkOutput(wrapLink)
	seenPre, seenWrap := map[uint8]bool{}, map[uint8]bool{}
	p := &flit.Packet{Hdr: flit.Header{VC: 3, DstR: 0}}
	n.Inject(8, p) // core 8 sits on router 2
	for c := 0; c < 60; c++ {
		for _, e := range pre.entries {
			seenPre[e.vc] = true
		}
		for _, e := range wrap.entries {
			seenWrap[e.vc] = true
		}
		n.Step()
	}
	if n.Counters.DeliveredPackets != 1 {
		t.Fatalf("packet not delivered (delivered=%d)", n.Counters.DeliveredPackets)
	}
	if !seenPre[1] || seenPre[3] {
		t.Fatalf("link 2->3 carried VCs %v, want the class-0 lane VC 1 only", seenPre)
	}
	if !seenWrap[3] || seenWrap[1] {
		t.Fatalf("wrap link carried VCs %v, want the class-1 lane VC 3 only", seenWrap)
	}
}

// TestTopologyNames pins the registry and the port naming of each topology.
func TestTopologyNames(t *testing.T) {
	if got := fmt.Sprintf("%v", Topologies()); got != "[mesh torus ring]" {
		t.Fatalf("Topologies() = %s", got)
	}
	if _, err := NewTopology("hypercube", 4, 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
	g := Ring{N: 8}
	for p, want := range map[int]string{PortLocal: "local", PortCW: "cw", PortCCW: "ccw", 5: "port(5)"} {
		if got := g.PortName(0, p); got != want {
			t.Fatalf("ring port %d named %q, want %q", p, got, want)
		}
	}
	n, err := New(topoConfig("ring"))
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Links()[0].String(); got != "r0 cw -> r1" {
		t.Fatalf("ring link label = %q", got)
	}
}
