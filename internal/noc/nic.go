package noc

import "tasp/internal/flit"

// NI is the network interface of one router tile: per-core injection queues
// feeding the router's local input port through a concentrator, and packet
// reassembly on the ejection side.
// Delivery describes one fully reassembled packet at its destination NI.
type Delivery struct {
	ID      uint64      // packet id
	Hdr     flit.Header // the head flit's routing header
	Flits   int         // packet length
	Latency uint64      // injection-to-tail cycles
}

// NI is the network interface of one router tile: per-core injection queues
// feeding the router's local input port through a concentrator, and packet
// reassembly on the ejection side.
//
// Each per-core queue uses head-index ring semantics (see inputVC): inject
// consumes by advancing heads[core] rather than re-slicing, and enqueue
// compacts the live region when the backing array runs out, so the steady
// state allocates nothing.
type NI struct {
	router  int
	cfg     Config
	layout  flit.Layout
	queues  [][]flit.Flit // one per local core, flit granularity
	heads   []int         // per-core front index into queues[core]
	total   int           // flits waiting across all queues
	injLock []int         // vc -> core currently injecting a packet, -1 free
	rrCore  int           // concentrator round-robin pointer

	rx     map[uint64]*rxState // packet id -> reassembly state
	rxFree []*rxState          // recycled reassembly states

	// sched is the network's event-driven scheduler; gain/lose (sched.go)
	// mirror total into its injection active set. Set by Network.New.
	sched *scheduler

	// Delivered is invoked for each fully reassembled packet. May be nil.
	Delivered func(d Delivery)
}

// rxState tracks one packet's reassembly.
type rxState struct {
	hdr   flit.Header
	flits int
}

func newNI(router int, cfg Config, layout flit.Layout) *NI {
	ni := &NI{
		router:  router,
		cfg:     cfg,
		layout:  layout,
		queues:  make([][]flit.Flit, cfg.Concentration),
		heads:   make([]int, cfg.Concentration),
		injLock: make([]int, cfg.VCs),
		rx:      map[uint64]*rxState{},
	}
	for c := range ni.queues {
		ni.queues[c] = make([]flit.Flit, 0, cfg.InjQueueCap)
	}
	for v := range ni.injLock {
		ni.injLock[v] = -1
	}
	return ni
}

// reset empties the injection queues, releases VC locks, recycles in-flight
// reassembly states and removes the delivery callback, restoring the
// post-newNI state without allocating (beyond the bounded rxFree growth the
// recycle list already performs). Network.Reset only.
func (ni *NI) reset() {
	for c := range ni.queues {
		ni.queues[c] = ni.queues[c][:0]
		ni.heads[c] = 0
	}
	for v := range ni.injLock {
		ni.injLock[v] = -1
	}
	ni.rrCore = 0
	for id, st := range ni.rx { //nocvet:orderfree drains the map; recycled states are fully overwritten before reuse, so recycle order is unobservable
		delete(ni.rx, id)
		//nocvet:allowalloc bounded: rxFree holds at most the concurrent-reassembly high-water mark of recycled states
		ni.rxFree = append(ni.rxFree, st)
	}
	ni.Delivered = nil
	ni.resetActivity()
}

// qlen returns the number of flits waiting in one core's injection queue.
func (ni *NI) qlen(core int) int { return len(ni.queues[core]) - ni.heads[core] }

// enqueue appends a packet's flits to the core-local injection queue if the
// whole packet fits; otherwise it reports failure and queues nothing (the
// source must retry — this is how full cores throttle, and what the paper's
// "cores full" bins measure).
func (ni *NI) enqueue(core int, fs []flit.Flit) bool {
	if ni.qlen(core)+len(fs) > ni.cfg.InjQueueCap {
		return false
	}
	q, h := ni.queues[core], ni.heads[core]
	if h > 0 && len(q)+len(fs) > cap(q) {
		n := copy(q, q[h:])
		q = q[:n]
		ni.heads[core] = 0
	}
	//nocvet:allowalloc bounded: qlen admission caps occupancy at InjQueueCap and the queue is pre-sized to it
	ni.queues[core] = append(q, fs...)
	ni.gain(len(fs))
	return true
}

// coreFull reports whether a core's injection queue cannot accept a packet
// of the given flit count.
func (ni *NI) coreFull(core, packetFlits int) bool {
	return ni.qlen(core)+packetFlits > ni.cfg.InjQueueCap
}

// occupancy returns the total flits waiting across this NI's queues.
func (ni *NI) occupancy() int { return ni.total }

// fullCores returns how many of the NI's cores have (nearly) full queues:
// a queue is "full" when it cannot accept another maximal packet.
func (ni *NI) fullCores(packetFlits int) int {
	n := 0
	for c := range ni.queues {
		if ni.coreFull(c, packetFlits) {
			n++
		}
	}
	return n
}

// inject moves at most one flit from the concentrator into the router's
// local input port (the BW stage of the injection path). Wormhole integrity
// across cores sharing a VC is preserved by injLock: once a core's head flit
// enters VC v, other cores may not interleave flits on v until the tail.
func (ni *NI) inject(r *Router, cycle uint64) bool {
	for k := 0; k < ni.cfg.Concentration; k++ {
		core := (ni.rrCore + k) % ni.cfg.Concentration
		if ni.qlen(core) == 0 {
			continue
		}
		f := ni.queues[core][ni.heads[core]]
		v := int(f.Header(ni.layout).VC)
		if !f.IsHead() {
			// Body/tail flits ride the VC their head locked.
			v = ni.lockedVC(core)
			if v < 0 {
				continue // should not happen; skip defensively
			}
		} else if ni.injLock[v] != -1 && ni.injLock[v] != core {
			continue // VC locked by another core's in-flight packet
		}
		if r.inputs[PortLocal][v].size() >= ni.cfg.BufDepth {
			continue
		}
		r.deposit(PortLocal, v, bufFlit{f: f, readyAt: cycle + 1}, cycle)
		ni.heads[core]++
		if ni.heads[core] == len(ni.queues[core]) {
			ni.queues[core] = ni.queues[core][:0]
			ni.heads[core] = 0
		}
		ni.lose(1)
		if f.IsHead() && !f.IsTail() {
			ni.injLock[v] = core
		}
		if f.IsTail() {
			if v >= 0 && ni.injLock[v] == core {
				ni.injLock[v] = -1
			}
		}
		ni.rrCore = core + 1
		return true
	}
	return false
}

// lockedVC returns the VC a core currently holds an injection lock on.
func (ni *NI) lockedVC(core int) int {
	for v, c := range ni.injLock {
		if c == core {
			return v
		}
	}
	return -1
}

// receive accepts an ejected flit and completes reassembly on the tail.
// Retired rxStates are recycled through a free list so steady-state
// delivery does not allocate.
func (ni *NI) receive(f flit.Flit, cycle uint64) (done bool, latency uint64) {
	st := ni.rx[f.PacketID]
	if st == nil {
		if k := len(ni.rxFree); k > 0 {
			st = ni.rxFree[k-1]
			ni.rxFree = ni.rxFree[:k-1]
			*st = rxState{}
		} else {
			st = &rxState{} //nocvet:allowalloc cold: only before the rxFree recycle list has warmed up to the live-packet high-water mark
		}
		ni.rx[f.PacketID] = st
	}
	st.flits++
	if f.IsHead() {
		st.hdr = f.Header(ni.layout)
	}
	if !f.IsTail() {
		return false, 0
	}
	delete(ni.rx, f.PacketID)
	//nocvet:allowalloc bounded: rxFree holds at most the concurrent-reassembly high-water mark of recycled states
	ni.rxFree = append(ni.rxFree, st)
	lat := cycle - f.InjectAt
	if ni.Delivered != nil {
		ni.Delivered(Delivery{ID: f.PacketID, Hdr: st.hdr, Flits: st.flits, Latency: lat})
	}
	return true, lat
}
