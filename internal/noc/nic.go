package noc

import "tasp/internal/flit"

// NI is the network interface of one router tile: per-core injection queues
// feeding the router's local input port through a concentrator, and packet
// reassembly on the ejection side.
// Delivery describes one fully reassembled packet at its destination NI.
type Delivery struct {
	ID      uint64      // packet id
	Hdr     flit.Header // the head flit's routing header
	Flits   int         // packet length
	Latency uint64      // injection-to-tail cycles
}

// NI is the network interface of one router tile: per-core injection queues
// feeding the router's local input port through a concentrator, and packet
// reassembly on the ejection side.
type NI struct {
	router  int
	cfg     Config
	queues  [][]flit.Flit // one per local core, flit granularity
	injLock []int         // vc -> core currently injecting a packet, -1 free
	rrCore  int           // concentrator round-robin pointer

	rx map[uint64]*rxState // packet id -> reassembly state

	// Delivered is invoked for each fully reassembled packet. May be nil.
	Delivered func(d Delivery)
}

// rxState tracks one packet's reassembly.
type rxState struct {
	hdr   flit.Header
	flits int
}

func newNI(router int, cfg Config) *NI {
	ni := &NI{
		router:  router,
		cfg:     cfg,
		queues:  make([][]flit.Flit, cfg.Concentration),
		injLock: make([]int, cfg.VCs),
		rx:      map[uint64]*rxState{},
	}
	for v := range ni.injLock {
		ni.injLock[v] = -1
	}
	return ni
}

// enqueue appends a packet's flits to the core-local injection queue if the
// whole packet fits; otherwise it reports failure and queues nothing (the
// source must retry — this is how full cores throttle, and what the paper's
// "cores full" bins measure).
func (ni *NI) enqueue(core int, fs []flit.Flit) bool {
	q := ni.queues[core]
	if len(q)+len(fs) > ni.cfg.InjQueueCap {
		return false
	}
	ni.queues[core] = append(q, fs...)
	return true
}

// coreFull reports whether a core's injection queue cannot accept a packet
// of the given flit count.
func (ni *NI) coreFull(core, packetFlits int) bool {
	return len(ni.queues[core])+packetFlits > ni.cfg.InjQueueCap
}

// occupancy returns the total flits waiting across this NI's queues.
func (ni *NI) occupancy() int {
	n := 0
	for _, q := range ni.queues {
		n += len(q)
	}
	return n
}

// fullCores returns how many of the NI's cores have (nearly) full queues:
// a queue is "full" when it cannot accept another maximal packet.
func (ni *NI) fullCores(packetFlits int) int {
	n := 0
	for c := range ni.queues {
		if ni.coreFull(c, packetFlits) {
			n++
		}
	}
	return n
}

// inject moves at most one flit from the concentrator into the router's
// local input port (the BW stage of the injection path). Wormhole integrity
// across cores sharing a VC is preserved by injLock: once a core's head flit
// enters VC v, other cores may not interleave flits on v until the tail.
func (ni *NI) inject(r *Router, cycle uint64) bool {
	for k := 0; k < ni.cfg.Concentration; k++ {
		core := (ni.rrCore + k) % ni.cfg.Concentration
		q := ni.queues[core]
		if len(q) == 0 {
			continue
		}
		f := q[0]
		v := int(f.Header().VC)
		if !f.IsHead() {
			// Body/tail flits ride the VC their head locked.
			v = ni.lockedVC(core)
			if v < 0 {
				continue // should not happen; skip defensively
			}
		} else if ni.injLock[v] != -1 && ni.injLock[v] != core {
			continue // VC locked by another core's in-flight packet
		}
		ivc := &r.inputs[PortLocal][v]
		if len(ivc.buf) >= ni.cfg.BufDepth {
			continue
		}
		ivc.buf = append(ivc.buf, bufFlit{f: f, readyAt: cycle + 1})
		ni.queues[core] = q[1:]
		if f.IsHead() && !f.IsTail() {
			ni.injLock[v] = core
		}
		if f.IsTail() {
			if v >= 0 && ni.injLock[v] == core {
				ni.injLock[v] = -1
			}
		}
		ni.rrCore = core + 1
		return true
	}
	return false
}

// lockedVC returns the VC a core currently holds an injection lock on.
func (ni *NI) lockedVC(core int) int {
	for v, c := range ni.injLock {
		if c == core {
			return v
		}
	}
	return -1
}

// receive accepts an ejected flit and completes reassembly on the tail.
func (ni *NI) receive(f flit.Flit, cycle uint64) (done bool, latency uint64) {
	st := ni.rx[f.PacketID]
	if st == nil {
		st = &rxState{}
		ni.rx[f.PacketID] = st
	}
	st.flits++
	if f.IsHead() {
		st.hdr = f.Header()
	}
	if !f.IsTail() {
		return false, 0
	}
	delete(ni.rx, f.PacketID)
	lat := cycle - f.InjectAt
	if ni.Delivered != nil {
		ni.Delivered(Delivery{ID: f.PacketID, Hdr: st.hdr, Flits: st.flits, Latency: lat})
	}
	return true, lat
}
