// Package noc is a cycle-accurate simulator of the paper's evaluation
// platform: a concentrated 4x4 mesh (16 routers x 4 cores = 64 cores) of
// virtual-channel wormhole routers with a 5-stage pipeline (BW/RC, VA, SA,
// ST, LT), credit-based flow control, XY dimension-order routing with
// round-robin arbitration, SECDED-protected links and switch-to-switch
// retransmission with the retransmission buffers placed after the crossbar
// (the paper's stated worst case).
//
// The substrate is pluggable through the Topology interface: besides the
// paper's mesh, a torus (wraparound links, dateline VC classes for deadlock
// freedom) and a bidirectional ring (three-port routers, shortest-direction
// routing) are provided. The flit-header field widths scale with the
// configuration (Config.Layout), so substrates are bounded only by what a
// 64-bit header can address — up to 256 routers — not by a fixed id width.
//
// The simulator is deliberately mechanical: it owns buffering, arbitration,
// credits and the retransmission protocol, and delegates everything that
// happens on the wire — ECC encode/decode, obfuscation, fault and trojan
// injection, threat detection — to a pluggable Wire per link. Package core
// assembles the secure wires; this package knows nothing about the attack
// or the defence.
package noc

import (
	"fmt"

	"tasp/internal/flit"
)

// MaxVCs bounds the per-port virtual-channel count the router pipeline
// supports (fixed-size per-VC scratch state in the link-traversal phase).
const MaxVCs = 8

// Port indices within a router.
const (
	PortLocal = 0 // to/from the 4-core concentrator
	PortEast  = 1 // +x
	PortWest  = 2 // -x
	PortNorth = 3 // +y
	PortSouth = 4 // -y
	NumPorts  = 5
)

// PortName returns a short name for a port index.
func PortName(p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortEast:
		return "east"
	case PortWest:
		return "west"
	case PortNorth:
		return "north"
	case PortSouth:
		return "south"
	default:
		return fmt.Sprintf("port(%d)", p)
	}
}

// Config describes the simulated NoC. The zero value is not valid; use
// DefaultConfig (the paper's platform) and override fields as needed.
type Config struct {
	// Topo selects the network substrate: "mesh" (default; "" means mesh),
	// "torus" or "ring". Width*Height is the router count on every
	// topology; the ring ignores the grid shape and arranges the routers
	// in a cycle.
	Topo string

	Width         int // mesh columns
	Height        int // mesh rows
	Concentration int // cores per router

	VCs          int // virtual channels per port
	BufDepth     int // flit slots per input VC
	RetransDepth int // flit slots per output retransmission buffer
	InjQueueCap  int // flit capacity of each core's injection queue

	// RetransPenalty is the number of cycles between a NACK and the entry
	// becoming sendable again (the paper's 1-3 cycle retransmission cost).
	RetransPenalty int

	// MaxAttempts caps per-flit transmission attempts before the entry is
	// abandoned and counted as failed (0 = never abandon; the paper's NoCs
	// rarely support dropping, which is what lets back-pressure build).
	MaxAttempts int

	// PartitionRetrans splits each retransmission buffer between the lower
	// and upper half of the VCs (TDM QoS non-interference: one domain's
	// wedged flits cannot consume the other domain's slots).
	PartitionRetrans bool

	// RetransPerVC switches to the paper's second retransmission scheme
	// (Figure 5): instead of one shared buffer after the crossbar (the
	// stated worst case, and the default), each VC owns RetransDepth slots
	// of retransmission storage, so a wedged VC cannot exhaust another
	// VC's slots. Takes precedence over PartitionRetrans.
	RetransPerVC bool

	// StallThreshold is the number of progress-free cycles after which an
	// output port with waiting flits counts as blocked in Occupancy
	// (0 = 50). It separates deadlock from transient congestion.
	StallThreshold int
}

// DefaultConfig returns the paper's evaluation platform: 4x4 mesh,
// concentration 4 (64 cores), 4 VCs/port, 4x64-bit buffers per VC, 4-slot
// retransmission buffers, and a 2-cycle NACK turnaround.
func DefaultConfig() Config {
	return Config{
		Width:          4,
		Height:         4,
		Concentration:  4,
		VCs:            4,
		BufDepth:       4,
		RetransDepth:   4,
		InjQueueCap:    32,
		RetransPenalty: 2,
	}
}

// Routers returns the router count.
func (c Config) Routers() int { return c.Width * c.Height }

// Cores returns the core count.
func (c Config) Cores() int { return c.Routers() * c.Concentration }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch c.Topo {
	case "", "mesh", "torus":
		if c.Width < 2 || c.Height < 2 {
			return fmt.Errorf("noc: %s must be at least 2x2, got %dx%d", c.TopoName(), c.Width, c.Height)
		}
	case "ring":
		if c.Width*c.Height < 3 {
			return fmt.Errorf("noc: ring needs at least 3 routers, got %d", c.Width*c.Height)
		}
	default:
		return fmt.Errorf("noc: unknown topology %q (have %v)", c.Topo, Topologies())
	}
	if (c.Topo == "torus" || c.Topo == "ring") && c.VCs < 2 {
		// The dateline scheme needs two VC classes to cut each wraparound
		// ring's channel-dependency cycle.
		return fmt.Errorf("noc: %s needs at least 2 VCs for dateline deadlock freedom, got %d", c.Topo, c.VCs)
	}
	switch {
	case c.Concentration < 1:
		return fmt.Errorf("noc: concentration must be at least 1, got %d", c.Concentration)
	case c.VCs < 1 || c.VCs > MaxVCs:
		return fmt.Errorf("noc: VCs must be 1..%d, got %d", MaxVCs, c.VCs)
	case c.BufDepth < 1:
		return fmt.Errorf("noc: BufDepth must be positive")
	case c.RetransDepth < 1:
		return fmt.Errorf("noc: RetransDepth must be positive")
	case c.InjQueueCap < 1:
		return fmt.Errorf("noc: InjQueueCap must be positive")
	case c.RetransPenalty < 1:
		return fmt.Errorf("noc: RetransPenalty must be at least 1")
	}
	// The substrate is bounded only by what a flit header can address: the
	// id fields widen with the configuration (router ids = ceil(log2(R)))
	// until the packed layout no longer fits the 64-bit payload.
	if _, err := flit.LayoutFor(c.Routers(), c.Concentration, c.VCs); err != nil {
		return fmt.Errorf("noc: %w", err)
	}
	return nil
}

// Layout derives the flit-header layout this configuration needs: router-id
// bits = ceil(log2(routers)), core bits = ceil(log2(concentration)), VC bits
// = ceil(log2(VCs)). The paper's 4x4/concentration-4/4-VC platform derives
// exactly flit.Default. It panics on a configuration Validate would reject;
// validate first.
func (c Config) Layout() flit.Layout {
	l, err := flit.LayoutFor(c.Routers(), c.Concentration, c.VCs)
	if err != nil {
		panic(err)
	}
	return l
}

// TopoName returns the topology name with the empty default resolved.
func (c Config) TopoName() string {
	if c.Topo == "" {
		return "mesh"
	}
	return c.Topo
}

// Topology constructs the configured topology object. It panics on a
// configuration Validate would reject; validate first.
func (c Config) Topology() Topology {
	t, err := NewTopology(c.Topo, c.Width, c.Height)
	if err != nil {
		panic(err)
	}
	return t
}

// XY returns the mesh coordinates of a router id.
func (c Config) XY(r int) (x, y int) { return r % c.Width, r / c.Width }

// RouterAt returns the router id at mesh coordinates (x, y).
func (c Config) RouterAt(x, y int) int { return y*c.Width + x }

// CoreRouter maps a core id to its router.
func (c Config) CoreRouter(core int) int { return core / c.Concentration }

// RouteFunc selects the output port a head flit leaves a router on.
// It receives the current router and the destination router.
type RouteFunc func(router, dst int) int

// AdaptiveRouteFunc returns the set of permissible output ports for a hop
// (a turn-model candidate set). The router picks the least congested
// candidate at route-computation time. Candidates must be non-empty and
// deadlock-free by construction (e.g. west-first, north-last).
type AdaptiveRouteFunc func(router, dst int) []int

// XYRoute returns the paper's default XY dimension-order routing function.
func XYRoute(c Config) RouteFunc {
	return func(router, dst int) int {
		cx, cy := c.XY(router)
		dx, dy := c.XY(dst)
		switch {
		case dx > cx:
			return PortEast
		case dx < cx:
			return PortWest
		case dy > cy:
			return PortNorth
		case dy < cy:
			return PortSouth
		default:
			return PortLocal
		}
	}
}

// XYTable returns XY dimension-order routing backed by a precomputed
// (router, dst) -> port table: one array load at route-computation time
// instead of coordinate arithmetic. Behaviour is identical to XYRoute;
// networks are built on this by default.
func XYTable(c Config) RouteFunc {
	xy := XYRoute(c)
	R := c.Routers()
	tab := make([]uint8, R*R)
	for r := 0; r < R; r++ {
		for d := 0; d < R; d++ {
			tab[r*R+d] = uint8(xy(r, d))
		}
	}
	return func(router, dst int) int {
		return int(tab[router*R+dst])
	}
}
