package noc

import "testing"

// TestStepAllocationBudget enforces the zero-allocation hot path: once the
// network has reached steady state under uniform traffic, Network.Step must
// not allocate. The input-VC ring buffers, preallocated retransmission
// storage, NI queue rings and rxState free list all exist to keep this at
// zero; a regression in any of them (e.g. reintroducing slice-shift pops)
// fails this test.
func TestStepAllocationBudget(t *testing.T) {
	n, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	load := newStepLoad(n, 1, 0.02)
	for i := 0; i < 2000; i++ { // steady state: buffers, pools and maps grown
		load.inject()
		n.Step()
	}
	avg := testing.AllocsPerRun(2000, func() { n.Step() })
	if avg > 0.05 {
		t.Fatalf("steady-state Network.Step allocates %.3f times per cycle; the hot-path budget is 0", avg)
	}
	if n.Counters.DeliveredPackets == 0 {
		t.Fatal("no traffic delivered; the budget was measured on an idle network")
	}

	// The loaded path — injection included — must also be allocation-free:
	// Inject flitises into the network's reusable scratch buffer and the NI
	// queue rings absorb the copies without growing at steady state.
	before := n.Counters.DeliveredPackets
	if avg := testing.AllocsPerRun(2000, func() { load.inject(); n.Step() }); avg > 0.05 {
		t.Fatalf("steady-state inject+Step allocates %.3f times per cycle; the loaded-path budget is 0", avg)
	}
	if n.Counters.DeliveredPackets == before {
		t.Fatal("no traffic delivered during the loaded-path measurement")
	}

	// The fully idle network must also be allocation-free (and near-free in
	// time, via the active-router skip).
	idle, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() { idle.Step() }); avg != 0 {
		t.Fatalf("idle Network.Step allocates %.3f times per cycle", avg)
	}
}
