package noc

import (
	"strings"
	"testing"

	"tasp/internal/flit"
)

func TestPortNames(t *testing.T) {
	want := map[int]string{
		PortLocal: "local", PortEast: "east", PortWest: "west",
		PortNorth: "north", PortSouth: "south", 9: "port(9)",
	}
	for p, s := range want {
		if PortName(p) != s {
			t.Errorf("PortName(%d) = %q want %q", p, PortName(p), s)
		}
	}
}

func TestAccessors(t *testing.T) {
	n := mkNet(t)
	if n.Config().Routers() != 16 {
		t.Fatal("Config accessor broken")
	}
	if n.Cycle() != 0 {
		t.Fatal("fresh network cycle != 0")
	}
	n.Run(3)
	if n.Cycle() != 3 {
		t.Fatalf("cycle %d after 3 steps", n.Cycle())
	}
	if n.Wire(0) == nil {
		t.Fatal("Wire accessor returned nil")
	}
	n.SetRefPacketFlits(1)
}

func TestCountersAvgLatency(t *testing.T) {
	var c Counters
	if c.AvgLatency() != 0 {
		t.Fatal("empty counters latency")
	}
	c.DeliveredPackets, c.LatencySum = 4, 100
	if c.AvgLatency() != 25 {
		t.Fatalf("avg %g", c.AvgLatency())
	}
}

func TestDebugDumpShowsBusyState(t *testing.T) {
	n := mkNet(t)
	if got := n.DebugDump(); got != "" {
		t.Fatalf("idle dump not empty: %q", got)
	}
	n.Inject(0, pkt(3, 0, 1, 3))
	n.Run(4)
	dump := n.DebugDump()
	if !strings.Contains(dump, "router 0") {
		t.Fatalf("dump missing router 0:\n%s", dump)
	}
	if !strings.Contains(dump, "vc1") {
		t.Fatalf("dump missing vc detail:\n%s", dump)
	}
}

func TestDebugRetransVCs(t *testing.T) {
	n := mkNet(t)
	if got := n.DebugRetransVCs(0); got != nil {
		t.Fatalf("idle retrans: %v", got)
	}
	// Wedge link 0 with a nack wire and drive one flit into its buffer.
	n.SetWire(0, nackWire{})
	n.Inject(0, pkt(1, 0, 2, 0))
	n.Run(20)
	got := n.DebugRetransVCs(0)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("retrans VCs: %v", got)
	}
}

// TestPerVCRetransScheme exercises the Figure 5 second scheme directly:
// per-VC quotas admit flits of a healthy VC even when another VC's quota is
// exhausted by wedged entries, and the total buffer can exceed the shared
// depth.
func TestPerVCRetransScheme(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetransPerVC = true
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := retransCap(cfg); got != cfg.RetransDepth*cfg.VCs {
		t.Fatalf("per-VC cap %d", got)
	}
	n.SetWire(0, nackWire{}) // 0 -> 1 refuses everything
	// Wedge a 5-flit packet on VC0 (it fills VC0's whole quota), then send
	// a VC1 single from another core: with per-VC buffers the VC1 flit
	// must still be admitted to the retransmission storage.
	n.Inject(0, pkt(1, 0, 0, 4))
	n.Run(80)
	n.Inject(1, pkt(1, 0, 1, 0))
	n.Run(40)
	vcs := n.DebugRetransVCs(0)
	have1 := false
	count0 := 0
	for _, v := range vcs {
		if v == 1 {
			have1 = true
		}
		if v == 0 {
			count0++
		}
	}
	if count0 == 0 || count0 > cfg.RetransDepth {
		t.Fatalf("vc0 wedge count %d (quota %d): %v", count0, cfg.RetransDepth, vcs)
	}
	if !have1 {
		t.Fatalf("vc1 flit not admitted alongside wedged vc0: %v", vcs)
	}
}

// TestSharedRetransBlocksAcrossVCs is the contrast case: with the shared
// buffer, wedged vc0 singles can only hold one slot (VC ownership limits
// one packet per VC), but a wedged multi-flit packet fills the whole buffer
// and locks other VCs out.
func TestSharedRetransBlocksAcrossVCs(t *testing.T) {
	n := mkNet(t)
	n.SetWire(0, nackWire{})
	// One 5-flit packet on vc0 fills the 4-slot shared buffer (head + 3
	// body flits wedge; the tail waits upstream).
	n.Inject(0, pkt(1, 0, 0, 4))
	n.Run(60)
	if got := len(n.DebugRetransVCs(0)); got != 4 {
		t.Fatalf("wedged entries: %d, want full buffer 4", got)
	}
	// A vc1 single cannot enter the full shared buffer.
	n.Inject(0, pkt(1, 0, 1, 0))
	n.Run(40)
	for _, v := range n.DebugRetransVCs(0) {
		if v == 1 {
			t.Fatal("vc1 flit admitted into a full shared buffer")
		}
	}
}

func TestOccupancyWhereFiltersCores(t *testing.T) {
	n := mkNet(t)
	// Queue packets at core 0 only.
	for i := 0; i < 4; i++ {
		n.Inject(0, pkt(9, 0, uint8(i), 0))
	}
	all := n.OccupancyWhere(nil, nil)
	only0 := n.OccupancyWhere(nil, func(c int) bool { return c == 0 })
	others := n.OccupancyWhere(nil, func(c int) bool { return c != 0 })
	if only0.InjectionFlit == 0 {
		t.Fatal("core 0 queue not visible")
	}
	if only0.InjectionFlit+others.InjectionFlit != all.InjectionFlit {
		t.Fatal("core filter does not partition injection occupancy")
	}
}

func TestInputVCEmptyHelper(t *testing.T) {
	var v inputVC
	if !v.empty() {
		t.Fatal("fresh VC not empty")
	}
	v.push(bufFlit{})
	if v.empty() {
		t.Fatal("non-empty VC reports empty")
	}
	if v.size() != 1 {
		t.Fatalf("size = %d, want 1", v.size())
	}
	v.pop()
	if !v.empty() {
		t.Fatal("popped VC not empty")
	}
}

func TestSetLinkScheduleGates(t *testing.T) {
	n := mkNet(t)
	// A schedule that admits nothing: the packet must never be delivered.
	n.SetLinkSchedule(func(uint64, uint8) bool { return false })
	n.Inject(0, pkt(1, 0, 0, 0))
	n.Run(200)
	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("flit crossed a fully gated link")
	}
	// Open the gate: delivery completes.
	n.SetLinkSchedule(func(uint64, uint8) bool { return true })
	n.Run(200)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatal("flit not delivered after opening the gate")
	}
}

func TestSetAdaptiveRouteFallsBackWhenAllDisabled(t *testing.T) {
	n := mkNet(t)
	n.SetAdaptiveRoute(func(router, dst int) []int {
		return []int{PortEast, PortNorth}
	})
	// Disable both candidates out of router 0: the selector still returns
	// a port (the first candidate) rather than panicking.
	for _, l := range n.Links() {
		if l.From == 0 && (l.FromPort == PortEast || l.FromPort == PortNorth) {
			n.DisableLink(l.ID)
		}
	}
	n.Inject(0, pkt(15, 0, 0, 0))
	n.Run(50) // routes to a disabled port; packet parks — no crash, no delivery
	if n.Counters.DeliveredPackets != 0 {
		t.Fatal("packet crossed disabled links")
	}
}

func TestMultiFlitWithStallReadyAt(t *testing.T) {
	// A wire that delivers with a stall: readyAt must defer RC and the
	// latency must grow accordingly.
	n := mkNet(t)
	base := n.Wire(0)
	n.SetWire(0, stallWire{inner: base})
	n.Inject(0, pkt(1, 0, 0, 0))
	n.Run(100)
	if n.Counters.DeliveredPackets != 1 {
		t.Fatal("not delivered through stall wire")
	}
	lat := n.Counters.LatencySum
	// Compare with the unstalled path.
	m := mkNet(t)
	m.Inject(0, pkt(1, 0, 0, 0))
	m.Run(100)
	if lat != m.Counters.LatencySum+3 {
		t.Fatalf("stall of 3 not reflected: %d vs %d", lat, m.Counters.LatencySum)
	}
}

type stallWire struct{ inner Wire }

func (w stallWire) Transmit(c uint64, f flit.Flit, vc uint8, a int) (flit.Flit, TxResult) {
	g, res := w.inner.Transmit(c, f, vc, a)
	if res.OK {
		res.Stall = 3
	}
	return g, res
}
