package noc

import (
	"testing"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/xrand"
)

func TestInvariantsHoldOnIdleNetwork(t *testing.T) {
	n := mkNet(t)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsUnderRandomTraffic hammers the network with random traffic,
// random transient faults and a hostile nack wire, auditing every cycle.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	n := mkNet(t)
	rng := xrand.New(99)
	for _, l := range n.Links() {
		w := NewPlainWire()
		w.Tap = fault.NewTransient(1e-4, uint64(l.ID)+5)
		n.SetWire(l.ID, w)
	}
	// One hostile link that drops everything.
	n.SetWire(7, nackWire{})
	for c := 0; c < 3000; c++ {
		if rng.Bool(0.5) {
			core := rng.Intn(64)
			dst := rng.Intn(16)
			if dst != n.cfg.CoreRouter(core) {
				n.Inject(core, &flit.Packet{
					Hdr:  flit.Header{VC: uint8(rng.Intn(4)), DstR: uint8(dst), Mem: uint32(rng.Uint64())},
					Body: make([]uint64, rng.Intn(5)),
				})
			}
		}
		n.Step()
		if c%10 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", c, err)
			}
		}
	}
}

// TestInvariantsWithDisabledLinks audits the link-disable/reroute path.
func TestInvariantsWithDisabledLinks(t *testing.T) {
	n := mkNet(t)
	for core := 0; core < 64; core += 2 {
		n.Inject(core, &flit.Packet{Hdr: flit.Header{VC: uint8(core % 4), DstR: uint8((core + 5) % 16)}, Body: make([]uint64, 3)})
	}
	n.Run(20)
	n.DisableLink(0)
	base := XYRoute(n.cfg)
	n.SetRoute(func(router, dst int) int {
		if router == 0 && base(router, dst) == PortEast {
			return PortNorth
		}
		return base(router, dst)
	})
	for c := 0; c < 500; c++ {
		n.Step()
		if c%25 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", c, err)
			}
		}
	}
}

// TestInvariantCatchesCorruption plants a deliberate credit corruption and
// checks the auditor reports it.
func TestInvariantCatchesCorruption(t *testing.T) {
	n := mkNet(t)
	n.routers[0].outputs[PortEast].credits[0]++
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("credit corruption not caught")
	}
}

// TestInvariantCatchesOwnershipBreach plants a retransmission entry on an
// unowned VC.
func TestInvariantCatchesOwnershipBreach(t *testing.T) {
	n := mkNet(t)
	op := n.routers[0].outputs[PortEast]
	op.entries = append(op.entries, retransEntry{f: flit.Flit{Kind: flit.Single, Payload: ecc.Encode(0).Lo}, vc: 2})
	op.credits[2]-- // keep credit accounting consistent
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("ownership breach not caught")
	}
}

func TestConfigRejectsOversizeMesh(t *testing.T) {
	// The substrate is bounded by the flit header's 64-bit capacity, not a
	// fixed id width: 8x8 (6-bit ids) and 16x16 (8-bit ids) fit, a 32x32
	// grid would need 10-bit router ids and must be rejected.
	c := DefaultConfig()
	c.Width, c.Height = 8, 8
	if err := c.Validate(); err != nil {
		t.Fatalf("64-router mesh rejected: %v", err)
	}
	c.Width, c.Height = 16, 16
	if err := c.Validate(); err != nil {
		t.Fatalf("256-router mesh rejected: %v", err)
	}
	c.Width, c.Height = 32, 32
	if err := c.Validate(); err == nil {
		t.Fatal("1024-router mesh accepted despite 8-bit id capacity")
	}
	c.Width, c.Height = 4, 4
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
