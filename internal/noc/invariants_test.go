package noc

import (
	"testing"

	"tasp/internal/ecc"
	"tasp/internal/fault"
	"tasp/internal/flit"
	"tasp/internal/xrand"
)

func TestInvariantsHoldOnIdleNetwork(t *testing.T) {
	n := mkNet(t)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n.Run(100)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsUnderRandomTraffic hammers the network with random traffic,
// random transient faults and a hostile nack wire, auditing every cycle.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	n := mkNet(t)
	rng := xrand.New(99)
	for _, l := range n.Links() {
		w := NewPlainWire()
		w.Tap = fault.NewTransient(1e-4, uint64(l.ID)+5)
		n.SetWire(l.ID, w)
	}
	// One hostile link that drops everything.
	n.SetWire(7, nackWire{})
	for c := 0; c < 3000; c++ {
		if rng.Bool(0.5) {
			core := rng.Intn(64)
			dst := rng.Intn(16)
			if dst != n.cfg.CoreRouter(core) {
				n.Inject(core, &flit.Packet{
					Hdr:  flit.Header{VC: uint8(rng.Intn(4)), DstR: uint8(dst), Mem: uint32(rng.Uint64())},
					Body: make([]uint64, rng.Intn(5)),
				})
			}
		}
		n.Step()
		if c%10 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", c, err)
			}
		}
	}
}

// TestInvariantsWithDisabledLinks audits the link-disable/reroute path.
func TestInvariantsWithDisabledLinks(t *testing.T) {
	n := mkNet(t)
	for core := 0; core < 64; core += 2 {
		n.Inject(core, &flit.Packet{Hdr: flit.Header{VC: uint8(core % 4), DstR: uint8((core + 5) % 16)}, Body: make([]uint64, 3)})
	}
	n.Run(20)
	n.DisableLink(0)
	base := XYRoute(n.cfg)
	n.SetRoute(func(router, dst int) int {
		if router == 0 && base(router, dst) == PortEast {
			return PortNorth
		}
		return base(router, dst)
	})
	for c := 0; c < 500; c++ {
		n.Step()
		if c%25 == 0 {
			if err := n.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", c, err)
			}
		}
	}
}

// TestActiveSetsMatchBruteForceDuringSoak audits the event-driven core on
// every cycle of a mixed soak — clean bursts, a full drain into the scheduled
// sleep stretch, a hostile NACK link under load, then mitigation by disabling
// the attacked link mid-flight — on all three topologies. CheckInvariants
// recomputes the active sets and occupancy masks from a brute-force "holds
// flits or pending retransmission/injection work" sweep, so any wake/sleep
// edge the scheduler misses fails here with the first divergent cycle.
func TestActiveSetsMatchBruteForceDuringSoak(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"mesh", func(c *Config) {}},
		{"torus", func(c *Config) { c.Topo = "torus" }},
		{"ring", func(c *Config) { c.Topo = "ring"; c.Width, c.Height = 8, 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(7)
			for _, l := range n.Links() {
				w := NewPlainWire()
				w.Tap = fault.NewTransient(1e-4, uint64(l.ID)+3)
				n.SetWire(l.ID, w)
			}
			cycle := 0
			step := func() {
				n.Step()
				cycle++
				if err := n.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
			routers := cfg.Width * cfg.Height
			cores := cfg.Cores()
			inject := func(rate float64) {
				for c := 0; c < cores; c++ {
					if !rng.Bool(rate) {
						continue
					}
					dst := rng.Intn(routers)
					if dst == cfg.CoreRouter(c) {
						continue
					}
					n.Inject(c, &flit.Packet{
						Hdr:  flit.Header{VC: uint8(rng.Intn(cfg.VCs)), DstR: uint8(dst), Mem: uint32(rng.Uint64())},
						Body: make([]uint64, rng.Intn(5)),
					})
				}
			}

			// Clean burst, then drain to quiescence: the scheduler must
			// enter (and be audited inside) the sleep stretch.
			for i := 0; i < 200; i++ {
				inject(0.05)
				step()
			}
			slept := false
			for i := 0; i < 800; i++ {
				step()
				slept = slept || n.asleep()
			}
			if !slept {
				t.Fatal("network never reached the scheduled sleep stretch after draining")
			}

			// Attack: a persistent NACK wire under sustained load keeps the
			// retransmission buffers parked and the penalty waits cycling
			// through sleep/wake edges.
			target := n.Links()[0]
			n.SetWire(target.ID, nackWire{})
			for i := 0; i < 600; i++ {
				inject(0.1)
				step()
			}
			if n.Counters.Retransmissions == 0 {
				t.Fatal("attack phase produced no retransmissions")
			}

			// Mitigation: disable the attacked link mid-flight (dropping its
			// parked entries) and let the survivors drain.
			n.DisableLink(target.ID)
			for i := 0; i < 200; i++ {
				inject(0.02)
				step()
			}
			for i := 0; i < 400; i++ {
				step()
			}
			if n.Counters.DeliveredPackets == 0 {
				t.Fatal("soak delivered nothing")
			}
		})
	}
}

// TestInvariantCatchesStaleActiveSetBit plants a stale active-set bit — the
// precise failure mode of the event-driven core (a phase would sweep a router
// with no work, or worse, clearing a live bit would skip one with work).
func TestInvariantCatchesStaleActiveSetBit(t *testing.T) {
	n := mkNet(t)
	n.sched.actIn.set(3) // router 3 holds no flits
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("stale actIn bit not caught")
	}
}

// TestInvariantCatchesStaleOccBit plants an occupancy-mask bit with no
// backing flit: SA/RC would scan a VC the buffers say is empty.
func TestInvariantCatchesStaleOccBit(t *testing.T) {
	n := mkNet(t)
	r := n.routers[2]
	r.occ |= 1 << r.occBit(PortEast, 1)
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("stale occ bit not caught")
	}
}

// TestInvariantCatchesCounterDrift desynchronizes the global flit counter
// from the per-router tallies (would corrupt the sleep decision).
func TestInvariantCatchesCounterDrift(t *testing.T) {
	n := mkNet(t)
	n.sched.flitsParked++
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("global counter drift not caught")
	}
}

// TestInvariantCatchesCorruption plants a deliberate credit corruption and
// checks the auditor reports it.
func TestInvariantCatchesCorruption(t *testing.T) {
	n := mkNet(t)
	n.routers[0].outputs[PortEast].credits[0]++
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("credit corruption not caught")
	}
}

// TestInvariantCatchesOwnershipBreach plants a retransmission entry on an
// unowned VC.
func TestInvariantCatchesOwnershipBreach(t *testing.T) {
	n := mkNet(t)
	op := n.routers[0].outputs[PortEast]
	op.entries = append(op.entries, retransEntry{f: flit.Flit{Kind: flit.Single, Payload: ecc.Encode(0).Lo}, vc: 2})
	op.credits[2]-- // keep credit accounting consistent
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("ownership breach not caught")
	}
}

func TestConfigRejectsOversizeMesh(t *testing.T) {
	// The substrate is bounded by the flit header's 64-bit capacity, not a
	// fixed id width: 8x8 (6-bit ids) and 16x16 (8-bit ids) fit, a 32x32
	// grid would need 10-bit router ids and must be rejected.
	c := DefaultConfig()
	c.Width, c.Height = 8, 8
	if err := c.Validate(); err != nil {
		t.Fatalf("64-router mesh rejected: %v", err)
	}
	c.Width, c.Height = 16, 16
	if err := c.Validate(); err != nil {
		t.Fatalf("256-router mesh rejected: %v", err)
	}
	c.Width, c.Height = 32, 32
	if err := c.Validate(); err == nil {
		t.Fatal("1024-router mesh accepted despite 8-bit id capacity")
	}
	c.Width, c.Height = 4, 4
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}
