package traffic

import (
	"math"
	"strings"
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

func cfg() noc.Config { return noc.DefaultConfig() }

func TestBenchmarksListStable(t *testing.T) {
	names := Benchmarks()
	if len(names) < 10 {
		t.Fatalf("expected at least 10 benchmarks, got %d", len(names))
	}
	for _, need := range []string{"blackscholes", "facesim", "ferret", "fft"} {
		found := false
		for _, n := range names {
			if n == need {
				found = true
			}
		}
		if !found {
			t.Errorf("Figure 10 benchmark %q missing", need)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Benchmark("doom", cfg()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMatrixRowsNormalised(t *testing.T) {
	for _, name := range Benchmarks() {
		m, err := Benchmark(name, cfg())
		if err != nil {
			t.Fatal(err)
		}
		for s, row := range m.Matrix {
			sum := 0.0
			for d, w := range row {
				if w < 0 {
					t.Fatalf("%s: negative weight at (%d,%d)", name, s, d)
				}
				if d == s && w != 0 {
					t.Fatalf("%s: self traffic at router %d", name, s)
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: row %d sums to %g", name, s, sum)
			}
		}
	}
}

func TestIntensityMeanIsOne(t *testing.T) {
	for _, name := range Benchmarks() {
		m, _ := Benchmark(name, cfg())
		sum := 0.0
		for _, v := range m.Intensity {
			sum += v
		}
		if mean := sum / float64(len(m.Intensity)); math.Abs(mean-1) > 1e-9 {
			t.Fatalf("%s: intensity mean %g", name, mean)
		}
	}
}

// TestBlackscholesLocalisation checks the Figure 1 shape the paper
// describes: traffic concentrates around the primary router and diminishes
// with hop distance.
func TestBlackscholesLocalisation(t *testing.T) {
	m, _ := Benchmark("blackscholes", cfg())
	if m.Primary != 0 {
		t.Fatalf("blackscholes primary router %d, want 0", m.Primary)
	}
	// Source intensity must decay monotonically with distance from the
	// primary (routers 0, 1, 2, 3 are successive hops along the bottom row).
	if !(m.Intensity[0] > m.Intensity[1] && m.Intensity[1] > m.Intensity[2] && m.Intensity[2] > m.Intensity[3]) {
		t.Fatalf("intensity not decaying with distance: %v", m.Intensity[:4])
	}
	// The primary's row must weight near routers above far routers.
	if m.Matrix[0][1] <= m.Matrix[0][15] {
		t.Fatalf("near destination not preferred: to r1 %g, to r15 %g", m.Matrix[0][1], m.Matrix[0][15])
	}
}

func TestFerretHasTwoHotRegions(t *testing.T) {
	m, _ := Benchmark("ferret", cfg())
	// Ferret's pipeline model has primaries at routers 2 and 13; both must
	// be hotter than the mesh-median router.
	if m.Intensity[2] <= 1 || m.Intensity[13] <= 1 {
		t.Fatalf("ferret primaries not hot: r2=%g r13=%g", m.Intensity[2], m.Intensity[13])
	}
}

func TestFFTHasTransposeComponent(t *testing.T) {
	m, _ := Benchmark("fft", cfg())
	// Router 1 = (1,0); transpose partner is (0,1) = router 4.
	if m.Matrix[1][4] <= m.Matrix[1][5] {
		t.Fatalf("fft transpose partner not preferred: to r4 %g, to r5 %g", m.Matrix[1][4], m.Matrix[1][5])
	}
}

func TestSyntheticModels(t *testing.T) {
	u := Uniform(cfg(), 0.05)
	for s, row := range u.Matrix {
		for d, w := range row {
			if d == s {
				continue
			}
			if math.Abs(w-1.0/15) > 1e-9 {
				t.Fatalf("uniform weight (%d,%d)=%g", s, d, w)
			}
		}
	}
	h := Hotspot(cfg(), 0.05, 5, 0.5)
	if h.Matrix[0][5] < 0.5 {
		t.Fatalf("hotspot share %g", h.Matrix[0][5])
	}
	tr := Transpose(cfg(), 0.05)
	if tr.Matrix[1][4] != 1 {
		t.Fatalf("transpose(1) weight to 4 is %g", tr.Matrix[1][4])
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	m, _ := Benchmark("blackscholes", cfg())
	collect := func() []flit.Header {
		g := m.Generator(7)
		var hs []flit.Header
		for i := 0; i < 500; i++ {
			g.Tick(func(core int, p *flit.Packet) bool {
				hs = append(hs, p.Hdr)
				return true
			})
		}
		return hs
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("generator produced no packets in 500 cycles")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic packet count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGeneratorFieldsValid(t *testing.T) {
	m, _ := Benchmark("ferret", cfg())
	g := m.Generator(3)
	c := cfg()
	for i := 0; i < 2000; i++ {
		g.Tick(func(core int, p *flit.Packet) bool {
			if int(p.Hdr.DstR) >= c.Routers() {
				t.Fatalf("bad destination router %d", p.Hdr.DstR)
			}
			if int(p.Hdr.DstR) == c.CoreRouter(core) {
				t.Fatalf("self-router traffic generated")
			}
			if int(p.Hdr.VC) >= c.VCs {
				t.Fatalf("bad VC %d", p.Hdr.VC)
			}
			if got := int(p.Hdr.Mem >> 24); got != int(p.Hdr.DstR) {
				t.Fatalf("mem address region %d does not match destination %d", got, p.Hdr.DstR)
			}
			n := p.NumFlits()
			if n != 1 && n != 5 {
				t.Fatalf("packet size %d flits, want 1 or 5", n)
			}
			return true
		})
	}
}

func TestLinkLoadsSumToOne(t *testing.T) {
	m, _ := Benchmark("blackscholes", cfg())
	loads := LinkLoads(m, cfg())
	if len(loads) == 0 {
		t.Fatal("no link loads")
	}
	sum := 0.0
	for k, v := range loads {
		if v < 0 {
			t.Fatalf("negative load on %s", k)
		}
		if !strings.Contains(k, "->") {
			t.Fatalf("bad link key %q", k)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("loads sum to %g", sum)
	}
}

// TestLinkLoadsConcentrateNearPrimary checks Figure 1(c)'s claim that links
// near the primary core carry a disproportionate share of traffic.
func TestLinkLoadsConcentrateNearPrimary(t *testing.T) {
	m, _ := Benchmark("blackscholes", cfg())
	loads := LinkLoads(m, cfg())
	near := loads["0->1"] + loads["1->0"]
	far := loads["14->15"] + loads["15->14"]
	if near <= far {
		t.Fatalf("link near primary (%g) not hotter than far link (%g)", near, far)
	}
}

// TestLinkLoadsMatchSimulation cross-checks the analytic Figure 1(c) loads
// against the cycle-accurate simulator's per-link counters.
func TestLinkLoadsMatchSimulation(t *testing.T) {
	c := cfg()
	m, _ := Benchmark("blackscholes", c)
	analytic := LinkLoads(m, c)

	n, err := noc.New(c)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Generator(11)
	for i := 0; i < 20000; i++ {
		g.Tick(func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
		n.Step()
	}
	var total uint64
	sim := map[string]float64{}
	for _, l := range n.Links() {
		sent := n.LinkOutput(l.ID).FlitsSent
		total += sent
	}
	for _, l := range n.Links() {
		key := linkKey(l)
		sim[key] = float64(n.LinkOutput(l.ID).FlitsSent) / float64(total)
	}
	// The hottest analytic link must be among the top simulated links.
	bestKey, best := "", 0.0
	for k, v := range analytic {
		if v > best {
			bestKey, best = k, v
		}
	}
	if sim[bestKey] < best/3 {
		t.Fatalf("hottest analytic link %s (%.3f) carries only %.3f in simulation", bestKey, best, sim[bestKey])
	}
}

func linkKey(l noc.LinkInfo) string {
	return strings.Join([]string{itoa(l.From), itoa(l.To)}, "->")
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for x > 0 {
		i--
		b[i] = byte('0' + x%10)
		x /= 10
	}
	return string(b[i:])
}

func TestRouterTotals(t *testing.T) {
	m, _ := Benchmark("blackscholes", cfg())
	tot := RouterTotals(m)
	if len(tot) != 16 {
		t.Fatalf("want 16 totals, got %d", len(tot))
	}
	if tot[0] <= tot[15] {
		t.Fatalf("primary router not hottest: r0=%g r15=%g", tot[0], tot[15])
	}
}
