package traffic

import (
	"tasp/internal/flit"
	"tasp/internal/noc"
)

// ClosedLoop wraps a Generator with request-reply semantics and a finite
// number of outstanding requests per core (MSHR-style). Each generated
// packet becomes a *request*; when a request is delivered, the destination
// core sends a *reply* back; only when the reply arrives does the
// requester's outstanding slot free up. This is how real MPSoC traffic
// behaves — and why the paper says a NoC disruption "has the potential to
// reverberate throughout the entire chip": killing one region's replies
// stalls requesters everywhere.
//
// Requests and replies are distinguished by the header's spare byte
// (ReplyMark), so a TASP trojan can target either direction.
type ClosedLoop struct {
	cfg noc.Config
	gen *Generator

	// Outstanding is the per-core request window (MSHRs).
	Outstanding int
	// ReplyBody is the body flit count of replies (data responses).
	ReplyBody int

	pending []int // per-core in-flight requests

	// Completed counts full request->reply transactions.
	Completed uint64
	// Stalled counts generator offers suppressed by a full window.
	Stalled uint64

	replyQueue []*flit.Packet // replies awaiting injection at their cores
}

// ReplyMark is the spare-byte value identifying reply packets.
const ReplyMark = 0xa1

// NewClosedLoop wraps the model's generator with a request window.
func NewClosedLoop(m *Model, seed uint64, outstanding int) *ClosedLoop {
	if outstanding < 1 {
		outstanding = 4
	}
	return &ClosedLoop{
		cfg:         m.cfg,
		gen:         m.Generator(seed),
		Outstanding: outstanding,
		ReplyBody:   4,
		pending:     make([]int, m.cfg.Cores()),
	}
}

// Tick advances one cycle: drains queued replies, then offers new requests
// from cores with window headroom.
func (cl *ClosedLoop) Tick(inject func(core int, p *flit.Packet) bool) {
	// Replies first: they unblock windows and must not starve behind new
	// requests.
	kept := cl.replyQueue[:0]
	for _, r := range cl.replyQueue {
		src := int(r.Hdr.SrcR)*cl.cfg.Concentration + int(r.Hdr.SrcC)
		if !inject(src, r) {
			kept = append(kept, r)
		}
	}
	cl.replyQueue = kept

	cl.gen.Tick(func(core int, p *flit.Packet) bool {
		if cl.pending[core] >= cl.Outstanding {
			cl.Stalled++
			return false
		}
		p.Hdr.Spare = 0 // request
		if !inject(core, p) {
			return false
		}
		cl.pending[core]++
		return true
	})
}

// OnDeliver must be wired to the network's delivery callback. For a
// delivered request it queues the reply; for a delivered reply it closes
// the transaction.
func (cl *ClosedLoop) OnDeliver(d noc.Delivery) {
	h := d.Hdr
	if h.Spare == ReplyMark {
		requester := int(h.DstR)*cl.cfg.Concentration + int(h.DstC)
		if requester < len(cl.pending) && cl.pending[requester] > 0 {
			cl.pending[requester]--
		}
		cl.Completed++
		return
	}
	// A request arrived: the target core answers.
	reply := &flit.Packet{Hdr: flit.Header{
		VC:    h.VC,
		SrcR:  h.DstR, // will be overwritten at injection, kept for clarity
		SrcC:  h.DstC,
		DstR:  h.SrcR,
		DstC:  h.SrcC,
		Mem:   h.Mem,
		Seq:   h.Seq,
		Spare: ReplyMark,
	}}
	for i := 0; i < cl.ReplyBody; i++ {
		reply.Body = append(reply.Body, uint64(h.Mem)+uint64(i))
	}
	cl.replyQueue = append(cl.replyQueue, reply)
}

// Pending returns the total outstanding requests across all cores.
func (cl *ClosedLoop) Pending() int {
	n := 0
	for _, p := range cl.pending {
		n += p
	}
	return n
}

// QueuedReplies returns replies awaiting injection.
func (cl *ClosedLoop) QueuedReplies() int { return len(cl.replyQueue) }
