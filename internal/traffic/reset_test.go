package traffic

import (
	"fmt"
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

// traceTicks renders n cycles of generated traffic as comparable strings.
func traceTicks(g *Generator, n int, into bool) []string {
	var out []string
	record := func(core int, p *flit.Packet) bool {
		out = append(out, fmt.Sprintf("%d %+v %v", core, p.Hdr, p.Body))
		return true
	}
	var scratch flit.Packet
	for i := 0; i < n; i++ {
		if into {
			g.TickInto(&scratch, record)
		} else {
			g.Tick(record)
		}
	}
	return out
}

// TestTickIntoMatchesTick is the draw-order contract the campaign arenas
// depend on: TickInto with a reused scratch packet must generate the exact
// packet stream Tick does from the same seed, and Reset must rewind a
// generator to that same stream.
func TestTickIntoMatchesTick(t *testing.T) {
	cfg := noc.DefaultConfig()
	for _, name := range []string{"fft", "blackscholes", "canneal"} {
		m, err := Benchmark(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := traceTicks(m.Generator(42), 400, false)
		g := m.Generator(42)
		got := traceTicks(g, 400, true)
		if len(ref) == 0 {
			t.Fatalf("%s: no packets generated", name)
		}
		if fmt.Sprint(ref) != fmt.Sprint(got) {
			t.Fatalf("%s: TickInto diverged from Tick (%d vs %d packets)", name, len(ref), len(got))
		}
		g.Reset(42)
		if again := traceTicks(g, 400, true); fmt.Sprint(again) != fmt.Sprint(ref) {
			t.Fatalf("%s: Reset(42) did not rewind the generator to the fresh stream", name)
		}
		g.Reset(43)
		if other := traceTicks(g, 400, true); fmt.Sprint(other) == fmt.Sprint(ref) {
			t.Fatalf("%s: Reset(43) produced the seed-42 stream", name)
		}
	}
}

// TestPacketIntoReusesBody pins the steady-state allocation behaviour: once
// the scratch packet's body storage has grown, PacketInto must not allocate.
func TestPacketIntoReusesBody(t *testing.T) {
	m, err := Benchmark("fft", noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := m.Generator(7)
	var p flit.Packet
	g.PacketInto(0, &p) // warm the body storage
	for p.Body == nil {
		g.PacketInto(0, &p)
	}
	if avg := testing.AllocsPerRun(500, func() { g.PacketInto(0, &p) }); avg > 0 {
		t.Fatalf("warmed PacketInto allocates %.3f times per call; budget is 0", avg)
	}
}
