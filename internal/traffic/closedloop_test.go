package traffic

import (
	"testing"

	"tasp/internal/flit"
	"tasp/internal/noc"
)

// runClosedLoop drives a closed-loop workload on a real network.
func runClosedLoop(t *testing.T, cl *ClosedLoop, n *noc.Network, cycles int) {
	t.Helper()
	n.SetDelivered(cl.OnDeliver)
	for c := 0; c < cycles; c++ {
		cl.Tick(func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
		n.Step()
	}
}

func TestClosedLoopTransactionsComplete(t *testing.T) {
	cfg := noc.DefaultConfig()
	m, err := Benchmark("blackscholes", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClosedLoop(m, 3, 4)
	n, err := noc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runClosedLoop(t, cl, n, 3000)
	if cl.Completed == 0 {
		t.Fatal("no transactions completed")
	}
	// Conservation: pending + completed relate to injected requests.
	if cl.Pending() < 0 || cl.Pending() > 4*cfg.Cores() {
		t.Fatalf("pending out of range: %d", cl.Pending())
	}
}

func TestClosedLoopWindowBoundsPending(t *testing.T) {
	cfg := noc.DefaultConfig()
	m, _ := Benchmark("ferret", cfg)
	m.Rate = 0.5 // demand far above the window
	cl := NewClosedLoop(m, 7, 2)
	n, _ := noc.New(cfg)
	n.SetDelivered(cl.OnDeliver)
	for c := 0; c < 1000; c++ {
		cl.Tick(func(core int, p *flit.Packet) bool { return n.Inject(core, p) })
		n.Step()
		if cl.Pending() > 2*cfg.Cores() {
			t.Fatalf("cycle %d: pending %d exceeds window x cores", c, cl.Pending())
		}
	}
	if cl.Stalled == 0 {
		t.Fatal("high demand never hit the window")
	}
}

func TestClosedLoopDefaultWindow(t *testing.T) {
	cfg := noc.DefaultConfig()
	m, _ := Benchmark("fft", cfg)
	cl := NewClosedLoop(m, 1, 0)
	if cl.Outstanding != 4 {
		t.Fatalf("default window %d", cl.Outstanding)
	}
}

// TestClosedLoopVictimStallPropagates is the reverberation property: wedge
// the links into router 0 and requesters chip-wide eventually stall at
// their windows even though their own links are healthy.
func TestClosedLoopVictimStallPropagates(t *testing.T) {
	cfg := noc.DefaultConfig()
	m, _ := Benchmark("blackscholes", cfg)
	cl := NewClosedLoop(m, 11, 4)
	n, _ := noc.New(cfg)
	// Kill both ingress links of router 0: requests to the primary die.
	for _, l := range n.Links() {
		if l.To == 0 {
			n.SetWire(l.ID, dropWire{})
		}
	}
	runClosedLoop(t, cl, n, 4000)
	completedAtCut := cl.Completed
	// Run further: completions must flatline near zero growth for dest-0
	// traffic, and pending must pile up toward the window bound.
	runClosedLoop(t, cl, n, 2000)
	growth := cl.Completed - completedAtCut
	if cl.Pending() < cfg.Cores() { // many cores wedged at their window
		t.Fatalf("pending %d too low — stalls did not propagate", cl.Pending())
	}
	if growth > completedAtCut {
		t.Fatalf("completions kept pace (%d then +%d) despite the dead primary", completedAtCut, growth)
	}
}

type dropWire struct{}

func (dropWire) Transmit(_ uint64, f flit.Flit, _ uint8, _ int) (flit.Flit, noc.TxResult) {
	return f, noc.TxResult{OK: false}
}

func TestClosedLoopReplyMarkRoundTrip(t *testing.T) {
	cfg := noc.DefaultConfig()
	m, _ := Benchmark("blackscholes", cfg)
	cl := NewClosedLoop(m, 9, 4)
	// Feed a synthetic delivered request and check the queued reply.
	req := flit.Header{Kind: flit.Single, VC: 2, SrcR: 3, SrcC: 1, DstR: 9, DstC: 2, Mem: 0x09001234, Seq: 7}
	cl.OnDeliver(noc.Delivery{Hdr: req, Flits: 1})
	if cl.QueuedReplies() != 1 {
		t.Fatalf("replies queued: %d", cl.QueuedReplies())
	}
	r := cl.replyQueue[0]
	if r.Hdr.Spare != ReplyMark || r.Hdr.DstR != 3 || r.Hdr.DstC != 1 {
		t.Fatalf("reply malformed: %+v", r.Hdr)
	}
	if r.NumFlits() != 5 {
		t.Fatalf("reply flits: %d", r.NumFlits())
	}
}
