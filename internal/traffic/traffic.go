// Package traffic provides the workload models that stand in for the
// paper's PARSEC and SPLASH-2 traffic traces. Real traces are not
// redistributable, so each benchmark is modelled statistically from the
// paper's own characterisation (Section III-A, Figure 1): traffic localises
// around one or two primary routers, the load an application induces
// "diminishes as the distance from the main core increases", and a
// considerable share of traffic crosses links a few hops from the primary.
// The models reproduce exactly those shapes, which is all the attack and
// mitigation results depend on.
package traffic

import (
	"fmt"
	"math"
	"sort"

	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/xrand"
)

// Model is a statistical traffic model over a concentrated NoC: a
// row-normalised source-router x destination-router weight matrix plus
// per-source injection intensities. Spatial shapes (proximity decay,
// transpose partners) are derived from the configured topology's own hop
// metric, so the same benchmark localises correctly on mesh, torus and
// ring substrates.
type Model struct {
	Name string
	// Rate is the mean packets per core per cycle, before the per-source
	// intensity shaping.
	Rate float64
	// Matrix[s][d] is the probability a packet from router s targets
	// router d (rows sum to 1).
	Matrix [][]float64
	// Intensity[s] scales each source router's injection rate (mean 1).
	Intensity []float64
	// DataFraction is the share of packets that are 5-flit data packets;
	// the rest are single-flit requests.
	DataFraction float64
	// Primary is the router the workload concentrates around.
	Primary int

	cfg noc.Config
}

// benchmarks maps names to model parameters: the primary router(s), the
// spatial decay per hop, the injection rate, the data-packet share, and an
// optional transpose component (FFT's butterfly exchanges).
var benchmarks = map[string]struct {
	primaries []int
	decay     float64
	rate      float64
	dataFrac  float64
	transpose float64 // 0..1 blend of transpose permutation traffic
	uniform   float64 // 0..1 blend of uniform background traffic
}{
	// PARSEC
	"blackscholes": {primaries: []int{0}, decay: 0.85, rate: 0.045, dataFrac: 0.35, uniform: 0.05},
	"facesim":      {primaries: []int{5}, decay: 0.55, rate: 0.060, dataFrac: 0.45, uniform: 0.10},
	"ferret":       {primaries: []int{2, 13}, decay: 0.60, rate: 0.060, dataFrac: 0.40, uniform: 0.10},
	"canneal":      {primaries: []int{6}, decay: 0.35, rate: 0.055, dataFrac: 0.50, uniform: 0.20},
	"dedup":        {primaries: []int{1, 14}, decay: 0.55, rate: 0.055, dataFrac: 0.55, uniform: 0.10},
	"swaptions":    {primaries: []int{0}, decay: 0.90, rate: 0.045, dataFrac: 0.30, uniform: 0.05},
	"vips":         {primaries: []int{9}, decay: 0.45, rate: 0.055, dataFrac: 0.45, uniform: 0.15},
	// SPLASH-2
	"fft":    {primaries: []int{0}, decay: 0.25, rate: 0.065, dataFrac: 0.50, transpose: 0.45, uniform: 0.10},
	"radix":  {primaries: []int{0}, decay: 0.30, rate: 0.060, dataFrac: 0.50, transpose: 0.30, uniform: 0.15},
	"barnes": {primaries: []int{10}, decay: 0.40, rate: 0.055, dataFrac: 0.45, uniform: 0.15},
	"ocean":  {primaries: []int{5, 10}, decay: 0.35, rate: 0.060, dataFrac: 0.55, uniform: 0.10},
	"water":  {primaries: []int{4}, decay: 0.50, rate: 0.050, dataFrac: 0.40, uniform: 0.10},
}

// Benchmarks returns the available benchmark names, sorted.
func Benchmarks() []string {
	names := make([]string, 0, len(benchmarks))
	for n := range benchmarks { //nocvet:orderfree keys are sorted before use
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Benchmark constructs the named benchmark model for the configured
// topology.
func Benchmark(name string, cfg noc.Config) (*Model, error) {
	p, ok := benchmarks[name]
	if !ok {
		return nil, fmt.Errorf("traffic: unknown benchmark %q (have %v)", name, Benchmarks())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology()
	R := cfg.Routers()
	m := &Model{
		Name:         name,
		Rate:         p.rate,
		DataFraction: p.dataFrac,
		Primary:      p.primaries[0],
		Matrix:       make([][]float64, R),
		Intensity:    make([]float64, R),
		cfg:          cfg,
	}
	// Proximity of a router to the nearest primary, decayed per hop of the
	// topology's own distance metric.
	prox := func(r int) float64 {
		best := math.Inf(1)
		for _, pr := range p.primaries {
			if d := float64(topo.HopDist(r, pr)); d < best {
				best = d
			}
		}
		return math.Exp(-p.decay * best)
	}
	for s := 0; s < R; s++ {
		row := make([]float64, R)
		sum := 0.0
		for d := 0; d < R; d++ {
			if d == s {
				continue
			}
			// Gravity component: both endpoints near a primary.
			w := prox(s) * prox(d) * (1 - p.transpose - p.uniform)
			// Transpose component (butterfly-style exchanges).
			if p.transpose > 0 && d == transposeOf(cfg, s) {
				w += p.transpose
			}
			// Uniform background.
			w += p.uniform / float64(R-1)
			row[d] = w
			sum += w
		}
		for d := range row {
			row[d] /= sum
		}
		m.Matrix[s] = row
		m.Intensity[s] = prox(s)
	}
	// Normalise intensities to mean 1 so Rate keeps its meaning, then clamp
	// the spread: real traces concentrate sources near the primary core but
	// no core sustains more than a few times the average injection rate.
	normalise := func() {
		mean := 0.0
		for _, v := range m.Intensity {
			mean += v
		}
		mean /= float64(R)
		for i := range m.Intensity {
			m.Intensity[i] /= mean
		}
	}
	normalise()
	for i, v := range m.Intensity {
		if v > 3.0 {
			m.Intensity[i] = 3.0
		}
		if v < 0.25 {
			m.Intensity[i] = 0.25
		}
	}
	normalise()
	return m, nil
}

// transposeOf maps router (x, y) to (y, x) on a square mesh or torus (or
// reflects on rectangular ones). On a ring, where there is no second
// dimension to swap, it reflects the cycle: r -> (N - r) mod N, the ring
// analogue of a butterfly exchange partner.
func transposeOf(cfg noc.Config, r int) int {
	if cfg.TopoName() == "ring" {
		return (cfg.Routers() - r) % cfg.Routers()
	}
	x, y := cfg.XY(r)
	tx, ty := y%cfg.Width, x%cfg.Height
	return cfg.RouterAt(tx, ty)
}

// Uniform returns a uniform-random model at the given packet rate.
func Uniform(cfg noc.Config, rate float64) *Model {
	R := cfg.Routers()
	m := &Model{Name: "uniform", Rate: rate, DataFraction: 0.4, Matrix: make([][]float64, R), Intensity: make([]float64, R), cfg: cfg}
	for s := 0; s < R; s++ {
		row := make([]float64, R)
		for d := 0; d < R; d++ {
			if d != s {
				row[d] = 1 / float64(R-1)
			}
		}
		m.Matrix[s] = row
		m.Intensity[s] = 1
	}
	return m
}

// Hotspot returns a model where frac of all traffic targets the hotspot
// router and the rest is uniform.
func Hotspot(cfg noc.Config, rate float64, hotspot int, frac float64) *Model {
	m := Uniform(cfg, rate)
	m.Name = "hotspot"
	m.Primary = hotspot
	for s := range m.Matrix {
		row := m.Matrix[s]
		sum := 0.0
		for d := range row {
			if d == hotspot && d != s {
				row[d] = frac + (1-frac)*row[d]
			} else {
				row[d] *= 1 - frac
			}
			sum += row[d]
		}
		for d := range row {
			row[d] /= sum
		}
	}
	return m
}

// Transpose returns the classic transpose permutation workload.
func Transpose(cfg noc.Config, rate float64) *Model {
	R := cfg.Routers()
	m := &Model{Name: "transpose", Rate: rate, DataFraction: 0.4, Matrix: make([][]float64, R), Intensity: make([]float64, R), cfg: cfg}
	for s := 0; s < R; s++ {
		row := make([]float64, R)
		d := transposeOf(cfg, s)
		if d == s {
			d = (s + R/2) % R
		}
		row[d] = 1
		m.Matrix[s] = row
		m.Intensity[s] = 1
	}
	return m
}

// Generator draws packets from a model, deterministically from a seed.
type Generator struct {
	m   *Model
	rng *xrand.RNG
	seq []uint8 // per-core packet sequence numbers
}

// Generator returns a new deterministic packet source for the model.
func (m *Model) Generator(seed uint64) *Generator {
	return &Generator{m: m, rng: xrand.New(seed), seq: make([]uint8, m.cfg.Cores())}
}

// Reset rewinds the generator to its post-construction state for the given
// seed without allocating: the RNG is reseeded in place and the per-core
// sequence numbers cleared, so the subsequent draw stream is identical to a
// fresh Generator(seed). Simulation arenas use it to reuse one generator
// across scenario points.
func (g *Generator) Reset(seed uint64) {
	g.rng.Seed(seed)
	for i := range g.seq {
		g.seq[i] = 0
	}
}

// Model returns the model the generator draws from.
func (g *Generator) Model() *Model { return g.m }

// Tick rolls injection for every core for one cycle and calls inject for
// each generated packet. inject reports acceptance; rejected packets are
// simply dropped by the generator (the source is stalled, which the
// injection-queue occupancy statistics already capture).
func (g *Generator) Tick(inject func(core int, p *flit.Packet) bool) {
	cfg := g.m.cfg
	for core := 0; core < cfg.Cores(); core++ {
		r := cfg.CoreRouter(core)
		if !g.rng.Bool(g.m.Rate * g.m.Intensity[r]) {
			continue
		}
		inject(core, g.Packet(core))
	}
}

// Packet draws one packet originating at the given core.
func (g *Generator) Packet(core int) *flit.Packet {
	cfg := g.m.cfg
	src := cfg.CoreRouter(core)
	dst := g.sampleDst(src)
	g.seq[core]++
	p := &flit.Packet{
		Hdr: flit.Header{
			VC:   uint8(g.rng.Intn(cfg.VCs)),
			DstR: uint8(dst),
			DstC: uint8(g.rng.Intn(cfg.Concentration)),
			// Addresses are laid out per destination router so memory-
			// address trojan targets correspond to network regions.
			Mem: uint32(dst)<<24 | uint32(g.rng.Intn(1<<20)),
			Seq: g.seq[core],
		},
	}
	if g.rng.Bool(g.m.DataFraction) {
		p.Body = make([]uint64, 4) // 5-flit data packet
		for i := range p.Body {
			p.Body[i] = g.rng.Uint64()
		}
	}
	return p
}

// TickInto is the allocation-free Tick: generated packets are written into
// the caller-owned scratch packet, which inject must fully consume before
// returning (noc.Network.Inject copies the flits into the NI queue, so
// passing it through a closure over a network satisfies that). The RNG draw
// order is exactly Tick's, so a generator driven by TickInto from a given
// seed produces the same traffic as one driven by Tick.
func (g *Generator) TickInto(scratch *flit.Packet, inject func(core int, p *flit.Packet) bool) {
	cfg := g.m.cfg
	for core := 0; core < cfg.Cores(); core++ {
		r := cfg.CoreRouter(core)
		if !g.rng.Bool(g.m.Rate * g.m.Intensity[r]) {
			continue
		}
		g.PacketInto(core, scratch)
		inject(core, scratch)
	}
}

// PacketInto draws one packet originating at the given core into a
// caller-owned packet, reusing its body storage once grown: the
// allocation-free Packet. The RNG draw order (destination, VC, core,
// address, data coin, body words) replicates Packet exactly, so the two are
// interchangeable without perturbing a seeded run.
func (g *Generator) PacketInto(core int, p *flit.Packet) {
	cfg := g.m.cfg
	src := cfg.CoreRouter(core)
	dst := g.sampleDst(src)
	g.seq[core]++
	vc := uint8(g.rng.Intn(cfg.VCs))
	dstC := uint8(g.rng.Intn(cfg.Concentration))
	mem := uint32(dst)<<24 | uint32(g.rng.Intn(1<<20))
	p.Hdr = flit.Header{VC: vc, DstR: uint8(dst), DstC: dstC, Mem: mem, Seq: g.seq[core]}
	if g.rng.Bool(g.m.DataFraction) {
		if cap(p.Body) < 4 {
			p.Body = make([]uint64, 4) // cold: first data packet only; reused after
		}
		p.Body = p.Body[:4]
		for i := range p.Body {
			p.Body[i] = g.rng.Uint64()
		}
	} else {
		p.Body = p.Body[:0]
	}
}

// sampleDst draws a destination router from the model's matrix row.
func (g *Generator) sampleDst(src int) int {
	x := g.rng.Float64()
	row := g.m.Matrix[src]
	acc := 0.0
	for d, w := range row {
		acc += w
		if x < acc {
			return d
		}
	}
	// Floating-point slack: return the last nonzero entry.
	for d := len(row) - 1; d >= 0; d-- {
		if row[d] > 0 {
			return d
		}
	}
	return (src + 1) % len(row)
}

// LinkLoads computes the analytic per-link traffic shares of a model under
// the topology's default routing (the quantity in Figure 1(c)). The return
// maps each directed link (keyed by "from->to") to its share of total link
// traversals.
func LinkLoads(m *Model, cfg noc.Config) map[string]float64 {
	return LinkLoadsWhere(m, cfg, nil)
}

// LinkLoadsWhere computes per-link traffic shares restricted to flows for
// which keep(src, dst) is true (nil keeps all). The attacker's link-
// selection analysis (Section III-A) uses this to place trojans on the
// links its *target* flows actually cross.
func LinkLoadsWhere(m *Model, cfg noc.Config, keep func(src, dst int) bool) map[string]float64 {
	loads := map[string]float64{}
	total := 0.0
	topo := cfg.Topology()
	route := noc.RouteTable(topo)
	next := map[[2]int]int{}
	for _, ls := range topo.Links() {
		next[[2]int{ls.From, ls.FromPort}] = ls.To
	}
	for s := 0; s < cfg.Routers(); s++ {
		for d := 0; d < cfg.Routers(); d++ {
			w := m.Matrix[s][d] * m.Intensity[s]
			if w == 0 || s == d || (keep != nil && !keep(s, d)) {
				continue
			}
			cur := s
			for cur != d {
				port := route(cur, d)
				nb := next[[2]int{cur, port}]
				key := fmt.Sprintf("%d->%d", cur, nb)
				loads[key] += w
				total += w
				cur = nb
			}
		}
	}
	for k := range loads { //nocvet:orderfree in-place normalisation, each key independent
		loads[k] /= total
	}
	return loads
}

// RouterTotals returns per-router outbound packet weight (Figure 1(b)'s
// geographic source hot spots).
func RouterTotals(m *Model) []float64 {
	out := make([]float64, len(m.Matrix))
	for s := range m.Matrix {
		out[s] = m.Intensity[s]
	}
	return out
}
