package campaign

import (
	"strconv"

	"tasp/internal/core"
	"tasp/internal/detect"
)

// Record is one campaign point's flat result row — the scenario identity
// plus the scalar outcomes the aggregator consumes. It deliberately omits
// the bulky time series (Samples, SuspectTrace); sweeps that need those run
// the point through the harness layer instead.
type Record struct {
	Index int `json:"index"`

	Topology   string `json:"topology"`
	Width      int    `json:"width"`
	Height     int    `json:"height"`
	Benchmark  string `json:"benchmark"`
	Attack     string `json:"attack"`
	Mitigation string `json:"mitigation"`
	Seed       uint64 `json:"seed"`

	InfectedLinks   []int   `json:"infected_links"` // reused across points in the worker loop
	Throughput      float64 `json:"throughput"`
	AvgLatency      float64 `json:"avg_latency"`
	P99Latency      uint64  `json:"p99_latency"`
	Delivered       uint64  `json:"delivered"`
	VictimDelivered uint64  `json:"victim_delivered"`
	HTMatches       uint64  `json:"ht_matches"`
	HTInjections    uint64  `json:"ht_injections"`
	Obfuscated      uint64  `json:"obfuscated"`
	StallCycles     uint64  `json:"stall_cycles"`
	BISTScans       uint64  `json:"bist_scans"`
	FirstTrojanAt   uint64  `json:"first_trojan_at"`
	ReroutedAt      uint64  `json:"rerouted_at"`
	FlaggedLinks    int     `json:"flagged_links"`
	TrojanLinks     int     `json:"trojan_links"`
	BlockedRouters  int     `json:"blocked_routers"`
	Routers         int     `json:"routers"`

	// Flit-loss split by cause (noc.Counters): trojan-induced in-flight
	// swallows and their orphaned bodies vs mitigation-induced losses.
	DroppedInFlight uint64 `json:"dropped_inflight"`
	DroppedRetrans  uint64 `json:"dropped_retrans"`
	DroppedOrphan   uint64 `json:"dropped_orphan"`
	DroppedReconfig uint64 `json:"dropped_reconfig"`
	// AckFlagged counts links the secure-ack monitor convicted as droppers
	// or misrouters (0 on runs without SecureAck); RecoveredAt is the cycle
	// conviction-driven recovery first rerouted around a convicted link
	// (0 on runs without Recover, or when nothing was convicted).
	AckFlagged  int    `json:"ack_flagged"`
	RecoveredAt uint64 `json:"recovered_at"`
}

// Fill populates the outcome fields from a run's results (the scenario
// identity fields are the caller's). It must stay allocation-free: it runs
// once per point inside the worker loop.
func (r *Record) Fill(res *core.Results) {
	//nocvet:allowalloc amortized high-water growth of the worker's reused record
	r.InfectedLinks = append(r.InfectedLinks[:0], res.InfectedLinks...)
	r.Throughput = res.Throughput
	r.AvgLatency = res.AvgLatency
	r.P99Latency = res.Latency.Percentile(99)
	r.Delivered = res.Final.DeliveredPackets
	r.VictimDelivered = res.VictimDelivered
	r.HTMatches = res.HTMatches
	r.HTInjections = res.HTInjections
	r.Obfuscated = res.Obfuscated
	r.StallCycles = res.StallCycles
	r.BISTScans = res.BISTScans
	r.FirstTrojanAt = res.FirstTrojanAt
	r.ReroutedAt = res.ReroutedAt
	r.FlaggedLinks = len(res.Detections)
	r.TrojanLinks = 0
	for _, cl := range res.Detections { //nocvet:orderfree commutative count
		if cl == detect.Trojan {
			r.TrojanLinks++
		}
	}
	r.Routers = res.Config.Noc.Routers()
	r.BlockedRouters = 0
	if n := len(res.Samples); n > 0 {
		r.BlockedRouters = res.Samples[n-1].BlockedRouters
	}
	r.DroppedInFlight = res.Final.DroppedInFlight
	r.DroppedRetrans = res.Final.DroppedRetrans
	r.DroppedOrphan = res.Final.DroppedOrphan
	r.DroppedReconfig = res.Final.DroppedReconfig
	r.AckFlagged = 0
	for _, c := range res.AckVerdicts { //nocvet:orderfree commutative count
		if c == detect.AckDropper || c == detect.AckMisroute {
			r.AckFlagged++
		}
	}
	r.RecoveredAt = res.RecoveredAt
}

// appendJSONString appends a JSON string. Campaign identity strings are
// plain names (topologies, benchmarks, attack kinds), so only the escapes
// that can actually occur in Go's %v renderings are handled.
//
//nocvet:allowalloc appends into the recycled line buffer; 0 allocs/op steady state pinned by BenchmarkCampaignPoint
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			dst = append(dst, '\\', c)
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

//nocvet:allowalloc appends into the recycled line buffer; 0 allocs/op steady state pinned by BenchmarkCampaignPoint
func appendField(dst []byte, first bool, name string) []byte {
	if !first {
		dst = append(dst, ',')
	}
	dst = append(dst, '"')
	dst = append(dst, name...)
	return append(dst, '"', ':')
}

// AppendJSONL appends the record as one JSON line (with trailing newline).
// The encoding is hand-rolled over strconv so the worker loop stays
// allocation-free once dst has grown to line size; the field names and
// order match the struct tags, so encoding/json can read the lines back.
//
//nocvet:allowalloc appends into the recycled line buffer; 0 allocs/op steady state pinned by BenchmarkCampaignPoint
func (r *Record) AppendJSONL(dst []byte) []byte {
	dst = append(dst, '{')
	dst = appendField(dst, true, "index")
	dst = strconv.AppendInt(dst, int64(r.Index), 10)
	dst = appendField(dst, false, "topology")
	dst = appendJSONString(dst, r.Topology)
	dst = appendField(dst, false, "width")
	dst = strconv.AppendInt(dst, int64(r.Width), 10)
	dst = appendField(dst, false, "height")
	dst = strconv.AppendInt(dst, int64(r.Height), 10)
	dst = appendField(dst, false, "benchmark")
	dst = appendJSONString(dst, r.Benchmark)
	dst = appendField(dst, false, "attack")
	dst = appendJSONString(dst, r.Attack)
	dst = appendField(dst, false, "mitigation")
	dst = appendJSONString(dst, r.Mitigation)
	dst = appendField(dst, false, "seed")
	dst = strconv.AppendUint(dst, r.Seed, 10)
	dst = appendField(dst, false, "infected_links")
	dst = append(dst, '[')
	for i, id := range r.InfectedLinks {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(id), 10)
	}
	dst = append(dst, ']')
	dst = appendField(dst, false, "throughput")
	dst = strconv.AppendFloat(dst, r.Throughput, 'g', -1, 64)
	dst = appendField(dst, false, "avg_latency")
	dst = strconv.AppendFloat(dst, r.AvgLatency, 'g', -1, 64)
	dst = appendField(dst, false, "p99_latency")
	dst = strconv.AppendUint(dst, r.P99Latency, 10)
	dst = appendField(dst, false, "delivered")
	dst = strconv.AppendUint(dst, r.Delivered, 10)
	dst = appendField(dst, false, "victim_delivered")
	dst = strconv.AppendUint(dst, r.VictimDelivered, 10)
	dst = appendField(dst, false, "ht_matches")
	dst = strconv.AppendUint(dst, r.HTMatches, 10)
	dst = appendField(dst, false, "ht_injections")
	dst = strconv.AppendUint(dst, r.HTInjections, 10)
	dst = appendField(dst, false, "obfuscated")
	dst = strconv.AppendUint(dst, r.Obfuscated, 10)
	dst = appendField(dst, false, "stall_cycles")
	dst = strconv.AppendUint(dst, r.StallCycles, 10)
	dst = appendField(dst, false, "bist_scans")
	dst = strconv.AppendUint(dst, r.BISTScans, 10)
	dst = appendField(dst, false, "first_trojan_at")
	dst = strconv.AppendUint(dst, r.FirstTrojanAt, 10)
	dst = appendField(dst, false, "rerouted_at")
	dst = strconv.AppendUint(dst, r.ReroutedAt, 10)
	dst = appendField(dst, false, "flagged_links")
	dst = strconv.AppendInt(dst, int64(r.FlaggedLinks), 10)
	dst = appendField(dst, false, "trojan_links")
	dst = strconv.AppendInt(dst, int64(r.TrojanLinks), 10)
	dst = appendField(dst, false, "blocked_routers")
	dst = strconv.AppendInt(dst, int64(r.BlockedRouters), 10)
	dst = appendField(dst, false, "routers")
	dst = strconv.AppendInt(dst, int64(r.Routers), 10)
	dst = appendField(dst, false, "dropped_inflight")
	dst = strconv.AppendUint(dst, r.DroppedInFlight, 10)
	dst = appendField(dst, false, "dropped_retrans")
	dst = strconv.AppendUint(dst, r.DroppedRetrans, 10)
	dst = appendField(dst, false, "dropped_orphan")
	dst = strconv.AppendUint(dst, r.DroppedOrphan, 10)
	dst = appendField(dst, false, "dropped_reconfig")
	dst = strconv.AppendUint(dst, r.DroppedReconfig, 10)
	dst = appendField(dst, false, "ack_flagged")
	dst = strconv.AppendInt(dst, int64(r.AckFlagged), 10)
	dst = appendField(dst, false, "recovered_at")
	dst = strconv.AppendUint(dst, r.RecoveredAt, 10)
	return append(dst, '}', '\n')
}
