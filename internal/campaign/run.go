package campaign

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"

	"tasp/internal/core"
)

// Options configures a sweep execution.
type Options struct {
	// Workers is the pool size (0 = GOMAXPROCS). The output bytes are
	// identical at any worker count.
	Workers int
	// CheckpointEvery commits a checkpoint every N records (0 = 64).
	CheckpointEvery int
	// Resume continues a previous run of the same spec from its checkpoint:
	// the output file is truncated to the last committed byte and the sweep
	// restarts at the first uncommitted point.
	Resume bool
	// OnRecord, when set, is called after each committed record with the
	// total committed so far (progress reporting; also the test hook that
	// kills runs mid-sweep).
	OnRecord func(written int)
}

// Run executes a spec's grid into a JSONL file at outPath (one Record per
// point, in grid order) with a checkpoint sidecar next to it. It returns
// the number of records committed over the run's whole life (including a
// resumed prefix). A context cancellation stops the sweep at a record
// boundary — already-committed output stays valid for Resume — and returns
// ctx.Err().
func Run(ctx context.Context, spec Spec, outPath string, opt Options) (int, error) {
	scenarios := spec.Expand()
	hash := spec.Hash()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ckptEvery := opt.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 64
	}
	ckptPath := CheckpointPath(outPath)

	start := 0
	var offset int64
	if opt.Resume {
		ck, ok, err := ReadCheckpoint(ckptPath)
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, fmt.Errorf("resume: no checkpoint at %s", ckptPath)
		}
		if ck.SpecHash != hash {
			return 0, fmt.Errorf("resume: checkpoint %s was written by a different spec", ckptPath)
		}
		if ck.Written > len(scenarios) {
			return 0, fmt.Errorf("resume: checkpoint claims %d records but the grid has %d points", ck.Written, len(scenarios))
		}
		start, offset = ck.Written, ck.Offset
	}

	flags := os.O_CREATE | os.O_WRONLY
	if !opt.Resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(outPath, flags, 0o644)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if opt.Resume {
		// The checkpoint must describe THIS file: truncating to an offset
		// beyond the end would zero-extend the JSONL (sparse NULs), silently
		// breaking byte-determinism. A longer offset means the sidecar is
		// stale or belongs to a different output file.
		st, err := f.Stat()
		if err != nil {
			return 0, err
		}
		if offset > st.Size() {
			return 0, fmt.Errorf("resume: checkpoint %s claims offset %d but %s is only %d bytes (stale or foreign checkpoint)",
				ckptPath, offset, outPath, st.Size())
		}
		// Drop any partial record written after the last checkpoint.
		if err := f.Truncate(offset); err != nil {
			return 0, err
		}
		if _, err := f.Seek(offset, 0); err != nil {
			return 0, err
		}
	}

	w := &writer{
		f:         f,
		ckptPath:  ckptPath,
		ckptEvery: ckptEvery,
		specHash:  hash,
		next:      start,
		written:   start,
		offset:    offset,
		pending:   map[int][]byte{},
		free:      make(chan []byte, 4*workers+4),
		onRecord:  opt.OnRecord,
	}

	// Workers stripe the remaining points statically — worker w takes
	// points start+w, start+w+W, ... — so each worker's sequence (and its
	// arena reuse) is deterministic, though determinism of the output only
	// relies on per-point determinism plus the in-order writer.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan encoded, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			if err := worker(runCtx, scenarios, start+wk, workers, w.free, results); err != nil {
				errs <- err
				cancel()
			}
		}(wk)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var failed error
	for e := range results {
		if failed != nil {
			continue // drain so workers aren't blocked on send
		}
		if err := w.commit(e); err != nil {
			failed = err
			cancel()
		}
	}
	if failed == nil {
		select {
		case failed = <-errs:
		default:
		}
	}
	if failed == nil {
		failed = ctx.Err()
	}
	// Commit what we have — on success, cancellation and worker failure
	// alike — so the run is resumable from the last complete record.
	if w.dirty > 0 || w.written == start {
		if err := w.checkpoint(); err != nil && failed == nil {
			failed = err
		}
	}
	return w.written, failed
}

// worker runs every stripeth point from first, encoding each result into a
// recycled buffer. One core.Runner per worker: repeated points on the same
// platform reuse its arenas, which is where the engine's 0 allocs/point
// steady state comes from.
func worker(ctx context.Context, scenarios []Scenario, first, stripe int, free chan []byte, results chan<- encoded) error {
	runner := core.NewRunner()
	res := &core.Results{} //nocvet:allowalloc once per worker, not per point; RunInto reuses it
	var rec Record
	for i := first; i < len(scenarios); i += stripe {
		if ctx.Err() != nil {
			return nil
		}
		sc := scenarios[i]
		cfg, err := sc.Config()
		if err != nil {
			return fmt.Errorf("point %d: %w", i, err) //nocvet:allowalloc error path aborts the sweep
		}
		if err := runner.RunInto(cfg, res); err != nil {
			return fmt.Errorf("point %d: %w", i, err) //nocvet:allowalloc error path aborts the sweep
		}
		rec.Index = i
		rec.Topology = cfg.Noc.Topo
		if rec.Topology == "" {
			rec.Topology = "mesh"
		}
		rec.Width, rec.Height = cfg.Noc.Width, cfg.Noc.Height
		rec.Benchmark = cfg.Benchmark
		rec.Attack = sc.Attack.Name()
		rec.Mitigation = cfg.Mitigation.String()
		rec.Seed = sc.Seed
		rec.Fill(res)
		var buf []byte
		select {
		case buf = <-free:
		default: // pool empty; grow it
		}
		buf = rec.AppendJSONL(buf[:0])
		//nocvet:nondet commit order is index-restored by the writer; the race only decides shutdown timing
		select {
		case results <- encoded{index: i, buf: buf}:
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}
