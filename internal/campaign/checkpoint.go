package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// Checkpoint records how much of a sweep's output is committed. Written
// counts whole records; Offset is the output file's byte length at that
// point. A resume truncates the output to Offset — discarding any partial
// record from the kill — and continues at point Written, which is what
// makes the concatenation byte-identical to an uninterrupted run.
type Checkpoint struct {
	SpecHash uint64 `json:"spec_hash"`
	Written  int    `json:"written"`
	Offset   int64  `json:"offset"`
}

// CheckpointPath is the sidecar path for an output file.
func CheckpointPath(outPath string) string { return outPath + ".ckpt" }

// ReadCheckpoint loads a checkpoint sidecar; ok is false when none exists.
func ReadCheckpoint(path string) (ck Checkpoint, ok bool, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, err
	}
	if err := json.Unmarshal(data, &ck); err != nil {
		return Checkpoint{}, false, fmt.Errorf("corrupt checkpoint %s: %w", path, err)
	}
	return ck, true, nil
}

// writeCheckpoint commits a checkpoint atomically (write temp, rename), so
// a kill during checkpointing leaves either the old or the new sidecar,
// never a torn one.
func writeCheckpoint(path string, ck Checkpoint) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
