package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"tasp/internal/tab"
)

// ReadRecords decodes a JSONL stream produced by Run.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GroupKey identifies one experimental condition: every grid axis except
// the seed, which is the replication axis.
type GroupKey struct {
	Topology   string
	Width      int
	Height     int
	Benchmark  string
	Attack     string
	Mitigation string
}

func (k GroupKey) String() string {
	return fmt.Sprintf("%s %dx%d %s attack=%s mit=%s",
		k.Topology, k.Width, k.Height, k.Benchmark, k.Attack, k.Mitigation)
}

// Stat is a mean with a 95% confidence interval over seeds (normal
// approximation; sweeps replicate tens of seeds, where z and t differ by a
// few percent at most).
type Stat struct {
	N        int
	Mean     float64
	HalfCI95 float64
}

func newStat(vals []float64) Stat {
	s := Stat{N: len(vals)}
	if s.N == 0 {
		return s
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	if s.N < 2 {
		return s
	}
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(s.N-1))
	s.HalfCI95 = 1.96 * sd / math.Sqrt(float64(s.N))
	return s
}

// Group is one condition's aggregate over its seeds.
type Group struct {
	Key             GroupKey
	Throughput      Stat
	AvgLatency      Stat
	VictimDelivered Stat
	// First is the group's first record in grid order, for the per-run
	// fields that are seed-invariant by construction (infected placement,
	// router count) or reported as a representative sample (blocked
	// routers).
	First Record
}

// Aggregate groups records by condition, in first-appearance (grid) order.
func Aggregate(records []Record) []Group {
	index := map[GroupKey]int{}
	var groups []Group
	members := map[GroupKey][]Record{}
	for _, rec := range records {
		k := GroupKey{rec.Topology, rec.Width, rec.Height, rec.Benchmark, rec.Attack, rec.Mitigation}
		if _, ok := index[k]; !ok {
			index[k] = len(groups)
			groups = append(groups, Group{Key: k, First: rec})
		}
		members[k] = append(members[k], rec)
	}
	for i := range groups {
		ms := members[groups[i].Key]
		col := func(f func(Record) float64) Stat {
			vals := make([]float64, len(ms))
			for j, m := range ms {
				vals[j] = f(m)
			}
			return newStat(vals)
		}
		groups[i].Throughput = col(func(r Record) float64 { return r.Throughput })
		groups[i].AvgLatency = col(func(r Record) float64 { return r.AvgLatency })
		groups[i].VictimDelivered = col(func(r Record) float64 { return float64(r.VictimDelivered) })
	}
	return groups
}

// meanCI renders a stat as "mean" or "mean ±ci".
func meanCI(s Stat) string {
	if s.N < 2 || s.HalfCI95 == 0 {
		return tab.F3(s.Mean)
	}
	return fmt.Sprintf("%s ±%s", tab.F3(s.Mean), tab.F3(s.HalfCI95))
}

// Table renders the generic aggregate: one row per condition with seed
// count, throughput and latency (mean ±95% CI).
func Table(groups []Group) tab.Table {
	t := tab.Table{
		Title:   "Campaign aggregate (mean ±95% CI over seeds)",
		Columns: []string{"topology", "dims", "benchmark", "attack", "mitigation", "seeds", "tput", "avg lat", "victim pkts"},
	}
	for _, g := range groups {
		t.Rows = append(t.Rows, []string{
			g.Key.Topology,
			fmt.Sprintf("%dx%d", g.Key.Width, g.Key.Height),
			g.Key.Benchmark,
			g.Key.Attack,
			g.Key.Mitigation,
			fmt.Sprintf("%d", g.Throughput.N),
			meanCI(g.Throughput),
			meanCI(g.AvgLatency),
			meanCI(g.VictimDelivered),
		})
	}
	return t
}

// CrossTopologyTable renders the paper harness's cross-topology attack
// table (exp.AblationTopology's exact columns and cell formats) from
// campaign records. Each topology needs three conditions in the record set:
// a clean arm (attack none, mitigation none), an attacked arm (attack on,
// mitigation none) and a defended arm (attack on, mitigation s2s-lob).
// Single-seed grids reproduce the harness's cells byte-for-byte — the
// parity check between the two experiment stacks.
func CrossTopologyTable(records []Record) (tab.Table, error) {
	t := tab.Table{
		Title: "Campaign: attack potency and S2S L-Ob mitigation across topologies (Figure 11 protocol per substrate)",
		Columns: []string{
			"topology", "infected", "clean tput", "attacked tput", "retained",
			"l-ob tput", "l-ob retained", "blocked (none)",
		},
	}
	groups := Aggregate(records)
	type arms struct {
		clean, attacked, defended *Group
	}
	byTopo := map[string]*arms{}
	var topoOrder []string
	for i := range groups {
		g := &groups[i]
		a := byTopo[g.Key.Topology]
		if a == nil {
			a = &arms{}
			byTopo[g.Key.Topology] = a
			topoOrder = append(topoOrder, g.Key.Topology)
		}
		switch {
		case g.Key.Attack == "none" && g.Key.Mitigation == "none":
			a.clean = g
		case g.Key.Attack != "none" && g.Key.Mitigation == "none":
			a.attacked = g
		case g.Key.Attack != "none" && g.Key.Mitigation == "s2s-lob":
			a.defended = g
		}
	}
	// Rows follow the topologies' first appearance in the records — the
	// grid's own axis order, matching the harness table's row order when
	// the spec lists topologies the same way.
	for _, topo := range topoOrder {
		a := byTopo[topo]
		if a.clean == nil || a.attacked == nil || a.defended == nil {
			return t, fmt.Errorf("topology %s: the cross-topology preset needs clean, attacked and s2s-lob arms", topo)
		}
		t.Rows = append(t.Rows, []string{
			topo,
			fmt.Sprintf("%v", a.attacked.First.InfectedLinks),
			tab.F3(a.clean.Throughput.Mean),
			tab.F3(a.attacked.Throughput.Mean),
			tab.Pct(a.attacked.Throughput.Mean / a.clean.Throughput.Mean),
			tab.F3(a.defended.Throughput.Mean),
			tab.Pct(a.defended.Throughput.Mean / a.clean.Throughput.Mean),
			fmt.Sprintf("%d/%d", a.attacked.First.BlockedRouters, a.attacked.First.Routers),
		})
	}
	return t, nil
}
