package campaign

import (
	"os"
)

// encoded is one point's JSONL line in flight from a worker to the writer.
type encoded struct {
	index int
	buf   []byte
}

// writer serialises worker output back into grid order and commits it with
// periodic checkpoints. Workers finish points out of order (static striping
// plus unequal point costs); the writer holds early arrivals in pending
// until the next expected index lands, so the file's bytes never depend on
// worker count or scheduling.
//
// All shared mutable state of a sweep lives here, single-goroutine; the
// workers only communicate over the results channel.
type writer struct {
	f         *os.File
	ckptPath  string
	ckptEvery int
	specHash  uint64

	next    int // next grid index to commit
	written int // records committed over the sweep's whole life
	offset  int64
	dirty   int // records since the last checkpoint
	pending map[int][]byte
	free    chan []byte // recycled line buffers back to the workers

	onRecord func(written int)
}

// commit writes every consecutively-available record starting at next.
func (w *writer) commit(e encoded) error {
	w.pending[e.index] = e.buf
	for {
		buf, ok := w.pending[w.next]
		if !ok {
			return nil
		}
		delete(w.pending, w.next)
		if _, err := w.f.Write(buf); err != nil {
			return err
		}
		w.offset += int64(len(buf))
		w.next++
		w.written++
		w.dirty++
		select {
		case w.free <- buf:
		default: // pool full; let the buffer go
		}
		if w.ckptEvery > 0 && w.dirty >= w.ckptEvery {
			if err := w.checkpoint(); err != nil {
				return err
			}
		}
		if w.onRecord != nil {
			w.onRecord(w.written)
		}
	}
}

// checkpoint flushes the output file and commits the sidecar. The data is
// synced before the checkpoint is written: the checkpoint must never claim
// bytes the filesystem could still lose.
func (w *writer) checkpoint() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := writeCheckpoint(w.ckptPath, Checkpoint{
		SpecHash: w.specHash,
		Written:  w.written,
		Offset:   w.offset,
	}); err != nil {
		return err
	}
	w.dirty = 0
	return nil
}
