package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testSpec is a small but heterogeneous grid: two topologies, two traffic
// models, attack on/off, two mitigations, two seeds — 32 points, cycles cut
// down so the whole grid runs in a couple of seconds.
func testSpec() Spec {
	return Spec{
		Topologies:  []string{"mesh", "ring"},
		Benchmarks:  []string{"blackscholes", "fft"},
		Attacks:     []AttackSpec{{Kind: "none"}, {Kind: "dest"}},
		Mitigations: []string{"none", "s2s-lob"},
		Seeds:       []uint64{1, 2},
		Warmup:      150,
		Measure:     150,
	}
}

func runToBytes(t *testing.T, spec Spec, opt Options) []byte {
	t.Helper()
	out := filepath.Join(t.TempDir(), "out.jsonl")
	n, err := Run(context.Background(), spec, out, opt)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != spec.Size() {
		t.Fatalf("run wrote %d records, grid has %d points", n, spec.Size())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGridExpansion pins the canonical expansion order and size.
func TestGridExpansion(t *testing.T) {
	spec := testSpec()
	scenarios := spec.Expand()
	if len(scenarios) != 32 || spec.Size() != 32 {
		t.Fatalf("expected 32 points, got %d (Size %d)", len(scenarios), spec.Size())
	}
	// Seeds innermost, then mitigations, attacks, benchmarks, topologies.
	if scenarios[0].Seed != 1 || scenarios[1].Seed != 2 {
		t.Errorf("seeds are not the innermost axis: %+v %+v", scenarios[0], scenarios[1])
	}
	if scenarios[0].Mitigation != "none" || scenarios[2].Mitigation != "s2s-lob" {
		t.Errorf("mitigations should advance after seeds: %+v", scenarios[2])
	}
	if scenarios[0].Topology != "mesh" || scenarios[16].Topology != "ring" {
		t.Errorf("topologies should be the outermost axis: %+v", scenarios[16])
	}
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec should validate: %v", err)
	}
	bad := spec
	bad.Mitigations = []string{"firewall"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown mitigation should fail validation")
	}
}

// TestParseSpecRejectsUnknownFields guards against typo'd axes silently
// running the default grid.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"topolgies": ["mesh"]}`)); err == nil {
		t.Fatal("misspelled axis should be rejected")
	}
	s, err := ParseSpec([]byte(`{"topologies": ["mesh"], "seed_count": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("want 3 points, got %d", s.Size())
	}
}

// TestWorkerCountInvariance is the campaign determinism contract: the same
// grid produces byte-identical JSONL at any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	spec := testSpec()
	ref := runToBytes(t, spec, Options{Workers: 1})
	if len(ref) == 0 {
		t.Fatal("no output")
	}
	for _, workers := range []int{4, 8} {
		got := runToBytes(t, spec, Options{Workers: workers})
		if !bytes.Equal(ref, got) {
			t.Errorf("workers=%d output differs from workers=1 (%d vs %d bytes)", workers, len(got), len(ref))
		}
	}
}

// TestRecordRoundTrip checks the hand-rolled encoder against encoding/json:
// every line must decode back to the record the worker produced.
func TestRecordRoundTrip(t *testing.T) {
	spec := testSpec()
	data := runToBytes(t, spec, Options{Workers: 4})
	records, err := ReadRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(records) != spec.Size() {
		t.Fatalf("decoded %d records, want %d", len(records), spec.Size())
	}
	for i, rec := range records {
		if rec.Index != i {
			t.Fatalf("record %d has index %d: output is not in grid order", i, rec.Index)
		}
		// Re-encode through both encoders: the manual one must agree with
		// encoding/json on content.
		var std Record
		line := rec.AppendJSONL(nil)
		if err := json.Unmarshal(line, &std); err != nil {
			t.Fatalf("record %d: re-encode: %v", i, err)
		}
		if !reflect.DeepEqual(rec, std) {
			t.Fatalf("record %d corrupted by re-encode:\n%+v\n%+v", i, rec, std)
		}
	}
	// The attacked mesh arms must actually show the attack.
	saw := false
	for _, rec := range records {
		if rec.Attack == "dest" && rec.Mitigation == "none" && rec.Topology == "mesh" && rec.HTInjections > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("no attacked mesh record shows trojan injections")
	}
}

// TestKillResumeByteIdentical kills a sweep mid-run (via context
// cancellation from the record hook), resumes it, and requires the
// concatenated output to be byte-identical to an uninterrupted run — at
// several worker counts and kill points.
func TestKillResumeByteIdentical(t *testing.T) {
	spec := testSpec()
	ref := runToBytes(t, spec, Options{Workers: 1})
	for _, workers := range []int{1, 4, 8} {
		for _, killAfter := range []int{3, 17} {
			out := filepath.Join(t.TempDir(), "out.jsonl")
			ctx, cancel := context.WithCancel(context.Background())
			n, err := Run(ctx, spec, out, Options{
				Workers:         workers,
				CheckpointEvery: 5,
				OnRecord: func(written int) {
					if written >= killAfter {
						cancel()
					}
				},
			})
			cancel()
			if err == nil {
				t.Fatalf("workers=%d kill=%d: cancelled run reported success after %d records", workers, killAfter, n)
			}
			ck, ok, err := ReadCheckpoint(CheckpointPath(out))
			if err != nil || !ok {
				t.Fatalf("workers=%d kill=%d: no checkpoint after kill: %v", workers, killAfter, err)
			}
			if ck.Written < killAfter {
				t.Fatalf("workers=%d kill=%d: checkpoint written=%d below the kill point", workers, killAfter, ck.Written)
			}
			if workers == 1 && ck.Written >= spec.Size() {
				// With one worker, in-flight work past the kill point is
				// bounded, so the run must genuinely have stopped early.
				t.Fatalf("workers=1 kill=%d: run completed despite cancellation", killAfter)
			}
			// Simulate the kill happening after more bytes hit the file than
			// the checkpoint committed: append garbage that the resume's
			// truncation must discard.
			f, err := os.OpenFile(out, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(`{"index":9999,"torn`); err != nil {
				t.Fatal(err)
			}
			f.Close()
			n, err = Run(context.Background(), spec, out, Options{
				Workers: workers,
				Resume:  true,
			})
			if err != nil {
				t.Fatalf("workers=%d kill=%d: resume: %v", workers, killAfter, err)
			}
			if n != spec.Size() {
				t.Fatalf("workers=%d kill=%d: resume finished at %d/%d records", workers, killAfter, n, spec.Size())
			}
			got, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Errorf("workers=%d kill=%d: resumed output differs from uninterrupted run", workers, killAfter)
			}
		}
	}
}

// TestResumeGuards pins the failure modes: resuming without a checkpoint,
// or against a different spec, must fail loudly.
func TestResumeGuards(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.jsonl")
	spec := testSpec()
	if _, err := Run(context.Background(), spec, out, Options{Workers: 2, Resume: true}); err == nil {
		t.Fatal("resume without a checkpoint should fail")
	}
	if _, err := Run(context.Background(), spec, out, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seeds = []uint64{7}
	if _, err := Run(context.Background(), other, out, Options{Workers: 2, Resume: true}); err == nil {
		t.Fatal("resume with a different spec should fail")
	}
	// Resuming a finished run is a no-op that keeps the bytes intact.
	before, _ := os.ReadFile(out)
	n, err := Run(context.Background(), spec, out, Options{Workers: 2, Resume: true})
	if err != nil || n != spec.Size() {
		t.Fatalf("resume of finished run: n=%d err=%v", n, err)
	}
	after, _ := os.ReadFile(out)
	if !bytes.Equal(before, after) {
		t.Error("resume of a finished run modified the output")
	}
}

// TestAggregate checks grouping, CI math and both table renderings.
func TestAggregate(t *testing.T) {
	spec := testSpec()
	data := runToBytes(t, spec, Options{Workers: 4})
	records, err := ReadRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	groups := Aggregate(records)
	if len(groups) != 16 {
		t.Fatalf("32 records over 2 seeds should give 16 groups, got %d", len(groups))
	}
	for _, g := range groups {
		if g.Throughput.N != 2 {
			t.Fatalf("group %s has %d seeds, want 2", g.Key, g.Throughput.N)
		}
		if g.Throughput.Mean <= 0 {
			t.Errorf("group %s has non-positive throughput", g.Key)
		}
	}
	rendered := Table(groups).Render()
	if !strings.Contains(rendered, "blackscholes") || !strings.Contains(rendered, "s2s-lob") {
		t.Errorf("generic table missing expected cells:\n%s", rendered)
	}
	// Cross-topology preset over a single-seed grid with the three arms.
	xt := Spec{
		Topologies:  []string{"mesh", "torus", "ring"},
		Benchmarks:  []string{"blackscholes"},
		Attacks:     []AttackSpec{{Kind: "none"}, {Kind: "dest"}},
		Mitigations: []string{"none", "s2s-lob"},
		Seeds:       []uint64{1},
		Warmup:      150,
		Measure:     150,
	}
	xdata := runToBytes(t, xt, Options{Workers: 4})
	xrecords, err := ReadRecords(bytes.NewReader(xdata))
	if err != nil {
		t.Fatal(err)
	}
	table, err := CrossTopologyTable(xrecords)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 || table.Rows[0][0] != "mesh" || table.Rows[1][0] != "torus" || table.Rows[2][0] != "ring" {
		t.Fatalf("cross-topology rows wrong:\n%s", table.Render())
	}
	if _, err := CrossTopologyTable(xrecords[:2]); err == nil {
		t.Error("missing arms should be an error")
	}
}

// TestAttackModeGrid exercises the adversary axes end to end: trojan-family
// modes and explicit infected-link lists expand in canonical order, the
// records carry the drop-cause split and secure-ack verdict counts, and the
// sweep stays byte-deterministic across worker counts.
func TestAttackModeGrid(t *testing.T) {
	spec := Spec{
		Topologies: []string{"mesh"},
		Benchmarks: []string{"blackscholes"},
		Attacks: []AttackSpec{
			{Kind: "dest"},
			{Kind: "dest", Mode: "drop"},
			{Kind: "dest", Mode: "misroute"},
			{Kind: "dest", Mode: "drop", Links: []int{3, 17}},
		},
		Mitigations: []string{"none"},
		Seeds:       []uint64{1},
		Warmup:      400,
		Measure:     400,
		SecureAck:   true,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	scenarios := spec.Expand()
	if len(scenarios) != 4 {
		t.Fatalf("expected 4 points, got %d", len(scenarios))
	}
	wantNames := []string{"dest", "dest-drop", "dest-misroute", "dest-drop"}
	for i, sc := range scenarios {
		if got := sc.Attack.Name(); got != wantNames[i] {
			t.Errorf("point %d attack name = %q, want %q", i, got, wantNames[i])
		}
	}
	bad := spec
	bad.Attacks = []AttackSpec{{Kind: "dest", Mode: "teleport"}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown trojan mode should fail validation")
	}

	ref := runToBytes(t, spec, Options{Workers: 1})
	if got := runToBytes(t, spec, Options{Workers: 4}); !bytes.Equal(ref, got) {
		t.Error("attack-mode sweep not byte-deterministic across worker counts")
	}
	records, err := ReadRecords(bytes.NewReader(ref))
	if err != nil {
		t.Fatal(err)
	}

	flip, drop, misroute, pinned := records[0], records[1], records[2], records[3]
	if flip.AckFlagged != 0 || flip.DroppedInFlight != 0 {
		t.Errorf("flip arm shows quiet-trojan artefacts: %+v", flip)
	}
	if drop.DroppedInFlight == 0 || drop.DroppedOrphan == 0 {
		t.Errorf("drop arm lost nothing: inflight=%d orphan=%d", drop.DroppedInFlight, drop.DroppedOrphan)
	}
	if drop.AckFlagged != len(drop.InfectedLinks) {
		t.Errorf("drop arm flagged %d of %d infected links", drop.AckFlagged, len(drop.InfectedLinks))
	}
	if misroute.DroppedInFlight != 0 {
		t.Errorf("misroute arm swallowed flits: %d", misroute.DroppedInFlight)
	}
	if misroute.AckFlagged != len(misroute.InfectedLinks) {
		t.Errorf("misroute arm flagged %d of %d infected links", misroute.AckFlagged, len(misroute.InfectedLinks))
	}
	if len(pinned.InfectedLinks) != 2 || pinned.InfectedLinks[0] != 3 || pinned.InfectedLinks[1] != 17 {
		t.Errorf("explicit link list not honoured: %v", pinned.InfectedLinks)
	}
	if pinned.AckFlagged == 0 {
		t.Error("pinned-links drop arm never convicted")
	}
}

// TestResumeRejectsStaleCheckpoint is the regression test for checkpoint
// offsets beyond the end of the output file: truncating a file to a larger
// offset zero-extends it with sparse NULs, so a stale or foreign sidecar
// would silently corrupt the resumed JSONL instead of failing loudly.
func TestResumeRejectsStaleCheckpoint(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.jsonl")
	spec := testSpec()
	if _, err := Run(context.Background(), spec, out, Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	// Shrink the output behind the checkpoint's back: the sidecar now
	// claims an offset past the end of the file.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), spec, out, Options{Workers: 2, Resume: true})
	if err == nil {
		t.Fatal("resume with a stale checkpoint should fail")
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error should name the stale checkpoint, got: %v", err)
	}
	// The half file must be exactly as the failed resume found it: no
	// truncation, no zero-extension.
	after, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, data[:len(data)/2]) {
		t.Fatal("failed resume modified the output file")
	}
}
