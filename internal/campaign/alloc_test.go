package campaign

import (
	"testing"

	"tasp/internal/core"
)

// pointLoop is the worker's per-point body without the channel plumbing:
// lower the scenario, run it on the reused arena, fill and encode the
// record into a recycled buffer.
type pointLoop struct {
	scenarios []Scenario
	runner    *core.Runner
	res       *core.Results
	rec       Record
	buf       []byte
	i         int
}

func (p *pointLoop) step(tb testing.TB) {
	sc := p.scenarios[p.i%len(p.scenarios)]
	p.i++
	cfg, err := sc.Config()
	if err != nil {
		tb.Fatal(err)
	}
	if err := p.runner.RunInto(cfg, p.res); err != nil {
		tb.Fatal(err)
	}
	p.rec.Index = p.i
	p.rec.Topology = sc.Topology
	p.rec.Benchmark = cfg.Benchmark
	p.rec.Attack = sc.Attack.Name()
	p.rec.Mitigation = cfg.Mitigation.String()
	p.rec.Seed = sc.Seed
	p.rec.Fill(p.res)
	p.buf = p.rec.AppendJSONL(p.buf[:0])
}

// allocSpec exercises the paper's headline arms (clean, attacked,
// defended) on one platform with rotating seeds — the shape of a real
// sweep's inner loop.
func allocSpec() Spec {
	return Spec{
		Benchmarks:  []string{"blackscholes"},
		Attacks:     []AttackSpec{{Kind: "none"}, {Kind: "dest"}},
		Mitigations: []string{"none", "s2s-lob"},
		SeedCount:   8,
		Warmup:      200,
		Measure:     200,
	}
}

// TestCampaignPointSteadyStateAllocs pins the campaign engine's per-point
// allocation contract end to end: simulate + fill + encode allocates
// nothing once the worker's arena and buffers have warmed up.
func TestCampaignPointSteadyStateAllocs(t *testing.T) {
	p := &pointLoop{
		scenarios: allocSpec().Expand(),
		runner:    core.NewRunner(),
		res:       &core.Results{},
	}
	// Warm past the recyclers' high-water marks (see the core runner's
	// steady-state test for why early points still grow freelists).
	for i := 0; i < 2*len(p.scenarios); i++ {
		p.step(t)
	}
	if avg := testing.AllocsPerRun(10, func() { p.step(t) }); avg > 0.1 {
		t.Errorf("warmed campaign point allocates %.2f times per point; budget is 0", avg)
	}
}

// BenchmarkCampaignPoint measures the warm per-point cost of a campaign
// worker (simulate 400 cycles + record encode). Wired into the CI
// allocation gate: the b.N loop must report 0 allocs/op.
func BenchmarkCampaignPoint(b *testing.B) {
	p := &pointLoop{
		scenarios: allocSpec().Expand(),
		runner:    core.NewRunner(),
		res:       &core.Results{},
	}
	for i := 0; i < 2*len(p.scenarios); i++ {
		p.step(b)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.step(b)
	}
}
