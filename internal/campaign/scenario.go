// Package campaign is the declarative experiment layer over the core
// engine: scenario grids expanded from a spec, sharded across a pool of
// workers that each own a reusable simulation arena (core.Runner), streamed
// to JSONL with periodic checkpoints so a killed sweep resumes
// byte-identically, and aggregated into the same plain-text tables the
// hand-written harnesses render.
//
// Determinism contract: a grid's JSONL output is a pure function of the
// spec — the same bytes at any worker count, and across kill/resume.
package campaign

import (
	"fmt"

	"tasp/internal/core"
	"tasp/internal/tasp"
)

// AttackSpec declares the trojan deployment for a scenario, in plain
// serialisable terms (kinds and numbers rather than core types).
type AttackSpec struct {
	// Kind selects the comparator target: "none" (attack disabled), "dest",
	// "src", "dest-src", "vc", "mem" or "full".
	Kind string `json:"kind"`
	// Dest/Src/VC parameterise the routing-field kinds (Dest doubles as the
	// victim router for "full"). The zero values target router 0 — the
	// primary core of most benchmarks, matching core.DefaultExperiment.
	Dest int `json:"dest,omitempty"`
	Src  int `json:"src,omitempty"`
	VC   int `json:"vc,omitempty"`
	// Mem/MemMask define the address window for "mem" and "full".
	Mem     uint32 `json:"mem,omitempty"`
	MemMask uint32 `json:"mem_mask,omitempty"`
	// NumLinks is how many optimally-placed links the attacker infects
	// (0 = the protocol default of 2).
	NumLinks int `json:"num_links,omitempty"`
	// Links explicitly lists the infected link ids, overriding the optimal
	// placement (and NumLinks). Empty = let the attacker place.
	Links []int `json:"links,omitempty"`
	// YBits is the trojan's payload-counter width (0 = tasp default).
	YBits int `json:"y_bits,omitempty"`
	// Mode selects the trojan family on the infected links: "flip" (or
	// empty — the TASP double-flip default), "drop", "misroute", "throttle"
	// (duty-cycled dropper) or "collude" (rotating dropper set).
	Mode string `json:"mode,omitempty"`
	// Hijack is the router misrouted packets are diverted to ("misroute"
	// mode only). Absent = auto-select the farthest router from the victim;
	// present selects that router, and 0 is a valid explicit choice (the
	// option-present semantics the -1 sentinel carries in core).
	Hijack *int `json:"hijack,omitempty"`
	// DutyPeriod/DutyActive tune the adaptive families ("throttle": strike
	// DutyActive cycles of every DutyPeriod; "collude": rotate in
	// DutyPeriod-cycle slices). 0 = tasp defaults.
	DutyPeriod int `json:"duty_period,omitempty"`
	DutyActive int `json:"duty_active,omitempty"`
}

// Name is the attack's identity in records and aggregation group keys. Non-
// default trojan families are qualified ("dest-drop") so a grid sweeping
// modes aggregates them separately.
func (a AttackSpec) Name() string {
	if a.Kind == "" || a.Kind == "none" {
		return "none"
	}
	if a.Mode != "" && a.Mode != "flip" {
		return a.Kind + "-" + a.Mode
	}
	return a.Kind
}

// target resolves the declared kind to a comparator target. Disabled
// attacks keep the dest target so the victim-goodput accounting (and hence
// the record bytes) match an enabled run's control arm exactly.
func (a AttackSpec) target() (tasp.Target, bool, error) {
	switch a.Kind {
	case "", "none":
		return tasp.ForDest(uint8(a.Dest)), false, nil
	case "dest":
		return tasp.ForDest(uint8(a.Dest)), true, nil
	case "src":
		return tasp.ForSrc(uint8(a.Src)), true, nil
	case "dest-src":
		return tasp.ForDestSrc(uint8(a.Src), uint8(a.Dest)), true, nil
	case "vc":
		return tasp.ForVC(uint8(a.VC)), true, nil
	case "mem":
		return tasp.ForMem(a.Mem, a.MemMask), true, nil
	case "full":
		return tasp.ForFull(uint8(a.Src), uint8(a.Dest), uint8(a.VC), a.Mem, a.MemMask), true, nil
	default:
		// Unreachable in a sweep: Spec.Validate lowers every point up front.
		return tasp.Target{}, false, fmt.Errorf("unknown attack kind %q", a.Kind) //nocvet:allowalloc error path aborts the sweep
	}
}

// Scenario is one declarative experiment point: everything a simulation run
// needs, in serialisable form. Config lowers it to the core engine's terms.
type Scenario struct {
	// Topology is the substrate name ("" = mesh); Width x Height routers.
	Topology string `json:"topology,omitempty"`
	Width    int    `json:"width,omitempty"`  // 0 = 4
	Height   int    `json:"height,omitempty"` // 0 = 4
	// Benchmark is the traffic model name.
	Benchmark string `json:"benchmark"`
	Seed      uint64 `json:"seed"`
	// Warmup/Measure are the protocol phases in cycles (0 = paper's 1500).
	Warmup  int `json:"warmup,omitempty"`
	Measure int `json:"measure,omitempty"`

	Attack AttackSpec `json:"attack"`
	// Mitigation is the defence name (core.Mitigation.String; "" = none).
	Mitigation string `json:"mitigation,omitempty"`
	// Locate enables the localization engine (per-point cost; off in sweeps
	// unless the sweep is about localization).
	Locate bool `json:"locate,omitempty"`
	// SecureAck enables secure-acknowledgment monitoring — the runtime
	// detector for the drop and misroute trojan families.
	SecureAck bool `json:"secure_ack,omitempty"`
	// Recover turns secure-ack conviction into runtime recovery: convicted
	// links are rerouted around mid-run (implies nothing unless SecureAck
	// is also set).
	Recover bool `json:"recover,omitempty"`
	// TransientBER adds background single-event upsets.
	TransientBER float64 `json:"transient_ber,omitempty"`
}

// Config lowers the scenario to a core experiment configuration. The
// defaults mirror core.DefaultExperiment, so a zero-valued scenario with
// just a benchmark runs the paper's standard protocol.
func (s Scenario) Config() (core.ExperimentConfig, error) {
	cfg := core.DefaultExperiment()
	cfg.Noc.Topo = s.Topology
	if s.Width > 0 {
		cfg.Noc.Width = s.Width
	}
	if s.Height > 0 {
		cfg.Noc.Height = s.Height
	}
	if s.Benchmark != "" {
		cfg.Benchmark = s.Benchmark
	}
	cfg.Seed = s.Seed
	if s.Warmup > 0 {
		cfg.Warmup = s.Warmup
	}
	if s.Measure > 0 {
		cfg.Measure = s.Measure
	}
	target, enabled, err := s.Attack.target()
	if err != nil {
		return cfg, err
	}
	cfg.Attack.Enabled = enabled
	cfg.Attack.Target = target
	if s.Attack.NumLinks > 0 {
		cfg.Attack.NumLinks = s.Attack.NumLinks
	}
	if len(s.Attack.Links) > 0 {
		cfg.Attack.Links = s.Attack.Links
	}
	cfg.Attack.YBits = s.Attack.YBits
	kind, err := tasp.ParseKind(s.Attack.Mode)
	if err != nil {
		return cfg, err
	}
	cfg.Attack.Kind = kind
	if s.Attack.Hijack != nil {
		cfg.Attack.Hijack = *s.Attack.Hijack
	} // absent keeps the default's -1 auto-select sentinel
	cfg.Attack.DutyPeriod = s.Attack.DutyPeriod
	cfg.Attack.DutyActive = s.Attack.DutyActive
	if s.Mitigation != "" {
		m, err := core.ParseMitigation(s.Mitigation)
		if err != nil {
			return cfg, err
		}
		cfg.Mitigation = m
	}
	cfg.Locate = s.Locate
	cfg.SecureAck = s.SecureAck
	cfg.RecoverOnConvict = s.Recover
	cfg.TransientBER = s.TransientBER
	return cfg, nil
}
