package campaign_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tasp/internal/campaign"
	"tasp/internal/exp"
)

// TestCrossTopologyParityWithHarness proves the two experiment stacks agree:
// a campaign sweep of the Figure 11 protocol (full 1500/1500 cycles, seed 1)
// aggregated with the cross-topology preset must reproduce the hand-written
// exp.AblationTopology table cell-for-cell. This is the guarantee that lets
// EXPERIMENTS.md numbers be regenerated from either stack.
func TestCrossTopologyParityWithHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("full-protocol parity run")
	}
	spec := campaign.Spec{
		Topologies:  []string{"mesh", "torus", "ring"},
		Benchmarks:  []string{"blackscholes"},
		Attacks:     []campaign.AttackSpec{{Kind: "none"}, {Kind: "dest"}},
		Mitigations: []string{"none", "s2s-lob"},
		Seeds:       []uint64{1},
	}
	out := filepath.Join(t.TempDir(), "xt.jsonl")
	if _, err := campaign.Run(context.Background(), spec, out, campaign.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := campaign.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := campaign.CrossTopologyTable(records)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.AblationTopology(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("campaign aggregate diverged from the harness table:\ncampaign:\n%s\nharness:\n%s",
			got.Render(), want.Render())
	}
}
