package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// Dim is one grid axis value for network size.
type Dim struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// Spec declares a scenario grid: the cross product of every axis. Axes left
// empty contribute the protocol default. The expansion order is fixed
// (topology, dims, benchmark, attack, mitigation, seed — seeds innermost so
// resumable sweeps finish whole configurations first), which is what makes
// a spec's JSONL output well-defined.
type Spec struct {
	Topologies  []string     `json:"topologies,omitempty"`
	Dims        []Dim        `json:"dims,omitempty"`
	Benchmarks  []string     `json:"benchmarks,omitempty"`
	Attacks     []AttackSpec `json:"attacks,omitempty"`
	Mitigations []string     `json:"mitigations,omitempty"`
	// Seeds lists explicit seeds; SeedCount generates SeedBase..SeedBase+n-1
	// when Seeds is empty (SeedBase 0 means base 1).
	Seeds     []uint64 `json:"seeds,omitempty"`
	SeedCount int      `json:"seed_count,omitempty"`
	SeedBase  uint64   `json:"seed_base,omitempty"`

	// Scalar knobs applied to every point.
	Warmup       int     `json:"warmup,omitempty"`
	Measure      int     `json:"measure,omitempty"`
	Locate       bool    `json:"locate,omitempty"`
	SecureAck    bool    `json:"secure_ack,omitempty"`
	Recover      bool    `json:"recover,omitempty"`
	TransientBER float64 `json:"transient_ber,omitempty"`
}

// ParseSpec decodes a spec from JSON, rejecting unknown fields so a typo'd
// axis name fails loudly instead of silently running the default grid.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("parse spec: %w", err)
	}
	return s, nil
}

// seeds resolves the seed axis.
func (s Spec) seeds() []uint64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	n := s.SeedCount
	if n <= 0 {
		n = 1
	}
	base := s.SeedBase
	if base == 0 {
		base = 1
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// axes returns every axis with its default filled in.
func (s Spec) axes() (topos []string, dims []Dim, benches []string, attacks []AttackSpec, mits []string, seeds []uint64) {
	topos = s.Topologies
	if len(topos) == 0 {
		topos = []string{""}
	}
	dims = s.Dims
	if len(dims) == 0 {
		dims = []Dim{{}}
	}
	benches = s.Benchmarks
	if len(benches) == 0 {
		benches = []string{""}
	}
	attacks = s.Attacks
	if len(attacks) == 0 {
		attacks = []AttackSpec{{Kind: "none"}}
	}
	mits = s.Mitigations
	if len(mits) == 0 {
		mits = []string{"none"}
	}
	return topos, dims, benches, attacks, mits, s.seeds()
}

// Size reports the number of points the spec expands to.
func (s Spec) Size() int {
	topos, dims, benches, attacks, mits, seeds := s.axes()
	return len(topos) * len(dims) * len(benches) * len(attacks) * len(mits) * len(seeds)
}

// Expand materialises the grid in its canonical order.
func (s Spec) Expand() []Scenario {
	topos, dims, benches, attacks, mits, seeds := s.axes()
	out := make([]Scenario, 0, s.Size())
	for _, topo := range topos {
		for _, dim := range dims {
			for _, bench := range benches {
				for _, attack := range attacks {
					for _, mit := range mits {
						for _, seed := range seeds {
							out = append(out, Scenario{
								Topology:     topo,
								Width:        dim.Width,
								Height:       dim.Height,
								Benchmark:    bench,
								Seed:         seed,
								Warmup:       s.Warmup,
								Measure:      s.Measure,
								Attack:       attack,
								Mitigation:   mit,
								Locate:       s.Locate,
								SecureAck:    s.SecureAck,
								Recover:      s.Recover,
								TransientBER: s.TransientBER,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// Validate lowers every point once, so a bad axis value fails before any
// simulation runs rather than mid-sweep.
func (s Spec) Validate() error {
	for i, sc := range s.Expand() {
		cfg, err := sc.Config()
		if err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
		if err := cfg.Noc.Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	return nil
}

// Hash fingerprints the spec's semantic content (via its canonical JSON
// encoding, which has a fixed field order). Checkpoints carry it so a
// resume against a different spec is rejected instead of producing a
// spliced JSONL file.
func (s Spec) Hash() uint64 {
	data, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}
