// Command tracegen records workload models into trace files and inspects
// or replays them.
//
//	tracegen -bench blackscholes -cycles 5000 -o bs.trc     # record
//	tracegen -i bs.trc -info                                # inspect
//	tracegen -i bs.trc -replay                              # replay on the mesh
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/trace"
	"tasp/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		bench  = flag.String("bench", "blackscholes", "benchmark to record")
		cycles = flag.Int("cycles", 5000, "cycles to record")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output trace file (record mode)")
		in     = flag.String("i", "", "input trace file (inspect/replay mode)")
		info   = flag.Bool("info", false, "print trace summary")
		replay = flag.Bool("replay", false, "replay the trace on the default mesh")
	)
	flag.Parse()
	cfg := noc.DefaultConfig()

	switch {
	case *out != "":
		m, err := traffic.Benchmark(*bench, cfg)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w, err := trace.NewWriter(f, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Record(w, m.Generator(*seed), *cycles); err != nil {
			log.Fatal(err)
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %d packets over %d cycles to %s\n", w.Count(), *cycles, *out)

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		evs, err := r.ReadAll()
		if err != nil {
			log.Fatal(err)
		}
		if *info || !*replay {
			perDst := map[uint8]int{}
			flits := 0
			for _, e := range evs {
				perDst[e.DstR]++
				flits += 1 + int(e.Body)
			}
			last := uint32(0)
			if len(evs) > 0 {
				last = evs[len(evs)-1].Cycle
			}
			fmt.Printf("%s: %d cores, %d routers, %d packets (%d flits) over %d cycles\n",
				*in, r.Cores, r.Routers, len(evs), flits, last+1)
			fmt.Printf("hottest destinations:")
			// Walk the whole uint8 key space in order instead of ranging
			// the map: the hot list must print identically run to run.
			for d := 0; d < 256; d++ {
				if c := perDst[uint8(d)]; c*8 > len(evs) {
					fmt.Printf(" r%d(%d)", d, c)
				}
			}
			fmt.Println()
		}
		if *replay {
			pl := trace.NewPlayer(evs)
			n, err := noc.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			for !pl.Done() || n.Counters.DeliveredPackets < n.Counters.InjectedPackets {
				pl.Tick(n.Cycle(), func(core int, pk *flit.Packet) bool { return n.Inject(core, pk) })
				n.Step()
				if n.Cycle() > uint64(len(evs))*10+100000 {
					log.Fatal("replay did not drain; network wedged")
				}
			}
			c := n.Counters
			fmt.Printf("replayed: %d delivered in %d cycles, avg latency %.1f\n",
				c.DeliveredPackets, n.Cycle(), c.AvgLatency())
		}

	default:
		log.Fatal("need -o to record or -i to inspect/replay")
	}
}
