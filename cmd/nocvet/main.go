// Command nocvet runs the repository's custom static-analysis suite
// (internal/analysis): mechanical enforcement of the two contracts the
// reproduction rests on — bit-deterministic simulation and an
// allocation-free Network.Step/Inject hot path.
//
//	go run ./cmd/nocvet ./...
//
// Analyzers and where they apply (see DESIGN.md §10):
//
//	detrange       every module package   map iteration order leaks into output
//	detsource      every module package   math/rand, wall-clock, env, racy select
//	hotalloc       internal/noc           allocations reachable from Step/Inject
//	telemetrysafe  internal/noc           scheduler state mutated outside sched.go
//
// Escape hatches are //nocvet:orderfree, //nocvet:allowalloc and
// //nocvet:nondet comments, each requiring a reason; malformed or unused
// annotations are themselves findings. Exit status is 1 when anything is
// reported, so `make lint` and the CI nocvet job gate on a clean tree.
package main

import (
	"flag"
	"fmt"
	"log"

	"tasp/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocvet: ")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nocvet [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	findings := 0
	for _, pkg := range pkgs {
		suite := analysis.SuiteFor(pkg.ImportPath)
		if len(suite) == 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Printf("%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		log.Fatalf("%d finding(s)", findings)
	}
}
