// Command nocsim runs one NoC simulation with a configurable workload,
// attack and mitigation, and prints the resulting counters and occupancy
// series.
//
// Examples:
//
//	nocsim -bench blackscholes -mitigation none
//	nocsim -bench ferret -mitigation s2s-lob -links 3 -target dest -dest 2
//	nocsim -bench fft -attack=false -cycles 5000
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"tasp"
	"tasp/internal/exp"
	"tasp/internal/noc"
	"tasp/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")

	var (
		bench      = flag.String("bench", "blackscholes", "traffic model: "+strings.Join(tasp.Benchmarks(), ", "))
		topology   = flag.String("topology", "mesh", "network substrate: "+strings.Join(noc.Topologies(), ", "))
		width      = flag.Int("width", 4, "substrate columns (8 for an 8x8/256-core mesh)")
		height     = flag.Int("height", 4, "substrate rows")
		conc       = flag.Int("conc", 4, "cores per router (1..8)")
		vcs        = flag.Int("vcs", 4, "virtual channels per port (1..8)")
		seed       = flag.Uint64("seed", 1, "deterministic simulation seed")
		warmup     = flag.Int("warmup", 1500, "cycles before the kill switch flips")
		cycles     = flag.Int("cycles", 1500, "cycles simulated after the kill switch")
		attack     = flag.Bool("attack", true, "deploy TASP trojans")
		attackMode = flag.String("attack-mode", "flip", "trojan family: flip, drop, misroute, throttle, collude")
		hijack     = flag.Int("hijack", -1, "misroute diversion router (-1 = farthest from the victim; 0 is a valid explicit router)")
		dutyPeriod = flag.Int("duty-period", 0, "throttle/collude duty period in cycles (0 = tuned default)")
		dutyActive = flag.Int("duty-active", 0, "throttle active cycles per period (0 = tuned default)")
		secureAck  = flag.Bool("secure-ack", false, "run the secure-acknowledgment monitor and print its per-link verdicts")
		doRecover  = flag.Bool("recover", false, "reroute around links the secure-ack monitor convicts mid-run (implies -secure-ack)")
		links      = flag.Int("links", 2, "number of infected links (target-flow hottest)")
		target     = flag.String("target", "dest", "trojan target kind: dest, src, destsrc, vc, mem, full")
		dest       = flag.Int("dest", 0, "target destination router")
		src        = flag.Int("src", 0, "target source router")
		vc         = flag.Int("vc", 0, "target virtual channel")
		mitigation = flag.String("mitigation", "none", "none, s2s-lob, e2e, tdm, reroute")
		ber        = flag.Float64("ber", 0, "background transient bit-error rate per link bit")
		sample     = flag.Int("sample", 100, "occupancy sampling period in cycles")
		heat       = flag.Bool("map", false, "render an ASCII heatmap of final blocked-port pressure")
		doLocate   = flag.Bool("locate", false, "run the DoS localization layer and print the ranked suspect links")
	)
	flag.Parse()

	cfg := tasp.DefaultConfig()
	cfg.Noc.Topo = *topology
	cfg.Noc.Width = *width
	cfg.Noc.Height = *height
	cfg.Noc.Concentration = *conc
	cfg.Noc.VCs = *vcs
	cfg.Benchmark = *bench
	cfg.Seed = *seed
	cfg.Warmup = *warmup
	cfg.Measure = *cycles
	cfg.SampleEvery = *sample
	cfg.TransientBER = *ber
	cfg.Attack.Enabled = *attack
	cfg.Attack.NumLinks = *links
	cfg.Attack.Hijack = *hijack
	cfg.Attack.DutyPeriod = *dutyPeriod
	cfg.Attack.DutyActive = *dutyActive
	cfg.Locate = *doLocate
	cfg.SecureAck = *secureAck || *doRecover
	cfg.RecoverOnConvict = *doRecover

	kind, err := tasp.ParseTrojanKind(*attackMode)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Attack.Kind = kind

	switch *target {
	case "dest":
		cfg.Attack.Target = tasp.ForDest(uint8(*dest))
	case "src":
		cfg.Attack.Target = tasp.ForSrc(uint8(*src))
	case "destsrc":
		cfg.Attack.Target = tasp.ForDestSrc(uint8(*src), uint8(*dest))
	case "vc":
		cfg.Attack.Target = tasp.ForVC(uint8(*vc))
	case "mem":
		cfg.Attack.Target = tasp.ForMem(uint32(*dest)<<24, 0xff000000)
	case "full":
		cfg.Attack.Target = tasp.ForFull(uint8(*src), uint8(*dest), uint8(*vc), uint32(*dest)<<24, 0xff000000)
	default:
		log.Fatalf("unknown target kind %q", *target)
	}

	switch *mitigation {
	case "none":
		cfg.Mitigation = tasp.NoMitigation
	case "s2s-lob", "lob":
		cfg.Mitigation = tasp.S2SLOb
	case "e2e":
		cfg.Mitigation = tasp.E2EObfuscation
	case "tdm":
		cfg.Mitigation = tasp.TDMQoS
	case "reroute":
		cfg.Mitigation = tasp.Rerouting
	default:
		log.Fatalf("unknown mitigation %q", *mitigation)
	}

	res, err := tasp.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark=%s topology=%s mitigation=%s seed=%d\n",
		*bench, cfg.Noc.TopoName(), cfg.Mitigation, *seed)
	if cfg.Attack.Enabled {
		fmt.Printf("infected links: %v (trojan matches=%d injections=%d)\n",
			res.InfectedLinks, res.HTMatches, res.HTInjections)
	}
	c := res.Final
	fmt.Printf("injected=%d delivered=%d retransmissions=%d corrected=%d inject-failures=%d\n",
		c.InjectedPackets, c.DeliveredPackets, c.Retransmissions, c.CorrectedFaults, c.InjectFailures)
	if c.DroppedFlits > 0 {
		fmt.Printf("dropped flits=%d (retrans=%d in-flight=%d orphan=%d reconfig=%d)\n",
			c.DroppedFlits, c.DroppedRetrans, c.DroppedInFlight, c.DroppedOrphan, c.DroppedReconfig)
	}
	fmt.Printf("throughput=%.3f pkt/cycle  avg latency=%.1f cycles  max=%d\n",
		res.Throughput, res.AvgLatency, c.MaxLatency)
	if len(res.Detections) > 0 {
		fmt.Printf("detections:\n")
		ids := make([]int, 0, len(res.Detections))
		for id := range res.Detections { //nocvet:orderfree ids are sorted before use
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			fmt.Printf("  link %d: %s (trigger scope: %s)\n", id, res.Detections[id], res.TriggerScopes[id])
		}
		fmt.Printf("obfuscated traversals=%d, undo stall=%d cycles, BIST scans=%d\n",
			res.Obfuscated, res.StallCycles, res.BISTScans)
	}
	if res.ReroutedAt > 0 {
		fmt.Printf("rerouted at cycle %d\n", res.ReroutedAt)
	}
	if res.RecoveredAt > 0 {
		fmt.Printf("recovered at cycle %d (rerouted around convicted links %v)\n",
			res.RecoveredAt, res.RecoveredLinks)
	}
	if len(res.AckVerdicts) > 0 {
		fmt.Printf("secure-ack verdicts (first flagged at cycle %d):\n", res.AckFlaggedAt)
		ids := make([]int, 0, len(res.AckVerdicts))
		for id := range res.AckVerdicts { //nocvet:orderfree ids are sorted before use
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if ch, ok := res.AckChannels[id]; ok {
				fmt.Printf("  link %d: %s (channel: %s)\n", id, res.AckVerdicts[id], ch)
			} else {
				fmt.Printf("  link %d: %s\n", id, res.AckVerdicts[id])
			}
		}
	}
	if *doLocate && len(res.Suspects) > 0 {
		net, nerr := noc.New(cfg.Noc)
		if nerr != nil {
			log.Fatal(nerr)
		}
		names := net.Links()
		fmt.Printf("\nlocalization (top suspects; components det/early/growth/prior):\n")
		top := len(res.Suspects)
		if top > 8 {
			top = 8
		}
		for i, s := range res.Suspects[:top] {
			fmt.Printf("  #%d link %-3d %-22s score=%.3f conf=%.2f  [%.2f %.2f %.2f %.2f]\n",
				i+1, s.LinkID, names[s.LinkID], s.Score, s.Confidence,
				s.Det, s.Early, s.Growth, s.Prior)
		}
		if len(res.SuspectTrace) > 0 {
			last := res.SuspectTrace[len(res.SuspectTrace)-1]
			fmt.Printf("rank-1 trace: %d samples, final verdict link %d at cycle %d\n",
				len(res.SuspectTrace), last.LinkID, last.Cycle)
		}
	}
	fmt.Printf("\n%-8s %-9s %-9s %-9s %-8s %-8s %-8s\n",
		"cycle", "input", "output", "injq", "blocked", "allfull", ">50%full")
	for _, s := range res.Samples {
		fmt.Printf("%-8d %-9d %-9d %-9d %-8d %-8d %-8d\n",
			s.Cycle, s.InputFlits, s.OutputFlits, s.InjectionFlit,
			s.BlockedRouters, s.AllCoresFull, s.HalfCoresFull)
	}

	if *heat {
		// Per-router pressure proxy from the sampled series is not kept;
		// render the analytic traffic hot spots alongside the infected
		// links so the attack geometry is visible.
		f, err := exp.RunFigure1(*bench, cfg.Noc)
		if err == nil {
			fmt.Println()
			fmt.Print(viz.RouterHeatmap(cfg.Noc, "workload source shares", f.RouterTotals))
			if n, nerr := noc.New(cfg.Noc); nerr == nil && len(res.InfectedLinks) > 0 {
				fmt.Printf("infected links:")
				for _, l := range n.Links() {
					for _, id := range res.InfectedLinks {
						if l.ID == id {
							fmt.Printf(" %s,", l)
						}
					}
				}
				fmt.Println()
			}
			fmt.Print(viz.LinkMap(cfg.Noc, "workload link loads (XY)", func(from, to int) float64 {
				return f.LinkShare[fmt.Sprintf("%d->%d", from, to)]
			}))
		}
	}
}
