// Command campaign runs declarative scenario sweeps: a JSON spec expands
// into a grid of experiment points, executed by a worker pool of reusable
// simulation arenas and streamed to JSONL with periodic checkpoints.
//
//	campaign run -spec grid.json -out sweep.jsonl -workers 8
//	campaign resume -spec grid.json -out sweep.jsonl -workers 8
//	campaign aggregate -in sweep.jsonl
//	campaign aggregate -in sweep.jsonl -preset cross-topology
//
// The output is deterministic: the same spec yields byte-identical JSONL at
// any worker count, and a killed run resumed with `campaign resume`
// completes to the same bytes as an uninterrupted one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tasp/internal/campaign"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:], false)
	case "resume":
		err = runCmd(os.Args[2:], true)
	case "aggregate":
		err = aggregateCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  campaign run       -spec <grid.json> -out <sweep.jsonl> [-workers N] [-checkpoint-every N] [-quiet]
  campaign resume    -spec <grid.json> -out <sweep.jsonl> [-workers N] [-checkpoint-every N] [-quiet]
  campaign aggregate -in <sweep.jsonl> [-preset cross-topology]
`)
}

func runCmd(args []string, resume bool) error {
	name := "run"
	if resume {
		name = "resume"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	specPath := fs.String("spec", "", "scenario grid spec (JSON)")
	outPath := fs.String("out", "", "output JSONL path")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	ckptEvery := fs.Int("checkpoint-every", 64, "records between checkpoints")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	fs.Parse(args)
	if *specPath == "" || *outPath == "" {
		return fmt.Errorf("%s: -spec and -out are required", name)
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	total := spec.Size()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "%s: %d points -> %s\n", name, total, *outPath)
	}

	// A first interrupt cancels the sweep cleanly at a record boundary (the
	// checkpoint makes it resumable); a second kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := campaign.Options{
		Workers:         *workers,
		CheckpointEvery: *ckptEvery,
		Resume:          resume,
	}
	if !*quiet {
		opt.OnRecord = func(written int) {
			if written%100 == 0 || written == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d", written, total)
			}
		}
	}
	written, err := campaign.Run(ctx, spec, *outPath, opt)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return fmt.Errorf("stopped at %d/%d records: %w (resume with: campaign resume)", written, total, err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "done: %d records\n", written)
	}
	return nil
}

func aggregateCmd(args []string) error {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	inPath := fs.String("in", "", "sweep JSONL path")
	preset := fs.String("preset", "", "table preset: '' (generic) or cross-topology")
	fs.Parse(args)
	if *inPath == "" {
		return fmt.Errorf("aggregate: -in is required")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := campaign.ReadRecords(f)
	if err != nil {
		return err
	}
	switch *preset {
	case "":
		fmt.Print(campaign.Table(campaign.Aggregate(records)).Render())
	case "cross-topology":
		t, err := campaign.CrossTopologyTable(records)
		if err != nil {
			return err
		}
		fmt.Print(t.Render())
	default:
		return fmt.Errorf("aggregate: unknown preset %q", *preset)
	}
	return nil
}
