// Command benchjson converts `go test -bench` text output (read from
// stdin) into machine-readable JSON on stdout, so benchmark runs can be
// committed and diffed across PRs (the BENCH_<date>.json files produced by
// `make bench-json`).
//
//	go test -bench=NetworkStep -benchmem -run xxx ./internal/noc | benchjson -label hotpath
//
// Every metric pair on a benchmark line is kept verbatim, including
// -benchmem columns (B/op, allocs/op) and custom b.ReportMetric units.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line. Pkg is set when the input
// covers more than one package (e.g. `go test -bench ./internal/noc .`), so
// same-named benchmarks from different packages stay distinguishable.
type Benchmark struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the emitted document.
type Report struct {
	Label      string      `json:"label,omitempty"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	label := flag.String("label", "", "free-form label recorded in the report")
	flag.Parse()

	rep := Report{Label: *label}
	var curPkg string
	pkgs := map[string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			curPkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		b, ok := parseLine(line)
		if ok {
			b.Pkg = curPkg
			pkgs[curPkg] = true
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found on stdin (run with `go test -bench=... | benchjson`)")
	}
	if len(pkgs) == 1 {
		// Single-package run: keep the top-level Pkg field (back-compatible
		// with earlier BENCH_<date>.json files) and drop the per-line copies.
		for i := range rep.Benchmarks {
			rep.Pkg = rep.Benchmarks[i].Pkg
			rep.Benchmarks[i].Pkg = ""
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parseLine parses one "BenchmarkX-8  N  v1 unit1  v2 unit2 ..." line.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
