// Command trafficmap prints the Figure 1 traffic-distribution views for a
// benchmark: the source/destination matrix, the geographic source hot
// spots, and the per-link traffic shares under XY routing.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tasp"
	"tasp/internal/exp"
	"tasp/internal/noc"
	"tasp/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficmap: ")
	var (
		bench = flag.String("bench", "blackscholes", "benchmark: "+strings.Join(tasp.Benchmarks(), ", "))
		fig   = flag.String("fig", "all", "which view: 1a, 1b, 1c, all")
		heat  = flag.Bool("map", false, "also render ASCII mesh heatmaps")
	)
	flag.Parse()

	cfg := noc.DefaultConfig()
	f, err := exp.RunFigure1(*bench, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *heat {
		fmt.Println(viz.RouterHeatmap(cfg, *bench+": per-router source share", f.RouterTotals))
		fmt.Println(viz.LinkMap(cfg, *bench+": per-link traffic share (XY)", func(from, to int) float64 {
			return f.LinkShare[fmt.Sprintf("%d->%d", from, to)]
		}))
	}
	switch *fig {
	case "1a":
		fmt.Println(f.MatrixTable().Render())
	case "1b":
		fmt.Println(f.HotspotTable(cfg).Render())
	case "1c":
		fmt.Println(f.LinkTable().Render())
	case "all":
		fmt.Println(f.MatrixTable().Render())
		fmt.Println(f.HotspotTable(cfg).Render())
		fmt.Println(f.LinkTable().Render())
	default:
		log.Fatalf("unknown figure %q", *fig)
	}
}
