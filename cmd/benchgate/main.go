// Command benchgate is the CI allocation gate for the hot-path benchmarks.
// It reads `go test -bench -benchmem` text on stdin, fails (exit 1) if any
// benchmark reports a nonzero allocs/op, and prints each benchmark's ns/op
// next to the most recent BENCH_<date>.json baseline so a run that passes
// the alloc budget but drifts in time is visible in the job log.
//
// Usage:
//
//	go test -bench=NetworkStep -benchtime=100x -benchmem -run xxx ./internal/noc . | go run ./cmd/benchgate
//
// It replaces an awk one-liner that could gate but not explain: benchgate is
// a Go program so the parsing and the gate itself are under test
// (main_test.go), the same standard the rest of the tree is held to.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// bench is one parsed benchmark result line.
type bench struct {
	name    string // GOMAXPROCS suffix ("-8") stripped, to match BENCH_*.json names
	runs    int64
	metrics map[string]float64 // "ns/op", "allocs/op", "B/op", extra ReportMetric units
}

// parseBenchLine parses one `Benchmark... <runs> <value> <unit>...` line.
// Non-benchmark lines (goos:, pkg:, PASS, ok) return ok=false.
func parseBenchLine(line string) (bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return bench{}, false
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return bench{}, false
	}
	b := bench{name: stripProcs(f[0]), runs: runs, metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return bench{}, false
		}
		b.metrics[f[i+1]] = v
	}
	return b, true
}

// stripProcs removes the trailing -<GOMAXPROCS> suffix the testing package
// appends to benchmark names. A sub-benchmark name that itself ends in
// -<something non-numeric> ("uniform-8x8") is left alone.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// parseBenchOutput parses a whole `go test -bench` transcript.
func parseBenchOutput(r io.Reader) ([]bench, error) {
	var out []bench
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if b, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

// benchFile mirrors the slice of BENCH_<date>.json this gate consumes.
type benchFile struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// latestBaseline finds the lexicographically latest BENCH_*.json in dir
// (the ISO dates in the names make that the newest) and returns its name
// plus a bench-name → metrics index. A missing baseline is not an error:
// the alloc gate still runs, only the deltas are skipped.
func latestBaseline(dir string) (string, map[string]map[string]float64, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(paths) == 0 {
		return "", nil, err
	}
	sort.Strings(paths)
	path := paths[len(paths)-1]
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return "", nil, fmt.Errorf("%s: %v", path, err)
	}
	idx := make(map[string]map[string]float64, len(bf.Benchmarks))
	for _, b := range bf.Benchmarks {
		idx[b.Name] = b.Metrics
	}
	return filepath.Base(path), idx, nil
}

// gate prints one line per benchmark (alloc verdict plus ns/op delta vs the
// baseline) and returns the number of benchmarks over the alloc budget.
func gate(w io.Writer, benches []bench, baseName string, baseline map[string]map[string]float64) int {
	failures := 0
	for _, b := range benches {
		allocs := b.metrics["allocs/op"]
		verdict := "ok"
		if allocs > 0 {
			verdict = "ALLOC BUDGET EXCEEDED"
			failures++
		}
		delta := "no baseline"
		if base, ok := baseline[b.name]; ok {
			if baseNs := base["ns/op"]; baseNs > 0 {
				ns := b.metrics["ns/op"]
				delta = fmt.Sprintf("%.4g ns/op vs %.4g in %s (%+.1f%%)",
					ns, baseNs, baseName, 100*(ns-baseNs)/baseNs)
			}
		}
		fmt.Fprintf(w, "%-52s %g allocs/op [%s]  %s\n", b.name, allocs, verdict, delta)
	}
	return failures
}

func main() {
	baselineDir := flag.String("baselines", ".", "directory holding BENCH_<date>.json baselines")
	flag.Parse()

	benches, err := parseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark lines on stdin (did the test run fail?)")
		os.Exit(2)
	}
	baseName, baseline, err := latestBaseline(*baselineDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if failures := gate(os.Stdout, benches, baseName, baseline); failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) over the zero-alloc budget\n", failures)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within the zero-alloc budget\n", len(benches))
}
