package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkNetworkStep/uniform-8 \t  127735\t      9215 ns/op\t       117.2 flits-in-flight\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if b.name != "BenchmarkNetworkStep/uniform" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", b.name)
	}
	if b.runs != 127735 {
		t.Errorf("runs = %d", b.runs)
	}
	for unit, want := range map[string]float64{"ns/op": 9215, "allocs/op": 0, "B/op": 0, "flits-in-flight": 117.2} {
		if got := b.metrics[unit]; got != want {
			t.Errorf("%s = %g, want %g", unit, got, want)
		}
	}
}

func TestParseBenchLineRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: tasp/internal/noc",
		"PASS",
		"ok  \ttasp/internal/noc\t2.153s",
		"cpu: Intel(R) Xeon(R) Processor @ 2.70GHz",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkNetworkStep/idle-8":        "BenchmarkNetworkStep/idle",
		"BenchmarkNetworkStep/uniform-8x8-8": "BenchmarkNetworkStep/uniform-8x8",
		"BenchmarkNetworkStep/uniform-8x8":   "BenchmarkNetworkStep/uniform-8x8",
		"BenchmarkX":                         "BenchmarkX",
	} {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

const sampleOutput = `goos: linux
goarch: amd64
pkg: tasp/internal/noc
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkNetworkStep/idle-8     	     100	         2.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkNetworkStep/uniform-8  	     100	      9300 ns/op	     117.2 flits-in-flight	       0 B/op	       0 allocs/op
PASS
ok  	tasp/internal/noc	0.5s
`

func TestGatePassesZeroAllocAndPrintsDelta(t *testing.T) {
	dir := t.TempDir()
	old := `{"benchmarks":[{"name":"BenchmarkNetworkStep/idle","metrics":{"ns/op":9.0,"allocs/op":0}}]}`
	latest := `{"benchmarks":[
		{"name":"BenchmarkNetworkStep/idle","metrics":{"ns/op":2.0,"allocs/op":0}},
		{"name":"BenchmarkNetworkStep/uniform","metrics":{"ns/op":9215,"allocs/op":0}}]}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2026-08-01.json"), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_2026-08-08.json"), []byte(latest), 0o644); err != nil {
		t.Fatal(err)
	}

	baseName, baseline, err := latestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if baseName != "BENCH_2026-08-08.json" {
		t.Fatalf("picked %q, want the lexicographically latest baseline", baseName)
	}

	benches, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil || len(benches) != 2 {
		t.Fatalf("parsed %d benches, err=%v", len(benches), err)
	}
	var buf strings.Builder
	if failures := gate(&buf, benches, baseName, baseline); failures != 0 {
		t.Fatalf("zero-alloc run failed the gate:\n%s", buf.String())
	}
	out := buf.String()
	// The idle delta must be computed against the latest baseline (2.0),
	// not the older one (9.0): 2.10 vs 2.0 is +5.0%.
	if !strings.Contains(out, "+5.0%") {
		t.Errorf("idle ns/op delta vs latest baseline missing:\n%s", out)
	}
	if !strings.Contains(out, "BENCH_2026-08-08.json") {
		t.Errorf("baseline file name missing from report:\n%s", out)
	}
}

func TestGateFailsOnNonzeroAllocs(t *testing.T) {
	leaky := `BenchmarkNetworkStep/uniform-8  	     100	      9300 ns/op	       48 B/op	       3 allocs/op
`
	benches, err := parseBenchOutput(strings.NewReader(leaky))
	if err != nil || len(benches) != 1 {
		t.Fatalf("parsed %d benches, err=%v", len(benches), err)
	}
	var buf strings.Builder
	if failures := gate(&buf, benches, "", nil); failures != 1 {
		t.Fatalf("gate let %d allocs/op through:\n%s", int(benches[0].metrics["allocs/op"]), buf.String())
	}
	if !strings.Contains(buf.String(), "ALLOC BUDGET EXCEEDED") {
		t.Errorf("offender not named in report:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "no baseline") {
		t.Errorf("missing-baseline case not reported:\n%s", buf.String())
	}
}

func TestLatestBaselineMissingDir(t *testing.T) {
	name, baseline, err := latestBaseline(t.TempDir())
	if err != nil || name != "" || baseline != nil {
		t.Fatalf("empty dir should yield no baseline and no error: %q %v %v", name, baseline, err)
	}
}
