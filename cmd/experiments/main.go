// Command experiments regenerates every table and figure of the paper's
// evaluation section. Run with -exp all (default) to print the whole set,
// or pick one of: fig1, fig2, fig8, fig9, fig10, fig11, fig12, table1,
// table2, headline, ablations, detectability, migration, closedloop,
// saturation. Extension studies outside the canonical set (currently:
// topology, the cross-substrate attack/mitigation comparison; scale, the
// 4x4-vs-8x8 substrate-scaling study; locate, the localization ablation;
// and adversary, the drop/misroute trojan families under secure-ack
// monitoring) are addressable by id but not part of -exp all, so the
// canonical output stays regression-stable.
//
// Experiments are independent and deterministically seeded, so -exp all
// fans them out across -parallel worker goroutines (default: one per CPU)
// while printing results in the canonical order — the output is
// byte-identical to -parallel=1.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tasp/internal/exp"
	"tasp/internal/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		which    = flag.String("exp", "all", "experiment id (fig1, fig2, fig8, fig9, fig10, fig11, fig12, table1, table2, headline, ablations, detectability, migration, closedloop, saturation, topology, scale, locate, adversary, all)")
		bench    = flag.String("bench", "blackscholes", "benchmark for fig1")
		topology = flag.String("topology", "mesh", "substrate for fig1's workload characterisation: "+strings.Join(noc.Topologies(), ", "))
		width    = flag.Int("width", 4, "fig1 substrate columns (8 for an 8x8/256-core mesh)")
		height   = flag.Int("height", 4, "fig1 substrate rows")
		conc     = flag.Int("conc", 4, "fig1 cores per router (1..8)")
		vcs      = flag.Int("vcs", 4, "fig1 virtual channels per port (1..8)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", exp.DefaultWorkers(), "worker goroutines for -exp all (1 = serial)")
	)
	flag.Parse()

	ncfg := noc.DefaultConfig()
	ncfg.Topo = *topology
	ncfg.Width = *width
	ncfg.Height = *height
	ncfg.Concentration = *conc
	ncfg.VCs = *vcs
	if err := ncfg.Validate(); err != nil {
		log.Fatal(err)
	}
	registry := exp.RegistryFor(*bench, ncfg)

	if *which == "all" {
		out, err := exp.RenderAll(exp.RunAll(registry, *seed, *parallel))
		os.Stdout.WriteString(out)
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	e, ok := exp.Lookup(registry, *which)
	if !ok {
		e, ok = exp.Lookup(exp.Extensions(), *which)
	}
	if !ok {
		log.Fatalf("unknown experiment %q (known: %s, %s, all)", *which,
			strings.Join(exp.IDs(registry), ", "), strings.Join(exp.IDs(exp.Extensions()), ", "))
	}
	tables, err := e.Run(*seed)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Render())
	}
}
