// Command experiments regenerates every table and figure of the paper's
// evaluation section. Run with -exp all (default) to print the whole set,
// or pick one of: fig1, fig2, fig8, fig9, fig10, fig11, fig12, table1,
// table2, headline.
package main

import (
	"flag"
	"fmt"
	"log"

	"tasp/internal/exp"
	"tasp/internal/noc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		which = flag.String("exp", "all", "experiment id (fig1, fig2, fig8, fig9, fig10, fig11, fig12, table1, table2, headline, ablations, detectability, migration, all)")
		bench = flag.String("bench", "blackscholes", "benchmark for fig1")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	run := map[string]func(){
		"fig1": func() {
			f, err := exp.RunFigure1(*bench, noc.DefaultConfig())
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(f.MatrixTable().Render())
			fmt.Println(f.HotspotTable(noc.DefaultConfig()).Render())
			fmt.Println(f.LinkTable().Render())
		},
		"fig2": func() {
			fmt.Println(exp.RunFigure2().TableOf().Render())
		},
		"fig8": func() {
			for _, t := range exp.RunFigure8() {
				fmt.Println(t.Render())
			}
		},
		"fig9": func() {
			fmt.Println(exp.RunFigure9().Render())
		},
		"table1": func() {
			fmt.Println(exp.RunTableI().Render())
		},
		"table2": func() {
			fmt.Println(exp.RunTableII().Render())
		},
		"fig10": func() {
			pts, err := exp.RunFigure10(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(exp.Figure10Table(pts).Render())
		},
		"fig11": func() {
			f, err := exp.RunFigure11(*seed)
			if err != nil {
				log.Fatal(err)
			}
			for _, t := range f.Tables() {
				fmt.Println(t.Render())
			}
		},
		"fig12": func() {
			f, err := exp.RunFigure12(*seed)
			if err != nil {
				log.Fatal(err)
			}
			for _, t := range f.Tables() {
				fmt.Println(t.Render())
			}
		},
		"headline": func() {
			t, err := exp.Headline(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Render())
		},
		"detectability": func() {
			fmt.Println(exp.DetectabilityStudy(*seed).Render())
		},
		"migration": func() {
			t, err := exp.MigrationStudy(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Render())
		},
		"closedloop": func() {
			t, err := exp.ClosedLoopStudy(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Render())
		},
		"saturation": func() {
			t, err := exp.SaturationCurve()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t.Render())
		},
		"ablations": func() {
			type namedFn struct {
				name string
				fn   func() (exp.Table, error)
			}
			for _, a := range []namedFn{
				{"retrans-scheme", func() (exp.Table, error) { return exp.AblationRetransScheme(*seed) }},
				{"routing-vs-flood", func() (exp.Table, error) { return exp.AblationRoutingUnderFlood(*seed) }},
				{"payload-counter", func() (exp.Table, error) { return exp.AblationPayloadCounter(), nil }},
				{"detector-history", func() (exp.Table, error) { return exp.AblationDetectorHistory(*seed) }},
				{"escalation-order", func() (exp.Table, error) { return exp.AblationEscalationOrder(*seed) }},
				{"ht-placement", func() (exp.Table, error) { return exp.AblationPlacement(*seed) }},
			} {
				t, err := a.fn()
				if err != nil {
					log.Fatalf("%s: %v", a.name, err)
				}
				fmt.Println(t.Render())
			}
		},
	}

	if *which == "all" {
		for _, id := range []string{"fig1", "fig2", "table1", "fig9", "table2", "fig8", "fig10", "fig11", "fig12", "headline", "ablations", "detectability", "migration", "closedloop", "saturation"} {
			fmt.Printf("==== %s ====\n\n", id)
			run[id]()
		}
		return
	}
	fn, ok := run[*which]
	if !ok {
		log.Fatalf("unknown experiment %q", *which)
	}
	fn()
}
