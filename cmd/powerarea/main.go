// Command powerarea prints the hardware-model results: Table I (TASP
// variants), Table II (mitigation overhead), Figure 8 (power/area pies) and
// Figure 9 (per-variant area), plus the full router report.
package main

import (
	"flag"
	"fmt"

	"tasp/internal/exp"
	"tasp/internal/power"
)

func main() {
	report := flag.Bool("report", false, "also print the hierarchical router netlist report")
	flag.Parse()

	fmt.Println(exp.RunTableI().Render())
	fmt.Println(exp.RunFigure9().Render())
	fmt.Println(exp.RunTableII().Render())
	for _, t := range exp.RunFigure8() {
		fmt.Println(t.Render())
	}
	if *report {
		r := power.BuildRouter(power.DefaultRouterParams())
		fmt.Println(r.Report(power.DefaultFreqGHz))
		p := power.DefaultRouterParams()
		p.WithMitigation = true
		fmt.Println(power.BuildRouter(p).Report(power.DefaultFreqGHz))
	}
}
