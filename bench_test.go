// Benchmarks that regenerate every table and figure of the paper's
// evaluation section. Each benchmark reports domain-specific metrics via
// b.ReportMetric so `go test -bench=.` output doubles as the experiment
// log; the cmd/experiments tool prints the same data as tables.
package tasp_test

import (
	"testing"

	"tasp"
	"tasp/internal/core"
	"tasp/internal/exp"
	"tasp/internal/flit"
	"tasp/internal/noc"
	"tasp/internal/power"
)

// BenchmarkExperiments runs the whole registry through the parallel
// experiment engine — the same path as `cmd/experiments -exp all`. The
// serial/parallel pair measures the fan-out speedup on the host (identical
// output is asserted by internal/exp's determinism test).
func BenchmarkExperiments(b *testing.B) {
	registry := exp.Registry("blackscholes")
	bench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results := exp.RunAll(registry, 1, workers)
				for _, r := range results {
					if r.Err != nil {
						b.Fatalf("%s: %v", r.ID, r.Err)
					}
				}
			}
		}
	}
	b.Run("serial", bench(1))
	b.Run("parallel", bench(exp.DefaultWorkers()))
}

// BenchmarkFigure1 regenerates the Blackscholes traffic distributions.
func BenchmarkFigure1(b *testing.B) {
	var hottest float64
	for i := 0; i < b.N; i++ {
		f, err := exp.RunFigure1("blackscholes", noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range f.LinkShare {
			if v > hottest {
				hottest = v
			}
		}
	}
	b.ReportMetric(hottest*100, "%hottest-link")
}

// BenchmarkFigure2 regenerates the fault-type latency comparison.
func BenchmarkFigure2(b *testing.B) {
	var steadyPenalty float64
	for i := 0; i < b.N; i++ {
		f := exp.RunFigure2()
		steadyPenalty = f.TrojanLOb[5] - f.Clean[5]
	}
	b.ReportMetric(steadyPenalty, "lob-penalty-cycles")
}

// BenchmarkTableI regenerates the TASP variant hardware table.
func BenchmarkTableI(b *testing.B) {
	var fullArea float64
	for i := 0; i < b.N; i++ {
		fullArea = power.BuildTASP(power.TASPFull).Area()
		for _, v := range power.TASPVariants {
			_ = power.BuildTASP(v).Dynamic(power.DefaultFreqGHz)
		}
	}
	b.ReportMetric(fullArea, "full-variant-um2")
}

// BenchmarkTableII regenerates the mitigation overhead numbers.
func BenchmarkTableII(b *testing.B) {
	var areaOverhead float64
	for i := 0; i < b.N; i++ {
		base := power.BuildRouter(power.DefaultRouterParams())
		p := power.DefaultRouterParams()
		p.WithMitigation = true
		sec := power.BuildRouter(p)
		areaOverhead = (sec.Area()/base.Area() - 1) * 100
	}
	b.ReportMetric(areaOverhead, "%area-overhead")
}

// BenchmarkFigure8 regenerates the power/area breakdown pies.
func BenchmarkFigure8(b *testing.B) {
	var taspShare float64
	for i := 0; i < b.N; i++ {
		m := power.BuildNoC(power.DefaultNoCParams(), power.DefaultFreqGHz)
		taspShare = m.AllTASPDynUW / m.NoCDynUW * 100
	}
	b.ReportMetric(taspShare, "%all-links-tasp-dyn")
}

// BenchmarkFigure9 regenerates the per-variant area chart.
func BenchmarkFigure9(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		lo := power.BuildTASP(power.TASPVC).Area()
		hi := power.BuildTASP(power.TASPFull).Area()
		spread = hi - lo
	}
	b.ReportMetric(spread, "um2-vc-to-full")
}

// BenchmarkFigure10 regenerates (a slice of) the L-Ob vs rerouting sweep:
// Blackscholes and FFT at 10% infected links.
func BenchmarkFigure10(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"blackscholes", "fft"} {
			cfg := core.DefaultExperiment()
			cfg.Benchmark = bench
			cfg.Attack.NumLinks = 5 // ~10% of 48 links
			cfg.Mitigation = core.S2SLOb
			lo, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Mitigation = core.Rerouting
			rr, err := core.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if rr.Throughput > 0 {
				speedup = lo.Throughput / rr.Throughput
			}
		}
	}
	b.ReportMetric(speedup, "fft-speedup-x")
}

// BenchmarkFigure11 regenerates the DoS utilisation time series (attacked
// vs healthy).
func BenchmarkFigure11(b *testing.B) {
	var blocked float64
	for i := 0; i < b.N; i++ {
		f, err := exp.RunFigure11(1)
		if err != nil {
			b.Fatal(err)
		}
		last := f.Attacked.Samples[len(f.Attacked.Samples)-1]
		blocked = float64(last.BlockedRouters)
	}
	b.ReportMetric(blocked/16*100, "%routers-blocked")
}

// BenchmarkFigure12 regenerates the TDM-containment and L-Ob-mitigation
// series.
func BenchmarkFigure12(b *testing.B) {
	var lobTput float64
	for i := 0; i < b.N; i++ {
		f, err := exp.RunFigure12(1)
		if err != nil {
			b.Fatal(err)
		}
		lobTput = f.LOb.Throughput
	}
	b.ReportMetric(lobTput, "lob-pkt-per-cycle")
}

// BenchmarkAblationRetransScheme regenerates the Figure 5 buffer-scheme
// ablation (DESIGN.md section 4).
func BenchmarkAblationRetransScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationRetransScheme(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRoutingUnderFlood regenerates the Section III-A routing
// comparison under flood DoS.
func BenchmarkAblationRoutingUnderFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationRoutingUnderFlood(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlacement regenerates the trojan-placement study.
func BenchmarkAblationPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.AblationPlacement(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorStep measures raw simulator speed: cycles per second on
// the 64-core mesh under Blackscholes load (an engineering metric, not a
// paper figure).
func BenchmarkSimulatorStep(b *testing.B) {
	cfg := tasp.DefaultConfig()
	cfg.Attack.Enabled = false
	cfg.Warmup = 0
	cfg.Measure = b.N
	if cfg.Measure < 100 {
		cfg.Measure = 100
	}
	b.ResetTimer()
	if _, err := tasp.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(cfg.Measure), "cycles")
}

// BenchmarkSecureWire measures one secured link traversal (encode,
// obfuscate, trojan inspection, decode, detect).
func BenchmarkSecureWire(b *testing.B) {
	w := core.NewSecureWire(nil, 1, flit.Default)
	h := flit.Header{Kind: flit.Single, VC: 1, SrcR: 3, DstR: 9, Mem: 0x0900beef}
	f := flit.Flit{Kind: flit.Single, Payload: flit.Default.Encode(h), PacketID: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Transmit(uint64(i), f, 1, 0)
	}
}
