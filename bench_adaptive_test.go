package tasp_test

import (
	"testing"

	"tasp"
	"tasp/internal/flit"
	"tasp/internal/noc"
	taspht "tasp/internal/tasp"
	"tasp/internal/xrand"
)

// BenchmarkNetworkStepAdaptive measures the simulator hot path under the
// adaptive drop family: every link into the victim router carries a
// duty-cycled ThrottledDropper, so the swallow branch of phaseLT alternates
// with clean traversal at the trojan's period and both the strike and the
// quiet-phase gating run continuously. The bench gate holds this at
// 0 allocs/op like the other NetworkStep benchmarks.
func BenchmarkNetworkStepAdaptive(b *testing.B) {
	cfg := noc.DefaultConfig()
	net, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	layout := net.Layout()
	const victim = 5 // an interior router: 4 infected inbound links
	for _, l := range net.Links() {
		if l.To != victim {
			continue
		}
		d := taspht.NewThrottledDropper(tasp.ForDest(victim), layout, 0, 0)
		d.SetKillSwitch(true) // arm: Idle trojans never strike
		w := noc.NewPlainWire()
		w.Tap = d
		net.SetWire(l.ID, w)
	}

	rng := xrand.New(1)
	pkt := flit.Packet{Body: make([]uint64, 4)} // reused; enqueue copies
	cores := cfg.Cores()
	inject := func() {
		for c := 0; c < cores; c++ {
			if !rng.Bool(0.02) {
				continue
			}
			dst := rng.Intn(cores)
			if dst == c {
				continue
			}
			pkt.Hdr = flit.Header{
				VC:   uint8(rng.Intn(cfg.VCs)),
				DstR: uint8(cfg.CoreRouter(dst)),
				DstC: uint8(dst % cfg.Concentration),
				Mem:  uint32(rng.Uint64()),
			}
			net.Inject(c, &pkt)
		}
	}
	for i := 0; i < 500; i++ { // warm up into the attacked steady state
		inject()
		net.Step()
	}
	if net.Counters.DroppedInFlight == 0 {
		b.Fatal("throttled droppers inactive: nothing swallowed during warm-up")
	}
	start := net.Counters.DroppedInFlight
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
		net.Step()
	}
	b.ReportMetric(float64(net.Counters.DroppedInFlight-start)/float64(b.N), "drops/cycle")
}
