# Convenience targets for the TASP-NoC reproduction.

GO ?= go

.PHONY: all build vet test bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate the paper's tables/figures and extension studies.
experiments:
	$(GO) run ./cmd/experiments -exp all

bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dos-attack
	$(GO) run ./examples/mitigation-sweep
	$(GO) run ./examples/trojan-designspace
	$(GO) run ./examples/trace-driven

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean -testcache
