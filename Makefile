# Convenience targets for the TASP-NoC reproduction.

GO ?= go
DATE ?= $(shell date +%F)

.PHONY: all build vet test lint nocvet race fuzz golden golden-check bench bench-json bench-gate experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Static analysis beyond vet. Runs staticcheck when it is on PATH (CI
# installs it); otherwise skips it so the target works in minimal
# environments. Either way it then runs nocvet, the in-tree analyzer suite
# that enforces the determinism and hot-path allocation contracts
# (DESIGN.md §10) — nocvet builds from this module, so it is always
# available.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not on PATH; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	$(GO) run ./cmd/nocvet ./...

# The in-tree analyzer suite alone (detrange, detsource, hotalloc,
# telemetrysafe — see DESIGN.md §10).
nocvet:
	$(GO) run ./cmd/nocvet ./...

# Race-detect the concurrent pieces: the simulator core (one network per
# goroutine), the parallel experiment engine, and the localization layer.
# The -count=2 passes re-run without the test cache so schedule-dependent
# interleavings get a second roll of the dice on every invocation.
race:
	$(GO) test -race ./internal/noc ./internal/exp
	$(GO) test -race -count=2 ./internal/locate
	$(GO) test -race -count=2 -run TestRunAll ./internal/exp
	$(GO) test -race -run 'TestWorkerCountInvariance|TestKillResume' ./internal/campaign

# Fuzz the header Encode/Decode round-trip across randomized layouts.
fuzz:
	$(GO) test -fuzz=FuzzHeaderRoundTrip -fuzztime=10s ./internal/flit

# Regenerate the paper's tables/figures and extension studies.
experiments:
	$(GO) run ./cmd/experiments -exp all

# Refresh the canonical-output golden file (only when an intentional output
# change lands; CI diffs against it byte-for-byte).
golden:
	$(GO) run ./cmd/experiments -exp all > testdata/golden/experiments-all-mesh.txt

# Verify the canonical 4x4 mesh output is byte-identical to the golden file.
golden-check:
	$(GO) run ./cmd/experiments -exp all > /tmp/experiments-all-mesh.txt
	diff -u testdata/golden/experiments-all-mesh.txt /tmp/experiments-all-mesh.txt

bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Snapshot the simulator hot-path benchmarks as machine-readable JSON
# (BENCH_<date>.json) so the perf trajectory is tracked across PRs. Covers
# the clean Step benches (idle / uniform at 4x4, 8x8, 16x16 / drain) in
# internal/noc plus the under-attack bench at the repo root.
bench-json:
	$(GO) test -bench=NetworkStep -benchmem -run xxx ./internal/noc . \
		| $(GO) run ./cmd/benchjson -label "Network.Step hot path (clean + under attack)" > BENCH_$(DATE).json
	@cat BENCH_$(DATE).json

# The CI allocation gate, runnable locally: every hot-path benchmark a
# fixed 100 iterations, fail on any nonzero allocs/op, and show ns/op
# against the latest BENCH_<date>.json baseline. Covers the per-cycle Step
# benches (internal/noc, plus under attack at the repo root) and the
# per-point campaign engine benches (a warmed core.Runner arena in
# internal/core, the full simulate+fill+encode worker body in
# internal/campaign) — the steady-state 0 allocs/point contract behind
# thousand-point sweeps.
bench-gate:
	$(GO) test '-bench=NetworkStep|RunnerPoint|CampaignPoint' -benchtime=100x -benchmem -run xxx \
		./internal/noc ./internal/core ./internal/campaign . \
		| $(GO) run ./cmd/benchgate

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dos-attack
	$(GO) run ./examples/mitigation-sweep
	$(GO) run ./examples/trojan-designspace
	$(GO) run ./examples/trace-driven
	$(GO) run ./examples/scale-8x8

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean -testcache
