# Convenience targets for the TASP-NoC reproduction.

GO ?= go
DATE ?= $(shell date +%F)

.PHONY: all build vet test race bench bench-json experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrent pieces: the simulator core (one network per
# goroutine) and the parallel experiment engine.
race:
	$(GO) test -race ./internal/noc ./internal/exp

# Regenerate the paper's tables/figures and extension studies.
experiments:
	$(GO) run ./cmd/experiments -exp all

bench:
	$(GO) test -bench=. -benchmem -run xxx ./...

# Snapshot the simulator hot-path benchmarks as machine-readable JSON
# (BENCH_<date>.json) so the perf trajectory is tracked across PRs.
bench-json:
	$(GO) test -bench=NetworkStep -benchmem -run xxx ./internal/noc \
		| $(GO) run ./cmd/benchjson -label "Network.Step hot path" > BENCH_$(DATE).json
	@cat BENCH_$(DATE).json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dos-attack
	$(GO) run ./examples/mitigation-sweep
	$(GO) run ./examples/trojan-designspace
	$(GO) run ./examples/trace-driven

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean -testcache
